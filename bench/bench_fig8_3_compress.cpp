//===- bench_fig8_3_compress.cpp - Figure 8.3 ---------------------------------===//
//
// Data compression (bzip): response time vs load under Static, WQT-H, and
// WQ-Linear mechanisms (Section 8.2.1, Figure 8.3). bzip's inner pipeline
// only profits from DoP 4 on, which leaves WQ-Linear few useful
// configurations — the paper notes it degenerates to roughly WQT-H here.
//
//===----------------------------------------------------------------------===//

#include "LaneBenchCommon.h"

int main(int argc, char **argv) {
  return parcae::rt::laneBenchMain(argc, argv, "Figure 8.3",
                                   parcae::rt::bzipParams());
}
