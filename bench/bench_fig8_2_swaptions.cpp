//===- bench_fig8_2_swaptions.cpp - Figure 8.2 --------------------------------===//
//
// Option pricing (swaptions): response time vs load under Static, WQT-H,
// and WQ-Linear mechanisms (Section 8.2.1, Figure 8.2).
//
//===----------------------------------------------------------------------===//

#include "LaneBenchCommon.h"

int main(int argc, char **argv) {
  return parcae::rt::laneBenchMain(argc, argv, "Figure 8.2",
                                   parcae::rt::swaptionsParams());
}
