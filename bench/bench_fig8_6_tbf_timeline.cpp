//===- bench_fig8_6_tbf_timeline.cpp - Figure 8.6 -----------------------------===//
//
// Image search engine under the TBF mechanism: throughput over time.
// Morta searches the configuration space (the "Opti" phase) and then
// stabilizes on the maximum-throughput configuration under 24 threads
// (the "Stable" phase) — Section 8.2.2, Figure 8.6.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "workloads/Experiment.h"

#include <cstdio>

using namespace parcae;
using namespace parcae::rt;

int main() {
  TbfMechanism Tbf(/*EnableFusion=*/true);
  PipelineRunSpec Spec;
  Spec.Requests = 6000;
  Spec.Initial = evenConfig(makeFerret(), Scheme::PsDswp, 1);
  Spec.Mech = &Tbf;
  Spec.MechPeriod = 400 * sim::MSec;
  PipelineRunResult R = runPipelineExperiment(makeFerret, Spec);

  std::printf("== Figure 8.6: ferret throughput timeline under TBF ==\n\n");
  Table T({"time(s)", "queries/s", "config"});
  std::string LastCfg;
  for (std::size_t I = 0; I < R.Timeline.size(); ++I) {
    const auto &S = R.Timeline[I];
    std::string Cfg = S.Config.str();
    // Print configuration changes and a sparse sample of stable points.
    if (Cfg != LastCfg || I % 10 == 0)
      T.addRow({Table::num(sim::toSeconds(S.At), 1),
                Table::num(S.Throughput, 1), Cfg});
    LastCfg = Cfg;
  }
  T.print();
  std::printf("\nfinal throughput: %.1f queries/s (makespan %.1f s,"
              " %u reconfiguration decisions)\n",
              R.Server.ThroughputPerSec, sim::toSeconds(R.Server.Makespan),
              R.Server.Reconfigurations);
  std::printf("(expected shape: a short Opti phase exploring"
              " configurations, then a Stable phase at the peak — the"
              " paper stabilizes near 60 queries/s)\n");
  return 0;
}
