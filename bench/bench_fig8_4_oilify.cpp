//===- bench_fig8_4_oilify.cpp - Figure 8.4 -----------------------------------===//
//
// Image editing (GIMP oilify): response time vs load under Static, WQT-H,
// and WQ-Linear mechanisms (Section 8.2.1, Figure 8.4).
//
//===----------------------------------------------------------------------===//

#include "LaneBenchCommon.h"

int main(int argc, char **argv) {
  return parcae::rt::laneBenchMain(argc, argv, "Figure 8.4",
                                   parcae::rt::oilifyParams());
}
