//===- bench_simcore.cpp - Discrete-event core microbenchmark --------------===//
//
// Host-wall-clock A/B of the simulator's hot loop, two axes:
//
//  * current core vs the original implementation (heap-allocating
//    std::function events in a std::priority_queue), embedded below
//    exactly as it shipped;
//  * within the current core, the timing-wheel tier vs the plain binary
//    heap (`--queue=heap|wheel`), across delay distributions
//    (`--dist=short|far|mixed`): short-band delays land in the wheel's
//    horizon, far-horizon delays spill to the heap and migrate, mixed
//    exercises all three tiers (ring / wheel / heap) at once.
//
// The workload is a fan of self-rescheduling timers whose handlers
// capture 32 bytes of state — the size class of real Machine/Link
// events, which overflows std::function's inline buffer but fits
// EventFn's. Every current-core run pre-sizes the simulator with
// reserve() and *asserts zero allocations* across the measured section:
// steady-state allocation-freedom of all three tiers is a hard check
// here, not a reported number.
//
// Reports events/sec and allocations/event for every configuration;
// with `--json <path>` also emits a machine-readable summary
// (scripts/bench_json.sh collects it into BENCH_simcore.json and
// scripts/check_perf.sh gates on it).
//
//===----------------------------------------------------------------------===//

#include "BenchFlags.h"
#include "sim/Simulator.h"
#include "sim/TimingWheel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <type_traits>
#include <vector>

namespace {

// --- global allocation counter ----------------------------------------
// Counts every operator-new in the process; deltas around a measured
// section give allocations attributable to that section (the sections
// are single-threaded and allocate nothing else).

std::atomic<std::uint64_t> GAllocs{0};

} // namespace

void *operator new(std::size_t Size) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }

namespace {

namespace sim = parcae::sim;

// --- the pre-optimization core, verbatim -------------------------------
// The event core as originally written: one std::function per event,
// stored by value in a priority_queue. Kept here (not in the library) so
// the A/B survives future changes to the real core.

class LegacySimulator {
public:
  sim::SimTime now() const { return Now; }

  void schedule(sim::SimTime Delay, std::function<void()> Fn) {
    Queue.push(Event{Now + Delay, NextSeq++, std::move(Fn)});
  }

  bool runOne() {
    if (Queue.empty())
      return false;
    Event E = std::move(const_cast<Event &>(Queue.top()));
    Queue.pop();
    Now = E.At;
    ++EventsProcessed;
    E.Fn();
    return true;
  }

  void run() {
    while (runOne())
      ;
  }

  std::uint64_t eventsProcessed() const { return EventsProcessed; }

private:
  struct Event {
    sim::SimTime At;
    std::uint64_t Seq;
    std::function<void()> Fn;
  };
  struct EventLater {
    bool operator()(const Event &A, const Event &B) const {
      if (A.At != B.At)
        return A.At > B.At;
      return A.Seq > B.Seq;
    }
  };

  sim::SimTime Now = 0;
  std::uint64_t NextSeq = 0;
  std::uint64_t EventsProcessed = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> Queue;
};

// --- workload ----------------------------------------------------------
// The hold model with a wakeup mix: NumTimers independent timers, each
// rescheduling itself with a data-dependent delay until the shared event
// budget runs out, and half the firings detouring through a zero-delay
// completion event first — the slice-end -> notify -> wakeup chain that
// dominates real Machine runs (about a third of all events end up
// due-now). Handlers capture {driver*, id, salt, acc} = 24-32 bytes:
// more than std::function's inline buffer (16 on this ABI, so the legacy
// core allocates per event), less than EventFn's 48 (the new core does
// not).
//
// Delay distributions, relative to the wheel's default 1024-cycle
// horizon:
//   short  1..13 cycles      — the machine-slice band; all wheel
//   far    1025..4096 cycles — all beyond the horizon; heap + migration
//   mixed  3:1 short:far     — every tier exercised at once

enum class Dist { Short, Far, Mixed };

constexpr sim::SimTime WheelSpan = sim::TimingWheel::DefaultBuckets;

inline sim::SimTime delayFor(Dist D, std::uint64_t Acc) {
  sim::SimTime Short = 1 + (Acc % 13);
  if (D == Dist::Short)
    return Short;
  sim::SimTime Far = WheelSpan + 1 + ((Acc >> 8) % (3 * WheelSpan));
  if (D == Dist::Far)
    return Far;
  return (Acc & 3) ? Short : Far;
}

template <class SimT> struct TimerDriver {
  SimT &S;
  std::uint64_t Remaining;
  Dist D;
  std::uint64_t Sink = 0;

  void arm(std::uint64_t Id, std::uint64_t Salt) {
    if (Remaining == 0)
      return;
    --Remaining;
    std::uint64_t Acc = (Salt + Id) * 0x9E3779B97F4A7C15ull;
    S.schedule(delayFor(D, Acc), [this, Id, Salt, Acc] {
      Sink ^= Acc;
      if ((Acc & 1) && Remaining > 0) {
        --Remaining;
        S.schedule(0, [this, Id, Salt] { arm(Id, Salt + 1); });
      } else {
        arm(Id, Salt + 1);
      }
    });
  }
};

struct CoreResult {
  double Seconds = 0;
  std::uint64_t Events = 0;
  std::uint64_t Allocs = 0;
  sim::Simulator::QueueStats Stats; // current core only
  double eventsPerSec() const { return Seconds > 0 ? Events / Seconds : 0; }
  double allocsPerEvent() const {
    return Events ? static_cast<double>(Allocs) / static_cast<double>(Events)
                  : 0;
  }
};

template <class SimT>
CoreResult measure(std::uint64_t NumTimers, std::uint64_t TotalEvents, Dist D,
                   sim::Simulator::QueueMode Mode) {
  SimT S;
  constexpr bool Current = std::is_same_v<SimT, sim::Simulator>;
  if constexpr (Current) {
    S.setQueueMode(Mode);
    // Outstanding events never exceed two per timer (the armed timer
    // plus its zero-delay detour); with every tier pre-sized the
    // measured section must not allocate at all.
    S.reserve(4 * NumTimers + 64);
  }
  TimerDriver<SimT> D2{S, TotalEvents, D};
  std::uint64_t Allocs0 = GAllocs.load(std::memory_order_relaxed);
  auto T0 = std::chrono::steady_clock::now();
  for (std::uint64_t I = 0; I < NumTimers; ++I)
    D2.arm(I, I * 977);
  S.run();
  auto T1 = std::chrono::steady_clock::now();
  CoreResult R;
  R.Seconds = std::chrono::duration<double>(T1 - T0).count();
  R.Events = S.eventsProcessed();
  R.Allocs = GAllocs.load(std::memory_order_relaxed) - Allocs0;
  if constexpr (Current) {
    R.Stats = S.queueStats();
    if (R.Allocs != 0) {
      std::fprintf(stderr,
                   "bench_simcore: FAIL: event core allocated %llu time(s) "
                   "in steady state (mode=%s dist=%d) — reserve() must "
                   "pre-size every tier\n",
                   static_cast<unsigned long long>(R.Allocs),
                   Mode == sim::Simulator::QueueMode::Wheel ? "wheel" : "heap",
                   static_cast<int>(D));
      std::exit(1);
    }
  }
  if (D2.Sink == 0xDEADBEEF) // defeat whole-workload elision
    std::printf("~");
  return R;
}

const char *distName(Dist D) {
  switch (D) {
  case Dist::Short:
    return "short";
  case Dist::Far:
    return "far";
  case Dist::Mixed:
    return "mixed";
  }
  return "?";
}

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--events N] [--timers N] [--queue heap|wheel|both]"
               " [--dist short|far|mixed|all] [--json <path>]\n",
               Argv0);
  std::exit(2);
}

} // namespace

int main(int argc, char **argv) {
  // BenchFlags consumes --json (and --seed/--trace); only the
  // bench-specific flags remain for the loop below.
  parcae::bench::BenchFlags Flags = parcae::bench::BenchFlags::parse(
      argc, argv, {"--events", "--timers", "--queue", "--dist"});
  const char *JsonPath = Flags.JsonPath;
  std::uint64_t TotalEvents = 2'000'000;
  std::uint64_t NumTimers = 64;
  bool RunHeap = true, RunWheel = true, RunLegacy = true;
  bool DistOn[3] = {true, true, true};
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--events") && I + 1 < argc)
      TotalEvents = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--timers") && I + 1 < argc)
      NumTimers = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--queue") && I + 1 < argc) {
      const char *Q = argv[++I];
      // Restricting to one queue mode (the sanitize flavor does) also
      // skips the legacy baseline: the run is then a correctness pass
      // over one tier configuration, not an A/B.
      if (!std::strcmp(Q, "heap")) {
        RunWheel = false;
        RunLegacy = false;
      } else if (!std::strcmp(Q, "wheel")) {
        RunHeap = false;
        RunLegacy = false;
      } else if (std::strcmp(Q, "both"))
        usage(argv[0]);
    } else if (!std::strcmp(argv[I], "--dist") && I + 1 < argc) {
      const char *D = argv[++I];
      if (!std::strcmp(D, "short"))
        DistOn[1] = DistOn[2] = false;
      else if (!std::strcmp(D, "far"))
        DistOn[0] = DistOn[2] = false;
      else if (!std::strcmp(D, "mixed"))
        DistOn[0] = DistOn[1] = false;
      else if (std::strcmp(D, "all"))
        usage(argv[0]);
    } else
      usage(argv[0]);
  }
  if (NumTimers == 0 || TotalEvents == 0)
    usage(argv[0]);

  using QM = sim::Simulator::QueueMode;
  constexpr Dist Dists[3] = {Dist::Short, Dist::Far, Dist::Mixed};

  // Warm every measured configuration (page faults, heap growth), then
  // take the best of interleaved repetitions: the configurations
  // alternate within each rep, so CPU frequency/steal phases hit all of
  // them and the ratios stay honest.
  CoreResult Legacy;
  CoreResult Heap[3], Wheel[3]; // indexed by Dist
  std::uint64_t Warm = TotalEvents / 10;
  if (RunLegacy)
    measure<LegacySimulator>(NumTimers, Warm, Dist::Short, QM::HeapOnly);
  for (int DI = 0; DI < 3; ++DI) {
    if (!DistOn[DI])
      continue;
    if (RunHeap)
      measure<sim::Simulator>(NumTimers, Warm, Dists[DI], QM::HeapOnly);
    if (RunWheel)
      measure<sim::Simulator>(NumTimers, Warm, Dists[DI], QM::Wheel);
  }
  constexpr int Reps = 5;
  for (int R = 0; R < Reps; ++R) {
    if (RunLegacy) {
      CoreResult L =
          measure<LegacySimulator>(NumTimers, TotalEvents, Dist::Short,
                                   QM::HeapOnly);
      if (R == 0 || L.eventsPerSec() > Legacy.eventsPerSec())
        Legacy = L;
    }
    for (int DI = 0; DI < 3; ++DI) {
      if (!DistOn[DI])
        continue;
      if (RunHeap) {
        CoreResult H = measure<sim::Simulator>(NumTimers, TotalEvents,
                                               Dists[DI], QM::HeapOnly);
        if (R == 0 || H.eventsPerSec() > Heap[DI].eventsPerSec())
          Heap[DI] = H;
      }
      if (RunWheel) {
        CoreResult W = measure<sim::Simulator>(NumTimers, TotalEvents,
                                               Dists[DI], QM::Wheel);
        if (R == 0 || W.eventsPerSec() > Wheel[DI].eventsPerSec())
          Wheel[DI] = W;
      }
    }
  }

  // Headline numbers: the default configuration (wheel, short band) vs
  // the legacy core.
  const CoreResult &Current = RunWheel ? Wheel[0] : Heap[0];
  double Speedup = Legacy.Seconds > 0 && Current.Seconds > 0
                       ? Current.eventsPerSec() / Legacy.eventsPerSec()
                       : 0;

  std::printf("== sim core microbenchmark: %llu events, %llu timers ==\n\n",
              static_cast<unsigned long long>(TotalEvents),
              static_cast<unsigned long long>(NumTimers));
  std::printf("%-34s %14s %14s\n", "core", "events/sec", "allocs/event");
  if (RunLegacy)
    std::printf("%-34s %14.0f %14.3f\n", "legacy (std::function + pq)",
                Legacy.eventsPerSec(), Legacy.allocsPerEvent());
  for (int DI = 0; DI < 3; ++DI) {
    if (!DistOn[DI])
      continue;
    char Label[64];
    if (RunHeap) {
      std::snprintf(Label, sizeof(Label), "current heap  (dist=%s)",
                    distName(Dists[DI]));
      std::printf("%-34s %14.0f %14.3f\n", Label, Heap[DI].eventsPerSec(),
                  Heap[DI].allocsPerEvent());
    }
    if (RunWheel) {
      std::snprintf(Label, sizeof(Label), "current wheel (dist=%s)",
                    distName(Dists[DI]));
      std::printf("%-34s %14.0f %14.3f\n", Label, Wheel[DI].eventsPerSec(),
                  Wheel[DI].allocsPerEvent());
    }
  }
  if (RunLegacy)
    std::printf("\nspeedup vs legacy (wheel, short): %.2fx\n", Speedup);
  if (RunHeap && RunWheel)
    for (int DI = 0; DI < 3; ++DI)
      if (DistOn[DI] && Heap[DI].eventsPerSec() > 0)
        std::printf("wheel/heap (%s): %.2fx\n", distName(Dists[DI]),
                    Wheel[DI].eventsPerSec() / Heap[DI].eventsPerSec());
  if (RunWheel && DistOn[2]) {
    const sim::Simulator::QueueStats &S = Wheel[2].Stats;
    std::printf("\nwheel/mixed tier split: ring=%llu wheel=%llu heap=%llu "
                "migrations=%llu max bucket depth=%llu\n",
                static_cast<unsigned long long>(S.RingHits),
                static_cast<unsigned long long>(S.WheelHits),
                static_cast<unsigned long long>(S.HeapHits),
                static_cast<unsigned long long>(S.SpillMigrations),
                static_cast<unsigned long long>(S.MaxBucketDepth));
  }

  if (JsonPath) {
    if (!(RunLegacy && RunHeap && RunWheel && DistOn[0] && DistOn[1] &&
          DistOn[2])) {
      std::fprintf(stderr, "bench_simcore: --json requires the full matrix "
                           "(--queue both --dist all)\n");
      return 2;
    }
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "bench_simcore: cannot write %s\n", JsonPath);
      return 1;
    }
    double WheelShort = Heap[0].eventsPerSec() > 0
                            ? Wheel[0].eventsPerSec() / Heap[0].eventsPerSec()
                            : 0;
    double WheelFar = Heap[1].eventsPerSec() > 0
                          ? Wheel[1].eventsPerSec() / Heap[1].eventsPerSec()
                          : 0;
    double WheelMixed = Heap[2].eventsPerSec() > 0
                            ? Wheel[2].eventsPerSec() / Heap[2].eventsPerSec()
                            : 0;
    const sim::Simulator::QueueStats &S = Wheel[2].Stats;
    std::fprintf(
        F,
        "{\n"
        "  \"bench\": \"simcore\",\n"
        "  \"events\": %llu,\n"
        "  \"timers\": %llu,\n"
        "  \"events_per_sec_legacy\": %.0f,\n"
        "  \"events_per_sec_current\": %.0f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"allocs_per_event_legacy\": %.3f,\n"
        "  \"allocs_per_event_current\": %.3f,\n"
        "  \"events_per_sec_heap_short\": %.0f,\n"
        "  \"events_per_sec_wheel_short\": %.0f,\n"
        "  \"wheel_speedup_short\": %.3f,\n"
        "  \"events_per_sec_heap_far\": %.0f,\n"
        "  \"events_per_sec_wheel_far\": %.0f,\n"
        "  \"wheel_ratio_far\": %.3f,\n"
        "  \"events_per_sec_heap_mixed\": %.0f,\n"
        "  \"events_per_sec_wheel_mixed\": %.0f,\n"
        "  \"wheel_ratio_mixed\": %.3f,\n"
        "  \"allocs_per_event_heap\": %.3f,\n"
        "  \"allocs_per_event_wheel\": %.3f,\n"
        "  \"ring_hits\": %llu,\n"
        "  \"wheel_hits\": %llu,\n"
        "  \"heap_hits\": %llu,\n"
        "  \"spill_migrations\": %llu,\n"
        "  \"max_bucket_depth\": %llu\n"
        "}\n",
        static_cast<unsigned long long>(TotalEvents),
        static_cast<unsigned long long>(NumTimers), Legacy.eventsPerSec(),
        Current.eventsPerSec(), Speedup, Legacy.allocsPerEvent(),
        Current.allocsPerEvent(), Heap[0].eventsPerSec(),
        Wheel[0].eventsPerSec(), WheelShort, Heap[1].eventsPerSec(),
        Wheel[1].eventsPerSec(), WheelFar, Heap[2].eventsPerSec(),
        Wheel[2].eventsPerSec(), WheelMixed,
        std::max({Heap[0].allocsPerEvent(), Heap[1].allocsPerEvent(),
                  Heap[2].allocsPerEvent()}),
        std::max({Wheel[0].allocsPerEvent(), Wheel[1].allocsPerEvent(),
                  Wheel[2].allocsPerEvent()}),
        static_cast<unsigned long long>(S.RingHits),
        static_cast<unsigned long long>(S.WheelHits),
        static_cast<unsigned long long>(S.HeapHits),
        static_cast<unsigned long long>(S.SpillMigrations),
        static_cast<unsigned long long>(S.MaxBucketDepth));
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  }
  return 0;
}
