//===- bench_simcore.cpp - Discrete-event core microbenchmark --------------===//
//
// Host-wall-clock A/B of the simulator's hot loop: the current core (SBO
// EventFn + reusable vector-backed heap + slab pool) against the original
// implementation (heap-allocating std::function events in a
// std::priority_queue), embedded below exactly as it shipped. The
// workload is a fan of self-rescheduling timers whose handlers capture
// 32 bytes of state — the size class of real Machine/Link events, which
// overflows std::function's inline buffer but fits EventFn's.
//
// Reports events/sec and allocations/event for both cores; with
// `--json <path>` also emits a machine-readable summary
// (scripts/bench_json.sh collects it into BENCH_simcore.json).
//
//===----------------------------------------------------------------------===//

#include "BenchFlags.h"
#include "sim/Simulator.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <vector>

namespace {

// --- global allocation counter ----------------------------------------
// Counts every operator-new in the process; deltas around a measured
// section give allocations attributable to that section (the sections
// are single-threaded and allocate nothing else).

std::atomic<std::uint64_t> GAllocs{0};

} // namespace

void *operator new(std::size_t Size) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }

namespace {

namespace sim = parcae::sim;

// --- the pre-optimization core, verbatim -------------------------------
// The event core as originally written: one std::function per event,
// stored by value in a priority_queue. Kept here (not in the library) so
// the A/B survives future changes to the real core.

class LegacySimulator {
public:
  sim::SimTime now() const { return Now; }

  void schedule(sim::SimTime Delay, std::function<void()> Fn) {
    Queue.push(Event{Now + Delay, NextSeq++, std::move(Fn)});
  }

  bool runOne() {
    if (Queue.empty())
      return false;
    Event E = std::move(const_cast<Event &>(Queue.top()));
    Queue.pop();
    Now = E.At;
    ++EventsProcessed;
    E.Fn();
    return true;
  }

  void run() {
    while (runOne())
      ;
  }

  std::uint64_t eventsProcessed() const { return EventsProcessed; }

private:
  struct Event {
    sim::SimTime At;
    std::uint64_t Seq;
    std::function<void()> Fn;
  };
  struct EventLater {
    bool operator()(const Event &A, const Event &B) const {
      if (A.At != B.At)
        return A.At > B.At;
      return A.Seq > B.Seq;
    }
  };

  sim::SimTime Now = 0;
  std::uint64_t NextSeq = 0;
  std::uint64_t EventsProcessed = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> Queue;
};

// --- workload ----------------------------------------------------------
// The hold model with a wakeup mix: NumTimers independent timers, each
// rescheduling itself with a data-dependent delay until the shared event
// budget runs out, and half the firings detouring through a zero-delay
// completion event first — the slice-end -> notify -> wakeup chain that
// dominates real Machine runs (about a third of all events end up
// due-now). Handlers capture {driver*, id, salt, acc} = 24-32 bytes:
// more than std::function's inline buffer (16 on this ABI, so the legacy
// core allocates per event), less than EventFn's 48 (the new core does
// not).

template <class SimT> struct TimerDriver {
  SimT &S;
  std::uint64_t Remaining;
  std::uint64_t Sink = 0;

  void arm(std::uint64_t Id, std::uint64_t Salt) {
    if (Remaining == 0)
      return;
    --Remaining;
    std::uint64_t Acc = (Salt + Id) * 0x9E3779B97F4A7C15ull;
    S.schedule(1 + (Acc % 13), [this, Id, Salt, Acc] {
      Sink ^= Acc;
      if ((Acc & 1) && Remaining > 0) {
        --Remaining;
        S.schedule(0, [this, Id, Salt] { arm(Id, Salt + 1); });
      } else {
        arm(Id, Salt + 1);
      }
    });
  }
};

struct CoreResult {
  double Seconds = 0;
  std::uint64_t Events = 0;
  std::uint64_t Allocs = 0;
  double eventsPerSec() const { return Seconds > 0 ? Events / Seconds : 0; }
  double allocsPerEvent() const {
    return Events ? static_cast<double>(Allocs) / static_cast<double>(Events)
                  : 0;
  }
};

template <class SimT>
CoreResult measure(std::uint64_t NumTimers, std::uint64_t TotalEvents) {
  SimT S;
  TimerDriver<SimT> D{S, TotalEvents};
  std::uint64_t Allocs0 = GAllocs.load(std::memory_order_relaxed);
  auto T0 = std::chrono::steady_clock::now();
  for (std::uint64_t I = 0; I < NumTimers; ++I)
    D.arm(I, I * 977);
  S.run();
  auto T1 = std::chrono::steady_clock::now();
  CoreResult R;
  R.Seconds = std::chrono::duration<double>(T1 - T0).count();
  R.Events = S.eventsProcessed();
  R.Allocs = GAllocs.load(std::memory_order_relaxed) - Allocs0;
  if (D.Sink == 0xDEADBEEF) // defeat whole-workload elision
    std::printf("~");
  return R;
}

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--events N] [--timers N] [--json <path>]\n", Argv0);
  std::exit(2);
}

} // namespace

int main(int argc, char **argv) {
  // BenchFlags consumes --json (and --seed/--trace); only the
  // bench-specific flags remain for the loop below.
  parcae::bench::BenchFlags Flags =
      parcae::bench::BenchFlags::parse(argc, argv, {"--events", "--timers"});
  const char *JsonPath = Flags.JsonPath;
  std::uint64_t TotalEvents = 2'000'000;
  std::uint64_t NumTimers = 64;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--events") && I + 1 < argc)
      TotalEvents = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--timers") && I + 1 < argc)
      NumTimers = std::strtoull(argv[++I], nullptr, 10);
    else
      usage(argv[0]);
  }
  if (NumTimers == 0 || TotalEvents == 0)
    usage(argv[0]);

  // Warm both cores (page faults, heap growth), then take the best of
  // interleaved repetitions: the cores alternate within each rep, so CPU
  // frequency/steal phases hit both and the ratio stays honest.
  measure<LegacySimulator>(NumTimers, TotalEvents / 10);
  measure<sim::Simulator>(NumTimers, TotalEvents / 10);
  constexpr int Reps = 5;
  CoreResult Legacy, Fresh;
  for (int R = 0; R < Reps; ++R) {
    CoreResult L = measure<LegacySimulator>(NumTimers, TotalEvents);
    CoreResult F = measure<sim::Simulator>(NumTimers, TotalEvents);
    if (R == 0 || L.eventsPerSec() > Legacy.eventsPerSec())
      Legacy = L;
    if (R == 0 || F.eventsPerSec() > Fresh.eventsPerSec())
      Fresh = F;
  }
  double Speedup = Legacy.Seconds > 0 && Fresh.Seconds > 0
                       ? Fresh.eventsPerSec() / Legacy.eventsPerSec()
                       : 0;

  std::printf("== sim core microbenchmark: %llu events, %llu timers ==\n\n",
              static_cast<unsigned long long>(TotalEvents),
              static_cast<unsigned long long>(NumTimers));
  std::printf("%-34s %14s %14s\n", "core", "events/sec", "allocs/event");
  std::printf("%-34s %14.0f %14.3f\n",
              "legacy (std::function + pq)", Legacy.eventsPerSec(),
              Legacy.allocsPerEvent());
  std::printf("%-34s %14.0f %14.3f\n", "current (EventFn + slab heap)",
              Fresh.eventsPerSec(), Fresh.allocsPerEvent());
  std::printf("\nspeedup: %.2fx\n", Speedup);

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "bench_simcore: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(F,
                 "{\n"
                 "  \"bench\": \"simcore\",\n"
                 "  \"events\": %llu,\n"
                 "  \"timers\": %llu,\n"
                 "  \"events_per_sec_legacy\": %.0f,\n"
                 "  \"events_per_sec_current\": %.0f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"allocs_per_event_legacy\": %.3f,\n"
                 "  \"allocs_per_event_current\": %.3f\n"
                 "}\n",
                 static_cast<unsigned long long>(TotalEvents),
                 static_cast<unsigned long long>(NumTimers),
                 Legacy.eventsPerSec(), Fresh.eventsPerSec(), Speedup,
                 Legacy.allocsPerEvent(), Fresh.allocsPerEvent());
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  }
  return 0;
}
