//===- bench_fig8_9_platform.cpp - Figure 8.9 ---------------------------------===//
//
// The platform-wide Morta daemon optimizing two Nona-compiled programs
// simultaneously (Section 8.3.4, Figure 8.9 and Algorithm 5). Program A
// (histogram) saturates early because of its critical section; program B
// (montecarlo) scales. The daemon splits the 24 threads evenly, then
// reclaims A's slack and hands it to B.
//
//===----------------------------------------------------------------------===//

#include "morta/Platform.h"
#include "nona/Programs.h"
#include "nona/Run.h"
#include "support/Table.h"

#include <cstdio>

using namespace parcae;
using namespace parcae::ir;
namespace rt = parcae::rt;
namespace sim = parcae::sim;

int main() {
  sim::Simulator Sim;
  sim::Machine M(Sim, 24);
  rt::RuntimeCosts Costs;

  LoopProgram PA = makeHistogram(4000000, 64);
  LoopProgram PB = makeMonteCarlo(4000000);
  CompiledLoop CA(*PA.F, PA.AA, PA.TripCount);
  CompiledLoop CB(*PB.F, PB.AA, PB.TripCount);
  CA.resetState();
  CB.resetState();
  auto SrcA = CA.makeSource();
  auto SrcB = CB.makeSource();
  rt::RegionRunner RunA(M, Costs, CA.region(), *SrcA);
  rt::RegionRunner RunB(M, Costs, CB.region(), *SrcB);
  rt::RegionController CtrlA(RunA), CtrlB(RunB);

  rt::PlatformDaemon Daemon(24);
  std::printf("== Figure 8.9: platform-wide optimization of two programs"
              " ==\n\n");
  std::printf("t=0: histogram launches alone (budget 24)\n");
  Daemon.addProgram(CtrlA);
  Sim.runUntil(100 * sim::MSec);
  Daemon.addProgram(CtrlB);
  std::printf("t=100ms: montecarlo launches; budgets re-partitioned to"
              " %u/%u\n\n",
              Daemon.budgetOf(CtrlA), Daemon.budgetOf(CtrlB));

  Table T({"time(ms)", "A state", "A config", "A budget", "B state",
           "B config", "B budget", "busy cores"});
  for (int Ms = 120; Ms <= 900; Ms += 60) {
    Sim.runUntil(static_cast<sim::SimTime>(Ms) * sim::MSec);
    T.addRow({Table::num(static_cast<long long>(Ms)),
              rt::ctrlStateName(CtrlA.state()), RunA.config().str(),
              Table::num(static_cast<long long>(Daemon.budgetOf(CtrlA))),
              rt::ctrlStateName(CtrlB.state()), RunB.config().str(),
              Table::num(static_cast<long long>(Daemon.budgetOf(CtrlB))),
              Table::num(static_cast<long long>(M.busyCores()))});
  }
  T.print();
  std::printf("\n(expected: histogram's critical section caps its useful"
              " DoP; the daemon reclaims its slack and montecarlo's budget"
              " grows past the even 12/12 split)\n");
  return 0;
}
