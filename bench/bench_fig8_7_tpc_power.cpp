//===- bench_fig8_7_tpc_power.cpp - Figure 8.7 --------------------------------===//
//
// Image search engine under the TPC (throughput-power controller)
// mechanism: power and throughput over time with a 90%-of-peak power
// target (Section 8.2.3, Figure 8.7). 90% of peak total power is 60% of
// the dynamic CPU range on the modelled platform; power samples arrive at
// the AP7892 PDU's 13 samples per minute, which bounds the control-loop
// bandwidth exactly as in the paper.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "workloads/Experiment.h"

#include <cstdio>

using namespace parcae;
using namespace parcae::rt;

int main() {
  sim::PowerModel PM;
  double Peak = PM.peakWatts(24);
  double Target = 0.9 * Peak;

  TpcMechanism Tpc;
  PipelineRunSpec Spec;
  Spec.Requests = 9000;
  Spec.Initial = evenConfig(makeFerret(), Scheme::PsDswp, 1);
  Spec.Mech = &Tpc;
  Spec.MechPeriod = 400 * sim::MSec;
  Spec.PowerTargetWatts = Target;
  Spec.Power = PM;
  PipelineRunResult R = runPipelineExperiment(makeFerret, Spec);

  std::printf("== Figure 8.7: ferret power/throughput under TPC ==\n");
  std::printf("   peak power %.0f W, target %.0f W (90%% of peak = 60%% of"
              " the dynamic range)\n\n",
              Peak, Target);
  Table T({"time(s)", "power(W)", "queries/s", "config"});
  std::string LastCfg;
  for (std::size_t I = 0; I < R.Timeline.size(); ++I) {
    const auto &S = R.Timeline[I];
    std::string Cfg = S.Config.str();
    if (Cfg != LastCfg || I % 12 == 0)
      T.addRow({Table::num(sim::toSeconds(S.At), 1),
                Table::num(S.PowerWatts, 0), Table::num(S.Throughput, 1),
                Cfg});
    LastCfg = Cfg;
  }
  T.print();

  // Steady-state summary (second half of the run).
  double SumP = 0, SumT = 0;
  unsigned N = 0, Violations = 0;
  for (const auto &S : R.Timeline) {
    if (S.At < R.Server.Makespan / 2 || S.PowerWatts <= 0)
      continue;
    SumP += S.PowerWatts;
    SumT += S.Throughput;
    ++N;
    if (S.PowerWatts > Target + PM.PerCoreActiveWatts)
      ++Violations;
  }
  if (N > 0)
    std::printf("\nsteady state: %.0f W (%.0f%% of peak), %.1f queries/s,"
                " %.0f%% samples over budget\n",
                SumP / N, 100.0 * (SumP / N) / Peak, SumT / N,
                100.0 * Violations / N);
  std::printf("(paper: stabilizes at the power target with ~62%% of peak"
              " throughput; transients are limited by the PDU's 13"
              " samples/minute)\n");
  return 0;
}
