//===- bench_table8_6_nona.cpp - Section 8.3 whole-benchmark results ----------===//
//
// Nona compiler evaluation across the benchmark loop suite (the Section
// 8.3 substitute for the paper's Table 8.6 benchmarks): for each loop,
// the speedup over sequential execution of
//
//   * the best fixed DOANY configuration (the paper's "fixed
//     parallelization" baseline),
//   * the best fixed PS-DSWP configuration,
//   * Parcae (the Chapter 6 run-time controller, which pays its own
//     search and reconfiguration overheads), and
//   * the best-static oracle found by exhaustive search (the Section
//     8.3.5 optimality comparison).
//
//===----------------------------------------------------------------------===//

#include "nona/Programs.h"
#include "nona/Run.h"
#include "support/Table.h"

#include <cstdio>

using namespace parcae;
using namespace parcae::ir;
namespace rt = parcae::rt;
namespace sim = parcae::sim;

namespace {

rt::RegionConfig configWith(CompiledLoop &CL, rt::Scheme S, unsigned Par) {
  rt::RegionConfig C;
  C.S = S;
  for (const rt::Task &T : CL.region().variant(S).Tasks)
    C.DoP.push_back(T.isParallel() ? Par : 1);
  return C;
}

} // namespace

int main() {
  const unsigned Cores = 16;
  const std::uint64_t N = 3000;
  std::printf("== Section 8.3: Nona whole-benchmark speedups over"
              " sequential (budget %u threads, %llu iterations) ==\n\n",
              Cores, static_cast<unsigned long long>(N));

  Table T({"benchmark", "schemes", "best DOANY", "best PS-DSWP", "Parcae",
           "oracle", "oracle config"});

  auto Suite = benchmarkSuite(N);
  // 20x-longer builds for the controller runs (the search cost amortizes
  // over a long-running region, as in the paper's server workloads).
  auto SuiteBig = benchmarkSuite(N * 20);
  for (std::size_t BI = 0; BI < Suite.size(); ++BI) {
    auto &Make = Suite[BI];
    LoopProgram P = Make();
    CompiledLoop CL(*P.F, P.AA, P.TripCount);

    double SeqTime = static_cast<double>(
        runCompiled(CL, configWith(CL, rt::Scheme::Seq, 1), Cores).Time);

    std::string Schemes = "SEQ";
    if (CL.hasDoAny())
      Schemes += "+DOANY";
    if (CL.hasPsDswp())
      Schemes += "+PSDSWP";

    double BestDoAny = 0, BestPipe = 0, BestOracle = 1.0;
    rt::RegionConfig OracleC = configWith(CL, rt::Scheme::Seq, 1);
    for (unsigned D : {1u, 2u, 4u, 6u, 8u, 12u, 14u}) {
      if (CL.hasDoAny()) {
        rt::RegionConfig C = configWith(CL, rt::Scheme::DoAny, D);
        if (C.totalThreads() <= Cores) {
          double S = SeqTime / static_cast<double>(
                                   runCompiled(CL, C, Cores).Time);
          BestDoAny = std::max(BestDoAny, S);
          if (S > BestOracle) {
            BestOracle = S;
            OracleC = C;
          }
        }
      }
      if (CL.hasPsDswp()) {
        rt::RegionConfig C = configWith(CL, rt::Scheme::PsDswp, D);
        if (C.totalThreads() <= Cores) {
          double S = SeqTime / static_cast<double>(
                                   runCompiled(CL, C, Cores).Time);
          BestPipe = std::max(BestPipe, S);
          if (S > BestOracle) {
            BestOracle = S;
            OracleC = C;
          }
        }
      }
    }

    // Parcae: the closed-loop controller, including all of its search
    // and reconfiguration overheads, on the 20x-longer run.
    LoopProgram PBig = SuiteBig[BI]();
    CompiledLoop CLBig(*PBig.F, PBig.AA, PBig.TripCount);
    double SeqBig = static_cast<double>(
        runCompiled(CLBig, configWith(CLBig, rt::Scheme::Seq, 1), Cores)
            .Time);
    ControlledRunResult R = runControlled(CLBig, Cores);
    double Parcae = SeqBig / static_cast<double>(R.Time);

    T.addRow({P.Name, Schemes,
              CL.hasDoAny() ? Table::num(BestDoAny, 2) + "x" : "-",
              CL.hasPsDswp() ? Table::num(BestPipe, 2) + "x" : "-",
              Table::num(Parcae, 2) + "x", Table::num(BestOracle, 2) + "x",
              OracleC.str()});
  }
  T.print();
  std::printf("\n(the Section 8.3.5 shape: Parcae lands close to the"
              " exhaustive-search oracle while paying its own search"
              " cost; loops with inhibiting dependences fall back to"
              " SEQ or pipeline-only parallelism)\n");
  return 0;
}
