//===- BenchFlags.h - Shared benchmark command-line flags -------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flags every benchmark main repeats: `--seed N` (installs the
/// process-wide default seed), `--trace <file.json>` (Chrome trace
/// output), `--json <path>` (machine-readable results). parse() strips
/// the flags it recognizes from argv, compacting it in place, so the
/// bench can hand the remainder to its own parser — or to
/// google-benchmark, which rejects flags it does not know.
///
/// Unknown `--flags` are rejected with a usage message: a typo like
/// `--sed=42` must not silently run the benchmark unseeded (determinism
/// checks would compare two different runs and "pass" or "fail" at
/// random). Benches declare their own extra flags via \p Extra;
/// `--benchmark_*` passes through for google-benchmark mains.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_BENCH_BENCHFLAGS_H
#define PARCAE_BENCH_BENCHFLAGS_H

#include "support/Rng.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>

namespace parcae::bench {

/// Parsed shared flags. TracePath/JsonPath point into argv and stay
/// valid for main()'s lifetime; both are null when absent.
struct BenchFlags {
  std::uint64_t Seed = 1;
  const char *TracePath = nullptr;
  const char *JsonPath = nullptr;

  /// Parses and strips the shared flags. \p Argc is updated to the
  /// compacted count. Installs the seed via setDefaultSeed(). Any other
  /// `--flag` not listed in \p Extra (and not `--benchmark_*`) aborts
  /// with a usage message on stderr and exit code 2.
  static BenchFlags parse(int &Argc, char **Argv,
                          std::initializer_list<const char *> Extra = {}) {
    BenchFlags F;
    F.Seed = defaultSeed();
    auto Value = [&](const char *Flag, int &I, const char *&Out) {
      std::size_t N = std::strlen(Flag);
      if (std::strncmp(Argv[I], Flag, N) != 0)
        return false;
      if (Argv[I][N] == '=') {
        Out = Argv[I] + N + 1;
        return true;
      }
      if (Argv[I][N] == '\0' && I + 1 < Argc) {
        Out = Argv[++I];
        return true;
      }
      return false;
    };
    // A bench-declared flag matches exactly or as a `--flag=value` /
    // `--flag value` head.
    auto Known = [&](const char *Arg) {
      for (const char *E : Extra) {
        std::size_t N = std::strlen(E);
        if (std::strncmp(Arg, E, N) == 0 &&
            (Arg[N] == '\0' || Arg[N] == '='))
          return true;
      }
      return std::strncmp(Arg, "--benchmark", 11) == 0;
    };
    int Keep = 1;
    for (int I = 1; I < Argc; ++I) {
      const char *V = nullptr;
      if (Value("--seed", I, V))
        F.Seed = std::strtoull(V, nullptr, 10);
      else if (Value("--trace", I, V))
        F.TracePath = V;
      else if (Value("--json", I, V))
        F.JsonPath = V;
      else if (Argv[I][0] == '-' && Argv[I][1] == '-' && Argv[I][2] != '\0' &&
               !Known(Argv[I])) {
        std::fprintf(stderr, "error: unknown flag '%s'\n", Argv[I]);
        std::fprintf(stderr,
                     "usage: %s [--seed N] [--trace FILE] [--json FILE]",
                     Argv[0]);
        for (const char *E : Extra)
          std::fprintf(stderr, " [%s]", E);
        std::fprintf(stderr, "\n");
        std::exit(2);
      } else
        Argv[Keep++] = Argv[I];
    }
    Argc = Keep;
    setDefaultSeed(F.Seed);
    return F;
  }
};

} // namespace parcae::bench

#endif // PARCAE_BENCH_BENCHFLAGS_H
