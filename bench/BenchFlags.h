//===- BenchFlags.h - Shared benchmark command-line flags -------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flags every benchmark main repeats: `--seed N` (installs the
/// process-wide default seed), `--trace <file.json>` (Chrome trace
/// output), `--json <path>` (machine-readable results). parse() strips
/// the flags it recognizes from argv, compacting it in place, so the
/// bench can hand the remainder to its own parser — or to
/// google-benchmark, which rejects flags it does not know.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_BENCH_BENCHFLAGS_H
#define PARCAE_BENCH_BENCHFLAGS_H

#include "support/Rng.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace parcae::bench {

/// Parsed shared flags. TracePath/JsonPath point into argv and stay
/// valid for main()'s lifetime; both are null when absent.
struct BenchFlags {
  std::uint64_t Seed = 1;
  const char *TracePath = nullptr;
  const char *JsonPath = nullptr;

  /// Parses and strips the shared flags. \p Argc is updated to the
  /// compacted count. Installs the seed via setDefaultSeed().
  static BenchFlags parse(int &Argc, char **Argv) {
    BenchFlags F;
    F.Seed = defaultSeed();
    auto Value = [&](const char *Flag, int &I, const char *&Out) {
      std::size_t N = std::strlen(Flag);
      if (std::strncmp(Argv[I], Flag, N) != 0)
        return false;
      if (Argv[I][N] == '=') {
        Out = Argv[I] + N + 1;
        return true;
      }
      if (Argv[I][N] == '\0' && I + 1 < Argc) {
        Out = Argv[++I];
        return true;
      }
      return false;
    };
    int Keep = 1;
    for (int I = 1; I < Argc; ++I) {
      const char *V = nullptr;
      if (Value("--seed", I, V))
        F.Seed = std::strtoull(V, nullptr, 10);
      else if (Value("--trace", I, V))
        F.TracePath = V;
      else if (Value("--json", I, V))
        F.JsonPath = V;
      else
        Argv[Keep++] = Argv[I];
    }
    Argc = Keep;
    setDefaultSeed(F.Seed);
    return F;
  }
};

} // namespace parcae::bench

#endif // PARCAE_BENCH_BENCHFLAGS_H
