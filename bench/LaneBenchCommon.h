//===- LaneBenchCommon.h - Shared driver for Figures 8.1-8.4 ----*- C++ -*-===//
//
// Part of the Parcae reproduction. Each of the response-time figures
// (video transcoding, option pricing, data compression, image editing)
// sweeps the load factor and prints mean response time for the two static
// configurations, WQT-H, and WQ-Linear — the exact series of the paper's
// plots.
//
//===----------------------------------------------------------------------===//

#ifndef PARCAE_BENCH_LANEBENCHCOMMON_H
#define PARCAE_BENCH_LANEBENCHCOMMON_H

#include "support/Rng.h"
#include "support/Table.h"
#include "telemetry/ChromeTrace.h"
#include "workloads/Experiment.h"

#include <cstdio>
#include <memory>

namespace parcae::rt {

/// Runs the Figure 8.x sweep for one lane application and prints it.
inline void runLaneFigure(const char *Figure, const LaneAppParams &P,
                          unsigned Cores = 24, std::uint64_t Requests = 500) {
  unsigned DPmax = P.Scal.dPmax();
  unsigned DPmin = P.Scal.dPmin();
  unsigned KPar = std::max(1u, Cores / DPmax);
  LaneConfig OuterOnly{Cores, false, 1};
  LaneConfig InnerPar{KPar, true, DPmax};
  // WQT-H threshold and hysteresis: toggle when the backlog exceeds about
  // one round of parallel lanes; WQ-Linear bottoms out at ~2x that.
  double Threshold = 2.0 * KPar;
  double Qmax = 4.0 * KPar;

  std::uint64_t Seed = defaultSeed();
  std::printf("== %s: %s response time vs load "
              "(24-core platform, %llu Poisson requests, seed=%llu) ==\n",
              Figure, P.Name.c_str(),
              static_cast<unsigned long long>(Requests),
              static_cast<unsigned long long>(Seed));
  std::printf("   static A = %s, static B = %s, dPmax=%u dPmin=%u\n\n",
              OuterOnly.str(P.InnerKind).c_str(),
              InnerPar.str(P.InnerKind).c_str(), DPmax, DPmin);

  Table T({"load", "Static<outer>", "Static<inner>", "WQT-H", "WQ-Linear",
           "winner"});
  const double Loads[] = {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1};
  for (double Load : Loads) {
    double R[4];
    {
      StaticLane M(OuterOnly);
      R[0] = runLaneExperiment(P, M, Cores, Load, Requests, Seed)
                 .MeanResponseSec;
    }
    {
      StaticLane M(InnerPar);
      R[1] = runLaneExperiment(P, M, Cores, Load, Requests, Seed)
                 .MeanResponseSec;
    }
    {
      WqtH M(Threshold, 6, 6, OuterOnly, InnerPar);
      R[2] = runLaneExperiment(P, M, Cores, Load, Requests, Seed)
                 .MeanResponseSec;
    }
    {
      WqLinear M(Cores, DPmax, DPmin, Qmax);
      R[3] = runLaneExperiment(P, M, Cores, Load, Requests, Seed)
                 .MeanResponseSec;
    }
    const char *Names[] = {"Static<outer>", "Static<inner>", "WQT-H",
                           "WQ-Linear"};
    int Best = 0;
    for (int I = 1; I < 4; ++I)
      if (R[I] < R[Best])
        Best = I;
    T.addRow({Table::num(Load, 1), Table::num(R[0], 2), Table::num(R[1], 2),
              Table::num(R[2], 2), Table::num(R[3], 2), Names[Best]});
  }
  T.print();
  std::printf("\n(expected shape: Static<inner> wins at light load,"
              " Static<outer> at heavy load; the adaptive mechanisms track"
              " the better static on both sides)\n");
}

/// Standard main() body for the lane benchmarks: installs a trace
/// recorder when `--trace <file.json>` is given, picks up `--seed N`,
/// then runs the sweep.
inline int laneBenchMain(int Argc, char **Argv, const char *Figure,
                         const LaneAppParams &P) {
  telemetry::TraceFile Trace(telemetry::traceFlagPath(Argc, Argv));
  setDefaultSeed(seedFlag(Argc, Argv, defaultSeed()));
  runLaneFigure(Figure, P);
  return 0;
}

} // namespace parcae::rt

#endif // PARCAE_BENCH_LANEBENCHCOMMON_H
