//===- bench_fig8_1_transcode.cpp - Figure 8.1 -------------------------------===//
//
// Video transcoding (x264): response time vs load under Static, WQT-H,
// and WQ-Linear mechanisms (Section 8.2.1, Figure 8.1).
//
//===----------------------------------------------------------------------===//

#include "LaneBenchCommon.h"

int main(int argc, char **argv) {
  return parcae::rt::laneBenchMain(argc, argv, "Figure 8.1",
                                   parcae::rt::x264Params());
}
