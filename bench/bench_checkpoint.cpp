//===- bench_checkpoint.cpp - Region checkpoint, restore, and migration ----===//
//
// The checkpoint/restore subsystem end to end, in three scenarios:
//
// Default — hot restart across machines:
//
//   * machine A runs the 3-stage pipeline under the full controller until
//     35 ms, then checkpoints: the region quiesces under the pause/
//     give-back discipline, the snapshot (work cursor, source state,
//     enforced config, learned controller memory, chunk K) serializes to
//     text, and machine A is torn down;
//   * the snapshot round-trips through deserialize/re-serialize
//     byte-identically;
//   * machine B — a fresh simulator — restores it: the controller seeds
//     MONITOR straight from the snapshot (no INIT/CALIBRATE/OPTIMIZE) and
//     the region resumes at the cursor;
//   * the combined A+B retired output is compared element for element
//     against an uninterrupted reference run: exactly-once across the
//     migration.
//
// --drain — proactive migration off a doomed failure domain:
//
//   * a socket event takes cores 4-6 at 40 ms, announced 6 ms ahead
//     (sim/Faults.h Warning lead time), and repairs after 30 ms;
//   * the watchdog reacts to the warning by checkpointing the region,
//     offlining the doomed cores while the region holds no thread, and
//     resuming on the survivors — zero aborted iterations, zero stranded
//     threads, versus the reactive rescue + abort path of
//     bench_resilience;
//   * the budget shrinks across the drain and grows back after repair.
//
// --serve — live migration under open-loop traffic:
//
//   * two request classes on a 16-core machine (bench_serve's shape), a
//     3-core domain warning mid-overload;
//   * the serve loop checkpoints every in-flight request region, holds
//     dispatch, offlines the domain, and resumes each request where it
//     left off; admission and completion keep flowing throughout.
//
// Everything is seeded and virtual-time-driven: the same --seed gives
// byte-identical stdout and Chrome trace (scripts/check_checkpoint.sh
// asserts this over a seed sweep, plus the checkpoint/restore/migrate
// trace landmarks).
//
//===----------------------------------------------------------------------===//

#include "BenchFlags.h"
#include "checkpoint/Snapshot.h"
#include "core/Region.h"
#include "morta/Controller.h"
#include "morta/Platform.h"
#include "morta/Watchdog.h"
#include "serve/ServeLoop.h"
#include "sim/Faults.h"
#include "support/Rng.h"
#include "telemetry/ChromeTrace.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace parcae;
using namespace parcae::rt;
namespace sim = parcae::sim;

namespace {

constexpr std::uint64_t NumIters = 20000;
constexpr sim::SimTime CheckpointAt = 35 * sim::MSec;
constexpr sim::SimTime DomainAt = 40 * sim::MSec + 130 * sim::USec;
constexpr sim::SimTime DomainDowntime = 30 * sim::MSec;
constexpr sim::SimTime DomainWarning = 6 * sim::MSec;

double us(sim::SimTime T) { return static_cast<double>(T) / sim::USec; }

/// The pipeline under test (bench_resilience's shape): the tail pushes
/// every iteration's payload into \p Tail so output completeness and
/// ordering are checkable across a migration.
FlexibleRegion makeRegion(std::vector<std::int64_t> *Tail) {
  FlexibleRegion R("ckpt");
  {
    RegionDesc D;
    D.Name = "ckpt-pipe";
    D.S = Scheme::PsDswp;
    D.Tasks.emplace_back("produce", TaskType::Seq, [](IterationContext &C) {
      C.Cost = 1500;
      C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
    });
    D.Tasks.emplace_back("work", TaskType::Par, [](IterationContext &C) {
      C.Cost = 24000;
      C.Out[0].Value = C.In[0].Value;
    });
    D.Tasks.emplace_back("commit", TaskType::Seq,
                         [Tail](IterationContext &C) {
                           C.Cost = 1000;
                           Tail->push_back(C.In[0].Value);
                         });
    D.Links.push_back({0, 1});
    D.Links.push_back({1, 2});
    R.addVariant(std::move(D));
  }
  {
    RegionDesc D;
    D.Name = "ckpt-seq";
    D.S = Scheme::Seq;
    D.Tasks.emplace_back("all", TaskType::Seq, [Tail](IterationContext &C) {
      C.Cost = 26500;
      Tail->push_back(static_cast<std::int64_t>(C.Seq));
    });
    R.addVariant(std::move(D));
  }
  return R;
}

bool Ok = true;
void check(bool Cond, const char *What) {
  if (!Cond) {
    std::printf("   FAIL: %s\n", What);
    Ok = false;
  }
}

//===----------------------------------------------------------------------===//
// Default mode: checkpoint on machine A, restore on machine B
//===----------------------------------------------------------------------===//

/// One uninterrupted run; returns the retired tail and completion time.
std::vector<std::int64_t> referenceRun(sim::SimTime *DoneAt) {
  std::vector<std::int64_t> Tail;
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  FlexibleRegion Region = makeRegion(&Tail);
  CountedWorkSource Src(NumIters);
  RuntimeCosts Costs;
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Runner.OnComplete = [&] { *DoneAt = Sim.now(); };
  Ctrl.start(8);
  Sim.runUntil(2 * sim::Sec);
  check(Runner.completed(), "reference run did not complete");
  return Tail;
}

int runMigrate(std::uint64_t Seed) {
  std::printf("== Checkpoint: hot restart — checkpoint machine A at"
              " %.0f ms, restore on machine B (seed=%llu) ==\n\n",
              us(CheckpointAt) / 1000.0,
              static_cast<unsigned long long>(Seed));

  sim::SimTime RefDoneAt = 0;
  std::vector<std::int64_t> Reference = referenceRun(&RefDoneAt);
  std::printf("   reference: completed at %.2f ms, %zu iterations"
              " retired\n",
              us(RefDoneAt) / 1000.0, Reference.size());

  // --- Machine A: run, checkpoint, tear down ---------------------------
  std::vector<std::int64_t> Tail;
  std::string Serialized;
  sim::SimTime QuiesceLatency = 0;
  unsigned CacheEntries = 0;
  {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    FlexibleRegion Region = makeRegion(&Tail);
    CountedWorkSource Src(NumIters);
    RuntimeCosts Costs;
    RegionRunner Runner(M, Costs, Region, Src);
    RegionController Ctrl(Runner);
    Ctrl.start(8);

    sim::SimTime RequestedAt = 0;
    Sim.scheduleAt(CheckpointAt, [&] {
      RequestedAt = Sim.now();
      bool Accepted = Ctrl.checkpointTo([&](ckpt::RegionSnapshot S) {
        QuiesceLatency = Sim.now() - RequestedAt;
        CacheEntries = static_cast<unsigned>(S.Ctrl.Cache.size());
        Serialized = S.serialize();
      });
      check(Accepted, "checkpoint request refused");
    });
    Sim.runUntil(CheckpointAt + 10 * sim::MSec);

    check(!Serialized.empty(), "no snapshot was captured");
    check(Runner.suspended(), "runner not suspended after the checkpoint");
    check(Ctrl.state() == CtrlState::Done,
          "controller not done after handing the region off");
    std::printf("   machine A: checkpointed %llu/%llu iterations at"
                " %.2f ms (quiesce %.0f us, %u checkpoint(s), snapshot"
                " %zu bytes, %u cached config(s))\n",
                static_cast<unsigned long long>(Runner.totalRetired()),
                static_cast<unsigned long long>(NumIters),
                us(CheckpointAt) / 1000.0, us(QuiesceLatency),
                Runner.checkpoints(), Serialized.size(), CacheEntries);
  } // machine A (simulator, machine, runner, controller) torn down

  // --- The wire format round-trips byte-identically --------------------
  ckpt::RegionSnapshot S;
  check(ckpt::RegionSnapshot::deserialize(Serialized, S),
        "snapshot failed to deserialize");
  check(S.serialize() == Serialized,
        "serialize/deserialize/serialize round trip not byte-identical");
  check(S.Cursor == Tail.size(),
        "snapshot cursor does not match the retired output");
  check(S.Ctrl.SeqThroughput > 0,
        "snapshot carries no sequential baseline");
  std::printf("   snapshot: region '%s', cursor %llu, config %s, chunk"
              " K=%llu; round trip byte-identical\n",
              S.Region.c_str(), static_cast<unsigned long long>(S.Cursor),
              S.Config.str().c_str(),
              static_cast<unsigned long long>(S.ChunkK));

  // --- Machine B: fresh simulator, restore, run to completion ----------
  sim::SimTime DoneAt = 0;
  {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    FlexibleRegion Region = makeRegion(&Tail);
    CountedWorkSource Src(0); // restoreState rewinds it to the snapshot
    RuntimeCosts Costs;
    RegionRunner Runner(M, Costs, Region, Src);
    RegionController Ctrl(Runner);
    Runner.OnComplete = [&] { DoneAt = Sim.now(); };
    Ctrl.startFromSnapshot(8, S);
    Sim.runUntil(2 * sim::Sec);

    check(Runner.completed(), "restored region did not complete");
    // No re-measurement: the restored controller only ever monitors.
    bool MonitorOnly = true;
    for (const RegionController::TraceEntry &E : Ctrl.trace())
      if (E.St != CtrlState::Monitor && E.St != CtrlState::Done)
        MonitorOnly = false;
    check(MonitorOnly,
          "restored controller re-entered a measurement state");
    std::printf("   machine B: restored at cursor %llu, completed at"
                " %.2f ms under %s (controller states: MONITOR only)\n",
                static_cast<unsigned long long>(S.Cursor),
                us(DoneAt) / 1000.0, Runner.config().str().c_str());
  }

  // --- Exactly-once across the migration -------------------------------
  check(Tail.size() == Reference.size(),
        "migrated output incomplete or duplicated");
  if (Tail.size() == Reference.size())
    for (std::size_t I = 0; I < Tail.size(); ++I)
      if (Tail[I] != Reference[I]) {
        check(false, "migrated output diverges from the reference");
        std::printf("         first divergence at index %zu: got %lld,"
                    " want %lld\n",
                    I, static_cast<long long>(Tail[I]),
                    static_cast<long long>(Reference[I]));
        break;
      }
  std::printf("   output: %zu iterations, identical to the uninterrupted"
              " reference\n",
              Tail.size());
  return 0;
}

//===----------------------------------------------------------------------===//
// --drain: watchdog-driven migration off a warned failure domain
//===----------------------------------------------------------------------===//

int runDrain(std::uint64_t Seed) {
  std::printf("== Checkpoint: warning drain — 3-core domain announced"
              " %.0f ms ahead, watchdog migrates proactively (seed=%llu)"
              " ==\n\n",
              us(DomainWarning) / 1000.0,
              static_cast<unsigned long long>(Seed));

  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  sim::FaultPlan Plan;
  Plan.addStraggler(/*Core=*/1, /*At=*/20 * sim::MSec,
                    /*Duration=*/15 * sim::MSec, /*Dilation=*/4.0);
  Plan.addDomain("socket1", {4, 5, 6}, DomainAt, DomainDowntime,
                 DomainWarning);
  // Gentle transients (single failure each, well inside the retry
  // budget): the drain path must stay abort-free.
  Plan.scatterTransients(Seed, "work", /*SeqBegin=*/2000, /*SeqEnd=*/18000,
                         /*Count=*/40, /*MaxFailCount=*/1);
  M.installFaultPlan(std::move(Plan));

  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeRegion(&Tail);
  CountedWorkSource Src(NumIters);
  RuntimeCosts Costs;
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);

  sim::SimTime DoneAt = 0;
  Runner.OnComplete = [&] { DoneAt = Sim.now(); };
  Ctrl.start(8);
  Dog.start();

  std::vector<unsigned> BudgetSteps{Ctrl.threadBudget()};
  std::function<void()> BudgetTick = [&] {
    if (Ctrl.threadBudget() != BudgetSteps.back())
      BudgetSteps.push_back(Ctrl.threadBudget());
    if (!Runner.completed())
      Sim.schedule(250 * sim::USec, BudgetTick);
  };
  Sim.schedule(250 * sim::USec, BudgetTick);

  Sim.runUntil(2 * sim::Sec);

  unsigned Shrinks = 0, Grows = 0;
  for (std::size_t I = 1; I < BudgetSteps.size(); ++I)
    (BudgetSteps[I] < BudgetSteps[I - 1] ? Shrinks : Grows)++;

  check(Runner.completed(), "region did not complete");
  check(Tail.size() == NumIters, "tail output incomplete or duplicated");
  for (std::size_t I = 0; I < Tail.size(); ++I)
    if (Tail[I] != static_cast<std::int64_t>(I)) {
      check(false, "tail output out of order");
      break;
    }
  check(Dog.drainsStarted() >= 1, "watchdog never started a drain");
  check(Dog.drainsCompleted() >= 1, "warning drain never completed");
  check(Runner.checkpoints() >= 1, "region was never checkpointed");
  // The whole point of the warning: nothing aborted, nothing stranded.
  check(Runner.recoveries() == 0,
        "proactive drain must not abort the region");
  check(Dog.threadsRescued() == 0,
        "proactive drain must strand no thread");
  check(Dog.detections() == 0,
        "the announced failure must not register as a detection");
  check(Runner.totalFaults() > 0, "no transient fault was ever injected");
  check(Shrinks >= 1, "thread budget never shrank across the drain");
  check(Grows >= 1, "thread budget never grew back after repair");
  check(M.onlineCores() == 8, "expected all 8 cores back after repair");
  check(DoneAt > DomainAt + DomainDowntime,
        "run finished before the repair: grow-back unexercised");

  std::printf("   completed at %.2f ms; %llu/%llu iterations retired\n",
              us(DoneAt) / 1000.0,
              static_cast<unsigned long long>(Runner.totalRetired()),
              static_cast<unsigned long long>(NumIters));
  std::printf("   drain: %u started, %u completed, warning-to-resumed"
              " %.0f us, %u checkpoint(s), %u chunk reseed(s)\n",
              Dog.drainsStarted(), Dog.drainsCompleted(),
              us(Dog.lastDrainLatency()), Runner.checkpoints(),
              Runner.chunkReseeds());
  std::printf("   aborts avoided: %u abortive recovery(s), %u thread(s)"
              " rescued, %u capacity-drop detection(s)\n",
              Runner.recoveries(), Dog.threadsRescued(), Dog.detections());
  std::printf("   budget:");
  for (std::size_t I = 0; I < BudgetSteps.size(); ++I)
    std::printf("%s%u", I == 0 ? " " : " -> ", BudgetSteps[I]);
  std::printf(" (%u shrink(s), %u grow(s)); %u/8 cores online, %u"
              " repaired\n",
              Shrinks, Grows, M.onlineCores(), M.repairsApplied());
  std::printf("   faults: %llu transient attempt(s), %llu escalation(s),"
              " %u growth detection(s)\n",
              static_cast<unsigned long long>(Runner.totalFaults()),
              static_cast<unsigned long long>(Runner.totalEscalations()),
              Dog.growthsDetected());
  return 0;
}

//===----------------------------------------------------------------------===//
// --serve: live migration of per-request regions under open-loop load
//===----------------------------------------------------------------------===//

FlexibleRegion makeServiceRegion(const char *Name, sim::SimTime CostPerIter) {
  FlexibleRegion R(Name);
  RegionDesc D;
  D.Name = std::string(Name) + "-par";
  D.S = Scheme::DoAny;
  D.Tasks.emplace_back("work", TaskType::Par,
                       [CostPerIter](IterationContext &Ctx) {
                         Ctx.Cost = CostPerIter;
                       });
  R.addVariant(std::move(D));
  return R;
}

int runServe(std::uint64_t Seed) {
  using namespace parcae::serve;
  constexpr sim::SimTime PhaseLen = 200 * sim::MSec;
  constexpr sim::SimTime WarnAtDomain = 300 * sim::MSec + 130 * sim::USec;

  std::printf("== Checkpoint: live migration — 2 serve classes on 16"
              " cores, 3-core domain warned mid-overload (seed=%llu)"
              " ==\n\n",
              static_cast<unsigned long long>(Seed));

  sim::Simulator Sim;
  sim::Machine M(Sim, 16);
  sim::FaultPlan Plan;
  Plan.addDomain("socket1", {12, 13, 14}, WarnAtDomain,
                 /*Downtime=*/100 * sim::MSec, /*Warning=*/5 * sim::MSec);
  M.installFaultPlan(std::move(Plan));

  RuntimeCosts Costs;
  PlatformDaemon Daemon(16);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc Api;
  Api.Name = "api";
  Api.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("api", 60000);
  };
  Api.ItersPerRequest = 32;
  Api.Config = {Scheme::DoAny, {2}};
  Api.QueueCapacity = 512;
  Api.Slo = {95.0, 10 * sim::MSec};
  Api.Policy = std::make_unique<DeadlineEarlyDrop>(10 * sim::MSec);
  unsigned ApiIdx = Serve.addClass(std::move(Api));

  RequestClassDesc Batch;
  Batch.Name = "batch";
  Batch.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("batch", 150000);
  };
  Batch.ItersPerRequest = 64;
  Batch.Config = {Scheme::DoAny, {2}};
  Batch.QueueCapacity = 256;
  Batch.Slo = {95.0, 60 * sim::MSec};
  unsigned BatchIdx = Serve.addClass(std::move(Batch));

  std::uint64_t CompletedBeforeWarn = 0, CompletedAfterResume = 0;
  Serve.OnRequestDone = [&](const ServeRequest &R) {
    if (R.Shed || R.Rejected)
      return; // rejected requests have no CompletedAt to bucket
    if (R.CompletedAt < WarnAtDomain - 5 * sim::MSec)
      ++CompletedBeforeWarn;
    else if (R.CompletedAt > WarnAtDomain)
      ++CompletedAfterResume;
  };

  Rng Root(Seed);
  std::uint64_t ApiSeed = Root.next(), BatchSeed = Root.next();
  Serve.startArrivals(ApiIdx,
                      std::make_unique<TraceArrivals>(
                          std::vector<TraceSegment>{
                              {0.2, 1500.0}, {0.2, 8000.0}, {0.2, 1500.0}},
                          ApiSeed));
  Serve.startArrivals(BatchIdx,
                      std::make_unique<TraceArrivals>(
                          std::vector<TraceSegment>{{0.6, 300.0}},
                          BatchSeed));
  Daemon.startArbiter(Sim, sim::MSec);

  Sim.runUntil(3 * PhaseLen);
  while ((Serve.queueDepth(ApiIdx) || Serve.inService(ApiIdx) ||
          Serve.queueDepth(BatchIdx) || Serve.inService(BatchIdx)) &&
         Sim.now() < 2 * sim::Sec)
    Sim.runUntil(Sim.now() + 5 * sim::MSec);
  Daemon.stopArbiter();

  const ServeLoop::ClassStats &ApiSt = Serve.stats(ApiIdx);
  const ServeLoop::ClassStats &BatchSt = Serve.stats(BatchIdx);
  std::printf(" class | arrived admitted rejected  shed  done | p95ms\n");
  std::printf(" ------+--------------------------------------+------\n");
  const ServeLoop::ClassStats *Sts[2] = {&ApiSt, &BatchSt};
  const char *Names[2] = {"api", "batch"};
  for (int Cls = 0; Cls < 2; ++Cls)
    std::printf(" %-5s | %7llu %8llu %8llu %5llu %5llu | %5.2f\n",
                Names[Cls],
                static_cast<unsigned long long>(Sts[Cls]->Arrived),
                static_cast<unsigned long long>(Sts[Cls]->Admitted),
                static_cast<unsigned long long>(Sts[Cls]->Rejected),
                static_cast<unsigned long long>(Sts[Cls]->Shed),
                static_cast<unsigned long long>(Sts[Cls]->Completed),
                Sts[Cls]->TotalUs.percentile(95) / 1e3);

  check(Serve.migrations() > 0,
        "no in-flight request was migrated off the domain");
  check(Serve.drainsCompleted() >= 1, "serve drain never completed");
  check(!Serve.draining(), "drain hold never released");
  check(CompletedBeforeWarn > 0, "no request completed before the warning");
  check(CompletedAfterResume > 0,
        "no request completed after the migration");
  check(ApiSt.Completed > 0 && BatchSt.Completed > 0,
        "a class starved across the drain");
  check(Serve.queueDepth(ApiIdx) == 0 && Serve.inService(ApiIdx) == 0 &&
            Serve.queueDepth(BatchIdx) == 0 &&
            Serve.inService(BatchIdx) == 0,
        "run did not drain");
  check(M.onlineCores() == 16, "expected all 16 cores back after repair");

  std::printf("\n   migration: %llu request region(s) migrated, %u"
              " drain(s) completed\n",
              static_cast<unsigned long long>(Serve.migrations()),
              Serve.drainsCompleted());
  std::printf("   traffic: %llu completion(s) before the warning, %llu"
              " after the migration; drained at %.2f ms\n",
              static_cast<unsigned long long>(CompletedBeforeWarn),
              static_cast<unsigned long long>(CompletedAfterResume),
              us(Sim.now()) / 1000.0);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags =
      bench::BenchFlags::parse(Argc, Argv, {"--drain", "--serve"});
  telemetry::TraceFile Trace(Flags.TracePath);
  bool Drain = false, ServeMode = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--drain") == 0)
      Drain = true;
    if (std::strcmp(Argv[I], "--serve") == 0)
      ServeMode = true;
  }

  if (Drain)
    runDrain(Flags.Seed);
  else if (ServeMode)
    runServe(Flags.Seed);
  else
    runMigrate(Flags.Seed);

  std::printf("\nCHECKPOINT: %s\n", Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}
