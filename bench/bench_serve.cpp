//===- bench_serve.cpp - Open-loop serving under load phases ---------------===//
//
// The serving layer end to end: two request classes on a 16-core machine,
// arbitrated by the platform daemon with latency SLOs.
//
//   * "api"   — light requests (32 x 60k-cycle iterations, DoAny@2) with
//               a tight SLO (p95 <= 10 ms) and deadline-aware early-drop
//               admission. Its arrival rate steps through three phases:
//               under-load -> overload -> recovery.
//   * "batch" — heavy requests (64 x 150k-cycle iterations, DoAny@2) with
//               a loose SLO (p95 <= 60 ms) and drop-tail admission, at a
//               steady Poisson-like rate throughout.
//
// Under overload the api class cannot meet demand inside its fair share:
// the daemon's SLO pass moves budget from the (SLO-meeting) batch class
// to the violating api class, the early-drop policy sheds requests whose
// queue wait already blew the deadline, and goodput holds instead of
// collapsing. When the load drops the lent budget flows back.
//
// The run prints a per-phase latency/goodput table, the SLO budget-
// transfer timeline, and a SERVE: OK/FAIL verdict; --json emits the
// machine-readable summary scripts/bench_json.sh collects. Everything is
// seeded and virtual-time-driven: the same --seed gives byte-identical
// output (scripts/check_serve.sh asserts this over a seed sweep).
//
// --batch runs the same seeded scenario twice — unbatched baseline, then
// with per-class BatchPolicy coalescing — and reports the goodput speedup
// and region spin-up amortization side by side, with per-request latency
// percentiles attributed from inside the batches (never per-batch
// numbers). scripts/check_serve.sh batch gates the speedup and the
// batched run's determinism.
//
//===----------------------------------------------------------------------===//

#include "BenchFlags.h"
#include "morta/Platform.h"
#include "serve/ServeLoop.h"
#include "sim/Faults.h"
#include "support/Stats.h"
#include "telemetry/ChromeTrace.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace parcae;
using namespace parcae::rt;
using namespace parcae::serve;

namespace {

/// A single-stage DOANY service region: every iteration costs a fixed
/// number of cycles, and each worker pays \p ContextLoad once at launch
/// (Tinit: loading the request's context/model state — the per-region
/// cold-start that batching amortizes across member requests). Reuses
/// \p Name across requests so telemetry keeps one process track per
/// class.
FlexibleRegion makeServiceRegion(const char *Name, sim::SimTime CostPerIter,
                                 sim::SimTime ContextLoad) {
  FlexibleRegion R(Name);
  RegionDesc D;
  D.Name = std::string(Name) + "-par";
  D.S = Scheme::DoAny;
  D.Tasks.emplace_back("work", TaskType::Par,
                       [CostPerIter](IterationContext &Ctx) {
                         Ctx.Cost = CostPerIter;
                       });
  D.Tasks.back().InitCost = ContextLoad;
  R.addVariant(std::move(D));
  return R;
}

constexpr sim::SimTime PhaseLen = 300 * sim::MSec;
constexpr int NumPhases = 3;
const char *PhaseNames[NumPhases] = {"under", "overload", "recovery"};

int phaseOf(sim::SimTime At) {
  int P = static_cast<int>(At / PhaseLen);
  return P < NumPhases ? P : NumPhases - 1;
}

/// Per-class, per-arrival-phase accounting (requests are attributed to
/// the phase they arrived in, wherever they finish).
struct Bucket {
  std::uint64_t Completed = 0;
  std::uint64_t Shed = 0;
  std::uint64_t Violations = 0;
  SampleSet TotalMs;

  double goodputPerSec() const {
    return static_cast<double>(Completed) / sim::toSeconds(PhaseLen);
  }
};

/// Cumulative arrival-side counters snapshotted at each phase boundary.
struct Snapshot {
  std::uint64_t Arrived = 0;
  std::uint64_t Admitted = 0;
  std::uint64_t Rejected = 0;
  unsigned Budget = 0;
};

double ms(sim::SimTime T) { return static_cast<double>(T) / sim::MSec; }

/// Everything one scenario run produces that the A/B report (and the
/// JSON emitter) needs after the simulator is gone.
struct ScenarioOut {
  Bucket Buckets[2][NumPhases];
  Snapshot Snaps[2][NumPhases];
  std::size_t TransferCount = 0;
  std::uint64_t ToApi = 0;
  BatchStats BStats[2]; ///< per class; singletons count as batches of 1
  bool Ok = true;       ///< the unbatched verdict (SERVE: OK)
  bool UnderViol = false;
  bool Drained = false;
};

/// One full three-phase run. \p Batched switches the per-class
/// BatchPolicy on; everything else — seeds, machine, load — is
/// identical, so an unbatched/batched pair is a true A/B at equal seeds.
/// Prints the header, per-phase table, and SLO timeline; the SERVE
/// verdict is printed (and enforced) only for the unbatched baseline,
/// whose load story it describes.
///
/// \p Straggler turns core 0 into a 32x tar pit for the whole overload
/// phase: 0 = healthy machine, 1 = dilated core with the mitigation off
/// (every dispatch to core 0 strands a worker for a wall quantum), 2 =
/// dilated core with slow-core-aware placement on (the rate sensor
/// penalizes core 0 after its first overstayed slice and dispatch routes
/// around it). A 1/2 pair at equal seeds is the goodput-recovery A/B.
ScenarioOut runScenario(std::uint64_t Seed, bool Batched, int Straggler = 0) {
  std::printf("== Serve: open-loop serving, 2 classes on a 16-core machine"
              " (seed=%llu) ==\n",
              static_cast<unsigned long long>(Seed));
  std::printf("   api:   32 x 60k-cycle DoAny@2 + 0.5 ms context load, SLO p95 <="
              " 10.0 ms,"
              " deadline-early-drop, queue 512\n");
  std::printf("   batch: 64 x 150k-cycle DoAny@2 + 0.5 ms context load, SLO p95 <="
              " 60.0 ms,"
              " drop-tail, queue 256\n");
  std::printf("   load:  api 1500/s -> 8000/s -> 1500/s (300 ms phases);"
              " batch steady 300/s\n");
  if (Batched)
    std::printf("   batching: api max 8 / 2.0 ms window, batch max 4 /"
                " 10.0 ms window, slo-close at 0.5 x target\n");
  if (Straggler)
    std::printf("   straggler: core 0 dilated 32x across the overload"
                " phase, 15-thread grant (1 core of headroom), slow-core"
                " avoidance %s\n",
                Straggler == 2 ? "ON" : "OFF");
  std::printf("\n");

  sim::Simulator Sim;
  sim::MachineConfig MC;
  MC.SlowCoreAvoidance = Straggler == 2;
  sim::Machine M(Sim, 16, MC);
  if (Straggler) {
    sim::FaultPlan Plan;
    Plan.addStraggler(/*Core=*/0, /*At=*/PhaseLen, /*Duration=*/PhaseLen,
                      /*Dilation=*/32.0);
    M.installFaultPlan(std::move(Plan));
  }
  RuntimeCosts Costs;
  // Straggler mode grants one core of headroom: at a full 16-on-16 grant
  // the dilated core is never free, so a work-conserving dispatcher has
  // no choice to make and routing around the tar pit is impossible by
  // construction. One spare core is exactly the slack avoidance needs.
  PlatformDaemon Daemon(Straggler ? 15 : 16);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc Api;
  Api.Name = "api";
  Api.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("api", 60000, 500 * sim::USec);
  };
  Api.ItersPerRequest = 32;
  Api.Config = {Scheme::DoAny, {2}};
  Api.QueueCapacity = 512;
  Api.Slo = {95.0, 10 * sim::MSec};
  // Shed requests whose queue wait already ate the whole SLO budget:
  // under overload latency saturates near the target (instead of growing
  // without bound) while excess arrivals are dropped.
  Api.Policy = std::make_unique<DeadlineEarlyDrop>(10 * sim::MSec);
  if (Batched)
    Api.Batch = {8, 2 * sim::MSec, 0.5};
  unsigned ApiIdx = Serve.addClass(std::move(Api));

  RequestClassDesc Batch;
  Batch.Name = "batch";
  Batch.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("batch", 150000, 500 * sim::USec);
  };
  Batch.ItersPerRequest = 64;
  Batch.Config = {Scheme::DoAny, {2}};
  Batch.QueueCapacity = 256;
  Batch.Slo = {95.0, 60 * sim::MSec};
  if (Batched)
    Batch.Batch = {4, 10 * sim::MSec, 0.5};
  unsigned BatchIdx = Serve.addClass(std::move(Batch));
  const unsigned ClassIdx[2] = {ApiIdx, BatchIdx};

  ScenarioOut Out;
  auto &Buckets = Out.Buckets;
  Serve.OnRequestDone = [&](const ServeRequest &R) {
    if (R.Rejected)
      return; // refused at arrival: counted via the Rejected snapshots
    int Cls = R.ClassIdx == ApiIdx ? 0 : 1;
    Bucket &B = Buckets[Cls][phaseOf(R.ArrivedAt)];
    if (R.Shed) {
      ++B.Shed;
      return;
    }
    ++B.Completed;
    B.TotalMs.add(ms(R.totalLatency()));
    sim::SimTime Target = Cls == 0 ? 10 * sim::MSec : 60 * sim::MSec;
    if (R.totalLatency() > Target)
      ++B.Violations;
  };

  // Boundary snapshots of the arrival-side counters and budgets:
  // Snaps[c][p] holds class c's cumulative counts at the END of phase p.
  auto &Snaps = Out.Snaps;
  for (int P = 0; P < NumPhases; ++P) {
    Sim.schedule(static_cast<sim::SimTime>(P + 1) * PhaseLen, [&, P] {
      for (int Cls = 0; Cls < 2; ++Cls) {
        const ServeLoop::ClassStats &St = Serve.stats(ClassIdx[Cls]);
        Snaps[Cls][P] = {St.Arrived, St.Admitted, St.Rejected,
                         Serve.budgetOf(ClassIdx[Cls])};
      }
    });
  }

  // Arrival processes: a rate-curve replay for the phased api load and a
  // single steady segment for batch. Per-class seeds split off the run
  // seed so adding a class never perturbs another's stream.
  Rng Root(Seed);
  std::uint64_t ApiSeed = Root.next(), BatchSeed = Root.next();
  Serve.startArrivals(
      ApiIdx, std::make_unique<TraceArrivals>(
                  std::vector<TraceSegment>{
                      {0.3, 1500.0}, {0.3, 8000.0}, {0.3, 1500.0}},
                  ApiSeed));
  Serve.startArrivals(BatchIdx,
                      std::make_unique<TraceArrivals>(
                          std::vector<TraceSegment>{{0.9, 300.0}}, BatchSeed));

  // The straggler A/B isolates the *placement* effect: the SLO arbiter's
  // budget transfers react to the tar pit too and would redistribute the
  // pain across classes differently on each side, confounding the
  // comparison. Registration-time rebalance still hands out demand-driven
  // budgets; only the periodic SLO pass is off.
  if (!Straggler)
    Daemon.startArbiter(Sim, sim::MSec);

  Sim.runUntil(NumPhases * PhaseLen);
  // Drain: arrivals have ended; keep simulating until every queued and
  // in-service request finished (bounded, in case of a pile-up).
  while ((Serve.queueDepth(ApiIdx) || Serve.inService(ApiIdx) ||
          Serve.queueDepth(BatchIdx) || Serve.inService(BatchIdx)) &&
         Sim.now() < 2 * sim::Sec)
    Sim.runUntil(Sim.now() + 5 * sim::MSec);
  Daemon.stopArbiter();

  // --- Per-phase latency/goodput table ---------------------------------
  std::printf(" class | phase    | arrived admit  rej shed  done |"
              " goodput/s |   p50ms   p95ms   p99ms | viol\n");
  std::printf(" ------+----------+-------------------------------+"
              "-----------+-------------------------+-----\n");
  for (int Cls = 0; Cls < 2; ++Cls) {
    const char *Name = Cls == 0 ? "api" : "batch";
    for (int P = 0; P < NumPhases; ++P) {
      Snapshot Prev = P > 0 ? Snaps[Cls][P - 1] : Snapshot{};
      const Snapshot &Cur = Snaps[Cls][P];
      const Bucket &B = Buckets[Cls][P];
      std::printf(" %-5s | %-8s | %7llu %5llu %4llu %4llu %5llu |"
                  " %9.1f | %7.2f %7.2f %7.2f | %4llu\n",
                  Name, PhaseNames[P],
                  static_cast<unsigned long long>(Cur.Arrived - Prev.Arrived),
                  static_cast<unsigned long long>(Cur.Admitted -
                                                  Prev.Admitted),
                  static_cast<unsigned long long>(Cur.Rejected -
                                                  Prev.Rejected),
                  static_cast<unsigned long long>(B.Shed),
                  static_cast<unsigned long long>(B.Completed),
                  B.goodputPerSec(), B.TotalMs.percentile(50),
                  B.TotalMs.percentile(95), B.TotalMs.percentile(99),
                  static_cast<unsigned long long>(B.Violations));
    }
  }

  // --- SLO budget-transfer timeline ------------------------------------
  const auto &Transfers = Daemon.sloTransfers();
  std::uint64_t ToApi = 0, Returns = 0;
  for (const auto &T : Transfers) {
    if (std::string(T.Why) == "return")
      ++Returns;
    else if (T.To == "api")
      ++ToApi;
  }
  std::printf("\n   slo timeline: %zu transfer(s), %llu toward api, %llu"
              " hand-back(s)\n",
              Transfers.size(), static_cast<unsigned long long>(ToApi),
              static_cast<unsigned long long>(Returns));
  std::size_t Show = Transfers.size() < 8 ? Transfers.size() : 8;
  for (std::size_t I = 0; I < Show; ++I)
    std::printf("     [%8.2f ms] %s -> %s %u thread(s) (%s)\n",
                ms(Transfers[I].At), Transfers[I].From.c_str(),
                Transfers[I].To.c_str(), Transfers[I].Threads,
                Transfers[I].Why);
  std::printf("   budgets at phase ends: api %u/%u/%u, batch %u/%u/%u\n",
              Snaps[0][0].Budget, Snaps[0][1].Budget, Snaps[0][2].Budget,
              Snaps[1][0].Budget, Snaps[1][1].Budget, Snaps[1][2].Budget);
  std::printf("   drained at %.2f ms (api q=%zu active=%u, batch q=%zu"
              " active=%u)\n\n",
              ms(Sim.now()), Serve.queueDepth(ApiIdx),
              Serve.inService(ApiIdx), Serve.queueDepth(BatchIdx),
              Serve.inService(BatchIdx));

  Out.TransferCount = Transfers.size();
  Out.ToApi = ToApi;
  Out.BStats[0] = Serve.batchStats(ApiIdx);
  Out.BStats[1] = Serve.batchStats(BatchIdx);
  Out.UnderViol =
      Buckets[0][0].Violations != 0 || Buckets[1][0].Violations != 0;
  Out.Drained = Serve.queueDepth(ApiIdx) == 0 && Serve.inService(ApiIdx) == 0 &&
                Serve.queueDepth(BatchIdx) == 0 &&
                Serve.inService(BatchIdx) == 0;

  if (Batched || Straggler)
    return Out; // the A/B report carries the verdict

  // --- Verdict (unbatched baseline) ------------------------------------
  bool Ok = true;
  auto Check = [&](bool Cond, const char *Msg) {
    if (!Cond) {
      Ok = false;
      std::printf("   CHECK FAIL: %s\n", Msg);
    }
  };
  Check(!Out.UnderViol, "SLO violations in the under-load phase");
  std::uint64_t OverloadDropped =
      Buckets[0][1].Shed + (Snaps[0][1].Rejected - Snaps[0][0].Rejected);
  Check(OverloadDropped > 0, "overload phase shed no load");
  Check(Buckets[0][1].goodputPerSec() >=
            0.8 * Buckets[0][0].goodputPerSec(),
        "overload goodput collapsed below 80% of under-load");
  Check(ToApi > 0, "no SLO-driven budget transfer toward the api class");
  Check(Out.Drained, "run did not drain");
  std::printf("SERVE: %s\n", Ok ? "OK" : "FAIL");
  Out.Ok = Ok;
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags =
      bench::BenchFlags::parse(Argc, Argv, {"--batch", "--straggler"});
  bool BatchMode = false, StragglerMode = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--batch") == 0)
      BatchMode = true;
    if (std::strcmp(Argv[I], "--straggler") == 0)
      StragglerMode = true;
  }
  telemetry::TraceFile Trace(Flags.TracePath);
  std::uint64_t Seed = Flags.Seed;

  if (StragglerMode) {
    // Goodput-recovery A/B: the same seeded overload with core 0 dilated,
    // mitigation off then on. The gate is the overload-phase api goodput
    // won back by routing around the tar pit.
    ScenarioOut SA = runScenario(Seed, /*Batched=*/false, /*Straggler=*/1);
    std::printf("=== A/B: same seed rerun with slow-core avoidance ===\n\n");
    ScenarioOut SB = runScenario(Seed, /*Batched=*/false, /*Straggler=*/2);

    double GA = SA.Buckets[0][1].goodputPerSec();
    double GB = SB.Buckets[0][1].goodputPerSec();
    double Recovery = GA > 0 ? GB / GA : 0.0;
    // Completions rise under mitigation, so compare violation *rates*:
    // absolute counts grow with the denominator.
    auto ViolRate = [](const Bucket &B) {
      return B.Completed ? static_cast<double>(B.Violations) /
                               static_cast<double>(B.Completed)
                         : 0.0;
    };
    double VA = ViolRate(SA.Buckets[0][1]), VB = ViolRate(SB.Buckets[0][1]);
    std::printf("   api overload goodput: %.1f -> %.1f req/s (%.2fx"
                " recovered), p95 %.2f -> %.2f ms, viol rate %.3f ->"
                " %.3f\n",
                GA, GB, Recovery, SA.Buckets[0][1].TotalMs.percentile(95),
                SB.Buckets[0][1].TotalMs.percentile(95), VA, VB);

    bool SOk = true;
    auto SCheck = [&](bool Cond, const char *Msg) {
      if (!Cond) {
        SOk = false;
        std::printf("   STRAGGLER CHECK FAIL: %s\n", Msg);
      }
    };
    SCheck(Recovery >= 1.05, "avoidance won back less than 5% goodput");
    SCheck(VB <= VA + 0.02,
           "avoidance worsened the overload SLO violation rate");
    SCheck(SA.Drained && SB.Drained, "a straggler run did not drain");
    std::printf("STRAGGLER: %s\n", SOk ? "OK" : "FAIL");

    if (Flags.JsonPath) {
      std::FILE *J = std::fopen(Flags.JsonPath, "w");
      if (!J) {
        std::fprintf(stderr, "cannot write %s\n", Flags.JsonPath);
        return 1;
      }
      std::fprintf(J,
                   "{\"bench\": \"serve\", \"mode\": \"straggler\","
                   " \"seed\": %llu,"
                   " \"overload_goodput_base\": %.1f,"
                   " \"overload_goodput_mitigated\": %.1f,"
                   " \"recovery\": %.4f, \"ok\": %s}\n",
                   static_cast<unsigned long long>(Seed), GA, GB, Recovery,
                   SOk ? "true" : "false");
      std::fclose(J);
    }
    return SOk ? 0 : 1;
  }

  ScenarioOut A = runScenario(Seed, /*Batched=*/false);
  bool Ok = A.Ok;

  ScenarioOut B;
  double Speedup = 0.0;
  bool BatchOk = true;
  if (BatchMode) {
    std::printf("=== A/B: same seed rerun with batched dispatch ===\n\n");
    B = runScenario(Seed, /*Batched=*/true);

    // --- Spin-up amortization + close-trigger report -------------------
    const char *Names[2] = {"api", "batch"};
    for (int Cls = 0; Cls < 2; ++Cls) {
      const BatchStats &U = A.BStats[Cls], &Bt = B.BStats[Cls];
      std::printf("   %-5s regions: %llu -> %llu (%.2f req/region;"
                  " closes size %llu timer %llu slo %llu; occupancy mean"
                  " %.2f max %.0f)\n",
                  Names[Cls], static_cast<unsigned long long>(U.Batches),
                  static_cast<unsigned long long>(Bt.Batches),
                  Bt.requestsPerRegion(),
                  static_cast<unsigned long long>(Bt.SizeCloses),
                  static_cast<unsigned long long>(Bt.TimerCloses),
                  static_cast<unsigned long long>(Bt.SloCloses),
                  Bt.OccupancyH.mean(), Bt.OccupancyH.max());
    }
    // Per-request latency attributed from inside the batches: the p95 a
    // member experienced, not the p95 of whole-batch turnaround.
    std::printf("   api overload per-request p95: %.2f ms -> %.2f ms"
                " (batched, watermark-attributed)\n",
                A.Buckets[0][1].TotalMs.percentile(95),
                B.Buckets[0][1].TotalMs.percentile(95));
    Speedup = A.Buckets[0][1].goodputPerSec() > 0
                  ? B.Buckets[0][1].goodputPerSec() /
                        A.Buckets[0][1].goodputPerSec()
                  : 0.0;
    std::printf("   batch goodput speedup: %.2fx (api overload %.1f ->"
                " %.1f req/s)\n",
                Speedup, A.Buckets[0][1].goodputPerSec(),
                B.Buckets[0][1].goodputPerSec());

    auto BCheck = [&](bool Cond, const char *Msg) {
      if (!Cond) {
        BatchOk = false;
        std::printf("   BATCH CHECK FAIL: %s\n", Msg);
      }
    };
    BCheck(Speedup >= 1.3, "batched overload goodput below 1.3x baseline");
    BCheck(!B.UnderViol, "batched run has under-load SLO violations");
    BCheck(B.Drained, "batched run did not drain");
    BCheck(B.BStats[0].requestsPerRegion() > 1.5,
           "api batches did not amortize region spin-up");
    BCheck(B.Buckets[0][1].TotalMs.count() == B.Buckets[0][1].Completed,
           "per-request latency samples missing inside batches");
    std::printf("BATCH: %s\n", BatchOk ? "OK" : "FAIL");
    Ok = Ok && BatchOk;
  }

  if (Flags.JsonPath) {
    std::FILE *J = std::fopen(Flags.JsonPath, "w");
    if (!J) {
      std::fprintf(stderr, "cannot write %s\n", Flags.JsonPath);
      return 1;
    }
    std::fprintf(J, "{\n  \"bench\": \"serve\",\n  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(Seed));
    std::fprintf(J, "  \"classes\": [\n");
    for (int Cls = 0; Cls < 2; ++Cls) {
      std::fprintf(J, "    {\"name\": \"%s\", \"phases\": [\n",
                   Cls == 0 ? "api" : "batch");
      for (int P = 0; P < NumPhases; ++P) {
        const Bucket &Bk = A.Buckets[Cls][P];
        std::fprintf(
            J,
            "      {\"name\": \"%s\", \"completed\": %llu, \"shed\": %llu,"
            " \"goodput_per_sec\": %.1f, \"p95_ms\": %.3f,"
            " \"violations\": %llu}%s\n",
            PhaseNames[P], static_cast<unsigned long long>(Bk.Completed),
            static_cast<unsigned long long>(Bk.Shed), Bk.goodputPerSec(),
            Bk.TotalMs.percentile(95),
            static_cast<unsigned long long>(Bk.Violations),
            P + 1 < NumPhases ? "," : "");
      }
      std::fprintf(J, "    ]}%s\n", Cls == 0 ? "," : "");
    }
    std::fprintf(J, "  ],\n  \"slo_transfers\": %zu,\n", A.TransferCount);
    if (BatchMode) {
      std::fprintf(J,
                   "  \"batch\": {\"speedup_overload_api\": %.3f,"
                   " \"classes\": [\n",
                   Speedup);
      const char *Names[2] = {"api", "batch"};
      for (int Cls = 0; Cls < 2; ++Cls) {
        const BatchStats &Bt = B.BStats[Cls];
        std::fprintf(
            J,
            "    {\"name\": \"%s\", \"batches\": %llu,"
            " \"requests_per_region\": %.3f, \"size_closes\": %llu,"
            " \"timer_closes\": %llu, \"slo_closes\": %llu,"
            " \"overload_goodput_per_sec\": %.1f,"
            " \"overload_p95_ms\": %.3f}%s\n",
            Names[Cls], static_cast<unsigned long long>(Bt.Batches),
            Bt.requestsPerRegion(),
            static_cast<unsigned long long>(Bt.SizeCloses),
            static_cast<unsigned long long>(Bt.TimerCloses),
            static_cast<unsigned long long>(Bt.SloCloses),
            B.Buckets[Cls][1].goodputPerSec(),
            B.Buckets[Cls][1].TotalMs.percentile(95),
            Cls == 0 ? "," : "");
      }
      std::fprintf(J, "  ]},\n");
    }
    std::fprintf(J, "  \"ok\": %s\n}\n", Ok ? "true" : "false");
    std::fclose(J);
  }
  return Ok ? 0 : 1;
}
