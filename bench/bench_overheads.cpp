//===- bench_overheads.cpp - Morta/Decima overheads (Section 8.3.6) -----------===//
//
// Two halves:
//
//  1. Simulated run-time overheads, measured on the virtual platform the
//     way Section 8.3.6 reports them: per-iteration monitoring cost, the
//     end-to-end latency of an in-place DoP change, and the latency of a
//     full pause-drain-resume (scheme switch).
//  2. Host-side compiler costs (google-benchmark): PDG construction,
//     PS-DSWP partitioning, and whole-loop compilation.
//
//===----------------------------------------------------------------------===//

#include "morta/RegionRunner.h"
#include "nona/Programs.h"
#include "support/Table.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace parcae;
using namespace parcae::rt;
using namespace parcae::ir;
namespace sim = parcae::sim;

namespace {

FlexibleRegion makeTinyPipeline() {
  FlexibleRegion R("ovh");
  RegionDesc D;
  D.Name = "ovh-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("a", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 1000;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  D.Tasks.emplace_back("b", TaskType::Par,
                       [](IterationContext &C) { C.Cost = 8000; });
  D.Links.push_back({0, 1});
  R.addVariant(std::move(D));
  {
    RegionDesc S;
    S.Name = "ovh-seq";
    S.S = Scheme::Seq;
    S.Tasks.emplace_back("all", TaskType::Seq,
                         [](IterationContext &C) { C.Cost = 9000; });
    R.addVariant(std::move(S));
  }
  return R;
}

void printSimulatedOverheads() {
  RuntimeCosts Costs;
  std::printf("== Section 8.3.6: Morta/Decima overheads ==\n\n");
  Table Consts({"constant (model)", "cycles @1GHz"});
  Consts.addRow({"Decima begin/end hook pair (2x rdtsc)",
                 Table::num(static_cast<long long>(Costs.HookCost))});
  Consts.addRow({"Task::getStatus() query",
                 Table::num(static_cast<long long>(Costs.StatusQuery))});
  Consts.addRow({"channel send / recv",
                 Table::num(static_cast<long long>(Costs.CommSend))});
  Consts.addRow({"per-iteration heap spill (unoptimized 7.1)",
                 Table::num(static_cast<long long>(Costs.HeapSpill))});
  Consts.print();

  // In-place DoP change latency: time until a worker on the new slot
  // retires its first iteration.
  {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    CountedWorkSource Src(1'000'000'000ull);
    FlexibleRegion Region = makeTinyPipeline();
    RegionRunner Runner(M, Costs, Region, Src);
    RegionConfig C;
    C.S = Scheme::PsDswp;
    C.DoP = {1, 2};
    Runner.start(C);
    Sim.runUntil(2 * sim::MSec);
    std::uint64_t Before = Runner.totalRetired();
    sim::SimTime T0 = Sim.now();
    RegionConfig N = C;
    N.DoP = {1, 4};
    Runner.reconfigure(N);
    // Run until throughput reflects the new width (retire 40 more).
    while (Runner.totalRetired() < Before + 40 && !Sim.empty())
      Sim.runOne();
    std::printf("\nin-place DoP change (2 -> 4): applied instantly;"
                " 40 iterations retired within %.1f us\n",
                static_cast<double>(Sim.now() - T0) / 1000.0);
  }

  // Full pause-drain-resume latency (scheme switch).
  {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    CountedWorkSource Src(1'000'000'000ull);
    FlexibleRegion Region = makeTinyPipeline();
    RegionRunner Runner(M, Costs, Region, Src);
    RegionConfig C;
    C.S = Scheme::PsDswp;
    C.DoP = {1, 4};
    Runner.start(C);
    Sim.runUntil(2 * sim::MSec);
    sim::SimTime T0 = Sim.now();
    bool Resumed = false;
    sim::SimTime TResume = 0;
    Runner.OnReconfigured = [&] {
      Resumed = true;
      TResume = Sim.now();
    };
    RegionConfig N;
    N.S = Scheme::Seq;
    N.DoP = {1};
    Runner.reconfigure(N);
    while (!Resumed && !Sim.empty())
      Sim.runOne();
    std::printf("full pause-drain-resume (PS-DSWP -> SEQ): %.1f us"
                " (drain + barrier + reconfigure + respawn)\n\n",
                static_cast<double>(TResume - T0) / 1000.0);
  }
}

// --- host-side compiler costs -----------------------------------------

void BM_PdgBuild(benchmark::State &State) {
  LoopProgram P = makeBranchy(64);
  for (auto _ : State) {
    PDG G(*P.F, P.AA);
    benchmark::DoNotOptimize(G.edges().size());
  }
}
BENCHMARK(BM_PdgBuild);

void BM_PsdswpPartition(benchmark::State &State) {
  LoopProgram P = makeChase(64);
  PDG G(*P.F, P.AA);
  for (auto _ : State) {
    PartitionPlan Plan = psdswpPartition(G, CompilerOptions{});
    benchmark::DoNotOptimize(Plan.Tasks.size());
  }
}
BENCHMARK(BM_PsdswpPartition);

void BM_CompileLoop(benchmark::State &State) {
  for (auto _ : State) {
    LoopProgram P = makeHistogram(64, 16);
    CompiledLoop CL(*P.F, P.AA, P.TripCount);
    benchmark::DoNotOptimize(CL.hasDoAny());
  }
}
BENCHMARK(BM_CompileLoop);

void BM_WidthScheduleQuery(benchmark::State &State) {
  WidthSchedule S(4);
  for (unsigned I = 1; I <= 8; ++I)
    S.append(I * 1000, 1 + I % 7);
  std::uint64_t Seq = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.firstSeqFor(Seq % 5, Seq));
    ++Seq;
  }
}
BENCHMARK(BM_WidthScheduleQuery);

} // namespace

int main(int argc, char **argv) {
  printSimulatedOverheads();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
