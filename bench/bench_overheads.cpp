//===- bench_overheads.cpp - Morta/Decima overheads (Section 8.3.6) -----------===//
//
// Three parts:
//
//  1. Simulated run-time overheads, measured on the virtual platform the
//     way Section 8.3.6 reports them: per-iteration monitoring cost, the
//     end-to-end latency of an in-place DoP change, and the latency of a
//     full pause-drain-resume (scheme switch).
//  2. Chunked-claiming A/B: per-iteration machinery + channel cost with
//     the chunk size pinned to 1 / 8 / 32, showing the 1/K amortization.
//     `--json <path>` emits this as a machine-readable summary
//     (scripts/bench_json.sh collects it into BENCH_overheads.json) and
//     skips part 3.
//  3. Host-side compiler costs (google-benchmark): PDG construction,
//     PS-DSWP partitioning, and whole-loop compilation.
//
//===----------------------------------------------------------------------===//

#include "BenchFlags.h"
#include "decima/Monitor.h"
#include "morta/RegionRunner.h"
#include "nona/Programs.h"
#include "support/Table.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

using namespace parcae;
using namespace parcae::rt;
using namespace parcae::ir;
namespace sim = parcae::sim;

namespace {

FlexibleRegion makeTinyPipeline() {
  FlexibleRegion R("ovh");
  RegionDesc D;
  D.Name = "ovh-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("a", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 1000;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  D.Tasks.emplace_back("b", TaskType::Par,
                       [](IterationContext &C) { C.Cost = 8000; });
  D.Links.push_back({0, 1});
  R.addVariant(std::move(D));
  {
    RegionDesc S;
    S.Name = "ovh-seq";
    S.S = Scheme::Seq;
    S.Tasks.emplace_back("all", TaskType::Seq,
                         [](IterationContext &C) { C.Cost = 9000; });
    R.addVariant(std::move(S));
  }
  return R;
}

void printSimulatedOverheads() {
  RuntimeCosts Costs;
  std::printf("== Section 8.3.6: Morta/Decima overheads ==\n\n");
  Table Consts({"constant (model)", "cycles @1GHz"});
  Consts.addRow({"Decima begin/end hook pair (2x rdtsc)",
                 Table::num(static_cast<long long>(Costs.HookCost))});
  Consts.addRow({"Task::getStatus() query",
                 Table::num(static_cast<long long>(Costs.StatusQuery))});
  Consts.addRow({"channel send / recv",
                 Table::num(static_cast<long long>(Costs.CommSend))});
  Consts.addRow({"per-iteration heap spill (unoptimized 7.1)",
                 Table::num(static_cast<long long>(Costs.HeapSpill))});
  Consts.print();

  // In-place DoP change latency: time until a worker on the new slot
  // retires its first iteration.
  {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    CountedWorkSource Src(1'000'000'000ull);
    FlexibleRegion Region = makeTinyPipeline();
    RegionRunner Runner(M, Costs, Region, Src);
    RegionConfig C;
    C.S = Scheme::PsDswp;
    C.DoP = {1, 2};
    Runner.start(C);
    Sim.runUntil(2 * sim::MSec);
    std::uint64_t Before = Runner.totalRetired();
    sim::SimTime T0 = Sim.now();
    RegionConfig N = C;
    N.DoP = {1, 4};
    Runner.reconfigure(N);
    // Run until throughput reflects the new width (retire 40 more).
    while (Runner.totalRetired() < Before + 40 && !Sim.empty())
      Sim.runOne();
    std::printf("\nin-place DoP change (2 -> 4): applied instantly;"
                " 40 iterations retired within %.1f us\n",
                static_cast<double>(Sim.now() - T0) / 1000.0);
  }

  // Full pause-drain-resume latency (scheme switch).
  {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    CountedWorkSource Src(1'000'000'000ull);
    FlexibleRegion Region = makeTinyPipeline();
    RegionRunner Runner(M, Costs, Region, Src);
    RegionConfig C;
    C.S = Scheme::PsDswp;
    C.DoP = {1, 4};
    Runner.start(C);
    Sim.runUntil(2 * sim::MSec);
    sim::SimTime T0 = Sim.now();
    bool Resumed = false;
    sim::SimTime TResume = 0;
    Runner.OnReconfigured = [&] {
      Resumed = true;
      TResume = Sim.now();
    };
    RegionConfig N;
    N.S = Scheme::Seq;
    N.DoP = {1};
    Runner.reconfigure(N);
    while (!Resumed && !Sim.empty())
      Sim.runOne();
    std::printf("full pause-drain-resume (PS-DSWP -> SEQ): %.1f us"
                " (drain + barrier + reconfigure + respawn)\n\n",
                static_cast<double>(TResume - T0) / 1000.0);
  }
}

// --- chunked claiming A/B (adaptive chunking, Section 8.3.6) -----------
// Runs a fine-grained pipeline with the chunk size pinned to K in
// {1, 8, 32} and reports the measured per-iteration Morta/Decima
// machinery + channel cost. K=1 is the classic one-claim-per-iteration
// protocol; the amortized fixed costs should fall roughly as 1/K until
// the CommPerToken marginal floor (and the channel-window clamp on K)
// takes over.

struct ChunkRun {
  std::uint64_t K;
  double OvhPerIter;  ///< hook + status-poll cycles per retired iteration
  double CommPerIter; ///< channel send/recv cycles per retired iteration
  double TotalPerIter() const { return OvhPerIter + CommPerIter; }
  double Throughput; ///< retired iterations per virtual second
};

FlexibleRegion makeFinePipeline() {
  // Iteration work small enough that per-iteration machinery matters:
  // the regime chunking exists for.
  FlexibleRegion R("fine");
  RegionDesc D;
  D.Name = "fine-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("produce", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 300;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  D.Tasks.emplace_back("consume", TaskType::Par,
                       [](IterationContext &C) { C.Cost = 600; });
  D.Links.push_back({0, 1});
  R.addVariant(std::move(D));
  return R;
}

ChunkRun runPinnedChunk(std::uint64_t K) {
  RuntimeCosts Costs;
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  CountedWorkSource Src(1'000'000'000ull);
  FlexibleRegion Region = makeFinePipeline();
  RegionRunner Runner(M, Costs, Region, Src);
  Runner.chunkPolicy().pin(K);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 2};
  Runner.start(C);
  Sim.runUntil(50 * sim::MSec);

  const RegionExec *E = Runner.exec();
  std::uint64_t Retired = Runner.totalRetired();
  ChunkRun R{K, 0, 0, 0};
  if (!E || Retired == 0)
    return R;
  for (unsigned T = 0; T < E->numTasks(); ++T) {
    // Decima's per-iteration view, rescaled by that task's iteration
    // count so the sum is cycles per *retired* iteration of the region.
    double Iters = static_cast<double>(E->stats(T).Iterations);
    R.OvhPerIter += Decima::getOverheadTime(*E, T) * Iters / Retired;
    R.CommPerIter += static_cast<double>(E->stats(T).CommTime) / Retired;
  }
  R.Throughput = static_cast<double>(Retired) / sim::toSeconds(Sim.now());
  return R;
}

std::vector<ChunkRun> printChunkAB() {
  std::printf("== chunked claiming: per-iteration overhead vs chunk size"
              " ==\n\n");
  std::vector<ChunkRun> Runs;
  for (std::uint64_t K : {1ull, 8ull, 32ull})
    Runs.push_back(runPinnedChunk(K));
  Table T({"chunk size K", "hooks+status /iter", "channel /iter",
           "total ovh /iter", "iters/sec"});
  for (const ChunkRun &R : Runs)
    T.addRow({Table::num(static_cast<long long>(R.K)),
              Table::num(R.OvhPerIter, 1), Table::num(R.CommPerIter, 1),
              Table::num(R.TotalPerIter(), 1),
              Table::num(R.Throughput, 0)});
  T.print();
  const ChunkRun &K1 = Runs.front();
  for (std::size_t I = 1; I < Runs.size(); ++I)
    std::printf("K=%llu: %.1fx less per-iteration overhead than K=1\n",
                static_cast<unsigned long long>(Runs[I].K),
                K1.TotalPerIter() / Runs[I].TotalPerIter());
  std::printf("(K pinned for A/B; the adaptive policy tunes it online and"
              " clamps to the channel window)\n\n");
  return Runs;
}

void writeJson(const char *Path, const std::vector<ChunkRun> &Runs) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "bench_overheads: cannot write %s\n", Path);
    std::exit(1);
  }
  RuntimeCosts Costs;
  std::fprintf(F, "{\n  \"bench\": \"overheads\",\n");
  std::fprintf(F, "  \"hook_cost\": %lld,\n  \"status_query\": %lld,\n",
               static_cast<long long>(Costs.HookCost),
               static_cast<long long>(Costs.StatusQuery));
  std::fprintf(F, "  \"chunk_runs\": [\n");
  for (std::size_t I = 0; I < Runs.size(); ++I)
    std::fprintf(F,
                 "    {\"k\": %llu, \"ovh_per_iter\": %.2f,"
                 " \"comm_per_iter\": %.2f, \"total_per_iter\": %.2f,"
                 " \"iters_per_sec\": %.0f}%s\n",
                 static_cast<unsigned long long>(Runs[I].K),
                 Runs[I].OvhPerIter, Runs[I].CommPerIter,
                 Runs[I].TotalPerIter(), Runs[I].Throughput,
                 I + 1 < Runs.size() ? "," : "");
  std::fprintf(F, "  ],\n");
  double R8 = 0, R32 = 0;
  for (const ChunkRun &R : Runs) {
    if (R.K == 8 && R.TotalPerIter() > 0)
      R8 = Runs.front().TotalPerIter() / R.TotalPerIter();
    if (R.K == 32 && R.TotalPerIter() > 0)
      R32 = Runs.front().TotalPerIter() / R.TotalPerIter();
  }
  std::fprintf(F, "  \"reduction_k8\": %.3f,\n  \"reduction_k32\": %.3f\n}\n",
               R8, R32);
  std::fclose(F);
  std::printf("wrote %s\n", Path);
}

// --- host-side compiler costs -----------------------------------------

void BM_PdgBuild(benchmark::State &State) {
  LoopProgram P = makeBranchy(64);
  for (auto _ : State) {
    PDG G(*P.F, P.AA);
    benchmark::DoNotOptimize(G.edges().size());
  }
}
BENCHMARK(BM_PdgBuild);

void BM_PsdswpPartition(benchmark::State &State) {
  LoopProgram P = makeChase(64);
  PDG G(*P.F, P.AA);
  for (auto _ : State) {
    PartitionPlan Plan = psdswpPartition(G, CompilerOptions{});
    benchmark::DoNotOptimize(Plan.Tasks.size());
  }
}
BENCHMARK(BM_PsdswpPartition);

void BM_CompileLoop(benchmark::State &State) {
  for (auto _ : State) {
    LoopProgram P = makeHistogram(64, 16);
    CompiledLoop CL(*P.F, P.AA, P.TripCount);
    benchmark::DoNotOptimize(CL.hasDoAny());
  }
}
BENCHMARK(BM_CompileLoop);

void BM_WidthScheduleQuery(benchmark::State &State) {
  WidthSchedule S(4);
  for (unsigned I = 1; I <= 8; ++I)
    S.append(I * 1000, 1 + I % 7);
  std::uint64_t Seq = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.firstSeqFor(Seq % 5, Seq));
    ++Seq;
  }
}
BENCHMARK(BM_WidthScheduleQuery);

} // namespace

int main(int argc, char **argv) {
  // Strips --json (and the other shared flags) so google-benchmark does
  // not see them.
  bench::BenchFlags Flags = bench::BenchFlags::parse(argc, argv);
  const char *JsonPath = Flags.JsonPath;

  printSimulatedOverheads();
  std::vector<ChunkRun> Runs = printChunkAB();
  if (JsonPath) {
    // JSON mode is the CI path: emit the summary and skip the host-side
    // google-benchmark section (compiler costs are not what it checks).
    writeJson(JsonPath, Runs);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
