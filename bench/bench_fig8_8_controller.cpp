//===- bench_fig8_8_controller.cpp - Figure 8.8 -------------------------------===//
//
// The Parcae run-time controller on Nona-compiled programs
// (Sections 8.3.2-8.3.4, Figure 8.8). Three sub-experiments:
//
//  (a) workload change: the per-iteration work of a DOANY loop quadruples
//      mid-run; MONITOR detects the throughput drop and re-calibrates;
//  (b) multiple parallelization schemes: a loop with both DOANY and
//      PS-DSWP variants; the controller measures both and enforces the
//      best (normalized throughputs are reported per state, like the
//      figure's annotations);
//  (c) resource availability change: the thread budget drops from 16 to
//      5 mid-run (a second program launches); the controller re-optimizes
//      under the new budget.
//
//===----------------------------------------------------------------------===//

#include "morta/Controller.h"
#include "nona/Programs.h"
#include "nona/Run.h"
#include "support/Table.h"
#include "telemetry/ChromeTrace.h"

#include <cstdio>

using namespace parcae;
using namespace parcae::ir;
namespace rt = parcae::rt;
namespace sim = parcae::sim;

namespace {

void printTrace(const std::vector<rt::RegionController::TraceEntry> &Trace,
                double Baseline) {
  Table T({"time(ms)", "state", "config", "thr (norm to INIT)"});
  const rt::RegionController::TraceEntry *Last = nullptr;
  unsigned Skipped = 0;
  for (const auto &E : Trace) {
    // Collapse runs of identical (state, config) samples — the figure's
    // interesting points are the transitions.
    if (Last && Last->St == E.St && Last->C == E.C && ++Skipped % 16 != 0)
      continue;
    Last = &E;
    std::string Thr =
        E.Thr > 0 && Baseline > 0 ? Table::num(E.Thr / Baseline, 2) : "-";
    T.addRow({Table::num(sim::toSeconds(E.At) * 1000, 1),
              rt::ctrlStateName(E.St), E.C.str(), Thr});
  }
  T.print();
}

double baselineOf(const std::vector<rt::RegionController::TraceEntry> &Tr) {
  for (const auto &E : Tr)
    if (E.St == rt::CtrlState::Init && E.Thr > 0)
      return E.Thr;
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  // `--trace out.trace.json` records all three sub-experiments into one
  // Chrome trace (the recorder rebases its clock across the simulators).
  telemetry::TraceFile Trace(telemetry::traceFlagPath(argc, argv));

  std::printf("== Figure 8.8(a): adaptation to workload change ==\n\n");
  {
    LoopProgram P = makeMonteCarlo(2000000);
    CompiledLoop CL(*P.F, P.AA, P.TripCount);
    std::printf("%s\n", CL.report().c_str());
    CL.resetState();
    sim::Simulator Sim;
    sim::Machine M(Sim, 16);
    rt::RuntimeCosts Costs;
    auto Src = CL.makeSource();
    rt::RegionRunner Runner(M, Costs, CL.region(), *Src);
    rt::RegionController Ctrl(Runner);
    Ctrl.start(16);
    // Quadruple the per-iteration work at t = 120 ms.
    Sim.schedule(120 * sim::MSec, [&CL] { CL.setWorkScale(4.0); });
    Sim.runUntil(400 * sim::MSec);
    printTrace(Ctrl.trace(), baselineOf(Ctrl.trace()));
    std::printf("(expected: INIT -> CALIBRATE/OPTIMIZE -> MONITOR; the"
                " workload change at 120 ms triggers re-calibration)\n\n");
  }

  std::printf("== Figure 8.8(b): optimizing across schemes ==\n\n");
  {
    LoopProgram P = makeChase(2000000);
    CompiledLoop CL(*P.F, P.AA, P.TripCount);
    std::printf("%s\n", CL.report().c_str());
    ControlledRunResult R = [&] {
      CL.resetState();
      sim::Simulator Sim;
      sim::Machine M(Sim, 16);
      rt::RuntimeCosts Costs;
      auto Src = CL.makeSource();
      rt::RegionRunner Runner(M, Costs, CL.region(), *Src);
      rt::RegionController Ctrl(Runner);
      Ctrl.start(16);
      Sim.runUntil(400 * sim::MSec);
      ControlledRunResult Out;
      Out.Final = Runner.config();
      Out.SeqThroughput = Ctrl.seqThroughput();
      Out.BestThroughput = Ctrl.bestThroughput();
      Out.Trace = Ctrl.trace();
      return Out;
    }();
    printTrace(R.Trace, baselineOf(R.Trace));
    std::printf("chosen: %s at %.2fx the sequential baseline\n",
                R.Final.str().c_str(),
                R.SeqThroughput > 0 ? R.BestThroughput / R.SeqThroughput
                                    : 0.0);
    std::printf("(chase only pipelines: PS-DSWP must win; DOANY is not"
                " even exposed by Nona)\n\n");
  }

  std::printf("== Figure 8.8(c): adaptation to resource change ==\n\n");
  {
    LoopProgram P = makeMonteCarlo(2000000);
    CompiledLoop CL(*P.F, P.AA, P.TripCount);
    CL.resetState();
    sim::Simulator Sim;
    sim::Machine M(Sim, 16);
    rt::RuntimeCosts Costs;
    auto Src = CL.makeSource();
    rt::RegionRunner Runner(M, Costs, CL.region(), *Src);
    rt::RegionController Ctrl(Runner);
    Ctrl.start(16);
    Sim.schedule(150 * sim::MSec, [&Ctrl] { Ctrl.setThreadBudget(5); });
    Sim.runUntil(450 * sim::MSec);
    printTrace(Ctrl.trace(), baselineOf(Ctrl.trace()));
    std::printf("final config: %s under budget %u\n",
                Runner.config().str().c_str(), Ctrl.threadBudget());
    std::printf("(expected: the budget cut at 150 ms sends the controller"
                " back to CALIBRATE and it settles within 5 threads)\n");
  }
  return 0;
}
