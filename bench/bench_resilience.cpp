//===- bench_resilience.cpp - Fault model + Morta recovery end to end ---------===//
//
// The resilience scenarios the fault model exists for: a 3-stage pipeline
// on an 8-core machine that, mid-run, degrades and (in the burst
// scenario) heals again.
//
// Default scenario — independent permanent failures:
//
//   * a straggler: core 1 runs 4x dilated for 15 ms starting at 20 ms;
//   * permanent core failures: cores 5 and 6 go offline at 40/42 ms,
//     stranding whatever was running on them;
//   * transient task faults: ~40 iterations of the parallel stage fault
//     (up to twice each) before succeeding, exercising the retry path.
//
// Burst scenario (--burst) — a correlated failure domain plus repair:
//
//   * the same straggler and transient faults;
//   * a socket event ("socket1") takes cores 4, 5, and 6 atomically at
//     40 ms, and the domain is repaired after a 30 ms downtime window.
//
// The watchdog detects the capacity drop, rescues the stranded threads,
// and shrinks the controller's thread budget (degrading the DoP); in the
// burst scenario it then detects the capacity growth at repair and grows
// the budget back, re-selecting the richer cached configuration. Either
// way the run completes with the full output stream intact and in order
// — the exactly-once guarantee across stragglers, retries, recoveries,
// and repair.
//
// Everything is seeded and virtual-time-driven, so the same --seed gives
// a byte-identical stdout and Chrome trace across runs (this is what
// scripts/check_resilience.sh asserts, including a multi-seed sweep of
// the burst scenario).
//
//===----------------------------------------------------------------------===//

#include "BenchFlags.h"
#include "core/Region.h"
#include "decima/Monitor.h"
#include "morta/Controller.h"
#include "morta/Watchdog.h"
#include "sim/Faults.h"
#include "support/Rng.h"
#include "telemetry/ChromeTrace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

using namespace parcae;
using namespace parcae::rt;
namespace sim = parcae::sim;

namespace {

constexpr std::uint64_t NumIters = 20000;
constexpr sim::SimTime BurstAt = 40 * sim::MSec + 130 * sim::USec;
constexpr sim::SimTime BurstDowntime = 30 * sim::MSec;
constexpr std::uint64_t WedgeSeq = 7000;

/// The pipeline under test. The tail pushes every iteration's payload
/// into \p Tail, so output completeness and ordering are checkable. The
/// SEQ variant's task is named "all": transient faults bound to "work"
/// cannot follow the region into its degraded form. \p ProduceProbe, when
/// non-empty, is called with every sequence number the head task runs —
/// the wedge scenario uses it to snapshot progress right before the head
/// wedges.
FlexibleRegion makeRegion(std::vector<std::int64_t> *Tail,
                          const std::function<void(std::uint64_t)>
                              *ProduceProbe = nullptr) {
  FlexibleRegion R("resil");
  {
    RegionDesc D;
    D.Name = "resil-pipe";
    D.S = Scheme::PsDswp;
    D.Tasks.emplace_back("produce", TaskType::Seq,
                         [ProduceProbe](IterationContext &C) {
                           C.Cost = 1500;
                           C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
                           if (ProduceProbe && *ProduceProbe)
                             (*ProduceProbe)(C.Seq);
                         });
    D.Tasks.emplace_back("work", TaskType::Par, [](IterationContext &C) {
      C.Cost = 24000;
      C.Out[0].Value = C.In[0].Value;
    });
    D.Tasks.emplace_back("commit", TaskType::Seq,
                         [Tail](IterationContext &C) {
                           C.Cost = 1000;
                           Tail->push_back(C.In[0].Value);
                         });
    D.Links.push_back({0, 1});
    D.Links.push_back({1, 2});
    R.addVariant(std::move(D));
  }
  {
    RegionDesc D;
    D.Name = "resil-seq";
    D.S = Scheme::Seq;
    D.Tasks.emplace_back("all", TaskType::Seq, [Tail](IterationContext &C) {
      C.Cost = 26500;
      Tail->push_back(static_cast<std::int64_t>(C.Seq));
    });
    R.addVariant(std::move(D));
  }
  return R;
}

sim::FaultPlan makePlan(std::uint64_t Seed, bool Burst, bool Wedge) {
  sim::FaultPlan Plan;
  Plan.addStraggler(/*Core=*/1, /*At=*/20 * sim::MSec,
                    /*Duration=*/15 * sim::MSec, /*Dilation=*/4.0);
  if (Wedge) {
    // The head task wedges in user code right before claiming WedgeSeq:
    // no core fails, no capacity changes — only the blame scan can name
    // the culprit, and only a surgical restart keeps the rest of the
    // region's backlog retiring while the repair runs.
    Plan.addWedge("produce", WedgeSeq);
    Plan.scatterTransients(Seed, "work", /*SeqBegin=*/2000,
                           /*SeqEnd=*/18000, /*Count=*/40,
                           /*MaxFailCount=*/2);
    return Plan;
  }
  if (Burst) {
    // A correlated burst: one socket event takes three cores atomically
    // (offset from the watchdog's 250 us tick grid, like the offlines
    // below), then a repair returns them after the downtime window.
    Plan.addDomain("socket1", {4, 5, 6}, BurstAt, BurstDowntime);
  } else {
    // Offset from the watchdog's 250 us tick grid so the measured
    // detection latency is the real phase lag, not zero.
    Plan.addOffline(/*Core=*/5, /*At=*/40 * sim::MSec + 130 * sim::USec);
    Plan.addOffline(/*Core=*/6, /*At=*/42 * sim::MSec + 130 * sim::USec);
  }
  Plan.scatterTransients(Seed, "work", /*SeqBegin=*/2000, /*SeqEnd=*/18000,
                         /*Count=*/40, /*MaxFailCount=*/2);
  return Plan;
}

double us(sim::SimTime T) { return static_cast<double>(T) / sim::USec; }

// --- Straggler A/B scenario (--straggler) -------------------------------
//
// The same pipeline under a seeded hail of straggler windows (8-24x
// dilation scattered across all 8 cores), run twice in-process from the
// same plan: once with the mitigation stack off (baseline: affinity keeps
// re-landing workers on dilated cores) and once with slow-core-aware
// placement + watchdog speculative re-issue on. A fixed PS-DSWP<1,5,1>
// schedule (no controller) keeps the comparison about placement, not
// configuration search, and a sky-high stall threshold keeps the abortive
// recovery path out of both sides. The makespan ratio is the gate.

constexpr sim::SimTime StragglerMaxWindow = 12 * sim::MSec;

struct StragglerOutcome {
  sim::SimTime Makespan = 0;
  double P95GapUs = 0;     ///< p95 inter-retirement gap
  unsigned Speculations = 0;
  bool Ok = true;
};

sim::FaultPlan makeStragglerPlan(std::uint64_t Seed) {
  sim::FaultPlan Plan;
  Plan.scatterStragglers(Seed, /*NumCores=*/8, /*Count=*/24,
                         /*From=*/5 * sim::MSec, /*To=*/150 * sim::MSec,
                         /*Duration=*/StragglerMaxWindow,
                         /*MinDilation=*/16.0, /*MaxDilation=*/48.0);
  return Plan;
}

StragglerOutcome runStraggler(std::uint64_t Seed, bool Mitigate) {
  sim::Simulator Sim;
  sim::MachineConfig MC;
  MC.SlowCoreAvoidance = Mitigate;
  sim::Machine M(Sim, 8, MC);
  M.installFaultPlan(makeStragglerPlan(Seed));

  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeRegion(&Tail);
  CountedWorkSource Src(NumIters);
  RuntimeCosts Costs;
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner); // never started: fixed schedule
  WatchdogParams WP;
  WP.Speculate = Mitigate;
  // One dilated iteration of the 24 us "work" stage runs 0.4-1.2 ms at
  // 16-48x: speculate as soon as the frontier has been quiet for two
  // watchdog ticks.
  WP.SpecStallThreshold = 500 * sim::USec;
  WP.SpecAgeThreshold = 250 * sim::USec;
  // Dilated cores are slow, not dead: keep the stall/abort machinery out
  // of both sides of the comparison.
  WP.StallThreshold = 1 * sim::Sec;
  Watchdog Dog(Ctrl, WP);

  StragglerOutcome Out;
  std::vector<sim::SimTime> Gaps;
  sim::SimTime LastRetireAt = 0;
  Runner.OnProgress = [&](std::uint64_t) {
    Gaps.push_back(Sim.now() - LastRetireAt);
    LastRetireAt = Sim.now();
  };
  Runner.OnComplete = [&] { Out.Makespan = Sim.now(); };

  Runner.start({Scheme::PsDswp, {1, 5, 1}});
  Dog.start();
  Sim.runUntil(4 * sim::Sec);

  Out.Speculations = Dog.speculationsIssued();
  if (!Runner.completed())
    Out.Ok = false;
  if (Tail.size() != NumIters)
    Out.Ok = false;
  else
    for (std::size_t I = 0; I < Tail.size(); ++I)
      if (Tail[I] != static_cast<std::int64_t>(I)) {
        Out.Ok = false;
        break;
      }
  if (!Gaps.empty()) {
    std::sort(Gaps.begin(), Gaps.end());
    Out.P95GapUs = us(Gaps[std::min(Gaps.size() - 1, Gaps.size() * 95 / 100)]);
  }
  return Out;
}

int runStragglerMode(const bench::BenchFlags &Flags) {
  std::uint64_t Seed = Flags.Seed;
  std::printf("== Resilience: straggler avoidance A/B, 8-core pipeline"
              " under scattered 16-48x dilation windows (seed=%llu) ==\n\n",
              static_cast<unsigned long long>(Seed));
  std::printf("   plan: 24 window(s) of %.0f ms across 8 cores, fixed"
              " PS-DSWP<1,5,1>\n\n",
              us(StragglerMaxWindow) / 1000.0);

  StragglerOutcome Base = runStraggler(Seed, /*Mitigate=*/false);
  StragglerOutcome Mit = runStraggler(Seed, /*Mitigate=*/true);

  bool Ok = true;
  auto Fail = [&Ok](const char *What) {
    std::printf("   FAIL: %s\n", What);
    Ok = false;
  };

  double Improvement = Mit.Makespan > 0
                           ? static_cast<double>(Base.Makespan) /
                                 static_cast<double>(Mit.Makespan)
                           : 0.0;
  double P95Improvement =
      Mit.P95GapUs > 0 ? Base.P95GapUs / Mit.P95GapUs : 0.0;

  std::printf("-- A/B --\n");
  std::printf("%14s %14s %14s %14s\n", "", "makespan(ms)", "p95 gap(us)",
              "speculations");
  std::printf("%14s %14.2f %14.0f %14u\n", "baseline",
              us(Base.Makespan) / 1000.0, Base.P95GapUs, Base.Speculations);
  std::printf("%14s %14.2f %14.0f %14u\n", "mitigated",
              us(Mit.Makespan) / 1000.0, Mit.P95GapUs, Mit.Speculations);
  std::printf("   improvement: %.2fx makespan, %.2fx p95 retire gap\n",
              Improvement, P95Improvement);

  std::printf("\n-- verdict --\n");
  if (!Base.Ok)
    Fail("baseline run lost or reordered output");
  if (!Mit.Ok)
    Fail("mitigated run lost or reordered output (exactly-once broken)");
  if (Improvement < 1.15)
    Fail("makespan improvement below the 1.15x gate");
  if (Mit.Speculations < 1)
    Fail("speculative re-issue never fired");
  if (Base.Speculations != 0)
    Fail("baseline must not speculate");

  if (Flags.JsonPath) {
    std::FILE *J = std::fopen(Flags.JsonPath, "w");
    if (!J) {
      std::fprintf(stderr, "cannot write %s\n", Flags.JsonPath);
      return 1;
    }
    std::fprintf(J,
                 "{\"bench\":\"resilience\",\"mode\":\"straggler\","
                 "\"seed\":%llu,\"makespan_base_us\":%.1f,"
                 "\"makespan_mitigated_us\":%.1f,\"improvement\":%.4f,"
                 "\"p95_gap_base_us\":%.1f,\"p95_gap_mitigated_us\":%.1f,"
                 "\"p95_improvement\":%.4f,\"speculations\":%u,"
                 "\"ok\":%s}\n",
                 static_cast<unsigned long long>(Seed), us(Base.Makespan),
                 us(Mit.Makespan), Improvement, Base.P95GapUs, Mit.P95GapUs,
                 P95Improvement, Mit.Speculations, Ok ? "true" : "false");
    std::fclose(J);
    std::printf("   wrote %s\n", Flags.JsonPath);
  }

  std::printf("\nRESILIENCE: %s\n", Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags =
      bench::BenchFlags::parse(Argc, Argv, {"--burst", "--wedge", "--straggler"});
  telemetry::TraceFile Trace(Flags.TracePath);
  std::uint64_t Seed = Flags.Seed;
  bool Burst = false, Wedge = false, Straggler = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--burst") == 0)
      Burst = true;
    if (std::strcmp(Argv[I], "--wedge") == 0)
      Wedge = true;
    if (std::strcmp(Argv[I], "--straggler") == 0)
      Straggler = true;
  }

  if (Straggler)
    return runStragglerMode(Flags);

  if (Wedge)
    std::printf("== Resilience: 8-core pipeline under straggler + wedged"
                " head task + transient faults (seed=%llu) ==\n",
                static_cast<unsigned long long>(Seed));
  else if (Burst)
    std::printf("== Resilience: 8-core pipeline under straggler + 3-core"
                " domain burst + repair + transient faults (seed=%llu) ==\n",
                static_cast<unsigned long long>(Seed));
  else
    std::printf("== Resilience: 8-core pipeline under straggler + 2 core"
                " failures + transient faults (seed=%llu) ==\n",
                static_cast<unsigned long long>(Seed));

  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  M.installFaultPlan(makePlan(Seed, Burst, Wedge));
  std::printf("   fault plan: %zu straggler window(s), %zu core"
              " offline(s), %zu domain(s), %zu transient fault(s), %zu"
              " wedge(s)\n\n",
              M.faultPlan()->stragglers().size(),
              M.faultPlan()->numOfflineEvents(),
              M.faultPlan()->domains().size(),
              M.faultPlan()->numTransients(), M.faultPlan()->wedges().size());

  std::vector<std::int64_t> Tail;
  std::function<void(std::uint64_t)> ProduceProbe;
  FlexibleRegion Region = makeRegion(&Tail, &ProduceProbe);
  CountedWorkSource Src(NumIters);
  RuntimeCosts Costs;
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);

  Decima Sensors;
  registerFaultFeatures(Sensors, M);
  FeatureSampler Sampler(Sim, Sensors,
                         {"OnlineCores", "StrandedThreads", "RepairedCores"});

  sim::SimTime DoneAt = 0;
  Runner.OnComplete = [&] {
    DoneAt = Sim.now();
    Sampler.stop();
  };

  // Wedge scenario instrumentation: how much the healthy rest of the
  // region retired between the head wedging (just before claiming
  // WedgeSeq) and the watchdog driving the surgical restart. Strictly
  // more retired means the region kept running through the repair — the
  // whole point of not aborting it.
  std::uint64_t RetiredAtWedge = 0, RetiredAtRestart = 0;
  unsigned RestartedTask = ~0u;
  if (Wedge) {
    ProduceProbe = [&](std::uint64_t Seq) {
      if (Seq + 1 == WedgeSeq)
        RetiredAtWedge = Runner.totalRetired();
    };
    Dog.OnSurgicalRestart = [&](unsigned TaskIdx) {
      RestartedTask = TaskIdx;
      RetiredAtRestart = Runner.totalRetired();
    };
  }

  Ctrl.start(8);
  Dog.start();
  Sampler.start();

  // Budget timeline: every change of the controller's effective thread
  // budget, sampled on the watchdog's own grid. The burst scenario
  // asserts a shrink at the domain event and a grow-back after repair.
  std::vector<unsigned> BudgetSteps{Ctrl.threadBudget()};
  std::function<void()> BudgetTick = [&] {
    if (Ctrl.threadBudget() != BudgetSteps.back())
      BudgetSteps.push_back(Ctrl.threadBudget());
    if (!Runner.completed())
      Sim.schedule(250 * sim::USec, BudgetTick);
  };
  Sim.schedule(250 * sim::USec, BudgetTick);

  // Progress timeline: windowed throughput + machine capacity every 5 ms.
  std::printf("-- timeline (5 ms windows) --\n");
  std::printf("%8s %10s %12s %7s %9s %7s\n", "t(ms)", "retired", "win it/s",
              "online", "stranded", "budget");
  std::uint64_t LastRetired = 0;
  std::function<void()> TimelineTick = [&] {
    std::uint64_t Retired = Runner.totalRetired();
    double Rate = static_cast<double>(Retired - LastRetired) /
                  sim::toSeconds(5 * sim::MSec);
    LastRetired = Retired;
    std::printf("%8.1f %10llu %12.0f %7u %9u %7u\n", us(Sim.now()) / 1000.0,
                static_cast<unsigned long long>(Retired), Rate,
                M.onlineCores(), M.strandedThreads(), Ctrl.threadBudget());
    if (!Runner.completed())
      Sim.schedule(5 * sim::MSec, TimelineTick);
  };
  Sim.schedule(5 * sim::MSec, TimelineTick);

  Sim.runUntil(2 * sim::Sec);

  // --- Verification -----------------------------------------------------
  bool Ok = true;
  auto Fail = [&Ok](const char *What) {
    std::printf("   FAIL: %s\n", What);
    Ok = false;
  };

  unsigned Shrinks = 0, Grows = 0;
  for (std::size_t I = 1; I < BudgetSteps.size(); ++I)
    (BudgetSteps[I] < BudgetSteps[I - 1] ? Shrinks : Grows)++;

  std::printf("\n-- verdict --\n");
  if (!Runner.completed())
    Fail("region did not complete");
  if (Tail.size() != NumIters)
    Fail("tail output incomplete or duplicated");
  for (std::size_t I = 0; I < Tail.size(); ++I)
    if (Tail[I] != static_cast<std::int64_t>(I)) {
      Fail("tail output out of order");
      std::printf("         first bad index %zu: got %lld\n", I,
                  static_cast<long long>(Tail[I]));
      break;
    }
  if (!Wedge && Dog.detections() < 1)
    Fail("watchdog never detected the capacity drop");
  if (Runner.totalFaults() == 0)
    Fail("no transient fault was ever injected");
  if (Dog.recoveriesCompleted() < 1)
    Fail("no recovery completed (MTTR never measured)");
  if (Wedge) {
    if (M.onlineCores() != 8)
      Fail("no core failed: all 8 cores must still be online");
    if (Dog.blamesAssigned() < 1)
      Fail("blame scan never convicted the wedged task");
    if (Dog.surgicalRestarts() < 1)
      Fail("wedge never repaired surgically");
    if (Dog.lastBlamedTask() != 0 || RestartedTask != 0)
      Fail("blame landed on the wrong task (expected the head)");
    if (Dog.fallbackAborts() != 0)
      Fail("surgical path must not fall back to abortive recovery");
    if (Runner.recoveries() != 0)
      Fail("surgical restart must not abort the whole region");
    if (Dog.surgicalRecoveriesCompleted() < 1)
      Fail("surgical recovery never completed (MTTR never measured)");
    if (RetiredAtRestart <= RetiredAtWedge)
      Fail("healthy tasks retired nothing during the surgical repair");
  } else if (Burst) {
    if (M.onlineCores() != 8)
      Fail("expected all 8 cores back online after repair");
    if (M.repairsApplied() != 3)
      Fail("expected exactly 3 repaired cores");
    if (Dog.growthsDetected() < 1)
      Fail("watchdog never detected the capacity growth");
    if (Shrinks < 1)
      Fail("thread budget never shrank on the domain burst");
    if (Grows < 1)
      Fail("thread budget never grew back after repair");
    if (Ctrl.threadBudget() != 8)
      Fail("thread budget did not return to the full grant");
    if (DoneAt <= BurstAt + BurstDowntime)
      Fail("run finished before the repair: grow-back path unexercised");
  } else {
    if (M.onlineCores() != 6)
      Fail("expected exactly 6 surviving cores");
  }

  std::printf("   completed at %.2f ms; %llu/%llu iterations retired\n",
              us(DoneAt) / 1000.0,
              static_cast<unsigned long long>(Runner.totalRetired()),
              static_cast<unsigned long long>(NumIters));
  std::printf("   capacity: %u/8 cores online, %u repaired, %u thread(s)"
              " rescued\n",
              M.onlineCores(), M.repairsApplied(), Dog.threadsRescued());
  std::printf("   budget:");
  for (std::size_t I = 0; I < BudgetSteps.size(); ++I)
    std::printf("%s%u", I == 0 ? " " : " -> ", BudgetSteps[I]);
  std::printf(" (%u shrink(s), %u grow(s))\n", Shrinks, Grows);
  std::printf("   watchdog: %u detection(s), %u growth(s), %u stall(s), %u"
              " escalation(s), %u recovery(s) completed\n",
              Dog.detections(), Dog.growthsDetected(), Dog.stallsDetected(),
              Dog.escalationsHandled(), Dog.recoveriesCompleted());
  std::printf("   surgical: %u blame(s), %u restart(s), %u fallback"
              " abort(s), %u completed, MTTR %.0f us\n",
              Dog.blamesAssigned(), Dog.surgicalRestarts(),
              Dog.fallbackAborts(), Dog.surgicalRecoveriesCompleted(),
              us(Dog.lastSurgicalMttr()));
  if (Wedge)
    std::printf("   wedge: retired %llu at the wedge, %llu at the surgical"
                " restart (healthy tasks kept retiring)\n",
                static_cast<unsigned long long>(RetiredAtWedge),
                static_cast<unsigned long long>(RetiredAtRestart));
  std::printf("   latency: detection %.0f us, growth %.0f us, MTTR %.0f us\n",
              us(Dog.lastDetectionLatency()), us(Dog.lastGrowthLatency()),
              us(Dog.lastMttr()));
  std::printf("   faults: %llu transient attempt(s) faulted, %llu"
              " escalation(s)\n",
              static_cast<unsigned long long>(Runner.totalFaults()),
              static_cast<unsigned long long>(Runner.totalEscalations()));
  std::printf("   runner: %u reconfiguration(s), %u full pause(s), %u"
              " abortive recovery(s)\n",
              Runner.reconfigurations(), Runner.fullPauses(),
              Runner.recoveries());
  std::printf("   decima: %llu platform-feature samples\n",
              static_cast<unsigned long long>(Sampler.samplesTaken()));

  std::printf("\nRESILIENCE: %s\n", Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}
