//===- bench_resilience.cpp - Fault model + Morta recovery end to end ---------===//
//
// The resilience scenario the fault model exists for: a 3-stage pipeline
// on an 8-core machine that, mid-run, suffers all three failure classes
// of the fault plan —
//
//   * a straggler: core 1 runs 4x dilated for 15 ms starting at 20 ms;
//   * permanent core failures: cores 5 and 6 go offline at 40/42 ms,
//     stranding whatever was running on them;
//   * transient task faults: ~40 iterations of the parallel stage fault
//     (up to twice each) before succeeding, exercising the retry path.
//
// The watchdog detects the capacity drop, rescues the stranded threads,
// shrinks the controller's thread budget (degrading the DoP), and the
// run completes with the full output stream intact and in order — the
// exactly-once guarantee across stragglers, retries, and recoveries.
//
// Everything is seeded and virtual-time-driven, so the same --seed gives
// a byte-identical stdout and Chrome trace across runs (this is what
// scripts/check_resilience.sh asserts).
//
//===----------------------------------------------------------------------===//

#include "core/Region.h"
#include "decima/Monitor.h"
#include "morta/Controller.h"
#include "morta/Watchdog.h"
#include "sim/Faults.h"
#include "support/Rng.h"
#include "telemetry/ChromeTrace.h"

#include <cstdio>
#include <functional>
#include <vector>

using namespace parcae;
using namespace parcae::rt;
namespace sim = parcae::sim;

namespace {

constexpr std::uint64_t NumIters = 20000;

/// The pipeline under test. The tail pushes every iteration's payload
/// into \p Tail, so output completeness and ordering are checkable. The
/// SEQ variant's task is named "all": transient faults bound to "work"
/// cannot follow the region into its degraded form.
FlexibleRegion makeRegion(std::vector<std::int64_t> *Tail) {
  FlexibleRegion R("resil");
  {
    RegionDesc D;
    D.Name = "resil-pipe";
    D.S = Scheme::PsDswp;
    D.Tasks.emplace_back("produce", TaskType::Seq, [](IterationContext &C) {
      C.Cost = 1500;
      C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
    });
    D.Tasks.emplace_back("work", TaskType::Par, [](IterationContext &C) {
      C.Cost = 24000;
      C.Out[0].Value = C.In[0].Value;
    });
    D.Tasks.emplace_back("commit", TaskType::Seq,
                         [Tail](IterationContext &C) {
                           C.Cost = 1000;
                           Tail->push_back(C.In[0].Value);
                         });
    D.Links.push_back({0, 1});
    D.Links.push_back({1, 2});
    R.addVariant(std::move(D));
  }
  {
    RegionDesc D;
    D.Name = "resil-seq";
    D.S = Scheme::Seq;
    D.Tasks.emplace_back("all", TaskType::Seq, [Tail](IterationContext &C) {
      C.Cost = 26500;
      Tail->push_back(static_cast<std::int64_t>(C.Seq));
    });
    R.addVariant(std::move(D));
  }
  return R;
}

sim::FaultPlan makePlan(std::uint64_t Seed) {
  sim::FaultPlan Plan;
  Plan.addStraggler(/*Core=*/1, /*At=*/20 * sim::MSec,
                    /*Duration=*/15 * sim::MSec, /*Dilation=*/4.0);
  // Offset from the watchdog's 250 us tick grid so the measured
  // detection latency is the real phase lag, not zero.
  Plan.addOffline(/*Core=*/5, /*At=*/40 * sim::MSec + 130 * sim::USec);
  Plan.addOffline(/*Core=*/6, /*At=*/42 * sim::MSec + 130 * sim::USec);
  Plan.scatterTransients(Seed, "work", /*SeqBegin=*/2000, /*SeqEnd=*/18000,
                         /*Count=*/40, /*MaxFailCount=*/2);
  return Plan;
}

double us(sim::SimTime T) { return static_cast<double>(T) / sim::USec; }

} // namespace

int main(int Argc, char **Argv) {
  telemetry::TraceFile Trace(telemetry::traceFlagPath(Argc, Argv));
  setDefaultSeed(seedFlag(Argc, Argv, defaultSeed()));
  std::uint64_t Seed = defaultSeed();

  std::printf("== Resilience: 8-core pipeline under straggler + 2 core"
              " failures + transient faults (seed=%llu) ==\n",
              static_cast<unsigned long long>(Seed));

  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  M.installFaultPlan(makePlan(Seed));
  std::printf("   fault plan: %zu straggler window(s), %zu core"
              " offline(s), %zu transient fault(s)\n\n",
              M.faultPlan()->stragglers().size(),
              M.faultPlan()->offlines().size(),
              M.faultPlan()->numTransients());

  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeRegion(&Tail);
  CountedWorkSource Src(NumIters);
  RuntimeCosts Costs;
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);

  Decima Sensors;
  registerFaultFeatures(Sensors, M);
  FeatureSampler Sampler(Sim, Sensors, {"OnlineCores", "StrandedThreads"});

  sim::SimTime DoneAt = 0;
  Runner.OnComplete = [&] {
    DoneAt = Sim.now();
    Sampler.stop();
  };

  Ctrl.start(8);
  Dog.start();
  Sampler.start();

  // Progress timeline: windowed throughput + machine capacity every 5 ms.
  std::printf("-- timeline (5 ms windows) --\n");
  std::printf("%8s %10s %12s %7s %9s\n", "t(ms)", "retired", "win it/s",
              "online", "stranded");
  std::uint64_t LastRetired = 0;
  std::function<void()> TimelineTick = [&] {
    std::uint64_t Retired = Runner.totalRetired();
    double Rate = static_cast<double>(Retired - LastRetired) /
                  sim::toSeconds(5 * sim::MSec);
    LastRetired = Retired;
    std::printf("%8.1f %10llu %12.0f %7u %9u\n", us(Sim.now()) / 1000.0,
                static_cast<unsigned long long>(Retired), Rate,
                M.onlineCores(), M.strandedThreads());
    if (!Runner.completed())
      Sim.schedule(5 * sim::MSec, TimelineTick);
  };
  Sim.schedule(5 * sim::MSec, TimelineTick);

  Sim.runUntil(2 * sim::Sec);

  // --- Verification -----------------------------------------------------
  bool Ok = true;
  auto Fail = [&Ok](const char *What) {
    std::printf("   FAIL: %s\n", What);
    Ok = false;
  };

  std::printf("\n-- verdict --\n");
  if (!Runner.completed())
    Fail("region did not complete");
  if (Tail.size() != NumIters)
    Fail("tail output incomplete or duplicated");
  for (std::size_t I = 0; I < Tail.size(); ++I)
    if (Tail[I] != static_cast<std::int64_t>(I)) {
      Fail("tail output out of order");
      std::printf("         first bad index %zu: got %lld\n", I,
                  static_cast<long long>(Tail[I]));
      break;
    }
  if (M.onlineCores() != 6)
    Fail("expected exactly 6 surviving cores");
  if (Dog.detections() < 1)
    Fail("watchdog never detected the capacity drop");
  if (Runner.totalFaults() == 0)
    Fail("no transient fault was ever injected");
  if (Dog.recoveriesCompleted() < 1)
    Fail("no recovery completed (MTTR never measured)");

  std::printf("   completed at %.2f ms; %llu/%llu iterations retired\n",
              us(DoneAt) / 1000.0,
              static_cast<unsigned long long>(Runner.totalRetired()),
              static_cast<unsigned long long>(NumIters));
  std::printf("   capacity: %u/8 cores online, %u thread(s) rescued\n",
              M.onlineCores(), Dog.threadsRescued());
  std::printf("   watchdog: %u detection(s), %u stall(s), %u"
              " escalation(s), %u recovery(s) completed\n",
              Dog.detections(), Dog.stallsDetected(),
              Dog.escalationsHandled(), Dog.recoveriesCompleted());
  std::printf("   latency: detection %.0f us, MTTR %.0f us\n",
              us(Dog.lastDetectionLatency()), us(Dog.lastMttr()));
  std::printf("   faults: %llu transient attempt(s) faulted, %llu"
              " escalation(s)\n",
              static_cast<unsigned long long>(Runner.totalFaults()),
              static_cast<unsigned long long>(Runner.totalEscalations()));
  std::printf("   runner: %u reconfiguration(s), %u full pause(s), %u"
              " abortive recovery(s)\n",
              Runner.reconfigurations(), Runner.fullPauses(),
              Runner.recoveries());
  std::printf("   decima: %llu platform-feature samples\n",
              static_cast<unsigned long long>(Sampler.samplesTaken()));

  std::printf("\nRESILIENCE: %s\n", Ok ? "OK" : "FAIL");
  return Ok ? 0 : 1;
}
