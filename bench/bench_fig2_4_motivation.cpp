//===- bench_fig2_4_motivation.cpp - Figure 2.4 -------------------------------===//
//
// The Chapter 2 motivation experiment on video transcoding:
//  (a) per-video execution time vs load for <24,SEQ> and <3,8>,
//  (b) system throughput vs load for the same two configurations,
//  (c) end-user response time vs load, plus the DoP oracle that picks the
//      best <K, L> at every load factor (found by exhaustive search).
// The crossover — inner parallelism wins on latency at light load, loses
// on throughput at heavy load (around load 0.9) — is the motivation for
// the whole system.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "support/Table.h"
#include "telemetry/ChromeTrace.h"
#include "workloads/Experiment.h"

#include <cstdio>
#include <vector>

using namespace parcae;
using namespace parcae::rt;

namespace {

struct Point {
  double ExecSec;
  double Throughput;
  double RespSec;
};

Point measure(const LaneAppParams &P, LaneConfig C, double Load,
              std::uint64_t Requests) {
  StaticLane M(C);
  ServerRunResult R = runLaneExperiment(P, M, 24, Load, Requests,
                                        defaultSeed());
  Point Out;
  Out.ExecSec = sim::toSeconds(P.MeanWork) /
                (C.InnerParallel ? P.Scal.speedup(C.L) : 1.0);
  Out.Throughput = R.ThroughputPerSec;
  Out.RespSec = R.MeanResponseSec;
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  telemetry::TraceFile Trace(telemetry::traceFlagPath(Argc, Argv));
  setDefaultSeed(seedFlag(Argc, Argv, defaultSeed()));
  LaneAppParams P = x264Params();
  const std::uint64_t Requests = 500; // the paper's M = 500
  LaneConfig OuterOnly{24, false, 1};
  LaneConfig InnerPar{3, true, 8};
  const double Loads[] = {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1};

  std::printf("== Figure 2.4: video transcoding on a 24-core platform ==\n");
  std::printf("   inner speedup S(8) = %.2f (paper: 6.3x), seed=%llu\n\n",
              P.Scal.speedup(8),
              static_cast<unsigned long long>(defaultSeed()));

  Table A({"load", "<24,SEQ> exec(s)", "<3,8> exec(s)"});
  Table B({"load", "<24,SEQ> thr(tx/s)", "<3,8> thr(tx/s)"});
  Table C({"load", "<24,SEQ> resp(s)", "<3,8> resp(s)", "oracle resp(s)",
           "oracle config"});

  for (double Load : Loads) {
    Point PA = measure(P, OuterOnly, Load, Requests);
    Point PB = measure(P, InnerPar, Load, Requests);

    // The DoP oracle: exhaustive search over <K, L> with K*L <= 24.
    double BestResp = PA.RespSec;
    LaneConfig BestC = OuterOnly;
    for (unsigned L : {1u, 2u, 3u, 4u, 6u, 8u, 12u}) {
      unsigned K = 24 / L;
      if (K == 0)
        continue;
      LaneConfig C{K, L > 1, L};
      StaticLane M(C);
      double R = runLaneExperiment(P, M, 24, Load, Requests, defaultSeed())
                     .MeanResponseSec;
      if (R < BestResp) {
        BestResp = R;
        BestC = C;
      }
    }

    A.addRow({Table::num(Load, 1), Table::num(PA.ExecSec, 2),
              Table::num(PB.ExecSec, 2)});
    B.addRow({Table::num(Load, 1), Table::num(PA.Throughput, 3),
              Table::num(PB.Throughput, 3)});
    C.addRow({Table::num(Load, 1), Table::num(PA.RespSec, 2),
              Table::num(PB.RespSec, 2), Table::num(BestResp, 2),
              BestC.str(P.InnerKind)});
  }

  std::printf("-- (a) per-video execution time --\n");
  A.print();
  std::printf("\n-- (b) system throughput --\n");
  B.print();
  std::printf("\n-- (c) response time and the DoP oracle --\n");
  C.print();
  std::printf("\n(expected shape: <3,8> is ~6x faster per video; its"
              " throughput falls below <24,SEQ> near load 0.9; the oracle"
              " shifts threads from inner to outer parallelism as load"
              " grows)\n");
  return 0;
}
