//===- bench_table8_5_throughput.cpp - Table 8.5 ------------------------------===//
//
// Throughput improvement over the static even thread distribution for
// ferret and dedup (Section 8.2.2, Table 8.5):
//
//   Pthreads-Baseline : even split of the 24 hardware threads
//   Pthreads-OS       : 24 threads per parallel stage, OS load balancing
//   SEDA              : local queue-threshold growth
//   FDP               : feedback-directed pipelining
//   TB                : throughput balance without fusion
//   TBF               : throughput balance with task fusion
//
// The paper's numbers: ferret 1.00/2.12/1.64/2.14/1.96/2.35x and dedup
// 1.00/0.89/1.16/2.08/1.75/2.36x. The shape to reproduce: TBF best on
// both; oversubscription helps ferret but *hurts* dedup (context-switch
// and cache costs); SEDA weakest of the adaptive mechanisms.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "workloads/Experiment.h"

#include <cstdio>
#include <functional>

using namespace parcae;
using namespace parcae::rt;

namespace {

double throughputOf(const std::function<PipelineApp()> &Make,
                    PipeMechanism *Mech, RegionConfig Initial,
                    std::uint64_t Requests, sim::SimTime CacheRefill) {
  PipelineRunSpec Spec;
  Spec.Requests = Requests;
  Spec.Initial = std::move(Initial);
  Spec.Mech = Mech;
  Spec.MechPeriod = 250 * sim::MSec;
  Spec.MC.CacheRefillCost = CacheRefill;
  return runPipelineExperiment(Make, Spec).Server.ThroughputPerSec;
}

void runApp(Table &T, const char *Name,
            const std::function<PipelineApp()> &Make,
            std::uint64_t Requests, sim::SimTime CacheRefill) {
  PipelineApp App = Make();
  unsigned ParStages = 0;
  for (const StageParams &S : App.Stages)
    ParStages += S.Type == TaskType::Par;
  unsigned SeqStages = App.numStages() - ParStages;
  unsigned Even = std::max(1u, (24 - SeqStages) / ParStages);

  RegionConfig EvenC = evenConfig(App, Scheme::PsDswp, Even);
  RegionConfig OverC = evenConfig(App, Scheme::PsDswp, 24);

  double Base = throughputOf(Make, nullptr, EvenC, Requests, CacheRefill);
  double Os = throughputOf(Make, nullptr, OverC, Requests, CacheRefill);
  SedaMechanism Seda;
  double SedaT = throughputOf(Make, &Seda, EvenC, Requests, CacheRefill);
  FdpMechanism Fdp;
  double FdpT = throughputOf(Make, &Fdp, EvenC, Requests, CacheRefill);
  TbfMechanism Tb(false);
  double TbT = throughputOf(Make, &Tb, EvenC, Requests, CacheRefill);
  TbfMechanism Tbf(true);
  double TbfT = throughputOf(Make, &Tbf, EvenC, Requests, CacheRefill);

  auto Rel = [&](double X) { return Table::num(X / Base, 2) + "x"; };
  T.addRow({Name, "1.00x", Rel(Os), Rel(SedaT), Rel(FdpT), Rel(TbT),
            Rel(TbfT)});
}

} // namespace

int main() {
  std::printf("== Table 8.5: throughput improvement over the static even"
              " distribution (24 threads) ==\n\n");
  Table T({"app", "Pthreads-Baseline", "Pthreads-OS", "SEDA", "FDP", "TB",
           "TBF"});
  // Per-app cache-refill costs: ferret's kernels are compute-bound;
  // dedup's hash table and buffers are memory-bound, so oversubscription
  // destroys its cache share (the paper's explanation for the 0.89x).
  runApp(T, "ferret", makeFerret, 4000, 500 * sim::USec);
  runApp(T, "dedup", makeDedup, 4000, 4 * sim::MSec);
  T.print();
  std::printf("\n(paper: ferret 1.00/2.12/1.64/2.14/1.96/2.35x;"
              " dedup 1.00/0.89/1.16/2.08/1.75/2.36x — the shape to hold:"
              " TBF wins on both, oversubscription hurts dedup,"
              " SEDA is the weakest adaptive mechanism)\n");
  return 0;
}
