//===- bench_fig8_5_ferret.cpp - Figure 8.5 -----------------------------------===//
//
// Image search engine (ferret): response time vs load for the two static
// pipelines of the paper — the even split (PIPE <1,6,6,6,6,1>) and the
// oversubscribed one (PIPE <1,24,24,24,24,1>, which the OS load-balances)
// — plus the WQT-H toggle and the WQ-Linear per-stage proportional
// allocation (Section 8.2.1, Figure 8.5).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "support/Table.h"
#include "workloads/Experiment.h"

#include <algorithm>
#include <cstdio>

using namespace parcae;
using namespace parcae::rt;

namespace {

/// WQ-Linear for a single-level pipeline: allocate each parallel stage a
/// thread share proportional to its service demand, weighted up by queue
/// backlog, with smoothing and hysteresis so allocations do not chase
/// transient queue spikes (Section 8.2.1's per-stage proportional
/// allocation for ferret).
class FerretWqLinear : public PipeMechanism {
public:
  const char *name() const override { return "WQ-Linear"; }
  std::optional<RegionConfig> decide(const PipeMechView &V) override {
    RegionConfig C = *V.Config;
    std::vector<unsigned> Par;
    for (unsigned T = 0; T < V.Desc->numTasks(); ++T)
      if (V.Desc->Tasks[T].isParallel())
        Par.push_back(T);
    if (Par.empty())
      return {};
    if (Smoothed.size() != V.Desc->numTasks())
      Smoothed.assign(V.Desc->numTasks(), MovingAverage(0.3));

    double Total = 0;
    for (unsigned T : Par) {
      double Exec = std::max(V.ExecTime[T], 1.0);
      Smoothed[T].add(Exec * (1.0 + 0.25 * V.Load[T]));
      Total += Smoothed[T].value();
    }
    unsigned Avail = V.MaxThreads - (V.Desc->numTasks() -
                                     static_cast<unsigned>(Par.size()));
    unsigned Assigned = 0;
    unsigned MaxDelta = 0;
    for (unsigned T : Par) {
      double Share = Smoothed[T].value() / Total;
      unsigned D = std::max(1u, static_cast<unsigned>(
                                    Share * static_cast<double>(Avail) +
                                    0.5));
      MaxDelta = std::max<unsigned>(
          MaxDelta, D > C.DoP[T] ? D - C.DoP[T] : C.DoP[T] - D);
      C.DoP[T] = D;
      Assigned += D;
    }
    while (Assigned > Avail) {
      auto MaxIt = std::max_element(
          Par.begin(), Par.end(),
          [&](unsigned A, unsigned B) { return C.DoP[A] < C.DoP[B]; });
      if (C.DoP[*MaxIt] <= 1)
        break;
      --C.DoP[*MaxIt];
      --Assigned;
    }
    // Hysteresis: only reconfigure on a meaningful change.
    if (MaxDelta < 2 || C == *V.Config)
      return {};
    return C;
  }

private:
  std::vector<MovingAverage> Smoothed;
};

/// WQT-H for ferret: toggle between the even split and the oversubscribed
/// configuration on work-queue occupancy with hysteresis.
class FerretWqtH : public PipeMechanism {
public:
  FerretWqtH(RegionConfig Light, RegionConfig Heavy, double Threshold,
             unsigned Hysteresis)
      : Light(std::move(Light)), Heavy(std::move(Heavy)),
        Threshold(Threshold), Hysteresis(Hysteresis) {}
  const char *name() const override { return "WQT-H"; }
  std::optional<RegionConfig> decide(const PipeMechView &V) override {
    bool Over = V.Load[0] > Threshold;
    bool Vote = InHeavy ? !Over : Over;
    Consecutive = Vote ? Consecutive + 1 : 0;
    if (Consecutive > Hysteresis) {
      Consecutive = 0;
      InHeavy = !InHeavy;
      return InHeavy ? Heavy : Light;
    }
    return {};
  }

private:
  RegionConfig Light, Heavy;
  double Threshold;
  unsigned Hysteresis;
  bool InHeavy = false;
  unsigned Consecutive = 0;
};

double runAt(double Load, PipeMechanism *Mech, RegionConfig Initial,
             double MaxThroughput) {
  PipelineRunSpec Spec;
  Spec.Requests = 500;
  Spec.ArrivalsPerSec = Load * MaxThroughput;
  Spec.Initial = std::move(Initial);
  Spec.Mech = Mech;
  Spec.MechPeriod = 500 * sim::MSec;
  return runPipelineExperiment(makeFerret, Spec).Server.MeanResponseSec;
}

} // namespace

int main() {
  // Max sustainable throughput: measured once at saturation with the
  // proportional allocation (the paper's M/T methodology).
  double MaxThr;
  {
    TbfMechanism Tb(false);
    PipelineRunSpec Spec;
    Spec.Requests = 1000;
    Spec.Initial = evenConfig(makeFerret(), Scheme::PsDswp, 5);
    Spec.Mech = &Tb;
    MaxThr = runPipelineExperiment(makeFerret, Spec).Server.ThroughputPerSec;
  }
  std::printf("== Figure 8.5: ferret response time vs load "
              "(max sustainable throughput %.1f queries/s) ==\n\n",
              MaxThr);

  RegionConfig Even = evenConfig(makeFerret(), Scheme::PsDswp, 6);
  RegionConfig Over = evenConfig(makeFerret(), Scheme::PsDswp, 24);

  Table T({"load", "PIPE<1,6..1>", "PIPE<1,24..1>", "WQT-H", "WQ-Linear"});
  for (double Load : {0.2, 0.4, 0.6, 0.8, 1.0, 1.1}) {
    double A = runAt(Load, nullptr, Even, MaxThr);
    double B = runAt(Load, nullptr, Over, MaxThr);
    FerretWqtH Wqt(Even, Over, 8, 3);
    double C = runAt(Load, &Wqt, Even, MaxThr);
    FerretWqLinear WqL;
    double D = runAt(Load, &WqL, Even, MaxThr);
    T.addRow({Table::num(Load, 1), Table::num(A, 3), Table::num(B, 3),
              Table::num(C, 3), Table::num(D, 3)});
  }
  T.print();
  std::printf("\n(expected shape: oversubscription beats the even static"
              " split; WQ-Linear, allocating threads proportional to"
              " per-stage load, is best or near-best across loads)\n");
  return 0;
}
