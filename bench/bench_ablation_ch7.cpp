//===- bench_ablation_ch7.cpp - Chapter 7 overhead ablation -------------------===//
//
// The Chapter 7 run-time-overhead optimizations, ablated one at a time on
// a reconfiguration-heavy pipeline run:
//
//   * Section 7.1: hoisting the per-iteration heap save/restore of
//     cross-iteration state out of the loop (and eliding the
//     task-activation yield);
//   * Section 7.2: the drain-free barrier — DoP changes apply through the
//     iteration-count handoff instead of a full pipeline drain;
//   * Section 7.3: overlapping the optimization routine with the drain;
//   * Section 7.4: privatize-and-merge reductions instead of a critical
//     section per iteration.
//
// The first run alternates the DoP of the parallel stage every 1 ms (the
// gradient-ascent cadence), exactly the scenario of Figures 7.1/7.2.
//
//===----------------------------------------------------------------------===//

#include "core/Region.h"
#include "morta/RegionRunner.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "telemetry/ChromeTrace.h"

#include <cstdio>

using namespace parcae;
using namespace parcae::rt;
namespace sim = parcae::sim;

namespace {

/// A 3-stage pipeline with a sum reduction in the parallel stage.
FlexibleRegion makePipeline() {
  FlexibleRegion R("ablate");
  RegionDesc D;
  D.Name = "ablate-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("produce", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 2000;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  Task Mid("work", TaskType::Par, [](IterationContext &C) {
    C.Cost = 100000;
    C.Out[0].Value = C.In[0].Value;
  });
  Mid.Reduction = CriticalSection{9, 1500};
  D.Tasks.push_back(std::move(Mid));
  D.Tasks.emplace_back("consume", TaskType::Seq,
                       [](IterationContext &C) { C.Cost = 2000; });
  D.Links.push_back({0, 1});
  D.Links.push_back({1, 2});
  R.addVariant(std::move(D));
  return R;
}

/// Iterations completed in a fixed window under a 5 ms reconfiguration
/// cadence that toggles the parallel stage between DoP 4 and 6.
std::uint64_t runWindow(const RuntimeCosts &Costs) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  CountedWorkSource Src(1'000'000'000ull);
  FlexibleRegion Region = makePipeline();
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 4, 1};
  Runner.start(C);
  for (int K = 1; K <= 200; ++K) {
    unsigned D = K % 2 ? 6 : 4;
    Sim.schedule(static_cast<sim::SimTime>(K) * sim::MSec,
                 [&Runner, D] {
                   RegionConfig N;
                   N.S = Scheme::PsDswp;
                   N.DoP = {1, D, 1};
                   Runner.reconfigure(std::move(N));
                 });
  }
  Sim.runUntil(200 * sim::MSec);
  return Runner.totalRetired();
}

/// Second scenario: a fine-grained DOANY reduction loop (no
/// reconfigurations) where the per-iteration overheads of Sections 7.1
/// and 7.4 dominate.
std::uint64_t runFineGrained(const RuntimeCosts &Costs) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  CountedWorkSource Src(1'000'000'000ull);
  FlexibleRegion Region("fine");
  {
    RegionDesc D;
    D.Name = "fine-doany";
    D.S = Scheme::DoAny;
    Task T("sum", TaskType::Par,
           [](IterationContext &C) { C.Cost = 3000; });
    T.Reduction = CriticalSection{3, 1500};
    D.Tasks.push_back(std::move(T));
    Region.addVariant(std::move(D));
  }
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::DoAny;
  C.DoP = {8};
  Runner.start(C);
  Sim.runUntil(50 * sim::MSec);
  return Runner.totalRetired();
}

} // namespace

int main(int Argc, char **Argv) {
  telemetry::TraceFile Trace(telemetry::traceFlagPath(Argc, Argv));
  setDefaultSeed(seedFlag(Argc, Argv, defaultSeed()));
  std::printf("== Chapter 7 ablation: iterations retired in 200 ms with a"
              " reconfiguration every 1 ms (seed=%llu) ==\n\n",
              static_cast<unsigned long long>(defaultSeed()));

  RuntimeCosts AllOff;
  AllOff.OptimizedDataManagement = false;
  AllOff.OptimizedBarrier = false;
  AllOff.OverlapReconfig = false;
  AllOff.PrivatizedReductions = false;

  struct Row {
    const char *Name;
    RuntimeCosts Costs;
  };
  std::vector<Row> Rows;
  Rows.push_back({"unoptimized (Figure 7.1)", AllOff});
  {
    RuntimeCosts C = AllOff;
    C.OptimizedDataManagement = true;
    Rows.push_back({"+ 7.1 data-management hoisting", C});
  }
  {
    RuntimeCosts C = AllOff;
    C.OptimizedDataManagement = true;
    C.PrivatizedReductions = true;
    Rows.push_back({"+ 7.4 privatized reductions", C});
  }
  {
    RuntimeCosts C = AllOff;
    C.OptimizedDataManagement = true;
    C.PrivatizedReductions = true;
    C.OverlapReconfig = true;
    Rows.push_back({"+ 7.3 overlapped reconfiguration", C});
  }
  {
    RuntimeCosts C; // all defaults on
    Rows.push_back({"+ 7.2 drain-free barrier (all on, Figure 7.2)", C});
  }

  Table T({"configuration", "pipeline iters", "vs unopt", "DOANY iters",
           "vs unopt"});
  std::uint64_t Base = 0, BaseF = 0;
  for (const Row &R : Rows) {
    std::uint64_t Iters = runWindow(R.Costs);
    std::uint64_t Fine = runFineGrained(R.Costs);
    if (Base == 0) {
      Base = Iters;
      BaseF = Fine;
    }
    T.addRow({R.Name, Table::num(static_cast<long long>(Iters)),
              Table::num(static_cast<double>(Iters) /
                             static_cast<double>(Base),
                         2) +
                  "x",
              Table::num(static_cast<long long>(Fine)),
              Table::num(static_cast<double>(Fine) /
                             static_cast<double>(BaseF),
                         2) +
                  "x"});
  }
  T.print();
  std::printf("\n(expected shape: each optimization adds throughput; the"
              " drain-free barrier dominates, as in Figure 7.2 where the"
              " optimized run finishes two reconfiguration rounds in the"
              " time the unoptimized run finishes one)\n");
  return 0;
}
