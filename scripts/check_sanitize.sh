#!/usr/bin/env bash
# check_sanitize.sh — ASan + UBSan flavor of the checkpoint and
# resilience paths.
#
# Configures a second build tree with -DPARCAE_SANITIZE=ON (address +
# undefined, frame pointers kept) and runs under it:
#   * the checkpoint / resilience / serve / chunking / work-source unit
#     suites from parcae_tests — the code that juggles runner teardown
#     with pending quiesce callbacks, in-flight request pointers across
#     a serve drain, and cursor arithmetic;
#   * bench_checkpoint end to end in all three modes (hot restart,
#     warning drain, live serve migration);
#   * bench_resilience end to end (the legacy mixed-fault scenario) plus
#     its --straggler A/B — the speculative cancel-then-clone path, whose
#     worker teardown/respawn juggles in-flight buffers and epochs;
#   * bench_serve --batch end to end — the batched-dispatch A/B, whose
#     watermark attribution and batch reap/drain paths juggle member
#     request pointers inside runner callbacks;
#   * bench_simcore in both event-queue modes (timing wheel and plain
#     heap) on the mixed delay distribution — the tier-migration and
#     bucket-drain pointer gymnastics under ASan/UBSan.
#
# Any sanitizer report makes the offending binary exit non-zero, which
# fails the script. halt_on_error keeps the first report fatal rather
# than a warning stream.
#
# Usage: check_sanitize.sh <source-dir> [build-dir]

set -euo pipefail

SRCDIR=${1:?usage: check_sanitize.sh <source-dir> [build-dir]}
BUILDDIR=${2:-$SRCDIR/build-sanitize}

fail() {
  echo "check_sanitize.sh: FAIL: $1" >&2
  exit 1
}

export ASAN_OPTIONS=halt_on_error=1:detect_leaks=0
export UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1

build() {
  cmake -B "$BUILDDIR" -S "$SRCDIR" -DPARCAE_SANITIZE=ON >/dev/null &&
    cmake --build "$BUILDDIR" -j \
      --target parcae_tests bench_checkpoint bench_resilience \
      bench_serve bench_simcore >/dev/null
}

# An interrupted earlier run (e.g. a ctest timeout killing make mid-ar)
# can leave a corrupt incremental tree whose archives look up to date;
# retry once from a clean tree before declaring failure.
if ! build; then
  echo "check_sanitize.sh: incremental build failed; retrying clean" >&2
  rm -rf "$BUILDDIR"
  build || fail "sanitized build failed"
fi

"$BUILDDIR/tests/parcae_tests" \
  --gtest_filter='Checkpoint*:FaultInjection*:ServeLoop*:ChunkPolicy*:QueueWorkSource*' \
  --gtest_brief=1 ||
  fail "unit suites reported a failure (or a sanitizer fired)"

"$BUILDDIR/bench/bench_checkpoint" --seed 42 >/dev/null ||
  fail "bench_checkpoint (migrate) failed under sanitizers"
"$BUILDDIR/bench/bench_checkpoint" --seed 42 --drain >/dev/null ||
  fail "bench_checkpoint --drain failed under sanitizers"
"$BUILDDIR/bench/bench_checkpoint" --seed 42 --serve >/dev/null ||
  fail "bench_checkpoint --serve failed under sanitizers"
"$BUILDDIR/bench/bench_resilience" --seed 42 >/dev/null ||
  fail "bench_resilience failed under sanitizers"
"$BUILDDIR/bench/bench_resilience" --seed 42 --straggler >/dev/null ||
  fail "bench_resilience --straggler failed under sanitizers"
"$BUILDDIR/bench/bench_serve" --seed 42 --batch >/dev/null ||
  fail "bench_serve --batch failed under sanitizers"
"$BUILDDIR/bench/bench_simcore" --events 100000 --dist mixed \
  --queue wheel >/dev/null ||
  fail "bench_simcore --queue wheel failed under sanitizers"
"$BUILDDIR/bench/bench_simcore" --events 100000 --dist mixed \
  --queue heap >/dev/null ||
  fail "bench_simcore --queue heap failed under sanitizers"

echo "check_sanitize.sh: OK ($BUILDDIR)"
