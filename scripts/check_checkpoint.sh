#!/usr/bin/env bash
# check_checkpoint.sh — end-to-end validation of region checkpoint,
# hot restart, and live migration.
#
# migrate mode: sweeps the cross-machine hot restart (default bench mode)
# over three seeds, running each seed twice, and asserts:
#   * CHECKPOINT: OK — the snapshot round-trips byte-identically, machine
#     B restores without re-measurement (MONITOR only), and the combined
#     A+B retired output matches an uninterrupted reference run element
#     for element;
#   * determinism — the two runs' stdout and Chrome traces are
#     byte-identical (same seed => same event sequence);
#   * the trace shows the migration story: the checkpoint quiesce, the
#     checkpoint instant, and the restore on machine B;
#   * restore-latency metrics (quiesce + restore histograms) land in the
#     metrics dump.
#
# drain mode: runs the warned-domain scenario (--drain) twice and
# asserts:
#   * the drain is proactive: zero abortive recoveries, zero rescued
#     threads, zero capacity-drop detections — the region migrates off
#     the doomed cores before they die, and the budget shrinks then
#     grows back after repair;
#   * byte-identical reruns;
#   * the trace shows the warning story: the domain warning, the
#     watchdog drain, and the resume.
#
# serve mode: runs the live-migration scenario (--serve) twice and
# asserts:
#   * in-flight request regions migrate and traffic keeps flowing
#     (completions both before the warning and after the migration);
#   * per-class goodput and admitted/shed counters are byte-identical
#     across the two same-seed runs (the stdout table is compared);
#   * the trace shows the serve drain and per-request migrate instants.
#
# flags mode: asserts the shared flag parser rejects a typo'd flag
# (--sed=42 must exit non-zero with a usage message, not silently run
# unseeded).
#
# Usage: check_checkpoint.sh <path-to-bench_checkpoint> [workdir] [mode]
#   mode: migrate | drain | serve | flags | all (default all)

set -euo pipefail

BENCH=${1:?usage: check_checkpoint.sh <bench_checkpoint> [workdir] [mode]}
WORKDIR=${2:-$(mktemp -d)}
MODE=${3:-all}
mkdir -p "$WORKDIR"
SEED=42

fail() {
  echo "check_checkpoint.sh: FAIL: $1" >&2
  exit 1
}

# run <tag> <seed> [extra flags...]
run() {
  TAG=$1
  RUNSEED=$2
  shift 2
  "$BENCH" --seed "$RUNSEED" "$@" \
    --trace "$WORKDIR/ckpt.$TAG.trace.json" \
    >"$WORKDIR/ckpt.$TAG.out" 2>&1 ||
    fail "run $TAG exited non-zero (see $WORKDIR/ckpt.$TAG.out)"
}

# Same seed, same virtual-time world: everything must be byte-identical.
# (The [telemetry] banner embeds the per-run trace path, so drop it.)
assert_identical() {
  grep -v '^\[telemetry\]' "$WORKDIR/ckpt.$1.out" >"$WORKDIR/ckpt.$1.flt"
  grep -v '^\[telemetry\]' "$WORKDIR/ckpt.$2.out" >"$WORKDIR/ckpt.$2.flt"
  cmp -s "$WORKDIR/ckpt.$1.flt" "$WORKDIR/ckpt.$2.flt" ||
    fail "stdout differs between identically seeded runs ($1 vs $2)"
  cmp -s "$WORKDIR/ckpt.$1.trace.json" "$WORKDIR/ckpt.$2.trace.json" ||
    fail "trace differs between identically seeded runs ($1 vs $2)"
}

if [ "$MODE" = migrate ] || [ "$MODE" = all ]; then
  # Seed sweep: checkpoint on machine A, restore on machine B, and the
  # retired output must match the uninterrupted reference byte for byte
  # (the bench itself compares element-wise and prints CHECKPOINT: OK).
  for S in 7 21 42; do
    run "mig.$S.1" "$S"
    run "mig.$S.2" "$S"
    grep -q '^CHECKPOINT: OK$' "$WORKDIR/ckpt.mig.$S.1.out" ||
      fail "migrate seed $S failed (no CHECKPOINT: OK)"
    grep -q 'identical to the uninterrupted reference' \
      "$WORKDIR/ckpt.mig.$S.1.out" ||
      fail "migrate seed $S: output not compared against the reference"
    grep -q 'round trip byte-identical' "$WORKDIR/ckpt.mig.$S.1.out" ||
      fail "migrate seed $S: snapshot round trip not verified"
    assert_identical "mig.$S.1" "mig.$S.2"
  done

  MTRACE="$WORKDIR/ckpt.mig.42.1.trace.json"
  [ -s "$MTRACE" ] || fail "migrate trace file missing or empty: $MTRACE"
  # The migration story, in trace landmarks: the quiesce drains, the
  # checkpoint captures, and machine B restores.
  grep -q '"checkpoint_drain"' "$MTRACE" ||
    fail "no checkpoint quiesce span in trace"
  grep -q '"checkpoint"' "$MTRACE" || fail "no checkpoint instant in trace"
  grep -q '"restore"' "$MTRACE" || fail "no restore instant in trace"

  MMETRICS="$MTRACE.metrics.txt"
  [ -s "$MMETRICS" ] || fail "migrate metrics dump missing: $MMETRICS"
  grep -q 'checkpoint\.quiesce_latency_us' "$MMETRICS" ||
    fail "no quiesce-latency histogram"
fi

if [ "$MODE" = drain ] || [ "$MODE" = all ]; then
  run drain.1 $SEED --drain
  run drain.2 $SEED --drain

  grep -q '^CHECKPOINT: OK$' "$WORKDIR/ckpt.drain.1.out" ||
    fail "drain run failed (no CHECKPOINT: OK)"
  assert_identical drain.1 drain.2

  # The proactive verdict in the stdout summary: nothing aborted, nothing
  # stranded, nothing detected reactively — and the budget round-trips.
  grep -Eq '^   aborts avoided: 0 abortive recovery\(s\), 0 thread\(s\) rescued, 0 capacity-drop detection\(s\)$' \
    "$WORKDIR/ckpt.drain.1.out" ||
    fail "drain run aborted, stranded, or reactively detected something"
  grep -Eq '\([1-9][0-9]* shrink\(s\), [1-9][0-9]* grow\(s\)\)' \
    "$WORKDIR/ckpt.drain.1.out" ||
    fail "drain run: budget did not both shrink and grow back"

  DTRACE="$WORKDIR/ckpt.drain.1.trace.json"
  [ -s "$DTRACE" ] || fail "drain trace file missing or empty: $DTRACE"
  # The warning story, in trace landmarks: the machine announces the
  # domain, the watchdog drains, the region migrates and resumes.
  grep -q '"fault_domain_warning"' "$DTRACE" ||
    fail "no domain-warning instant in trace"
  grep -q '"watchdog_drain"' "$DTRACE" || fail "no watchdog drain in trace"
  grep -q '"watchdog_drain_done"' "$DTRACE" ||
    fail "no watchdog drain completion in trace"
  grep -q '"checkpoint"' "$DTRACE" || fail "no checkpoint instant in trace"
  grep -q '"restore"' "$DTRACE" || fail "no restore instant in trace"

  DMETRICS="$DTRACE.metrics.txt"
  [ -s "$DMETRICS" ] || fail "drain metrics dump missing: $DMETRICS"
  grep -q 'machine\.faults\.domain_warnings' "$DMETRICS" ||
    fail "no domain-warning counter"
  grep -q 'watchdog\.drain_latency_us' "$DMETRICS" ||
    fail "no drain-latency histogram"
  # The in-place resume after the drain records its restore latency
  # (the cross-machine restore in migrate mode starts a fresh simulator,
  # where a quiesce-to-restore delta has no meaning).
  grep -q 'checkpoint\.restore_latency_us' "$DMETRICS" ||
    fail "no restore-latency histogram"
  grep -q 'chunk\.reseed' "$DMETRICS" || fail "no chunk-reseed counter"
fi

if [ "$MODE" = serve ] || [ "$MODE" = all ]; then
  run serve.1 $SEED --serve
  run serve.2 $SEED --serve

  grep -q '^CHECKPOINT: OK$' "$WORKDIR/ckpt.serve.1.out" ||
    fail "serve run failed (no CHECKPOINT: OK)"
  # Per-class goodput and admitted/shed counters byte-identical across
  # the two same-seed runs: assert_identical compares the whole stdout,
  # including the per-class table.
  assert_identical serve.1 serve.2

  grep -Eq 'migration: [1-9][0-9]* request region\(s\) migrated' \
    "$WORKDIR/ckpt.serve.1.out" ||
    fail "serve run migrated no in-flight request"
  grep -Eq 'traffic: [1-9][0-9]* completion\(s\) before the warning, [1-9][0-9]* after' \
    "$WORKDIR/ckpt.serve.1.out" ||
    fail "serve traffic did not keep flowing across the drain"

  STRACE="$WORKDIR/ckpt.serve.1.trace.json"
  [ -s "$STRACE" ] || fail "serve trace file missing or empty: $STRACE"
  grep -q '"serve_drain"' "$STRACE" || fail "no serve drain in trace"
  grep -q '"migrate"' "$STRACE" || fail "no migrate instant in trace"
  grep -q '"serve_drain_done"' "$STRACE" ||
    fail "no serve drain completion in trace"

  SMETRICS="$STRACE.metrics.txt"
  [ -s "$SMETRICS" ] || fail "serve metrics dump missing: $SMETRICS"
  grep -q 'serve\.migrations' "$SMETRICS" || fail "no migration counter"
  grep -q 'serve\.drain_latency_us' "$SMETRICS" ||
    fail "no serve drain-latency histogram"
fi

if [ "$MODE" = flags ] || [ "$MODE" = all ]; then
  # A typo'd flag must abort with a usage message, not run unseeded.
  if "$BENCH" --sed=42 >"$WORKDIR/ckpt.flags.out" 2>&1; then
    fail "--sed=42 (typo) was silently accepted"
  fi
  grep -q "unknown flag '--sed=42'" "$WORKDIR/ckpt.flags.out" ||
    fail "typo'd flag did not name itself in the error"
  grep -q '^usage:' "$WORKDIR/ckpt.flags.out" ||
    fail "typo'd flag printed no usage line"
fi

echo "check_checkpoint.sh: OK ($MODE, $WORKDIR)"
