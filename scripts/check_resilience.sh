#!/bin/sh
# check_resilience.sh — end-to-end validation of the fault model and
# Morta's failure recovery.
#
# Runs bench_resilience twice with a fixed seed and asserts:
#   * the run recovers (RESILIENCE: OK — complete, ordered output after
#     two core failures, a straggler window, and transient task faults);
#   * determinism — the two runs' stdout and Chrome traces are
#     byte-identical (same seed => same event sequence);
#   * the trace shows the recovery story: fault injection, watchdog
#     detection, and the pause/reconfigure/resume of the degraded run.
#
# Usage: check_resilience.sh <path-to-bench_resilience> [workdir]

set -eu

BENCH=${1:?usage: check_resilience.sh <bench_resilience> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
SEED=42

fail() {
  echo "check_resilience.sh: FAIL: $1" >&2
  exit 1
}

run() {
  "$BENCH" --seed $SEED --trace "$WORKDIR/resil.$1.trace.json" \
    >"$WORKDIR/resil.$1.out" 2>&1 ||
    fail "run $1 exited non-zero (see $WORKDIR/resil.$1.out)"
}

run 1
run 2

grep -q '^RESILIENCE: OK$' "$WORKDIR/resil.1.out" ||
  fail "run did not recover (no RESILIENCE: OK)"

# Same seed, same virtual-time world: everything must be byte-identical.
# (The [telemetry] banner embeds the per-run trace path, so drop it.)
grep -v '^\[telemetry\]' "$WORKDIR/resil.1.out" >"$WORKDIR/resil.1.flt"
grep -v '^\[telemetry\]' "$WORKDIR/resil.2.out" >"$WORKDIR/resil.2.flt"
cmp -s "$WORKDIR/resil.1.flt" "$WORKDIR/resil.2.flt" ||
  fail "stdout differs between identically seeded runs"
cmp -s "$WORKDIR/resil.1.trace.json" "$WORKDIR/resil.2.trace.json" ||
  fail "trace differs between identically seeded runs"

TRACE="$WORKDIR/resil.1.trace.json"
[ -s "$TRACE" ] || fail "trace file missing or empty: $TRACE"

# The recovery story, in trace landmarks: a core fails, the watchdog
# notices and shrinks capacity, and execution resumes reconfigured.
grep -q '"fault_offline"' "$TRACE" || fail "no core-offline instant in trace"
grep -q '"watchdog_detect"' "$TRACE" || fail "no watchdog detection in trace"
grep -q '"capacity_drop"' "$TRACE" || fail "no capacity-drop instant in trace"
grep -Eq '"transition"|"recover"' "$TRACE" ||
  fail "no pause/reconfigure/resume span in trace"
grep -q '"task_fault"' "$TRACE" || fail "no transient task fault in trace"

# Fault metrics (retries, detections, MTTR) land in the metrics dump.
METRICS="$TRACE.metrics.txt"
[ -s "$METRICS" ] || fail "metrics dump missing: $METRICS"
grep -q 'watchdog\.detections' "$METRICS" || fail "no detection counter"
grep -q 'watchdog\.mttr_us' "$METRICS" || fail "no MTTR histogram"
grep -q '\.faults' "$METRICS" || fail "no fault counter"

echo "check_resilience.sh: OK ($TRACE)"
