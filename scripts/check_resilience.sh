#!/usr/bin/env bash
# check_resilience.sh — end-to-end validation of the fault model and
# Morta's failure recovery.
#
# legacy mode: runs bench_resilience twice with a fixed seed and asserts:
#   * the run recovers (RESILIENCE: OK — complete, ordered output after
#     two core failures, a straggler window, and transient task faults);
#   * determinism — the two runs' stdout and Chrome traces are
#     byte-identical (same seed => same event sequence);
#   * the trace shows the recovery story: fault injection, watchdog
#     detection, and the pause/reconfigure/resume of the degraded run.
#
# burst mode: sweeps the correlated-domain + repair scenario (--burst)
# over three seeds, running each seed twice, and asserts:
#   * recovery plus byte-identical reruns per seed;
#   * the thread budget both shrank (on the domain event) and grew back
#     (after repair) — non-zero transitions in both directions;
#   * the trace shows the burst/repair story: the domain fault, the
#     repair, and the watchdog's growth detection + budget grow-back.
#
# wedge mode: runs the wedged-head scenario (--wedge) twice and asserts:
#   * the wedge is repaired surgically (RESILIENCE: OK includes "healthy
#     tasks kept retiring" and zero abortive recoveries);
#   * byte-identical reruns — the blame scan and single-task restart are
#     as deterministic as every other recovery path;
#   * the trace shows the surgical story: the wedge fires, the watchdog
#     convicts the task, and only that task restarts.
#
# straggler mode: sweeps the slow-core A/B scenario (--straggler) over
# three seeds, running each seed twice, and asserts:
#   * the 1.15x makespan-improvement gate holds (RESILIENCE: OK) with the
#     exactly-once tail intact on both sides of the A/B;
#   * byte-identical reruns per seed — slow-core-aware placement and
#     speculative re-issue are deterministic in virtual time;
#   * the trace shows the avoidance story: the straggler windows open,
#     cores get penalized, and the watchdog re-issues stalled chunks.
#
# Usage: check_resilience.sh <path-to-bench_resilience> [workdir] [mode]
#   mode: legacy | burst | wedge | straggler | all (default all)

set -euo pipefail

BENCH=${1:?usage: check_resilience.sh <bench_resilience> [workdir] [mode]}
WORKDIR=${2:-$(mktemp -d)}
MODE=${3:-all}
mkdir -p "$WORKDIR"
SEED=42

fail() {
  echo "check_resilience.sh: FAIL: $1" >&2
  exit 1
}

# run <tag> <seed> [extra flags...]
run() {
  TAG=$1
  RUNSEED=$2
  shift 2
  "$BENCH" --seed "$RUNSEED" "$@" \
    --trace "$WORKDIR/resil.$TAG.trace.json" \
    >"$WORKDIR/resil.$TAG.out" 2>&1 ||
    fail "run $TAG exited non-zero (see $WORKDIR/resil.$TAG.out)"
}

# Same seed, same virtual-time world: everything must be byte-identical.
# (The [telemetry] banner embeds the per-run trace path, so drop it.)
assert_identical() {
  grep -v '^\[telemetry\]' "$WORKDIR/resil.$1.out" >"$WORKDIR/resil.$1.flt"
  grep -v '^\[telemetry\]' "$WORKDIR/resil.$2.out" >"$WORKDIR/resil.$2.flt"
  cmp -s "$WORKDIR/resil.$1.flt" "$WORKDIR/resil.$2.flt" ||
    fail "stdout differs between identically seeded runs ($1 vs $2)"
  cmp -s "$WORKDIR/resil.$1.trace.json" "$WORKDIR/resil.$2.trace.json" ||
    fail "trace differs between identically seeded runs ($1 vs $2)"
}

if [ "$MODE" = legacy ] || [ "$MODE" = all ]; then
  run 1 $SEED
  run 2 $SEED

  grep -q '^RESILIENCE: OK$' "$WORKDIR/resil.1.out" ||
    fail "run did not recover (no RESILIENCE: OK)"
  assert_identical 1 2

  TRACE="$WORKDIR/resil.1.trace.json"
  [ -s "$TRACE" ] || fail "trace file missing or empty: $TRACE"

  # The recovery story, in trace landmarks: a core fails, the watchdog
  # notices and shrinks capacity, and execution resumes reconfigured.
  grep -q '"fault_offline"' "$TRACE" || fail "no core-offline instant in trace"
  grep -q '"watchdog_detect"' "$TRACE" || fail "no watchdog detection in trace"
  grep -q '"capacity_drop"' "$TRACE" || fail "no capacity-drop instant in trace"
  grep -Eq '"transition"|"recover"' "$TRACE" ||
    fail "no pause/reconfigure/resume span in trace"
  grep -q '"task_fault"' "$TRACE" || fail "no transient task fault in trace"

  # Fault metrics (retries, detections, MTTR) land in the metrics dump.
  METRICS="$TRACE.metrics.txt"
  [ -s "$METRICS" ] || fail "metrics dump missing: $METRICS"
  grep -q 'watchdog\.detections' "$METRICS" || fail "no detection counter"
  grep -q 'watchdog\.mttr_us' "$METRICS" || fail "no MTTR histogram"
  grep -q '\.faults' "$METRICS" || fail "no fault counter"
fi

if [ "$MODE" = burst ] || [ "$MODE" = all ]; then
  # Seed sweep over the correlated burst + repair scenario: each seed must
  # recover, rerun byte-identically, and show the budget shrinking on the
  # domain event and growing back after the repair.
  for S in 7 21 42; do
    run "burst.$S.1" "$S" --burst
    run "burst.$S.2" "$S" --burst
    grep -q '^RESILIENCE: OK$' "$WORKDIR/resil.burst.$S.1.out" ||
      fail "burst seed $S did not recover (no RESILIENCE: OK)"
    assert_identical "burst.$S.1" "burst.$S.2"
    # Non-zero budget transitions in both directions (shrink then grow).
    grep -Eq '^   budget: .* \([1-9][0-9]* shrink\(s\), [1-9][0-9]* grow\(s\)\)$' \
      "$WORKDIR/resil.burst.$S.1.out" ||
      fail "burst seed $S: budget did not both shrink and grow back"
  done

  BTRACE="$WORKDIR/resil.burst.42.1.trace.json"
  [ -s "$BTRACE" ] || fail "burst trace file missing or empty: $BTRACE"
  # The burst/repair story, in trace landmarks: the domain takes its
  # cores, the watchdog detects the drop, repair returns them, and the
  # watchdog grows the budget back.
  grep -q '"fault_domain"' "$BTRACE" || fail "no domain-burst instant in trace"
  grep -q '"fault_offline"' "$BTRACE" || fail "no core-offline instant in trace"
  grep -q '"repair_online"' "$BTRACE" || fail "no repair instant in trace"
  grep -q '"watchdog_grow"' "$BTRACE" || fail "no watchdog growth detection"
  grep -q '"capacity_grow"' "$BTRACE" || fail "no capacity-grow instant in trace"
  BMETRICS="$BTRACE.metrics.txt"
  [ -s "$BMETRICS" ] || fail "burst metrics dump missing: $BMETRICS"
  grep -q 'machine\.repairs' "$BMETRICS" || fail "no repair counter"
  grep -q 'watchdog\.growths' "$BMETRICS" || fail "no growth counter"
fi

if [ "$MODE" = wedge ] || [ "$MODE" = all ]; then
  run wedge.1 $SEED --wedge
  run wedge.2 $SEED --wedge

  grep -q '^RESILIENCE: OK$' "$WORKDIR/resil.wedge.1.out" ||
    fail "wedge run did not recover (no RESILIENCE: OK)"
  assert_identical wedge.1 wedge.2

  # The surgical verdict in the stdout summary: at least one surgical
  # restart, zero whole-region aborts, and the rest of the region retired
  # work between the wedge and the repair.
  grep -Eq '^   surgical: [1-9][0-9]* blame\(s\), [1-9][0-9]* restart\(s\), 0 fallback abort\(s\)' \
    "$WORKDIR/resil.wedge.1.out" ||
    fail "wedge run shows no surgical blame/restart (or a fallback abort)"
  grep -Eq '^   runner: .* 0 abortive recovery\(s\)$' \
    "$WORKDIR/resil.wedge.1.out" ||
    fail "wedge run took a whole-region abortive recovery"
  grep -q 'healthy tasks kept retiring' "$WORKDIR/resil.wedge.1.out" ||
    fail "wedge run did not report progress during the repair"

  WTRACE="$WORKDIR/resil.wedge.1.trace.json"
  [ -s "$WTRACE" ] || fail "wedge trace file missing or empty: $WTRACE"
  # The surgical story, in trace landmarks: the wedge fires, the blame
  # scan convicts the task, and only that task is restarted.
  grep -q '"fault_wedge"' "$WTRACE" || fail "no wedge instant in trace"
  grep -q '"watchdog_blame"' "$WTRACE" || fail "no blame verdict in trace"
  grep -q '"surgical_restart"' "$WTRACE" ||
    fail "no surgical-restart instant in trace"
  grep -q '"task_restart"' "$WTRACE" || fail "no task-restart instant in trace"
  WMETRICS="$WTRACE.metrics.txt"
  [ -s "$WMETRICS" ] || fail "wedge metrics dump missing: $WMETRICS"
  grep -q 'machine\.faults\.wedges' "$WMETRICS" || fail "no wedge counter"
  grep -q 'watchdog\.blames' "$WMETRICS" || fail "no blame counter"
  grep -q 'watchdog\.surgical_restarts' "$WMETRICS" ||
    fail "no surgical-restart counter"
  grep -q 'watchdog\.surgical_mttr_us' "$WMETRICS" ||
    fail "no surgical MTTR histogram"
fi

if [ "$MODE" = straggler ] || [ "$MODE" = all ]; then
  # Seed sweep over the slow-core A/B: each seed must clear the makespan
  # gate with the ordered tail intact and rerun byte-identically.
  for S in 7 21 42; do
    run "strag.$S.1" "$S" --straggler
    run "strag.$S.2" "$S" --straggler
    grep -q '^RESILIENCE: OK$' "$WORKDIR/resil.strag.$S.1.out" ||
      fail "straggler seed $S failed its gates (no RESILIENCE: OK)"
    assert_identical "strag.$S.1" "strag.$S.2"
    # The A/B verdict itself: a real (>= 1.15x, gated by the bench)
    # makespan improvement from avoidance + speculation.
    grep -Eq '^   improvement: [0-9]+\.[0-9]+x makespan' \
      "$WORKDIR/resil.strag.$S.1.out" ||
      fail "straggler seed $S: no makespan improvement line"
  done

  STRACE="$WORKDIR/resil.strag.42.1.trace.json"
  [ -s "$STRACE" ] || fail "straggler trace file missing or empty: $STRACE"
  # The avoidance story, in trace landmarks: dilation windows open, the
  # rate sensor penalizes the slow cores, and the watchdog clones chunks
  # that stall the commit frontier.
  grep -q '"fault_straggler"' "$STRACE" ||
    fail "no straggler-window instant in trace"
  grep -q '"core_penalized"' "$STRACE" ||
    fail "no core-penalized instant in trace"
  grep -q '"watchdog_speculate"' "$STRACE" ||
    fail "no speculative re-issue instant in trace"
  SMETRICS="$STRACE.metrics.txt"
  [ -s "$SMETRICS" ] || fail "straggler metrics dump missing: $SMETRICS"
  grep -q 'machine\.cores_penalized' "$SMETRICS" ||
    fail "no penalized-core counter"
  grep -q 'watchdog\.speculations' "$SMETRICS" || fail "no speculation counter"
fi

echo "check_resilience.sh: OK ($MODE, $WORKDIR)"
