#!/usr/bin/env bash
# check_trace.sh — end-to-end validation of the telemetry exporter.
#
# Runs the trace_viewer example with tracing enabled, has it re-parse and
# validate its own output (--check uses the in-tree JSON parser), and then
# greps the file for the structural landmarks the acceptance criteria
# name: controller FSM spans, at least one reconfiguration instant, and
# per-core busy spans.
#
# Usage: check_trace.sh <path-to-example_trace_viewer> [workdir]

set -euo pipefail

VIEWER=${1:?usage: check_trace.sh <example_trace_viewer> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
TRACE="$WORKDIR/check.trace.json"

"$VIEWER" --trace "$TRACE" --check

fail() {
  echo "check_trace.sh: FAIL: $1" >&2
  exit 1
}

[ -s "$TRACE" ] || fail "trace file missing or empty: $TRACE"

# Controller FSM spans (named after the states of Figure 6.3).
grep -q '"CALIBRATE"' "$TRACE" || fail "no CALIBRATE span in trace"
grep -q '"OPTIMIZE"' "$TRACE" || fail "no OPTIMIZE span in trace"
grep -q '"MONITOR"' "$TRACE" || fail "no MONITOR span in trace"

# At least one scheme/DoP reconfiguration instant.
grep -Eq '"dop_move"|"reconfigure_in_place"|"transition"' "$TRACE" ||
  fail "no reconfiguration event in trace"

# Per-core busy spans: the machine process names core tracks, and B/E
# span events reference the core category.
grep -q '"core 0"' "$TRACE" || fail "no core-track metadata in trace"
grep -q '"cat":"core"' "$TRACE" || fail "no per-core busy spans in trace"

# The metrics dump lands next to the trace.
[ -s "$TRACE.metrics.txt" ] || fail "metrics dump missing: $TRACE.metrics.txt"
grep -q '^counter ' "$TRACE.metrics.txt" || fail "metrics dump has no counters"

echo "check_trace.sh: OK ($TRACE)"
