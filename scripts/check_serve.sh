#!/usr/bin/env bash
# check_serve.sh — end-to-end validation of the open-loop serving layer
# (arrival generation, admission control, and SLO-driven budget
# arbitration) on bench_serve's three-phase scenario.
#
# Sweeps three seeds, running each seed twice, and asserts:
#   * the bench's own verdict passes (SERVE: OK — zero SLO violations in
#     the under-load phase, the overload phase sheds load while goodput
#     stays >= 80% of under-load instead of collapsing, budget flowed
#     toward the violating class, and the run drains);
#   * determinism — the two runs' stdout and Chrome traces are
#     byte-identical (seeded arrivals on virtual time => same world);
#   * the table shows the load story directly: no under-load violations
#     for either class, and non-zero shedding in the api overload row;
#   * the trace shows the arbitration story: repartition instants and
#     slo_transfer instants, with admission + transfer counters in the
#     metrics dump.
#
# Usage: check_serve.sh <path-to-bench_serve> [workdir]

set -euo pipefail

BENCH=${1:?usage: check_serve.sh <bench_serve> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

fail() {
  echo "check_serve.sh: FAIL: $1" >&2
  exit 1
}

# run <tag> <seed>
run() {
  TAG=$1
  RUNSEED=$2
  "$BENCH" --seed "$RUNSEED" \
    --trace "$WORKDIR/serve.$TAG.trace.json" \
    >"$WORKDIR/serve.$TAG.out" 2>&1 ||
    fail "run $TAG exited non-zero (see $WORKDIR/serve.$TAG.out)"
}

# Same seed, same virtual-time world: everything must be byte-identical.
# (The [telemetry] banner embeds the per-run trace path, so drop it.)
assert_identical() {
  grep -v '^\[telemetry\]' "$WORKDIR/serve.$1.out" >"$WORKDIR/serve.$1.flt"
  grep -v '^\[telemetry\]' "$WORKDIR/serve.$2.out" >"$WORKDIR/serve.$2.flt"
  cmp -s "$WORKDIR/serve.$1.flt" "$WORKDIR/serve.$2.flt" ||
    fail "stdout differs between identically seeded runs ($1 vs $2)"
  cmp -s "$WORKDIR/serve.$1.trace.json" "$WORKDIR/serve.$2.trace.json" ||
    fail "trace differs between identically seeded runs ($1 vs $2)"
}

for S in 7 21 42; do
  run "$S.1" "$S"
  run "$S.2" "$S"

  OUT="$WORKDIR/serve.$S.1.out"
  grep -q '^SERVE: OK$' "$OUT" ||
    fail "seed $S: bench verdict failed (no SERVE: OK)"
  assert_identical "$S.1" "$S.2"

  # Zero SLO violations in the under-load phase, for both classes (the
  # viol column is the last field of each table row).
  for CLS in api batch; do
    grep -Eq "^ ${CLS}[[:space:]]+\| under[[:space:]]+\|.*\|[[:space:]]+0\$" \
      "$OUT" || fail "seed $S: $CLS under-load row shows SLO violations"
  done
  # The overload phase sheds rather than queueing without bound: a
  # non-zero shed count in the api overload row (4th numeric column).
  grep -E '^ api[[:space:]]+\| overload' "$OUT" |
    awk -F'|' '{ split($3, F, " "); exit F[4] > 0 ? 0 : 1 }' ||
    fail "seed $S: api overload row shed nothing"
  # Budget moved toward the violating class under overload.
  grep -Eq 'slo timeline: [1-9][0-9]* transfer\(s\), [1-9][0-9]* toward api' \
    "$OUT" || fail "seed $S: no SLO transfer toward the api class"
done

TRACE="$WORKDIR/serve.42.1.trace.json"
[ -s "$TRACE" ] || fail "trace file missing or empty: $TRACE"

# The arbitration story, in trace landmarks: the daemon repartitions as
# tenants register and rebalance, and the SLO pass records its moves.
grep -q '"repartition"' "$TRACE" || fail "no repartition instant in trace"
grep -q '"slo_transfer"' "$TRACE" || fail "no slo_transfer instant in trace"

# Admission + arbitration metrics land in the metrics dump.
METRICS="$TRACE.metrics.txt"
[ -s "$METRICS" ] || fail "metrics dump missing: $METRICS"
grep -q 'serve\.admitted' "$METRICS" || fail "no admitted counter"
grep -q 'serve\.rejected' "$METRICS" || fail "no rejected counter"
grep -q 'serve\.shed' "$METRICS" || fail "no shed counter"
grep -q 'platform\.slo_transfers' "$METRICS" || fail "no transfer counter"

echo "check_serve.sh: OK ($WORKDIR)"
