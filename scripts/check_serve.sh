#!/usr/bin/env bash
# check_serve.sh — end-to-end validation of the open-loop serving layer
# (arrival generation, admission control, and SLO-driven budget
# arbitration) on bench_serve's three-phase scenario.
#
# Sweeps three seeds, running each seed twice, and asserts:
#   * the bench's own verdict passes (SERVE: OK — zero SLO violations in
#     the under-load phase, the overload phase sheds load while goodput
#     stays >= 80% of under-load instead of collapsing, budget flowed
#     toward the violating class, and the run drains);
#   * determinism — the two runs' stdout and Chrome traces are
#     byte-identical (seeded arrivals on virtual time => same world);
#   * the table shows the load story directly: no under-load violations
#     for either class, and non-zero shedding in the api overload row;
#   * the trace shows the arbitration story: repartition instants and
#     slo_transfer instants, with admission + transfer counters in the
#     metrics dump.
#
# In batch mode the same sweep runs `bench_serve --batch` (the A/B:
# unbatched baseline then batched dispatch at the same seed) and
# additionally asserts:
#   * the bench's batch verdict passes (BATCH: OK — per-request latency
#     attributed from inside batches, spin-up amortized, drained);
#   * determinism of the full A/B output (both runs byte-identical);
#   * the goodput landmark: batched overload goodput >= 1.3x the
#     unbatched baseline at the same seed;
#   * the trace carries batch_close instants (the coalescing story).
#
# Usage: check_serve.sh <path-to-bench_serve> [workdir] [legacy|batch]

set -euo pipefail

BENCH=${1:?usage: check_serve.sh <bench_serve> [workdir] [legacy|batch]}
WORKDIR=${2:-$(mktemp -d)}
MODE=${3:-legacy}
mkdir -p "$WORKDIR"

fail() {
  echo "check_serve.sh: FAIL: $1" >&2
  exit 1
}

# run <tag> <seed>
run() {
  TAG=$1
  RUNSEED=$2
  EXTRA=()
  [ "$MODE" = batch ] && EXTRA=(--batch)
  "$BENCH" --seed "$RUNSEED" "${EXTRA[@]}" \
    --trace "$WORKDIR/serve.$TAG.trace.json" \
    >"$WORKDIR/serve.$TAG.out" 2>&1 ||
    fail "run $TAG exited non-zero (see $WORKDIR/serve.$TAG.out)"
}

# Same seed, same virtual-time world: everything must be byte-identical.
# (The [telemetry] banner embeds the per-run trace path, so drop it.)
assert_identical() {
  grep -v '^\[telemetry\]' "$WORKDIR/serve.$1.out" >"$WORKDIR/serve.$1.flt"
  grep -v '^\[telemetry\]' "$WORKDIR/serve.$2.out" >"$WORKDIR/serve.$2.flt"
  cmp -s "$WORKDIR/serve.$1.flt" "$WORKDIR/serve.$2.flt" ||
    fail "stdout differs between identically seeded runs ($1 vs $2)"
  cmp -s "$WORKDIR/serve.$1.trace.json" "$WORKDIR/serve.$2.trace.json" ||
    fail "trace differs between identically seeded runs ($1 vs $2)"
}

for S in 7 21 42; do
  run "$S.1" "$S"
  run "$S.2" "$S"

  OUT="$WORKDIR/serve.$S.1.out"
  grep -q '^SERVE: OK$' "$OUT" ||
    fail "seed $S: bench verdict failed (no SERVE: OK)"
  assert_identical "$S.1" "$S.2"

  if [ "$MODE" = batch ]; then
    grep -q '^BATCH: OK$' "$OUT" ||
      fail "seed $S: batch verdict failed (no BATCH: OK)"
    # The goodput landmark: the bench prints the A/B speedup and its own
    # verdict gates it at 1.3x; assert the landmark line is present (and
    # not 0.xx) so a silent report regression cannot pass.
    grep -Eq 'batch goodput speedup: [1-9][0-9]*\.[0-9]+x' "$OUT" ||
      fail "seed $S: no batch goodput speedup landmark"
    # Spin-up amortization: more than one request per region on average.
    grep -Eq 'api   regions: [0-9]+ -> [0-9]+ \([2-9]' "$OUT" ||
      fail "seed $S: api batches did not amortize regions"
  fi

  # Zero SLO violations in the under-load phase, for both classes (the
  # viol column is the last field of each table row).
  for CLS in api batch; do
    grep -Eq "^ ${CLS}[[:space:]]+\| under[[:space:]]+\|.*\|[[:space:]]+0\$" \
      "$OUT" || fail "seed $S: $CLS under-load row shows SLO violations"
  done
  # The overload phase sheds rather than queueing without bound: a
  # non-zero shed count in the api overload row (4th numeric column).
  grep -E '^ api[[:space:]]+\| overload' "$OUT" |
    awk -F'|' '{ split($3, F, " "); exit F[4] > 0 ? 0 : 1 }' ||
    fail "seed $S: api overload row shed nothing"
  # Budget moved toward the violating class under overload.
  grep -Eq 'slo timeline: [1-9][0-9]* transfer\(s\), [1-9][0-9]* toward api' \
    "$OUT" || fail "seed $S: no SLO transfer toward the api class"
done

TRACE="$WORKDIR/serve.42.1.trace.json"
[ -s "$TRACE" ] || fail "trace file missing or empty: $TRACE"

# The arbitration story, in trace landmarks: the daemon repartitions as
# tenants register and rebalance, and the SLO pass records its moves.
grep -q '"repartition"' "$TRACE" || fail "no repartition instant in trace"
grep -q '"slo_transfer"' "$TRACE" || fail "no slo_transfer instant in trace"

# Batch mode: coalescing leaves batch_close instants in the trace.
if [ "$MODE" = batch ]; then
  grep -q '"batch_close"' "$TRACE" || fail "no batch_close instant in trace"
fi

# Admission + arbitration metrics land in the metrics dump.
METRICS="$TRACE.metrics.txt"
[ -s "$METRICS" ] || fail "metrics dump missing: $METRICS"
grep -q 'serve\.admitted' "$METRICS" || fail "no admitted counter"
grep -q 'serve\.rejected' "$METRICS" || fail "no rejected counter"
grep -q 'serve\.shed' "$METRICS" || fail "no shed counter"
grep -q 'platform\.slo_transfers' "$METRICS" || fail "no transfer counter"

echo "check_serve.sh: OK ($WORKDIR)"
