#!/usr/bin/env bash
# check_perf.sh — CI sanity check of the perf harness. Runs
# scripts/bench_json.sh and validates the JSON it emits:
#   * both files exist, are non-empty, and carry the expected fields;
#   * the event core performs no allocations per event (in either queue
#     mode) and is faster than the legacy core (conservative 1.3x floor:
#     CI hosts are noisy; the bench itself reports ~2x on a quiet
#     machine);
#   * the timing-wheel tier earns its keep: at least as fast as the
#     plain heap on the short-delay band (0.95 floor for CI noise; a
#     quiet machine shows a clear win) and within 5% of the heap on the
#     far-horizon distribution where the wheel is pure overhead;
#   * chunked claiming at K=8 cuts per-iteration overhead at least 4x
#     (virtual-time measurement, so this one is deterministic).
#
# Usage: check_perf.sh <bench-bindir> [workdir]

set -euo pipefail

BINDIR=${1:?usage: check_perf.sh <bench-bindir> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
SCRIPTDIR=$(dirname "$0")

fail() {
  echo "check_perf.sh: FAIL: $1" >&2
  exit 1
}

# Field extractor: prints the first numeric value of "key": <num> or
# nothing. One awk process, no pipeline — the old sed|head pair would
# trip pipefail whenever head closed the pipe on a multi-match file.
field() {
  awk -v key="$2" '
    {
      if (match($0, "\"" key "\"[[:space:]]*:[[:space:]]*")) {
        rest = substr($0, RSTART + RLENGTH)
        if (match(rest, /^-?[0-9][0-9.]*/)) {
          print substr(rest, RSTART, RLENGTH)
          exit
        }
      }
    }' "$1"
}

# At least: awk-based float compare.
at_least() {
  awk -v a="$1" -v b="$2" 'BEGIN { exit (a+0 >= b+0) ? 0 : 1 }'
}

bash "$SCRIPTDIR/bench_json.sh" "$BINDIR" "$WORKDIR" ||
  fail "bench_json.sh exited non-zero"

SIMCORE="$WORKDIR/BENCH_simcore.json"
OVERHEADS="$WORKDIR/BENCH_overheads.json"
[ -s "$SIMCORE" ] || fail "missing or empty $SIMCORE"
[ -s "$OVERHEADS" ] || fail "missing or empty $OVERHEADS"

# --- simcore ----------------------------------------------------------
for KEY in events_per_sec_legacy events_per_sec_current speedup \
           allocs_per_event_legacy allocs_per_event_current; do
  V=$(field "$SIMCORE" "$KEY")
  [ -n "$V" ] || fail "simcore JSON lacks $KEY"
done
SPEEDUP=$(field "$SIMCORE" speedup)
at_least "$SPEEDUP" 1.3 ||
  fail "sim core speedup $SPEEDUP below the 1.3x CI floor"
ALLOCS=$(field "$SIMCORE" allocs_per_event_current)
at_least 0.01 "$ALLOCS" ||
  fail "event core allocates per event ($ALLOCS)"

# --- simcore: wheel-vs-heap A/B ---------------------------------------
for KEY in wheel_speedup_short wheel_ratio_far wheel_ratio_mixed \
           allocs_per_event_heap allocs_per_event_wheel \
           ring_hits wheel_hits heap_hits spill_migrations; do
  V=$(field "$SIMCORE" "$KEY")
  [ -n "$V" ] || fail "simcore JSON lacks $KEY"
done
WHEEL_SHORT=$(field "$SIMCORE" wheel_speedup_short)
at_least "$WHEEL_SHORT" 0.95 ||
  fail "wheel slower than heap on short delays (${WHEEL_SHORT}x)"
WHEEL_FAR=$(field "$SIMCORE" wheel_ratio_far)
at_least "$WHEEL_FAR" 0.95 ||
  fail "wheel regresses far-horizon delays beyond 5% (${WHEEL_FAR}x)"
for KEY in allocs_per_event_heap allocs_per_event_wheel; do
  V=$(field "$SIMCORE" "$KEY")
  at_least 0.001 "$V" || fail "$KEY is nonzero ($V)"
done

# --- overheads --------------------------------------------------------
for KEY in reduction_k8 reduction_k32 hook_cost; do
  V=$(field "$OVERHEADS" "$KEY")
  [ -n "$V" ] || fail "overheads JSON lacks $KEY"
done
grep -q '"chunk_runs"' "$OVERHEADS" || fail "overheads JSON lacks chunk_runs"
RED8=$(field "$OVERHEADS" reduction_k8)
at_least "$RED8" 4.0 ||
  fail "chunking reduction at K=8 is ${RED8}x, expected >= 4x"

echo "check_perf.sh: OK (speedup ${SPEEDUP}x, wheel/heap short" \
  "${WHEEL_SHORT}x far ${WHEEL_FAR}x, K=8 reduction ${RED8}x)"
