#!/usr/bin/env bash
# bench_json.sh — run the perf microbenchmarks and collect their
# machine-readable summaries:
#   BENCH_simcore.json    events/sec + allocs/event of the discrete-event
#                         core vs the legacy std::function implementation,
#                         plus the wheel-vs-heap queue-tier A/B across
#                         short / far / mixed delay distributions and the
#                         tier-hit counters of the mixed wheel run
#   BENCH_overheads.json  per-iteration Morta/Decima + channel overhead at
#                         pinned chunk sizes K = 1 / 8 / 32
#   BENCH_serve.json      per-phase goodput/p95/shedding of the two-class
#                         open-loop serving scenario (bench_serve)
#   BENCH_straggler.json  slow-core A/B of bench_resilience --straggler:
#                         makespan + p95 retire-gap improvement and the
#                         speculative re-issue count
#
# Usage: bench_json.sh <bench-bindir> [outdir]
#   <bench-bindir>  directory containing bench_simcore / bench_overheads
#   [outdir]        where the JSON lands (default: <bench-bindir>)

set -euo pipefail

BINDIR=${1:?usage: bench_json.sh <bench-bindir> [outdir]}
OUTDIR=${2:-$BINDIR}
mkdir -p "$OUTDIR"

# Modest event count: enough for a stable rate, small enough for CI.
"$BINDIR/bench_simcore" --events 500000 --json "$OUTDIR/BENCH_simcore.json"
"$BINDIR/bench_overheads" --json "$OUTDIR/BENCH_overheads.json"
# --batch adds the batched-dispatch A/B fields (speedup, close triggers,
# spin-up amortization) alongside the legacy per-phase summary.
"$BINDIR/bench_serve" --batch --json "$OUTDIR/BENCH_serve.json" >/dev/null
# Straggler A/B: same seed run with and without slow-core avoidance +
# speculative re-issue; the JSON carries both makespans and the ratio.
"$BINDIR/bench_resilience" --straggler \
  --json "$OUTDIR/BENCH_straggler.json" >/dev/null

echo "bench_json.sh: wrote $OUTDIR/BENCH_simcore.json"
echo "bench_json.sh: wrote $OUTDIR/BENCH_overheads.json"
echo "bench_json.sh: wrote $OUTDIR/BENCH_serve.json"
echo "bench_json.sh: wrote $OUTDIR/BENCH_straggler.json"
