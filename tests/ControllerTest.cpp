//===- ControllerTest.cpp - Chapter 6 run-time controller tests ------------===//
//
// Tests of the closed-loop controller: sequential baseline, gradient
// ascent to the optimal DoP (Algorithm 4), profitability fallback to SEQ,
// workload-change re-calibration, resource-change adaptation, and the
// platform-wide daemon (Algorithm 5).
//
//===----------------------------------------------------------------------===//

#include "morta/Controller.h"
#include "morta/Platform.h"
#include "morta/RegionRunner.h"

#include <gtest/gtest.h>

#include <memory>

using namespace parcae;
using namespace parcae::rt;

namespace {

/// A DOANY region whose scalability saturates: each iteration computes
/// \p Cost cycles plus a \p Crit-cycle critical section, so throughput
/// stops improving near DoP = Cost/Crit + 1.
FlexibleRegion makeSaturatingDoAny(sim::SimTime Cost, sim::SimTime Crit) {
  FlexibleRegion R("doany");
  {
    RegionDesc D;
    D.Name = "doany-seq";
    D.S = Scheme::Seq;
    D.Tasks.emplace_back("work", TaskType::Seq,
                         [Cost, Crit](IterationContext &Ctx) {
                           Ctx.Cost = Cost + Crit;
                         });
    R.addVariant(std::move(D));
  }
  {
    RegionDesc D;
    D.Name = "doany-par";
    D.S = Scheme::DoAny;
    D.Tasks.emplace_back("work", TaskType::Par,
                         [Cost, Crit](IterationContext &Ctx) {
                           Ctx.Cost = Cost;
                           Ctx.Criticals.push_back({1, Crit});
                         });
    R.addVariant(std::move(D));
  }
  return R;
}

/// A region whose parallel variant is worse than sequential (massive
/// critical section), to exercise the profitability fallback.
FlexibleRegion makeUnprofitable() {
  FlexibleRegion R("unprofitable");
  {
    RegionDesc D;
    D.Name = "u-seq";
    D.S = Scheme::Seq;
    D.Tasks.emplace_back("work", TaskType::Seq,
                         [](IterationContext &Ctx) { Ctx.Cost = 10000; });
    R.addVariant(std::move(D));
  }
  {
    RegionDesc D;
    D.Name = "u-par";
    D.S = Scheme::DoAny;
    D.Tasks.emplace_back("work", TaskType::Par, [](IterationContext &Ctx) {
      Ctx.Cost = 1000;
      Ctx.Criticals.push_back({1, 11000}); // serializes worse than SEQ
    });
    R.addVariant(std::move(D));
  }
  return R;
}

struct ControllerHarness {
  sim::Simulator Sim;
  sim::Machine M;
  RuntimeCosts Costs;
  CountedWorkSource Src;

  ControllerHarness(unsigned Cores, std::uint64_t Iters = 1'000'000'000ull)
      : M(Sim, Cores), Src(Iters) {}
};

} // namespace

TEST(Controller, MeasuresSeqBaselineThenGoesParallel) {
  ControllerHarness H(8);
  FlexibleRegion Region = makeSaturatingDoAny(20000, 100);
  RegionRunner Runner(H.M, H.Costs, Region, H.Src);
  RegionController Ctrl(Runner);
  Ctrl.start(8);
  H.Sim.runUntil(200 * sim::MSec);

  EXPECT_EQ(Ctrl.state(), CtrlState::Monitor);
  EXPECT_GT(Ctrl.seqThroughput(), 0.0);
  EXPECT_EQ(Ctrl.bestConfig().S, Scheme::DoAny);
  EXPECT_GT(Ctrl.bestThroughput(), Ctrl.seqThroughput() * 2);
  // The trace must show INIT first, then calibration of the parallel
  // scheme (Figure 8.8's state banner).
  ASSERT_FALSE(Ctrl.trace().empty());
  EXPECT_EQ(Ctrl.trace().front().St, CtrlState::Init);
}

TEST(Controller, GradientAscentFindsSaturationPoint) {
  // Cost 20000, crit 5000: the critical section saturates throughput at
  // DoP ~ 5; more threads buy nothing and should not be kept.
  ControllerHarness H(16);
  FlexibleRegion Region = makeSaturatingDoAny(20000, 5000);
  RegionRunner Runner(H.M, H.Costs, Region, H.Src);
  RegionController Ctrl(Runner);
  Ctrl.start(16);
  H.Sim.runUntil(400 * sim::MSec);

  ASSERT_EQ(Ctrl.state(), CtrlState::Monitor);
  ASSERT_EQ(Ctrl.bestConfig().S, Scheme::DoAny);
  unsigned D = Ctrl.bestConfig().DoP[0];
  EXPECT_GE(D, 3u);
  EXPECT_LE(D, 8u) << "controller wasted threads beyond saturation";
}

TEST(Controller, UnprofitableParallelismRevertsToSeq) {
  ControllerHarness H(8);
  FlexibleRegion Region = makeUnprofitable();
  RegionRunner Runner(H.M, H.Costs, Region, H.Src);
  RegionController Ctrl(Runner);
  Ctrl.start(8);
  H.Sim.runUntil(300 * sim::MSec);

  EXPECT_EQ(Ctrl.state(), CtrlState::Monitor);
  EXPECT_EQ(Ctrl.bestConfig().S, Scheme::Seq);
  EXPECT_EQ(Runner.config().S, Scheme::Seq);
}

TEST(Controller, WorkloadChangeTriggersRecalibration) {
  ControllerHarness H(8);
  // Iteration cost is read through a shared knob the test flips mid-run.
  auto CostKnob = std::make_shared<sim::SimTime>(20000);
  FlexibleRegion Region("varying");
  {
    RegionDesc D;
    D.Name = "v-seq";
    D.S = Scheme::Seq;
    D.Tasks.emplace_back("work", TaskType::Seq, [CostKnob](
                                                    IterationContext &Ctx) {
      Ctx.Cost = *CostKnob;
    });
    Region.addVariant(std::move(D));
  }
  {
    RegionDesc D;
    D.Name = "v-par";
    D.S = Scheme::DoAny;
    D.Tasks.emplace_back("work", TaskType::Par, [CostKnob](
                                                    IterationContext &Ctx) {
      Ctx.Cost = *CostKnob;
      Ctx.Criticals.push_back({1, 200});
    });
    Region.addVariant(std::move(D));
  }
  RegionRunner Runner(H.M, H.Costs, Region, H.Src);
  RegionController Ctrl(Runner);
  Ctrl.start(8);
  H.Sim.runUntil(100 * sim::MSec);
  ASSERT_EQ(Ctrl.state(), CtrlState::Monitor);

  // Make every iteration 4x heavier: measured throughput drops by 4x,
  // well past the monitor threshold.
  *CostKnob = 80000;
  H.Sim.runUntil(300 * sim::MSec);
  bool SawRecalibrate = false;
  for (const auto &E : Ctrl.trace())
    if (E.At > 100 * sim::MSec && E.St == CtrlState::Calibrate)
      SawRecalibrate = true;
  EXPECT_TRUE(SawRecalibrate) << "monitor did not detect workload change";
  EXPECT_EQ(Ctrl.state(), CtrlState::Monitor);
}

TEST(Controller, BudgetDecreaseShrinksConfiguration) {
  ControllerHarness H(16);
  FlexibleRegion Region = makeSaturatingDoAny(40000, 100);
  RegionRunner Runner(H.M, H.Costs, Region, H.Src);
  RegionController Ctrl(Runner);
  Ctrl.start(16);
  H.Sim.runUntil(300 * sim::MSec);
  ASSERT_EQ(Ctrl.state(), CtrlState::Monitor);
  unsigned Before = Runner.config().totalThreads();
  EXPECT_GT(Before, 3u);

  Ctrl.setThreadBudget(3);
  H.Sim.runUntil(600 * sim::MSec);
  EXPECT_LE(Runner.config().totalThreads(), 3u);
  EXPECT_EQ(Ctrl.state(), CtrlState::Monitor);
}

TEST(Controller, BudgetIncreaseGrowsConfiguration) {
  ControllerHarness H(16);
  FlexibleRegion Region = makeSaturatingDoAny(40000, 100);
  RegionRunner Runner(H.M, H.Costs, Region, H.Src);
  RegionController Ctrl(Runner);
  Ctrl.start(4);
  H.Sim.runUntil(200 * sim::MSec);
  ASSERT_EQ(Ctrl.state(), CtrlState::Monitor);
  unsigned Before = Runner.config().totalThreads();
  EXPECT_LE(Before, 4u);

  Ctrl.setThreadBudget(12);
  H.Sim.runUntil(600 * sim::MSec);
  EXPECT_GT(Runner.config().totalThreads(), Before);
}

TEST(Controller, ConfigCacheReusedOnBudgetReturn) {
  ControllerHarness H(16);
  FlexibleRegion Region = makeSaturatingDoAny(40000, 100);
  RegionRunner Runner(H.M, H.Costs, Region, H.Src);
  RegionController Ctrl(Runner);
  Ctrl.start(8);
  H.Sim.runUntil(300 * sim::MSec);
  ASSERT_EQ(Ctrl.state(), CtrlState::Monitor);
  RegionConfig At8 = Runner.config();

  Ctrl.setThreadBudget(4);
  H.Sim.runUntil(600 * sim::MSec);
  std::size_t TraceLenBefore = Ctrl.trace().size();

  // Returning to budget 8 must hit the cache: straight to MONITOR with
  // the previously optimized configuration, no new OPTIMIZE phase.
  Ctrl.setThreadBudget(8);
  EXPECT_EQ(Runner.config(), At8);
  EXPECT_EQ(Ctrl.state(), CtrlState::Monitor);
  H.Sim.runUntil(650 * sim::MSec);
  for (std::size_t I = TraceLenBefore; I < Ctrl.trace().size(); ++I)
    EXPECT_NE(Ctrl.trace()[I].St, CtrlState::Optimize);
}

TEST(PlatformDaemon, SplitsBudgetAcrossPrograms) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 24);
  RuntimeCosts Costs;
  CountedWorkSource SrcA(1'000'000'000ull), SrcB(1'000'000'000ull);
  FlexibleRegion RegA = makeSaturatingDoAny(20000, 100);
  FlexibleRegion RegB = makeSaturatingDoAny(20000, 100);
  RegionRunner RunA(M, Costs, RegA, SrcA), RunB(M, Costs, RegB, SrcB);
  RegionController CtrlA(RunA), CtrlB(RunB);

  PlatformDaemon Daemon(24);
  Daemon.addProgram(CtrlA);
  EXPECT_EQ(Daemon.budgetOf(CtrlA), 24u);
  Daemon.addProgram(CtrlB);
  EXPECT_EQ(Daemon.budgetOf(CtrlA), 12u);
  EXPECT_EQ(Daemon.budgetOf(CtrlB), 12u);

  Sim.runUntil(400 * sim::MSec);
  EXPECT_EQ(CtrlA.state(), CtrlState::Monitor);
  EXPECT_EQ(CtrlB.state(), CtrlState::Monitor);
  EXPECT_LE(RunA.config().totalThreads() + RunB.config().totalThreads(),
            24u);
}

TEST(PlatformDaemon, SlackFlowsToSaturatedProgram) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 16);
  RuntimeCosts Costs;
  // Program A saturates early (heavy critical section); B scales freely.
  CountedWorkSource SrcA(1'000'000'000ull), SrcB(1'000'000'000ull);
  FlexibleRegion RegA = makeSaturatingDoAny(9000, 3000);
  FlexibleRegion RegB = makeSaturatingDoAny(40000, 50);
  RegionRunner RunA(M, Costs, RegA, SrcA), RunB(M, Costs, RegB, SrcB);
  RegionController CtrlA(RunA), CtrlB(RunB);

  PlatformDaemon Daemon(16);
  Daemon.addProgram(CtrlA);
  Daemon.addProgram(CtrlB);
  Sim.runUntil(800 * sim::MSec);

  // A should settle near its saturation (~4 threads), well under its even
  // share; the slack should raise B's budget above the even split.
  EXPECT_LT(RunA.config().totalThreads(), 8u);
  EXPECT_GT(CtrlB.threadBudget(), 8u);
}

TEST(PlatformDaemon, RemoveProgramRedistributes) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource SrcA(1'000'000'000ull), SrcB(1'000'000'000ull);
  FlexibleRegion RegA = makeSaturatingDoAny(20000, 100);
  FlexibleRegion RegB = makeSaturatingDoAny(20000, 100);
  RegionRunner RunA(M, Costs, RegA, SrcA), RunB(M, Costs, RegB, SrcB);
  RegionController CtrlA(RunA), CtrlB(RunB);

  PlatformDaemon Daemon(8);
  Daemon.addProgram(CtrlA);
  Daemon.addProgram(CtrlB);
  Sim.runUntil(100 * sim::MSec);
  Daemon.removeProgram(CtrlA);
  EXPECT_EQ(Daemon.budgetOf(CtrlB), 8u);
}
