//===- LinkTest.cpp - Inter-task channel tests ------------------------------===//

#include "core/Link.h"

#include <gtest/gtest.h>

using namespace parcae::rt;

namespace {
Token tok(std::uint64_t Seq, std::int64_t Value = 0) {
  Token T;
  T.Seq = Seq;
  T.Value = Value;
  return T;
}
} // namespace

TEST(Link, RoutesBySlot) {
  WidthSchedule S(3);
  Link L("l", S, 8, 64);
  for (std::uint64_t I = 0; I < 9; ++I)
    EXPECT_TRUE(L.trySend(tok(I, static_cast<std::int64_t>(I * 10))));
  EXPECT_EQ(L.buffered(), 9u);
  EXPECT_EQ(L.bufferedFor(0), 3u);
  Token Out;
  EXPECT_TRUE(L.tryRecv(1, 1, Out));
  EXPECT_EQ(Out.Value, 10);
  EXPECT_TRUE(L.tryRecv(1, 4, Out));
  EXPECT_EQ(Out.Value, 40);
}

TEST(Link, RecvFailsUntilTokenArrives) {
  WidthSchedule S(2);
  Link L("l", S, 8, 64);
  Token Out;
  EXPECT_FALSE(L.tryRecv(0, 0, Out));
  EXPECT_TRUE(L.trySend(tok(0)));
  EXPECT_TRUE(L.tryRecv(0, 0, Out));
  EXPECT_FALSE(L.tryRecv(0, 2, Out));
}

TEST(Link, AdmissionWindowBlocksFarAhead) {
  WidthSchedule S(1);
  Link L("l", S, 4, 8);
  for (std::uint64_t I = 0; I < 8; ++I)
    EXPECT_TRUE(L.trySend(tok(I)));
  EXPECT_FALSE(L.trySend(tok(8))) << "beyond low-water + window";
  // Consumer progress opens the window.
  Token Out;
  EXPECT_TRUE(L.tryRecv(0, 0, Out));
  L.setLowWater(1);
  EXPECT_TRUE(L.trySend(tok(8)));
}

TEST(Link, OutOfOrderProducersStillDeliverInOrder) {
  // Two producer threads of a parallel stage can push their iterations in
  // any interleaving; the per-slot ordered buffer restores consumption
  // order for the sequential consumer.
  WidthSchedule S(1);
  Link L("l", S, 4, 64);
  EXPECT_TRUE(L.trySend(tok(2, 22)));
  EXPECT_TRUE(L.trySend(tok(0, 0)));
  EXPECT_TRUE(L.trySend(tok(1, 11)));
  Token Out;
  EXPECT_TRUE(L.tryRecv(0, 0, Out));
  EXPECT_EQ(Out.Value, 0);
  EXPECT_TRUE(L.tryRecv(0, 1, Out));
  EXPECT_EQ(Out.Value, 11);
  EXPECT_TRUE(L.tryRecv(0, 2, Out));
  EXPECT_EQ(Out.Value, 22);
}

TEST(Link, RoutingFollowsEpochChange) {
  // Tokens produced before the width change stay with their old slot;
  // tokens after it route mod the new width (Section 7.2.2).
  WidthSchedule S(2);
  Link L("l", S, 8, 64);
  for (std::uint64_t I = 0; I < 4; ++I)
    EXPECT_TRUE(L.trySend(tok(I)));
  S.append(4, 3);
  for (std::uint64_t I = 4; I < 10; ++I)
    EXPECT_TRUE(L.trySend(tok(I)));
  Token Out;
  // Old epoch: slot 1 owns 1 and 3.
  EXPECT_TRUE(L.tryRecv(1, 1, Out));
  EXPECT_TRUE(L.tryRecv(1, 3, Out));
  // New epoch: slot 1 owns 4 and 7 (both are 1 mod 3).
  EXPECT_TRUE(L.tryRecv(1, 4, Out));
  EXPECT_TRUE(L.tryRecv(1, 7, Out));
  // Slot 2 exists only in the new epoch: owns 5 and 8.
  EXPECT_TRUE(L.tryRecv(2, 5, Out));
  EXPECT_TRUE(L.tryRecv(2, 8, Out));
}

TEST(Link, DataAvailSignalledOnSend) {
  WidthSchedule S(2);
  Link L("l", S, 8, 64);
  // No real threads here; just check the waitable exists per slot and
  // buffered counters track.
  EXPECT_EQ(L.bufferedFor(0), 0u);
  EXPECT_TRUE(L.trySend(tok(0)));
  EXPECT_EQ(L.bufferedFor(0), 1u);
  L.clear();
  EXPECT_EQ(L.buffered(), 0u);
}

TEST(Link, LowWaterMonotone) {
  WidthSchedule S(1);
  Link L("l", S, 4, 8);
  L.setLowWater(5);
  L.setLowWater(3); // ignored
  EXPECT_EQ(L.lowWater(), 5u);
}
