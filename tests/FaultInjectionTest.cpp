//===- FaultInjectionTest.cpp - Edge cases and hostile schedules -------------===//
//
// Failure-injection and boundary tests for the flexible-execution
// machinery: empty regions, pause storms, pause-before-first-iteration,
// reconfiguration of completed regions, one-core machines, budget-1
// controllers, closed-empty work queues, and the unoptimized (Chapter 7
// switches off) protocol paths.
//
//===----------------------------------------------------------------------===//

#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/Controller.h"
#include "morta/RegionRunner.h"
#include "morta/Watchdog.h"
#include "nona/Programs.h"
#include "nona/Run.h"
#include "sim/Faults.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <functional>

using namespace parcae;
using namespace parcae::rt;
namespace ir = parcae::ir;

namespace {

FlexibleRegion makeSPS(std::vector<std::int64_t> *Tail = nullptr) {
  FlexibleRegion R("fault");
  RegionDesc D;
  D.Name = "fault-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("a", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 1000;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  D.Tasks.emplace_back("b", TaskType::Par, [](IterationContext &C) {
    C.Cost = 9000;
    C.Out[0].Value = C.In[0].Value;
  });
  D.Tasks.emplace_back("c", TaskType::Seq, [Tail](IterationContext &C) {
    C.Cost = 800;
    if (Tail)
      Tail->push_back(C.In[0].Value);
  });
  D.Links.push_back({0, 1});
  D.Links.push_back({1, 2});
  R.addVariant(std::move(D));
  {
    RegionDesc S;
    S.Name = "fault-seq";
    S.S = Scheme::Seq;
    S.Tasks.emplace_back("all", TaskType::Seq, [Tail](IterationContext &C) {
      C.Cost = 10800;
      if (Tail)
        Tail->push_back(static_cast<std::int64_t>(C.Seq));
    });
    R.addVariant(std::move(S));
  }
  return R;
}

/// Computes one fixed burst, then finishes (for slice-boundary timing
/// tests that need an exact amount of work on a raw machine).
class OneBurst : public sim::ThreadBody {
public:
  explicit OneBurst(sim::SimTime Cycles) : Cycles(Cycles) {}
  sim::Action resume(sim::Machine &, sim::SimThread &) override {
    if (Done)
      return sim::Action::finish();
    Done = true;
    return sim::Action::compute(Cycles);
  }
  bool Done = false;
  sim::SimTime Cycles;
};

} // namespace

TEST(FaultInjection, ZeroIterationRegionCompletesImmediately) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  RuntimeCosts Costs;
  CountedWorkSource Src(0);
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  Runner.start(Region.unitConfig(Scheme::Seq));
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(Runner.totalRetired(), 0u);
}

TEST(FaultInjection, ClosedEmptyQueueCompletes) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  RuntimeCosts Costs;
  QueueWorkSource Src;
  Src.close();
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Runner.start(C);
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(Runner.totalRetired(), 0u);
}

TEST(FaultInjection, PauseBeforeFirstIteration) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(100);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 4, 1};
  Runner.start(C);
  // Reconfigure at time zero, before any iteration ran.
  RegionConfig N = C;
  N.S = Scheme::Seq;
  N.DoP = {1};
  Runner.reconfigure(N);
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  ASSERT_EQ(Tail.size(), 100u);
  for (std::int64_t I = 0; I < 100; ++I)
    EXPECT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, ReconfigureStorm) {
  // Coalesced, overlapping, and redundant reconfiguration requests must
  // neither deadlock nor corrupt the iteration stream.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(400);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 2, 1};
  Runner.start(C);
  Rng R(99);
  for (int K = 0; K < 200; ++K) {
    bool SchemeSwitch = R.nextBool(0.3);
    RegionConfig N;
    if (SchemeSwitch) {
      N.S = Scheme::Seq;
      N.DoP = {1};
    } else {
      N.S = Scheme::PsDswp;
      N.DoP = {1, 1 + static_cast<unsigned>(R.nextBelow(6)), 1};
    }
    Sim.schedule(static_cast<sim::SimTime>(K) * 37 * sim::USec,
                 [&Runner, N = std::move(N)]() mutable {
                   if (!Runner.completed())
                     Runner.reconfigure(std::move(N));
                 });
  }
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  ASSERT_EQ(Tail.size(), 400u);
  for (std::int64_t I = 0; I < 400; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, PauseAfterCompletionIsNoOp) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  RuntimeCosts Costs;
  CountedWorkSource Src(10);
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  Runner.start(Region.unitConfig(Scheme::Seq));
  Sim.run();
  ASSERT_TRUE(Runner.completed());
  RegionConfig N;
  N.S = Scheme::PsDswp;
  N.DoP = {1, 4, 1};
  EXPECT_FALSE(Runner.reconfigure(N));
}

TEST(FaultInjection, SingleCoreMachineStillCorrect) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 1);
  RuntimeCosts Costs;
  CountedWorkSource Src(150);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  // A 6-thread pipeline on one core: pure time slicing.
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 4, 1};
  Runner.start(C);
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  ASSERT_EQ(Tail.size(), 150u);
  for (std::int64_t I = 0; I < 150; ++I)
    EXPECT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, ControllerWithBudgetOne) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 2);
  RuntimeCosts Costs;
  CountedWorkSource Src(1'000'000'000ull);
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Ctrl.start(1);
  Sim.runUntil(100 * sim::MSec);
  // With a single thread, nothing parallel is feasible; the controller
  // must stay sequential and keep making progress.
  EXPECT_EQ(Runner.config().totalThreads(), 1u);
  EXPECT_GT(Runner.totalRetired(), 100u);
}

TEST(FaultInjection, UnoptimizedProtocolStillCorrect) {
  // All Chapter 7 optimizations off: the full drain barrier and
  // per-iteration data management must still preserve semantics.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  Costs.OptimizedDataManagement = false;
  Costs.OptimizedBarrier = false;
  Costs.OverlapReconfig = false;
  Costs.PrivatizedReductions = false;
  CountedWorkSource Src(2000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Runner.start(C);
  for (int K = 1; K <= 8; ++K)
    Sim.schedule(static_cast<sim::SimTime>(K) * 300 * sim::USec,
                 [&Runner, K] {
                   RegionConfig N;
                   N.S = Scheme::PsDswp;
                   N.DoP = {1, static_cast<unsigned>(1 + K % 5), 1};
                   if (!Runner.completed())
                     Runner.reconfigure(std::move(N));
                 });
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_GT(Runner.fullPauses(), 0u) << "unoptimized mode must drain";
  ASSERT_EQ(Tail.size(), 2000u);
  for (std::int64_t I = 0; I < 2000; ++I)
    EXPECT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, ChaoticNonaRunsAcrossSuite) {
  // Every benchmark survives a randomized reconfiguration schedule with
  // bit-identical results (three seeds each).
  auto Suite = ir::benchmarkSuite(200);
  for (std::size_t B = 0; B < Suite.size(); ++B) {
    ir::LoopProgram Ref = Suite[B]();
    std::map<unsigned, std::int64_t> Reds;
    ir::Memory RefMem =
        ir::CompiledLoop::interpret(*Ref.F, Ref.TripCount, &Reds);
    for (std::uint64_t Seed : {1ull, 2ull, 3ull}) {
      ir::LoopProgram P = Suite[B]();
      ir::CompiledLoop CL(*P.F, P.AA, P.TripCount);
      ir::CompiledRunResult R = ir::runCompiledChaotic(CL, 8, Seed, 10);
      EXPECT_TRUE(R.Completed) << P.Name << " seed " << Seed;
      EXPECT_TRUE(CL.memory() == RefMem) << P.Name << " seed " << Seed;
      for (unsigned Phi : P.ReductionPhis)
        EXPECT_EQ(CL.reductionValue(Phi), Reds.at(Phi))
            << P.Name << " seed " << Seed;
    }
  }
}

TEST(FaultInjection, CoreOfflineMidOptimizeRecovers) {
  // Two cores die while the controller is mid-OPTIMIZE (the worst time:
  // it is actively probing DoPs). The watchdog must detect the capacity
  // drop, rescue any stranded worker, shrink the budget, and the run
  // must still emit the complete ordered stream.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(3000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);
  Ctrl.start(8);
  Dog.start();
  bool Killed = false;
  std::function<void()> Poll = [&] {
    if (!Killed && Ctrl.state() == CtrlState::Optimize) {
      Killed = true;
      M.offlineCore(6);
      M.offlineCore(7);
      return;
    }
    if (!Killed && !Runner.completed())
      Sim.schedule(100 * sim::USec, Poll);
  };
  Sim.schedule(100 * sim::USec, Poll);
  Sim.run();
  EXPECT_TRUE(Killed) << "controller never reached OPTIMIZE";
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(M.onlineCores(), 6u);
  EXPECT_GE(Dog.detections(), 1u);
  EXPECT_LE(Ctrl.threadBudget(), 6u);
  ASSERT_EQ(Tail.size(), 3000u);
  for (std::int64_t I = 0; I < 3000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, StragglerTriggersMonitorRecalibration) {
  // Every core runs 4x dilated from 20 ms on: throughput collapses well
  // past the MONITOR drift threshold, so the controller must leave
  // MONITOR and re-calibrate for the degraded platform.
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  sim::FaultPlan Plan;
  for (unsigned Core = 0; Core < 4; ++Core)
    Plan.addStraggler(Core, 20 * sim::MSec, 40 * sim::MSec, 4.0);
  M.installFaultPlan(std::move(Plan));
  RuntimeCosts Costs;
  CountedWorkSource Src(1'000'000'000ull);
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);
  Ctrl.start(4);
  Dog.start();
  Sim.runUntil(60 * sim::MSec);
  bool SettledBefore = false, RecalibratedAfter = false;
  for (const RegionController::TraceEntry &E : Ctrl.trace()) {
    if (E.St == CtrlState::Monitor && E.At < 20 * sim::MSec)
      SettledBefore = true;
    if (E.St == CtrlState::Calibrate && E.At > 20 * sim::MSec)
      RecalibratedAfter = true;
  }
  EXPECT_TRUE(SettledBefore) << "controller never reached MONITOR";
  EXPECT_TRUE(RecalibratedAfter)
      << "straggler-induced drift never triggered re-calibration";
  EXPECT_GT(Runner.totalRetired(), 0u);
}

TEST(FaultInjection, TransientFaultRetriesPreserveExactlyOnce) {
  // Declared transient faults: those iterations retry (with backoff) and
  // then succeed; each runs its functor exactly once.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  sim::FaultPlan Plan;
  Plan.addTransient("b", 10, 1);
  Plan.addTransient("b", 50, 2);
  Plan.addTransient("b", 51, 1);
  Plan.addTransient("b", 200, 3);
  M.installFaultPlan(std::move(Plan));
  RuntimeCosts Costs;
  CountedWorkSource Src(400);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Runner.start(C);
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(Runner.totalFaults(), 7u); // 1 + 2 + 1 + 3 attempts faulted
  EXPECT_EQ(Runner.totalEscalations(), 0u);
  ASSERT_EQ(Tail.size(), 400u);
  for (std::int64_t I = 0; I < 400; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, TransientRetryExhaustionFallsBackToSeq) {
  // One iteration of the parallel task faults beyond the retry budget.
  // The escalation must reach the watchdog, which degrades the region to
  // its SEQ variant — whose task names dodge the fault — and the run
  // completes with nothing lost or duplicated.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  sim::FaultPlan Plan;
  Plan.addTransient("b", 100, 1000); // effectively permanent
  M.installFaultPlan(std::move(Plan));
  RuntimeCosts Costs;
  CountedWorkSource Src(800);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);
  Ctrl.start(8);
  Dog.start();
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_GE(Runner.totalEscalations(), 1u);
  EXPECT_GE(Dog.escalationsHandled(), 1u);
  EXPECT_GE(Runner.recoveries(), 1u);
  EXPECT_GT(Runner.totalFaults(),
            static_cast<std::uint64_t>(Costs.MaxFaultRetries));
  ASSERT_EQ(Tail.size(), 800u);
  for (std::int64_t I = 0; I < 800; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, ExactlyOnceAcrossAbortiveRecovery) {
  // Direct abortive recoveries mid-stream: in-flight iterations above
  // the commit frontier are killed and replayed; the tail stream must
  // come out complete and in order regardless.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(2000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Runner.start(C);
  for (sim::SimTime At : {2 * sim::MSec, 4 * sim::MSec})
    Sim.schedule(At, [&Runner, C] {
      if (!Runner.completed())
        Runner.recover(C);
    });
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(Runner.recoveries(), 2u);
  ASSERT_EQ(Tail.size(), 2000u);
  for (std::int64_t I = 0; I < 2000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, IdenticalSeedsReplayIdentically) {
  // The acceptance bar for the fault model: with the same seed, a run
  // with stragglers, a core failure, transient faults, a controller, and
  // a watchdog reproduces the exact same event sequence.
  auto Run = [](std::uint64_t Seed) {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    sim::FaultPlan Plan;
    Plan.addStraggler(1, 1 * sim::MSec, 2 * sim::MSec, 3.0);
    Plan.addOffline(7, 3 * sim::MSec);
    Plan.scatterTransients(Seed, "b", 100, 1200, 25, 2);
    M.installFaultPlan(std::move(Plan));
    RuntimeCosts Costs;
    CountedWorkSource Src(1500);
    std::vector<std::int64_t> Tail;
    FlexibleRegion Region = makeSPS(&Tail);
    RegionRunner Runner(M, Costs, Region, Src);
    RegionController Ctrl(Runner);
    Watchdog Dog(Ctrl);
    Ctrl.start(8);
    Dog.start();
    Sim.run();
    EXPECT_TRUE(Runner.completed());
    EXPECT_EQ(Tail.size(), 1500u);
    return std::make_pair(Sim.eventsProcessed(), Tail);
  };
  auto A = Run(7), B = Run(7);
  EXPECT_EQ(A.first, B.first) << "event counts diverged under one seed";
  EXPECT_EQ(A.second, B.second);
}

TEST(FaultInjection, QueueSourceRewindReplaysSameItems) {
  QueueWorkSource Src;
  for (std::int64_t V = 10; V < 14; ++V) {
    Token T;
    T.Value = V;
    ASSERT_TRUE(Src.push(T));
  }
  Token T;
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_EQ(T.Value, 10);
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_EQ(T.Value, 12);
  // Un-pull the last two: they must come back in the original order.
  ASSERT_TRUE(Src.rewind(2));
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_EQ(T.Value, 11);
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_EQ(T.Value, 12);
  // Deeper than the pull history: refuse (recovery then drains instead).
  EXPECT_FALSE(Src.rewind(5));
}

TEST(FaultInjection, CountedRewindPastStartRefusesCleanly) {
  // Rewinding deeper than the pull history must refuse (so recovery can
  // fall back to a drain), not wrap the cursor — with asserts on here and
  // with them compiled out in the release flavor (WorkSourceRelease).
  CountedWorkSource Src(10);
  Token T;
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_EQ(T.Value, 2);
  EXPECT_FALSE(Src.rewind(5));
  // The refused rewind left the cursor untouched.
  EXPECT_EQ(Src.remaining(), 7u);
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_EQ(T.Value, 3);
  // An in-range rewind still replays.
  EXPECT_TRUE(Src.rewind(2));
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_EQ(T.Value, 2);
}

TEST(FaultInjection, DomainEventOfflinesCoresAtomically) {
  // A failure domain takes all its cores at one virtual time.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  sim::FaultPlan Plan;
  Plan.addDomain("rack0", {2, 3, 5}, 1 * sim::MSec);
  M.installFaultPlan(std::move(Plan));
  Sim.scheduleAt(1 * sim::MSec - 1, [&M] { EXPECT_EQ(M.onlineCores(), 8u); });
  Sim.scheduleAt(1 * sim::MSec + 1, [&M, &Sim] {
    EXPECT_EQ(M.onlineCores(), 5u);
    EXPECT_EQ(M.lastOfflineAt(), 1 * sim::MSec);
    (void)Sim;
  });
  Sim.run();
  EXPECT_EQ(M.onlineCores(), 5u);
  EXPECT_EQ(M.repairsApplied(), 0u);
}

TEST(FaultInjection, DomainRepairRestoresCapacity) {
  // A domain with a downtime window grows onlineCores() back at repair.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  sim::FaultPlan Plan;
  Plan.addDomain("rack0", {2, 3, 5}, 1 * sim::MSec, /*Downtime=*/2 * sim::MSec);
  M.installFaultPlan(std::move(Plan));
  unsigned TopologyChanges = 0;
  M.OnTopologyChange = [&TopologyChanges](unsigned) { ++TopologyChanges; };
  Sim.scheduleAt(2 * sim::MSec, [&M] { EXPECT_EQ(M.onlineCores(), 5u); });
  Sim.scheduleAt(3 * sim::MSec + 1, [&M] {
    EXPECT_EQ(M.onlineCores(), 8u);
    EXPECT_EQ(M.repairsApplied(), 3u);
    EXPECT_EQ(M.lastOnlineAt(), 3 * sim::MSec);
  });
  Sim.run();
  EXPECT_EQ(M.onlineCores(), 8u);
  EXPECT_EQ(TopologyChanges, 6u) << "3 offlines + 3 repairs";
}

TEST(FaultInjection, ScatterDomainIsDeterministic) {
  // The seeded domain helper draws the same distinct cores for the same
  // seed — the property the check_resilience.sh seed sweep relies on.
  auto Draw = [](std::uint64_t Seed) {
    sim::FaultPlan Plan;
    Plan.scatterDomain(Seed, "s", /*NumCores=*/8, /*Size=*/3,
                       /*At=*/1 * sim::MSec, /*Downtime=*/1 * sim::MSec);
    return Plan.domains().at(0).Cores;
  };
  std::vector<unsigned> A = Draw(9), B = Draw(9);
  EXPECT_EQ(A, B);
  ASSERT_EQ(A.size(), 3u);
  for (std::size_t I = 0; I < A.size(); ++I) {
    EXPECT_LT(A[I], 8u);
    for (std::size_t J = I + 1; J < A.size(); ++J)
      EXPECT_NE(A[I], A[J]) << "domain cores must be distinct";
  }
}

TEST(FaultInjection, DomainWarningFiresAtLeadTimeBeforeTheFault) {
  // Warning > 0 announces the doomed domain at At - Warning, while its
  // cores are all still online — the window the checkpoint drain uses.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  sim::FaultPlan Plan;
  Plan.addDomain("socket0", {2, 3}, /*At=*/2 * sim::MSec,
                 /*Downtime=*/1 * sim::MSec, /*Warning=*/500 * sim::USec);
  M.installFaultPlan(std::move(Plan));
  std::vector<sim::SimTime> WarnedAt;
  M.addDomainWarningListener([&](const sim::FailureDomainEvent &D) {
    WarnedAt.push_back(Sim.now());
    EXPECT_EQ(D.Name, "socket0");
    EXPECT_EQ(D.Cores, (std::vector<unsigned>{2, 3}));
    EXPECT_EQ(D.At, 2 * sim::MSec);
    EXPECT_EQ(M.onlineCores(), 8u) << "warning must precede the offline";
  });
  Sim.run();
  ASSERT_EQ(WarnedAt.size(), 1u);
  EXPECT_EQ(WarnedAt[0], 2 * sim::MSec - 500 * sim::USec);
  EXPECT_EQ(M.onlineCores(), 8u) << "domain repaired after its downtime";
  EXPECT_EQ(M.repairsApplied(), 2u);
}

TEST(FaultInjection, DomainWarningLongerThanLeadClampsToTimeZero) {
  // A warning reaching before t=0 is delivered immediately at t=0, not
  // dropped (the listener still gets its — shortened — head start).
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  sim::FaultPlan Plan;
  Plan.addDomain("early", {1}, /*At=*/1 * sim::MSec,
                 /*Downtime=*/0, /*Warning=*/5 * sim::MSec);
  M.installFaultPlan(std::move(Plan));
  std::vector<sim::SimTime> WarnedAt;
  M.addDomainWarningListener(
      [&](const sim::FailureDomainEvent &) { WarnedAt.push_back(Sim.now()); });
  Sim.run();
  ASSERT_EQ(WarnedAt.size(), 1u);
  EXPECT_EQ(WarnedAt[0], 0u);
  EXPECT_EQ(M.onlineCores(), 3u);
}

TEST(FaultInjection, BudgetGrowsBackAfterRepair) {
  // The full grow-back spine: a domain burst takes three cores, the
  // watchdog shrinks the budget to the survivors, the repair returns
  // them, and the watchdog grows the budget back to the original grant —
  // with the output stream staying complete and ordered throughout.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  sim::FaultPlan Plan;
  Plan.addDomain("socket0", {5, 6, 7}, 2 * sim::MSec + 130 * sim::USec,
                 /*Downtime=*/10 * sim::MSec);
  M.installFaultPlan(std::move(Plan));
  RuntimeCosts Costs;
  CountedWorkSource Src(1'000'000'000ull);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);
  Ctrl.start(8);
  Dog.start();
  // Mid-outage: the budget is capped by the 5 surviving cores.
  Sim.scheduleAt(9 * sim::MSec, [&] {
    EXPECT_EQ(M.onlineCores(), 5u);
    EXPECT_EQ(Ctrl.threadBudget(), 5u);
    EXPECT_EQ(Ctrl.grantedBudget(), 8u);
  });
  Sim.runUntil(40 * sim::MSec);
  EXPECT_EQ(M.onlineCores(), 8u);
  EXPECT_EQ(M.repairsApplied(), 3u);
  EXPECT_GE(Dog.detections(), 1u);
  EXPECT_GE(Dog.growthsDetected(), 1u);
  EXPECT_EQ(Ctrl.threadBudget(), 8u) << "budget must grow back to the grant";
  ASSERT_GT(Tail.size(), 0u);
  for (std::size_t I = 0; I < Tail.size(); ++I)
    ASSERT_EQ(Tail[I], static_cast<std::int64_t>(I));
}

TEST(FaultInjection, OverlappingRecoveryWindowsCountPerFault) {
  // Two cores die far enough apart to be two watchdog detections, but
  // close enough that the second fault lands while the recovery from the
  // first is still in flight. Each fault must get its own recovery
  // window (and MTTR sample); the old single-clock behaviour folded the
  // burst into one completion.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  Costs.OptimizedBarrier = false; // every reconfigure takes the full pause
  Costs.ReconfigCompute = 3 * sim::MSec; // long resume: faults overlap it
  CountedWorkSource Src(20000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);
  Ctrl.start(8);
  Dog.start();
  Sim.scheduleAt(2 * sim::MSec + 50 * sim::USec, [&M] { M.offlineCore(7); });
  Sim.scheduleAt(3 * sim::MSec + 100 * sim::USec, [&M] { M.offlineCore(6); });
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(Dog.detections(), 2u);
  EXPECT_GE(Dog.recoveriesCompleted(), Dog.detections())
      << "a burst of faults must complete one recovery per fault";
  EXPECT_EQ(Dog.recoveriesPending(), 0u);
  ASSERT_EQ(Tail.size(), 20000u);
  for (std::int64_t I = 0; I < 20000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, LongTransitionDoesNotTripStallRecovery) {
  // A pause-drain-resume longer than the stall threshold must not leave
  // the watchdog's progress clock stale: the first iteration after the
  // resume would otherwise inherit the whole transition window and trip
  // a spurious abortive recovery.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  Costs.OptimizedBarrier = false;
  Costs.OverlapReconfig = false; // the full 6 ms follows the drain
  Costs.ReconfigCompute = 6 * sim::MSec; // well past the 4 ms threshold
  CountedWorkSource Src(60);
  std::vector<std::int64_t> Tail;
  // Iterations take ~1 ms, so the first retire after the resume lands
  // several watchdog ticks later — plenty of time for a stale progress
  // clock (last bumped before the 6 ms pause) to misfire.
  FlexibleRegion Region("slow");
  {
    RegionDesc D;
    D.Name = "slow-pipe";
    D.S = Scheme::PsDswp;
    D.Tasks.emplace_back("a", TaskType::Seq, [](IterationContext &C) {
      C.Cost = 10 * sim::USec;
      C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
    });
    D.Tasks.emplace_back("b", TaskType::Par, [](IterationContext &C) {
      C.Cost = 1 * sim::MSec;
      C.Out[0].Value = C.In[0].Value;
    });
    D.Tasks.emplace_back("c", TaskType::Seq, [&Tail](IterationContext &C) {
      C.Cost = 10 * sim::USec;
      Tail.push_back(C.In[0].Value);
    });
    D.Links.push_back({0, 1});
    D.Links.push_back({1, 2});
    Region.addVariant(std::move(D));
  }
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner); // never started: only the stall counter acts
  Watchdog Dog(Ctrl);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Runner.start(C);
  Dog.start();
  Sim.scheduleAt(2 * sim::MSec, [&Runner] {
    RegionConfig N;
    N.S = Scheme::PsDswp;
    N.DoP = {1, 2, 1};
    Runner.reconfigure(std::move(N));
  });
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_GE(Runner.fullPauses(), 1u);
  EXPECT_EQ(Dog.stallsDetected(), 0u)
      << "transition latency misread as a progress stall";
  ASSERT_EQ(Tail.size(), 60u);
  for (std::int64_t I = 0; I < 60; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, WedgeBlamesOnlyTheWedgedTask) {
  // One lane of the parallel task wedges mid-iteration-stream. The blame
  // scan must convict task "b" — the per-task heartbeat alone cannot (the
  // healthy sibling lanes keep it fresh), only the per-worker beats can —
  // and the watchdog must repair it surgically: no whole-region abortive
  // recovery, no fallback, and the stream still exactly-once.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  sim::FaultPlan Plan;
  Plan.addWedge("b", 3000);
  M.installFaultPlan(std::move(Plan));
  RuntimeCosts Costs;
  CountedWorkSource Src(4000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);
  Ctrl.start(8);
  Dog.start();
  unsigned RestartedTask = ~0u;
  Dog.OnSurgicalRestart = [&RestartedTask](unsigned TaskIdx) {
    RestartedTask = TaskIdx;
  };
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_GE(Dog.stallsDetected(), 1u);
  EXPECT_GE(Dog.blamesAssigned(), 1u);
  EXPECT_EQ(Dog.lastBlamedTask(), 1u) << "blame must land on the Par task";
  EXPECT_EQ(RestartedTask, 1u);
  EXPECT_GE(Dog.surgicalRestarts(), 1u);
  EXPECT_GE(Dog.surgicalRecoveriesCompleted(), 1u);
  EXPECT_EQ(Dog.fallbackAborts(), 0u) << "surgical path must suffice";
  EXPECT_EQ(Runner.recoveries(), 0u) << "no whole-region abort";
  ASSERT_EQ(Tail.size(), 4000u);
  for (std::int64_t I = 0; I < 4000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, AmbiguousBlameFallsBackToAbortiveRecovery) {
  // Two tasks wedge within the blame margin of each other: the verdict is
  // ambiguous, so the watchdog must refuse to guess and take the
  // conservative whole-region abortive recovery instead. The wedges are
  // one-shot (consumed when they fire), so the replay completes.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  sim::FaultPlan Plan;
  Plan.addWedge("b", 3000);
  Plan.addWedge("c", 2995);
  M.installFaultPlan(std::move(Plan));
  RuntimeCosts Costs;
  CountedWorkSource Src(4000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Watchdog Dog(Ctrl);
  Ctrl.start(8);
  Dog.start();
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_GE(Dog.stallsDetected(), 1u);
  EXPECT_GE(Dog.fallbackAborts(), 1u) << "ambiguity must not be guessed at";
  EXPECT_EQ(Dog.surgicalRestarts(), 0u);
  EXPECT_GE(Runner.recoveries(), 1u);
  ASSERT_EQ(Tail.size(), 4000u);
  for (std::int64_t I = 0; I < 4000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, SurgicalRestartReplaysIdentically) {
  // The acceptance bar extends to the surgical path: with the same seed
  // and the same wedge, two runs — straggler, wedge, blame, surgical
  // restart and all — reproduce the exact same event sequence and output.
  auto Run = [] {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    sim::FaultPlan Plan;
    Plan.addStraggler(1, 1 * sim::MSec, 2 * sim::MSec, 3.0);
    Plan.addWedge("b", 3000);
    M.installFaultPlan(std::move(Plan));
    RuntimeCosts Costs;
    CountedWorkSource Src(4000);
    std::vector<std::int64_t> Tail;
    FlexibleRegion Region = makeSPS(&Tail);
    RegionRunner Runner(M, Costs, Region, Src);
    RegionController Ctrl(Runner);
    Watchdog Dog(Ctrl);
    Ctrl.start(8);
    Dog.start();
    Sim.run();
    EXPECT_TRUE(Runner.completed());
    EXPECT_GE(Dog.surgicalRestarts(), 1u);
    EXPECT_EQ(Tail.size(), 4000u);
    return std::make_pair(Sim.eventsProcessed(), Tail);
  };
  auto A = Run(), B = Run();
  EXPECT_EQ(A.first, B.first) << "event counts diverged across replays";
  EXPECT_EQ(A.second, B.second);
}

TEST(FaultInjection, WorkScaleChangeMidChaos) {
  // Workload variation during reconfiguration chaos: costs change but
  // semantics cannot.
  ir::LoopProgram Ref = ir::makeSaxpy(300);
  ir::Memory RefMem = ir::CompiledLoop::interpret(*Ref.F, Ref.TripCount);
  ir::LoopProgram P = ir::makeSaxpy(300);
  ir::CompiledLoop CL(*P.F, P.AA, P.TripCount);
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CL.resetState();
  auto Src = CL.makeSource();
  RegionRunner Runner(M, Costs, CL.region(), *Src);
  RegionConfig C;
  C.S = Scheme::DoAny;
  C.DoP = {4};
  Runner.start(C);
  Sim.schedule(200 * sim::USec, [&CL] { CL.setWorkScale(5.0); });
  Sim.schedule(400 * sim::USec, [&Runner] {
    RegionConfig N;
    N.S = Scheme::DoAny;
    N.DoP = {7};
    Runner.reconfigure(std::move(N));
  });
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_TRUE(CL.memory() == RefMem);
}

TEST(FaultInjection, DilationWindowOpensMidSlice) {
  // A straggler window that opens in the middle of a scheduled slice must
  // take effect at the boundary, not at the next slice. The machine
  // samples dilation once per slice, so slices are clamped to the next
  // window edge; without the clamp a 4 ms burst scheduled at time zero
  // would run entirely at nominal speed and finish at 4 ms even though
  // the core slows 4x from 2 ms onward.
  sim::Simulator Sim;
  sim::Machine M(Sim, 1);
  sim::FaultPlan Plan;
  Plan.addStraggler(0, 2 * sim::MSec, 4 * sim::MSec, 4.0);
  M.installFaultPlan(std::move(Plan));
  M.spawn("burst", std::make_unique<OneBurst>(4 * sim::MSec));
  Sim.run();
  // [0,2ms): 2 ms of work at 1x. [2ms,6ms): 1 ms of work at 4x (fills the
  // window). [6ms,7ms): the last 1 ms at nominal speed again.
  EXPECT_EQ(Sim.now(), 7 * sim::MSec);
}

TEST(FaultInjection, DilationWindowClosesMidSlice) {
  // The symmetric bug: a window that closes mid-slice must stop dilating
  // at its edge. Before the boundary clamp, a 2 ms burst started inside
  // a 4x window [0,3ms) was charged 8 ms of wall time even though the
  // core recovered at 3 ms.
  sim::Simulator Sim;
  sim::Machine M(Sim, 1);
  sim::FaultPlan Plan;
  Plan.addStraggler(0, 0, 3 * sim::MSec, 4.0);
  M.installFaultPlan(std::move(Plan));
  M.spawn("burst", std::make_unique<OneBurst>(2 * sim::MSec));
  Sim.run();
  // [0,3ms): 750 us of work at 4x fills the window exactly. The
  // remaining 1.25 ms runs at nominal speed: finish at 4.25 ms.
  EXPECT_EQ(Sim.now(), 4250 * sim::USec);
}

TEST(FaultInjection, PlacementPenaltyDeterministic) {
  // Slow-core avoidance and speculative re-issue are both pure functions
  // of virtual time: with the same seed, two runs with the full straggler
  // mitigation stack enabled retire byte-identical output through an
  // identical event sequence.
  auto Run = [](std::uint64_t Seed) {
    sim::Simulator Sim;
    sim::MachineConfig MC;
    MC.SlowCoreAvoidance = true;
    sim::Machine M(Sim, 8, MC);
    sim::FaultPlan Plan;
    Plan.scatterStragglers(Seed, 8, 12, 1 * sim::MSec, 40 * sim::MSec,
                           6 * sim::MSec, 8.0, 32.0);
    M.installFaultPlan(std::move(Plan));
    RuntimeCosts Costs;
    CountedWorkSource Src(1500);
    std::vector<std::int64_t> Tail;
    FlexibleRegion Region = makeSPS(&Tail);
    RegionRunner Runner(M, Costs, Region, Src);
    RegionController Ctrl(Runner); // never started: fixed config
    WatchdogParams WP;
    WP.Speculate = true;
    WP.SpecStallThreshold = 500 * sim::USec;
    WP.SpecAgeThreshold = 250 * sim::USec;
    Watchdog Dog(Ctrl, WP);
    RegionConfig C;
    C.S = Scheme::PsDswp;
    C.DoP = {1, 3, 1};
    Runner.start(C);
    Dog.start();
    Sim.run();
    EXPECT_TRUE(Runner.completed());
    EXPECT_EQ(Tail.size(), 1500u);
    return std::make_pair(Sim.eventsProcessed(), Tail);
  };
  auto A = Run(11), B = Run(11);
  EXPECT_EQ(A.first, B.first) << "event counts diverged under one seed";
  EXPECT_EQ(A.second, B.second);
}

TEST(FaultInjection, SpeculativeReissueNoDoubleCommit) {
  // Pin the speculation race: when the commit frontier stalls behind a
  // chunk crawling on a penalized core, the watchdog clones it onto a
  // healthy worker. The original is cancelled via its slice epoch, so
  // its in-flight work must never retire — each sequence number reaches
  // the tail exactly once, in order, no matter how many clones fire.
  sim::Simulator Sim;
  sim::MachineConfig MC;
  MC.SlowCoreAvoidance = true;
  sim::Machine M(Sim, 4, MC);
  sim::FaultPlan Plan;
  // One tar-pit core, dilated hard for most of the run. Workers land on
  // cores in spawn order (a->0, b->1, c->2), so core 1 hosts the
  // 2 ms/iter Par stage: once the window opens, the frontier stalls
  // behind its in-flight chunk within a few watchdog ticks.
  Plan.addStraggler(1, 1 * sim::MSec, 200 * sim::MSec, 64.0);
  M.installFaultPlan(std::move(Plan));
  RuntimeCosts Costs;
  CountedWorkSource Src(80);
  std::vector<std::int64_t> Tail;
  // The Par stage dominates (2 ms/iter): when the producer lands on the
  // tar pit, the frontier goes quiet long enough for the watchdog's
  // speculation branch, while the 3-thread gang leaves a healthy core
  // free to host the clone.
  FlexibleRegion Region("spec");
  {
    RegionDesc D;
    D.Name = "spec-pipe";
    D.S = Scheme::PsDswp;
    D.Tasks.emplace_back("a", TaskType::Seq, [](IterationContext &C) {
      C.Cost = 10 * sim::USec;
      C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
    });
    D.Tasks.emplace_back("b", TaskType::Par, [](IterationContext &C) {
      C.Cost = 2 * sim::MSec;
      C.Out[0].Value = C.In[0].Value;
    });
    D.Tasks.emplace_back("c", TaskType::Seq, [&Tail](IterationContext &C) {
      C.Cost = 10 * sim::USec;
      Tail.push_back(C.In[0].Value);
    });
    D.Links.push_back({0, 1});
    D.Links.push_back({1, 2});
    Region.addVariant(std::move(D));
  }
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner); // never started: watchdog acts alone
  WatchdogParams WP;
  WP.Speculate = true;
  WP.SpecStallThreshold = 1 * sim::MSec;
  WP.SpecAgeThreshold = 500 * sim::USec;
  WP.StallThreshold = 500 * sim::MSec; // keep abortive recovery out of play
  Watchdog Dog(Ctrl, WP);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 1, 1};
  Runner.start(C);
  Dog.start();
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_GE(Dog.speculationsIssued(), 1u)
      << "the stalled chunk was never re-issued";
  ASSERT_EQ(Tail.size(), 80u) << "a cancelled clone double-committed or lost "
                                 "an iteration";
  for (std::int64_t I = 0; I < 80; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}
