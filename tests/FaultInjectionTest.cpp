//===- FaultInjectionTest.cpp - Edge cases and hostile schedules -------------===//
//
// Failure-injection and boundary tests for the flexible-execution
// machinery: empty regions, pause storms, pause-before-first-iteration,
// reconfiguration of completed regions, one-core machines, budget-1
// controllers, closed-empty work queues, and the unoptimized (Chapter 7
// switches off) protocol paths.
//
//===----------------------------------------------------------------------===//

#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/Controller.h"
#include "morta/RegionRunner.h"
#include "nona/Programs.h"
#include "nona/Run.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace parcae;
using namespace parcae::rt;
namespace ir = parcae::ir;

namespace {

FlexibleRegion makeSPS(std::vector<std::int64_t> *Tail = nullptr) {
  FlexibleRegion R("fault");
  RegionDesc D;
  D.Name = "fault-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("a", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 1000;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  D.Tasks.emplace_back("b", TaskType::Par, [](IterationContext &C) {
    C.Cost = 9000;
    C.Out[0].Value = C.In[0].Value;
  });
  D.Tasks.emplace_back("c", TaskType::Seq, [Tail](IterationContext &C) {
    C.Cost = 800;
    if (Tail)
      Tail->push_back(C.In[0].Value);
  });
  D.Links.push_back({0, 1});
  D.Links.push_back({1, 2});
  R.addVariant(std::move(D));
  {
    RegionDesc S;
    S.Name = "fault-seq";
    S.S = Scheme::Seq;
    S.Tasks.emplace_back("all", TaskType::Seq, [Tail](IterationContext &C) {
      C.Cost = 10800;
      if (Tail)
        Tail->push_back(static_cast<std::int64_t>(C.Seq));
    });
    R.addVariant(std::move(S));
  }
  return R;
}

} // namespace

TEST(FaultInjection, ZeroIterationRegionCompletesImmediately) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  RuntimeCosts Costs;
  CountedWorkSource Src(0);
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  Runner.start(Region.unitConfig(Scheme::Seq));
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(Runner.totalRetired(), 0u);
}

TEST(FaultInjection, ClosedEmptyQueueCompletes) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  RuntimeCosts Costs;
  QueueWorkSource Src;
  Src.close();
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Runner.start(C);
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(Runner.totalRetired(), 0u);
}

TEST(FaultInjection, PauseBeforeFirstIteration) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(100);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 4, 1};
  Runner.start(C);
  // Reconfigure at time zero, before any iteration ran.
  RegionConfig N = C;
  N.S = Scheme::Seq;
  N.DoP = {1};
  Runner.reconfigure(N);
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  ASSERT_EQ(Tail.size(), 100u);
  for (std::int64_t I = 0; I < 100; ++I)
    EXPECT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, ReconfigureStorm) {
  // Coalesced, overlapping, and redundant reconfiguration requests must
  // neither deadlock nor corrupt the iteration stream.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(400);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 2, 1};
  Runner.start(C);
  Rng R(99);
  for (int K = 0; K < 200; ++K) {
    bool SchemeSwitch = R.nextBool(0.3);
    RegionConfig N;
    if (SchemeSwitch) {
      N.S = Scheme::Seq;
      N.DoP = {1};
    } else {
      N.S = Scheme::PsDswp;
      N.DoP = {1, 1 + static_cast<unsigned>(R.nextBelow(6)), 1};
    }
    Sim.schedule(static_cast<sim::SimTime>(K) * 37 * sim::USec,
                 [&Runner, N = std::move(N)]() mutable {
                   if (!Runner.completed())
                     Runner.reconfigure(std::move(N));
                 });
  }
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  ASSERT_EQ(Tail.size(), 400u);
  for (std::int64_t I = 0; I < 400; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, PauseAfterCompletionIsNoOp) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  RuntimeCosts Costs;
  CountedWorkSource Src(10);
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  Runner.start(Region.unitConfig(Scheme::Seq));
  Sim.run();
  ASSERT_TRUE(Runner.completed());
  RegionConfig N;
  N.S = Scheme::PsDswp;
  N.DoP = {1, 4, 1};
  EXPECT_FALSE(Runner.reconfigure(N));
}

TEST(FaultInjection, SingleCoreMachineStillCorrect) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 1);
  RuntimeCosts Costs;
  CountedWorkSource Src(150);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  // A 6-thread pipeline on one core: pure time slicing.
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 4, 1};
  Runner.start(C);
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  ASSERT_EQ(Tail.size(), 150u);
  for (std::int64_t I = 0; I < 150; ++I)
    EXPECT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, ControllerWithBudgetOne) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 2);
  RuntimeCosts Costs;
  CountedWorkSource Src(1'000'000'000ull);
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Ctrl.start(1);
  Sim.runUntil(100 * sim::MSec);
  // With a single thread, nothing parallel is feasible; the controller
  // must stay sequential and keep making progress.
  EXPECT_EQ(Runner.config().totalThreads(), 1u);
  EXPECT_GT(Runner.totalRetired(), 100u);
}

TEST(FaultInjection, UnoptimizedProtocolStillCorrect) {
  // All Chapter 7 optimizations off: the full drain barrier and
  // per-iteration data management must still preserve semantics.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  Costs.OptimizedDataManagement = false;
  Costs.OptimizedBarrier = false;
  Costs.OverlapReconfig = false;
  Costs.PrivatizedReductions = false;
  CountedWorkSource Src(2000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Runner.start(C);
  for (int K = 1; K <= 8; ++K)
    Sim.schedule(static_cast<sim::SimTime>(K) * 300 * sim::USec,
                 [&Runner, K] {
                   RegionConfig N;
                   N.S = Scheme::PsDswp;
                   N.DoP = {1, static_cast<unsigned>(1 + K % 5), 1};
                   if (!Runner.completed())
                     Runner.reconfigure(std::move(N));
                 });
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_GT(Runner.fullPauses(), 0u) << "unoptimized mode must drain";
  ASSERT_EQ(Tail.size(), 2000u);
  for (std::int64_t I = 0; I < 2000; ++I)
    EXPECT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(FaultInjection, ChaoticNonaRunsAcrossSuite) {
  // Every benchmark survives a randomized reconfiguration schedule with
  // bit-identical results (three seeds each).
  auto Suite = ir::benchmarkSuite(200);
  for (std::size_t B = 0; B < Suite.size(); ++B) {
    ir::LoopProgram Ref = Suite[B]();
    std::map<unsigned, std::int64_t> Reds;
    ir::Memory RefMem =
        ir::CompiledLoop::interpret(*Ref.F, Ref.TripCount, &Reds);
    for (std::uint64_t Seed : {1ull, 2ull, 3ull}) {
      ir::LoopProgram P = Suite[B]();
      ir::CompiledLoop CL(*P.F, P.AA, P.TripCount);
      ir::CompiledRunResult R = ir::runCompiledChaotic(CL, 8, Seed, 10);
      EXPECT_TRUE(R.Completed) << P.Name << " seed " << Seed;
      EXPECT_TRUE(CL.memory() == RefMem) << P.Name << " seed " << Seed;
      for (unsigned Phi : P.ReductionPhis)
        EXPECT_EQ(CL.reductionValue(Phi), Reds.at(Phi))
            << P.Name << " seed " << Seed;
    }
  }
}

TEST(FaultInjection, WorkScaleChangeMidChaos) {
  // Workload variation during reconfiguration chaos: costs change but
  // semantics cannot.
  ir::LoopProgram Ref = ir::makeSaxpy(300);
  ir::Memory RefMem = ir::CompiledLoop::interpret(*Ref.F, Ref.TripCount);
  ir::LoopProgram P = ir::makeSaxpy(300);
  ir::CompiledLoop CL(*P.F, P.AA, P.TripCount);
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CL.resetState();
  auto Src = CL.makeSource();
  RegionRunner Runner(M, Costs, CL.region(), *Src);
  RegionConfig C;
  C.S = Scheme::DoAny;
  C.DoP = {4};
  Runner.start(C);
  Sim.schedule(200 * sim::USec, [&CL] { CL.setWorkScale(5.0); });
  Sim.schedule(400 * sim::USec, [&Runner] {
    RegionConfig N;
    N.S = Scheme::DoAny;
    N.DoP = {7};
    Runner.reconfigure(std::move(N));
  });
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_TRUE(CL.memory() == RefMem);
}
