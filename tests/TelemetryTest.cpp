//===- TelemetryTest.cpp - Tests for tracing, metrics, and export ----------===//

#include "telemetry/ChromeTrace.h"
#include "telemetry/Telemetry.h"

#include "morta/Controller.h"
#include "morta/RegionRunner.h"
#include "sim/Machine.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace parcae;
using namespace parcae::telemetry;
namespace rt = parcae::rt;

namespace {

/// Installs \p R as the process-wide sink for one test body.
struct ScopedRecorder {
  explicit ScopedRecorder(TraceRecorder *R) { setRecorder(R); }
  ~ScopedRecorder() { setRecorder(nullptr); }
};

rt::FlexibleRegion makeTinyRegion() {
  rt::FlexibleRegion Region("tiny");
  rt::RegionDesc Par;
  Par.Name = "tiny-doany";
  Par.S = rt::Scheme::DoAny;
  Par.Tasks.emplace_back("work", rt::TaskType::Par,
                         [](rt::IterationContext &C) { C.Cost = 20000; });
  Region.addVariant(std::move(Par));
  rt::RegionDesc Seq;
  Seq.Name = "tiny-seq";
  Seq.S = rt::Scheme::Seq;
  Seq.Tasks.emplace_back("all", rt::TaskType::Seq,
                         [](rt::IterationContext &C) { C.Cost = 20000; });
  Region.addVariant(std::move(Seq));
  return Region;
}

} // namespace

TEST(TraceRecorder, SpansFollowVirtualTime) {
  sim::Simulator Sim;
  TraceRecorder R;
  R.bindClock(Sim);
  std::uint32_t Pid = R.processFor("p");

  R.begin(Pid, 0, "t", "outer");
  Sim.schedule(10 * sim::USec, [&] { R.begin(Pid, 0, "t", "inner"); });
  Sim.schedule(30 * sim::USec, [&] { R.end(Pid, 0, "t", "inner"); });
  Sim.schedule(50 * sim::USec, [&] { R.end(Pid, 0, "t", "outer"); });
  Sim.run();

  ASSERT_EQ(R.size(), 4u);
  const auto &E = R.events();
  EXPECT_EQ(E[0].Ph, Phase::Begin);
  EXPECT_EQ(E[0].Ts, 0u);
  EXPECT_EQ(E[1].Name, "inner");
  EXPECT_EQ(E[1].Ts, 10 * sim::USec);
  EXPECT_EQ(E[2].Ph, Phase::End);
  EXPECT_EQ(E[2].Ts, 30 * sim::USec);
  EXPECT_EQ(E[3].Name, "outer");
  EXPECT_EQ(E[3].Ts, 50 * sim::USec);
}

TEST(TraceRecorder, StablePidsAndThreadNames) {
  TraceRecorder R;
  std::uint32_t A = R.processFor("alpha");
  std::uint32_t B = R.processFor("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(R.processFor("alpha"), A);
  R.nameThread(A, 3, "core 3");
  R.nameThread(A, 3, "core three"); // renames, no duplicate
  ASSERT_EQ(R.threadNames().size(), 1u);
  EXPECT_EQ(R.threadNames()[0].second, "core three");
}

TEST(TraceRecorder, RebindToFreshSimulatorRebasesTime) {
  TraceRecorder R;
  std::uint32_t Pid = R.processFor("p");
  {
    sim::Simulator Sim;
    R.bindClock(Sim);
    Sim.schedule(100 * sim::USec, [&] { R.instant(Pid, 0, "t", "a"); });
    Sim.run();
  }
  {
    // A fresh simulator restarts its clock at zero; the recorder must
    // rebase so the second run's events land after the first run's.
    sim::Simulator Sim;
    R.bindClock(Sim);
    Sim.schedule(5 * sim::USec, [&] { R.instant(Pid, 0, "t", "b"); });
    Sim.run();
  }
  ASSERT_EQ(R.size(), 2u);
  EXPECT_GT(R.events()[1].Ts, R.events()[0].Ts);
}

TEST(TraceRecorder, CapacityBoundsDropsNotGrows) {
  TraceRecorder R(/*Capacity=*/4);
  std::uint32_t Pid = R.processFor("p");
  for (int I = 0; I < 10; ++I)
    R.instant(Pid, 0, "t", "e");
  EXPECT_EQ(R.size(), 4u);
  EXPECT_EQ(R.dropped(), 6u);
}

TEST(TraceRecorder, NullSinkRecordsNothingAndSkipsArgs) {
  TraceRecorder *Null = nullptr;
  int Evaluated = 0;
  PARCAE_TRACE(Null, instant(0, 0, "t", (++Evaluated, std::string("e"))));
  EXPECT_EQ(Evaluated, 0); // argument expressions must not run
  EXPECT_EQ(recorder(), nullptr) << "tracing must be off by default";
}

TEST(Metrics, CountersGaugesHistograms) {
  MetricsRegistry M;
  EXPECT_TRUE(M.empty());
  Counter &C = M.counter("c");
  C.add();
  C.add(4);
  EXPECT_EQ(&M.counter("c"), &C) << "lookup must return the same object";
  M.gauge("g").set(2.5);
  Histogram &H = M.histogram("h");
  for (int I = 1; I <= 100; ++I)
    H.add(I);

  MetricsSnapshot S = M.snapshot(7 * sim::USec);
  EXPECT_EQ(S.At, 7 * sim::USec);
  ASSERT_EQ(S.Rows.size(), 3u);
  // Rows are sorted by name: c, g, h.
  EXPECT_EQ(S.Rows[0].Name, "c");
  EXPECT_DOUBLE_EQ(S.Rows[0].Value, 5.0);
  EXPECT_EQ(S.Rows[1].Name, "g");
  EXPECT_DOUBLE_EQ(S.Rows[1].Value, 2.5);
  EXPECT_EQ(S.Rows[2].Name, "h");
  EXPECT_DOUBLE_EQ(S.Rows[2].P50, 50.0);
  EXPECT_DOUBLE_EQ(S.Rows[2].P95, 95.0);
  EXPECT_DOUBLE_EQ(S.Rows[2].P99, 99.0);

  std::string Text = S.text();
  EXPECT_NE(Text.find("counter c 5"), std::string::npos);
  EXPECT_NE(Text.find("gauge g"), std::string::npos);
  EXPECT_NE(Text.find("histogram h"), std::string::npos);
}

TEST(Metrics, MachineTeardownCapturesSimQueueGauges) {
  // Machine's destructor snapshots the simulator's event-queue tier
  // counters into sim.queue.* gauges (it runs while the simulator is
  // still alive; TraceFile's destructor does not).
  TraceRecorder Rec;
  ScopedRecorder Scope(&Rec);
  sim::Simulator Sim;
  Rec.bindClock(Sim);
  {
    sim::Machine M(Sim, 2);
    for (int I = 1; I <= 5; ++I)
      Sim.schedule(static_cast<sim::SimTime>(I) * 10, [] {});
    Sim.run();
  }
  MetricsSnapshot S = Rec.metrics().snapshot(Sim.now());
  bool SawHits = false, SawSpan = false;
  for (const MetricRow &Row : S.Rows) {
    if (Row.Name == "sim.queue.wheel_hits")
      SawHits = true;
    if (Row.Name == "sim.queue.wheel_span") {
      SawSpan = true;
      EXPECT_DOUBLE_EQ(Row.Value, 1024.0);
    }
  }
  EXPECT_TRUE(SawHits);
  EXPECT_TRUE(SawSpan);
}

TEST(ChromeTrace, ExportParsesBackWithRequiredKeys) {
  sim::Simulator Sim;
  TraceRecorder R;
  R.bindClock(Sim);
  std::uint32_t Pid = R.processFor("prog");
  R.nameThread(Pid, 1, "task work");
  Sim.schedule(2 * sim::USec, [&] {
    R.begin(Pid, 1, "task", "span",
            {TraceArg::num("n", 3), TraceArg::str("s", "v")});
  });
  Sim.schedule(9 * sim::USec, [&] { R.end(Pid, 1, "task", "span"); });
  Sim.schedule(9 * sim::USec, [&] { R.counter(Pid, 1, "task", "iters", 42); });
  Sim.run();

  std::string Json = toChromeTraceJson(R);
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(Json, V, &Err)) << Err;

  const json::Value *Events = V.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, json::Value::Kind::Arr);
  ASSERT_FALSE(Events->Arr.empty());

  bool SawProcessName = false, SawSpanBegin = false, SawCounter = false;
  for (const json::Value &E : Events->Arr) {
    ASSERT_NE(E.find("name"), nullptr);
    ASSERT_NE(E.find("ph"), nullptr);
    ASSERT_NE(E.find("pid"), nullptr);
    ASSERT_NE(E.find("tid"), nullptr);
    const std::string &Ph = E.find("ph")->Str;
    if (Ph != "M")
      ASSERT_NE(E.find("ts"), nullptr);
    if (Ph == "M" && E.find("name")->Str == "process_name")
      SawProcessName = true;
    if (Ph == "B" && E.find("name")->Str == "span") {
      SawSpanBegin = true;
      const json::Value *Args = E.find("args");
      ASSERT_NE(Args, nullptr);
      EXPECT_DOUBLE_EQ(Args->find("n")->Num, 3.0);
      EXPECT_EQ(Args->find("s")->Str, "v");
      // Exported timestamps are microseconds.
      EXPECT_DOUBLE_EQ(E.find("ts")->Num, 2.0);
    }
    if (Ph == "C" && E.find("name")->Str == "iters") {
      SawCounter = true;
      EXPECT_DOUBLE_EQ(E.find("args")->find("value")->Num, 42.0);
    }
  }
  EXPECT_TRUE(SawProcessName);
  EXPECT_TRUE(SawSpanBegin);
  EXPECT_TRUE(SawCounter);

  EXPECT_TRUE(validateChromeTrace(Json, &Err)) << Err;
}

TEST(ChromeTrace, ValidatorRejectsGarbage) {
  std::string Err;
  EXPECT_FALSE(validateChromeTrace("not json", &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(validateChromeTrace("{\"traceEvents\": []}", &Err));
  EXPECT_FALSE(validateChromeTrace(
      "{\"traceEvents\": [{\"ph\": \"B\"}]}", &Err));
}

TEST(Telemetry, ControlledRunProducesValidTrace) {
  TraceRecorder R;
  ScopedRecorder Install(&R);

  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  rt::RuntimeCosts Costs;
  rt::FlexibleRegion Region = makeTinyRegion();
  rt::CountedWorkSource Work(100000);
  rt::RegionRunner Runner(M, Costs, Region, Work);
  rt::RegionController Ctrl(Runner);
  Ctrl.start(4);
  Sim.runUntil(100 * sim::MSec);

  ASSERT_GT(R.size(), 0u);
  bool SawCalibrate = false, SawCoreSpan = false;
  for (const TraceEvent &E : R.events()) {
    if (E.Ph == Phase::Begin && E.Name == "CALIBRATE")
      SawCalibrate = true;
    if (E.Ph == Phase::Begin && std::string(E.Cat) == "core")
      SawCoreSpan = true;
  }
  EXPECT_TRUE(SawCalibrate) << "controller FSM spans missing";
  EXPECT_TRUE(SawCoreSpan) << "per-core busy spans missing";
  EXPECT_GT(R.metrics().counter("machine.slices").value(), 0u);

  std::string Err;
  EXPECT_TRUE(validateChromeTrace(toChromeTraceJson(R), &Err)) << Err;
}
