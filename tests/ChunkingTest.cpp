//===- ChunkingTest.cpp - Chunked claiming and the chunk-size policy --------===//
//
// Tests for the amortized hot path: batched claims from the work sources,
// the DCAFE-style chunk-size controller, and — the part that must not
// regress — the semantic guarantees under chunked execution: exactly-once
// across chunk boundaries when recovery rewinds to the commit frontier,
// pause bounds landing inside a claimed chunk, and deterministic replay.
//
//===----------------------------------------------------------------------===//

#include "core/Chunking.h"
#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/RegionRunner.h"
#include "sim/Faults.h"

#include <gtest/gtest.h>

#include <vector>

using namespace parcae;
using namespace parcae::rt;

namespace {

FlexibleRegion makeSPS(std::vector<std::int64_t> *Tail = nullptr,
                       sim::SimTime MidCost = 9000) {
  FlexibleRegion R("chunked");
  RegionDesc D;
  D.Name = "chunked-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("a", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 300;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  D.Tasks.emplace_back("b", TaskType::Par, [MidCost](IterationContext &C) {
    C.Cost = MidCost;
    C.Out[0].Value = C.In[0].Value;
  });
  D.Tasks.emplace_back("c", TaskType::Seq, [Tail](IterationContext &C) {
    C.Cost = 200;
    if (Tail)
      Tail->push_back(C.In[0].Value);
  });
  D.Links.push_back({0, 1});
  D.Links.push_back({1, 2});
  R.addVariant(std::move(D));
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Batched claims from the work sources
//===----------------------------------------------------------------------===//

TEST(TryPullChunk, CountedSourceFullAndPartialChunks) {
  CountedWorkSource Src(10);
  std::vector<Token> Out;
  EXPECT_EQ(Src.tryPullChunk(8, Out), WorkSource::Pull::Got);
  EXPECT_EQ(Out.size(), 8u);
  EXPECT_EQ(Src.remaining(), 2u);
  // Fewer than Max left: a partial chunk, still Got.
  EXPECT_EQ(Src.tryPullChunk(8, Out), WorkSource::Pull::Got);
  EXPECT_EQ(Out.size(), 10u);
  // Exhausted.
  EXPECT_EQ(Src.tryPullChunk(8, Out), WorkSource::Pull::End);
  EXPECT_EQ(Out.size(), 10u);
}

TEST(TryPullChunk, CountedSourceRewindRestoresChunk) {
  CountedWorkSource Src(20);
  std::vector<Token> Out;
  ASSERT_EQ(Src.tryPullChunk(16, Out), WorkSource::Pull::Got);
  EXPECT_EQ(Src.remaining(), 4u);
  // Give back the unstarted tail of the chunk.
  ASSERT_TRUE(Src.rewind(10));
  EXPECT_EQ(Src.remaining(), 14u);
  Out.clear();
  EXPECT_EQ(Src.tryPullChunk(32, Out), WorkSource::Pull::Got);
  EXPECT_EQ(Out.size(), 14u);
}

TEST(TryPullChunk, QueueSourceAppendsInFifoOrder) {
  QueueWorkSource Src;
  for (std::int64_t V = 0; V < 5; ++V) {
    Token T;
    T.Value = 100 + V;
    ASSERT_TRUE(Src.push(T));
  }
  std::vector<Token> Out;
  EXPECT_EQ(Src.tryPullChunk(3, Out), WorkSource::Pull::Got);
  ASSERT_EQ(Out.size(), 3u);
  for (std::int64_t I = 0; I < 3; ++I)
    EXPECT_EQ(Out[static_cast<std::size_t>(I)].Value, 100 + I);
  // Partial chunk: two items left, ask for eight.
  EXPECT_EQ(Src.tryPullChunk(8, Out), WorkSource::Pull::Got);
  ASSERT_EQ(Out.size(), 5u);
  EXPECT_EQ(Out[4].Value, 104);
  // Empty but open: Wait, and Out is untouched.
  EXPECT_EQ(Src.tryPullChunk(8, Out), WorkSource::Pull::Wait);
  EXPECT_EQ(Out.size(), 5u);
  // Closed and drained: End.
  Src.close();
  EXPECT_EQ(Src.tryPullChunk(8, Out), WorkSource::Pull::End);
}

TEST(TryPullChunk, QueueSourceChunkedPullsRewind) {
  QueueWorkSource Src;
  for (std::int64_t V = 0; V < 8; ++V) {
    Token T;
    T.Value = V;
    ASSERT_TRUE(Src.push(T));
  }
  std::vector<Token> Out;
  ASSERT_EQ(Src.tryPullChunk(6, Out), WorkSource::Pull::Got);
  ASSERT_EQ(Out.size(), 6u);
  // Rewind the last 4 of the chunk: they must be re-delivered in order.
  ASSERT_TRUE(Src.rewind(4));
  Out.clear();
  ASSERT_EQ(Src.tryPullChunk(16, Out), WorkSource::Pull::Got);
  ASSERT_EQ(Out.size(), 6u); // 4 rewound + 2 never pulled
  for (std::int64_t I = 0; I < 6; ++I)
    EXPECT_EQ(Out[static_cast<std::size_t>(I)].Value, 2 + I);
}

TEST(QueueWorkSource, PushOnClosedQueueReturnsFalse) {
  // Regression: push() used to assert !Closed, which vanishes in release
  // builds — a producer racing close() could smuggle items past the
  // end-of-stream consumers already observed.
  QueueWorkSource Src;
  Token T;
  T.Value = 1;
  ASSERT_TRUE(Src.push(T));
  Src.close();
  T.Value = 2;
  EXPECT_FALSE(Src.push(T)) << "closed queue must reject, not accept";
  EXPECT_EQ(Src.size(), 1u);
  EXPECT_EQ(Src.accepted(), 1u);
  // The queued item still drains, then the source ends.
  Token Got;
  EXPECT_EQ(Src.tryPull(Got), WorkSource::Pull::Got);
  EXPECT_EQ(Got.Value, 1);
  EXPECT_EQ(Src.tryPull(Got), WorkSource::Pull::End);
}

TEST(QueueWorkSource, PushOnFullQueueReturnsFalse) {
  QueueWorkSource Src(/*Capacity=*/2);
  Token T;
  EXPECT_TRUE(Src.push(T));
  EXPECT_TRUE(Src.push(T));
  EXPECT_FALSE(Src.push(T)) << "bounded queue must reject when full";
  EXPECT_EQ(Src.size(), 2u);
  EXPECT_EQ(Src.accepted(), 2u);
}

//===----------------------------------------------------------------------===//
// Chunk-size policy
//===----------------------------------------------------------------------===//

TEST(ChunkPolicy, GrowsUntilOverheadFractionMet) {
  ChunkPolicy P;
  EXPECT_EQ(P.current(), 1u);
  // Fixed overhead 400 cycles, work 1000/iter, target 5%: need K >= 8.
  P.retune(/*FixedOverhead=*/400, /*ExecPerIter=*/1000, /*Pressure=*/0.0);
  EXPECT_EQ(P.current(), 8u);
  // Coarse iterations need no chunking: K collapses to 1.
  P.retune(400, 1'000'000, 0.0);
  EXPECT_EQ(P.current(), 1u);
}

TEST(ChunkPolicy, CapsAtMaxK) {
  ChunkPolicy P;
  // Pathologically fine iterations: the cap bounds the rewind window.
  P.retune(/*FixedOverhead=*/10'000, /*ExecPerIter=*/10, /*Pressure=*/0.0);
  EXPECT_EQ(P.current(), P.params().MaxK);
}

TEST(ChunkPolicy, QueuePressureShrinks) {
  ChunkPolicy P;
  P.retune(400, 1000, 0.0);
  ASSERT_EQ(P.current(), 8u);
  // Deep channel queues signal imbalance: halve, repeatedly.
  P.retune(400, 1000, 0.9);
  EXPECT_EQ(P.current(), 4u);
  P.retune(400, 1000, 0.9);
  EXPECT_EQ(P.current(), 2u);
}

TEST(ChunkPolicy, DegradeForPauseDropsToMin) {
  ChunkPolicy P;
  P.retune(10'000, 10, 0.0);
  ASSERT_GT(P.current(), 1u);
  P.degradeForPause();
  EXPECT_EQ(P.current(), 1u);
}

TEST(ChunkPolicy, DegradeRecordsLearnedKAndSeedRestoresIt) {
  ChunkPolicy P;
  P.retune(/*FixedOverhead=*/400, /*ExecPerIter=*/1000, /*Pressure=*/0.0);
  ASSERT_EQ(P.current(), 8u);
  // The pause collapse remembers what was learned...
  P.degradeForPause();
  EXPECT_EQ(P.current(), 1u);
  EXPECT_EQ(P.lastLearned(), 8u);
  // ...so recovery / checkpoint restore re-seeds instead of re-learning.
  P.seed(P.lastLearned());
  EXPECT_EQ(P.current(), 8u);
  // Seeding clamps to the legal range and itself counts as learned.
  P.seed(1000);
  EXPECT_EQ(P.current(), P.params().MaxK);
  EXPECT_EQ(P.lastLearned(), P.params().MaxK);
  // A degrade at MinK must not clobber the remembered K with 1.
  P.degradeForPause();
  P.degradeForPause();
  EXPECT_EQ(P.lastLearned(), P.params().MaxK);
}

TEST(ChunkPolicy, ForgetLearnedResetsToMin) {
  ChunkPolicy P;
  EXPECT_EQ(P.lastLearned(), P.params().MinK) << "nothing learned yet";
  P.seed(16);
  ASSERT_EQ(P.lastLearned(), 16u);
  // A scheme switch with no recorded K for the new scheme forgets, so a
  // value learned under a different scheme is never misattributed.
  P.forgetLearned();
  EXPECT_EQ(P.lastLearned(), P.params().MinK);
  // Pinned policies ignore seeding entirely.
  P.pin(4);
  P.seed(32);
  EXPECT_EQ(P.current(), 4u);
}

TEST(ChunkPolicy, PinOverridesTuning) {
  ChunkPolicy P;
  P.pin(16);
  EXPECT_TRUE(P.pinned());
  EXPECT_EQ(P.current(), 16u);
  P.retune(0, 1'000'000, 0.9); // would shrink if unpinned
  EXPECT_EQ(P.current(), 16u);
  P.degradeForPause(); // no-op while pinned
  EXPECT_EQ(P.current(), 16u);
  P.unpin();
  EXPECT_EQ(P.current(), 1u); // tuned K was never touched
}

//===----------------------------------------------------------------------===//
// Semantics under chunked execution
//===----------------------------------------------------------------------===//

TEST(ChunkedExec, PinnedChunksPreserveOrderAndCount) {
  for (std::uint64_t K : {1ull, 4ull, 8ull}) {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    RuntimeCosts Costs;
    CountedWorkSource Src(500);
    std::vector<std::int64_t> Tail;
    FlexibleRegion Region = makeSPS(&Tail);
    RegionRunner Runner(M, Costs, Region, Src);
    Runner.chunkPolicy().pin(K);
    RegionConfig C;
    C.S = Scheme::PsDswp;
    C.DoP = {1, 3, 1};
    Runner.start(C);
    Sim.run();
    EXPECT_TRUE(Runner.completed());
    ASSERT_EQ(Tail.size(), 500u) << "K=" << K;
    for (std::int64_t I = 0; I < 500; ++I)
      ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I) << "K=" << K;
  }
}

TEST(ChunkedExec, PauseMidChunkRewindsToBoundExactly) {
  // Pause while the head holds a part-executed chunk: the unstarted tail
  // of the chunk is given back to the source, the pause bound lands on
  // the last started iteration, and the drain retires exactly the bound.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(10'000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  Runner.chunkPolicy().pin(8);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  // Reconfigure mid-stream: the pause protocol runs with chunking live.
  RegionConfig C2 = C;
  C2.DoP = {1, 5, 1};
  Runner.start(C);
  Sim.schedule(2 * sim::MSec, [&] {
    if (!Runner.completed())
      Runner.reconfigure(C2);
  });
  Sim.runUntil(400 * sim::MSec);
  EXPECT_TRUE(Runner.completed());
  // Exactly-once across give-back: the full space retires in order.
  ASSERT_EQ(Tail.size(), 10'000u);
  for (std::int64_t I = 0; I < 10'000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(ChunkedExec, ExactlyOnceAcrossAbortiveRecoveryWithChunking) {
  // Abortive recovery kills workers mid-chunk; the source rewinds to the
  // commit frontier — which can sit anywhere inside a claimed chunk —
  // and the replay must neither drop nor duplicate an iteration.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(2000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  Runner.chunkPolicy().pin(8);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Runner.start(C);
  for (sim::SimTime At : {2 * sim::MSec, 5 * sim::MSec})
    Sim.schedule(At, [&Runner, C] {
      if (!Runner.completed())
        Runner.recover(C);
    });
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(Runner.recoveries(), 2u);
  ASSERT_EQ(Tail.size(), 2000u);
  for (std::int64_t I = 0; I < 2000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(ChunkedExec, AdaptiveChunkingReplaysDeterministically) {
  // Two seeded runs with the adaptive policy (not pinned), faults, and a
  // recovery must replay event-for-event: chunk retuning is driven by
  // virtual-time stats only, so it cannot introduce nondeterminism.
  auto Run = [] {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    sim::FaultPlan Plan;
    Plan.addStraggler(2, 1 * sim::MSec, 2 * sim::MSec, 2.0);
    Plan.scatterTransients(11, "b", 50, 900, 20, 2);
    M.installFaultPlan(std::move(Plan));
    RuntimeCosts Costs;
    CountedWorkSource Src(1200);
    std::vector<std::int64_t> Tail;
    FlexibleRegion Region = makeSPS(&Tail, /*MidCost=*/4000);
    RegionRunner Runner(M, Costs, Region, Src);
    RegionConfig C;
    C.S = Scheme::PsDswp;
    C.DoP = {1, 3, 1};
    Runner.start(C);
    Sim.schedule(3 * sim::MSec, [&Runner, C] {
      if (!Runner.completed())
        Runner.recover(C);
    });
    Sim.run();
    EXPECT_TRUE(Runner.completed());
    EXPECT_EQ(Tail.size(), 1200u);
    return std::make_pair(Sim.eventsProcessed(), Tail);
  };
  auto A = Run(), B = Run();
  EXPECT_EQ(A.first, B.first) << "event counts diverged between replays";
  EXPECT_EQ(A.second, B.second);
}

TEST(ChunkedExec, ChunkingReducesMeasuredOverhead) {
  // The point of the whole exercise: per-iteration overhead (hooks,
  // status polls, claims) drops with K, and throughput does not regress.
  auto OverheadPerIter = [](std::uint64_t K) {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    RuntimeCosts Costs;
    CountedWorkSource Src(2000);
    FlexibleRegion Region = makeSPS(nullptr, /*MidCost=*/600);
    RegionRunner Runner(M, Costs, Region, Src);
    Runner.chunkPolicy().pin(K);
    RegionConfig C;
    C.S = Scheme::PsDswp;
    C.DoP = {1, 2, 1};
    Runner.start(C);
    Sim.run();
    EXPECT_TRUE(Runner.completed());
    const RegionExec *E = Runner.exec();
    sim::SimTime Ovh = 0;
    for (unsigned T = 0; T < 3; ++T)
      Ovh += E->stats(T).OverheadTime;
    return static_cast<double>(Ovh) / 2000.0;
  };
  double At1 = OverheadPerIter(1);
  double At8 = OverheadPerIter(8);
  EXPECT_LT(At8, At1 / 3.0) << "K=8 should amortize the fixed costs";
}
