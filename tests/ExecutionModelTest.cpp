//===- ExecutionModelTest.cpp - The Figure 3.1 execution model ---------------===//
//
// Integration tests of the Chapter 3 execution model and the remaining
// runtime surfaces: the Figure 3.1 scenario (P1 runs PS-DSWP on the whole
// machine; P2 launches; P1 pauses at a consistent state and resumes with
// a two-thread DOANY while P2 runs alongside), Decima's monitor
// utilities, and RegionRunner's transition bookkeeping.
//
//===----------------------------------------------------------------------===//

#include "decima/Monitor.h"
#include "morta/Controller.h"
#include "morta/Platform.h"
#include "morta/RegionRunner.h"
#include "nona/Programs.h"
#include "nona/Run.h"

#include <gtest/gtest.h>

using namespace parcae;
using namespace parcae::rt;
namespace ir = parcae::ir;

namespace {

/// P1 of Figure 3.1: a region with both a PS-DSWP pipeline (tasks A, B,
/// C) and a DOANY variant (tasks K/L collapsed into one).
FlexibleRegion makeP1() {
  FlexibleRegion R("P1");
  {
    RegionDesc D;
    D.Name = "p1-pipe";
    D.S = Scheme::PsDswp;
    D.Tasks.emplace_back("A", TaskType::Seq, [](IterationContext &C) {
      C.Cost = 2000;
      C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
    });
    D.Tasks.emplace_back("B", TaskType::Par, [](IterationContext &C) {
      C.Cost = 24000;
      C.Out[0].Value = C.In[0].Value;
    });
    D.Tasks.emplace_back("C", TaskType::Seq,
                         [](IterationContext &C) { C.Cost = 1500; });
    D.Links.push_back({0, 1});
    D.Links.push_back({1, 2});
    R.addVariant(std::move(D));
  }
  {
    RegionDesc D;
    D.Name = "p1-doany";
    D.S = Scheme::DoAny;
    D.Tasks.emplace_back("KL", TaskType::Par,
                         [](IterationContext &C) { C.Cost = 27500; });
    R.addVariant(std::move(D));
  }
  return R;
}

} // namespace

TEST(ExecutionModel, Figure31Scenario) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 5); // the hypothetical five-core machine
  RuntimeCosts Costs;

  // t0: P1 launches with a 5-thread PS-DSWP (A, B x3, C).
  CountedWorkSource Src1(1'000'000'000ull);
  FlexibleRegion P1 = makeP1();
  RegionRunner Run1(M, Costs, P1, Src1);
  RegionConfig C1;
  C1.S = Scheme::PsDswp;
  C1.DoP = {1, 3, 1};
  Run1.start(C1);
  Sim.runUntil(2 * sim::MSec);
  std::uint64_t P1Before = Run1.totalRetired();
  EXPECT_GT(P1Before, 50u);

  // t1: P2 launches; Morta reallocates: P1 switches to a 2-thread DOANY,
  // P2 gets 3 threads.
  CountedWorkSource Src2(1'000'000'000ull);
  FlexibleRegion P2("P2");
  {
    RegionDesc D;
    D.Name = "p2-doany";
    D.S = Scheme::DoAny;
    D.Tasks.emplace_back("M", TaskType::Par,
                         [](IterationContext &C) { C.Cost = 15000; });
    P2.addVariant(std::move(D));
  }
  RegionRunner Run2(M, Costs, P2, Src2);
  RegionConfig C2;
  C2.S = Scheme::DoAny;
  C2.DoP = {3};
  RegionConfig P1New;
  P1New.S = Scheme::DoAny;
  P1New.DoP = {2};
  Run1.reconfigure(P1New); // pause -> drain -> resume as DOANY
  Run2.start(C2);
  Sim.runUntil(8 * sim::MSec);

  // Both programs made progress after the reallocation; P1 really
  // switched schemes (one full pause), and the machine is shared 2 + 3.
  EXPECT_EQ(Run1.config().S, Scheme::DoAny);
  EXPECT_EQ(Run1.config().totalThreads(), 2u);
  EXPECT_EQ(Run1.fullPauses(), 1u);
  EXPECT_GT(Run1.totalRetired(), P1Before);
  EXPECT_GT(Run2.totalRetired(), 100u);
  EXPECT_LE(M.busyCores(), 5u);
}

TEST(ExecutionModel, TransitioningFlagCoversPauseWindow) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 5);
  RuntimeCosts Costs;
  CountedWorkSource Src(1'000'000'000ull);
  FlexibleRegion P1 = makeP1();
  RegionRunner Run(M, Costs, P1, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Run.start(C);
  Sim.runUntil(1 * sim::MSec);
  RegionConfig N;
  N.S = Scheme::DoAny;
  N.DoP = {4};
  bool Reconfigured = false;
  Run.OnReconfigured = [&] { Reconfigured = true; };
  EXPECT_TRUE(Run.reconfigure(N));
  EXPECT_TRUE(Run.transitioning());
  Sim.runUntil(3 * sim::MSec);
  EXPECT_FALSE(Run.transitioning());
  EXPECT_TRUE(Reconfigured);
  EXPECT_EQ(Run.config(), N);
}

TEST(ExecutionModel, CoalescedRequestsResumeIntoNewestTarget) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(1'000'000'000ull);
  FlexibleRegion P1 = makeP1();
  RegionRunner Run(M, Costs, P1, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Run.start(C);
  Sim.runUntil(1 * sim::MSec);
  RegionConfig N1, N2;
  N1.S = Scheme::DoAny;
  N1.DoP = {2};
  N2.S = Scheme::DoAny;
  N2.DoP = {6};
  Run.reconfigure(N1);
  Run.reconfigure(N2); // overwrites the pending target mid-transition
  Sim.runUntil(4 * sim::MSec);
  EXPECT_EQ(Run.config(), N2);
}

TEST(DecimaTest, ExecTimeAndLoadQueries) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  RuntimeCosts Costs;
  QueueWorkSource Src;
  for (int I = 0; I < 32; ++I)
    Src.push(Token{});
  FlexibleRegion P1 = makeP1();
  RegionRunner Run(M, Costs, P1, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 2, 1};
  Run.start(C);
  Sim.runUntil(2 * sim::MSec);
  const RegionExec *E = Run.exec();
  ASSERT_NE(E, nullptr);
  // Stage B costs 24000 cycles per instance.
  EXPECT_NEAR(Decima::getExecTime(*E, 1), 24000.0, 1.0);
  // The head's load is the remaining queue occupancy.
  EXPECT_GE(Decima::getLoad(*E, 0), 0.0);
}

TEST(DecimaTest, FeatureRegistry) {
  Decima D;
  EXPECT_FALSE(D.hasFeature("SystemPower"));
  double W = 650;
  D.registerFeature("SystemPower", [&W] { return W; });
  ASSERT_TRUE(D.hasFeature("SystemPower"));
  EXPECT_DOUBLE_EQ(D.getValue("SystemPower"), 650.0);
  W = 700;
  EXPECT_DOUBLE_EQ(D.getValue("SystemPower"), 700.0);
}

TEST(DecimaTest, TryGetValueOptionalFeatures) {
  Decima D;
  // Probing a sensor this platform does not expose must not assert.
  EXPECT_FALSE(D.tryGetValue("Temperature").has_value());
  D.registerFeature("SystemPower", [] { return 650.0; });
  auto V = D.tryGetValue("SystemPower");
  ASSERT_TRUE(V.has_value());
  EXPECT_DOUBLE_EQ(*V, 650.0);
  EXPECT_FALSE(D.tryGetValue("Temperature").has_value());
}

TEST(DecimaTest, FeatureSamplerSkipsUnregistered) {
  sim::Simulator Sim;
  Decima D;
  double W = 600;
  D.registerFeature("SystemPower", [&W] { return W; });
  // "Temperature" never registers: the sampler probes and skips it.
  FeatureSampler S(Sim, D, {"SystemPower", "Temperature"},
                   /*Period=*/100 * sim::USec);
  S.start();
  Sim.schedule(250 * sim::USec, [&S] { S.stop(); });
  Sim.runUntil(1 * sim::MSec);
  // Samples at t = 0, 100us, 200us; only SystemPower is present.
  EXPECT_EQ(S.samplesTaken(), 3u);
}

TEST(DecimaTest, ThroughputWindowRates) {
  ThroughputWindow W;
  W.mark(100, 1 * sim::Sec);
  EXPECT_EQ(W.progress(150), 50u);
  EXPECT_DOUBLE_EQ(W.rate(150, 2 * sim::Sec), 50.0);
  // Counter reset (scheme switch) yields zero, not garbage.
  EXPECT_EQ(W.progress(40), 0u);
  EXPECT_DOUBLE_EQ(W.rate(40, 2 * sim::Sec), 0.0);
}

TEST(DecimaTest, CommTimeTracked) {
  // Pipeline stages accumulate communication time separately from
  // compute (Section 4.7: Decima distinguishes compute from waiting).
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  RuntimeCosts Costs;
  CountedWorkSource Src(200);
  FlexibleRegion P1 = makeP1();
  RegionRunner Run(M, Costs, P1, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 2, 1};
  Run.start(C);
  Sim.run();
  const RegionExec *E = Run.exec();
  ASSERT_NE(E, nullptr);
  // Head sends 200 tokens; tail receives 200.
  EXPECT_EQ(E->stats(0).CommTime, 200u * Costs.CommSend);
  EXPECT_EQ(E->stats(2).CommTime, 200u * Costs.CommRecv);
  EXPECT_EQ(E->stats(1).CommTime,
            200u * (Costs.CommSend + Costs.CommRecv));
}
