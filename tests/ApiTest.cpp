//===- ApiTest.cpp - Chapter 5 API facade tests ------------------------------===//
//
// Tests the programmer-facing API of Chapter 5: task/descriptor
// construction, pipeline lowering, the blocking launch, the functor's
// task_complete contract, and the Figure 5.8 monitoring queries.
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"

#include <gtest/gtest.h>

using namespace parcae;
using namespace parcae::api;
namespace rt = parcae::rt;
namespace sim = parcae::sim;

namespace {

struct ApiHarness {
  sim::Simulator Sim;
  sim::Machine M;
  rt::RuntimeCosts Costs;
  ApiHarness(unsigned Cores = 8) : M(Sim, Cores) {}
};

} // namespace

TEST(ApiTest, PipelineLaunchRunsToCompletion) {
  ApiHarness H;
  std::uint64_t Written = 0;
  Task Read("read",
            [](Instance &I) {
              I.begin();
              I.compute(2000);
              I.end();
              I.output(static_cast<std::int64_t>(I.index()));
              return task_iterating;
            },
            nullptr, TaskDescriptor(TaskType::SEQ));
  Task Transform("transform",
                 [](Instance &I) {
                   I.begin();
                   I.compute(30000);
                   I.end();
                   I.output(I.input() * 2);
                   return task_iterating;
                 },
                 nullptr, TaskDescriptor(TaskType::PAR));
  Task Write("write",
             [&Written](Instance &I) {
               I.compute(1500);
               ++Written;
               return task_iterating;
             },
             nullptr, TaskDescriptor(TaskType::SEQ));
  ParDescriptor Pd({&Read, &Transform, &Write});

  rt::CountedWorkSource Work(50000);
  auto System = Parcae::create(H.M, H.Costs);
  rt::RegionController &Ctrl = System->launch(Pd, Work);

  EXPECT_EQ(Written, 50000u);
  EXPECT_TRUE(System->runner().completed());
  // The controller went parallel: the middle stage dominates.
  EXPECT_GT(Ctrl.bestThroughput(), Ctrl.seqThroughput() * 2);
  EXPECT_EQ(System->runner().config().S, rt::Scheme::PsDswp);
  Parcae::destroy(std::move(System));
}

TEST(ApiTest, HeadTaskCompleteEndsStream) {
  ApiHarness H;
  Task Gen("gen",
           [](Instance &I) {
             I.compute(1000);
             return I.index() + 1 >= 120 ? task_complete : task_iterating;
           },
           nullptr, TaskDescriptor(TaskType::PAR));
  ParDescriptor Pd({&Gen});
  rt::CountedWorkSource Work(1'000'000'000ull); // unbounded; functor ends it
  auto System = Parcae::create(H.M, H.Costs);
  System->launch(Pd, Work);
  EXPECT_TRUE(System->runner().completed());
  EXPECT_EQ(System->runner().totalRetired(), 120u);
}

TEST(ApiTest, InitAndFiniCallbacksFire) {
  ApiHarness H;
  int Inits = 0, Finis = 0;
  Task T("t",
         [](Instance &I) {
           I.compute(500);
           return task_iterating;
         },
         nullptr, TaskDescriptor(TaskType::PAR), [&Inits] { ++Inits; },
         [&Finis] { ++Finis; });
  ParDescriptor Pd({&T});
  rt::CountedWorkSource Work(100);
  auto System = Parcae::create(H.M, H.Costs);
  System->launch(Pd, Work);
  EXPECT_EQ(Inits, 1);
  EXPECT_EQ(Finis, 1);
}

TEST(ApiTest, LoadCBIsUsedForTaskLoad) {
  ApiHarness H;
  double FakeLoad = 42.5;
  Task T("t",
         [](Instance &I) {
           I.compute(500);
           return task_iterating;
         },
         [&FakeLoad] { return FakeLoad; }, TaskDescriptor(TaskType::PAR));
  ParDescriptor Pd({&T});
  rt::CountedWorkSource Work(200);
  auto System = Parcae::create(H.M, H.Costs);
  System->launch(Pd, Work);
  EXPECT_DOUBLE_EQ(System->getLoad(&T), 42.5);
}

TEST(ApiTest, GetExecTimeReflectsFunctorCost) {
  ApiHarness H;
  Task T("t",
         [](Instance &I) {
           I.begin();
           I.compute(7777);
           I.end();
           return task_iterating;
         },
         nullptr, TaskDescriptor(TaskType::PAR));
  ParDescriptor Pd({&T});
  rt::CountedWorkSource Work(500);
  auto System = Parcae::create(H.M, H.Costs);
  System->launch(Pd, Work);
  EXPECT_NEAR(System->getExecTime(&T), 7777.0, 1.0);
}

TEST(ApiTest, PlatformFeatureRegistry) {
  ApiHarness H;
  auto System = Parcae::create(H.M, H.Costs);
  double Power = 640.0;
  System->registerCB("SystemPower", [&Power] { return Power; });
  EXPECT_DOUBLE_EQ(System->getValue("SystemPower"), 640.0);
  Power = 700.0;
  EXPECT_DOUBLE_EQ(System->getValue("SystemPower"), 700.0);
}

TEST(ApiTest, CriticalSectionsThroughTheApi) {
  ApiHarness H;
  Task T("hash",
         [](Instance &I) {
           I.compute(2000);
           I.critical(/*LockId=*/3, /*Cycles=*/5000);
           return task_iterating;
         },
         nullptr, TaskDescriptor(TaskType::PAR));
  ParDescriptor Pd({&T});
  rt::CountedWorkSource Work(200);
  auto System = Parcae::create(H.M, H.Costs);
  System->launch(Pd, Work);
  // The 5000-cycle critical section serializes the 200 instances.
  EXPECT_GE(H.Sim.now(), 200u * 5000u);
}

TEST(ApiTest, SingleSeqTaskStaysSequential) {
  ApiHarness H;
  Task T("only",
         [](Instance &I) {
           I.compute(900);
           return task_iterating;
         },
         nullptr, TaskDescriptor(TaskType::SEQ));
  ParDescriptor Pd({&T});
  rt::CountedWorkSource Work(300);
  auto System = Parcae::create(H.M, H.Costs);
  System->launch(Pd, Work);
  EXPECT_TRUE(System->runner().completed());
  EXPECT_EQ(System->runner().config().S, rt::Scheme::Seq);
}

TEST(ApiTest, NestedDescriptorIsRecorded) {
  // Nested parallelism is declared through TaskDescriptor's descriptor
  // list (Figure 5.5); the declaration must round-trip.
  Task Inner("inner",
             [](Instance &I) {
               I.compute(1);
               return task_iterating;
             },
             nullptr, TaskDescriptor(TaskType::PAR));
  ParDescriptor InnerPd({&Inner});
  TaskDescriptor Outer(TaskType::PAR, &InnerPd);
  EXPECT_EQ(Outer.Pd.size(), 1u);
  EXPECT_EQ(Outer.Pd[0]->Tasks.size(), 1u);
}
