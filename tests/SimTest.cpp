//===- SimTest.cpp - Unit tests for the discrete-event simulator -----------===//

#include "sim/BoundedQueue.h"
#include "sim/EventFn.h"
#include "sim/Faults.h"
#include "sim/Machine.h"
#include "sim/Power.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

using namespace parcae::sim;

namespace {

/// Computes a fixed number of bursts, then finishes.
class BurstBody : public ThreadBody {
public:
  BurstBody(int Bursts, SimTime Cycles) : Remaining(Bursts), Cycles(Cycles) {}
  Action resume(Machine &, SimThread &) override {
    if (Remaining-- > 0)
      return Action::compute(Cycles);
    return Action::finish();
  }
  int Remaining;
  SimTime Cycles;
};

/// Produces N tokens into a queue, one per compute burst.
class ProducerBody : public ThreadBody {
public:
  ProducerBody(BoundedQueue<int> &Q, int N, SimTime Cost)
      : Q(Q), N(N), Cost(Cost) {}
  Action resume(Machine &, SimThread &) override {
    if (Pending) {
      if (!Q.tryPush(Next))
        return Action::block(Q.notFull());
      Pending = false;
      ++Next;
    }
    if (Next >= N && !Pending)
      return Action::finish();
    Pending = true;
    return Action::compute(Cost);
  }
  BoundedQueue<int> &Q;
  int N;
  SimTime Cost;
  int Next = 0;
  bool Pending = false;
};

/// Consumes tokens until it has seen \p N of them.
class ConsumerBody : public ThreadBody {
public:
  ConsumerBody(BoundedQueue<int> &Q, int N, SimTime Cost,
               std::vector<int> &Out)
      : Q(Q), N(N), Cost(Cost), Out(Out) {}
  Action resume(Machine &, SimThread &) override {
    if (static_cast<int>(Out.size()) >= N)
      return Action::finish();
    int V;
    if (!Q.tryPop(V))
      return Action::block(Q.notEmpty());
    Out.push_back(V);
    return Action::compute(Cost);
  }
  BoundedQueue<int> &Q;
  int N;
  SimTime Cost;
  std::vector<int> &Out;
};

} // namespace

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator Sim;
  std::vector<int> Order;
  Sim.schedule(30, [&] { Order.push_back(3); });
  Sim.schedule(10, [&] { Order.push_back(1); });
  Sim.schedule(20, [&] { Order.push_back(2); });
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Sim.now(), 30u);
  EXPECT_EQ(Sim.eventsProcessed(), 3u);
}

TEST(Simulator, TiesFireInScheduleOrder) {
  Simulator Sim;
  std::vector<int> Order;
  for (int I = 0; I < 5; ++I)
    Sim.schedule(100, [&, I] { Order.push_back(I); });
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ZeroDelayInterleavesWithEqualTimeInScheduleOrder) {
  // Zero-delay events take the due-now ring, equal-time future events
  // the heap; the two must still fire in global schedule order.
  Simulator Sim;
  std::vector<int> Order;
  Sim.schedule(10, [&] {
    Order.push_back(0);
    // Scheduled AFTER the pre-queued t=10 event below, so these fire
    // after it despite taking the ring fast path.
    Sim.schedule(0, [&] { Order.push_back(2); }); // ring
    Sim.schedule(0, [&] {
      Order.push_back(3);
      Sim.schedule(0, [&] { Order.push_back(4); }); // nested ring
    });
  });
  Sim.schedule(10, [&] { Order.push_back(1); }); // heap, same instant
  Sim.schedule(20, [&] { Order.push_back(5); });
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(Sim.now(), 20u);
}

TEST(Simulator, ManyRecycledEventsKeepOrder) {
  // Chains of self-rescheduling timers churn the slab free list; slot
  // recycling must never perturb (time, seq) order.
  Simulator Sim;
  std::uint64_t Fired = 0;
  SimTime LastAt = 0;
  std::array<int, 16> Left{};
  Left.fill(100);
  std::vector<std::function<void()>> Ticks(16); // sized once: stable refs
  for (int I = 0; I < 16; ++I)
    Ticks[static_cast<std::size_t>(I)] = [&, I] {
      ++Fired;
      EXPECT_GE(Sim.now(), LastAt);
      LastAt = Sim.now();
      if (--Left[static_cast<std::size_t>(I)] > 0)
        Sim.schedule(1 + static_cast<SimTime>(I % 7),
                     Ticks[static_cast<std::size_t>(I)]);
    };
  for (int I = 0; I < 16; ++I)
    Sim.schedule(1, Ticks[static_cast<std::size_t>(I)]);
  Sim.run();
  EXPECT_EQ(Fired, 16u * 100u);
}

TEST(Simulator, LivelockGuardAbortsWithDiagnostic) {
  // A model bug that re-schedules itself with zero delay forever must
  // abort with a diagnostic instead of hanging — in release builds too,
  // which is why this is a real check rather than an assert.
  EXPECT_EQ(Simulator{}.sameTimeLimit(), 20'000'000u);
  EXPECT_DEATH(
      {
        Simulator Sim;
        Sim.setSameTimeLimit(1000);
        std::function<void()> Spin = [&] { Sim.schedule(0, Spin); };
        Sim.schedule(0, Spin);
        Sim.run();
      },
      "livelock");
}

TEST(Simulator, SameTimeCountResetsWhenClockAdvances) {
  // A long run whose events keep moving the clock must never trip the
  // guard, even with a limit far below the event count.
  Simulator Sim;
  Sim.setSameTimeLimit(10);
  std::uint64_t Fired = 0;
  std::function<void()> Tick = [&] {
    if (++Fired < 1000)
      Sim.schedule(1, Tick);
  };
  Sim.schedule(1, Tick);
  Sim.run();
  EXPECT_EQ(Fired, 1000u);
}

TEST(Simulator, WheelHorizonWraparound) {
  // Delays below the horizon on a small wheel: bucket indices wrap the
  // bucket array many times over; order and timing must be exact.
  Simulator Sim;
  Sim.setWheelSpan(64);
  std::vector<SimTime> FiredAt;
  std::uint64_t Fired = 0;
  std::function<void()> Tick = [&] {
    FiredAt.push_back(Sim.now());
    if (++Fired < 500)
      Sim.schedule(1 + (Fired * 37) % 63, Tick); // delays in [1, 63]
  };
  Sim.schedule(63, Tick);
  Sim.run();
  EXPECT_EQ(Fired, 500u);
  for (std::size_t I = 1; I < FiredAt.size(); ++I)
    EXPECT_LT(FiredAt[I - 1], FiredAt[I]);
  // Everything stayed within the horizon: no event ever touched the
  // far-horizon heap.
  Simulator::QueueStats S = Sim.queueStats();
  EXPECT_EQ(S.WheelHits, 500u);
  EXPECT_EQ(S.HeapHits, 0u);
  EXPECT_EQ(S.SpillMigrations, 0u);
}

TEST(Simulator, FarFutureSpillThenMigrate) {
  // An event beyond the wheel horizon spills to the heap; as a ticker
  // advances the clock into its epoch it must migrate into the wheel
  // and still fire at exactly the right instant.
  Simulator Sim;
  Sim.setWheelSpan(64);
  SimTime FarAt = 0;
  Sim.schedule(1000, [&] { FarAt = Sim.now(); }); // 1000 >= span: heap
  std::function<void()> Tick = [&] {
    if (Sim.now() < 2000)
      Sim.schedule(10, Tick);
  };
  Sim.schedule(10, Tick);
  Sim.run();
  EXPECT_EQ(FarAt, 1000u);
  Simulator::QueueStats S = Sim.queueStats();
  EXPECT_GE(S.SpillMigrations, 1u); // the far event crossed heap -> wheel
  EXPECT_GE(S.WheelHits, 1u);
}

TEST(Simulator, EqualTimeInterleavingAcrossTiers) {
  // One instant, three sources: a wheel event scheduled first, a heap
  // event stuck beyond the horizon until its epoch, and ring events
  // scheduled during the instant. Global order must be schedule order.
  Simulator Sim;
  Sim.setWheelSpan(64);
  std::vector<int> Order;
  Sim.schedule(100, [&] { // seq 0 — beyond span: heap; migrates at t=70
    Order.push_back(0);
    Sim.schedule(0, [&] { Order.push_back(3); }); // ring
  });
  Sim.schedule(70, [&] { // seq 1 — ticker pulls the clock into epoch
    Sim.schedule(30, [&] { Order.push_back(2); }); // seq 2: wheel, t=100
  });
  Sim.run();
  // At t=100: heap-migrated seq-0 event first, then the wheel seq-2
  // event, then the ring event scheduled mid-instant.
  EXPECT_EQ(Order, (std::vector<int>{0, 2, 3}));
}

TEST(Simulator, HeapOnlyModeMatchesWheelOrder) {
  // The acceptance gate for the wheel tier: the same workload fires in
  // the identical sequence under both queue modes.
  auto Run = [](Simulator::QueueMode Mode) {
    Simulator Sim;
    Sim.setQueueMode(Mode);
    std::vector<std::pair<SimTime, int>> Trace;
    std::uint64_t Budget = 2000;
    std::array<std::function<void()>, 8> Ticks;
    std::uint64_t Acc = 0x9E3779B97F4A7C15ull;
    for (int I = 0; I < 8; ++I)
      Ticks[static_cast<std::size_t>(I)] = [&, I] {
        Trace.push_back({Sim.now(), I});
        if (Budget == 0)
          return;
        --Budget;
        Acc = Acc * 6364136223846793005ull + 1442695040888963407ull;
        // Mix of due-now, short-band, and far-horizon delays.
        SimTime D = (Acc % 5 == 0) ? 0 : 1 + (Acc % 2000);
        Sim.schedule(D, Ticks[static_cast<std::size_t>(I)]);
      };
    for (int I = 0; I < 8; ++I)
      Sim.schedule(1 + static_cast<SimTime>(I) * 7,
                   Ticks[static_cast<std::size_t>(I)]);
    Sim.run();
    return Trace;
  };
  auto WithWheel = Run(Simulator::QueueMode::Wheel);
  auto HeapOnly = Run(Simulator::QueueMode::HeapOnly);
  EXPECT_EQ(WithWheel, HeapOnly);
}

TEST(Simulator, TierHitsSumToEventsProcessed) {
  Simulator Sim;
  std::uint64_t Fired = 0;
  std::function<void()> Tick = [&] {
    ++Fired;
    if (Fired < 300)
      Sim.schedule((Fired % 3 == 0) ? 0 : 1 + (Fired * 61) % 1500, Tick);
  };
  Sim.schedule(1, Tick);
  Sim.run();
  Simulator::QueueStats S = Sim.queueStats();
  EXPECT_EQ(S.RingHits + S.WheelHits + S.HeapHits, Sim.eventsProcessed());
  EXPECT_GT(S.RingHits, 0u);
  EXPECT_GT(S.WheelHits, 0u);
  EXPECT_GT(S.HeapHits, 0u);
}

TEST(Simulator, SeqCounterWrapTieBreak) {
  // Same-instant events scheduled across the 2^32 seq wrap must still
  // fire in schedule order (wrap-safe signed-difference compare), in
  // both queue modes.
  for (auto Mode : {Simulator::QueueMode::Wheel,
                    Simulator::QueueMode::HeapOnly}) {
    Simulator Sim;
    Sim.setQueueMode(Mode);
    Sim.primeSeqCounterForTest(0xFFFFFFFFu - 3);
    std::vector<int> Order;
    for (int I = 0; I < 8; ++I) // seqs 2^32-4 .. 3, wrapping in the middle
      Sim.schedule(50, [&, I] { Order.push_back(I); });
    Sim.run();
    EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  }
}

TEST(Simulator, RunUntilStopsMidBucketSequence) {
  // A deadline between wheel-resident event times: runUntil must run
  // events at t <= deadline (inclusive), leave the rest, and pin the
  // clock to the deadline.
  Simulator Sim;
  std::vector<SimTime> FiredAt;
  for (SimTime T : {10u, 20u, 30u, 40u})
    Sim.schedule(T, [&] { FiredAt.push_back(Sim.now()); });
  Sim.runUntil(25);
  EXPECT_EQ(FiredAt, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(Sim.now(), 25u);
  Sim.runUntil(30); // inclusive at the event's exact time
  EXPECT_EQ(FiredAt, (std::vector<SimTime>{10, 20, 30}));
  Sim.run();
  EXPECT_EQ(FiredAt, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(Simulator, LivelockDiagnosticListsTiersAndPending) {
  // The livelock diagnostic must name per-tier occupancy and the next
  // few (time, seq) pairs, so the spinning schedule is identifiable.
  EXPECT_DEATH(
      {
        Simulator Sim;
        Sim.setSameTimeLimit(500);
        std::function<void()> Spin = [&] { Sim.schedule(0, Spin); };
        Sim.schedule(0, Spin);
        Sim.schedule(5000, [] {}); // a far-horizon bystander, in the dump
        Sim.run();
      },
      // The spinning event is popped (ring empty) when the guard trips;
      // the bystander (seq 1, scheduled second) is all that is pending.
      "queue: ring=0 drain=0 wheel=0 heap=1 pending.*"
      "next pending: \\(t=5000, seq=1\\)");
}

TEST(EventFn, InlineCallableRunsAndResets) {
  int Hits = 0;
  EventFn F([&Hits] { ++Hits; });
  ASSERT_TRUE(static_cast<bool>(F));
  F();
  EXPECT_EQ(Hits, 1);
  F.reset();
  EXPECT_FALSE(static_cast<bool>(F));
}

TEST(EventFn, NonTrivialDestructorRunsOnReset) {
  int Dtors = 0;
  struct Probe {
    int *Dtors;
    explicit Probe(int *D) : Dtors(D) {}
    Probe(Probe &&O) noexcept : Dtors(O.Dtors) { O.Dtors = nullptr; }
    ~Probe() {
      if (Dtors)
        ++*Dtors;
    }
    void operator()() const {}
  };
  {
    EventFn F{Probe(&Dtors)};
    EXPECT_EQ(Dtors, 0);
    F.reset();
    EXPECT_EQ(Dtors, 1);
    F.reset(); // idempotent on empty
    EXPECT_EQ(Dtors, 1);
  }
  EXPECT_EQ(Dtors, 1);
}

TEST(EventFn, MoveTransfersOwnership) {
  int Hits = 0;
  EventFn A([&Hits] { ++Hits; });
  EventFn B(std::move(A));
  EXPECT_FALSE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  B();
  EXPECT_EQ(Hits, 1);
  EventFn C;
  C = std::move(B);
  C();
  EXPECT_EQ(Hits, 2);
}

TEST(EventFn, AssignReplacesInPlace) {
  int First = 0, Second = 0;
  EventFn F([&First] { ++First; });
  F.assign([&Second] { ++Second; });
  F();
  EXPECT_EQ(First, 0);
  EXPECT_EQ(Second, 1);
  // Assigning an EventFn itself is a plain move.
  EventFn G([&First] { ++First; });
  F.assign(std::move(G));
  F();
  EXPECT_EQ(First, 1);
  EXPECT_EQ(Second, 1);
}

TEST(EventFn, LargeCaptureFallsBackToHeapCell) {
  // Captures beyond InlineSize still work (one heap cell), with correct
  // destruction — the shared_ptr use count proves the copy dies.
  auto Guard = std::make_shared<int>(7);
  std::array<std::uint64_t, 16> Big{};
  Big[0] = 42;
  std::uint64_t Seen = 0;
  static_assert(sizeof(Big) > EventFn::InlineSize);
  {
    EventFn F([Guard, Big, &Seen] { Seen = Big[0]; });
    EXPECT_EQ(Guard.use_count(), 2);
    F();
    EXPECT_EQ(Seen, 42u);
  }
  EXPECT_EQ(Guard.use_count(), 1);
}

TEST(EventFn, ScratchWordRoundTripsOnEmpty) {
  // The simulator's slab threads its free list through dead slots.
  EventFn F;
  F.scratch() = 0xDEADBEEFu;
  EXPECT_EQ(F.scratch(), 0xDEADBEEFu);
  EXPECT_FALSE(static_cast<bool>(F));
}

TEST(Simulator, NestedScheduling) {
  Simulator Sim;
  int Fired = 0;
  Sim.schedule(5, [&] {
    ++Fired;
    Sim.schedule(5, [&] { ++Fired; });
  });
  Sim.run();
  EXPECT_EQ(Fired, 2);
  EXPECT_EQ(Sim.now(), 10u);
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator Sim;
  int Fired = 0;
  Sim.schedule(10, [&] { ++Fired; });
  Sim.schedule(100, [&] { ++Fired; });
  Sim.runUntil(50);
  EXPECT_EQ(Fired, 1);
  EXPECT_EQ(Sim.now(), 50u);
  Sim.run();
  EXPECT_EQ(Fired, 2);
}

TEST(Simulator, StopHaltsRun) {
  Simulator Sim;
  int Fired = 0;
  Sim.schedule(1, [&] {
    ++Fired;
    Sim.stop();
  });
  Sim.schedule(2, [&] { ++Fired; });
  Sim.run();
  EXPECT_EQ(Fired, 1);
}

TEST(Machine, SingleThreadComputesSerially) {
  Simulator Sim;
  Machine M(Sim, 4);
  M.spawn("t", std::make_unique<BurstBody>(3, 100));
  Sim.run();
  EXPECT_EQ(Sim.now(), 300u);
  EXPECT_EQ(M.threadsAlive(), 0u);
}

TEST(Machine, ThreadsRunInParallelAcrossCores) {
  Simulator Sim;
  Machine M(Sim, 4);
  for (int I = 0; I < 4; ++I)
    M.spawn("t", std::make_unique<BurstBody>(1, 1000));
  Sim.run();
  // Four independent threads on four cores finish in one burst time.
  EXPECT_EQ(Sim.now(), 1000u);
  EXPECT_EQ(M.busyCoreTime(), 4000u);
}

TEST(Machine, OversubscriptionTimeSlices) {
  Simulator Sim;
  MachineConfig Cfg;
  Cfg.Quantum = 100;
  Cfg.CtxSwitchCost = 10;
  Machine M(Sim, 1, Cfg);
  M.spawn("a", std::make_unique<BurstBody>(1, 300));
  M.spawn("b", std::make_unique<BurstBody>(1, 300));
  Sim.run();
  // Work is 600 plus context-switch overhead from interleaving on 1 core.
  EXPECT_GT(Sim.now(), 600u);
  EXPECT_EQ(M.threadsAlive(), 0u);
}

TEST(Machine, SoloThreadPaysNoSwitchCost) {
  Simulator Sim;
  MachineConfig Cfg;
  Cfg.Quantum = 100;
  Cfg.CtxSwitchCost = 50;
  Machine M(Sim, 2, Cfg);
  M.spawn("solo", std::make_unique<BurstBody>(1, 1000));
  Sim.run();
  EXPECT_EQ(Sim.now(), 1000u); // 10 quanta, zero switch cost
}

TEST(Machine, ExitEventFires) {
  Simulator Sim;
  Machine M(Sim, 1);
  SimThread *T = M.spawn("t", std::make_unique<BurstBody>(1, 50));
  bool Saw = false;
  // A second thread waits for the first to finish.
  class WaiterBody : public ThreadBody {
  public:
    WaiterBody(SimThread *T, bool &Saw) : T(T), Saw(Saw) {}
    Action resume(Machine &, SimThread &) override {
      if (T->state() != ThreadState::Finished)
        return Action::block(T->exitEvent());
      Saw = true;
      return Action::finish();
    }
    SimThread *T;
    bool &Saw;
  };
  M.spawn("w", std::make_unique<WaiterBody>(T, Saw));
  Sim.run();
  EXPECT_TRUE(Saw);
}

TEST(Machine, ProducerConsumerFifoOrder) {
  Simulator Sim;
  Machine M(Sim, 2);
  BoundedQueue<int> Q(4);
  std::vector<int> Out;
  M.spawn("prod", std::make_unique<ProducerBody>(Q, 50, 10));
  M.spawn("cons", std::make_unique<ConsumerBody>(Q, 50, 25, Out));
  Sim.run();
  ASSERT_EQ(Out.size(), 50u);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(Out[I], I);
  // Consumer is the bottleneck at 25 cycles per token.
  EXPECT_GE(Sim.now(), 50u * 25u);
}

TEST(Machine, BoundedQueueBackpressure) {
  Simulator Sim;
  Machine M(Sim, 2);
  BoundedQueue<int> Q(2);
  std::vector<int> Out;
  // Fast producer, slow consumer: the queue bound must throttle.
  M.spawn("prod", std::make_unique<ProducerBody>(Q, 20, 1));
  M.spawn("cons", std::make_unique<ConsumerBody>(Q, 20, 100, Out));
  Sim.run();
  ASSERT_EQ(Out.size(), 20u);
  // Finish time dominated by consumer.
  EXPECT_GE(Sim.now(), 2000u);
}

TEST(Machine, BusyCoreTimeIntegrates) {
  Simulator Sim;
  Machine M(Sim, 2);
  M.spawn("a", std::make_unique<BurstBody>(1, 100));
  M.spawn("b", std::make_unique<BurstBody>(1, 200));
  Sim.run();
  EXPECT_EQ(M.busyCoreTime(), 300u);
}

TEST(BoundedQueue, BasicOps) {
  BoundedQueue<int> Q(2);
  EXPECT_TRUE(Q.empty());
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_TRUE(Q.full());
  EXPECT_FALSE(Q.tryPush(3));
  int V = 0;
  EXPECT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 1);
  EXPECT_EQ(Q.front(), 2);
  EXPECT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 2);
  EXPECT_FALSE(Q.tryPop(V));
}

TEST(BoundedQueue, CloseRejectsPushAndDrainsToClosed) {
  BoundedQueue<int> Q(4);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  Q.close();
  EXPECT_TRUE(Q.closed());
  EXPECT_FALSE(Q.tryPush(3)) << "closed queue must reject pushes";
  int V = 0;
  // Queued items still drain; only then does pop report Closed.
  EXPECT_EQ(Q.pop(V), BoundedQueue<int>::PopResult::Got);
  EXPECT_EQ(V, 1);
  EXPECT_EQ(Q.pop(V), BoundedQueue<int>::PopResult::Got);
  EXPECT_EQ(V, 2);
  EXPECT_EQ(Q.pop(V), BoundedQueue<int>::PopResult::Closed);
  Q.close(); // idempotent
  EXPECT_EQ(Q.pop(V), BoundedQueue<int>::PopResult::Closed);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  // Regression: a consumer blocked on notEmpty() used to sleep forever
  // when the producer went away. close() must wake it so it can observe
  // shutdown and exit.
  class ShutdownConsumer : public ThreadBody {
  public:
    ShutdownConsumer(BoundedQueue<int> &Q, std::vector<int> &Out,
                     bool &SawClose)
        : Q(Q), Out(Out), SawClose(SawClose) {}
    Action resume(Machine &, SimThread &) override {
      int V;
      switch (Q.pop(V)) {
      case BoundedQueue<int>::PopResult::Got:
        Out.push_back(V);
        return Action::compute(10);
      case BoundedQueue<int>::PopResult::Empty:
        return Action::block(Q.notEmpty());
      case BoundedQueue<int>::PopResult::Closed:
        SawClose = true;
        return Action::finish();
      }
      return Action::finish();
    }
    BoundedQueue<int> &Q;
    std::vector<int> &Out;
    bool &SawClose;
  };
  Simulator Sim;
  Machine M(Sim, 2);
  BoundedQueue<int> Q(4);
  std::vector<int> Out;
  bool SawClose = false;
  M.spawn("cons", std::make_unique<ShutdownConsumer>(Q, Out, SawClose));
  Sim.schedule(100, [&Q] {
    Q.tryPush(1);
    Q.tryPush(2);
  });
  Sim.schedule(500, [&Q] { Q.close(); });
  Sim.run();
  EXPECT_TRUE(SawClose) << "consumer stranded past shutdown";
  EXPECT_EQ(Out, (std::vector<int>{1, 2}));
  EXPECT_EQ(M.threadsAlive(), 0u);
}

TEST(Machine, OfflineStrandsThreadAndRescueRequeues) {
  Simulator Sim;
  Machine M(Sim, 2);
  FaultPlan Plan;
  Plan.addOffline(0, 50);
  M.installFaultPlan(std::move(Plan));
  M.spawn("a", std::make_unique<BurstBody>(1, 1000));
  M.spawn("b", std::make_unique<BurstBody>(1, 1000));
  Sim.runUntil(60);
  // The thread on core 0 is held hostage by the dead core.
  EXPECT_EQ(M.onlineCores(), 1u);
  EXPECT_EQ(M.strandedThreads(), 1u);
  EXPECT_EQ(M.lastOfflineAt(), 50u);
  EXPECT_EQ(M.rescueStranded(), 1u);
  EXPECT_EQ(M.strandedThreads(), 0u);
  Sim.run();
  // Both threads complete, time-sliced on the surviving core.
  EXPECT_EQ(M.threadsAlive(), 0u);
}

TEST(Machine, StragglerDilatesCompute) {
  Simulator Sim;
  Machine M(Sim, 1);
  FaultPlan Plan;
  Plan.addStraggler(0, 0, 1'000'000, 2.0);
  M.installFaultPlan(std::move(Plan));
  M.spawn("t", std::make_unique<BurstBody>(1, 1000));
  Sim.run();
  // 1000 cycles of work at 2x dilation take 2000 cycles of wall time.
  EXPECT_EQ(Sim.now(), 2000u);
}

TEST(FaultPlan, OverlappingDilationWindowsCombineWithMax) {
  // Overlapping windows describe concurrent slowdown causes on one core;
  // the core runs at the *worst* active dilation. The old behaviour
  // multiplied the factors (2x and 3x compounding to 6x), silently
  // over-throttling wherever scattered windows happened to overlap.
  FaultPlan Plan;
  Plan.addStraggler(2, 100, 100, 2.0);
  Plan.addStraggler(2, 150, 100, 3.0);
  EXPECT_DOUBLE_EQ(Plan.dilation(2, 50), 1.0);
  EXPECT_DOUBLE_EQ(Plan.dilation(2, 120), 2.0);
  EXPECT_DOUBLE_EQ(Plan.dilation(2, 180), 3.0); // worst wins, no compounding
  EXPECT_DOUBLE_EQ(Plan.dilation(2, 220), 3.0);
  EXPECT_DOUBLE_EQ(Plan.dilation(2, 260), 1.0);
  EXPECT_DOUBLE_EQ(Plan.dilation(0, 180), 1.0); // other cores nominal
}

TEST(FaultPlan, ScatterIsDeterministicAndBounded) {
  FaultPlan A, B;
  A.scatterTransients(42, "work", 100, 500, 30, 3);
  B.scatterTransients(42, "work", 100, 500, 30, 3);
  EXPECT_EQ(A.numTransients(), B.numTransients());
  EXPECT_GT(A.numTransients(), 0u);
  unsigned Mismatch = 0;
  for (std::uint64_t Seq = 100; Seq < 500; ++Seq) {
    unsigned FA = A.transientFailCount("work", Seq);
    unsigned FB = B.transientFailCount("work", Seq);
    if (FA != FB)
      ++Mismatch;
    EXPECT_LE(FA, 3u);
  }
  EXPECT_EQ(Mismatch, 0u);
  // Outside the scattered range and for other tasks: nothing.
  EXPECT_EQ(A.transientFailCount("work", 99), 0u);
  EXPECT_EQ(A.transientFailCount("work", 500), 0u);
  EXPECT_EQ(A.transientFailCount("other", 200), 0u);
}

TEST(Power, EnergyIntegration) {
  Simulator Sim;
  Machine M(Sim, 2);
  PowerModel PM;
  PM.StaticWatts = 100;
  PM.PerCoreActiveWatts = 10;
  EnergyMeter Meter(M, PM);
  // One core busy for 1 virtual second.
  M.spawn("t", std::make_unique<BurstBody>(1, Sec));
  Sim.run();
  EXPECT_NEAR(Meter.joules(), 110.0, 1e-6);
  EXPECT_NEAR(Meter.currentWatts(), 100.0, 1e-9); // idle again
}

TEST(Power, PduSamplerRate) {
  Simulator Sim;
  Machine M(Sim, 1);
  EnergyMeter Meter(M, PowerModel{});
  int Samples = 0;
  PduSampler Pdu(Sim, Meter, [&](double) { ++Samples; });
  Sim.schedule(60 * Sec, [&] { Pdu.stop(); });
  Sim.runUntil(60 * Sec);
  EXPECT_EQ(Samples, 13); // 13 samples per minute, like the AP7892
}

TEST(Power, NinetyPercentPeakIsSixtyPercentDynamic) {
  // The calibration property from Section 8.2.3.
  PowerModel PM;
  unsigned N = 24;
  double Peak = PM.peakWatts(N);
  double Idle = PM.watts(0);
  double Target = 0.9 * Peak;
  double DynFraction = (Target - Idle) / (Peak - Idle);
  EXPECT_NEAR(DynFraction, 0.6, 0.02);
}
