//===- SimTest.cpp - Unit tests for the discrete-event simulator -----------===//

#include "sim/BoundedQueue.h"
#include "sim/Machine.h"
#include "sim/Power.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace parcae::sim;

namespace {

/// Computes a fixed number of bursts, then finishes.
class BurstBody : public ThreadBody {
public:
  BurstBody(int Bursts, SimTime Cycles) : Remaining(Bursts), Cycles(Cycles) {}
  Action resume(Machine &, SimThread &) override {
    if (Remaining-- > 0)
      return Action::compute(Cycles);
    return Action::finish();
  }
  int Remaining;
  SimTime Cycles;
};

/// Produces N tokens into a queue, one per compute burst.
class ProducerBody : public ThreadBody {
public:
  ProducerBody(BoundedQueue<int> &Q, int N, SimTime Cost)
      : Q(Q), N(N), Cost(Cost) {}
  Action resume(Machine &, SimThread &) override {
    if (Pending) {
      if (!Q.tryPush(Next))
        return Action::block(Q.notFull());
      Pending = false;
      ++Next;
    }
    if (Next >= N && !Pending)
      return Action::finish();
    Pending = true;
    return Action::compute(Cost);
  }
  BoundedQueue<int> &Q;
  int N;
  SimTime Cost;
  int Next = 0;
  bool Pending = false;
};

/// Consumes tokens until it has seen \p N of them.
class ConsumerBody : public ThreadBody {
public:
  ConsumerBody(BoundedQueue<int> &Q, int N, SimTime Cost,
               std::vector<int> &Out)
      : Q(Q), N(N), Cost(Cost), Out(Out) {}
  Action resume(Machine &, SimThread &) override {
    if (static_cast<int>(Out.size()) >= N)
      return Action::finish();
    int V;
    if (!Q.tryPop(V))
      return Action::block(Q.notEmpty());
    Out.push_back(V);
    return Action::compute(Cost);
  }
  BoundedQueue<int> &Q;
  int N;
  SimTime Cost;
  std::vector<int> &Out;
};

} // namespace

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator Sim;
  std::vector<int> Order;
  Sim.schedule(30, [&] { Order.push_back(3); });
  Sim.schedule(10, [&] { Order.push_back(1); });
  Sim.schedule(20, [&] { Order.push_back(2); });
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Sim.now(), 30u);
  EXPECT_EQ(Sim.eventsProcessed(), 3u);
}

TEST(Simulator, TiesFireInScheduleOrder) {
  Simulator Sim;
  std::vector<int> Order;
  for (int I = 0; I < 5; ++I)
    Sim.schedule(100, [&, I] { Order.push_back(I); });
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator Sim;
  int Fired = 0;
  Sim.schedule(5, [&] {
    ++Fired;
    Sim.schedule(5, [&] { ++Fired; });
  });
  Sim.run();
  EXPECT_EQ(Fired, 2);
  EXPECT_EQ(Sim.now(), 10u);
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator Sim;
  int Fired = 0;
  Sim.schedule(10, [&] { ++Fired; });
  Sim.schedule(100, [&] { ++Fired; });
  Sim.runUntil(50);
  EXPECT_EQ(Fired, 1);
  EXPECT_EQ(Sim.now(), 50u);
  Sim.run();
  EXPECT_EQ(Fired, 2);
}

TEST(Simulator, StopHaltsRun) {
  Simulator Sim;
  int Fired = 0;
  Sim.schedule(1, [&] {
    ++Fired;
    Sim.stop();
  });
  Sim.schedule(2, [&] { ++Fired; });
  Sim.run();
  EXPECT_EQ(Fired, 1);
}

TEST(Machine, SingleThreadComputesSerially) {
  Simulator Sim;
  Machine M(Sim, 4);
  M.spawn("t", std::make_unique<BurstBody>(3, 100));
  Sim.run();
  EXPECT_EQ(Sim.now(), 300u);
  EXPECT_EQ(M.threadsAlive(), 0u);
}

TEST(Machine, ThreadsRunInParallelAcrossCores) {
  Simulator Sim;
  Machine M(Sim, 4);
  for (int I = 0; I < 4; ++I)
    M.spawn("t", std::make_unique<BurstBody>(1, 1000));
  Sim.run();
  // Four independent threads on four cores finish in one burst time.
  EXPECT_EQ(Sim.now(), 1000u);
  EXPECT_EQ(M.busyCoreTime(), 4000u);
}

TEST(Machine, OversubscriptionTimeSlices) {
  Simulator Sim;
  MachineConfig Cfg;
  Cfg.Quantum = 100;
  Cfg.CtxSwitchCost = 10;
  Machine M(Sim, 1, Cfg);
  M.spawn("a", std::make_unique<BurstBody>(1, 300));
  M.spawn("b", std::make_unique<BurstBody>(1, 300));
  Sim.run();
  // Work is 600 plus context-switch overhead from interleaving on 1 core.
  EXPECT_GT(Sim.now(), 600u);
  EXPECT_EQ(M.threadsAlive(), 0u);
}

TEST(Machine, SoloThreadPaysNoSwitchCost) {
  Simulator Sim;
  MachineConfig Cfg;
  Cfg.Quantum = 100;
  Cfg.CtxSwitchCost = 50;
  Machine M(Sim, 2, Cfg);
  M.spawn("solo", std::make_unique<BurstBody>(1, 1000));
  Sim.run();
  EXPECT_EQ(Sim.now(), 1000u); // 10 quanta, zero switch cost
}

TEST(Machine, ExitEventFires) {
  Simulator Sim;
  Machine M(Sim, 1);
  SimThread *T = M.spawn("t", std::make_unique<BurstBody>(1, 50));
  bool Saw = false;
  // A second thread waits for the first to finish.
  class WaiterBody : public ThreadBody {
  public:
    WaiterBody(SimThread *T, bool &Saw) : T(T), Saw(Saw) {}
    Action resume(Machine &, SimThread &) override {
      if (T->state() != ThreadState::Finished)
        return Action::block(T->exitEvent());
      Saw = true;
      return Action::finish();
    }
    SimThread *T;
    bool &Saw;
  };
  M.spawn("w", std::make_unique<WaiterBody>(T, Saw));
  Sim.run();
  EXPECT_TRUE(Saw);
}

TEST(Machine, ProducerConsumerFifoOrder) {
  Simulator Sim;
  Machine M(Sim, 2);
  BoundedQueue<int> Q(4);
  std::vector<int> Out;
  M.spawn("prod", std::make_unique<ProducerBody>(Q, 50, 10));
  M.spawn("cons", std::make_unique<ConsumerBody>(Q, 50, 25, Out));
  Sim.run();
  ASSERT_EQ(Out.size(), 50u);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(Out[I], I);
  // Consumer is the bottleneck at 25 cycles per token.
  EXPECT_GE(Sim.now(), 50u * 25u);
}

TEST(Machine, BoundedQueueBackpressure) {
  Simulator Sim;
  Machine M(Sim, 2);
  BoundedQueue<int> Q(2);
  std::vector<int> Out;
  // Fast producer, slow consumer: the queue bound must throttle.
  M.spawn("prod", std::make_unique<ProducerBody>(Q, 20, 1));
  M.spawn("cons", std::make_unique<ConsumerBody>(Q, 20, 100, Out));
  Sim.run();
  ASSERT_EQ(Out.size(), 20u);
  // Finish time dominated by consumer.
  EXPECT_GE(Sim.now(), 2000u);
}

TEST(Machine, BusyCoreTimeIntegrates) {
  Simulator Sim;
  Machine M(Sim, 2);
  M.spawn("a", std::make_unique<BurstBody>(1, 100));
  M.spawn("b", std::make_unique<BurstBody>(1, 200));
  Sim.run();
  EXPECT_EQ(M.busyCoreTime(), 300u);
}

TEST(BoundedQueue, BasicOps) {
  BoundedQueue<int> Q(2);
  EXPECT_TRUE(Q.empty());
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_TRUE(Q.full());
  EXPECT_FALSE(Q.tryPush(3));
  int V = 0;
  EXPECT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 1);
  EXPECT_EQ(Q.front(), 2);
  EXPECT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 2);
  EXPECT_FALSE(Q.tryPop(V));
}

TEST(Power, EnergyIntegration) {
  Simulator Sim;
  Machine M(Sim, 2);
  PowerModel PM;
  PM.StaticWatts = 100;
  PM.PerCoreActiveWatts = 10;
  EnergyMeter Meter(M, PM);
  // One core busy for 1 virtual second.
  M.spawn("t", std::make_unique<BurstBody>(1, Sec));
  Sim.run();
  EXPECT_NEAR(Meter.joules(), 110.0, 1e-6);
  EXPECT_NEAR(Meter.currentWatts(), 100.0, 1e-9); // idle again
}

TEST(Power, PduSamplerRate) {
  Simulator Sim;
  Machine M(Sim, 1);
  EnergyMeter Meter(M, PowerModel{});
  int Samples = 0;
  PduSampler Pdu(Sim, Meter, [&](double) { ++Samples; });
  Sim.schedule(60 * Sec, [&] { Pdu.stop(); });
  Sim.runUntil(60 * Sec);
  EXPECT_EQ(Samples, 13); // 13 samples per minute, like the AP7892
}

TEST(Power, NinetyPercentPeakIsSixtyPercentDynamic) {
  // The calibration property from Section 8.2.3.
  PowerModel PM;
  unsigned N = 24;
  double Peak = PM.peakWatts(N);
  double Idle = PM.watts(0);
  double Target = 0.9 * Peak;
  double DynFraction = (Target - Idle) / (Peak - Idle);
  EXPECT_NEAR(DynFraction, 0.6, 0.02);
}
