//===- RegionExecTest.cpp - Flexible region execution tests ----------------===//
//
// End-to-end tests of the Morta worker protocol: Algorithm 2 execution,
// the pause/drain protocol of Section 4.6, and the in-place DoP
// reconfiguration of Section 7.2 — including the semantic guarantee that
// sequential consumers observe iterations in order across DoP changes.
//
//===----------------------------------------------------------------------===//

#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/RegionExec.h"
#include "sim/Machine.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace parcae;
using namespace parcae::rt;

namespace {

/// Builds a single-task region (SEQ or DOANY) whose iterations cost
/// \p Cycles each and append their Seq to \p Order (tail observation).
RegionDesc makeSingleTaskRegion(Scheme S, sim::SimTime Cycles,
                                std::vector<std::uint64_t> *Order = nullptr) {
  RegionDesc D;
  D.Name = "single";
  D.S = S;
  TaskType T = S == Scheme::Seq ? TaskType::Seq : TaskType::Par;
  D.Tasks.emplace_back("work", T, [Cycles, Order](IterationContext &Ctx) {
    Ctx.Cost = Cycles;
    if (Order)
      Order->push_back(Ctx.Seq);
  });
  return D;
}

/// Builds a 3-stage S->P->S pipeline; the parallel middle stage costs
/// \p MidCycles, the sequential ends \p EndCycles. The tail records the
/// order in which it consumes iterations into \p TailOrder.
RegionDesc makePipelineRegion(sim::SimTime MidCycles, sim::SimTime EndCycles,
                              std::vector<std::int64_t> *TailOrder) {
  RegionDesc D;
  D.Name = "pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("produce", TaskType::Seq,
                       [EndCycles](IterationContext &Ctx) {
                         Ctx.Cost = EndCycles;
                         Ctx.Out[0].Value = static_cast<std::int64_t>(Ctx.Seq);
                       });
  D.Tasks.emplace_back("transform", TaskType::Par,
                       [MidCycles](IterationContext &Ctx) {
                         Ctx.Cost = MidCycles;
                         Ctx.Out[0].Value = Ctx.In[0].Value * 2;
                       });
  D.Tasks.emplace_back("consume", TaskType::Seq,
                       [EndCycles, TailOrder](IterationContext &Ctx) {
                         Ctx.Cost = EndCycles;
                         if (TailOrder)
                           TailOrder->push_back(Ctx.In[0].Value);
                       });
  D.Links.push_back({0, 1});
  D.Links.push_back({1, 2});
  return D;
}

struct Harness {
  sim::Simulator Sim;
  sim::Machine M;
  RuntimeCosts Costs;

  explicit Harness(unsigned Cores) : M(Sim, Cores) {}
};

} // namespace

TEST(RegionExec, SequentialRegionCompletes) {
  Harness H(4);
  CountedWorkSource Src(100);
  std::vector<std::uint64_t> Order;
  RegionDesc D = makeSingleTaskRegion(Scheme::Seq, 1000, &Order);
  RegionExec R(H.M, H.Costs, D, Src, RegionConfig{Scheme::Seq, {1}});
  bool Done = false;
  R.OnComplete = [&] { Done = true; };
  R.start();
  H.Sim.run();
  EXPECT_TRUE(Done);
  EXPECT_TRUE(R.completed());
  EXPECT_EQ(R.iterationsRetired(), 100u);
  ASSERT_EQ(Order.size(), 100u);
  for (std::uint64_t I = 0; I < 100; ++I)
    EXPECT_EQ(Order[I], I);
  // At least the raw compute time must have elapsed.
  EXPECT_GE(H.Sim.now(), 100u * 1000u);
}

TEST(RegionExec, DoAnySpeedsUpWithDoP) {
  sim::SimTime T1 = 0, T4 = 0;
  for (unsigned DoP : {1u, 4u}) {
    Harness H(8);
    CountedWorkSource Src(200);
    RegionDesc D = makeSingleTaskRegion(Scheme::DoAny, 50000);
    RegionExec R(H.M, H.Costs, D, Src,
                 RegionConfig{Scheme::DoAny, {DoP}});
    R.start();
    H.Sim.run();
    EXPECT_EQ(R.iterationsRetired(), 200u);
    (DoP == 1 ? T1 : T4) = H.Sim.now();
  }
  double Speedup = static_cast<double>(T1) / static_cast<double>(T4);
  EXPECT_GT(Speedup, 3.5);
  EXPECT_LE(Speedup, 4.1);
}

TEST(RegionExec, PipelineProducesInOrder) {
  Harness H(8);
  CountedWorkSource Src(300);
  std::vector<std::int64_t> TailOrder;
  RegionDesc D = makePipelineRegion(20000, 2000, &TailOrder);
  RegionExec R(H.M, H.Costs, D, Src,
               RegionConfig{Scheme::PsDswp, {1, 4, 1}});
  R.start();
  H.Sim.run();
  EXPECT_TRUE(R.completed());
  ASSERT_EQ(TailOrder.size(), 300u);
  for (std::int64_t I = 0; I < 300; ++I)
    EXPECT_EQ(TailOrder[I], I * 2);
}

TEST(RegionExec, PipelineParallelStageScales) {
  // With the middle stage 8x the weight of the ends, DoP 4 on the middle
  // should give close to 4x over DoP 1.
  sim::SimTime T1 = 0, T4 = 0;
  for (unsigned Mid : {1u, 4u}) {
    Harness H(8);
    CountedWorkSource Src(400);
    RegionDesc D = makePipelineRegion(40000, 3000, nullptr);
    RegionExec R(H.M, H.Costs, D, Src,
                 RegionConfig{Scheme::PsDswp, {1, Mid, 1}});
    R.start();
    H.Sim.run();
    EXPECT_TRUE(R.completed());
    (Mid == 1 ? T1 : T4) = H.Sim.now();
  }
  double Speedup = static_cast<double>(T1) / static_cast<double>(T4);
  EXPECT_GT(Speedup, 3.0);
}

TEST(RegionExec, PauseDrainsAndStopsAtBound) {
  Harness H(8);
  CountedWorkSource Src(1000);
  std::vector<std::int64_t> TailOrder;
  RegionDesc D = makePipelineRegion(20000, 2000, &TailOrder);
  RegionExec R(H.M, H.Costs, D, Src,
               RegionConfig{Scheme::PsDswp, {1, 4, 1}});
  bool Quiescent = false;
  R.OnQuiescent = [&] { Quiescent = true; };
  R.start();
  H.Sim.schedule(2 * sim::MSec, [&] { R.requestPause(); });
  H.Sim.run();
  EXPECT_TRUE(Quiescent);
  EXPECT_FALSE(R.completed());
  std::uint64_t Bound = R.nextSeq();
  EXPECT_GT(Bound, 0u);
  EXPECT_LT(Bound, 1000u);
  // Drain property: exactly the claimed iterations retire, in order.
  ASSERT_EQ(TailOrder.size(), Bound);
  for (std::uint64_t I = 0; I < Bound; ++I)
    EXPECT_EQ(TailOrder[I], static_cast<std::int64_t>(I) * 2);
}

TEST(RegionExec, ResumeAfterPauseFinishesAllWork) {
  Harness H(8);
  CountedWorkSource Src(500);
  std::vector<std::int64_t> TailOrder;
  RegionDesc D = makePipelineRegion(20000, 2000, &TailOrder);
  auto First = std::make_unique<RegionExec>(
      H.M, H.Costs, D, Src, RegionConfig{Scheme::PsDswp, {1, 4, 1}});
  std::unique_ptr<RegionExec> Second;
  First->OnQuiescent = [&] {
    // Resume with a different DoP, continuing the iteration space.
    Second = std::make_unique<RegionExec>(
        H.M, H.Costs, D, Src, RegionConfig{Scheme::PsDswp, {1, 2, 1}},
        First->nextSeq());
    Second->start();
  };
  First->start();
  H.Sim.schedule(1 * sim::MSec, [&] { First->requestPause(); });
  H.Sim.run();
  ASSERT_TRUE(Second) << "pause arrived after the region completed";
  EXPECT_TRUE(Second->completed());
  ASSERT_EQ(TailOrder.size(), 500u);
  for (std::int64_t I = 0; I < 500; ++I)
    EXPECT_EQ(TailOrder[I], I * 2);
}

TEST(RegionExec, InPlaceDoPIncreasePreservesOrder) {
  Harness H(16);
  CountedWorkSource Src(600);
  std::vector<std::int64_t> TailOrder;
  RegionDesc D = makePipelineRegion(20000, 1000, &TailOrder);
  RegionExec R(H.M, H.Costs, D, Src,
               RegionConfig{Scheme::PsDswp, {1, 2, 1}});
  R.start();
  H.Sim.schedule(2 * sim::MSec, [&] { R.reconfigureInPlace({1, 6, 1}); });
  H.Sim.run();
  EXPECT_TRUE(R.completed());
  EXPECT_EQ(R.config().DoP[1], 6u);
  ASSERT_EQ(TailOrder.size(), 600u);
  for (std::int64_t I = 0; I < 600; ++I)
    EXPECT_EQ(TailOrder[I], I * 2) << "out-of-order at " << I;
}

TEST(RegionExec, InPlaceDoPDecreaseRetiresSlots) {
  Harness H(16);
  CountedWorkSource Src(600);
  std::vector<std::int64_t> TailOrder;
  RegionDesc D = makePipelineRegion(20000, 1000, &TailOrder);
  RegionExec R(H.M, H.Costs, D, Src,
               RegionConfig{Scheme::PsDswp, {1, 6, 1}});
  R.start();
  H.Sim.schedule(2 * sim::MSec, [&] { R.reconfigureInPlace({1, 2, 1}); });
  H.Sim.run();
  EXPECT_TRUE(R.completed());
  ASSERT_EQ(TailOrder.size(), 600u);
  for (std::int64_t I = 0; I < 600; ++I)
    EXPECT_EQ(TailOrder[I], I * 2);
}

TEST(RegionExec, ManyRandomInPlaceReconfigsPreserveSemantics) {
  // Property test: arbitrary DoP schedules never reorder, duplicate, or
  // drop iterations (the guarantee Figure 7.5's naive scheme violates).
  Rng R0(1234);
  for (int Trial = 0; Trial < 5; ++Trial) {
    Harness H(16);
    CountedWorkSource Src(800);
    std::vector<std::int64_t> TailOrder;
    RegionDesc D = makePipelineRegion(15000, 800, &TailOrder);
    RegionExec R(H.M, H.Costs, D, Src,
                 RegionConfig{Scheme::PsDswp, {1, 3, 1}});
    R.start();
    for (int K = 1; K <= 8; ++K) {
      unsigned NewDoP = 1 + static_cast<unsigned>(R0.nextBelow(8));
      H.Sim.schedule(static_cast<sim::SimTime>(K) * sim::MSec, [&R, NewDoP] {
        if (!R.completed())
          R.reconfigureInPlace({1, NewDoP, 1});
      });
    }
    H.Sim.run();
    EXPECT_TRUE(R.completed());
    ASSERT_EQ(TailOrder.size(), 800u);
    for (std::int64_t I = 0; I < 800; ++I)
      ASSERT_EQ(TailOrder[I], I * 2) << "trial " << Trial;
  }
}

TEST(RegionExec, CriticalSectionsSerialize) {
  Harness H(8);
  CountedWorkSource Src(100);
  RegionDesc D;
  D.Name = "crit";
  D.S = Scheme::DoAny;
  D.Tasks.emplace_back("work", TaskType::Par, [](IterationContext &Ctx) {
    Ctx.Cost = 100;
    Ctx.Criticals.push_back({7, 10000});
  });
  RegionExec R(H.M, H.Costs, D, Src, RegionConfig{Scheme::DoAny, {8}});
  R.start();
  H.Sim.run();
  EXPECT_TRUE(R.completed());
  // The critical section is the serial bottleneck: 100 * 10000 cycles.
  EXPECT_GE(H.Sim.now(), 100u * 10000u);
}

TEST(RegionExec, ReductionPrivatizationRemovesSerialization) {
  auto RunWith = [&](bool Privatized) {
    Harness H(8);
    H.Costs.PrivatizedReductions = Privatized;
    CountedWorkSource Src(200);
    RegionDesc D;
    D.Name = "red";
    D.S = Scheme::DoAny;
    Task T("sum", TaskType::Par,
           [](IterationContext &Ctx) { Ctx.Cost = 5000; });
    T.Reduction = CriticalSection{1, 4000};
    D.Tasks.push_back(std::move(T));
    RegionExec R(H.M, H.Costs, D, Src, RegionConfig{Scheme::DoAny, {8}});
    R.start();
    H.Sim.run();
    EXPECT_TRUE(R.completed());
    return H.Sim.now();
  };
  sim::SimTime WithLock = RunWith(false);
  sim::SimTime WithPriv = RunWith(true);
  EXPECT_LT(WithPriv, WithLock);
  // Unprivatized: the 4000-cycle reduction serializes all 200 iterations.
  EXPECT_GE(WithLock, 200u * 4000u);
}

TEST(RegionExec, QueueSourceServerFlow) {
  Harness H(4);
  QueueWorkSource Src;
  std::vector<std::uint64_t> Order;
  RegionDesc D = makeSingleTaskRegion(Scheme::DoAny, 30000, &Order);
  RegionExec R(H.M, H.Costs, D, Src, RegionConfig{Scheme::DoAny, {2}});
  R.start();
  // Items arrive over time; the region blocks in between and completes
  // when the queue closes.
  for (int I = 0; I < 20; ++I)
    H.Sim.schedule(static_cast<sim::SimTime>(I) * 100 * sim::USec,
                   [&Src] { Src.push(Token{}); });
  H.Sim.schedule(3 * sim::MSec, [&Src] { Src.close(); });
  H.Sim.run();
  EXPECT_TRUE(R.completed());
  EXPECT_EQ(R.iterationsRetired(), 20u);
}

TEST(RegionExec, StatsAccumulate) {
  Harness H(4);
  CountedWorkSource Src(50);
  RegionDesc D = makeSingleTaskRegion(Scheme::Seq, 1000);
  RegionExec R(H.M, H.Costs, D, Src, RegionConfig{Scheme::Seq, {1}});
  R.start();
  H.Sim.run();
  EXPECT_EQ(R.stats(0).Iterations, 50u);
  EXPECT_EQ(R.stats(0).ComputeTime, 50u * 1000u);
}

TEST(RegionExec, LoadOfReportsQueueOccupancy) {
  Harness H(4);
  QueueWorkSource Src;
  for (int I = 0; I < 7; ++I)
    Src.push(Token{});
  RegionDesc D = makeSingleTaskRegion(Scheme::DoAny, 1000);
  RegionExec R(H.M, H.Costs, D, Src, RegionConfig{Scheme::DoAny, {1}});
  // Before starting, the head's load is the queue occupancy.
  EXPECT_DOUBLE_EQ(R.loadOf(0), 7.0);
}
