//===- NonaTest.cpp - Nona compiler tests ------------------------------------===//
//
// Tests the Chapter 4 compiler stack: IR structure, post-dominance and
// control dependence, PDG construction with relaxations, SCC
// condensation, DOANY applicability, PS-DSWP coalescing (Invariant
// 4.3.1), and — most importantly — semantic equivalence: the parallel
// executions produce exactly the memory and reduction results of the
// sequential reference interpretation, under every scheme and under
// random reconfiguration schedules.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"
#include "nona/Programs.h"
#include "nona/Run.h"

#include <gtest/gtest.h>

using namespace parcae;
using namespace parcae::ir;
namespace rt = parcae::rt;

namespace {

/// Default DoP-1 config for a scheme of a compiled loop.
rt::RegionConfig configFor(CompiledLoop &CL, rt::Scheme S,
                           unsigned ParDoP) {
  rt::RegionConfig C;
  C.S = S;
  for (const rt::Task &T : CL.region().variant(S).Tasks)
    C.DoP.push_back(T.isParallel() ? ParDoP : 1);
  return C;
}

} // namespace

TEST(IrTest, VecsumVerifiesAndPrints) {
  LoopProgram P = makeVecsum(10);
  P.F->verify();
  std::string S = P.F->print();
  EXPECT_NE(S.find("phi"), std::string::npos);
  EXPECT_NE(S.find("condbr"), std::string::npos);
}

TEST(IrTest, AllProgramsVerify) {
  for (auto &Make : benchmarkSuite(16))
    Make().F->verify();
}

TEST(PostDominatorsTest, BranchyDiamond) {
  LoopProgram P = makeBranchy(8);
  const Function &F = *P.F;
  const BasicBlock *Header = F.TheLoop.Header;
  const BasicBlock *Then = Header->Succs[0];
  const BasicBlock *Else = Header->Succs[1];
  const BasicBlock *Join = Then->Succs[0];
  const BasicBlock *Sink = F.TheLoop.Exit;
  PostDominators PD(F, Sink);
  EXPECT_EQ(PD.ipdom(Then), Join);
  EXPECT_EQ(PD.ipdom(Else), Join);
  EXPECT_TRUE(PD.postDominates(Join, Header));
  EXPECT_FALSE(PD.postDominates(Then, Header));
  auto Deps = PD.controlDependents(Header);
  EXPECT_NE(std::find(Deps.begin(), Deps.end(), Then), Deps.end());
  EXPECT_NE(std::find(Deps.begin(), Deps.end(), Else), Deps.end());
  EXPECT_EQ(std::find(Deps.begin(), Deps.end(), Join), Deps.end());
}

TEST(PdgTest, VecsumRecognizesInductionAndReduction) {
  LoopProgram P = makeVecsum(10);
  PDG G(*P.F, P.AA);
  ASSERT_EQ(G.recurrences().size(), 2u);
  unsigned Inductions = 0, Reductions = 0;
  for (const RecurrenceInfo &R : G.recurrences())
    (R.IsInduction ? Inductions : Reductions)++;
  EXPECT_EQ(Inductions, 1u);
  EXPECT_EQ(Reductions, 1u);
  // Everything carried is removable: no inhibitors.
  EXPECT_TRUE(G.inhibitors().empty());
}

TEST(PdgTest, ChaseHasSequentialTraversalScc) {
  LoopProgram P = makeChase(10);
  PDG G(*P.F, P.AA);
  EXPECT_FALSE(G.inhibitors().empty()) << "pointer chase must inhibit DOANY";
  bool FoundSeqScc = false;
  for (const PDG::SCC &S : G.sccs())
    if (S.Sequential && S.InstIds.size() >= 2)
      FoundSeqScc = true;
  EXPECT_TRUE(FoundSeqScc);
}

TEST(PdgTest, CommutativeAnnotationRelaxesHistogram) {
  LoopProgram P = makeHistogram(10, 8);
  PDG G(*P.F, P.AA);
  EXPECT_TRUE(G.inhibitors().empty())
      << "commutative bin updates must not inhibit parallelism";
  bool SawCommutativeCarried = false;
  for (const PDGEdge &E : G.edges())
    if (E.LoopCarried && E.Relaxation == Relax::Commutative)
      SawCommutativeCarried = true;
  EXPECT_TRUE(SawCommutativeCarried);
}

TEST(PdgTest, SharedWithoutAnnotationInhibits) {
  // Strip the commutative annotations off histogram: DOANY must reject.
  LoopProgram P = makeHistogram(10, 8);
  for (auto &B : P.F->blocks())
    for (auto &I : B->Insts)
      I->Commutative = false;
  PDG G(*P.F, P.AA);
  EXPECT_FALSE(G.inhibitors().empty());
}

TEST(PdgTest, CountedLoopControlIsRemovable) {
  LoopProgram P = makeSaxpy(10);
  PDG G(*P.F, P.AA);
  for (const PDGEdge &E : G.edges()) {
    if (E.Kind == DepKind::Control && E.LoopCarried) {
      EXPECT_TRUE(E.removable()) << "counted-loop control must relax";
    }
  }
}

TEST(PartitionTest, InvariantHoldsOnAllPrograms) {
  for (auto &Make : benchmarkSuite(16)) {
    LoopProgram P = Make();
    PDG G(*P.F, P.AA);
    CompilerOptions Opt;
    PartitionPlan Plan = psdswpPartition(G, Opt);
    std::string Why;
    EXPECT_TRUE(checkCoalescenceInvariant(G, Plan, &Why))
        << P.Name << ": " << Why;
  }
}

TEST(PartitionTest, ChasePipelineShape) {
  LoopProgram P = makeChase(10);
  PDG G(*P.F, P.AA);
  PartitionPlan Plan = psdswpPartition(G, CompilerOptions{});
  // Expect a pipeline with at least one sequential (traversal) task and
  // one parallel (payload) task.
  bool AnySeq = false, AnyPar = false;
  for (const TaskPlan &T : Plan.Tasks) {
    AnySeq |= !T.Parallel;
    AnyPar |= T.Parallel;
  }
  EXPECT_TRUE(AnySeq);
  EXPECT_TRUE(AnyPar);
  EXPECT_GE(Plan.Tasks.size(), 2u);
}

TEST(CompileTest, VariantsMatchAnalysis) {
  struct Expect {
    const char *Name;
    bool DoAny;
    bool PsDswp;
  };
  // Pure DOALL loops (vecsum, montecarlo) degenerate to a single
  // parallel task under PS-DSWP, so no pipeline variant is emitted;
  // seqchain pipelines its (tiny) store stage behind the serial chain —
  // structurally valid, and the run-time controller rejects it as
  // unprofitable.
  const Expect Cases[] = {
      {"vecsum", true, false},   {"saxpy", true, true},
      {"histogram", true, true}, {"montecarlo", true, false},
      {"chase", false, true},    {"branchy", true, true},
      {"seqchain", false, true}, {"minmax", true, false},
      {"dualpipe", false, true},
  };
  auto Suite = benchmarkSuite(16);
  for (std::size_t I = 0; I < Suite.size(); ++I) {
    LoopProgram P = Suite[I]();
    CompiledLoop CL(*P.F, P.AA, P.TripCount);
    EXPECT_EQ(CL.hasDoAny(), Cases[I].DoAny) << P.Name << "\n"
                                             << CL.report();
    EXPECT_EQ(CL.hasPsDswp(), Cases[I].PsDswp) << P.Name << "\n"
                                               << CL.report();
  }
}

TEST(CompileTest, ReportMentionsStructure) {
  LoopProgram P = makeChase(16);
  CompiledLoop CL(*P.F, P.AA, P.TripCount);
  std::string R = CL.report();
  EXPECT_NE(R.find("PDG"), std::string::npos);
  EXPECT_NE(R.find("PS-DSWP"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Semantic equivalence
//===----------------------------------------------------------------------===//

namespace {

/// Runs one program under every variant and a chaotic schedule, checking
/// memory and reduction results against the sequential reference.
void checkSemantics(const std::function<LoopProgram()> &Make) {
  LoopProgram Ref = Make();
  std::map<unsigned, std::int64_t> RefReds;
  Memory RefMem = CompiledLoop::interpret(*Ref.F, Ref.TripCount, &RefReds);

  LoopProgram P = Make();
  CompiledLoop CL(*P.F, P.AA, P.TripCount);

  auto Check = [&](const char *What) {
    EXPECT_TRUE(CL.memory() == RefMem) << P.Name << " memory under " << What;
    for (unsigned Phi : P.ReductionPhis)
      EXPECT_EQ(CL.reductionValue(Phi), RefReds.at(Phi))
          << P.Name << " reduction under " << What;
  };

  // SEQ on the simulator.
  CompiledRunResult R =
      runCompiled(CL, configFor(CL, rt::Scheme::Seq, 1), 8);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Retired, Ref.TripCount);
  Check("SEQ");

  if (CL.hasDoAny()) {
    R = runCompiled(CL, configFor(CL, rt::Scheme::DoAny, 6), 8);
    EXPECT_TRUE(R.Completed);
    Check("DOANY");
  }
  if (CL.hasPsDswp()) {
    R = runCompiled(CL, configFor(CL, rt::Scheme::PsDswp, 4), 8);
    EXPECT_TRUE(R.Completed);
    Check("PS-DSWP");
  }
  // Chaos: random DoP changes and scheme switches mid-run.
  R = runCompiledChaotic(CL, 8, /*Seed=*/0xC0FFEE);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Retired, Ref.TripCount);
  Check("chaotic reconfiguration");
}

} // namespace

TEST(SemanticsTest, Vecsum) {
  checkSemantics([] { return makeVecsum(300); });
}
TEST(SemanticsTest, Saxpy) {
  checkSemantics([] { return makeSaxpy(300); });
}
TEST(SemanticsTest, Histogram) {
  checkSemantics([] { return makeHistogram(300, 16); });
}
TEST(SemanticsTest, MonteCarlo) {
  checkSemantics([] { return makeMonteCarlo(300); });
}
TEST(SemanticsTest, Chase) {
  checkSemantics([] { return makeChase(300); });
}
TEST(SemanticsTest, Branchy) {
  checkSemantics([] { return makeBranchy(300); });
}
TEST(SemanticsTest, Seqchain) {
  checkSemantics([] { return makeSeqchain(300); });
}
TEST(SemanticsTest, MinMax) {
  checkSemantics([] { return makeMinMax(300); });
}
TEST(SemanticsTest, DualPipe) {
  checkSemantics([] { return makeDualPipe(300); });
}

//===----------------------------------------------------------------------===//
// Performance shape
//===----------------------------------------------------------------------===//

TEST(CompiledPerf, DoAnyScalesMonteCarlo) {
  LoopProgram P = makeMonteCarlo(800);
  CompiledLoop CL(*P.F, P.AA, P.TripCount);
  auto T1 = runCompiled(CL, configFor(CL, rt::Scheme::DoAny, 1), 8);
  auto T6 = runCompiled(CL, configFor(CL, rt::Scheme::DoAny, 6), 8);
  double Speedup =
      static_cast<double>(T1.Time) / static_cast<double>(T6.Time);
  EXPECT_GT(Speedup, 4.0) << CL.report();
}

TEST(PartitionTest, DualPipeIsANetwork) {
  // The Figure 7.7 shape: at least two sequential and two parallel
  // stages, in alternating pipeline order.
  LoopProgram P = makeDualPipe(16);
  PDG G(*P.F, P.AA);
  PartitionPlan Plan = psdswpPartition(G, CompilerOptions{});
  unsigned Seq = 0, Par = 0;
  for (const TaskPlan &T : Plan.Tasks)
    (T.Parallel ? Par : Seq)++;
  EXPECT_GE(Seq, 2u) << "two carried chains -> two sequential stages";
  EXPECT_GE(Par, 1u);
  EXPECT_GE(Plan.Tasks.size(), 3u);
}

TEST(CompiledPerf, MinMaxReductionsMergeCorrectly) {
  LoopProgram P = makeMinMax(500);
  CompiledLoop CL(*P.F, P.AA, P.TripCount);
  std::map<unsigned, std::int64_t> Reds;
  LoopProgram Ref = makeMinMax(500);
  CompiledLoop::interpret(*Ref.F, Ref.TripCount, &Reds);
  runCompiled(CL, configFor(CL, rt::Scheme::DoAny, 7), 8);
  for (unsigned Phi : P.ReductionPhis)
    EXPECT_EQ(CL.reductionValue(Phi), Reds.at(Phi));
  // Sanity: lo <= hi and both came from real data.
  EXPECT_LT(CL.reductionValue(P.ReductionPhis[0]),
            CL.reductionValue(P.ReductionPhis[1]));
}

TEST(CompiledPerf, PipelineSpeedsUpChase) {
  LoopProgram P = makeChase(600);
  CompiledLoop CL(*P.F, P.AA, P.TripCount);
  auto Seq = runCompiled(CL, configFor(CL, rt::Scheme::Seq, 1), 8);
  auto Pipe = runCompiled(CL, configFor(CL, rt::Scheme::PsDswp, 5), 8);
  double Speedup =
      static_cast<double>(Seq.Time) / static_cast<double>(Pipe.Time);
  EXPECT_GT(Speedup, 2.5) << CL.report();
}

TEST(CompiledPerf, ControllerPicksParallelScheme) {
  LoopProgram P = makeMonteCarlo(30000);
  CompiledLoop CL(*P.F, P.AA, P.TripCount);
  ControlledRunResult R = runControlled(CL, 8);
  EXPECT_TRUE(R.Completed);
  EXPECT_NE(R.Final.S, rt::Scheme::Seq);
  EXPECT_GT(R.BestThroughput, R.SeqThroughput * 2);
}

TEST(CompiledPerf, ControllerKeepsSeqForSeqchain) {
  LoopProgram P = makeSeqchain(20000);
  CompiledLoop CL(*P.F, P.AA, P.TripCount);
  ControlledRunResult R = runControlled(CL, 8);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Final.S, rt::Scheme::Seq);
}
