//===- CheckpointTest.cpp - Region checkpoint, restore, and migration ------===//
//
// Tests of the checkpoint subsystem: the versioned snapshot format
// (round trips, rejection of malformed input), the runner's cooperative
// quiesce and resume, the controller's cross-machine restore (no
// re-measurement, exactly-once output), the proactive drain off a doomed
// core set, and the bounded rewind history behind it all.
//
//===----------------------------------------------------------------------===//

#include "checkpoint/Snapshot.h"
#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/Controller.h"
#include "morta/RegionRunner.h"
#include "sim/Faults.h"

#include <gtest/gtest.h>

#include <vector>

using namespace parcae;
using namespace parcae::rt;

namespace {

FlexibleRegion makeSPS(std::vector<std::int64_t> *Tail = nullptr) {
  FlexibleRegion R("ckpt");
  RegionDesc D;
  D.Name = "ckpt-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("a", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 1000;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  D.Tasks.emplace_back("b", TaskType::Par, [](IterationContext &C) {
    C.Cost = 9000;
    C.Out[0].Value = C.In[0].Value;
  });
  D.Tasks.emplace_back("c", TaskType::Seq, [Tail](IterationContext &C) {
    C.Cost = 800;
    if (Tail)
      Tail->push_back(C.In[0].Value);
  });
  D.Links.push_back({0, 1});
  D.Links.push_back({1, 2});
  R.addVariant(std::move(D));
  {
    RegionDesc S;
    S.Name = "ckpt-seq";
    S.S = Scheme::Seq;
    S.Tasks.emplace_back("all", TaskType::Seq, [Tail](IterationContext &C) {
      C.Cost = 10800;
      if (Tail)
        Tail->push_back(static_cast<std::int64_t>(C.Seq));
    });
    R.addVariant(std::move(S));
  }
  return R;
}

/// A populated snapshot exercising every serialized field.
ckpt::RegionSnapshot makeSnapshot() {
  ckpt::RegionSnapshot S;
  S.Region = "ckpt";
  S.Cursor = 1234;
  S.Retired = 1234;
  S.ChunkK = 8;
  S.Config = {Scheme::PsDswp, {1, 5, 1}};
  S.Ctrl.SeqThroughput = 92592.592592592594; // a non-round double
  S.Ctrl.Best = {Scheme::PsDswp, {1, 6, 1}};
  S.Ctrl.BestThr = 612244.89795918367;
  S.Ctrl.Cache.push_back({8, {Scheme::PsDswp, {1, 6, 1}}, 612244.9, false});
  S.Ctrl.Cache.push_back({4, {Scheme::PsDswp, {1, 2, 1}}, 201000.0, true});
  S.Source.K = WorkSourceState::Kind::Counted;
  S.Source.Total = 20000;
  S.Source.Cursor = 1234;
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Snapshot format
//===----------------------------------------------------------------------===//

TEST(Checkpoint, SnapshotRoundTripIsByteIdentical) {
  ckpt::RegionSnapshot S = makeSnapshot();
  std::string Text = S.serialize();
  ckpt::RegionSnapshot Out;
  ASSERT_TRUE(ckpt::RegionSnapshot::deserialize(Text, Out));
  // serialize(deserialize(x)) == x: the byte-stability the determinism
  // sweep relies on, including %.17g doubles.
  EXPECT_EQ(Out.serialize(), Text);
  EXPECT_EQ(Out.Region, "ckpt");
  EXPECT_EQ(Out.Cursor, 1234u);
  EXPECT_EQ(Out.ChunkK, 8u);
  EXPECT_EQ(Out.Config.S, Scheme::PsDswp);
  EXPECT_EQ(Out.Config.DoP, (std::vector<unsigned>{1, 5, 1}));
  EXPECT_DOUBLE_EQ(Out.Ctrl.SeqThroughput, S.Ctrl.SeqThroughput);
  ASSERT_EQ(Out.Ctrl.Cache.size(), 2u);
  EXPECT_EQ(Out.Ctrl.Cache[1].Budget, 4u);
  EXPECT_TRUE(Out.Ctrl.Cache[1].Limited);
}

TEST(Checkpoint, QueueSourceSnapshotCarriesPendingTail) {
  ckpt::RegionSnapshot S = makeSnapshot();
  S.Source = WorkSourceState{};
  S.Source.K = WorkSourceState::Kind::Queue;
  S.Source.Total = 10;
  S.Source.Cursor = 7;
  S.Source.Closed = true;
  for (std::int64_t V = 7; V < 10; ++V) {
    Token T;
    T.Seq = static_cast<std::uint64_t>(V);
    T.Value = 100 + V;
    T.Work = 5000;
    S.Source.Pending.push_back(T);
  }
  std::string Text = S.serialize();
  ckpt::RegionSnapshot Out;
  ASSERT_TRUE(ckpt::RegionSnapshot::deserialize(Text, Out));
  EXPECT_EQ(Out.serialize(), Text);
  ASSERT_EQ(Out.Source.Pending.size(), 3u);
  EXPECT_TRUE(Out.Source.Closed);
  EXPECT_EQ(Out.Source.Pending[2].Value, 109);
  EXPECT_EQ(Out.Source.Pending[2].Work, 5000u);

  // And the restored tail replays into a fresh queue source.
  QueueWorkSource Q;
  ASSERT_TRUE(Q.restoreState(Out.Source));
  EXPECT_EQ(Q.accepted(), 10u);
  EXPECT_EQ(Q.size(), 3u);
  EXPECT_TRUE(Q.closed());
  Token Got;
  ASSERT_EQ(Q.tryPull(Got), WorkSource::Pull::Got);
  EXPECT_EQ(Got.Value, 107);
}

TEST(Checkpoint, DeserializeRejectsMalformedInput) {
  std::string Good = makeSnapshot().serialize();
  ckpt::RegionSnapshot Out;

  // Unknown version.
  std::string Bad = Good;
  Bad.replace(Bad.find(" v1"), 3, " v9");
  EXPECT_FALSE(ckpt::RegionSnapshot::deserialize(Bad, Out));

  // Truncation: every prefix must be refused, not half-parsed.
  EXPECT_FALSE(ckpt::RegionSnapshot::deserialize("", Out));
  EXPECT_FALSE(
      ckpt::RegionSnapshot::deserialize(Good.substr(0, Good.size() / 2), Out));
  EXPECT_FALSE(ckpt::RegionSnapshot::deserialize(
      Good.substr(0, Good.rfind("end")), Out));

  // A zero DoP entry is never a legal width schedule.
  Bad = Good;
  Bad.replace(Bad.find("config 2 3 1 5 1"), 16, "config 2 3 1 0 1");
  EXPECT_FALSE(ckpt::RegionSnapshot::deserialize(Bad, Out));

  // A chunk size of zero cannot be re-seeded.
  Bad = Good;
  Bad.replace(Bad.find("chunk_k 8"), 9, "chunk_k 0");
  EXPECT_FALSE(ckpt::RegionSnapshot::deserialize(Bad, Out));
}

//===----------------------------------------------------------------------===//
// Runner quiesce / resume
//===----------------------------------------------------------------------===//

TEST(Checkpoint, RunnerCheckpointSuspendsAndResumesExactlyOnce) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(3000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 3, 1};
  Runner.start(C);

  RunnerCheckpoint CP;
  bool Fired = false;
  Sim.schedule(2 * sim::MSec, [&] {
    ASSERT_TRUE(Runner.requestCheckpoint([&](const RunnerCheckpoint *P) {
      ASSERT_NE(P, nullptr);
      CP = *P;
      Fired = true;
    }));
    // Only one checkpoint may be pending at a time.
    EXPECT_FALSE(Runner.requestCheckpoint([](const RunnerCheckpoint *) {}));
  });
  Sim.runUntil(10 * sim::MSec);

  ASSERT_TRUE(Fired);
  EXPECT_TRUE(Runner.suspended());
  EXPECT_FALSE(Runner.completed());
  EXPECT_EQ(Runner.checkpoints(), 1u);
  // Quiesced: the cursor is the commit frontier — everything below it
  // retired, in order, and nothing above it ran.
  EXPECT_EQ(CP.Cursor, CP.Retired);
  EXPECT_EQ(CP.Cursor, Runner.totalRetired());
  ASSERT_EQ(Tail.size(), CP.Cursor);
  EXPECT_GT(CP.Cursor, 0u);
  EXPECT_LT(CP.Cursor, 3000u);

  // While suspended the region holds no execution and makes no progress.
  std::uint64_t AtSuspend = Runner.totalRetired();
  Sim.runUntil(15 * sim::MSec);
  EXPECT_EQ(Runner.totalRetired(), AtSuspend);

  Runner.resume(CP.Config, CP.Cursor);
  Sim.runUntil(sim::Sec);
  EXPECT_TRUE(Runner.completed());
  ASSERT_EQ(Tail.size(), 3000u);
  for (std::int64_t I = 0; I < 3000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

TEST(Checkpoint, RequestAfterCompletionIsRefused) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  RuntimeCosts Costs;
  CountedWorkSource Src(50);
  FlexibleRegion Region = makeSPS();
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 2, 1};
  Runner.start(C);
  Sim.run();
  ASSERT_TRUE(Runner.completed());
  EXPECT_FALSE(Runner.requestCheckpoint([](const RunnerCheckpoint *) {
    FAIL() << "callback must not fire on a refused request";
  }));
}

TEST(Checkpoint, CompletionDuringQuiesceReportsNothingToMigrate) {
  // The pause bound can land past the last iteration: the region then
  // completes instead of suspending, and Done reports nullptr.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(40);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 2, 1};
  Runner.start(C);
  bool SawNull = false;
  // Request once only a handful of iterations remain: the head has then
  // observed the source's End, so the pause bound covers the whole space
  // and the region completes instead of suspending. Poll for the moment
  // (backpressure paces the head, so a fixed time would race).
  std::function<void()> Poll = [&] {
    if (Runner.completed()) {
      ADD_FAILURE() << "region finished before a request landed";
      return;
    }
    if (Runner.totalRetired() >= 36) {
      ASSERT_TRUE(Runner.requestCheckpoint([&](const RunnerCheckpoint *P) {
        EXPECT_EQ(P, nullptr);
        SawNull = true;
      }));
      return;
    }
    Sim.schedule(5 * sim::USec, Poll);
  };
  Sim.schedule(5 * sim::USec, Poll);
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_FALSE(Runner.suspended());
  EXPECT_TRUE(SawNull);
  EXPECT_EQ(Tail.size(), 40u);
}

//===----------------------------------------------------------------------===//
// Controller checkpoint / cross-machine restore
//===----------------------------------------------------------------------===//

TEST(Checkpoint, CrossMachineRestoreIsExactlyOnceAndMonitorOnly) {
  // Reference: one uninterrupted run.
  std::vector<std::int64_t> Reference;
  {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    RuntimeCosts Costs;
    CountedWorkSource Src(8000);
    FlexibleRegion Region = makeSPS(&Reference);
    RegionRunner Runner(M, Costs, Region, Src);
    RegionController Ctrl(Runner);
    Ctrl.start(8);
    Sim.runUntil(2 * sim::Sec);
    ASSERT_TRUE(Runner.completed());
    ASSERT_EQ(Reference.size(), 8000u);
  }

  // Machine A: controller-driven run, checkpointed mid-flight (the
  // region needs ~12 ms end to end, so 5 ms is safely mid-stream and
  // past INIT's sequential baseline).
  std::vector<std::int64_t> Tail;
  std::string Serialized;
  {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    RuntimeCosts Costs;
    CountedWorkSource Src(8000);
    FlexibleRegion Region = makeSPS(&Tail);
    RegionRunner Runner(M, Costs, Region, Src);
    RegionController Ctrl(Runner);
    Ctrl.start(8);
    Sim.schedule(5 * sim::MSec, [&] {
      ASSERT_TRUE(Ctrl.checkpointTo(
          [&](ckpt::RegionSnapshot S) { Serialized = S.serialize(); }));
    });
    Sim.runUntil(30 * sim::MSec);
    ASSERT_FALSE(Serialized.empty());
    EXPECT_TRUE(Runner.suspended());
    EXPECT_EQ(Ctrl.state(), CtrlState::Done) << "ticks must stop at A";
  }
  ASSERT_GT(Tail.size(), 0u);
  ASSERT_LT(Tail.size(), 8000u) << "checkpoint landed after completion";

  ckpt::RegionSnapshot S;
  ASSERT_TRUE(ckpt::RegionSnapshot::deserialize(Serialized, S));
  EXPECT_EQ(S.Cursor, Tail.size());
  EXPECT_GT(S.Ctrl.SeqThroughput, 0.0) << "learned baseline must travel";

  // Machine B: fresh world, restore, run to completion.
  {
    sim::Simulator Sim;
    sim::Machine M(Sim, 8);
    RuntimeCosts Costs;
    CountedWorkSource Src(0); // restoreState seeds it from the snapshot
    FlexibleRegion Region = makeSPS(&Tail);
    RegionRunner Runner(M, Costs, Region, Src);
    RegionController Ctrl(Runner);
    Ctrl.startFromSnapshot(8, S);
    Sim.runUntil(2 * sim::Sec);
    ASSERT_TRUE(Runner.completed());
    // No re-measurement on B: MONITOR (then Done) only.
    for (const RegionController::TraceEntry &E : Ctrl.trace())
      EXPECT_TRUE(E.St == CtrlState::Monitor || E.St == CtrlState::Done)
          << "restored controller re-entered " << ctrlStateName(E.St);
  }

  // Exactly-once across the migration: A's prefix + B's suffix is the
  // uninterrupted run, element for element.
  ASSERT_EQ(Tail.size(), Reference.size());
  EXPECT_EQ(Tail, Reference);
}

TEST(Checkpoint, DrainRestartMigratesOffDoomedCoresWithoutAborting) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  CountedWorkSource Src(6000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makeSPS(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionController Ctrl(Runner);
  Ctrl.start(8);

  bool Resumed = false;
  Sim.schedule(10 * sim::MSec, [&] {
    ASSERT_TRUE(Ctrl.drainRestart({4, 5, 6}, [&] { Resumed = true; }));
  });
  Sim.runUntil(2 * sim::Sec);

  EXPECT_TRUE(Resumed);
  EXPECT_TRUE(Runner.completed());
  // Proactive, not reactive: the quiesce kept every in-flight iteration.
  EXPECT_EQ(Runner.recoveries(), 0u);
  EXPECT_EQ(Runner.checkpoints(), 1u);
  EXPECT_EQ(M.onlineCores(), 5u);
  // The effective budget shrank to the survivors.
  EXPECT_LE(Ctrl.threadBudget(), 5u);
  ASSERT_EQ(Tail.size(), 6000u);
  for (std::int64_t I = 0; I < 6000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}

//===----------------------------------------------------------------------===//
// Bounded rewind history
//===----------------------------------------------------------------------===//

TEST(Checkpoint, RewindAtExactlyHistoryCapSucceeds) {
  constexpr std::size_t Cap = QueueWorkSource::historyCap();
  QueueWorkSource Src;
  for (std::size_t I = 0; I < Cap; ++I) {
    Token T;
    T.Value = static_cast<std::int64_t>(I);
    ASSERT_TRUE(Src.push(T));
  }
  Token Got;
  for (std::size_t I = 0; I < Cap; ++I)
    ASSERT_EQ(Src.tryPull(Got), WorkSource::Pull::Got);
  // Exactly at the cap: nothing evicted yet, the full history replays.
  EXPECT_EQ(Src.historyEvictions(), 0u);
  EXPECT_TRUE(Src.rewind(Cap));
  EXPECT_EQ(Src.size(), Cap);
  ASSERT_EQ(Src.tryPull(Got), WorkSource::Pull::Got);
  EXPECT_EQ(Got.Value, 0);
}

TEST(Checkpoint, RewindPastHistoryCapFailsAndCountsEvictions) {
  constexpr std::size_t Cap = QueueWorkSource::historyCap();
  QueueWorkSource Src;
  for (std::size_t I = 0; I < Cap + 3; ++I) {
    Token T;
    T.Value = static_cast<std::int64_t>(I);
    ASSERT_TRUE(Src.push(T));
  }
  Token Got;
  for (std::size_t I = 0; I < Cap + 3; ++I)
    ASSERT_EQ(Src.tryPull(Got), WorkSource::Pull::Got);
  // One past the cap per extra pull: the oldest entries fell off, and
  // the counter says so (the observability hook for a too-deep rewind).
  EXPECT_EQ(Src.historyEvictions(), 3u);
  EXPECT_FALSE(Src.rewind(Cap + 1)) << "history cannot replay past the cap";
  EXPECT_TRUE(Src.rewind(Cap));
  ASSERT_EQ(Src.tryPull(Got), WorkSource::Pull::Got);
  EXPECT_EQ(Got.Value, 3) << "the three oldest items were evicted";
}
