//===- WidthScheduleTest.cpp - Epoch routing tests --------------------------===//
//
// Tests for the iteration-count handoff that keeps round-robin channel
// routing consistent across DoP changes (Section 7.2, Figure 7.5).
//
//===----------------------------------------------------------------------===//

#include "core/WidthSchedule.h"

#include <gtest/gtest.h>

#include <set>

using namespace parcae::rt;

TEST(WidthSchedule, SingleEpochRoundRobin) {
  WidthSchedule S(3);
  for (std::uint64_t I = 0; I < 30; ++I) {
    EXPECT_EQ(S.widthAt(I), 3u);
    EXPECT_EQ(S.slotOf(I), I % 3);
  }
}

TEST(WidthSchedule, EpochBoundaryRouting) {
  WidthSchedule S(2);
  S.append(10, 5);
  EXPECT_EQ(S.widthAt(9), 2u);
  EXPECT_EQ(S.widthAt(10), 5u);
  EXPECT_EQ(S.slotOf(9), 9 % 2);
  EXPECT_EQ(S.slotOf(10), 10 % 5);
  EXPECT_EQ(S.currentWidth(), 5u);
  EXPECT_EQ(S.currentEpochStart(), 10u);
}

TEST(WidthSchedule, OldIterationsKeepOldRouting) {
  // The crux of Figure 7.5: increasing DoP from m to m+1 must not change
  // the slot that owns already-produced iterations.
  unsigned M = 4;
  WidthSchedule S(M);
  std::vector<unsigned> Before;
  for (std::uint64_t I = 0; I < 20; ++I)
    Before.push_back(S.slotOf(I));
  S.append(20, M + 1);
  for (std::uint64_t I = 0; I < 20; ++I)
    EXPECT_EQ(S.slotOf(I), Before[I]) << "iteration " << I;
  // A naive schedule that re-mods everything *would* reassign ownership:
  WidthSchedule Naive(M + 1);
  bool AnyDiffer = false;
  for (std::uint64_t I = 0; I < 20; ++I)
    AnyDiffer |= Naive.slotOf(I) != Before[I];
  EXPECT_TRUE(AnyDiffer) << "naive re-mod should violate old ownership";
}

TEST(WidthSchedule, FirstSeqForBasic) {
  WidthSchedule S(4);
  EXPECT_EQ(S.firstSeqFor(0, 0), 0u);
  EXPECT_EQ(S.firstSeqFor(1, 0), 1u);
  EXPECT_EQ(S.firstSeqFor(3, 0), 3u);
  EXPECT_EQ(S.firstSeqFor(1, 2), 5u);
  EXPECT_EQ(S.firstSeqFor(1, 5), 5u);
  EXPECT_EQ(S.firstSeqFor(1, 6), 9u);
}

TEST(WidthSchedule, FirstSeqForRetiredSlot) {
  WidthSchedule S(4);
  S.append(12, 2);
  // Slot 3 owns 3, 7, 11 and then never runs again.
  EXPECT_EQ(S.firstSeqFor(3, 0), 3u);
  EXPECT_EQ(S.firstSeqFor(3, 8), 11u);
  EXPECT_EQ(S.firstSeqFor(3, 12), NoSeq);
}

TEST(WidthSchedule, FirstSeqForResurrectedSlot) {
  WidthSchedule S(4);
  S.append(12, 2);
  S.append(20, 6);
  // Slot 3 disappears in [12, 20) and reappears at 20.
  EXPECT_EQ(S.firstSeqFor(3, 12), 21u); // 21 % 6 == 3
  EXPECT_EQ(S.firstSeqFor(5, 0), 23u);  // slot 5 only exists at width 6
}

TEST(WidthSchedule, NextSeqForSkipsCurrent) {
  WidthSchedule S(3);
  EXPECT_EQ(S.nextSeqFor(0, 0), 3u);
  EXPECT_EQ(S.nextSeqFor(2, 2), 5u);
}

TEST(WidthSchedule, AppendSameStartReplacesWidth) {
  WidthSchedule S(2);
  S.append(10, 4);
  S.append(10, 6);
  EXPECT_EQ(S.widthAt(10), 6u);
  EXPECT_EQ(S.numEpochs(), 2u);
}

TEST(WidthSchedule, AppendSameWidthIsNoop) {
  WidthSchedule S(2);
  S.append(10, 2);
  EXPECT_EQ(S.numEpochs(), 1u);
}

TEST(WidthSchedule, EveryIterationOwnedByExactlyOneSlot) {
  // Property: across arbitrary epochs, each iteration maps to exactly one
  // (slot) and firstSeqFor enumerates exactly the owned set.
  WidthSchedule S(3);
  S.append(7, 5);
  S.append(13, 2);
  S.append(40, 4);
  std::set<std::uint64_t> Seen;
  for (unsigned Slot = 0; Slot < 5; ++Slot) {
    std::uint64_t I = S.firstSeqFor(Slot, 0);
    while (I != NoSeq && I < 100) {
      EXPECT_TRUE(Seen.insert(I).second) << "iteration owned twice: " << I;
      EXPECT_EQ(S.slotOf(I), Slot);
      I = S.nextSeqFor(Slot, I);
    }
  }
  EXPECT_EQ(Seen.size(), 100u);
}
