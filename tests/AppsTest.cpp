//===- AppsTest.cpp - Application model tests -------------------------------===//
//
// Tests that the application models reproduce the qualitative
// characteristics the paper's evaluation depends on: the x264 inner
// speedup of ~6.3x at DoP 8, bzip's profitability floor at DoP 4, the
// latency/throughput crossover of Figure 2.4, and the pipeline apps'
// stage imbalance.
//
//===----------------------------------------------------------------------===//

#include "apps/LaneApps.h"
#include "apps/PipelineApps.h"
#include "mechanisms/LaneMechanisms.h"
#include "workloads/Experiment.h"

#include <gtest/gtest.h>

using namespace parcae;
using namespace parcae::rt;

TEST(InnerScalability, X264SpeedupCurve) {
  InnerScalability S = x264Params().Scal;
  EXPECT_DOUBLE_EQ(S.speedup(1), 1.0);
  EXPECT_NEAR(S.speedup(8), 6.3, 0.25); // Section 2.3: up to 6.3x at 8
  EXPECT_GT(S.speedup(4), 3.0);
  // Beyond the knee, more threads do not help.
  EXPECT_LE(S.speedup(12), S.speedup(8));
  EXPECT_EQ(S.dPmax(), 8u);
}

TEST(InnerScalability, BzipNeedsFourThreads) {
  InnerScalability S = bzipParams().Scal;
  EXPECT_LT(S.speedup(2), 1.0);
  EXPECT_LT(S.speedup(3), 1.0);
  EXPECT_GT(S.speedup(4), 1.0); // the paper's dPmin = 4
  EXPECT_EQ(S.dPmin(), 4u);
}

TEST(InnerScalability, MonotoneUpToKnee) {
  for (const LaneAppParams &P :
       {x264Params(), swaptionsParams(), oilifyParams()}) {
    double Prev = 1.0;
    for (unsigned L = 2; L <= P.Scal.Knee; ++L) {
      EXPECT_GE(P.Scal.speedup(L), Prev) << P.Name << " at L=" << L;
      Prev = P.Scal.speedup(L);
    }
  }
}

TEST(LaneApp, ExecTimeMatchesSpeedup) {
  LaneAppParams P = x264Params();
  sim::Simulator Sim;
  sim::Machine M(Sim, 24);
  RuntimeCosts Costs;
  QueueWorkSource Q;
  LaneServerApp App(M, Costs, P, Q);
  EXPECT_EQ(App.execTime(1), P.MeanWork);
  EXPECT_NEAR(static_cast<double>(App.execTime(8)),
              static_cast<double>(P.MeanWork) / 6.3,
              0.05 * static_cast<double>(P.MeanWork));
}

TEST(LaneApp, LightLoadLatencyFavorsInnerParallelism) {
  // Figure 2.4(c), left side: at load 0.2 the <3,8> configuration yields
  // far lower response time than <24,SEQ>.
  LaneAppParams P = x264Params();
  StaticLane SeqOuter({24, false, 1});
  StaticLane InnerPar({3, true, 8});
  ServerRunResult A =
      runLaneExperiment(P, SeqOuter, 24, 0.2, /*Requests=*/150);
  ServerRunResult B =
      runLaneExperiment(P, InnerPar, 24, 0.2, /*Requests=*/150);
  EXPECT_GT(A.MeanResponseSec, B.MeanResponseSec * 2);
}

TEST(LaneApp, HeavyLoadThroughputFavorsOuterOnly) {
  // Figure 2.4(b,c), right side: at load 1.1 the outer-only configuration
  // sustains higher throughput, so its response time blows up less.
  LaneAppParams P = x264Params();
  StaticLane SeqOuter({24, false, 1});
  StaticLane InnerPar({3, true, 8});
  ServerRunResult A =
      runLaneExperiment(P, SeqOuter, 24, 1.1, /*Requests=*/200);
  ServerRunResult B =
      runLaneExperiment(P, InnerPar, 24, 1.1, /*Requests=*/200);
  EXPECT_GT(A.ThroughputPerSec, B.ThroughputPerSec);
  EXPECT_LT(A.MeanResponseSec, B.MeanResponseSec);
}

TEST(LaneApp, CompletesAllRequests) {
  LaneAppParams P = swaptionsParams();
  StaticLane S({24, false, 1});
  ServerRunResult R = runLaneExperiment(P, S, 24, 0.8, 120);
  EXPECT_EQ(R.Resp.Completed, 120u);
  EXPECT_EQ(R.Resp.Pending, 0u);
}

TEST(PipelineApp, FerretShape) {
  PipelineApp App = makeFerret();
  EXPECT_EQ(App.numStages(), 6u);
  EXPECT_TRUE(App.Region.hasVariant(Scheme::PsDswp));
  EXPECT_TRUE(App.Region.hasVariant(Scheme::Fused));
  const RegionDesc &V = App.Region.variant(Scheme::PsDswp);
  EXPECT_EQ(V.Tasks.front().type(), TaskType::Seq);
  EXPECT_EQ(V.Tasks.back().type(), TaskType::Seq);
  EXPECT_EQ(V.Links.size(), 5u);
}

TEST(PipelineApp, StaticRunCompletesInOrder) {
  PipelineRunSpec Spec;
  Spec.Requests = 300;
  Spec.Initial = evenConfig(makeFerret(), Scheme::PsDswp, 5);
  PipelineRunResult R = runPipelineExperiment(makeFerret, Spec);
  EXPECT_EQ(R.Server.Resp.Completed, 300u);
  EXPECT_GT(R.Server.ThroughputPerSec, 0.0);
}

TEST(PipelineApp, FusedVariantMatchesWork) {
  // Fused and split pipelines must do the same per-request work, so at
  // saturation with ample threads the fused throughput is within ~2x
  // (channel overheads aside) of the split pipeline's.
  PipelineRunSpec Split;
  Split.Requests = 400;
  Split.Initial = evenConfig(makeFerret(), Scheme::PsDswp, 5);
  PipelineRunResult A = runPipelineExperiment(makeFerret, Split);

  PipelineRunSpec Fused;
  Fused.Requests = 400;
  Fused.Initial.S = Scheme::Fused;
  Fused.Initial.DoP = {1, 22, 1};
  PipelineRunResult B = runPipelineExperiment(makeFerret, Fused);

  EXPECT_EQ(B.Server.Resp.Completed, 400u);
  // The fused configuration dedicates all 22 threads to the whole body,
  // beating the even split.
  EXPECT_GT(B.Server.ThroughputPerSec, A.Server.ThroughputPerSec);
}

TEST(PipelineApp, DedupCriticalSectionPresent) {
  PipelineApp App = makeDedup();
  bool HasCrit = false;
  for (const StageParams &S : App.Stages)
    HasCrit |= S.CritCost > 0;
  EXPECT_TRUE(HasCrit);
}

TEST(Experiment, LaneMaxThroughputDefinition) {
  LaneAppParams P = x264Params();
  // 24 cores, 25 s sequential work: 0.96 requests per second.
  EXPECT_NEAR(laneMaxThroughput(P, 24), 24.0 / 25.0, 1e-9);
}
