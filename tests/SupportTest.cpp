//===- SupportTest.cpp - Unit tests for the support library ----------------===//

#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace parcae;

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    std::int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, NextRealUnitInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextReal();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, ExponentialMeanApprox) {
  Rng R(13);
  double Sum = 0;
  const int N = 50000;
  for (int I = 0; I < N; ++I)
    Sum += R.nextExponential(5.0);
  EXPECT_NEAR(Sum / N, 5.0, 0.2);
}

TEST(Rng, NormalMomentsApprox) {
  Rng R(17);
  OnlineStats S;
  for (int I = 0; I < 50000; ++I)
    S.add(R.nextNormal(10.0, 2.0));
  EXPECT_NEAR(S.mean(), 10.0, 0.1);
  EXPECT_NEAR(S.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalClamped) {
  Rng R(19);
  for (int I = 0; I < 20000; ++I) {
    double V = R.nextNormal(0.0, 1.0);
    EXPECT_GE(V, -4.0);
    EXPECT_LE(V, 4.0);
  }
}

TEST(OnlineStats, Basic) {
  OnlineStats S;
  EXPECT_TRUE(S.empty());
  S.add(1);
  S.add(2);
  S.add(3);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
  EXPECT_NEAR(S.variance(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(S.sum(), 6.0);
}

TEST(OnlineStats, SingleSampleVarianceZero) {
  OnlineStats S;
  S.add(5);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
}

TEST(MovingAverage, SeedsWithFirstSample) {
  MovingAverage M(0.5);
  EXPECT_FALSE(M.seeded());
  M.add(10);
  EXPECT_TRUE(M.seeded());
  EXPECT_DOUBLE_EQ(M.value(), 10.0);
  M.add(20);
  EXPECT_DOUBLE_EQ(M.value(), 15.0);
}

TEST(MovingAverage, Reset) {
  MovingAverage M(0.5);
  M.add(10);
  M.reset();
  EXPECT_FALSE(M.seeded());
  M.add(4);
  EXPECT_DOUBLE_EQ(M.value(), 4.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet S;
  for (int I = 1; I <= 100; ++I)
    S.add(I);
  EXPECT_DOUBLE_EQ(S.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(S.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 100.0);
  EXPECT_DOUBLE_EQ(S.mean(), 50.5);
}

TEST(SampleSet, EmptyIsZero) {
  SampleSet S;
  EXPECT_DOUBLE_EQ(S.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
}

TEST(SampleSet, SortedCacheInvalidatedByAdd) {
  // Regression: the sorted order is cached between percentile queries;
  // an add() after a query must invalidate it, or later queries answer
  // from the stale (smaller) sample set.
  SampleSet S;
  for (int I = 1; I <= 10; ++I)
    S.add(I);
  EXPECT_DOUBLE_EQ(S.max(), 10.0); // builds the cache
  S.add(50);
  EXPECT_DOUBLE_EQ(S.max(), 50.0);
  EXPECT_DOUBLE_EQ(S.percentile(50), 6.0); // nearest rank over 11 samples
  S.add(0.5);
  EXPECT_DOUBLE_EQ(S.min(), 0.5);
}

TEST(SampleSet, SortedCacheInvalidatedByDecimate) {
  SampleSet S;
  for (int I = 1; I <= 10; ++I)
    S.add(I);
  EXPECT_DOUBLE_EQ(S.max(), 10.0); // builds the cache
  S.decimate();                    // keeps 1,3,5,7,9
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.percentile(50), 5.0);
}

TEST(SampleSet, RepeatedQueriesStayConsistent) {
  SampleSet S;
  for (int I = 100; I >= 1; --I)
    S.add(I);
  for (int Pass = 0; Pass < 3; ++Pass) {
    EXPECT_DOUBLE_EQ(S.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(S.percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(S.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(S.percentile(100), 100.0);
  }
}

TEST(SampleSet, DecimateKeepsEveryOther) {
  SampleSet S;
  for (int I = 1; I <= 10; ++I)
    S.add(I);
  S.decimate();
  EXPECT_EQ(S.count(), 5u);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(Histogram, Percentiles) {
  Histogram H;
  for (int I = 1; I <= 100; ++I)
    H.add(I);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_DOUBLE_EQ(H.mean(), 50.5);
  EXPECT_DOUBLE_EQ(H.p50(), 50.0);
  EXPECT_DOUBLE_EQ(H.p95(), 95.0);
  EXPECT_DOUBLE_EQ(H.p99(), 99.0);
  EXPECT_DOUBLE_EQ(H.min(), 1.0);
  EXPECT_DOUBLE_EQ(H.max(), 100.0);
  EXPECT_EQ(H.sampleStride(), 1u);
}

TEST(Histogram, EmptyIsZero) {
  Histogram H;
  EXPECT_TRUE(H.empty());
  EXPECT_DOUBLE_EQ(H.p50(), 0.0);
  EXPECT_DOUBLE_EQ(H.mean(), 0.0);
}

TEST(Histogram, DecimatesBeyondCapacity) {
  Histogram H(/*MaxSamples=*/64);
  for (int I = 1; I <= 10000; ++I)
    H.add(I);
  // Exact moments come from the O(1) accumulator, not the sample set.
  EXPECT_EQ(H.count(), 10000u);
  EXPECT_DOUBLE_EQ(H.mean(), 5000.5);
  EXPECT_DOUBLE_EQ(H.max(), 10000.0);
  // The recorded set was decimated: stride grew, memory stayed bounded,
  // and the tail percentiles remain representative.
  EXPECT_GT(H.sampleStride(), 1u);
  EXPECT_NEAR(H.p50(), 5000.0, 0.05 * 10000);
  EXPECT_NEAR(H.p99(), 9900.0, 0.05 * 10000);
  EXPECT_GE(H.p99(), H.p95());
  EXPECT_GE(H.p95(), H.p50());
}

TEST(Table, FormatsAlignedColumns) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "2.50"});
  std::string S = T.format();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("longer"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(S.begin(), S.end(), '\n'), 4);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}
