//===- PropertyTest.cpp - Parameterized property sweeps ----------------------===//
//
// Property-style invariants swept across configuration spaces with
// parameterized gtest:
//
//  * WidthSchedule ownership partitioning under random epoch histories;
//  * end-to-end order/loss/duplication freedom of pipeline execution
//    across (DoP, cores, reconfiguration cadence) combinations;
//  * semantic equivalence of every Nona benchmark under every exposed
//    scheme at several DoPs;
//  * machine conservation laws (busy-core time vs. work performed).
//
//===----------------------------------------------------------------------===//

#include "core/Region.h"
#include "core/WidthSchedule.h"
#include "core/WorkSource.h"
#include "morta/RegionExec.h"
#include "apps/LaneApps.h"
#include "nona/Programs.h"
#include "nona/Run.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace parcae;
using namespace parcae::rt;
namespace ir = parcae::ir;

//===----------------------------------------------------------------------===//
// WidthSchedule partition property under random histories
//===----------------------------------------------------------------------===//

class WidthScheduleProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(WidthScheduleProperty, RandomEpochsPartitionIterationSpace) {
  Rng R(GetParam() * 7919 + 17);
  WidthSchedule S(1 + static_cast<unsigned>(R.nextBelow(8)));
  std::uint64_t Start = 0;
  for (int E = 0; E < 12; ++E) {
    Start += R.nextBelow(40);
    S.append(Start, 1 + static_cast<unsigned>(R.nextBelow(8)));
  }
  // Property 1: slotOf is consistent with widthAt.
  for (std::uint64_t I = 0; I < 400; ++I)
    EXPECT_EQ(S.slotOf(I), I % S.widthAt(I));
  // Property 2: the union of every slot's firstSeqFor-enumeration covers
  // each iteration exactly once.
  std::set<std::uint64_t> Seen;
  for (unsigned Slot = 0; Slot < 8; ++Slot) {
    std::uint64_t I = S.firstSeqFor(Slot, 0);
    while (I != NoSeq && I < 400) {
      EXPECT_TRUE(Seen.insert(I).second) << "duplicate owner for " << I;
      I = S.nextSeqFor(Slot, I);
    }
  }
  EXPECT_EQ(Seen.size(), 400u);
  // Property 3: epochs never change ownership of earlier iterations.
  std::vector<unsigned> Before;
  for (std::uint64_t I = 0; I < 400; ++I)
    Before.push_back(S.slotOf(I));
  S.append(Start + 100, 5);
  for (std::uint64_t I = 0; I < std::min<std::uint64_t>(400, Start + 100);
       ++I)
    EXPECT_EQ(S.slotOf(I), Before[I]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidthScheduleProperty,
                         ::testing::Range(0u, 12u));

//===----------------------------------------------------------------------===//
// Pipeline order preservation across the configuration space
//===----------------------------------------------------------------------===//

struct PipeSweep {
  unsigned Cores;
  unsigned MidDoP;
  unsigned ReconfigEveryMs; // 0: no reconfigurations
};

class PipelineOrderProperty : public ::testing::TestWithParam<PipeSweep> {};

TEST_P(PipelineOrderProperty, NoLossNoDupNoReorder) {
  const PipeSweep P = GetParam();
  sim::Simulator Sim;
  sim::Machine M(Sim, P.Cores);
  RuntimeCosts Costs;
  CountedWorkSource Src(500);
  std::vector<std::int64_t> Tail;

  RegionDesc D;
  D.Name = "prop";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("src", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 1500;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq) * 3 + 1;
  });
  D.Tasks.emplace_back("mid", TaskType::Par, [](IterationContext &C) {
    // Deterministically variable cost: stresses out-of-order production
    // into the ordered consumer.
    C.Cost = 8000 + (C.Seq % 7) * 4000;
    C.Out[0].Value = C.In[0].Value;
  });
  D.Tasks.emplace_back("sink", TaskType::Seq, [&Tail](IterationContext &C) {
    C.Cost = 1200;
    Tail.push_back(C.In[0].Value);
  });
  D.Links.push_back({0, 1});
  D.Links.push_back({1, 2});
  FlexibleRegion Region("prop");
  Region.addVariant(std::move(D));
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, P.MidDoP, 1};
  Runner.start(C);

  if (P.ReconfigEveryMs > 0) {
    Rng R(P.Cores * 131 + P.MidDoP);
    for (int K = 1; K <= 20; ++K) {
      unsigned NewD = 1 + static_cast<unsigned>(R.nextBelow(P.Cores - 1));
      Sim.schedule(static_cast<sim::SimTime>(K) * P.ReconfigEveryMs *
                       sim::MSec,
                   [&Runner, NewD] {
                     RegionConfig N;
                     N.S = Scheme::PsDswp;
                     N.DoP = {1, NewD, 1};
                     Runner.reconfigure(std::move(N));
                   });
    }
  }
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  ASSERT_EQ(Tail.size(), 500u) << "iterations lost or duplicated";
  for (std::int64_t I = 0; I < 500; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I * 3 + 1)
        << "reordered at " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Space, PipelineOrderProperty,
    ::testing::Values(PipeSweep{2, 1, 0}, PipeSweep{4, 2, 0},
                      PipeSweep{8, 6, 0}, PipeSweep{16, 12, 0},
                      PipeSweep{4, 2, 1}, PipeSweep{8, 3, 1},
                      PipeSweep{8, 6, 2}, PipeSweep{16, 8, 1},
                      PipeSweep{16, 14, 3}, PipeSweep{6, 5, 1}));

//===----------------------------------------------------------------------===//
// Nona semantic equivalence across the (program, scheme, DoP) space
//===----------------------------------------------------------------------===//

struct SemSweep {
  int Program; // index into benchmarkSuite
  Scheme S;
  unsigned DoP;
};

class NonaSemanticsProperty : public ::testing::TestWithParam<SemSweep> {};

TEST_P(NonaSemanticsProperty, MatchesReference) {
  const SemSweep P = GetParam();
  auto Suite = ir::benchmarkSuite(250);
  ASSERT_LT(static_cast<std::size_t>(P.Program), Suite.size());

  ir::LoopProgram Ref = Suite[P.Program]();
  std::map<unsigned, std::int64_t> Reds;
  ir::Memory RefMem =
      ir::CompiledLoop::interpret(*Ref.F, Ref.TripCount, &Reds);

  ir::LoopProgram Prog = Suite[P.Program]();
  ir::CompiledLoop CL(*Prog.F, Prog.AA, Prog.TripCount);
  if (!CL.region().hasVariant(P.S))
    GTEST_SKIP() << "variant not exposed for this program";

  RegionConfig C;
  C.S = P.S;
  for (const Task &T : CL.region().variant(P.S).Tasks)
    C.DoP.push_back(T.isParallel() ? P.DoP : 1);
  ir::CompiledRunResult R = ir::runCompiled(CL, C, 16);
  EXPECT_TRUE(R.Completed);
  EXPECT_TRUE(CL.memory() == RefMem) << Prog.Name;
  for (unsigned Phi : Prog.ReductionPhis)
    EXPECT_EQ(CL.reductionValue(Phi), Reds.at(Phi)) << Prog.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Space, NonaSemanticsProperty,
    ::testing::Values(
        SemSweep{0, Scheme::DoAny, 3}, SemSweep{0, Scheme::DoAny, 13},
        SemSweep{1, Scheme::DoAny, 5}, SemSweep{1, Scheme::PsDswp, 3},
        SemSweep{2, Scheme::DoAny, 8}, SemSweep{2, Scheme::PsDswp, 5},
        SemSweep{3, Scheme::DoAny, 10}, SemSweep{4, Scheme::PsDswp, 2},
        SemSweep{4, Scheme::PsDswp, 9}, SemSweep{5, Scheme::DoAny, 6},
        SemSweep{5, Scheme::PsDswp, 4}, SemSweep{6, Scheme::PsDswp, 1},
        SemSweep{7, Scheme::DoAny, 11}, SemSweep{8, Scheme::PsDswp, 6}));

//===----------------------------------------------------------------------===//
// Machine conservation laws
//===----------------------------------------------------------------------===//

class MachineConservation : public ::testing::TestWithParam<unsigned> {};

namespace {
class FixedWork : public sim::ThreadBody {
public:
  FixedWork(int Bursts, sim::SimTime Cycles)
      : Remaining(Bursts), Cycles(Cycles) {}
  sim::Action resume(sim::Machine &, sim::SimThread &) override {
    if (Remaining-- > 0)
      return sim::Action::compute(Cycles);
    return sim::Action::finish();
  }
  int Remaining;
  sim::SimTime Cycles;
};
} // namespace

TEST_P(MachineConservation, BusyTimeEqualsWorkDone) {
  unsigned Threads = GetParam();
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  sim::SimTime TotalWork = 0;
  for (unsigned T = 0; T < Threads; ++T) {
    int Bursts = 3 + static_cast<int>(T % 4);
    sim::SimTime Cycles = 1000 * (T + 1);
    TotalWork += static_cast<sim::SimTime>(Bursts) * Cycles;
    M.spawn("w", std::make_unique<FixedWork>(Bursts, Cycles));
  }
  Sim.run();
  // Work conservation: busy-core time >= pure work; the excess is only
  // scheduler overhead (context switches).
  EXPECT_GE(M.busyCoreTime(), TotalWork);
  EXPECT_LE(M.busyCoreTime(), TotalWork + Threads * 64 * sim::USec);
  // Makespan bounds: no faster than perfectly parallel, no slower than
  // fully serial (+ overheads).
  EXPECT_GE(Sim.now(), TotalWork / 4);
  EXPECT_LE(Sim.now(), TotalWork + Threads * 64 * sim::USec);
  EXPECT_EQ(M.threadsAlive(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, MachineConservation,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 9u, 16u));

//===----------------------------------------------------------------------===//
// Inner-scalability model sanity across all lane applications
//===----------------------------------------------------------------------===//

class ScalabilityProperty
    : public ::testing::TestWithParam<LaneAppParams (*)()> {};

TEST_P(ScalabilityProperty, CurveIsSane) {
  LaneAppParams P = GetParam()();
  const InnerScalability &S = P.Scal;
  EXPECT_DOUBLE_EQ(S.speedup(1), 1.0);
  for (unsigned L = 1; L <= 32; ++L) {
    EXPECT_GT(S.speedup(L), 0.0);
    EXPECT_LE(S.speedup(L), static_cast<double>(L))
        << P.Name << ": superlinear speedup at " << L;
  }
  EXPECT_GE(S.dPmax(), 1u);
  EXPECT_GE(S.dPmin(), 1u);
  EXPECT_LE(S.dPmin(), S.dPmax() + 1);
}

INSTANTIATE_TEST_SUITE_P(Apps, ScalabilityProperty,
                         ::testing::Values(&x264Params, &swaptionsParams,
                                           &bzipParams, &oilifyParams));
