//===- ServeTest.cpp - Serving-layer tests ---------------------------------===//
//
// Tests of the open-loop serving layer: seeded arrival processes (Poisson,
// bursty, trace replay + CSV parsing), admission control, the ServeLoop
// broker end-to-end on a small machine, and the platform daemon's tenant
// interface — slack handoff, the ShrunkToFit oscillation guard, and the
// SLO arbitration pass (violator gains from meeter, hand-back on load
// drop) — plus the percentile-cache regression for the stats layer.
//
//===----------------------------------------------------------------------===//

#include "morta/Platform.h"
#include "serve/Admission.h"
#include "serve/Arrival.h"
#include "serve/ServeLoop.h"
#include "sim/Machine.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

using namespace parcae;
using namespace parcae::serve;

namespace {

//===----------------------------------------------------------------------===//
// Arrival processes
//===----------------------------------------------------------------------===//

/// Collects the first \p N delays of an arrival process, advancing a
/// virtual cursor the way ServeLoop does.
std::vector<sim::SimTime> firstDelays(ArrivalProcess &A, std::size_t N) {
  std::vector<sim::SimTime> Out;
  sim::SimTime Now = 0;
  for (std::size_t I = 0; I < N; ++I) {
    std::optional<sim::SimTime> D = A.nextDelay(Now);
    if (!D)
      break;
    Out.push_back(*D);
    Now += *D;
  }
  return Out;
}

TEST(Arrival, PoissonSameSeedSameDelays) {
  PoissonArrivals A(1000.0, 42), B(1000.0, 42), C(1000.0, 43);
  std::vector<sim::SimTime> Da = firstDelays(A, 200);
  std::vector<sim::SimTime> Db = firstDelays(B, 200);
  std::vector<sim::SimTime> Dc = firstDelays(C, 200);
  ASSERT_EQ(Da.size(), 200u);
  EXPECT_EQ(Da, Db);                   // same seed => same stream
  EXPECT_NE(Da, Dc);                   // different seed => different stream
  // Mean inter-arrival of a 1000/s process is 1 ms; 200 draws land well
  // within a factor of two.
  sim::SimTime Sum = 0;
  for (sim::SimTime D : Da)
    Sum += D;
  double MeanMs = sim::toSeconds(Sum / Da.size()) * 1e3;
  EXPECT_GT(MeanMs, 0.5);
  EXPECT_LT(MeanMs, 2.0);
}

TEST(Arrival, BurstyIsDeterministicAndDenserInBursts) {
  // Quiet 100/s vs burst 10000/s with 10 ms dwell times: the rate gap is
  // big enough that mean delay over many draws sits far from quiet-only.
  BurstyArrivals A(100.0, 10000.0, 0.01, 0.01, 7);
  BurstyArrivals B(100.0, 10000.0, 0.01, 0.01, 7);
  std::vector<sim::SimTime> Da = firstDelays(A, 500);
  std::vector<sim::SimTime> Db = firstDelays(B, 500);
  ASSERT_EQ(Da.size(), 500u);
  EXPECT_EQ(Da, Db);
  sim::SimTime Sum = 0;
  for (sim::SimTime D : Da)
    Sum += D;
  double MeanSec = sim::toSeconds(Sum / Da.size());
  // Far below the quiet-only mean (10 ms): bursts dominate the draw count.
  EXPECT_LT(MeanSec, 0.005);
}

TEST(Arrival, TraceEndsSkipsZeroRateAndLoops) {
  // 0.5 s of silence, then 0.5 s at 1000/s, not looping.
  std::vector<TraceSegment> Curve = {{0.5, 0.0}, {0.5, 1000.0}};
  TraceArrivals A(Curve, 42);
  sim::SimTime Now = 0;
  std::optional<sim::SimTime> First = A.nextDelay(Now);
  ASSERT_TRUE(First.has_value());
  // The first arrival clears the zero-rate segment entirely.
  EXPECT_GE(*First, sim::fromSeconds(0.5));
  std::size_t Count = 1;
  Now += *First;
  while (true) {
    std::optional<sim::SimTime> D = A.nextDelay(Now);
    if (!D)
      break;
    Now += *D;
    ++Count;
  }
  EXPECT_LE(Now, sim::fromSeconds(1.0)); // every arrival inside the curve
  EXPECT_GT(Count, 100u);                // ~500 expected at 1000/s for 0.5 s
  // The same curve looped keeps producing past the one-second boundary.
  TraceArrivals L(Curve, 42, /*Loop=*/true);
  std::vector<sim::SimTime> Dl = firstDelays(L, 2000);
  EXPECT_EQ(Dl.size(), 2000u);
}

TEST(Arrival, TraceCsvRoundTripsAndRejectsMalformed) {
  std::string Path = testing::TempDir() + "/serve_trace.csv";
  {
    std::ofstream F(Path);
    F << "# diurnal curve\n"
      << "0.5, 100\n"
      << "\n"
      << "1.5, 2500\n";
  }
  auto Curve = TraceArrivals::parseCsv(Path);
  ASSERT_TRUE(Curve.has_value());
  ASSERT_EQ(Curve->size(), 2u);
  EXPECT_DOUBLE_EQ((*Curve)[0].DurationSec, 0.5);
  EXPECT_DOUBLE_EQ((*Curve)[0].RatePerSec, 100.0);
  EXPECT_DOUBLE_EQ((*Curve)[1].DurationSec, 1.5);
  EXPECT_DOUBLE_EQ((*Curve)[1].RatePerSec, 2500.0);

  {
    std::ofstream F(Path);
    F << "0.5, 100\n"
      << "not-a-number, 5\n";
  }
  EXPECT_FALSE(TraceArrivals::parseCsv(Path).has_value());
  EXPECT_FALSE(TraceArrivals::parseCsv(Path + ".does-not-exist").has_value());
}

//===----------------------------------------------------------------------===//
// Admission policies
//===----------------------------------------------------------------------===//

TEST(Admission, DropTailBoundsTheQueue) {
  DropTailAdmission P;
  ServeRequest R;
  EXPECT_TRUE(P.admit(R, 0, 4));
  EXPECT_TRUE(P.admit(R, 3, 4));
  EXPECT_FALSE(P.admit(R, 4, 4));
  EXPECT_FALSE(P.shedAtDispatch(R, 100 * sim::Sec)); // never sheds
}

TEST(Admission, DeadlineEarlyDropShedsStaleRequests) {
  DeadlineEarlyDrop P(10 * sim::MSec);
  ServeRequest R;
  R.ArrivedAt = 5 * sim::MSec;
  EXPECT_FALSE(P.shedAtDispatch(R, R.ArrivedAt + 10 * sim::MSec));
  EXPECT_TRUE(P.shedAtDispatch(R, R.ArrivedAt + 10 * sim::MSec + 1));
  EXPECT_TRUE(P.admit(R, 0, 4)); // drop-tail at arrival
  EXPECT_FALSE(P.admit(R, 4, 4));
}

//===----------------------------------------------------------------------===//
// ServeLoop end-to-end
//===----------------------------------------------------------------------===//

/// A single-task DOANY service region: each request costs \p Cost cycles.
rt::FlexibleRegion makeServiceRegion(const std::string &Name,
                                     sim::SimTime Cost) {
  rt::FlexibleRegion R(Name);
  rt::RegionDesc D;
  D.Name = Name + "-par";
  D.S = rt::Scheme::DoAny;
  D.Tasks.emplace_back("work", rt::TaskType::Par,
                       [Cost](rt::IterationContext &Ctx) { Ctx.Cost = Cost; });
  R.addVariant(std::move(D));
  return R;
}

TEST(ServeLoop, InjectedRequestsCompleteWithLatencyStats) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(4);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "svc";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("svc", 60000);
  };
  D.ItersPerRequest = 4;
  D.Config = {rt::Scheme::DoAny, {2}};
  unsigned Idx = Serve.addClass(std::move(D));

  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Serve.inject(Idx));
  Sim.run();

  const ServeLoop::ClassStats &S = Serve.stats(Idx);
  EXPECT_EQ(S.Arrived, 8u);
  EXPECT_EQ(S.Admitted, 8u);
  EXPECT_EQ(S.Completed, 8u);
  EXPECT_EQ(S.Rejected, 0u);
  EXPECT_EQ(S.Shed, 0u);
  EXPECT_EQ(S.TotalUs.count(), 8u);
  EXPECT_GT(S.ServiceUs.mean(), 0.0);        // service took virtual time
  EXPECT_GT(S.QueueWaitUs.max(), 0.0);       // 8 requests on <= 2 slots queued
  EXPECT_EQ(Serve.queueDepth(Idx), 0u);
  EXPECT_EQ(Serve.inService(Idx), 0u);
  EXPECT_GE(Serve.recentLatencySec(Idx, 95), 0.0); // probe has a signal
}

TEST(ServeLoop, BoundedQueueRejectsAtArrival) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 2);
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(2);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "tiny";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("tiny", 60000);
  };
  D.Config = {rt::Scheme::DoAny, {2}};
  D.QueueCapacity = 1;
  unsigned Idx = Serve.addClass(std::move(D));

  // First arrival dispatches immediately (budget 2 => one 2-wide slot),
  // the second queues, the third finds the queue full.
  EXPECT_TRUE(Serve.inject(Idx));
  EXPECT_TRUE(Serve.inject(Idx));
  EXPECT_FALSE(Serve.inject(Idx));
  EXPECT_EQ(Serve.stats(Idx).Rejected, 1u);
  Sim.run();
  EXPECT_EQ(Serve.stats(Idx).Completed, 2u);
}

TEST(ServeLoop, OnRequestDoneSeesShedRequests) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 2);
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(2);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "dl";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("dl", 500000); // 0.5 ms per iteration
  };
  D.Config = {rt::Scheme::DoAny, {2}};
  // Anything that waits at all is shed at dispatch.
  D.Policy = std::make_unique<DeadlineEarlyDrop>(0);
  unsigned Idx = Serve.addClass(std::move(D));

  unsigned Done = 0, Shed = 0;
  Serve.OnRequestDone = [&](const ServeRequest &R) {
    R.Shed ? ++Shed : ++Done;
  };
  for (int I = 0; I < 4; ++I)
    Serve.inject(Idx);
  Sim.run();
  EXPECT_EQ(Done, 1u);  // the head-of-line request never waited
  EXPECT_EQ(Shed, 3u);  // everything queued blew its deadline
  EXPECT_EQ(Serve.stats(Idx).Shed, 3u);
}

TEST(ServeLoop, OpenLoopArrivalsDrainDeterministically) {
  auto RunOnce = [](std::uint64_t Seed) {
    sim::Simulator Sim;
    sim::Machine M(Sim, 4);
    rt::RuntimeCosts Costs;
    rt::PlatformDaemon Daemon(4);
    ServeLoop Serve(M, Costs, Daemon);

    RequestClassDesc D;
    D.Name = "open";
    D.MakeRegion = [](const ServeRequest &) {
      return makeServiceRegion("open", 60000);
    };
    D.Config = {rt::Scheme::DoAny, {2}};
    unsigned Idx = Serve.addClass(std::move(D));
    Serve.startArrivals(Idx,
                        std::make_unique<PoissonArrivals>(2000.0, Seed));
    Sim.runUntil(100 * sim::MSec);
    Serve.stopArrivals(Idx);
    Sim.run();
    const ServeLoop::ClassStats &S = Serve.stats(Idx);
    EXPECT_EQ(S.Admitted, S.Completed + S.Shed);
    return std::make_tuple(S.Arrived, S.Completed,
                           S.TotalUs.percentile(95));
  };
  auto A = RunOnce(42), B = RunOnce(42), C = RunOnce(7);
  EXPECT_GT(std::get<0>(A), 100u); // ~200 arrivals in 100 ms at 2000/s
  EXPECT_EQ(A, B);                 // same seed => identical world
  EXPECT_NE(A, C);                 // different seed => different world
}

TEST(ServeLoop, DomainWarningMigratesInFlightRequestsDeterministically) {
  // A warned failure domain mid-overload: the loop checkpoints every
  // in-flight request region, offlines the doomed cores, and resumes the
  // survivors — and the whole story (per-class goodput, admitted/shed
  // counters, migration count) replays identically under one seed.
  auto RunOnce = [](std::uint64_t Seed) {
    sim::Simulator Sim;
    sim::Machine M(Sim, 4);
    sim::FaultPlan Plan;
    Plan.addDomain("socket1", {2, 3}, /*At=*/50 * sim::MSec,
                   /*Downtime=*/30 * sim::MSec, /*Warning=*/5 * sim::MSec);
    M.installFaultPlan(std::move(Plan));
    rt::RuntimeCosts Costs;
    rt::PlatformDaemon Daemon(4);
    ServeLoop Serve(M, Costs, Daemon);

    RequestClassDesc D;
    D.Name = "mig";
    D.MakeRegion = [](const ServeRequest &) {
      // 2 ms of work per request: at 2000/s the class is overloaded, so
      // the warning always finds requests in flight to migrate.
      return makeServiceRegion("mig", 500000);
    };
    D.ItersPerRequest = 4;
    D.Config = {rt::Scheme::DoAny, {2}};
    unsigned Idx = Serve.addClass(std::move(D));
    Serve.startArrivals(Idx, std::make_unique<PoissonArrivals>(2000.0, Seed));
    Sim.runUntil(100 * sim::MSec);
    Serve.stopArrivals(Idx);
    Sim.run();

    EXPECT_GT(Serve.migrations(), 0u) << "nothing was in flight at the drain";
    EXPECT_EQ(Serve.drainsCompleted(), 1u);
    EXPECT_FALSE(Serve.draining());
    EXPECT_EQ(M.onlineCores(), 4u) << "domain repaired after its downtime";
    const ServeLoop::ClassStats &S = Serve.stats(Idx);
    EXPECT_EQ(S.Admitted, S.Completed + S.Shed);
    return std::make_tuple(S.Arrived, S.Admitted, S.Rejected, S.Shed,
                           S.Completed, Serve.migrations(),
                           S.TotalUs.percentile(95));
  };
  auto A = RunOnce(42), B = RunOnce(42), C = RunOnce(7);
  EXPECT_GT(std::get<0>(A), 100u);
  EXPECT_EQ(A, B) << "same seed must replay the drain byte-identically";
  EXPECT_NE(A, C);
}

//===----------------------------------------------------------------------===//
// ServeLoop batching
//===----------------------------------------------------------------------===//

TEST(ServeLoopBatch, SizeTriggerClosesFullBatches) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(4);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "sz";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("sz", 60000);
  };
  D.ItersPerRequest = 4;
  D.Config = {rt::Scheme::DoAny, {2}};
  // A generous wait window: only the size trigger should fire.
  D.Batch = {4, 10 * sim::MSec, 0.0};
  unsigned Idx = Serve.addClass(std::move(D));

  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Serve.inject(Idx));
  Sim.run();

  const BatchStats &B = Serve.batchStats(Idx);
  EXPECT_EQ(B.Batches, 2u);
  EXPECT_EQ(B.BatchedRequests, 8u);
  EXPECT_EQ(B.SizeCloses, 2u);
  EXPECT_EQ(B.TimerCloses, 0u);
  EXPECT_EQ(B.SloCloses, 0u);
  EXPECT_DOUBLE_EQ(B.OccupancyH.mean(), 4.0);
  EXPECT_DOUBLE_EQ(B.requestsPerRegion(), 4.0);
  EXPECT_EQ(Serve.stats(Idx).Completed, 8u);
  EXPECT_EQ(Serve.inFlightRequests(Idx), 0u);
}

TEST(ServeLoopBatch, WaitWindowClosesUnderfullBatch) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(4);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "tm";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("tm", 60000);
  };
  D.ItersPerRequest = 4;
  D.Config = {rt::Scheme::DoAny, {2}};
  // No SLO on the class: the 1 ms wait window is the only deadline.
  D.Batch = {8, sim::MSec, 0.5};
  unsigned Idx = Serve.addClass(std::move(D));

  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(Serve.inject(Idx));
  EXPECT_EQ(Serve.inService(Idx), 0u); // held open, waiting for members
  Sim.run();

  const BatchStats &B = Serve.batchStats(Idx);
  EXPECT_EQ(B.Batches, 1u);
  EXPECT_EQ(B.TimerCloses, 1u);
  EXPECT_EQ(B.SizeCloses, 0u);
  EXPECT_EQ(B.SloCloses, 0u);
  EXPECT_DOUBLE_EQ(B.OccupancyH.max(), 3.0);
  EXPECT_EQ(Serve.stats(Idx).Completed, 3u);
  // The batch dispatched at the window deadline, not before: every
  // member's queue wait is at least the 1 ms hold (in microseconds).
  EXPECT_GE(Serve.stats(Idx).QueueWaitUs.min(), 1e3);
}

TEST(ServeLoopBatch, SloPressureClosesBatchEarly) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(4);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "slo";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("slo", 60000);
  };
  D.ItersPerRequest = 4;
  D.Config = {rt::Scheme::DoAny, {2}};
  D.Slo = {95.0, 4 * sim::MSec};
  // The 50 ms window would blow the 4 ms SLO; the early-close trigger
  // (0.5 x target = 2 ms of head-of-line wait) must beat it.
  D.Batch = {8, 50 * sim::MSec, 0.5};
  unsigned Idx = Serve.addClass(std::move(D));

  for (int I = 0; I < 2; ++I)
    EXPECT_TRUE(Serve.inject(Idx));
  Sim.run();

  const BatchStats &B = Serve.batchStats(Idx);
  EXPECT_EQ(B.Batches, 1u);
  EXPECT_EQ(B.SloCloses, 1u);
  EXPECT_EQ(B.TimerCloses, 0u);
  EXPECT_EQ(Serve.stats(Idx).Completed, 2u);
  // Closed at 2 ms of head wait, well inside the 50 ms window.
  EXPECT_LT(Serve.stats(Idx).QueueWaitUs.max(), 10e3);
}

TEST(ServeLoopBatch, MembersCompleteAtIterationWatermarks) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(4);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "wm";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("wm", 500000); // 0.5 ms per iteration
  };
  D.ItersPerRequest = 4;
  D.Config = {rt::Scheme::DoAny, {2}};
  D.Batch = {4, 10 * sim::MSec, 0.0};
  unsigned Idx = Serve.addClass(std::move(D));

  std::vector<sim::SimTime> Completions;
  Serve.OnRequestDone = [&](const ServeRequest &R) {
    Completions.push_back(R.CompletedAt);
  };
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(Serve.inject(Idx));
  Sim.run();

  // One batch of four, but four *distinct* per-request completions: each
  // member was attributed when the shared runner crossed its iteration
  // watermark, not when the whole batch turned around.
  ASSERT_EQ(Completions.size(), 4u);
  for (std::size_t I = 1; I < Completions.size(); ++I)
    EXPECT_LT(Completions[I - 1], Completions[I])
        << "members must complete at successive watermarks";
  const ServeLoop::ClassStats &S = Serve.stats(Idx);
  EXPECT_EQ(S.Completed, 4u);
  EXPECT_EQ(S.TotalUs.count(), 4u) << "one latency sample per member";
  // The first member's service time is roughly a quarter of the last's:
  // it did not pay for the whole batch.
  EXPECT_LT(S.ServiceUs.min() * 2, S.ServiceUs.max());
  EXPECT_EQ(Serve.batchStats(Idx).Batches, 1u);
}

TEST(ServeLoopBatch, BatchedDrainMigratesAllMembersDeterministically) {
  // The live-migration story with coalescing on: a migrated batch runner
  // carries every unfinished member request, and the whole world replays
  // byte-identically under one seed.
  auto RunOnce = [](std::uint64_t Seed) {
    sim::Simulator Sim;
    sim::Machine M(Sim, 4);
    sim::FaultPlan Plan;
    Plan.addDomain("socket1", {2, 3}, /*At=*/50 * sim::MSec,
                   /*Downtime=*/30 * sim::MSec, /*Warning=*/5 * sim::MSec);
    M.installFaultPlan(std::move(Plan));
    rt::RuntimeCosts Costs;
    rt::PlatformDaemon Daemon(4);
    ServeLoop Serve(M, Costs, Daemon);

    RequestClassDesc D;
    D.Name = "bmig";
    D.MakeRegion = [](const ServeRequest &) {
      return makeServiceRegion("bmig", 500000);
    };
    D.ItersPerRequest = 4;
    D.Config = {rt::Scheme::DoAny, {2}};
    D.Batch = {4, 2 * sim::MSec, 0.5};
    unsigned Idx = Serve.addClass(std::move(D));
    Serve.startArrivals(Idx, std::make_unique<PoissonArrivals>(2000.0, Seed));
    Sim.runUntil(100 * sim::MSec);
    Serve.stopArrivals(Idx);
    Sim.run();

    EXPECT_GT(Serve.migrations(), 0u) << "nothing was in flight at the drain";
    EXPECT_EQ(Serve.drainsCompleted(), 1u);
    EXPECT_EQ(M.onlineCores(), 4u);
    const ServeLoop::ClassStats &S = Serve.stats(Idx);
    EXPECT_EQ(S.Admitted, S.Completed + S.Shed);
    const BatchStats &B = Serve.batchStats(Idx);
    EXPECT_GT(B.requestsPerRegion(), 1.0) << "nothing actually coalesced";
    return std::make_tuple(S.Arrived, S.Admitted, S.Rejected, S.Shed,
                           S.Completed, Serve.migrations(), B.Batches,
                           B.SizeCloses, B.TimerCloses, B.SloCloses,
                           S.TotalUs.percentile(95));
  };
  auto A = RunOnce(42), B = RunOnce(42), C = RunOnce(7);
  EXPECT_GT(std::get<0>(A), 100u);
  EXPECT_EQ(A, B) << "same seed must replay the batched drain identically";
  EXPECT_NE(A, C);
}

//===----------------------------------------------------------------------===//
// Serve-path regressions
//===----------------------------------------------------------------------===//

TEST(ServeLoop, OverlappingDomainWarningsBothDrain) {
  // Two failure domains whose warning windows overlap: the second
  // warning used to be silently dropped while the first drain was
  // active, hard-failing the second domain under running work. It must
  // queue and drain back-to-back instead.
  sim::Simulator Sim;
  sim::Machine M(Sim, 6);
  sim::FaultPlan Plan;
  Plan.addDomain("sockA", {4, 5}, /*At=*/20 * sim::MSec,
                 /*Downtime=*/30 * sim::MSec, /*Warning=*/5 * sim::MSec);
  // Warns 200 us after sockA, while sockA's drain is still waiting for
  // in-flight 2 ms iterations to retire.
  Plan.addDomain("sockB", {2, 3}, /*At=*/20 * sim::MSec + 200 * sim::USec,
                 /*Downtime=*/30 * sim::MSec, /*Warning=*/5 * sim::MSec);
  M.installFaultPlan(std::move(Plan));
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(6);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "ovl";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("ovl", 2000000); // 2 ms per iteration
  };
  D.ItersPerRequest = 16;
  D.Config = {rt::Scheme::DoAny, {2}};
  unsigned Idx = Serve.addClass(std::move(D));
  for (int I = 0; I < 6; ++I)
    EXPECT_TRUE(Serve.inject(Idx));

  // Probe between the two warnings' arrival and the first drain's end:
  // the first drain must still be active when the second warning lands,
  // otherwise this test is not exercising the overlap.
  Sim.schedule(15 * sim::MSec + 300 * sim::USec, [&] {
    EXPECT_TRUE(Serve.draining()) << "first drain already over: no overlap";
    EXPECT_EQ(Serve.drainsCompleted(), 0u);
  });
  Sim.run();

  EXPECT_EQ(Serve.drainsCompleted(), 2u)
      << "the overlapping warning was dropped";
  EXPECT_FALSE(Serve.draining());
  EXPECT_EQ(Serve.stats(Idx).Completed, 6u) << "requests lost in the drain";
  EXPECT_EQ(M.onlineCores(), 6u) << "domains repaired after downtime";
}

TEST(ServeLoop, RejectedRequestsReachOnRequestDone) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 2);
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(2);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "rej";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("rej", 60000);
  };
  D.Config = {rt::Scheme::DoAny, {2}};
  D.QueueCapacity = 1;
  unsigned Idx = Serve.addClass(std::move(D));

  unsigned Done = 0, Rejected = 0;
  Serve.OnRequestDone = [&](const ServeRequest &R) {
    if (R.Rejected) {
      ++Rejected;
      EXPECT_EQ(R.CompletedAt, 0u) << "rejected requests never start";
      EXPECT_EQ(R.StartedAt, 0u);
    } else {
      ++Done;
    }
  };
  // First dispatches, second queues, third is refused — and the refusal
  // must reach the per-request observer (it used to vanish).
  EXPECT_TRUE(Serve.inject(Idx));
  EXPECT_TRUE(Serve.inject(Idx));
  EXPECT_FALSE(Serve.inject(Idx));
  EXPECT_EQ(Rejected, 1u);
  Sim.run();
  EXPECT_EQ(Done, 2u);
  EXPECT_EQ(Serve.stats(Idx).Rejected, 1u);
  EXPECT_EQ(Serve.stats(Idx).Completed, 2u);
}

TEST(ServeLoop, RecentLatencyProbeSortsOncePerCompletion) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 4);
  rt::RuntimeCosts Costs;
  rt::PlatformDaemon Daemon(4);
  ServeLoop Serve(M, Costs, Daemon);

  RequestClassDesc D;
  D.Name = "probe";
  D.MakeRegion = [](const ServeRequest &) {
    return makeServiceRegion("probe", 60000);
  };
  D.ItersPerRequest = 4;
  D.Config = {rt::Scheme::DoAny, {2}};
  unsigned Idx = Serve.addClass(std::move(D));

  for (int I = 0; I < 6; ++I)
    EXPECT_TRUE(Serve.inject(Idx));
  Sim.run();
  EXPECT_EQ(Serve.stats(Idx).Completed, 6u);

  // The arbiter probes the SLO window every tick; repeated probes with
  // no new completions must reuse one sorted view (it used to copy and
  // re-sort the whole window on every probe).
  EXPECT_EQ(Serve.recentProbeSorts(Idx), 0u);
  double P95 = Serve.recentLatencySec(Idx, 95);
  EXPECT_GT(P95, 0.0);
  EXPECT_EQ(Serve.recentProbeSorts(Idx), 1u);
  for (int I = 0; I < 50; ++I) {
    Serve.recentLatencySec(Idx, 95);
    Serve.recentLatencySec(Idx, 50);
  }
  EXPECT_EQ(Serve.recentProbeSorts(Idx), 1u)
      << "probes between completions re-sorted the window";

  // A new completion dirties the window: exactly one more sort.
  EXPECT_TRUE(Serve.inject(Idx));
  Sim.run();
  Serve.recentLatencySec(Idx, 95);
  Serve.recentLatencySec(Idx, 95);
  EXPECT_EQ(Serve.recentProbeSorts(Idx), 2u);

  // Once the window ages out, the probe reports no signal (and has
  // nothing to sort).
  Sim.runUntil(Sim.now() + 200 * sim::MSec);
  EXPECT_LT(Serve.recentLatencySec(Idx, 95), 0.0);
  EXPECT_EQ(Serve.recentProbeSorts(Idx), 2u);
}

//===----------------------------------------------------------------------===//
// PlatformDaemon tenants and SLO arbitration
//===----------------------------------------------------------------------===//

/// A scriptable tenant: tests set its reported demand and SLO readings.
class FakeTenant : public rt::PlatformTenant {
public:
  explicit FakeTenant(std::string Name) : Name(std::move(Name)) {}

  const std::string &tenantName() const override { return Name; }
  void onBudget(unsigned B, bool First) override {
    Budget = B;
    if (First)
      ++FirstGrants;
  }
  unsigned threadsUsed() const override {
    return Used ? std::min(Used, Budget) : Budget;
  }
  bool wantsMore() const override { return WantsMore; }

  bool hasSlo() const override { return HasSlo; }
  double sloTargetSec() const override { return TargetSec; }
  double sloLatencySec() const override { return LatencySec; }

  std::string Name;
  unsigned Budget = 0;
  /// Thread demand; the report is capped at the grant like a real
  /// controller's (it cannot use threads it was not given). 0 reports
  /// the granted budget (steady full consumption).
  unsigned Used = 0;
  unsigned FirstGrants = 0;
  bool WantsMore = false;
  bool HasSlo = false;
  double TargetSec = 1.0;
  double LatencySec = -1.0;
};

TEST(PlatformTenants, SlackFlowsToHungryTenantAndStaysStable) {
  sim::Simulator Sim;
  rt::PlatformDaemon Daemon(8);
  FakeTenant Hungry("hungry"), Modest("modest");
  Hungry.Used = 100; // consumes whatever it is given and wants more
  Hungry.WantsMore = true;
  Modest.Used = 1; // needs a single thread
  Daemon.addTenant(Hungry);
  Daemon.addTenant(Modest);
  EXPECT_EQ(Hungry.FirstGrants, 1u);
  EXPECT_EQ(Hungry.Budget + Modest.Budget, 8u); // even split at add

  Daemon.startArbiter(Sim, sim::MSec);
  Sim.runUntil(2 * sim::MSec);
  EXPECT_EQ(Modest.Budget, 1u); // shrunk to its reported need
  EXPECT_EQ(Hungry.Budget, 7u); // slack handed to the saturated tenant

  // Extra ticks change nothing: the same poll readings must reach the
  // same partition (the arbiter is deterministic and idempotent).
  Sim.runUntil(10 * sim::MSec);
  Daemon.stopArbiter();
  EXPECT_EQ(Modest.Budget, 1u);
  EXPECT_EQ(Hungry.Budget, 7u);
}

TEST(PlatformTenants, ShrunkToFitGuardsOscillation) {
  sim::Simulator Sim;
  rt::PlatformDaemon Daemon(8);
  // Both claim they want more, but Small only ever uses one thread: after
  // the shrink it must not count as hungry again (Used >= Budget alone
  // would re-grow it every other tick).
  FakeTenant Big("big"), Small("small");
  Big.Used = 4;
  Big.WantsMore = true;
  Small.Used = 1;
  Small.WantsMore = true;
  Daemon.addTenant(Big);
  Daemon.addTenant(Small);

  Daemon.startArbiter(Sim, sim::MSec);
  Sim.runUntil(2 * sim::MSec);
  EXPECT_EQ(Small.Budget, 1u);
  std::vector<unsigned> SmallBudgets;
  for (int T = 0; T < 6; ++T) {
    Sim.runUntil(Sim.now() + sim::MSec);
    SmallBudgets.push_back(Small.Budget);
  }
  Daemon.stopArbiter();
  for (unsigned B : SmallBudgets)
    EXPECT_EQ(B, 1u) << "budget oscillated after shrink-to-fit";
}

TEST(PlatformTenants, SloViolatorGainsFromMeeterThenHandsBack) {
  sim::Simulator Sim;
  rt::PlatformDaemon Daemon(8);
  FakeTenant Viol("viol"), Meet("meet");
  Viol.HasSlo = true;
  Viol.TargetSec = 1.0;
  Viol.LatencySec = 2.0; // ratio 2.0: violating
  Meet.HasSlo = true;
  Meet.TargetSec = 1.0;
  Meet.LatencySec = 0.2; // ratio 0.2: donor headroom
  Daemon.addTenant(Viol);
  Daemon.addTenant(Meet);
  ASSERT_EQ(Viol.Budget, 4u);

  Daemon.startArbiter(Sim, sim::MSec);
  // One thread per tick flows meet -> viol until the donor is at the
  // minimum budget.
  Sim.runUntil(10 * sim::MSec + sim::USec);
  EXPECT_EQ(Viol.Budget, 7u);
  EXPECT_EQ(Meet.Budget, 1u);
  const auto &T1 = Daemon.sloTransfers();
  ASSERT_EQ(T1.size(), 3u);
  for (const auto &T : T1) {
    EXPECT_EQ(T.From, "meet");
    EXPECT_EQ(T.To, "viol");
    EXPECT_EQ(T.Threads, 1u);
    EXPECT_STREQ(T.Why, "violation");
  }
  EXPECT_GT(T1.back().At, T1.front().At); // stamped with arbiter time

  // Load drops: the gainer now has ample headroom and returns its loans
  // one per tick to the lender.
  Viol.LatencySec = 0.3; // ratio 0.3 <= return headroom
  Sim.runUntil(20 * sim::MSec);
  Daemon.stopArbiter();
  EXPECT_EQ(Viol.Budget, 4u);
  EXPECT_EQ(Meet.Budget, 4u);
  const auto &T2 = Daemon.sloTransfers();
  ASSERT_EQ(T2.size(), 6u);
  for (std::size_t I = 3; I < 6; ++I) {
    EXPECT_EQ(T2[I].From, "viol");
    EXPECT_EQ(T2[I].To, "meet");
    EXPECT_STREQ(T2[I].Why, "return");
  }
}

TEST(PlatformTenants, NoSloDataMeansNoTransfers) {
  sim::Simulator Sim;
  rt::PlatformDaemon Daemon(8);
  // One tenant violating, the other carrying an SLO but with no latency
  // signal yet: nobody qualifies as a donor, so nothing moves.
  FakeTenant Viol("viol"), Fresh("fresh");
  Viol.HasSlo = true;
  Viol.TargetSec = 1.0;
  Viol.LatencySec = 5.0;
  Fresh.HasSlo = true;
  Fresh.TargetSec = 1.0;
  Fresh.LatencySec = -1.0; // no data
  Daemon.addTenant(Viol);
  Daemon.addTenant(Fresh);

  Daemon.startArbiter(Sim, sim::MSec);
  Sim.runUntil(5 * sim::MSec);
  Daemon.stopArbiter();
  EXPECT_TRUE(Daemon.sloTransfers().empty());
  EXPECT_EQ(Viol.Budget, 4u);
  EXPECT_EQ(Fresh.Budget, 4u);
}

TEST(PlatformTenants, NoSloTenantIsThePreferredDonor) {
  sim::Simulator Sim;
  rt::PlatformDaemon Daemon(9);
  FakeTenant Viol("viol"), Meet("meet"), Plain("plain");
  Viol.HasSlo = true;
  Viol.TargetSec = 1.0;
  Viol.LatencySec = 3.0;
  Meet.HasSlo = true;
  Meet.TargetSec = 1.0;
  Meet.LatencySec = 0.1;
  Daemon.addTenant(Viol);
  Daemon.addTenant(Meet);
  Daemon.addTenant(Plain);

  Daemon.startArbiter(Sim, sim::MSec);
  Sim.runUntil(sim::MSec + sim::USec);
  Daemon.stopArbiter();
  ASSERT_FALSE(Daemon.sloTransfers().empty());
  // Threads without an SLO attached are taken before squeezing a tenant
  // that is merely meeting its own target.
  EXPECT_EQ(Daemon.sloTransfers().front().From, "plain");
  EXPECT_EQ(Daemon.sloTransfers().front().To, "viol");
}

//===----------------------------------------------------------------------===//
// Percentile cache regression
//===----------------------------------------------------------------------===//

TEST(Stats, PercentileCacheSortsOncePerMutation) {
  SampleSet S;
  for (int I = 100; I > 0; --I)
    S.add(I);
  EXPECT_EQ(S.sortsPerformed(), 0u);
  EXPECT_DOUBLE_EQ(S.percentile(50), 50.0);
  EXPECT_EQ(S.sortsPerformed(), 1u);
  // The serving layer polls p50/p95/p99 every arbiter tick: repeated
  // queries between mutations must reuse the sorted view.
  for (int I = 0; I < 50; ++I) {
    S.percentile(50);
    S.percentile(95);
    S.percentile(99);
  }
  EXPECT_EQ(S.sortsPerformed(), 1u);

  S.add(1000.0); // mutation invalidates the cache...
  EXPECT_DOUBLE_EQ(S.percentile(100), 1000.0);
  EXPECT_EQ(S.sortsPerformed(), 2u);

  S.decimate(); // ...and so does decimation
  S.percentile(95);
  EXPECT_EQ(S.sortsPerformed(), 3u);
  S.percentile(95);
  EXPECT_EQ(S.sortsPerformed(), 3u);
}

TEST(Stats, HistogramExposesPercentileSorts) {
  Histogram H;
  for (int I = 0; I < 1000; ++I)
    H.add(I);
  H.p50();
  H.p95();
  H.p99();
  EXPECT_EQ(H.percentileSorts(), 1u);
  H.add(0.5);
  H.p95();
  EXPECT_EQ(H.percentileSorts(), 2u);
}

} // namespace
