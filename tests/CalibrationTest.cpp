//===- CalibrationTest.cpp - Model-vs-mechanism cross validation -------------===//
//
// Cross-checks between the layers of the reproduction:
//
//  * a *real* inner pipeline executed on the simulator produces a speedup
//    curve with the same shape as the calibrated InnerScalability model
//    the lane applications use (monotone rise, saturation, ~paper's 6.3x
//    scale at DoP 8 for transcode-like stage ratios);
//  * the controller's thread-saving preference converts into measurably
//    lower energy at equal throughput;
//  * the Table CSV emitter round-trips benchmark rows.
//
//===----------------------------------------------------------------------===//

#include "apps/LaneApps.h"
#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/RegionRunner.h"
#include "sim/Power.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace parcae;
using namespace parcae::rt;

namespace {

/// A transcode-like inner pipeline: read -> transform(PAR) -> write over
/// the frames of one video, executed for real on the simulator.
sim::SimTime runInnerPipeline(unsigned L, unsigned Frames = 400) {
  sim::Simulator Sim;
  sim::Machine M(Sim, 16);
  RuntimeCosts Costs;
  CountedWorkSource Src(Frames);
  FlexibleRegion R("inner");
  RegionDesc D;
  D.Name = "inner-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("read", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 18000; // per-frame read
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  D.Tasks.emplace_back("transform", TaskType::Par,
                       [](IterationContext &C) { C.Cost = 200000; });
  D.Links.push_back({0, 1});
  R.addVariant(std::move(D));
  RegionRunner Runner(M, Costs, R, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, L};
  Runner.start(C);
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  return Sim.now();
}

} // namespace

TEST(Calibration, RealPipelineMatchesScalabilityCurveShape) {
  // The lane apps model the inner team as a gang with a calibrated
  // speedup curve. Validate that shape against a genuinely executed
  // pipeline: monotone gains that saturate near the sequential stage's
  // service bound, landing in the paper's 6-7x-at-8 regime.
  sim::SimTime T1 = runInnerPipeline(1);
  double S2 = static_cast<double>(T1) / runInnerPipeline(2);
  double S4 = static_cast<double>(T1) / runInnerPipeline(4);
  double S8 = static_cast<double>(T1) / runInnerPipeline(8);
  double S12 = static_cast<double>(T1) / runInnerPipeline(12);

  EXPECT_GT(S2, 1.6);
  EXPECT_GT(S4, S2);
  EXPECT_GT(S8, S4);
  EXPECT_GT(S8, 5.5) << "transform/read = 11: DoP 8 should be ~6-7x";
  EXPECT_LT(S8, 8.0);
  // Gains are sublinear and bounded by the read stage's service rate
  // (~11.9x): 12 slots cannot buy 1.5x over 8.
  EXPECT_LT(S12 / S8, 1.45);
  EXPECT_LT(S12, 11.9);

  // And the x264 model curve stays within ~25% of the executed pipeline
  // at the calibration points.
  InnerScalability Model = x264Params().Scal;
  EXPECT_NEAR(Model.speedup(8) / S8, 1.0, 0.25);
  EXPECT_NEAR(Model.speedup(4) / S4, 1.0, 0.25);
}

TEST(Calibration, HigherThroughputMeansLessTotalEnergy) {
  // The Section 6.4 objective couples the two goals: maximizing
  // iteration throughput minimizes total energy, because the platform's
  // static power dominates (600 W static vs 8.33 W per busy core) and a
  // faster run holds the platform on for less time. Validate the
  // coupling on the energy meter.
  auto RunWith = [](unsigned DoP, double &Joules) {
    sim::Simulator Sim;
    sim::Machine M(Sim, 16);
    sim::EnergyMeter Meter(M, sim::PowerModel{});
    RuntimeCosts Costs;
    CountedWorkSource Src(2000);
    FlexibleRegion R("e");
    RegionDesc D;
    D.Name = "e-doany";
    D.S = Scheme::DoAny;
    D.Tasks.emplace_back("work", TaskType::Par,
                         [](IterationContext &C) { C.Cost = 50000; });
    R.addVariant(std::move(D));
    RegionRunner Runner(M, Costs, R, Src);
    RegionConfig C;
    C.S = Scheme::DoAny;
    C.DoP = {DoP};
    Runner.start(C);
    Sim.run();
    Joules = Meter.joules();
    return Sim.now();
  };
  double J2 = 0, J12 = 0;
  sim::SimTime T2 = RunWith(2, J2);
  sim::SimTime T12 = RunWith(12, J12);
  EXPECT_LT(T12, T2 / 4);
  EXPECT_LT(J12, J2 / 2) << "the faster run must use far less energy";
}

TEST(Calibration, TableCsvRoundTrip) {
  Table T({"benchmark", "speedup", "note"});
  T.addRow({"vecsum", "13.50", "plain"});
  T.addRow({"odd,name", "1.00", "has \"quotes\""});
  std::string Csv = T.csv();
  EXPECT_NE(Csv.find("benchmark,speedup,note\n"), std::string::npos);
  EXPECT_NE(Csv.find("vecsum,13.50,plain\n"), std::string::npos);
  // Quoting rules: embedded commas and quotes are escaped.
  EXPECT_NE(Csv.find("\"odd,name\""), std::string::npos);
  EXPECT_NE(Csv.find("\"has \"\"quotes\"\"\""), std::string::npos);
}
