//===- StatsReleaseTest.cpp - assert-free flavor of the percentile cache --===//
//
// This TU is compiled with NDEBUG (see tests/release/CMakeLists.txt), so
// assert() is gone. SampleSet::add and the sorted-cache invalidation flag
// are header-inline and thus compiled here in their release shape: a
// mutation after a percentile query must still flip SortedValid, or
// release builds answer later queries from the stale sorted snapshot.
//
//===----------------------------------------------------------------------===//

#ifndef NDEBUG
#error "release-flavor tests must be compiled with NDEBUG defined"
#endif

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace parcae;

TEST(StatsRelease, CacheInvalidationSurvivesWithoutAsserts) {
  SampleSet S;
  for (int I = 1; I <= 10; ++I)
    S.add(I);
  EXPECT_DOUBLE_EQ(S.percentile(50), 5.0); // builds the sorted cache
  S.add(1000);                             // inline add: must invalidate it
  EXPECT_DOUBLE_EQ(S.max(), 1000.0);
  EXPECT_DOUBLE_EQ(S.percentile(50), 6.0); // nearest rank over 11 samples
  S.decimate();                            // keeps 1,3,5,7,9,1000
  EXPECT_DOUBLE_EQ(S.max(), 1000.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_EQ(S.count(), 6u);
}

TEST(StatsRelease, RepeatedQueriesReuseCacheConsistently) {
  SampleSet S;
  for (int I = 200; I >= 1; --I)
    S.add(I);
  for (int Pass = 0; Pass < 4; ++Pass) {
    EXPECT_DOUBLE_EQ(S.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(S.percentile(50), 100.0);
    EXPECT_DOUBLE_EQ(S.percentile(100), 200.0);
  }
  EXPECT_DOUBLE_EQ(S.mean(), 100.5);
}

TEST(StatsRelease, HistogramPercentilesThroughDecimation) {
  // Histogram::add is also header-adjacent to the cache: each decimation
  // must invalidate the recorded set's sorted order or the post-decimation
  // percentiles report from the pre-decimation world.
  Histogram H(/*MaxSamples=*/64);
  for (int I = 1; I <= 4096; ++I) {
    H.add(I);
    if (I == 63)
      EXPECT_DOUBLE_EQ(H.p50(), 32.0); // query mid-stream: caches get built
  }
  EXPECT_EQ(H.count(), 4096u);
  EXPECT_GT(H.sampleStride(), 1u);
  EXPECT_NEAR(H.p50(), 2048.0, 0.05 * 4096);
  EXPECT_GE(H.p99(), H.p50());
  EXPECT_DOUBLE_EQ(H.max(), 4096.0);
}
