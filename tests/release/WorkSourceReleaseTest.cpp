//===- WorkSourceReleaseTest.cpp - assert-free flavor of rewind guards ----===//
//
// This TU is compiled with NDEBUG (see tests/release/CMakeLists.txt), so
// assert() is gone. CountedWorkSource::rewind is header-inline and thus
// compiled here in its release shape: an over-deep rewind must return a
// clean false — the historical assert-only guard would vanish in this
// flavor and let the cursor wrap, silently replaying ~2^64 items.
//
//===----------------------------------------------------------------------===//

#ifndef NDEBUG
#error "release-flavor tests must be compiled with NDEBUG defined"
#endif

#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/RegionRunner.h"

#include <gtest/gtest.h>

using namespace parcae;
using namespace parcae::rt;

namespace {

/// Delegates to a counted source but refuses every rewind — models a
/// source with no replay capability, forcing recovery onto the drain
/// fallback path.
class NoRewindSource : public WorkSource {
public:
  explicit NoRewindSource(std::uint64_t N) : Inner(N) {}
  Pull tryPull(Token &Out) override { return Inner.tryPull(Out); }
  Pull tryPullChunk(std::uint64_t Max, std::vector<Token> &Out) override {
    return Inner.tryPullChunk(Max, Out);
  }
  sim::Waitable &readyEvent() override { return Inner.readyEvent(); }
  double load() const override { return Inner.load(); }
  bool rewind(std::uint64_t Count) override { return Count == 0; }

private:
  CountedWorkSource Inner;
};

FlexibleRegion makePipe(std::vector<std::int64_t> *Tail) {
  FlexibleRegion R("release");
  RegionDesc D;
  D.Name = "release-pipe";
  D.S = Scheme::PsDswp;
  D.Tasks.emplace_back("a", TaskType::Seq, [](IterationContext &C) {
    C.Cost = 1000;
    C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
  });
  D.Tasks.emplace_back("b", TaskType::Par, [](IterationContext &C) {
    C.Cost = 9000;
    C.Out[0].Value = C.In[0].Value;
  });
  D.Tasks.emplace_back("c", TaskType::Seq, [Tail](IterationContext &C) {
    C.Cost = 800;
    Tail->push_back(C.In[0].Value);
  });
  D.Links.push_back({0, 1});
  D.Links.push_back({1, 2});
  R.addVariant(std::move(D));
  return R;
}

} // namespace

TEST(WorkSourceRelease, CountedRewindPastStartReturnsFalseWithoutAsserts) {
  CountedWorkSource Src(16);
  Token T;
  for (int I = 0; I < 4; ++I)
    ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_EQ(T.Value, 3);
  // Deeper than the 4-item pull history: must refuse, not wrap Next.
  EXPECT_FALSE(Src.rewind(5));
  EXPECT_FALSE(Src.rewind(~0ull));
  EXPECT_EQ(Src.remaining(), 12u) << "refused rewinds must not move the cursor";
  // The source still works, exactly once, after the refusals.
  EXPECT_TRUE(Src.rewind(4));
  std::uint64_t Pulled = 0;
  while (Src.tryPull(T) == WorkSource::Pull::Got)
    ++Pulled;
  EXPECT_EQ(Pulled, 16u);
  EXPECT_EQ(T.Value, 15);
}

TEST(WorkSourceRelease, QueueRewindPastHistoryReturnsFalse) {
  QueueWorkSource Src;
  for (int I = 0; I < 8; ++I) {
    Token Item;
    Item.Value = I;
    ASSERT_TRUE(Src.push(Item));
  }
  Token T;
  for (int I = 0; I < 3; ++I)
    ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_FALSE(Src.rewind(4)) << "only 3 items of history exist";
  EXPECT_TRUE(Src.rewind(3));
  ASSERT_EQ(Src.tryPull(T), WorkSource::Pull::Got);
  EXPECT_EQ(T.Value, 0);
}

TEST(WorkSourceRelease, RecoveryDrainsWhenRewindRefuses) {
  // End-to-end in the release flavor: abortive recovery against a source
  // that cannot replay must fall back to the pause-drain path and still
  // finish with complete, ordered, exactly-once output.
  sim::Simulator Sim;
  sim::Machine M(Sim, 8);
  RuntimeCosts Costs;
  Costs.OptimizedBarrier = false; // make the drain fallback observable
  NoRewindSource Src(5000);
  std::vector<std::int64_t> Tail;
  FlexibleRegion Region = makePipe(&Tail);
  RegionRunner Runner(M, Costs, Region, Src);
  RegionConfig C;
  C.S = Scheme::PsDswp;
  C.DoP = {1, 4, 1};
  Runner.start(C);
  Sim.scheduleAt(2 * sim::MSec, [&Runner] {
    RegionConfig N;
    N.S = Scheme::PsDswp;
    N.DoP = {1, 2, 1};
    EXPECT_TRUE(Runner.recover(std::move(N)));
  });
  Sim.run();
  EXPECT_TRUE(Runner.completed());
  EXPECT_EQ(Runner.recoveries(), 0u) << "rewind refused: no abortive path";
  EXPECT_GE(Runner.fullPauses(), 1u) << "recovery fell back to a drain";
  ASSERT_EQ(Tail.size(), 5000u);
  for (std::int64_t I = 0; I < 5000; ++I)
    ASSERT_EQ(Tail[static_cast<std::size_t>(I)], I);
}
