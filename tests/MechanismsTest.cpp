//===- MechanismsTest.cpp - Mechanism behaviour tests -----------------------===//
//
// Tests the Section 6.3 mechanisms: WQT-H's hysteresis toggling,
// WQ-Linear's continuous DoP, SEDA's local growth, TB/TBF's proportional
// assignment and fusion, FDP's limiter feedback, and TPC's power capping.
//
//===----------------------------------------------------------------------===//

#include "mechanisms/LaneMechanisms.h"
#include "mechanisms/PipeMechanisms.h"
#include "workloads/Experiment.h"

#include <gtest/gtest.h>

using namespace parcae;
using namespace parcae::rt;

TEST(WqtH, TogglesOnQueueOccupancyWithHysteresis) {
  LaneConfig SeqMode{24, false, 1};
  LaneConfig ParMode{3, true, 8};
  WqtH M(/*Threshold=*/6, /*Non=*/3, /*Noff=*/3, SeqMode, ParMode);
  // Starts in SEQ mode; consistently light queue flips to PAR after Noff.
  std::optional<LaneConfig> C;
  for (int I = 0; I < 4 && !C; ++I)
    C = M.onDispatch(1);
  ASSERT_TRUE(C);
  EXPECT_TRUE(C->InnerParallel);
  EXPECT_EQ(C->L, 8u);
  // A single heavy observation must NOT flip back (hysteresis)...
  EXPECT_FALSE(M.onDispatch(10).has_value());
  // ...but Non consecutive heavy ones must.
  C.reset();
  for (int I = 0; I < 4 && !C; ++I)
    C = M.onDispatch(10);
  ASSERT_TRUE(C);
  EXPECT_FALSE(C->InnerParallel);
  EXPECT_EQ(C->K, 24u);
}

TEST(WqtH, MixedObservationsResetCounter) {
  WqtH M(6, 3, 3, {24, false, 1}, {3, true, 8});
  EXPECT_FALSE(M.onDispatch(1).has_value());
  EXPECT_FALSE(M.onDispatch(1).has_value());
  EXPECT_FALSE(M.onDispatch(10).has_value()); // resets the streak
  EXPECT_FALSE(M.onDispatch(1).has_value());
  EXPECT_FALSE(M.onDispatch(1).has_value());
  EXPECT_FALSE(M.onDispatch(1).has_value());
  EXPECT_TRUE(M.onDispatch(1).has_value()); // 4th consecutive light
}

TEST(WqLinear, DoPFallsLinearlyWithQueue) {
  WqLinear M(/*N=*/24, /*DPmax=*/8, /*DPmin=*/1, /*Qmax=*/14);
  LaneConfig AtZero = M.initialConfig();
  EXPECT_TRUE(AtZero.InnerParallel);
  EXPECT_EQ(AtZero.L, 8u);
  EXPECT_EQ(AtZero.K, 3u);
  auto AtHalf = M.onDispatch(7.0);
  ASSERT_TRUE(AtHalf);
  EXPECT_LT(AtHalf->L, 8u);
  EXPECT_GE(AtHalf->L, 4u);
  auto AtMax = M.onDispatch(14.0);
  ASSERT_TRUE(AtMax);
  EXPECT_FALSE(AtMax->InnerParallel); // DoP bottoms out at 1 => SEQ inner
  EXPECT_EQ(AtMax->K, 24u);
}

TEST(WqLinear, RespectsDPmin) {
  // bzip-style: inner parallelism only profitable from DoP 4 on; the
  // formula clamps at dPmin so configurations like <8,3> never appear.
  WqLinear M(24, 6, 4, 10);
  auto C = M.onDispatch(9.0);
  ASSERT_TRUE(C);
  EXPECT_GE(C->L, 4u);
}

TEST(WqLinear, NoChangeNoChurn) {
  WqLinear M(24, 8, 1, 14);
  (void)M.onDispatch(0.0);
  EXPECT_FALSE(M.onDispatch(0.1).has_value()); // same rounded config
}

namespace {

PipeMechView makeView(const RegionDesc &D, const RegionConfig &C,
                      std::vector<double> Exec, std::vector<double> Load,
                      double Thr, unsigned MaxThreads = 24) {
  PipeMechView V;
  V.Desc = &D;
  V.Config = &C;
  V.ExecTime = std::move(Exec);
  V.Load = std::move(Load);
  V.Throughput = Thr;
  V.MaxThreads = MaxThreads;
  return V;
}

} // namespace

TEST(Seda, GrowsStagesOverThreshold) {
  PipelineApp App = makeFerret();
  const RegionDesc &D = App.Region.variant(Scheme::PsDswp);
  RegionConfig C = evenConfig(App, Scheme::PsDswp, 2);
  SedaMechanism M(/*QueueThreshold=*/8);
  // Stage 4 (rank) is backed up.
  auto Out = M.decide(makeView(D, C, std::vector<double>(6, 1e6),
                               {0, 1, 2, 3, 20, 0}, 10));
  ASSERT_TRUE(Out);
  EXPECT_EQ(Out->DoP[4], 3u);
  EXPECT_EQ(Out->DoP[1], 2u); // others untouched
}

TEST(Tbf, ProportionalAssignment) {
  PipelineApp App = makeFerret();
  const RegionDesc &D = App.Region.variant(Scheme::PsDswp);
  RegionConfig C = evenConfig(App, Scheme::PsDswp, 2);
  TbfMechanism M(/*EnableFusion=*/false);
  // Exec times 60/80/70/150 ms for the four parallel stages.
  auto Out = M.decide(makeView(
      D, C, {8e6, 60e6, 80e6, 70e6, 150e6, 5e6}, std::vector<double>(6, 0),
      10));
  ASSERT_TRUE(Out);
  // rank (150 ms) gets the largest team.
  EXPECT_GT(Out->DoP[4], Out->DoP[1]);
  EXPECT_GT(Out->DoP[4], Out->DoP[3]);
  EXPECT_LE(Out->totalThreads(), 24u);
  EXPECT_EQ(Out->DoP[0], 1u);
  EXPECT_EQ(Out->DoP[5], 1u);
}

TEST(Tbf, FusionOnImbalance) {
  PipelineApp App = makeFerret();
  const RegionDesc &D = App.Region.variant(Scheme::PsDswp);
  RegionConfig C = evenConfig(App, Scheme::PsDswp, 2);
  TbfMechanism M(/*EnableFusion=*/true, /*FusionImbalance=*/0.5);
  // 60 vs 150 ms: imbalance 0.6 > 0.5 => fuse.
  auto Out = M.decide(makeView(
      D, C, {8e6, 60e6, 80e6, 70e6, 150e6, 5e6}, std::vector<double>(6, 0),
      10));
  ASSERT_TRUE(Out);
  EXPECT_EQ(Out->S, Scheme::Fused);
  EXPECT_EQ(Out->DoP.size(), 3u);
  EXPECT_EQ(Out->DoP[1], 22u);
}

TEST(Fdp, GrowsLimiterWhileImproving) {
  PipelineApp App = makeFerret();
  const RegionDesc &D = App.Region.variant(Scheme::PsDswp);
  RegionConfig C = evenConfig(App, Scheme::PsDswp, 1);
  FdpMechanism M;
  // First decision: grow the limiter (rank, worst capacity).
  auto Out1 =
      M.decide(makeView(D, C, {8e6, 60e6, 80e6, 70e6, 150e6, 5e6},
                        std::vector<double>(6, 0), 10));
  ASSERT_TRUE(Out1);
  EXPECT_EQ(Out1->DoP[4], 2u);
  // Throughput improved: keep growing.
  RegionConfig C2 = *Out1;
  auto Out2 =
      M.decide(makeView(D, C2, {8e6, 60e6, 80e6, 70e6, 150e6, 5e6},
                        std::vector<double>(6, 0), 12));
  ASSERT_TRUE(Out2);
  // Throughput flat: revert to the last improving config and move on to
  // probe the next-slowest stage.
  RegionConfig C3 = *Out2;
  auto Out3 =
      M.decide(makeView(D, C3, {8e6, 60e6, 80e6, 70e6, 150e6, 5e6},
                        std::vector<double>(6, 0), 12));
  ASSERT_TRUE(Out3);
  EXPECT_EQ(*Out3, C2); // reverted to the last improving config
  // The next decision probes a different stage: the failed stage (Out2
  // grew one stage without improvement) is exhausted and skipped.
  unsigned FailedStage = 0;
  for (unsigned T = 0; T < 6; ++T)
    if (Out2->DoP[T] != C2.DoP[T])
      FailedStage = T;
  auto Out4 = M.decide(makeView(D, C2, {8e6, 60e6, 80e6, 70e6, 150e6, 5e6},
                                std::vector<double>(6, 0), 12));
  ASSERT_TRUE(Out4);
  EXPECT_EQ(Out4->DoP[FailedStage], C2.DoP[FailedStage])
      << "exhausted stage re-probed";
  EXPECT_GT(Out4->totalThreads(), C2.totalThreads());
}

TEST(Tpc, BacksOffWhenOverBudget) {
  PipelineApp App = makeFerret();
  const RegionDesc &D = App.Region.variant(Scheme::PsDswp);
  RegionConfig C = evenConfig(App, Scheme::PsDswp, 4);
  TpcMechanism M;
  PipeMechView V = makeView(D, C, {8e6, 60e6, 80e6, 70e6, 150e6, 5e6},
                            std::vector<double>(6, 0), 10);
  V.PowerWatts = 790;
  V.PowerTargetWatts = 720;
  auto Out = M.decide(V);
  ASSERT_TRUE(Out);
  EXPECT_LT(Out->totalThreads(), C.totalThreads());
}

TEST(Tpc, GrowsWithinBudget) {
  PipelineApp App = makeFerret();
  const RegionDesc &D = App.Region.variant(Scheme::PsDswp);
  RegionConfig C = evenConfig(App, Scheme::PsDswp, 1);
  TpcMechanism M;
  PipeMechView V = makeView(D, C, {8e6, 60e6, 80e6, 70e6, 150e6, 5e6},
                            std::vector<double>(6, 0), 10);
  V.PowerWatts = 650;
  V.PowerTargetWatts = 720;
  auto Out = M.decide(V);
  ASSERT_TRUE(Out);
  EXPECT_GT(Out->totalThreads(), C.totalThreads());
}

TEST(EndToEnd, TbfBeatsStaticEvenOnFerret) {
  // The Table 8.5 property: TBF outperforms the static even distribution.
  PipelineRunSpec Even;
  Even.Requests = 1500;
  Even.Initial = evenConfig(makeFerret(), Scheme::PsDswp, 5); // 22 threads
  PipelineRunResult Base = runPipelineExperiment(makeFerret, Even);

  TbfMechanism Tbf(/*EnableFusion=*/true);
  PipelineRunSpec Spec;
  Spec.Requests = 1500;
  Spec.Initial = evenConfig(makeFerret(), Scheme::PsDswp, 5);
  Spec.Mech = &Tbf;
  PipelineRunResult R = runPipelineExperiment(makeFerret, Spec);

  EXPECT_GT(R.Server.ThroughputPerSec, Base.Server.ThroughputPerSec * 1.2);
}

TEST(EndToEnd, FdpImprovesDedup) {
  PipelineRunSpec Even;
  Even.Requests = 1200;
  Even.Initial = evenConfig(makeDedup(), Scheme::PsDswp, 7); // 23 threads
  PipelineRunResult Base = runPipelineExperiment(makeDedup, Even);

  FdpMechanism Fdp;
  PipelineRunSpec Spec;
  Spec.Requests = 1200;
  Spec.Initial = evenConfig(makeDedup(), Scheme::PsDswp, 7);
  Spec.Mech = &Fdp;
  PipelineRunResult R = runPipelineExperiment(makeDedup, Spec);

  EXPECT_GT(R.Server.ThroughputPerSec, Base.Server.ThroughputPerSec);
}

TEST(EndToEnd, TpcKeepsPowerNearTarget) {
  TpcMechanism Tpc;
  PipelineRunSpec Spec;
  Spec.Requests = 3000;
  Spec.Initial = evenConfig(makeFerret(), Scheme::PsDswp, 1);
  Spec.Mech = &Tpc;
  Spec.PowerTargetWatts = 0.9 * sim::PowerModel{}.peakWatts(24);
  PipelineRunResult R = runPipelineExperiment(makeFerret, Spec);

  // Steady-state power must respect the budget (within one thread's worth
  // of dynamic power, given the PDU's 13-samples-per-minute lag).
  double Budget = Spec.PowerTargetWatts;
  int Violations = 0, Samples = 0;
  for (const auto &S : R.Timeline) {
    if (S.At < 300 * sim::Sec || S.PowerWatts <= 0)
      continue; // let the controller converge
    ++Samples;
    if (S.PowerWatts > Budget + sim::PowerModel{}.PerCoreActiveWatts)
      ++Violations;
  }
  if (Samples > 0) {
    EXPECT_LT(static_cast<double>(Violations) / Samples, 0.2);
  }
}
