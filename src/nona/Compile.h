//===- Compile.h - The Nona compiler driver ---------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Nona compiler (Chapter 4, Algorithm 1): builds the PDG of a loop,
/// applies the DOANY and PS-DSWP parallelizers, runs MTCG-style code
/// generation, and applies the flexible-code-generation transformations,
/// producing a FlexibleRegion whose tasks *execute* the loop (they
/// interpret their instruction slices against shared abstract memory and
/// communicate cross-task values over the region's channels) so that
/// semantics preservation under arbitrary reconfiguration schedules is
/// machine-checkable.
///
/// The PS-DSWP partitioner implements the coalescence rules of Invariant
/// 4.3.1: it repeatedly extracts the heaviest mergeable set of parallel
/// SCCs into one parallel task and recursively partitions the predecessor
/// and successor subgraphs (Section 4.3.2).
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_NONA_COMPILE_H
#define PARCAE_NONA_COMPILE_H

#include "core/Region.h"
#include "core/WorkSource.h"
#include "interp/Memory.h"
#include "ir/IR.h"
#include "pdg/PDG.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace parcae::ir {

struct CompilerOptions {
  /// Minimum estimated cycles for a subgraph to be pipelined further;
  /// lighter subgraphs coalesce into a single task (the paper's SCCmin
  /// aggregation heuristic).
  double SccMinWeight = 40.0;
  bool EnableDoAny = true;
  bool EnablePsDswp = true;
};

/// One task of a partition: a set of SCC indices.
struct TaskPlan {
  std::vector<unsigned> Sccs;
  std::vector<unsigned> InstIds; ///< union of the SCCs' instructions
  bool Parallel = false;
  double Weight = 0;
};

/// A partition of the DAG_SCC into pipeline tasks.
struct PartitionPlan {
  rt::Scheme S = rt::Scheme::PsDswp;
  std::vector<TaskPlan> Tasks; ///< pipeline order
};

/// Runs the PS-DSWP coalescing algorithm.
PartitionPlan psdswpPartition(const PDG &P, const CompilerOptions &Opt);

/// Verifies Invariant 4.3.1 on \p Plan:
///  1. every instruction is assigned to exactly one task,
///  2. dependencies flow forward in the pipeline,
///  3. a parallel task has no dependency chain between its members that
///     passes through another task.
/// Returns false and fills \p Why on violation.
bool checkCoalescenceInvariant(const PDG &P, const PartitionPlan &Plan,
                               std::string *Why = nullptr);

/// A loop compiled by Nona: executable variants plus shared state.
class CompiledLoop {
public:
  /// \p TripCount: number of iterations for counted loops (uncounted
  /// loops pass a generous bound; the head ends the stream itself).
  CompiledLoop(const Function &F, AliasOracle AA, std::uint64_t TripCount,
               CompilerOptions Opt = {});
  ~CompiledLoop();
  CompiledLoop(const CompiledLoop &) = delete;
  CompiledLoop &operator=(const CompiledLoop &) = delete;

  rt::FlexibleRegion &region() { return Region; }
  const PDG &pdg() const { return *P; }

  bool hasDoAny() const { return Region.hasVariant(rt::Scheme::DoAny); }
  bool hasPsDswp() const { return Region.hasVariant(rt::Scheme::PsDswp); }

  /// Fresh work source for one run.
  std::unique_ptr<rt::CountedWorkSource> makeSource() const;

  /// Resets memory and carried state for a fresh run.
  void resetState();

  /// Execution-visible memory after (or during) a run.
  Memory &memory();

  /// Final value of a recognized non-induction reduction (merged over
  /// privatized partials).
  std::int64_t reductionValue(unsigned PhiId) const;

  /// Scales the latency of Call instructions (the workload-variation
  /// knob for the Figure 8.8 experiments).
  void setWorkScale(double S);

  /// Compilation summary: schemes, tasks, channels (for reports/tests).
  std::string report() const;

  /// Reference semantics: interprets the loop sequentially (host-side, no
  /// simulation). Returns final memory; fills \p ReductionsOut with final
  /// reduction values keyed by phi id.
  static Memory
  interpret(const Function &F, std::uint64_t TripCount,
            std::map<unsigned, std::int64_t> *ReductionsOut = nullptr);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  const Function &F;
  std::unique_ptr<PDG> P;
  rt::FlexibleRegion Region;
  std::uint64_t TripCount;
};

} // namespace parcae::ir

#endif // PARCAE_NONA_COMPILE_H
