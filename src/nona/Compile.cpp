//===- Compile.cpp - The Nona compiler driver --------------------------------===//

#include "nona/Compile.h"

#include "ir/Dominators.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace parcae::ir;
namespace rt = parcae::rt;
namespace sim = parcae::sim;

//===----------------------------------------------------------------------===//
// PS-DSWP partitioning (Section 4.3.2)
//===----------------------------------------------------------------------===//

namespace {

/// Transitive closure over the SCC condensation.
std::vector<std::vector<bool>> reachability(const PDG &P) {
  unsigned N = static_cast<unsigned>(P.sccs().size());
  std::vector<std::vector<bool>> R(N, std::vector<bool>(N, false));
  for (auto [A, B] : P.sccEdges())
    R[A][B] = true;
  // Edges are topologically ordered (A < B), so one backward sweep closes.
  for (unsigned A = N; A-- > 0;)
    for (unsigned B = A + 1; B < N; ++B)
      if (R[A][B])
        for (unsigned C = B + 1; C < N; ++C)
          R[A][C] = R[A][C] || R[B][C];
  return R;
}

/// Whether merging \p Set (parallel SCCs) into one parallel task keeps
/// Invariant 4.3.1(3): no dependency chain between two members passes
/// through a non-member of \p Set drawn from \p Universe.
bool mergeable(const std::vector<unsigned> &Set,
               const std::vector<unsigned> &Universe,
               const std::vector<std::vector<bool>> &Reach) {
  auto InSet = [&](unsigned X) {
    return std::find(Set.begin(), Set.end(), X) != Set.end();
  };
  for (unsigned A : Set)
    for (unsigned B : Set) {
      if (A == B || !Reach[A][B])
        continue;
      for (unsigned M : Universe) {
        if (InSet(M))
          continue;
        if (Reach[A][M] && Reach[M][B])
          return false;
      }
    }
  return true;
}

/// Recursive partitioning: extract the heaviest mergeable parallel set,
/// split the rest into predecessor/successor subgraphs, recurse.
void partitionRec(const PDG &P, const std::vector<std::vector<bool>> &Reach,
                  std::vector<unsigned> Subgraph, double MinWeight,
                  std::vector<TaskPlan> &Out) {
  if (Subgraph.empty())
    return;
  const auto &Sccs = P.sccs();

  double Total = 0;
  std::vector<unsigned> Parallel;
  for (unsigned S : Subgraph) {
    Total += Sccs[S].Weight;
    if (!Sccs[S].Sequential)
      Parallel.push_back(S);
  }

  auto MakeSingleTask = [&](bool Par) {
    TaskPlan T;
    T.Sccs = Subgraph;
    T.Parallel = Par;
    T.Weight = Total;
    for (unsigned S : Subgraph)
      for (unsigned I : Sccs[S].InstIds)
        T.InstIds.push_back(I);
    std::sort(T.InstIds.begin(), T.InstIds.end());
    Out.push_back(std::move(T));
  };

  // Too light to pipeline further, or nothing parallel: one task. It may
  // itself be parallel if every member SCC is.
  if (Parallel.empty() || Total < MinWeight) {
    MakeSingleTask(Parallel.size() == Subgraph.size());
    return;
  }

  // Greedy: seed with the heaviest parallel SCC, grow while mergeable.
  std::sort(Parallel.begin(), Parallel.end(), [&](unsigned A, unsigned B) {
    return Sccs[A].Weight > Sccs[B].Weight;
  });
  std::vector<unsigned> Merged = {Parallel[0]};
  for (std::size_t I = 1; I < Parallel.size(); ++I) {
    std::vector<unsigned> Trial = Merged;
    Trial.push_back(Parallel[I]);
    if (mergeable(Trial, Subgraph, Reach))
      Merged = std::move(Trial);
  }
  auto InMerged = [&](unsigned X) {
    return std::find(Merged.begin(), Merged.end(), X) != Merged.end();
  };

  // Split the rest into predecessors, successors, and free nodes.
  std::vector<unsigned> Preds, Succs;
  double PredW = 0, SuccW = 0;
  std::vector<unsigned> Free;
  for (unsigned S : Subgraph) {
    if (InMerged(S))
      continue;
    bool ToMerged = false, FromMerged = false;
    for (unsigned M : Merged) {
      ToMerged |= Reach[S][M];
      FromMerged |= Reach[M][S];
    }
    assert(!(ToMerged && FromMerged) && "cycle through the merged task");
    if (ToMerged) {
      Preds.push_back(S);
      PredW += Sccs[S].Weight;
    } else if (FromMerged) {
      Succs.push_back(S);
      SuccW += Sccs[S].Weight;
    } else {
      Free.push_back(S);
    }
  }
  // Balance free nodes by weight (Section 4.3.2).
  for (unsigned S : Free) {
    if (PredW <= SuccW) {
      Preds.push_back(S);
      PredW += Sccs[S].Weight;
    } else {
      Succs.push_back(S);
      SuccW += Sccs[S].Weight;
    }
  }
  std::sort(Preds.begin(), Preds.end());
  std::sort(Succs.begin(), Succs.end());

  partitionRec(P, Reach, std::move(Preds), MinWeight, Out);
  {
    TaskPlan T;
    T.Sccs = Merged;
    std::sort(T.Sccs.begin(), T.Sccs.end());
    T.Parallel = true;
    for (unsigned S : T.Sccs) {
      T.Weight += Sccs[S].Weight;
      for (unsigned I : Sccs[S].InstIds)
        T.InstIds.push_back(I);
    }
    std::sort(T.InstIds.begin(), T.InstIds.end());
    Out.push_back(std::move(T));
  }
  partitionRec(P, Reach, std::move(Succs), MinWeight, Out);
}

} // namespace

PartitionPlan parcae::ir::psdswpPartition(const PDG &P,
                                          const CompilerOptions &Opt) {
  PartitionPlan Plan;
  Plan.S = rt::Scheme::PsDswp;
  std::vector<unsigned> All(P.sccs().size());
  for (unsigned I = 0; I < All.size(); ++I)
    All[I] = I;
  auto Reach = reachability(P);
  partitionRec(P, Reach, std::move(All), Opt.SccMinWeight, Plan.Tasks);
  return Plan;
}

bool parcae::ir::checkCoalescenceInvariant(const PDG &P,
                                           const PartitionPlan &Plan,
                                           std::string *Why) {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };

  // 1. Exactly-once assignment.
  std::map<unsigned, unsigned> TaskOf;
  for (unsigned T = 0; T < Plan.Tasks.size(); ++T)
    for (unsigned I : Plan.Tasks[T].InstIds) {
      if (!TaskOf.emplace(I, T).second)
        return Fail("instruction assigned to two tasks");
    }
  for (const Instruction *N : P.nodes())
    if (!TaskOf.count(N->Id))
      return Fail("instruction not assigned to any task");

  // 2. Dependencies flow forward.
  for (const PDGEdge &E : P.edges()) {
    if (E.removable())
      continue;
    unsigned A = TaskOf.at(E.From), B = TaskOf.at(E.To);
    if (A > B)
      return Fail("dependence flows backwards in the pipeline");
  }

  // 3. No through-outside chain between members of a parallel task.
  auto Reach = reachability(P);
  for (const TaskPlan &T : Plan.Tasks) {
    if (!T.Parallel)
      continue;
    std::vector<unsigned> Universe(P.sccs().size());
    for (unsigned I = 0; I < Universe.size(); ++I)
      Universe[I] = I;
    if (!mergeable(T.Sccs, Universe, Reach))
      return Fail("dependency chain escapes a parallel task");
    for (unsigned S : T.Sccs)
      if (P.sccs()[S].Sequential)
        return Fail("sequential SCC inside a parallel task");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Execution engine shared by all lowered variants
//===----------------------------------------------------------------------===//

namespace {

constexpr unsigned MaxSlots = 64;

struct ReductionState {
  RecurrenceInfo Info;
  std::int64_t Init = 0;
  std::vector<std::int64_t> Partials = std::vector<std::int64_t>(MaxSlots, 0);
  std::vector<char> Used = std::vector<char>(MaxSlots, 0);

  void apply(unsigned Slot, std::int64_t V) {
    assert(Slot < MaxSlots);
    if (!Used[Slot]) {
      Used[Slot] = 1;
      Partials[Slot] = V;
      return;
    }
    switch (Info.Kind) {
    case Opcode::Add:
      Partials[Slot] += V;
      break;
    case Opcode::Min:
      Partials[Slot] = std::min(Partials[Slot], V);
      break;
    case Opcode::Max:
      Partials[Slot] = std::max(Partials[Slot], V);
      break;
    default:
      assert(false && "unsupported reduction kind");
    }
  }

  std::int64_t merged() const {
    std::int64_t Acc = Init;
    for (unsigned S = 0; S < MaxSlots; ++S) {
      if (!Used[S])
        continue;
      switch (Info.Kind) {
      case Opcode::Add:
        Acc += Partials[S];
        break;
      case Opcode::Min:
        Acc = std::min(Acc, Partials[S]);
        break;
      case Opcode::Max:
        Acc = std::max(Acc, Partials[S]);
        break;
      default:
        assert(false && "unsupported reduction kind");
      }
    }
    return Acc;
  }

  void reset() {
    Partials.assign(MaxSlots, 0);
    Used.assign(MaxSlots, 0);
  }
};

/// Shared execution state of one compiled loop (persists across scheme
/// switches, exactly like the program's heap does in the real system).
struct ExecState {
  const Function &F;
  Memory Mem;
  std::map<ValueId, std::int64_t> LiveIns;
  std::map<const BasicBlock *, const BasicBlock *> IPDomInLoop;
  double WorkScale = 1.0;
  std::uint64_t TripCount = 0;

  // Recurrences.
  std::map<unsigned, RecurrenceInfo> InductionByPhi; ///< phi id -> info
  std::map<unsigned, std::int64_t> InductionInit;    ///< phi id -> init
  std::map<unsigned, std::int64_t> InductionStep;    ///< phi id -> step
  std::map<unsigned, ReductionState> RedByUpdate;    ///< update id -> state
  std::map<unsigned, unsigned> RedUpdateByPhi;       ///< phi id -> update id
  std::map<unsigned, std::int64_t> CarriedPhi;       ///< other phis: value
  std::map<unsigned, std::int64_t> CarriedPhiInit;

  const Instruction *TailBranch = nullptr;

  explicit ExecState(const Function &F) : F(F) {}
};

/// Per-task lowering data captured by the task's functor.
struct TaskLower {
  std::shared_ptr<ExecState> St;
  bool FullOwnership = false;
  bool IsHead = false;
  bool OwnsTailBranch = false;
  std::vector<char> Owned;                    ///< by instruction id
  std::vector<std::vector<ValueId>> InVals;   ///< per in-link payload
  std::vector<std::vector<ValueId>> OutVals;  ///< per out-link payload
};

std::int64_t envGet(const std::map<ValueId, std::int64_t> &Env, ValueId V) {
  auto It = Env.find(V);
  assert(It != Env.end() && "value not available in this task");
  return It->second;
}

/// Executes iteration Ctx.Seq of this task's slice; fills cost, critical
/// sections, output payloads, and the end-of-stream flag.
void runIteration(const TaskLower &T, rt::IterationContext &Ctx) {
  ExecState &St = *T.St;
  const Loop &L = St.F.TheLoop;
  std::map<ValueId, std::int64_t> Env = St.LiveIns;

  // Ingest payloads (head tasks receive the raw work token instead).
  if (!T.IsHead) {
    assert(Ctx.In.size() == T.InVals.size() && "in-link payload mismatch");
    for (std::size_t I = 0; I < Ctx.In.size(); ++I) {
      auto Vals =
          std::static_pointer_cast<std::vector<std::int64_t>>(Ctx.In[I].Ref);
      assert(Vals && Vals->size() == T.InVals[I].size());
      for (std::size_t J = 0; J < T.InVals[I].size(); ++J)
        Env[T.InVals[I][J]] = (*Vals)[J];
    }
  }

  auto Mine = [&](const Instruction &I) {
    return T.FullOwnership || T.Owned[I.Id];
  };

  std::int64_t Seq = static_cast<std::int64_t>(Ctx.Seq);
  sim::SimTime Cost = 0;
  std::map<int, sim::SimTime> CritCost;
  bool ContinueCond = true;
  bool SawTailCond = false;

  const BasicBlock *B = L.Header;
  unsigned Guard = 0;
  while (true) {
    assert(++Guard < 100000 && "runaway iteration walk");
    for (const auto &IP : B->Insts) {
      const Instruction &I = *IP;
      if (I.isBranch())
        break;

      if (I.isPhi()) {
        auto Ind = St.InductionByPhi.find(I.Id);
        if (Ind != St.InductionByPhi.end()) {
          // Induction: every task recomputes locally from the iteration
          // index (the relaxed recurrence of Section 4.1).
          Env[I.Def] =
              St.InductionInit.at(I.Id) + St.InductionStep.at(I.Id) * Seq;
          if (Mine(I))
            Cost += I.Latency;
          continue;
        }
        if (St.RedUpdateByPhi.count(I.Id))
          continue; // reduction phi: value lives in privatized partials
        if (Mine(I)) {
          // Ordinary carried phi: sequential task, iterations in order.
          Env[I.Def] = Ctx.Seq == 0 ? St.CarriedPhiInit.at(I.Id)
                                    : St.CarriedPhi.at(I.Id);
          Cost += I.Latency;
        }
        continue;
      }

      // Non-induction reduction update: accumulate privately.
      bool IsRedUpdate = false;
      for (auto &[UpdId, Red] : St.RedByUpdate) {
        if (UpdId != I.Id)
          continue;
        IsRedUpdate = true;
        if (Mine(I)) {
          // The non-phi operand.
          const Instruction *Phi = St.F.instById(Red.Info.PhiId);
          ValueId Other =
              I.Uses[0] == Phi->Def ? I.Uses[1] : I.Uses[0];
          Red.apply(Ctx.Slot, envGet(Env, Other));
          Cost += I.Latency;
        }
        break;
      }
      if (IsRedUpdate)
        continue;

      if (!Mine(I))
        continue; // value arrives by payload if this task needs it

      switch (I.Op) {
      case Opcode::Const:
        Env[I.Def] = I.Imm;
        break;
      case Opcode::Add:
        Env[I.Def] = envGet(Env, I.Uses[0]) + envGet(Env, I.Uses[1]);
        break;
      case Opcode::Sub:
        Env[I.Def] = envGet(Env, I.Uses[0]) - envGet(Env, I.Uses[1]);
        break;
      case Opcode::Mul:
        Env[I.Def] = envGet(Env, I.Uses[0]) * envGet(Env, I.Uses[1]);
        break;
      case Opcode::Mod: {
        std::int64_t D = envGet(Env, I.Uses[1]);
        assert(D > 0 && "mod by non-positive divisor");
        Env[I.Def] = envGet(Env, I.Uses[0]) % D;
        break;
      }
      case Opcode::Min:
        Env[I.Def] =
            std::min(envGet(Env, I.Uses[0]), envGet(Env, I.Uses[1]));
        break;
      case Opcode::Max:
        Env[I.Def] =
            std::max(envGet(Env, I.Uses[0]), envGet(Env, I.Uses[1]));
        break;
      case Opcode::CmpLt:
        Env[I.Def] =
            envGet(Env, I.Uses[0]) < envGet(Env, I.Uses[1]) ? 1 : 0;
        break;
      case Opcode::Load: {
        std::int64_t Idx = I.Uses.empty() ? 0 : envGet(Env, I.Uses[0]);
        Env[I.Def] = St.Mem.load(I.MemObject, Idx);
        if (I.Commutative)
          CritCost[I.MemObject] += I.Latency;
        else
          Cost += I.Latency;
        break;
      }
      case Opcode::Store: {
        std::int64_t Idx =
            I.Uses.size() < 2 ? 0 : envGet(Env, I.Uses[0]);
        std::int64_t V = envGet(Env, I.Uses.back());
        St.Mem.store(I.MemObject, Idx, V);
        if (I.Commutative)
          CritCost[I.MemObject] += I.Latency;
        else
          Cost += I.Latency;
        break;
      }
      case Opcode::Call: {
        std::vector<std::int64_t> Args;
        for (ValueId U : I.Uses)
          Args.push_back(envGet(Env, U));
        Env[I.Def] = evalCall(I, Args, St.Mem);
        auto Lat = static_cast<sim::SimTime>(
            static_cast<double>(I.Latency) * St.WorkScale);
        if (I.Commutative && I.MemObject >= 0)
          CritCost[I.MemObject] += Lat;
        else
          Cost += Lat;
        break;
      }
      case Opcode::Phi:
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Ret:
        assert(false && "terminators and phis handled elsewhere");
      }
    }

    const Instruction *Term = B->terminator();
    if (B == L.Tail) {
      if (T.FullOwnership || T.Owned[Term->Id]) {
        ContinueCond = envGet(Env, Term->Uses[0]) != 0;
        SawTailCond = true;
        Cost += Term->Latency;
      }
      break;
    }
    if (Term->Op == Opcode::Br) {
      B = B->Succs[0];
      continue;
    }
    // In-loop conditional: follow it if the condition is available,
    // otherwise no instruction of this task lives inside the region —
    // jump straight to the join point.
    auto It = Env.find(Term->Uses[0]);
    if (It != Env.end()) {
      if (T.FullOwnership || T.Owned[Term->Id])
        Cost += Term->Latency;
      B = It->second != 0 ? B->Succs[0] : B->Succs[1];
    } else {
      B = St.IPDomInLoop.at(B);
    }
  }

  // Commit carried phis this task owns.
  for (const auto &IP : L.Header->Insts) {
    const Instruction &I = *IP;
    if (!I.isPhi() || !Mine(I))
      continue;
    if (St.InductionByPhi.count(I.Id) || St.RedUpdateByPhi.count(I.Id))
      continue;
    auto It = Env.find(I.Uses[1]);
    assert(It != Env.end() && "carried value not computed by its task");
    St.CarriedPhi[I.Id] = It->second;
  }

  // Uncounted loops: the task owning the exit branch ends the stream.
  if (SawTailCond && T.IsHead && !ContinueCond)
    Ctx.EndOfStream = true;

  // Emit output payloads.
  assert(Ctx.Out.size() == T.OutVals.size() && "out-link payload mismatch");
  for (std::size_t K = 0; K < T.OutVals.size(); ++K) {
    auto Vals = std::make_shared<std::vector<std::int64_t>>();
    Vals->reserve(T.OutVals[K].size());
    for (ValueId V : T.OutVals[K]) {
      auto It = Env.find(V);
      // Values defined on untaken paths are never read downstream.
      Vals->push_back(It == Env.end() ? 0 : It->second);
    }
    Ctx.Out[K].Ref = std::move(Vals);
  }

  Ctx.Cost = Cost;
  for (auto [Obj, Cycles] : CritCost)
    Ctx.Criticals.push_back({Obj, Cycles});
}

} // namespace

//===----------------------------------------------------------------------===//
// CompiledLoop
//===----------------------------------------------------------------------===//

struct CompiledLoop::Impl {
  std::shared_ptr<ExecState> St;
  std::vector<std::shared_ptr<TaskLower>> Lowerings;
  std::string Report;
};

namespace {

/// Evaluates the preheader once (the body of Tinit) into live-in values,
/// and seeds recurrence/carried-phi initial values.
void seedState(ExecState &St) {
  const Loop &L = St.F.TheLoop;
  St.LiveIns.clear();
  if (L.Preheader) {
    std::map<ValueId, std::int64_t> Env;
    for (const auto &IP : L.Preheader->Insts) {
      const Instruction &I = *IP;
      switch (I.Op) {
      case Opcode::Const:
        Env[I.Def] = I.Imm;
        break;
      case Opcode::Add:
        Env[I.Def] = envGet(Env, I.Uses[0]) + envGet(Env, I.Uses[1]);
        break;
      case Opcode::Load: {
        std::int64_t Idx = I.Uses.empty() ? 0 : envGet(Env, I.Uses[0]);
        Env[I.Def] = St.Mem.load(I.MemObject, Idx);
        break;
      }
      case Opcode::Br:
        break;
      default:
        assert(false && "unsupported preheader instruction");
      }
    }
    St.LiveIns = std::move(Env);
  }

  for (const auto &IP : L.Header->Insts) {
    const Instruction &I = *IP;
    if (!I.isPhi())
      continue;
    std::int64_t Init = 0;
    auto It = St.LiveIns.find(I.Uses[0]);
    assert(It != St.LiveIns.end() && "phi initial value must be a live-in");
    Init = It->second;
    if (St.InductionByPhi.count(I.Id)) {
      St.InductionInit[I.Id] = Init;
      ValueId StepV = St.InductionByPhi.at(I.Id).StepValue;
      auto StepIt = St.LiveIns.find(StepV);
      assert(StepIt != St.LiveIns.end() &&
             "induction step must be a loop live-in");
      St.InductionStep[I.Id] = StepIt->second;
    } else if (St.RedUpdateByPhi.count(I.Id)) {
      auto &Red = St.RedByUpdate.at(St.RedUpdateByPhi.at(I.Id));
      Red.Init = Init;
      Red.reset();
    } else {
      St.CarriedPhiInit[I.Id] = Init;
    }
  }
  St.CarriedPhi.clear();
}

} // namespace

CompiledLoop::CompiledLoop(const Function &F, AliasOracle AA,
                           std::uint64_t TripCount, CompilerOptions Opt)
    : I(std::make_unique<Impl>()), F(F), Region(F.name()),
      TripCount(TripCount) {
  F.verify();
  P = std::make_unique<PDG>(F, AA);

  auto St = std::make_shared<ExecState>(F);
  St->TripCount = TripCount;
  St->TailBranch = F.TheLoop.Tail->terminator();
  I->St = St;

  // Recurrence tables.
  for (const RecurrenceInfo &R : P->recurrences()) {
    if (R.IsInduction) {
      St->InductionByPhi[R.PhiId] = R;
    } else {
      ReductionState RS;
      RS.Info = R;
      St->RedByUpdate.emplace(R.UpdateId, std::move(RS));
      St->RedUpdateByPhi[R.PhiId] = R.UpdateId;
    }
  }

  // Intra-loop immediate post-dominators for path skipping.
  {
    const BasicBlock *Sink = nullptr;
    for (const auto &B : F.blocks())
      if (B->Succs.empty())
        Sink = B.get();
    PostDominators PD(F, Sink);
    for (const BasicBlock *B : F.TheLoop.Blocks)
      if (const BasicBlock *IP = PD.ipdom(B))
        St->IPDomInLoop[B] = IP;
  }

  seedState(*St);

  std::string &Rep = I->Report;
  Rep = "Nona compilation of '" + F.name() + "'\n";
  Rep += "  PDG: " + std::to_string(P->nodes().size()) + " nodes, " +
         std::to_string(P->edges().size()) + " edges, " +
         std::to_string(P->sccs().size()) + " SCCs, " +
         std::to_string(P->inhibitors().size()) +
         " non-removable carried deps\n";

  auto MakeVariantTask = [&](std::shared_ptr<TaskLower> TL, std::string Name,
                             rt::TaskType Type) {
    rt::Task T(std::move(Name), Type,
               [TL](rt::IterationContext &Ctx) { runIteration(*TL, Ctx); });
    return T;
  };

  // --- SEQ variant (always) -------------------------------------------
  {
    auto TL = std::make_shared<TaskLower>();
    TL->St = St;
    TL->FullOwnership = true;
    TL->IsHead = true;
    TL->OwnsTailBranch = true;
    I->Lowerings.push_back(TL);
    rt::RegionDesc D;
    D.Name = F.name() + "-seq";
    D.S = rt::Scheme::Seq;
    D.Tasks.push_back(MakeVariantTask(TL, "loop", rt::TaskType::Seq));
    Region.addVariant(std::move(D));
    Rep += "  SEQ: 1 task\n";
  }

  // --- DOANY variant (Section 4.3.1) ----------------------------------
  if (Opt.EnableDoAny && P->inhibitors().empty()) {
    auto TL = std::make_shared<TaskLower>();
    TL->St = St;
    TL->FullOwnership = true;
    TL->IsHead = true;
    TL->OwnsTailBranch = true;
    I->Lowerings.push_back(TL);
    rt::RegionDesc D;
    D.Name = F.name() + "-doany";
    D.S = rt::Scheme::DoAny;
    D.Tasks.push_back(MakeVariantTask(TL, "doany", rt::TaskType::Par));
    Region.addVariant(std::move(D));
    Rep += "  DOANY: applicable\n";
  } else if (Opt.EnableDoAny) {
    Rep += "  DOANY: rejected (" +
           std::to_string(P->inhibitors().size()) +
           " inhibiting dependencies)\n";
  }

  // --- PS-DSWP variant (Sections 4.3.2-4.5) ---------------------------
  if (Opt.EnablePsDswp) {
    PartitionPlan Plan = psdswpPartition(*P, Opt);
    std::string Why;
    bool Valid = checkCoalescenceInvariant(*P, Plan, &Why);
    assert(Valid && "partitioner violated Invariant 4.3.1");
    (void)Valid;
    bool AnyParallel = false;
    for (const TaskPlan &T : Plan.Tasks)
      AnyParallel |= T.Parallel;
    if (Plan.Tasks.size() >= 2 && AnyParallel) {
      // Task of each instruction.
      std::map<unsigned, unsigned> TaskOf;
      for (unsigned T = 0; T < Plan.Tasks.size(); ++T)
        for (unsigned Id : Plan.Tasks[T].InstIds)
          TaskOf[Id] = T;

      // Cross-task links and payloads (MTCG, Section 4.4: one
      // point-to-point channel set per communicating task pair).
      std::map<std::pair<unsigned, unsigned>, std::vector<ValueId>> LinkVals;
      for (const PDGEdge &E : P->edges()) {
        if (E.removable())
          continue;
        unsigned A = TaskOf.at(E.From), B = TaskOf.at(E.To);
        if (A == B)
          continue;
        assert(A < B && "pipeline order violated");
        auto &Vals = LinkVals[{A, B}];
        const Instruction *From = F.instById(E.From);
        ValueId V = NoValue;
        if (E.Kind == DepKind::Reg) {
          // Induction-phi values are recomputed locally, never sent.
          if (!St->InductionByPhi.count(From->Id))
            V = From->Def;
        } else if (E.Kind == DepKind::Control) {
          V = From->Uses.empty() ? NoValue : From->Uses[0];
        } // Mem edges synchronize through the channel itself.
        if (V != NoValue &&
            std::find(Vals.begin(), Vals.end(), V) == Vals.end())
          Vals.push_back(V);
      }

      rt::RegionDesc D;
      D.Name = F.name() + "-psdswp";
      D.S = rt::Scheme::PsDswp;
      std::vector<std::shared_ptr<TaskLower>> TLs;
      for (unsigned T = 0; T < Plan.Tasks.size(); ++T) {
        auto TL = std::make_shared<TaskLower>();
        TL->St = St;
        TL->IsHead = T == 0;
        TL->Owned.assign(F.numInsts(), 0);
        for (unsigned Id : Plan.Tasks[T].InstIds) {
          TL->Owned[Id] = 1;
          if (Id == St->TailBranch->Id)
            TL->OwnsTailBranch = true;
        }
        I->Lowerings.push_back(TL);
        TLs.push_back(TL);
        D.Tasks.push_back(MakeVariantTask(
            TL, "stage" + std::to_string(T),
            Plan.Tasks[T].Parallel ? rt::TaskType::Par : rt::TaskType::Seq));
      }
      for (auto &[Pair, Vals] : LinkVals) {
        std::sort(Vals.begin(), Vals.end());
        D.Links.push_back({Pair.first, Pair.second});
        TLs[Pair.first]->OutVals.push_back(Vals);
        TLs[Pair.second]->InVals.push_back(Vals);
      }
      Rep += "  PS-DSWP: " + std::to_string(Plan.Tasks.size()) + " stages (";
      for (unsigned T = 0; T < Plan.Tasks.size(); ++T)
        Rep += std::string(Plan.Tasks[T].Parallel ? "P" : "S");
      Rep += "), " + std::to_string(D.Links.size()) + " channels\n";
      Region.addVariant(std::move(D));
    } else {
      Rep += "  PS-DSWP: degenerate (no pipeline parallelism)\n";
    }
  }
}

CompiledLoop::~CompiledLoop() = default;

std::unique_ptr<rt::CountedWorkSource> CompiledLoop::makeSource() const {
  return std::make_unique<rt::CountedWorkSource>(TripCount);
}

void CompiledLoop::resetState() {
  I->St->Mem.clear();
  for (auto &[Id, Red] : I->St->RedByUpdate)
    Red.reset();
  seedState(*I->St);
}

Memory &CompiledLoop::memory() { return I->St->Mem; }

std::int64_t CompiledLoop::reductionValue(unsigned PhiId) const {
  auto It = I->St->RedUpdateByPhi.find(PhiId);
  assert(It != I->St->RedUpdateByPhi.end() && "not a reduction phi");
  return I->St->RedByUpdate.at(It->second).merged();
}

void CompiledLoop::setWorkScale(double S) {
  assert(S > 0);
  I->St->WorkScale = S;
}

std::string CompiledLoop::report() const { return I->Report; }

Memory CompiledLoop::interpret(
    const Function &F, std::uint64_t TripCount,
    std::map<unsigned, std::int64_t> *ReductionsOut) {
  F.verify();
  AliasOracle AA; // conservative: fine for reference interpretation
  PDG P(F, AA);
  ExecState St(F);
  St.TripCount = TripCount;
  St.TailBranch = F.TheLoop.Tail->terminator();
  for (const RecurrenceInfo &R : P.recurrences()) {
    if (R.IsInduction) {
      St.InductionByPhi[R.PhiId] = R;
    } else {
      ReductionState RS;
      RS.Info = R;
      St.RedByUpdate.emplace(R.UpdateId, std::move(RS));
      St.RedUpdateByPhi[R.PhiId] = R.UpdateId;
    }
  }
  {
    const BasicBlock *Sink = nullptr;
    for (const auto &B : F.blocks())
      if (B->Succs.empty())
        Sink = B.get();
    PostDominators PD(F, Sink);
    for (const BasicBlock *B : F.TheLoop.Blocks)
      if (const BasicBlock *IP = PD.ipdom(B))
        St.IPDomInLoop[B] = IP;
  }
  seedState(St);

  TaskLower TL;
  TL.St = std::shared_ptr<ExecState>(&St, [](ExecState *) {});
  TL.FullOwnership = true;
  TL.IsHead = true;
  TL.OwnsTailBranch = true;

  for (std::uint64_t Iter = 0; Iter < TripCount; ++Iter) {
    rt::IterationContext Ctx;
    Ctx.Seq = Iter;
    Ctx.Slot = 0;
    runIteration(TL, Ctx);
    if (Ctx.EndOfStream)
      break;
  }
  if (ReductionsOut) {
    ReductionsOut->clear();
    for (const auto &[PhiId, UpdId] : St.RedUpdateByPhi)
      (*ReductionsOut)[PhiId] = St.RedByUpdate.at(UpdId).merged();
  }
  return St.Mem;
}
