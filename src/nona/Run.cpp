//===- Run.cpp - Executing compiled loops on the simulator -------------------===//

#include "nona/Run.h"

#include "support/Rng.h"

using namespace parcae::ir;
namespace rt = parcae::rt;
namespace sim = parcae::sim;

CompiledRunResult parcae::ir::runCompiled(CompiledLoop &CL,
                                          rt::RegionConfig C, unsigned Cores,
                                          const rt::RuntimeCosts &Costs) {
  sim::Simulator Sim;
  sim::Machine M(Sim, Cores);
  CL.resetState();
  auto Src = CL.makeSource();
  rt::RegionRunner Runner(M, Costs, CL.region(), *Src);
  Runner.start(std::move(C));
  Sim.run();
  CompiledRunResult R;
  R.Time = Sim.now();
  R.Completed = Runner.completed();
  R.Retired = Runner.totalRetired();
  return R;
}

CompiledRunResult parcae::ir::runCompiledChaotic(CompiledLoop &CL,
                                                 unsigned Cores,
                                                 std::uint64_t Seed,
                                                 unsigned Reconfigs) {
  sim::Simulator Sim;
  sim::Machine M(Sim, Cores);
  rt::RuntimeCosts Costs;
  CL.resetState();
  auto Src = CL.makeSource();
  rt::RegionRunner Runner(M, Costs, CL.region(), *Src);

  // Candidate configurations across every variant the loop exposes.
  parcae::Rng R0(Seed);
  std::vector<rt::RegionConfig> Configs;
  for (const rt::RegionDesc &V : CL.region().variants()) {
    for (unsigned Rep = 0; Rep < 4; ++Rep) {
      rt::RegionConfig C;
      C.S = V.S;
      for (const rt::Task &T : V.Tasks)
        C.DoP.push_back(T.isParallel()
                            ? 1 + static_cast<unsigned>(R0.nextBelow(
                                      std::min(Cores, 8u)))
                            : 1);
      Configs.push_back(std::move(C));
    }
  }
  assert(!Configs.empty());

  Runner.start(Configs[R0.nextBelow(Configs.size())]);
  // Spread reconfigurations over the expected run.
  for (unsigned K = 1; K <= Reconfigs; ++K) {
    rt::RegionConfig C = Configs[R0.nextBelow(Configs.size())];
    Sim.schedule(static_cast<sim::SimTime>(K) * 400 * sim::USec,
                 [&Runner, C = std::move(C)]() mutable {
                   if (!Runner.completed())
                     Runner.reconfigure(std::move(C));
                 });
  }
  Sim.run();
  CompiledRunResult R;
  R.Time = Sim.now();
  R.Completed = Runner.completed();
  R.Retired = Runner.totalRetired();
  return R;
}

ControlledRunResult parcae::ir::runControlled(CompiledLoop &CL,
                                              unsigned Budget,
                                              rt::ControllerParams P) {
  sim::Simulator Sim;
  sim::Machine M(Sim, Budget);
  rt::RuntimeCosts Costs;
  CL.resetState();
  auto Src = CL.makeSource();
  rt::RegionRunner Runner(M, Costs, CL.region(), *Src);
  rt::RegionController Ctrl(Runner, P);
  Ctrl.start(Budget);
  Sim.run();
  ControlledRunResult R;
  R.Time = Sim.now();
  R.Completed = Runner.completed();
  R.Final = Runner.config();
  R.SeqThroughput = Ctrl.seqThroughput();
  R.BestThroughput = Ctrl.bestThroughput();
  R.Trace = Ctrl.trace();
  return R;
}
