//===- Programs.cpp - Nona benchmark loop suite ------------------------------===//

#include "nona/Programs.h"

using namespace parcae::ir;
namespace sim = parcae::sim;

namespace {

/// Builds the canonical counted-loop skeleton of Section 4.5.1:
/// pre -> header(phis + body) [-> extra blocks] -> tail -> {header, exit}.
struct LoopBuilder {
  Function &F;
  BasicBlock *Pre, *Header, *Tail, *Exit;
  Instruction *IVPhi = nullptr;
  Instruction *IVNext = nullptr;
  ValueId Zero = NoValue, One = NoValue, Bound = NoValue;

  LoopBuilder(Function &F, std::int64_t TripCount) : F(F) {
    Pre = F.makeBlock("pre");
    Header = F.makeBlock("header");
    Tail = F.makeBlock("tail");
    Exit = F.makeBlock("exit");

    Instruction *C0 = F.emit(Pre, Opcode::Const, {}, "zero");
    C0->Imm = 0;
    Instruction *C1 = F.emit(Pre, Opcode::Const, {}, "one");
    C1->Imm = 1;
    Instruction *CN = F.emit(Pre, Opcode::Const, {}, "bound");
    CN->Imm = TripCount;
    Zero = C0->Def;
    One = C1->Def;
    Bound = CN->Def;

    IVPhi = F.emit(Header, Opcode::Phi, {}, "iv");
  }

  /// Emits a preheader constant (a loop live-in).
  ValueId constant(std::int64_t V, std::string Name = "c") {
    Instruction *C = F.emit(Pre, Opcode::Const, {}, std::move(Name));
    C->Imm = V;
    return C->Def;
  }

  /// Finishes the skeleton. \p MidBlocks are body blocks between the
  /// header and the tail (already linked among themselves by the caller;
  /// the builder links header -> first and last -> tail).
  void finish(std::vector<BasicBlock *> MidBlocks = {}) {
    F.emit(Pre, Opcode::Br);
    Function::link(Pre, Header);

    if (MidBlocks.empty()) {
      F.emit(Header, Opcode::Br);
      Function::link(Header, Tail);
    }

    IVNext = F.emit(Tail, Opcode::Add, {IVPhi->Def, One}, "iv.next");
    Instruction *Cmp =
        F.emit(Tail, Opcode::CmpLt, {IVNext->Def, Bound}, "exit.cond");
    F.emit(Tail, Opcode::CondBr, {Cmp->Def});
    Function::link(Tail, Header);
    Function::link(Tail, Exit);
    F.emit(Exit, Opcode::Ret);

    IVPhi->Uses = {Zero, IVNext->Def};

    Loop &L = F.TheLoop;
    L.Preheader = Pre;
    L.Header = Header;
    L.Tail = Tail;
    L.Exit = Exit;
    L.Blocks = {Header};
    for (BasicBlock *B : MidBlocks)
      L.Blocks.push_back(B);
    L.Blocks.push_back(Tail);
  }
};

Instruction *call(Function &F, BasicBlock *B, std::int64_t Callee,
                  std::vector<ValueId> Args, sim::SimTime Latency,
                  std::string Name) {
  Instruction *I = F.emit(B, Opcode::Call, std::move(Args), std::move(Name));
  I->Imm = Callee;
  I->Latency = Latency;
  return I;
}

} // namespace

LoopProgram parcae::ir::makeVecsum(std::uint64_t N) {
  LoopProgram P;
  P.Name = "vecsum";
  P.TripCount = N;
  P.F = std::make_unique<Function>("vecsum");
  Function &F = *P.F;
  LoopBuilder B(F, static_cast<std::int64_t>(N));

  Instruction *SumPhi = F.emit(B.Header, Opcode::Phi, {}, "sum");
  Instruction *X = call(F, B.Header, 7, {B.IVPhi->Def}, 2000, "gen");
  Instruction *SumNext =
      F.emit(B.Header, Opcode::Add, {SumPhi->Def, X->Def}, "sum.next");
  SumPhi->Uses = {B.Zero, SumNext->Def};
  B.finish();
  P.ReductionPhis = {SumPhi->Id};
  return P;
}

LoopProgram parcae::ir::makeSaxpy(std::uint64_t N) {
  LoopProgram P;
  P.Name = "saxpy";
  P.TripCount = N;
  P.F = std::make_unique<Function>("saxpy");
  Function &F = *P.F;
  LoopBuilder B(F, static_cast<std::int64_t>(N));
  ValueId A = B.constant(3, "a");

  Instruction *X = call(F, B.Header, 11, {B.IVPhi->Def}, 1200, "x");
  Instruction *Y = F.emit(B.Header, Opcode::Mul, {X->Def, A}, "y");
  Instruction *St =
      F.emit(B.Header, Opcode::Store, {B.IVPhi->Def, Y->Def}, "out");
  St->MemObject = 1;
  St->Latency = 300;
  B.finish();
  P.AA.setClass(1, MemClass::IterationPrivate);
  return P;
}

LoopProgram parcae::ir::makeHistogram(std::uint64_t N, std::int64_t Bins) {
  LoopProgram P;
  P.Name = "histogram";
  P.TripCount = N;
  P.F = std::make_unique<Function>("histogram");
  Function &F = *P.F;
  LoopBuilder B(F, static_cast<std::int64_t>(N));
  ValueId BinsV = B.constant(Bins, "bins");

  Instruction *H = call(F, B.Header, 13, {B.IVPhi->Def}, 900, "hash");
  Instruction *Bin =
      F.emit(B.Header, Opcode::Mod, {H->Def, BinsV}, "bin");
  Instruction *Old = F.emit(B.Header, Opcode::Load, {Bin->Def}, "old");
  Old->MemObject = 2;
  Old->Latency = 250;
  Old->Commutative = true;
  Instruction *Inc =
      F.emit(B.Header, Opcode::Add, {Old->Def, B.One}, "inc");
  Instruction *St =
      F.emit(B.Header, Opcode::Store, {Bin->Def, Inc->Def}, "newbin");
  St->MemObject = 2;
  St->Latency = 250;
  St->Commutative = true;
  B.finish();
  // The bins are shared; commutativity annotations make the updates
  // DOANY-able with a critical section (Section 4.3.1).
  P.AA.setClass(2, MemClass::Shared);
  return P;
}

LoopProgram parcae::ir::makeMonteCarlo(std::uint64_t N) {
  LoopProgram P;
  P.Name = "montecarlo";
  P.TripCount = N;
  P.F = std::make_unique<Function>("montecarlo");
  Function &F = *P.F;
  LoopBuilder B(F, static_cast<std::int64_t>(N));

  // rand(): stateful, annotated commutative (the paper's canonical
  // commutativity example).
  Instruction *R = call(F, B.Header, 17, {B.IVPhi->Def}, 400, "rand");
  R->MemObject = 5;
  R->Commutative = true;
  Instruction *Pay = call(F, B.Header, 19, {R->Def}, 15000, "payoff");
  Instruction *SumPhi = F.emit(B.Header, Opcode::Phi, {}, "sum");
  Instruction *SumNext =
      F.emit(B.Header, Opcode::Add, {SumPhi->Def, Pay->Def}, "sum.next");
  SumPhi->Uses = {B.Zero, SumNext->Def};
  B.finish();
  P.AA.setClass(5, MemClass::Shared);
  P.ReductionPhis = {SumPhi->Id};
  return P;
}

LoopProgram parcae::ir::makeChase(std::uint64_t N) {
  LoopProgram P;
  P.Name = "chase";
  P.TripCount = N;
  P.F = std::make_unique<Function>("chase");
  Function &F = *P.F;
  LoopBuilder B(F, static_cast<std::int64_t>(N));
  ValueId Start = B.constant(123, "start");

  // The traversal: a loop-carried value chain through an opaque call —
  // a sequential SCC (the paper's "complex dependency patterns").
  Instruction *Ptr = F.emit(B.Header, Opcode::Phi, {}, "ptr");
  Instruction *Next = call(F, B.Header, 23, {Ptr->Def}, 600, "next");
  Ptr->Uses = {Start, Next->Def};
  // The payload: heavy, independent per node.
  Instruction *W = call(F, B.Header, 29, {Ptr->Def}, 20000, "work");
  Instruction *St =
      F.emit(B.Header, Opcode::Store, {B.IVPhi->Def, W->Def}, "out");
  St->MemObject = 3;
  St->Latency = 200;
  B.finish();
  P.AA.setClass(3, MemClass::IterationPrivate);
  return P;
}

LoopProgram parcae::ir::makeBranchy(std::uint64_t N) {
  LoopProgram P;
  P.Name = "branchy";
  P.TripCount = N;
  P.F = std::make_unique<Function>("branchy");
  Function &F = *P.F;
  LoopBuilder B(F, static_cast<std::int64_t>(N));
  ValueId Half = B.constant(500000, "half");

  BasicBlock *Then = F.makeBlock("then");
  BasicBlock *Else = F.makeBlock("else");
  BasicBlock *Join = F.makeBlock("join");

  Instruction *S = call(F, B.Header, 31, {B.IVPhi->Def}, 500, "s");
  Instruction *C =
      F.emit(B.Header, Opcode::CmpLt, {S->Def, Half}, "is.small");
  F.emit(B.Header, Opcode::CondBr, {C->Def});
  Function::link(B.Header, Then);
  Function::link(B.Header, Else);

  Instruction *T1 = call(F, Then, 37, {S->Def}, 30000, "f.heavy");
  Instruction *St1 =
      F.emit(Then, Opcode::Store, {B.IVPhi->Def, T1->Def}, "out.heavy");
  St1->MemObject = 4;
  St1->Latency = 200;
  F.emit(Then, Opcode::Br);
  Function::link(Then, Join);

  Instruction *T2 = call(F, Else, 41, {S->Def}, 6000, "f.light");
  Instruction *St2 =
      F.emit(Else, Opcode::Store, {B.IVPhi->Def, T2->Def}, "out.light");
  St2->MemObject = 6;
  St2->Latency = 200;
  F.emit(Else, Opcode::Br);
  Function::link(Else, Join);

  F.emit(Join, Opcode::Br);
  Function::link(Join, B.Tail);

  B.finish({Then, Else, Join});
  P.AA.setClass(4, MemClass::IterationPrivate);
  P.AA.setClass(6, MemClass::IterationPrivate);
  return P;
}

LoopProgram parcae::ir::makeSeqchain(std::uint64_t N) {
  LoopProgram P;
  P.Name = "seqchain";
  P.TripCount = N;
  P.F = std::make_unique<Function>("seqchain");
  Function &F = *P.F;
  LoopBuilder B(F, static_cast<std::int64_t>(N));
  ValueId Seed = B.constant(99, "seed");

  Instruction *Acc = F.emit(B.Header, Opcode::Phi, {}, "acc");
  Instruction *Nx = call(F, B.Header, 43, {Acc->Def}, 8000, "f");
  Acc->Uses = {Seed, Nx->Def};
  Instruction *St =
      F.emit(B.Header, Opcode::Store, {B.IVPhi->Def, Nx->Def}, "trace");
  St->MemObject = 8;
  St->Latency = 150;
  B.finish();
  P.AA.setClass(8, MemClass::IterationPrivate);
  return P;
}

LoopProgram parcae::ir::makeMinMax(std::uint64_t N) {
  LoopProgram P;
  P.Name = "minmax";
  P.TripCount = N;
  P.F = std::make_unique<Function>("minmax");
  Function &F = *P.F;
  LoopBuilder B(F, static_cast<std::int64_t>(N));
  ValueId LoInit = B.constant(1000000000, "lo.init");
  ValueId HiInit = B.constant(-1000000000, "hi.init");

  Instruction *X = call(F, B.Header, 47, {B.IVPhi->Def}, 5000, "gen");
  Instruction *LoPhi = F.emit(B.Header, Opcode::Phi, {}, "lo");
  Instruction *LoNext =
      F.emit(B.Header, Opcode::Min, {LoPhi->Def, X->Def}, "lo.next");
  LoPhi->Uses = {LoInit, LoNext->Def};
  Instruction *HiPhi = F.emit(B.Header, Opcode::Phi, {}, "hi");
  Instruction *HiNext =
      F.emit(B.Header, Opcode::Max, {HiPhi->Def, X->Def}, "hi.next");
  HiPhi->Uses = {HiInit, HiNext->Def};
  B.finish();
  P.ReductionPhis = {LoPhi->Id, HiPhi->Id};
  return P;
}

LoopProgram parcae::ir::makeDualPipe(std::uint64_t N) {
  LoopProgram P;
  P.Name = "dualpipe";
  P.TripCount = N;
  P.F = std::make_unique<Function>("dualpipe");
  Function &F = *P.F;
  LoopBuilder B(F, static_cast<std::int64_t>(N));
  ValueId Seed1 = B.constant(5, "seed1");
  ValueId Seed2 = B.constant(9, "seed2");

  // S1: a carried chain (token source).
  Instruction *C1 = F.emit(B.Header, Opcode::Phi, {}, "c1");
  Instruction *N1 = call(F, B.Header, 53, {C1->Def}, 800, "chain1");
  C1->Uses = {Seed1, N1->Def};
  // P1: heavy kernel on the chain value.
  Instruction *W1 = call(F, B.Header, 59, {C1->Def}, 25000, "work1");
  // S2: a second carried chain consuming P1's output.
  Instruction *C2 = F.emit(B.Header, Opcode::Phi, {}, "c2");
  Instruction *N2 =
      call(F, B.Header, 61, {C2->Def, W1->Def}, 900, "chain2");
  C2->Uses = {Seed2, N2->Def};
  // P2: second heavy kernel.
  Instruction *W2 = call(F, B.Header, 67, {N2->Def}, 22000, "work2");
  // S3 equivalent: an ordered store trace would be IterationPrivate and
  // parallel; use a third carried chain as the ordered sink.
  Instruction *St =
      F.emit(B.Header, Opcode::Store, {B.IVPhi->Def, W2->Def}, "out");
  St->MemObject = 9;
  St->Latency = 200;
  B.finish();
  P.AA.setClass(9, MemClass::IterationPrivate);
  return P;
}

std::vector<std::function<LoopProgram()>>
parcae::ir::benchmarkSuite(std::uint64_t N) {
  return {
      [N] { return makeVecsum(N); },
      [N] { return makeSaxpy(N); },
      [N] { return makeHistogram(N, 64); },
      [N] { return makeMonteCarlo(N); },
      [N] { return makeChase(N); },
      [N] { return makeBranchy(N); },
      [N] { return makeSeqchain(N); },
      [N] { return makeMinMax(N); },
      [N] { return makeDualPipe(N); },
  };
}
