//===- Run.h - Executing compiled loops on the simulator --------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by tests and benchmarks: run a Nona-compiled loop to
/// completion under a fixed configuration, under a random reconfiguration
/// schedule (for semantics checks), or under the Morta run-time
/// controller (for the Section 8.3 experiments).
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_NONA_RUN_H
#define PARCAE_NONA_RUN_H

#include "morta/Controller.h"
#include "nona/Compile.h"

#include <cstdint>
#include <vector>

namespace parcae::ir {

struct CompiledRunResult {
  sim::SimTime Time = 0;
  bool Completed = false;
  std::uint64_t Retired = 0;
};

/// Runs a compiled loop to completion under a fixed configuration.
/// Resets loop state first.
CompiledRunResult runCompiled(CompiledLoop &CL, rt::RegionConfig C,
                              unsigned Cores,
                              const rt::RuntimeCosts &Costs = {});

/// Runs a compiled loop to completion while applying a random schedule of
/// in-place DoP changes and full scheme switches (semantics stress).
CompiledRunResult runCompiledChaotic(CompiledLoop &CL, unsigned Cores,
                                     std::uint64_t Seed,
                                     unsigned Reconfigs = 12);

struct ControlledRunResult {
  sim::SimTime Time = 0;
  bool Completed = false;
  rt::RegionConfig Final;
  double SeqThroughput = 0;
  double BestThroughput = 0;
  std::vector<rt::RegionController::TraceEntry> Trace;
};

/// Runs a compiled loop under the Chapter 6 run-time controller.
ControlledRunResult runControlled(CompiledLoop &CL, unsigned Budget,
                                  rt::ControllerParams P = {});

} // namespace parcae::ir

#endif // PARCAE_NONA_RUN_H
