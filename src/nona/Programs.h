//===- Programs.h - Nona benchmark loop suite -------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite for the Nona compiler evaluation (the Section 8.3
/// substitute; the original used SPEC/PARSEC loops through LLVM). Seven
/// loop programs covering the parallelization space:
///
///  * vecsum     — sum reduction over an array (DOANY via reduction)
///  * saxpy      — independent element-wise update (DOANY, no locks)
///  * histogram  — commutative updates of shared bins (DOANY + critical)
///  * montecarlo — commutative PRNG calls + sum reduction (DOANY via
///                 commutativity annotation, the paper's rand() example)
///  * chase      — pointer chase + heavy payload (PS-DSWP only: the
///                 traversal is a sequential SCC)
///  * branchy    — pipeline with data-dependent control flow in the
///                 parallel stage
///  * seqchain   — a serial call chain (no parallelism: SEQ only)
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_NONA_PROGRAMS_H
#define PARCAE_NONA_PROGRAMS_H

#include "nona/Compile.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace parcae::ir {

/// One benchmark: the IR, its alias facts, and its iteration count.
struct LoopProgram {
  std::string Name;
  std::unique_ptr<Function> F;
  AliasOracle AA;
  std::uint64_t TripCount = 0;
  /// Ids of interesting reduction phis (for result checks).
  std::vector<unsigned> ReductionPhis;
};

LoopProgram makeVecsum(std::uint64_t N);
LoopProgram makeSaxpy(std::uint64_t N);
LoopProgram makeHistogram(std::uint64_t N, std::int64_t Bins);
LoopProgram makeMonteCarlo(std::uint64_t N);
LoopProgram makeChase(std::uint64_t N);
LoopProgram makeBranchy(std::uint64_t N);
LoopProgram makeSeqchain(std::uint64_t N);
/// min AND max reductions over generated data (exercises the non-Add
/// reduction kinds end to end).
LoopProgram makeMinMax(std::uint64_t N);
/// A sequential-parallel network S-P-S-P-S (the Figure 7.7 shape): two
/// heavy parallel kernels separated by loop-carried sequential stages.
LoopProgram makeDualPipe(std::uint64_t N);

/// The whole suite with a default size.
std::vector<std::function<LoopProgram()>> benchmarkSuite(std::uint64_t N);

} // namespace parcae::ir

#endif // PARCAE_NONA_PROGRAMS_H
