//===- Rng.cpp - Deterministic pseudo-random number generation -----------===//

#include "support/Rng.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace parcae;

namespace {
std::uint64_t GlobalSeed = 1;
} // namespace

std::uint64_t parcae::defaultSeed() { return GlobalSeed; }

void parcae::setDefaultSeed(std::uint64_t Seed) { GlobalSeed = Seed; }

std::uint64_t parcae::seedFlag(int Argc, char **Argv,
                               std::uint64_t Fallback) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--seed") == 0 && I + 1 < Argc)
      return std::strtoull(Argv[I + 1], nullptr, 10);
    if (std::strncmp(A, "--seed=", 7) == 0)
      return std::strtoull(A + 7, nullptr, 10);
  }
  return Fallback;
}

double Rng::nextNormal(double Mean, double Stddev) {
  assert(Stddev >= 0 && "stddev must be non-negative");
  double U1 = nextReal();
  double U2 = nextReal();
  if (U1 <= 0)
    U1 = 0x1.0p-53;
  double Z = std::sqrt(-2.0 * std::log(U1)) *
             std::cos(2.0 * 3.14159265358979323846 * U2);
  double V = Mean + Stddev * Z;
  return std::clamp(V, Mean - 4 * Stddev, Mean + 4 * Stddev);
}
