//===- Rng.cpp - Deterministic pseudo-random number generation -----------===//

#include "support/Rng.h"

#include <algorithm>

using namespace parcae;

double Rng::nextNormal(double Mean, double Stddev) {
  assert(Stddev >= 0 && "stddev must be non-negative");
  double U1 = nextReal();
  double U2 = nextReal();
  if (U1 <= 0)
    U1 = 0x1.0p-53;
  double Z = std::sqrt(-2.0 * std::log(U1)) *
             std::cos(2.0 * 3.14159265358979323846 * U2);
  double V = Mean + Stddev * Z;
  return std::clamp(V, Mean - 4 * Stddev, Mean + 4 * Stddev);
}
