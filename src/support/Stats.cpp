//===- Stats.cpp - Online and windowed statistics -------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cmath>

using namespace parcae;

void OnlineStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (Samples.empty())
    return 0.0;
  double Sum = 0.0;
  for (double S : Samples)
    Sum += S;
  return Sum / static_cast<double>(Samples.size());
}

void SampleSet::decimate() {
  std::size_t Out = 0;
  for (std::size_t I = 0; I < Samples.size(); I += 2)
    Samples[Out++] = Samples[I];
  Samples.resize(Out);
  SortedValid = false;
}

void Histogram::add(double X) {
  Stats.add(X);
  if (++SinceLast < Stride)
    return;
  SinceLast = 0;
  Samples.add(X);
  if (Samples.count() >= MaxSamples) {
    Samples.decimate();
    Stride *= 2;
  }
}

double SampleSet::percentile(double P) const {
  // Validate before the empty early-out: an out-of-range P is a caller
  // bug regardless of whether any samples have arrived yet.
  assert(P >= 0 && P <= 100 && "percentile must be in [0, 100]");
  if (Samples.empty())
    return 0.0;
  if (!SortedValid) {
    Sorted = Samples;
    std::sort(Sorted.begin(), Sorted.end());
    SortedValid = true;
    ++Sorts;
  }
  if (P <= 0)
    return Sorted.front();
  std::size_t Rank = static_cast<std::size_t>(
      std::ceil(P / 100.0 * static_cast<double>(Sorted.size())));
  if (Rank == 0)
    Rank = 1;
  if (Rank > Sorted.size())
    Rank = Sorted.size();
  return Sorted[Rank - 1];
}
