//===- Table.cpp - Column-aligned text tables ------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace parcae;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() <= Header.size() && "row wider than header");
  Rows.push_back(std::move(Cells));
}

std::string Table::format() const {
  std::vector<std::size_t> Widths(Header.size(), 0);
  for (std::size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (std::size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto AppendRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (std::size_t I = 0; I < Header.size(); ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      Out += Cell;
      if (I + 1 != Header.size())
        Out.append(Widths[I] - Cell.size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  AppendRow(Out, Header);
  std::size_t Total = 0;
  for (std::size_t I = 0; I < Widths.size(); ++I)
    Total += Widths[I] + (I + 1 != Widths.size() ? 2 : 0);
  Out.append(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    AppendRow(Out, Row);
  return Out;
}

std::string Table::csv() const {
  auto Quote = [](const std::string &Cell) {
    if (Cell.find_first_of(",\"\n") == std::string::npos)
      return Cell;
    std::string Out = "\"";
    for (char C : Cell) {
      if (C == '"')
        Out += '"';
      Out += C;
    }
    Out += '"';
    return Out;
  };
  std::string Out;
  for (std::size_t I = 0; I < Header.size(); ++I) {
    if (I)
      Out += ',';
    Out += Quote(Header[I]);
  }
  Out += '\n';
  for (const auto &Row : Rows) {
    for (std::size_t I = 0; I < Header.size(); ++I) {
      if (I)
        Out += ',';
      Out += Quote(I < Row.size() ? Row[I] : std::string());
    }
    Out += '\n';
  }
  return Out;
}

void Table::print(std::FILE *Out) const {
  std::string S = format();
  std::fwrite(S.data(), 1, S.size(), Out);
}

std::string Table::num(double V, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, V);
  return Buf;
}

std::string Table::num(long long V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", V);
  return Buf;
}
