//===- Rng.h - Deterministic pseudo-random number generation ---*- C++ -*-===//
//
// Part of the Parcae reproduction. Deterministic PRNG used everywhere so
// every experiment and test is exactly reproducible from its seed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic random number generator (splitmix64 core)
/// with the distributions the workload generators need: uniform integers,
/// uniform reals, exponential inter-arrival times (Poisson processes), and
/// truncated normal work-size jitter.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SUPPORT_RNG_H
#define PARCAE_SUPPORT_RNG_H

#include <cassert>
#include <cmath>
#include <cstdint>

namespace parcae {

/// Deterministic pseudo-random number generator.
///
/// The core is splitmix64, which passes BigCrush, needs only 64 bits of
/// state, and is trivially seedable. Streams with different seeds are
/// statistically independent for our purposes.
class Rng {
public:
  explicit Rng(std::uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound > 0 && "nextBelow() requires a positive bound");
    // Modulo bias is negligible for Bound << 2^64, which always holds here.
    return next() % Bound;
  }

  /// Returns a uniform integer in the inclusive range [Lo, Hi].
  std::int64_t nextInRange(std::int64_t Lo, std::int64_t Hi) {
    assert(Lo <= Hi && "nextInRange() requires Lo <= Hi");
    return Lo + static_cast<std::int64_t>(
                    nextBelow(static_cast<std::uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a uniform real in [0, 1).
  double nextReal() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform real in [Lo, Hi).
  double nextRealInRange(double Lo, double Hi) {
    assert(Lo <= Hi && "nextRealInRange() requires Lo <= Hi");
    return Lo + (Hi - Lo) * nextReal();
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextReal() < P; }

  /// Returns an exponentially distributed real with the given \p Mean.
  ///
  /// Inter-arrival times drawn from this distribution produce a Poisson
  /// arrival process, which is how the paper's load generator simulates
  /// user requests (Chapter 8).
  double nextExponential(double Mean) {
    assert(Mean > 0 && "exponential mean must be positive");
    double U = nextReal();
    // Guard against log(0).
    if (U <= 0)
      U = 0x1.0p-53;
    return -Mean * std::log(U);
  }

  /// Returns a normally distributed real (Box-Muller), clamped to
  /// [Mean - 4*Stddev, Mean + 4*Stddev] so work sizes stay bounded.
  double nextNormal(double Mean, double Stddev);

private:
  std::uint64_t State;
};

/// Process-wide default seed benches derive their Rng streams from, so
/// one `--seed` flag reproduces a whole run (schedules, load generators,
/// scattered fault plans). Defaults to 1.
std::uint64_t defaultSeed();
void setDefaultSeed(std::uint64_t Seed);

/// Parses `--seed N` / `--seed=N` from argv; returns \p Fallback when the
/// flag is absent.
std::uint64_t seedFlag(int Argc, char **Argv, std::uint64_t Fallback = 1);

} // namespace parcae

#endif // PARCAE_SUPPORT_RNG_H
