//===- Table.h - Column-aligned text tables ---------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal column-aligned table printer. Every benchmark binary that
/// regenerates a table or figure of the paper prints its rows through this
/// class so that the output format is uniform and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SUPPORT_TABLE_H
#define PARCAE_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace parcae {

/// Collects rows of string cells and prints them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a row; it may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Formats the table into a string (header, separator, rows).
  std::string format() const;

  /// Formats as CSV (header + rows, comma-separated, quoted as needed).
  std::string csv() const;

  /// Prints the table to \p Out (stdout by default).
  void print(std::FILE *Out = stdout) const;

  /// Formats a double with \p Digits fractional digits.
  static std::string num(double V, int Digits = 2);
  /// Formats an integer.
  static std::string num(long long V);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace parcae

#endif // PARCAE_SUPPORT_TABLE_H
