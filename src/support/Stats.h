//===- Stats.h - Online and windowed statistics -----------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics helpers used by Decima (moving-average task throughput), the
/// mechanisms (smoothed load), and the benchmark harnesses (means and
/// percentiles of response times).
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SUPPORT_STATS_H
#define PARCAE_SUPPORT_STATS_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace parcae {

/// Accumulates count/mean/min/max/variance in O(1) space (Welford).
class OnlineStats {
public:
  void add(double X);

  std::size_t count() const { return N; }
  bool empty() const { return N == 0; }
  double mean() const { return N ? Mean : 0.0; }
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }
  /// Population variance; zero for fewer than two samples.
  double variance() const { return N > 1 ? M2 / static_cast<double>(N) : 0.0; }
  double stddev() const;
  double sum() const { return Mean * static_cast<double>(N); }

private:
  std::size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Exponentially weighted moving average, as used by the TBF and FDP
/// mechanisms to smooth per-task throughput samples (Section 6.3).
class MovingAverage {
public:
  /// \p Alpha is the weight of the newest sample, in (0, 1].
  explicit MovingAverage(double Alpha = 0.25) : Alpha(Alpha) {
    assert(Alpha > 0 && Alpha <= 1 && "alpha must be in (0, 1]");
  }

  void add(double X) {
    if (!Seeded) {
      Value = X;
      Seeded = true;
      return;
    }
    Value = Alpha * X + (1 - Alpha) * Value;
  }

  bool seeded() const { return Seeded; }
  double value() const { return Seeded ? Value : 0.0; }
  void reset() { Seeded = false; Value = 0.0; }

private:
  double Alpha;
  double Value = 0.0;
  bool Seeded = false;
};

/// Holds all samples; answers percentile queries. Used only by benchmark
/// harnesses, where sample counts are small.
class SampleSet {
public:
  void add(double X) { Samples.push_back(X); }
  std::size_t count() const { return Samples.size(); }
  bool empty() const { return Samples.empty(); }
  double mean() const;
  /// Nearest-rank percentile; \p P in [0, 100].
  double percentile(double P) const;
  double min() const { return percentile(0); }
  double max() const { return percentile(100); }

private:
  std::vector<double> Samples;
};

} // namespace parcae

#endif // PARCAE_SUPPORT_STATS_H
