//===- Stats.h - Online and windowed statistics -----------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics helpers used by Decima (moving-average task throughput), the
/// mechanisms (smoothed load), and the benchmark harnesses (means and
/// percentiles of response times).
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SUPPORT_STATS_H
#define PARCAE_SUPPORT_STATS_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace parcae {

/// Accumulates count/mean/min/max/variance in O(1) space (Welford).
class OnlineStats {
public:
  void add(double X);

  std::size_t count() const { return N; }
  bool empty() const { return N == 0; }
  double mean() const { return N ? Mean : 0.0; }
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }
  /// Population variance; zero for fewer than two samples.
  double variance() const { return N > 1 ? M2 / static_cast<double>(N) : 0.0; }
  double stddev() const;
  double sum() const { return Mean * static_cast<double>(N); }

private:
  std::size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Exponentially weighted moving average, as used by the TBF and FDP
/// mechanisms to smooth per-task throughput samples (Section 6.3).
class MovingAverage {
public:
  /// \p Alpha is the weight of the newest sample, in (0, 1].
  explicit MovingAverage(double Alpha = 0.25) : Alpha(Alpha) {
    assert(Alpha > 0 && Alpha <= 1 && "alpha must be in (0, 1]");
  }

  void add(double X) {
    if (!Seeded) {
      Value = X;
      Seeded = true;
      return;
    }
    Value = Alpha * X + (1 - Alpha) * Value;
  }

  bool seeded() const { return Seeded; }
  double value() const { return Seeded ? Value : 0.0; }
  void reset() { Seeded = false; Value = 0.0; }

private:
  double Alpha;
  double Value = 0.0;
  bool Seeded = false;
};

/// Holds all samples; answers percentile queries. Used only by benchmark
/// harnesses, where sample counts are small.
class SampleSet {
public:
  void add(double X) {
    Samples.push_back(X);
    SortedValid = false;
  }
  std::size_t count() const { return Samples.size(); }
  bool empty() const { return Samples.empty(); }
  double mean() const;
  /// Nearest-rank percentile; \p P in [0, 100] (validated before any
  /// early-out, so an out-of-range P is caught even on an empty set).
  double percentile(double P) const;
  double min() const { return percentile(0); }
  double max() const { return percentile(100); }
  /// Drops every other recorded sample (bounds memory on long runs).
  void decimate();

  /// Forgets every sample but keeps the sort counter running, so a
  /// caller rebuilding a windowed set in place (the serve broker's
  /// recent-latency probe) stays pinned by sortsPerformed().
  void clear() {
    Samples.clear();
    Sorted.clear();
    SortedValid = false;
  }

  /// Times percentile() actually sorted (a cache rebuild). Regression
  /// tests pin the caching contract with this: repeated queries between
  /// mutations must not re-sort.
  std::uint64_t sortsPerformed() const { return Sorts; }

private:
  std::vector<double> Samples;
  /// Sorted view of Samples, built lazily on the first percentile query
  /// and reused until the next mutation — a query per histogram metric
  /// would otherwise re-sort the full set every time.
  mutable std::vector<double> Sorted;
  mutable bool SortedValid = false;
  mutable std::uint64_t Sorts = 0;
};

/// Percentile histogram: O(1) moments plus recorded samples for p50/p95/p99
/// queries. Beyond \p MaxSamples the recorded set is decimated (every other
/// sample kept), so memory stays bounded while the tail percentiles remain
/// representative. Used by the telemetry metrics registry.
class Histogram {
public:
  explicit Histogram(std::size_t MaxSamples = 1u << 16)
      : MaxSamples(MaxSamples) {
    assert(MaxSamples >= 2 && "histogram needs room for samples");
  }

  void add(double X);

  std::size_t count() const { return Stats.count(); }
  bool empty() const { return Stats.empty(); }
  double mean() const { return Stats.mean(); }
  double min() const { return Stats.min(); }
  double max() const { return Stats.max(); }
  double stddev() const { return Stats.stddev(); }

  /// Nearest-rank percentile over the recorded samples; \p P in [0, 100].
  double percentile(double P) const { return Samples.percentile(P); }
  double p50() const { return percentile(50); }
  double p95() const { return percentile(95); }
  double p99() const { return percentile(99); }

  /// 1 while every sample is still recorded; doubles per decimation.
  std::uint64_t sampleStride() const { return Stride; }

  /// Sorts the underlying sample set performed for percentile queries;
  /// stays flat across repeated p50/p95/p99 calls between adds (the
  /// serving layer polls percentiles every arbiter tick).
  std::uint64_t percentileSorts() const { return Samples.sortsPerformed(); }

private:
  OnlineStats Stats;
  SampleSet Samples;
  std::size_t MaxSamples;
  std::uint64_t Stride = 1;  ///< record every Stride-th sample
  std::uint64_t SinceLast = 0;
};

} // namespace parcae

#endif // PARCAE_SUPPORT_STATS_H
