//===- ChromeTrace.h - Trace and metrics exporters --------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exporters for the telemetry layer:
///
///  * Chrome trace-event JSON — loads in Perfetto (ui.perfetto.dev) or
///    chrome://tracing; process/thread metadata events name the tracks;
///  * flat metrics text dump (MetricsSnapshot::text);
///  * a minimal JSON parser (telemetry::json) used to validate emitted
///    traces in tests and in scripts/check_trace.sh — deliberately tiny,
///    no external dependency;
///  * TraceFile — the `--trace <file.json>` RAII helper benchmark mains
///    use: installs a process-wide recorder on construction, writes the
///    trace (and a metrics dump next to it) on destruction.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_TELEMETRY_CHROMETRACE_H
#define PARCAE_TELEMETRY_CHROMETRACE_H

#include "telemetry/Telemetry.h"

#include <memory>
#include <string>
#include <vector>

namespace parcae::telemetry {

/// Renders the recorded events as Chrome trace-event JSON (the "JSON
/// object format": {"traceEvents": [...], "displayTimeUnit": "ms"}).
/// Timestamps are exported in microseconds, the format's native unit.
std::string toChromeTraceJson(const TraceRecorder &R);

/// Writes toChromeTraceJson(R) to \p Path. Returns false on I/O error.
bool writeChromeTrace(const TraceRecorder &R, const std::string &Path);

/// Validates that \p Json parses and is a structurally sound Chrome
/// trace: traceEvents array present, every event carries name/ph/ts/pid/
/// tid, span begins/ends balance per track, and timestamps are monotone.
/// On failure returns false and describes the problem in \p Err.
bool validateChromeTrace(const std::string &Json, std::string *Err = nullptr);

/// Minimal recursive-descent JSON parser (objects, arrays, strings,
/// numbers, booleans, null). Enough to parse traces back in tests.
namespace json {

struct Value {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;

  /// Object member lookup; null when absent or not an object.
  const Value *find(const std::string &Key) const {
    if (K != Kind::Obj)
      return nullptr;
    for (const auto &M : Obj)
      if (M.first == Key)
        return &M.second;
    return nullptr;
  }
};

/// Parses \p Text into \p Out. Returns false (with \p Err set) on error.
bool parse(const std::string &Text, Value &Out, std::string *Err = nullptr);

} // namespace json

/// RAII handle behind the benches' `--trace <file.json>` flag. With a
/// null path it does nothing (tracing stays off); otherwise it installs a
/// fresh process-wide recorder and, on destruction, writes the Chrome
/// trace to the path and a metrics dump alongside it.
class TraceFile {
public:
  explicit TraceFile(const char *Path);
  ~TraceFile();
  TraceFile(const TraceFile &) = delete;
  TraceFile &operator=(const TraceFile &) = delete;

  bool enabled() const { return Rec != nullptr; }
  TraceRecorder *recorder() { return Rec.get(); }

private:
  std::string Path;
  std::unique_ptr<TraceRecorder> Rec;
};

/// Scans argv for `--trace <file.json>` (or `--trace=<file.json>`);
/// returns the path or null. Unrelated arguments are ignored.
const char *traceFlagPath(int Argc, char **Argv);

} // namespace parcae::telemetry

#endif // PARCAE_TELEMETRY_CHROMETRACE_H
