//===- Telemetry.h - Virtual-time event tracing -----------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer: a low-overhead, virtual-time-stamped structured
/// event log that every runtime layer (the simulated machine, Morta's
/// executor and controller, the platform daemon, Decima) emits into.
///
/// Event model (a subset of the Chrome trace-event format, so recorded
/// traces load directly in Perfetto / chrome://tracing):
///
///  * spans     — begin/end pairs on a (pid, tid) track ("core 3 ran
///                thread X", "controller in CALIBRATE");
///  * instants  — point events ("DoP move", "budget repartition");
///  * counters  — sampled numeric series ("iterations retired",
///                "SystemPower").
///
/// Tracks: one *process* per flexible program (plus the "machine",
/// "platform", and "decima" pseudo-processes) and one *thread* track per
/// virtual core, task, or control component.
///
/// Tracing is off by default: the process-wide sink (recorder()) starts
/// null, and every emission site goes through the PARCAE_TRACE macro,
/// which reduces to a single pointer test when tracing is off and to
/// nothing at all when PARCAE_DISABLE_TELEMETRY is defined. Timestamps are
/// virtual: the recorder is bound to a sim::Simulator clock, and rebinding
/// to a fresh simulator (one per experiment run) rebases time so multi-run
/// traces stay monotone.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_TELEMETRY_TELEMETRY_H
#define PARCAE_TELEMETRY_TELEMETRY_H

#include "sim/Simulator.h"
#include "sim/Time.h"
#include "telemetry/Metrics.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace parcae::telemetry {

/// Emits into \p Rec only when a recorder is installed; the call (and its
/// argument expressions) is not evaluated otherwise. Compiles to nothing
/// under PARCAE_DISABLE_TELEMETRY.
#ifndef PARCAE_DISABLE_TELEMETRY
#define PARCAE_TELEMETRY_ENABLED 1
#define PARCAE_TRACE(Rec, Call)                                                \
  do {                                                                         \
    if (::parcae::telemetry::TraceRecorder *PtRec_ = (Rec))                    \
      PtRec_->Call;                                                            \
  } while (0)
#else
#define PARCAE_TELEMETRY_ENABLED 0
#define PARCAE_TRACE(Rec, Call)                                                \
  do {                                                                         \
  } while (0)
#endif

/// One key/value argument attached to an event (number or string).
struct TraceArg {
  std::string Key;
  std::string Str;
  double Num = 0.0;
  bool IsNum = true;

  static TraceArg num(std::string Key, double Value) {
    TraceArg A;
    A.Key = std::move(Key);
    A.Num = Value;
    return A;
  }
  static TraceArg str(std::string Key, std::string Value) {
    TraceArg A;
    A.Key = std::move(Key);
    A.Str = std::move(Value);
    A.IsNum = false;
    return A;
  }
};

/// Chrome trace-event phases this recorder emits.
enum class Phase : char {
  Begin = 'B',
  End = 'E',
  Instant = 'i',
  Counter = 'C',
};

/// One recorded event.
struct TraceEvent {
  sim::SimTime Ts = 0; ///< virtual nanoseconds, rebased across runs
  Phase Ph = Phase::Instant;
  std::uint32_t Pid = 0;
  std::uint32_t Tid = 0;
  const char *Cat = ""; ///< static category string ("core", "ctrl", ...)
  std::string Name;
  std::vector<TraceArg> Args;
};

/// Well-known thread-track ids within a program's process. Task tracks use
/// 1 + TaskIdx; these sit far above any plausible task count.
constexpr std::uint32_t TidExec = 0;       ///< region-execution lifecycle
constexpr std::uint32_t TidController = 250;
constexpr std::uint32_t TidRunner = 251;
constexpr std::uint32_t TidWatchdog = 252;

/// The structured event log. Bounded: beyond the event capacity new events
/// are counted as dropped rather than recorded, so a runaway trace cannot
/// exhaust memory.
class TraceRecorder {
public:
  explicit TraceRecorder(std::size_t Capacity = 1u << 22)
      : Capacity(Capacity) {}

  /// Binds (or rebinds) the virtual clock. Rebinding to a different
  /// simulator — or to a fresh one reusing the old address, detected by
  /// the clock moving backwards — rebases timestamps so that events from
  /// successive runs never interleave.
  void bindClock(const sim::Simulator &Sim) {
    if (Clock == &Sim && Sim.now() >= LastRawNow)
      return;
    Clock = &Sim;
    Offset = MaxTs;
    LastRawNow = 0;
  }

  /// Current virtual timestamp (0 if no clock is bound).
  sim::SimTime now() {
    sim::SimTime Raw = Clock ? Clock->now() : 0;
    LastRawNow = Raw;
    sim::SimTime Ts = Offset + Raw;
    if (Ts > MaxTs)
      MaxTs = Ts;
    return Ts;
  }

  /// Stable process id for \p Name; the same name always maps to the same
  /// pid, so successive executions of one region share a track group.
  std::uint32_t processFor(const std::string &Name);

  /// Names a thread track (shown as the track label in Perfetto).
  void nameThread(std::uint32_t Pid, std::uint32_t Tid, std::string Name);

  void begin(std::uint32_t Pid, std::uint32_t Tid, const char *Cat,
             std::string Name, std::vector<TraceArg> Args = {}) {
    record(Phase::Begin, Pid, Tid, Cat, std::move(Name), std::move(Args));
  }
  void end(std::uint32_t Pid, std::uint32_t Tid, const char *Cat,
           std::string Name, std::vector<TraceArg> Args = {}) {
    record(Phase::End, Pid, Tid, Cat, std::move(Name), std::move(Args));
  }
  void instant(std::uint32_t Pid, std::uint32_t Tid, const char *Cat,
               std::string Name, std::vector<TraceArg> Args = {}) {
    record(Phase::Instant, Pid, Tid, Cat, std::move(Name), std::move(Args));
  }
  /// Counter sample; rendered as a numeric series named \p Name.
  void counter(std::uint32_t Pid, std::uint32_t Tid, const char *Cat,
               std::string Name, double Value) {
    record(Phase::Counter, Pid, Tid, Cat, std::move(Name),
           {TraceArg::num("value", Value)});
  }

  const std::vector<TraceEvent> &events() const { return Events; }
  std::size_t size() const { return Events.size(); }
  std::uint64_t dropped() const { return Dropped; }
  void clear() {
    Events.clear();
    Dropped = 0;
  }

  /// Named processes, in pid order (pid = index).
  const std::vector<std::string> &processes() const { return Processes; }
  /// Thread-track names as ((pid, tid), name) records.
  const std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                              std::string>> &
  threadNames() const {
    return ThreadNames;
  }

  /// The metrics registry riding along with this recorder: components
  /// update counters/gauges/histograms here while tracing is on.
  MetricsRegistry &metrics() { return Metrics; }
  const MetricsRegistry &metrics() const { return Metrics; }

  /// Copies \p S's event-queue tier statistics into the registry as
  /// sim.queue.* gauges (ring/wheel/heap dispatch counts, spill
  /// migrations, max bucket depth, horizon span). Gauges, not counters,
  /// so a re-capture overwrites rather than double-counts. Machine's
  /// destructor calls this — the simulator is still alive there, unlike
  /// in TraceFile's destructor — so every traced run surfaces the
  /// event-core tier split in its metrics dump.
  void captureSimQueueMetrics(const sim::Simulator &S);

private:
  void record(Phase Ph, std::uint32_t Pid, std::uint32_t Tid, const char *Cat,
              std::string Name, std::vector<TraceArg> Args);

  const sim::Simulator *Clock = nullptr;
  sim::SimTime Offset = 0;
  sim::SimTime MaxTs = 0;
  sim::SimTime LastRawNow = 0;
  std::size_t Capacity;
  std::uint64_t Dropped = 0;
  std::vector<TraceEvent> Events;
  std::vector<std::string> Processes;
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>, std::string>>
      ThreadNames;
  MetricsRegistry Metrics;
};

/// The process-wide sink. Null (tracing off) by default; instrumented
/// components read it once at construction time.
TraceRecorder *recorder();
/// Installs \p R as the process-wide sink (null turns tracing off).
void setRecorder(TraceRecorder *R);

} // namespace parcae::telemetry

#endif // PARCAE_TELEMETRY_TELEMETRY_H
