//===- ChromeTrace.cpp - Trace and metrics exporters -----------------------===//

#include "telemetry/ChromeTrace.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

using namespace parcae::telemetry;

//===----------------------------------------------------------------------===//
// JSON writer
//===----------------------------------------------------------------------===//

namespace {

void escapeInto(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendNum(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "0";
    return;
  }
  char Buf[40];
  // %.17g round-trips doubles; trim the common integral case for size.
  if (V == std::floor(V) && std::fabs(V) < 1e15)
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
  else
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

void appendArgs(std::string &Out, const std::vector<TraceArg> &Args) {
  Out += "\"args\":{";
  for (std::size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\"";
    escapeInto(Out, Args[I].Key);
    Out += "\":";
    if (Args[I].IsNum) {
      appendNum(Out, Args[I].Num);
    } else {
      Out += "\"";
      escapeInto(Out, Args[I].Str);
      Out += "\"";
    }
  }
  Out += "}";
}

void appendCommon(std::string &Out, const char *Name, const char *Ph,
                  double TsUs, std::uint32_t Pid, std::uint32_t Tid) {
  Out += "{\"name\":\"";
  escapeInto(Out, Name);
  Out += "\",\"ph\":\"";
  Out += Ph;
  Out += "\",\"ts\":";
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.3f", TsUs);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), ",\"pid\":%u,\"tid\":%u", Pid, Tid);
  Out += Buf;
}

} // namespace

std::string parcae::telemetry::toChromeTraceJson(const TraceRecorder &R) {
  std::string Out;
  Out.reserve(128 * R.size() + 4096);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      Out += ",\n";
    First = false;
  };

  // Metadata: process and thread names.
  const auto &Procs = R.processes();
  for (std::uint32_t Pid = 0; Pid < Procs.size(); ++Pid) {
    Sep();
    appendCommon(Out, "process_name", "M", 0.0, Pid, 0);
    Out += ",\"args\":{\"name\":\"";
    escapeInto(Out, Procs[Pid]);
    Out += "\"}}";
  }
  for (const auto &T : R.threadNames()) {
    Sep();
    appendCommon(Out, "thread_name", "M", 0.0, T.first.first, T.first.second);
    Out += ",\"args\":{\"name\":\"";
    escapeInto(Out, T.second);
    Out += "\"}}";
  }

  for (const TraceEvent &E : R.events()) {
    Sep();
    const char Ph[2] = {static_cast<char>(E.Ph), 0};
    appendCommon(Out, E.Name.c_str(), Ph,
                 static_cast<double>(E.Ts) / 1000.0, E.Pid, E.Tid);
    Out += ",\"cat\":\"";
    escapeInto(Out, E.Cat);
    Out += "\"";
    if (E.Ph == Phase::Instant)
      Out += ",\"s\":\"t\""; // instant scope: thread
    if (!E.Args.empty() || E.Ph == Phase::Counter) {
      Out += ",";
      appendArgs(Out, E.Args);
    }
    Out += "}";
  }
  Out += "\n]";
  if (R.dropped()) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), ",\"droppedEvents\":%llu",
                  static_cast<unsigned long long>(R.dropped()));
    Out += Buf;
  }
  Out += "}\n";
  return Out;
}

bool parcae::telemetry::writeChromeTrace(const TraceRecorder &R,
                                         const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Json = toChromeTraceJson(R);
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Err) : S(Text), Err(Err) {}

  bool run(json::Value &Out) {
    skipWs();
    if (!value(Out))
      return false;
    skipWs();
    if (Pos != S.size())
      return fail("trailing characters after top-level value");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Err && Err->empty())
      *Err = Msg + " (at byte " + std::to_string(Pos) + ")";
    return false;
  }

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    std::size_t N = std::strlen(Lit);
    if (S.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool string(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= S.size())
          return fail("truncated escape");
        char E = S[Pos++];
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'n': Out += '\n'; break;
        case 'r': Out += '\r'; break;
        case 't': Out += '\t'; break;
        case 'u': {
          if (Pos + 4 > S.size())
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = S[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code += static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code += static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code += static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // Keep it simple: encode as UTF-8 (no surrogate pairing).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
        }
      } else {
        Out += C;
      }
    }
    return fail("unterminated string");
  }

  bool number(double &Out) {
    std::size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    bool Digits = false;
    auto digits = [&] {
      while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos]))) {
        ++Pos;
        Digits = true;
      }
    };
    digits();
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      digits();
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
        ++Pos;
      digits();
    }
    if (!Digits)
      return fail("expected number");
    Out = std::strtod(S.c_str() + Start, nullptr);
    return true;
  }

  bool value(json::Value &Out) {
    if (Pos >= S.size())
      return fail("unexpected end of input");
    char C = S[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = json::Value::Kind::Obj;
      skipWs();
      if (consume('}'))
        return true;
      while (true) {
        skipWs();
        std::string Key;
        if (!string(Key))
          return false;
        skipWs();
        if (!consume(':'))
          return fail("expected ':' in object");
        skipWs();
        json::Value V;
        if (!value(V))
          return false;
        Out.Obj.push_back({std::move(Key), std::move(V)});
        skipWs();
        if (consume(','))
          continue;
        if (consume('}'))
          return true;
        return fail("expected ',' or '}' in object");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = json::Value::Kind::Arr;
      skipWs();
      if (consume(']'))
        return true;
      while (true) {
        skipWs();
        json::Value V;
        if (!value(V))
          return false;
        Out.Arr.push_back(std::move(V));
        skipWs();
        if (consume(','))
          continue;
        if (consume(']'))
          return true;
        return fail("expected ',' or ']' in array");
      }
    }
    if (C == '"') {
      Out.K = json::Value::Kind::Str;
      return string(Out.Str);
    }
    if (C == 't') {
      Out.K = json::Value::Kind::Bool;
      Out.B = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = json::Value::Kind::Bool;
      Out.B = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.K = json::Value::Kind::Null;
      return literal("null");
    }
    Out.K = json::Value::Kind::Num;
    return number(Out.Num);
  }

  const std::string &S;
  std::string *Err;
  std::size_t Pos = 0;
};

} // namespace

bool parcae::telemetry::json::parse(const std::string &Text, Value &Out,
                                    std::string *Err) {
  if (Err)
    Err->clear();
  return Parser(Text, Err).run(Out);
}

//===----------------------------------------------------------------------===//
// Trace validation
//===----------------------------------------------------------------------===//

bool parcae::telemetry::validateChromeTrace(const std::string &Json,
                                            std::string *Err) {
  auto fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  json::Value Root;
  std::string ParseErr;
  if (!json::parse(Json, Root, &ParseErr))
    return fail("JSON parse error: " + ParseErr);
  const json::Value *Events = Root.find("traceEvents");
  if (!Events || Events->K != json::Value::Kind::Arr)
    return fail("missing traceEvents array");
  if (Events->Arr.empty())
    return fail("empty traceEvents array");

  // Per-(pid, tid) span-nesting depth and last timestamp.
  std::map<std::pair<double, double>, int> Depth;
  double LastTs = -1.0;
  for (std::size_t I = 0; I < Events->Arr.size(); ++I) {
    const json::Value &E = Events->Arr[I];
    auto at = [&] { return " (event " + std::to_string(I) + ")"; };
    if (E.K != json::Value::Kind::Obj)
      return fail("event is not an object" + at());
    const json::Value *Name = E.find("name");
    const json::Value *Ph = E.find("ph");
    const json::Value *Ts = E.find("ts");
    const json::Value *Pid = E.find("pid");
    const json::Value *Tid = E.find("tid");
    if (!Name || Name->K != json::Value::Kind::Str)
      return fail("event without string name" + at());
    if (!Ph || Ph->K != json::Value::Kind::Str || Ph->Str.size() != 1)
      return fail("event without one-char ph" + at());
    if (!Ts || Ts->K != json::Value::Kind::Num)
      return fail("event without numeric ts" + at());
    if (!Pid || Pid->K != json::Value::Kind::Num || !Tid ||
        Tid->K != json::Value::Kind::Num)
      return fail("event without numeric pid/tid" + at());
    char P = Ph->Str[0];
    if (P == 'M')
      continue; // metadata carries ts 0 out of band
    if (Ts->Num + 1e-9 < LastTs)
      return fail("timestamps not monotone" + at());
    LastTs = Ts->Num;
    auto Track = std::make_pair(Pid->Num, Tid->Num);
    if (P == 'B') {
      ++Depth[Track];
    } else if (P == 'E') {
      if (--Depth[Track] < 0)
        return fail("span end without begin" + at());
    } else if (P == 'C') {
      const json::Value *Args = E.find("args");
      if (!Args || Args->K != json::Value::Kind::Obj || Args->Obj.empty())
        return fail("counter event without args" + at());
    } else if (P != 'i') {
      return fail(std::string("unexpected phase '") + P + "'" + at());
    }
  }
  // Unclosed spans are allowed (a trace may end mid-run); negative depth
  // was already rejected above.
  return true;
}

//===----------------------------------------------------------------------===//
// TraceFile (--trace flag)
//===----------------------------------------------------------------------===//

const char *parcae::telemetry::traceFlagPath(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--trace") == 0 && I + 1 < Argc)
      return Argv[I + 1];
    if (std::strncmp(Argv[I], "--trace=", 8) == 0)
      return Argv[I] + 8;
  }
  return nullptr;
}

TraceFile::TraceFile(const char *P) {
  if (!P || !*P)
    return;
  Path = P;
  Rec = std::make_unique<TraceRecorder>();
  setRecorder(Rec.get());
}

TraceFile::~TraceFile() {
  if (!Rec)
    return;
  setRecorder(nullptr);
  if (writeChromeTrace(*Rec, Path)) {
    std::fprintf(stderr, "[telemetry] wrote %zu events to %s", Rec->size(),
                 Path.c_str());
    if (Rec->dropped())
      std::fprintf(stderr, " (%llu dropped)",
                   static_cast<unsigned long long>(Rec->dropped()));
    std::fprintf(stderr, " — open in https://ui.perfetto.dev\n");
  } else {
    std::fprintf(stderr, "[telemetry] FAILED to write %s\n", Path.c_str());
  }
  if (!Rec->metrics().empty()) {
    std::string MPath = Path + ".metrics.txt";
    std::FILE *F = std::fopen(MPath.c_str(), "w");
    if (F) {
      std::string Text = Rec->metrics().snapshot(Rec->now()).text();
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
      std::fprintf(stderr, "[telemetry] metrics dump: %s\n", MPath.c_str());
    }
  }
}
