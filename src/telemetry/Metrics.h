//===- Metrics.h - Named counters, gauges, and histograms -------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named metrics, snapshotable at any virtual time:
///
///  * Counter   — monotone uint64 ("runner.full_pauses");
///  * Gauge     — last-written double ("decima.SystemPower");
///  * Histogram — recorded samples with p50/p95/p99 (support/Stats.h),
///                e.g. the controller's measured throughputs.
///
/// Metric objects have stable addresses once created, so hot paths look a
/// metric up once and cache the pointer; the per-event cost is then one
/// increment.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_TELEMETRY_METRICS_H
#define PARCAE_TELEMETRY_METRICS_H

#include "sim/Time.h"
#include "support/Stats.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parcae::telemetry {

/// Monotone event count.
class Counter {
public:
  void add(std::uint64_t Delta = 1) { V += Delta; }
  std::uint64_t value() const { return V; }

private:
  std::uint64_t V = 0;
};

/// Last-written value of a sampled quantity.
class Gauge {
public:
  void set(double X) {
    V = X;
    Written = true;
  }
  double value() const { return V; }
  bool written() const { return Written; }

private:
  double V = 0.0;
  bool Written = false;
};

/// One row of a metrics snapshot.
struct MetricRow {
  enum class Kind { Counter, Gauge, Histogram };
  Kind K;
  std::string Name;
  double Value = 0.0; ///< counter value / gauge value / histogram count
  // Histogram-only fields.
  double Mean = 0.0, P50 = 0.0, P95 = 0.0, P99 = 0.0, Min = 0.0, Max = 0.0;
};

/// A point-in-time view of every registered metric.
struct MetricsSnapshot {
  sim::SimTime At = 0;
  std::vector<MetricRow> Rows;

  /// Flat text dump, one metric per line (the "metrics text" exporter).
  std::string text() const;
};

/// Registry of named metrics. Lookup creates on first use; returned
/// references stay valid for the registry's lifetime.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Snapshot of all metrics at virtual time \p Now, rows sorted by name.
  MetricsSnapshot snapshot(sim::SimTime Now) const;

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }
  void clear();

private:
  template <class T> struct Named {
    std::string Name;
    std::unique_ptr<T> M;
  };
  // Linear lookup: registries hold tens of metrics and hot paths cache
  // the returned pointer, so the lookup runs once per metric per run.
  std::vector<Named<Counter>> Counters;
  std::vector<Named<Gauge>> Gauges;
  std::vector<Named<Histogram>> Histograms;
};

} // namespace parcae::telemetry

#endif // PARCAE_TELEMETRY_METRICS_H
