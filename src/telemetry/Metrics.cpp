//===- Metrics.cpp - Named counters, gauges, and histograms ----------------===//

#include "telemetry/Metrics.h"

#include <algorithm>
#include <cstdio>

using namespace parcae::telemetry;

Counter &MetricsRegistry::counter(const std::string &Name) {
  for (auto &E : Counters)
    if (E.Name == Name)
      return *E.M;
  Counters.push_back({Name, std::make_unique<Counter>()});
  return *Counters.back().M;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  for (auto &E : Gauges)
    if (E.Name == Name)
      return *E.M;
  Gauges.push_back({Name, std::make_unique<Gauge>()});
  return *Gauges.back().M;
}

parcae::Histogram &MetricsRegistry::histogram(const std::string &Name) {
  for (auto &E : Histograms)
    if (E.Name == Name)
      return *E.M;
  Histograms.push_back({Name, std::make_unique<Histogram>()});
  return *Histograms.back().M;
}

void MetricsRegistry::clear() {
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
}

MetricsSnapshot MetricsRegistry::snapshot(sim::SimTime Now) const {
  MetricsSnapshot S;
  S.At = Now;
  for (const auto &E : Counters) {
    MetricRow R;
    R.K = MetricRow::Kind::Counter;
    R.Name = E.Name;
    R.Value = static_cast<double>(E.M->value());
    S.Rows.push_back(std::move(R));
  }
  for (const auto &E : Gauges) {
    MetricRow R;
    R.K = MetricRow::Kind::Gauge;
    R.Name = E.Name;
    R.Value = E.M->value();
    S.Rows.push_back(std::move(R));
  }
  for (const auto &E : Histograms) {
    MetricRow R;
    R.K = MetricRow::Kind::Histogram;
    R.Name = E.Name;
    R.Value = static_cast<double>(E.M->count());
    R.Mean = E.M->mean();
    R.P50 = E.M->p50();
    R.P95 = E.M->p95();
    R.P99 = E.M->p99();
    R.Min = E.M->min();
    R.Max = E.M->max();
    S.Rows.push_back(std::move(R));
  }
  std::sort(S.Rows.begin(), S.Rows.end(),
            [](const MetricRow &A, const MetricRow &B) {
              return A.Name < B.Name;
            });
  return S;
}

std::string MetricsSnapshot::text() const {
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "# metrics at t=%.6f s\n",
                sim::toSeconds(At));
  Out += Buf;
  for (const MetricRow &R : Rows) {
    switch (R.K) {
    case MetricRow::Kind::Counter:
      std::snprintf(Buf, sizeof(Buf), "counter %s %.0f\n", R.Name.c_str(),
                    R.Value);
      break;
    case MetricRow::Kind::Gauge:
      std::snprintf(Buf, sizeof(Buf), "gauge %s %.6g\n", R.Name.c_str(),
                    R.Value);
      break;
    case MetricRow::Kind::Histogram:
      std::snprintf(Buf, sizeof(Buf),
                    "histogram %s count=%.0f mean=%.6g p50=%.6g p95=%.6g "
                    "p99=%.6g min=%.6g max=%.6g\n",
                    R.Name.c_str(), R.Value, R.Mean, R.P50, R.P95, R.P99,
                    R.Min, R.Max);
      break;
    }
    Out += Buf;
  }
  return Out;
}
