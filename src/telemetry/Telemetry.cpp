//===- Telemetry.cpp - Virtual-time event tracing --------------------------===//

#include "telemetry/Telemetry.h"

#include <algorithm>

using namespace parcae::telemetry;

namespace {
TraceRecorder *GlobalRecorder = nullptr;
} // namespace

TraceRecorder *parcae::telemetry::recorder() { return GlobalRecorder; }

void parcae::telemetry::setRecorder(TraceRecorder *R) { GlobalRecorder = R; }

std::uint32_t TraceRecorder::processFor(const std::string &Name) {
  for (std::size_t I = 0; I < Processes.size(); ++I)
    if (Processes[I] == Name)
      return static_cast<std::uint32_t>(I);
  Processes.push_back(Name);
  return static_cast<std::uint32_t>(Processes.size() - 1);
}

void TraceRecorder::nameThread(std::uint32_t Pid, std::uint32_t Tid,
                               std::string Name) {
  for (auto &Entry : ThreadNames) {
    if (Entry.first.first == Pid && Entry.first.second == Tid) {
      Entry.second = std::move(Name);
      return;
    }
  }
  ThreadNames.push_back({{Pid, Tid}, std::move(Name)});
}

void TraceRecorder::captureSimQueueMetrics(const sim::Simulator &Sim) {
  sim::Simulator::QueueStats S = Sim.queueStats();
  Metrics.gauge("sim.queue.ring_hits").set(static_cast<double>(S.RingHits));
  Metrics.gauge("sim.queue.wheel_hits").set(static_cast<double>(S.WheelHits));
  Metrics.gauge("sim.queue.heap_hits").set(static_cast<double>(S.HeapHits));
  Metrics.gauge("sim.queue.spill_migrations")
      .set(static_cast<double>(S.SpillMigrations));
  Metrics.gauge("sim.queue.max_bucket_depth")
      .set(static_cast<double>(S.MaxBucketDepth));
  Metrics.gauge("sim.queue.wheel_span").set(static_cast<double>(S.WheelSpan));
}

void TraceRecorder::record(Phase Ph, std::uint32_t Pid, std::uint32_t Tid,
                           const char *Cat, std::string Name,
                           std::vector<TraceArg> Args) {
  if (Events.size() >= Capacity) {
    ++Dropped;
    return;
  }
  TraceEvent E;
  E.Ts = now();
  E.Ph = Ph;
  E.Pid = Pid;
  E.Tid = Tid;
  E.Cat = Cat;
  E.Name = std::move(Name);
  E.Args = std::move(Args);
  Events.push_back(std::move(E));
}
