//===- IR.cpp - Nona's intermediate representation --------------------------===//

#include "ir/IR.h"

#include <cstdio>

using namespace parcae::ir;

const char *parcae::ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Mod:
    return "mod";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::Phi:
    return "phi";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  }
  return "?";
}

bool parcae::ir::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

bool parcae::ir::definesValue(Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return false;
  default:
    return true;
  }
}

BasicBlock *Function::makeBlock(std::string BlockName) {
  auto B = std::make_unique<BasicBlock>();
  B->Id = static_cast<unsigned>(Blocks.size());
  B->Name = std::move(BlockName);
  BasicBlock *Raw = B.get();
  Blocks.push_back(std::move(B));
  return Raw;
}

Instruction *Function::emit(BasicBlock *B, Opcode Op,
                            std::vector<ValueId> Uses,
                            std::string InstName) {
  assert(B && "emit() needs a block");
  auto I = std::make_unique<Instruction>();
  I->Id = NextInst++;
  I->Op = Op;
  I->Uses = std::move(Uses);
  I->Parent = B;
  I->Name = std::move(InstName);
  if (definesValue(Op))
    I->Def = NextValue++;
  Instruction *Raw = I.get();
  B->Insts.push_back(std::move(I));
  return Raw;
}

Instruction *Function::instById(unsigned Id) const {
  for (const auto &B : Blocks)
    for (const auto &I : B->Insts)
      if (I->Id == Id)
        return I.get();
  assert(false && "no instruction with this id");
  return nullptr;
}

void Function::verify() const {
  // SSA: every value defined exactly once; uses reference defined values.
  std::vector<int> DefCount(static_cast<std::size_t>(NextValue), 0);
  for (const auto &B : Blocks) {
    assert(!B->Insts.empty() && "empty basic block");
    assert(B->Insts.back()->isBranch() && "block must end in a terminator");
    for (std::size_t K = 0; K + 1 < B->Insts.size(); ++K)
      assert(!B->Insts[K]->isBranch() && "terminator not at block end");
    for (const auto &I : B->Insts) {
      if (I->Def != NoValue)
        ++DefCount[static_cast<std::size_t>(I->Def)];
      for (ValueId U : I->Uses) {
        assert(U >= 0 && U < NextValue && "use of unknown value");
        (void)U;
      }
      if (I->Op == Opcode::CondBr)
        assert(I->Parent->Succs.size() == 2 && "condbr needs two succs");
      if (I->Op == Opcode::Br)
        assert(I->Parent->Succs.size() == 1 && "br needs one succ");
      if (I->Op == Opcode::Ret)
        assert(I->Parent->Succs.empty() && "ret must end the function");
      if (I->isPhi()) {
        assert(I->Parent == TheLoop.Header && "phis only in loop header");
        assert(I->Uses.size() == 2 && "header phi has {init, carried}");
      }
    }
  }
  for (int C : DefCount) {
    assert(C == 1 && "SSA value must have exactly one definition");
    (void)C;
  }

  // Loop shape (Section 4.5.1).
  const Loop &L = TheLoop;
  assert(L.Header && L.Tail && L.Exit && "loop endpoints unset");
  assert(L.contains(L.Header) && L.contains(L.Tail) && "loop block lists");
  assert(!L.contains(L.Exit) && "exit must be outside the loop");
  // Single backedge tail -> header.
  unsigned Backedges = 0;
  for (const BasicBlock *P : L.Header->Preds)
    if (L.contains(P)) {
      assert(P == L.Tail && "backedge must come from the tail");
      ++Backedges;
    }
  assert(Backedges == 1 && "exactly one backedge");
  (void)Backedges;
}

std::string Function::print() const {
  std::string Out = "function " + Name + "\n";
  for (const auto &B : Blocks) {
    Out += B->Name + ":\n";
    for (const auto &I : B->Insts) {
      char Buf[160];
      std::string UseStr;
      for (ValueId U : I->Uses)
        UseStr += " v" + std::to_string(U);
      std::snprintf(Buf, sizeof(Buf), "  %%%u %s%s %s%s%s%s\n", I->Id,
                    I->Def != NoValue
                        ? ("v" + std::to_string(I->Def) + " =").c_str()
                        : "",
                    opcodeName(I->Op), UseStr.c_str(),
                    I->MemObject >= 0
                        ? (" @m" + std::to_string(I->MemObject)).c_str()
                        : "",
                    I->Commutative ? " commutative" : "",
                    I->Name.empty() ? "" : (" ; " + I->Name).c_str());
      Out += Buf;
    }
  }
  return Out;
}
