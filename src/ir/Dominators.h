//===- Dominators.h - Dominance and control dependence ----------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-dominator computation and control-dependence derivation for the
/// PDG builder (Section 4.1: "control dependencies are computed
/// efficiently based on the post-dominance relation"). The algorithm is
/// Cooper-Harvey-Kennedy iterative dominance on the reverse CFG, followed
/// by the classical Ferrante-Ottenstein-Warren control-dependence rule:
/// for an edge (A, B) where B does not post-dominate A, every node on the
/// post-dominator-tree path from B up to (but excluding) ipdom(A) is
/// control-dependent on A.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_IR_DOMINATORS_H
#define PARCAE_IR_DOMINATORS_H

#include "ir/IR.h"

#include <map>
#include <vector>

namespace parcae::ir {

/// Post-dominator tree over a function's CFG.
class PostDominators {
public:
  /// \p ExitBlock is the unique sink the analysis roots at.
  PostDominators(const Function &F, const BasicBlock *ExitBlock);

  /// Immediate post-dominator (null for the exit block).
  const BasicBlock *ipdom(const BasicBlock *B) const;

  /// Whether \p A post-dominates \p B.
  bool postDominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Blocks control-dependent on \p A's terminator (conditional branch).
  std::vector<const BasicBlock *>
  controlDependents(const BasicBlock *A) const;

private:
  const Function &F;
  const BasicBlock *Exit;
  std::map<const BasicBlock *, const BasicBlock *> IPDom;
  std::vector<const BasicBlock *> RevPostOrder; // of the reverse CFG
};

} // namespace parcae::ir

#endif // PARCAE_IR_DOMINATORS_H
