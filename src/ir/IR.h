//===- IR.h - Nona's intermediate representation ----------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact SSA intermediate representation for the Nona compiler
/// (Chapter 4). It is deliberately small but complete enough to express
/// everything the paper parallelizes: loops with induction variables,
/// min/max/sum reductions, commutativity-annotated calls, loads/stores
/// against abstract memory objects, and control flow inside the loop
/// body.
///
/// The loop shape matches the paper's CFG_T restrictions (Section 4.5.1):
/// a single-entry single-exit region with one header, one tail->header
/// backedge, and all exits reaching a single exit block.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_IR_IR_H
#define PARCAE_IR_IR_H

#include "sim/Time.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parcae::ir {

class BasicBlock;
class Function;

/// A virtual register in SSA form. Negative means "none".
using ValueId = int;
constexpr ValueId NoValue = -1;

enum class Opcode {
  Const, ///< Def = Imm
  Add,   ///< Def = Uses[0] + Uses[1]
  Sub,
  Mul,
  Mod,   ///< Def = Uses[0] % Uses[1] (Uses[1] > 0)
  Min,
  Max,
  CmpLt, ///< Def = Uses[0] < Uses[1]
  Phi,   ///< loop-header phi: Uses = {initial, loop-carried}
  Load,  ///< Def = Mem[MemObject][Uses[0]]  (Uses empty: scalar cell 0)
  Store, ///< Mem[MemObject][Uses[0]] = Uses[1] (1 use: scalar cell 0)
  Call,  ///< Def = opaque(Imm; Uses...) — latency-heavy external work
  Br,    ///< unconditional to Succs[0]
  CondBr, ///< Uses[0] != 0 ? Succs[0] : Succs[1]
  Ret    ///< function end (no successors)
};

const char *opcodeName(Opcode Op);
bool isTerminator(Opcode Op);

/// One SSA instruction.
class Instruction {
public:
  unsigned Id = 0;      ///< dense within the function
  Opcode Op;
  ValueId Def = NoValue;
  std::vector<ValueId> Uses;
  /// Abstract memory object accessed by Load/Store (alias class).
  int MemObject = -1;
  /// Constant for Const; callee id for Call.
  std::int64_t Imm = 0;
  /// Execution latency in cycles (drives the simulated cost model).
  sim::SimTime Latency = 1;
  /// Average dynamic executions per loop iteration (profile weight).
  double ProfileWeight = 1.0;
  /// Commutativity annotation (Section 4.1): instances of this
  /// instruction may be reordered relative to each other; DOANY realizes
  /// this with a critical section.
  bool Commutative = false;
  BasicBlock *Parent = nullptr;
  std::string Name;

  bool isPhi() const { return Op == Opcode::Phi; }
  bool isMemory() const {
    return Op == Opcode::Load || Op == Opcode::Store;
  }
  bool isBranch() const { return isTerminator(Op); }
  bool writesMemory() const { return Op == Opcode::Store; }
  bool readsMemory() const { return Op == Opcode::Load; }
};

/// A basic block: instructions plus CFG edges.
class BasicBlock {
public:
  unsigned Id = 0;
  std::string Name;
  std::vector<std::unique_ptr<Instruction>> Insts;
  std::vector<BasicBlock *> Succs;
  std::vector<BasicBlock *> Preds;

  Instruction *terminator() {
    assert(!Insts.empty() && Insts.back()->isBranch() &&
           "block lacks a terminator");
    return Insts.back().get();
  }
  const Instruction *terminator() const {
    return const_cast<BasicBlock *>(this)->terminator();
  }
};

/// The loop Nona parallelizes: header..tail with a single backedge.
struct Loop {
  BasicBlock *Preheader = nullptr; ///< runs once (becomes Tinit)
  BasicBlock *Header = nullptr;
  BasicBlock *Tail = nullptr; ///< holds the backedge CondBr
  BasicBlock *Exit = nullptr;
  std::vector<BasicBlock *> Blocks; ///< header..tail, RPO order

  bool contains(const BasicBlock *B) const {
    for (const BasicBlock *L : Blocks)
      if (L == B)
        return true;
    return false;
  }
};

/// A function: a bag of blocks plus its single parallelizable loop.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}
  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &name() const { return Name; }

  BasicBlock *makeBlock(std::string BlockName);

  /// Appends an instruction to \p B; assigns its Id and (if it defines a
  /// value) a fresh ValueId returned via Inst.Def.
  Instruction *emit(BasicBlock *B, Opcode Op, std::vector<ValueId> Uses = {},
                    std::string InstName = "");

  /// Number of SSA values created so far.
  ValueId numValues() const { return NextValue; }
  unsigned numInsts() const { return NextInst; }

  std::vector<std::unique_ptr<BasicBlock>> &blocks() { return Blocks; }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Looks an instruction up by dense id (linear scan; functions are
  /// small).
  Instruction *instById(unsigned Id) const;

  /// The loop of this function (set by the builder).
  Loop TheLoop;

  /// Adds a CFG edge.
  static void link(BasicBlock *From, BasicBlock *To) {
    From->Succs.push_back(To);
    To->Preds.push_back(From);
  }

  /// Structural checks: SSA single-def, terminator presence, the loop
  /// shape restrictions of Section 4.5.1. Asserts on violation.
  void verify() const;

  /// Human-readable dump (for tests and debugging).
  std::string print() const;

private:
  std::string Name;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  ValueId NextValue = 0;
  unsigned NextInst = 0;
};

/// Whether \p Op defines a value.
bool definesValue(Opcode Op);

} // namespace parcae::ir

#endif // PARCAE_IR_IR_H
