//===- Dominators.cpp - Dominance and control dependence --------------------===//

#include "ir/Dominators.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace parcae::ir;

PostDominators::PostDominators(const Function &F, const BasicBlock *ExitBlock)
    : F(F), Exit(ExitBlock) {
  assert(ExitBlock && "post-dominance needs the exit block");

  // Postorder of the *reverse* CFG from the exit (i.e. following Preds).
  std::set<const BasicBlock *> Visited;
  std::vector<const BasicBlock *> PostOrder;
  // Iterative DFS.
  std::vector<std::pair<const BasicBlock *, std::size_t>> Stack;
  Stack.push_back({ExitBlock, 0});
  Visited.insert(ExitBlock);
  while (!Stack.empty()) {
    auto &[B, NextPred] = Stack.back();
    if (NextPred < B->Preds.size()) {
      const BasicBlock *P = B->Preds[NextPred++];
      if (Visited.insert(P).second)
        Stack.push_back({P, 0});
      continue;
    }
    PostOrder.push_back(B);
    Stack.pop_back();
  }
  RevPostOrder.assign(PostOrder.rbegin(), PostOrder.rend());
  assert(RevPostOrder.front() == ExitBlock);

  // Cooper-Harvey-Kennedy on the reverse CFG.
  std::map<const BasicBlock *, unsigned> RpoIndex;
  for (unsigned I = 0; I < RevPostOrder.size(); ++I)
    RpoIndex[RevPostOrder[I]] = I;

  auto Intersect = [&](const BasicBlock *A,
                       const BasicBlock *B) -> const BasicBlock * {
    while (A != B) {
      while (RpoIndex.at(A) > RpoIndex.at(B))
        A = IPDom.at(A);
      while (RpoIndex.at(B) > RpoIndex.at(A))
        B = IPDom.at(B);
    }
    return A;
  };

  IPDom[ExitBlock] = ExitBlock;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock *B : RevPostOrder) {
      if (B == ExitBlock)
        continue;
      // "Predecessors" in the reverse CFG are the successors in the CFG.
      const BasicBlock *NewIPDom = nullptr;
      for (const BasicBlock *S : B->Succs) {
        if (!IPDom.count(S))
          continue;
        NewIPDom = NewIPDom ? Intersect(NewIPDom, S) : S;
      }
      if (!NewIPDom)
        continue;
      auto It = IPDom.find(B);
      if (It == IPDom.end() || It->second != NewIPDom) {
        IPDom[B] = NewIPDom;
        Changed = true;
      }
    }
  }
}

const BasicBlock *PostDominators::ipdom(const BasicBlock *B) const {
  if (B == Exit)
    return nullptr;
  auto It = IPDom.find(B);
  return It == IPDom.end() ? nullptr : It->second;
}

bool PostDominators::postDominates(const BasicBlock *A,
                                   const BasicBlock *B) const {
  // Walk B's post-dominator chain towards the exit.
  const BasicBlock *Cur = B;
  while (Cur) {
    if (Cur == A)
      return true;
    if (Cur == Exit)
      return false;
    auto It = IPDom.find(Cur);
    if (It == IPDom.end())
      return false;
    Cur = It->second;
  }
  return false;
}

std::vector<const BasicBlock *>
PostDominators::controlDependents(const BasicBlock *A) const {
  std::vector<const BasicBlock *> Out;
  if (A->Succs.size() < 2)
    return Out; // only conditional branches create control dependence
  std::set<const BasicBlock *> Seen;
  const BasicBlock *Stop = ipdom(A);
  for (const BasicBlock *B : A->Succs) {
    const BasicBlock *Cur = B;
    while (Cur && Cur != Stop) {
      if (Seen.insert(Cur).second)
        Out.push_back(Cur);
      Cur = ipdom(Cur);
    }
  }
  return Out;
}
