//===- Memory.h - Abstract memory and opaque call semantics -----*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-side state for Nona-compiled loops: abstract memory objects
/// (named int64 arrays) and the deterministic semantics of opaque Call
/// instructions. Calls with a memory object model stateful external work
/// (e.g. a PRNG); their state update is a commutative mix so that
/// commutativity-annotated reorderings leave the final state unchanged —
/// which is exactly the property the semantic-equivalence tests check.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_INTERP_MEMORY_H
#define PARCAE_INTERP_MEMORY_H

#include "ir/IR.h"

#include <cstdint>
#include <map>
#include <vector>

namespace parcae::ir {

/// Abstract memory: object id -> growable array of int64 cells.
class Memory {
public:
  /// The backing array of an object, grown to at least \p MinSize.
  std::vector<std::int64_t> &object(int Id, std::size_t MinSize = 0);

  std::int64_t load(int Id, std::int64_t Index);
  void store(int Id, std::int64_t Index, std::int64_t Value);

  bool operator==(const Memory &O) const { return Objects == O.Objects; }

  /// Wipes everything (fresh run).
  void clear() { Objects.clear(); }

private:
  std::map<int, std::vector<std::int64_t>> Objects;
};

/// Deterministic value mixer used by Call semantics.
std::int64_t mixValues(std::int64_t Callee, const std::vector<std::int64_t> &Args);

/// Executes a Call instruction: returns its result and applies its
/// (commutative) side effect on the call's memory object, if any.
std::int64_t evalCall(const Instruction &I,
                      const std::vector<std::int64_t> &Args, Memory &M);

} // namespace parcae::ir

#endif // PARCAE_INTERP_MEMORY_H
