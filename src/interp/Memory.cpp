//===- Memory.cpp - Abstract memory and opaque call semantics --------------===//

#include "interp/Memory.h"

#include <cassert>

using namespace parcae::ir;

std::vector<std::int64_t> &Memory::object(int Id, std::size_t MinSize) {
  auto &V = Objects[Id];
  if (V.size() < MinSize)
    V.resize(MinSize, 0);
  return V;
}

std::int64_t Memory::load(int Id, std::int64_t Index) {
  assert(Index >= 0 && "negative memory index");
  auto &V = object(Id, static_cast<std::size_t>(Index) + 1);
  return V[static_cast<std::size_t>(Index)];
}

void Memory::store(int Id, std::int64_t Index, std::int64_t Value) {
  assert(Index >= 0 && "negative memory index");
  auto &V = object(Id, static_cast<std::size_t>(Index) + 1);
  V[static_cast<std::size_t>(Index)] = Value;
}

std::int64_t parcae::ir::mixValues(std::int64_t Callee,
                                   const std::vector<std::int64_t> &Args) {
  std::uint64_t H = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(Callee + 1);
  for (std::int64_t A : Args) {
    H ^= static_cast<std::uint64_t>(A) + 0x9e3779b97f4a7c15ull + (H << 6) +
         (H >> 2);
    H *= 0xbf58476d1ce4e5b9ull;
  }
  H ^= H >> 31;
  // Keep results in a tame range so repeated sums do not overflow.
  return static_cast<std::int64_t>(H % 1000003ull);
}

std::int64_t parcae::ir::evalCall(const Instruction &I,
                                  const std::vector<std::int64_t> &Args,
                                  Memory &M) {
  assert(I.Op == Opcode::Call && "evalCall on a non-call");
  std::int64_t Result = mixValues(I.Imm, Args);
  if (I.MemObject >= 0) {
    // Commutative state update: addition, so any execution order of the
    // call's dynamic instances produces the same final state.
    std::int64_t Old = M.load(I.MemObject, 0);
    M.store(I.MemObject, 0, Old + Result);
  }
  return Result;
}
