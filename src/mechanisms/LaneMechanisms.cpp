//===- LaneMechanisms.cpp - Mechanisms for two-level apps ------------------===//

#include "mechanisms/LaneMechanisms.h"

#include <algorithm>
#include <cmath>

using namespace parcae::rt;
namespace sim = parcae::sim;

LaneMechanism::~LaneMechanism() = default;

std::optional<LaneConfig> WqtH::onDispatch(double QueueLen) {
  // In SEQ (throughput) mode, count consecutive dispatches with occupancy
  // under the threshold; in PAR (latency) mode, count those over it.
  bool UnderT = QueueLen < Threshold;
  bool Vote = InPar ? !UnderT : UnderT;
  Consecutive = Vote ? Consecutive + 1 : 0;
  if (!InPar && Consecutive > Noff) {
    InPar = true;
    Consecutive = 0;
    return ParMode;
  }
  if (InPar && Consecutive > Non) {
    InPar = false;
    Consecutive = 0;
    return SeqMode;
  }
  return {};
}

LaneConfig WqLinear::configFor(double QueueLen) const {
  double K = static_cast<double>(DPmax - DPmin) / Qmax;
  double DP = std::max(static_cast<double>(DPmin),
                       static_cast<double>(DPmax) - K * QueueLen);
  unsigned L = static_cast<unsigned>(DP + 0.5);
  L = std::clamp(L, 1u, DPmax);
  LaneConfig C;
  if (L <= 1) {
    C.K = N;
    C.InnerParallel = false;
    C.L = 1;
  } else {
    C.InnerParallel = true;
    C.L = L;
    C.K = std::max(1u, N / L);
  }
  return C;
}

std::optional<LaneConfig> WqLinear::onDispatch(double QueueLen) {
  LaneConfig C = configFor(QueueLen);
  if (Seeded && C.K == Last.K && C.L == Last.L &&
      C.InnerParallel == Last.InnerParallel)
    return {};
  Seeded = true;
  Last = C;
  return C;
}

LaneMechanismDriver::LaneMechanismDriver(LaneServerApp &App,
                                         LaneMechanism &Mech)
    : App(App), Mech(Mech) {}

void LaneMechanismDriver::start() {
  App.OnDispatch = [this](double QueueLen) {
    if (auto C = Mech.onDispatch(QueueLen)) {
      App.reconfigure(*C);
      ++Reconfigs;
    }
  };
  App.start(Mech.initialConfig());
}
