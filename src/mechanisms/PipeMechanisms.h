//===- PipeMechanisms.h - Mechanisms for pipeline apps ----------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Maximize Throughput with N threads [, P Watts]" mechanisms of
/// Sections 6.3.2 and 6.3.3, targeting pipeline applications:
///
///  * SEDA   — each stage locally grows its DoP when its input queue
///             exceeds a threshold (open loop, no global budget view).
///  * TB/TBF — Throughput Balance (with Fusion): assigns each parallel
///             task a DoP proportional to its measured per-iteration
///             execution time under the global budget; TBF additionally
///             switches to the fused variant when stage service times are
///             imbalanced by more than the fusion threshold.
///  * FDP    — Feedback-Directed Pipelining: closed loop; repeatedly
///             grants one more thread to the LIMITER (slowest) stage
///             while overall throughput improves.
///  * TPC    — Throughput/Power Controller: FDP-style growth gated by a
///             power budget read from the (rate-limited) PDU sampler;
///             backs off when power overshoots.
///
/// A MechanismDriver samples Decima windows periodically, invokes the
/// mechanism, and applies configuration changes through the RegionRunner.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MECHANISMS_PIPEMECHANISMS_H
#define PARCAE_MECHANISMS_PIPEMECHANISMS_H

#include "decima/Monitor.h"
#include "morta/RegionRunner.h"
#include "sim/Power.h"

#include <optional>
#include <vector>

namespace parcae::rt {

/// What a mechanism sees at each decision point.
struct PipeMechView {
  sim::SimTime Now = 0;
  unsigned MaxThreads = 0;
  /// Region iterations per second over the last window.
  double Throughput = 0;
  /// Per task (current variant): average compute cycles per iteration
  /// over the window, and current input-queue occupancy.
  std::vector<double> ExecTime;
  std::vector<double> Load;
  const RegionConfig *Config = nullptr;
  const RegionDesc *Desc = nullptr;
  /// Last PDU power sample and the administrator's target (TPC only).
  double PowerWatts = 0;
  double PowerTargetWatts = 0;
};

/// Decides pipeline configurations from windowed observations.
class PipeMechanism {
public:
  virtual ~PipeMechanism();
  virtual const char *name() const = 0;
  virtual std::optional<RegionConfig> decide(const PipeMechView &V) = 0;
};

/// SEDA (30 LoC in the paper): local queue-threshold growth.
class SedaMechanism : public PipeMechanism {
public:
  SedaMechanism(double QueueThreshold = 8, unsigned MaxPerStage = 24)
      : QueueThreshold(QueueThreshold), MaxPerStage(MaxPerStage) {}
  const char *name() const override { return "SEDA"; }
  std::optional<RegionConfig> decide(const PipeMechView &V) override;

private:
  double QueueThreshold;
  unsigned MaxPerStage;
};

/// TB / TBF (89 LoC in the paper): global proportional assignment, with
/// optional task fusion.
class TbfMechanism : public PipeMechanism {
public:
  explicit TbfMechanism(bool EnableFusion, double FusionImbalance = 0.5)
      : EnableFusion(EnableFusion), FusionImbalance(FusionImbalance) {}
  const char *name() const override { return EnableFusion ? "TBF" : "TB"; }
  std::optional<RegionConfig> decide(const PipeMechView &V) override;

private:
  bool EnableFusion;
  double FusionImbalance;
  bool Fused = false;
};

/// FDP (94 LoC in the paper): grow the LIMITER while throughput improves.
class FdpMechanism : public PipeMechanism {
public:
  const char *name() const override { return "FDP"; }
  std::optional<RegionConfig> decide(const PipeMechView &V) override;

private:
  double LastThroughput = 0;
  RegionConfig LastConfig;
  bool Probing = false;
  bool Stable = false;
  int ProbedTask = -1;
  std::vector<unsigned> Exhausted; ///< tasks whose last probe failed
};

/// TPC (154 LoC in the paper): maximize throughput under a power budget.
class TpcMechanism : public PipeMechanism {
public:
  const char *name() const override { return "TPC"; }
  std::optional<RegionConfig> decide(const PipeMechView &V) override;

private:
  double LastThroughput = 0;
  RegionConfig LastConfig;
  RegionConfig BestWithinBudget;
  double BestThroughput = 0;
  bool Probing = false;
  bool Stable = false;
  int ProbedTask = -1;
  unsigned StableWindows = 0; ///< windows spent latched stable
  std::vector<unsigned> Exhausted; ///< tasks whose last probe failed
};

/// Periodically samples the region and applies mechanism decisions.
class MechanismDriver {
public:
  MechanismDriver(RegionRunner &Runner, PipeMechanism &Mech,
                  unsigned MaxThreads,
                  sim::SimTime Period = 200 * sim::MSec,
                  std::uint64_t MinWindowIters = 24);

  /// Launches the region under \p Initial and starts the decision loop.
  void start(RegionConfig Initial);

  /// Supplies power readings for TPC.
  void setPowerSource(const sim::PduSampler *Pdu, double TargetWatts) {
    this->Pdu = Pdu;
    PowerTarget = TargetWatts;
  }

  unsigned decisions() const { return Decisions; }

  /// Timeline of (time, throughput, power) per window, for the Figure
  /// 8.6 / 8.7 plots.
  struct Sample {
    sim::SimTime At;
    double Throughput;
    double PowerWatts;
    RegionConfig Config;
  };
  const std::vector<Sample> &timeline() const { return Timeline; }

private:
  void tick();

  RegionRunner &Runner;
  PipeMechanism &Mech;
  unsigned MaxThreads;
  sim::SimTime Period;
  std::uint64_t MinWindowIters;
  const sim::PduSampler *Pdu = nullptr;
  double PowerTarget = 0;
  ThroughputWindow Window;
  std::vector<TaskWindow> TaskWindows;
  unsigned Decisions = 0;
  bool SettleSkip = false;
  std::vector<Sample> Timeline;
};

} // namespace parcae::rt

#endif // PARCAE_MECHANISMS_PIPEMECHANISMS_H
