//===- PipeMechanisms.cpp - Mechanisms for pipeline apps -------------------===//

#include "mechanisms/PipeMechanisms.h"

#include <algorithm>
#include <cmath>

using namespace parcae::rt;
namespace sim = parcae::sim;

PipeMechanism::~PipeMechanism() = default;

namespace {

/// Parallel-task indices of the current variant.
std::vector<unsigned> parallelTasks(const PipeMechView &V) {
  std::vector<unsigned> Par;
  for (unsigned T = 0; T < V.Desc->numTasks(); ++T)
    if (V.Desc->Tasks[T].isParallel())
      Par.push_back(T);
  return Par;
}

/// The LIMITER: the parallel task with the lowest service capacity
/// DoP / execTime (iterations per cycle the team can sustain), skipping
/// tasks in \p Exclude.
int limiterTask(const PipeMechView &V,
                const std::vector<unsigned> &Exclude = {}) {
  int Lim = -1;
  double Worst = 0;
  for (unsigned T : parallelTasks(V)) {
    if (std::find(Exclude.begin(), Exclude.end(), T) != Exclude.end())
      continue;
    double Exec = V.ExecTime[T];
    if (Exec <= 0)
      continue;
    double Capacity = static_cast<double>(V.Config->DoP[T]) / Exec;
    if (Lim < 0 || Capacity < Worst) {
      Lim = static_cast<int>(T);
      Worst = Capacity;
    }
  }
  return Lim;
}

/// The parallel task with the most capacity slack and DoP > 1 (candidate
/// to donate a thread).
int slackestTask(const PipeMechView &V) {
  int Best = -1;
  double Most = 0;
  for (unsigned T : parallelTasks(V)) {
    if (V.Config->DoP[T] <= 1)
      continue;
    double Exec = V.ExecTime[T] > 0 ? V.ExecTime[T] : 1;
    double Capacity = static_cast<double>(V.Config->DoP[T]) / Exec;
    if (Best < 0 || Capacity > Most) {
      Best = static_cast<int>(T);
      Most = Capacity;
    }
  }
  return Best;
}

} // namespace

std::optional<RegionConfig> SedaMechanism::decide(const PipeMechView &V) {
  RegionConfig C = *V.Config;
  bool Changed = false;
  for (unsigned T : parallelTasks(V)) {
    if (V.Load[T] > QueueThreshold && C.DoP[T] < MaxPerStage) {
      ++C.DoP[T];
      Changed = true;
    }
  }
  if (!Changed)
    return {};
  return C;
}

std::optional<RegionConfig> TbfMechanism::decide(const PipeMechView &V) {
  std::vector<unsigned> Par = parallelTasks(V);
  if (Par.empty())
    return {};

  // Fusion check: service-time imbalance beyond the threshold collapses
  // the pipeline (switch to the Fused variant) — Section 6.3.2.
  if (EnableFusion && !Fused && V.Config->S == Scheme::PsDswp) {
    double MinE = 0, MaxE = 0;
    bool Have = false;
    for (unsigned T : Par) {
      if (V.ExecTime[T] <= 0)
        continue;
      if (!Have) {
        MinE = MaxE = V.ExecTime[T];
        Have = true;
        continue;
      }
      MinE = std::min(MinE, V.ExecTime[T]);
      MaxE = std::max(MaxE, V.ExecTime[T]);
    }
    if (Have && MaxE > 0 && (1.0 - MinE / MaxE) > FusionImbalance) {
      Fused = true;
      RegionConfig C;
      C.S = Scheme::Fused;
      // One thread per sequential end, the rest in the fused middle.
      C.DoP = {1, std::max(1u, V.MaxThreads - 2), 1};
      return C;
    }
  }

  // Proportional assignment: DoP_i proportional to exec time (slower
  // tasks get more threads), as in the Figure 5.9 mechanism.
  unsigned SeqCount = V.Desc->numTasks() - static_cast<unsigned>(Par.size());
  unsigned Avail = V.MaxThreads > SeqCount ? V.MaxThreads - SeqCount
                                           : static_cast<unsigned>(Par.size());
  double Total = 0;
  for (unsigned T : Par)
    Total += std::max(V.ExecTime[T], 1.0);
  RegionConfig C = *V.Config;
  unsigned Assigned = 0;
  for (unsigned T : Par) {
    double Share = std::max(V.ExecTime[T], 1.0) / Total;
    unsigned D = std::max(
        1u, static_cast<unsigned>(Share * static_cast<double>(Avail) + 0.5));
    C.DoP[T] = D;
    Assigned += D;
  }
  // Trim overshoot from the largest assignments.
  while (Assigned > Avail) {
    unsigned *MaxD = nullptr;
    for (unsigned T : Par)
      if (C.DoP[T] > 1 && (!MaxD || C.DoP[T] > *MaxD))
        MaxD = &C.DoP[T];
    if (!MaxD)
      break;
    --*MaxD;
    --Assigned;
  }
  if (C == *V.Config)
    return {};
  return C;
}

std::optional<RegionConfig> FdpMechanism::decide(const PipeMechView &V) {
  if (Stable)
    return {};
  if (Probing) {
    Probing = false;
    if (V.Throughput > LastThroughput * 1.02) {
      // The grant helped: lock it in and retry every task again.
      LastThroughput = V.Throughput;
      LastConfig = *V.Config;
      Exhausted.clear();
    } else {
      // No improvement: revert and move on to the next-slowest task.
      if (ProbedTask >= 0)
        Exhausted.push_back(static_cast<unsigned>(ProbedTask));
      if (!(LastConfig == *V.Config))
        return LastConfig;
    }
  } else {
    LastThroughput = V.Throughput;
    LastConfig = *V.Config;
  }

  int Lim = limiterTask(V, Exhausted);
  if (Lim < 0) {
    Stable = true; // every stage's probe failed
    return {};
  }
  RegionConfig C = *V.Config;
  if (C.totalThreads() < V.MaxThreads) {
    ++C.DoP[static_cast<unsigned>(Lim)];
  } else {
    // No free threads: take one from the most slack task (the paper's
    // FDP time-multiplexes the two fastest tasks on one thread).
    int Donor = slackestTask(V);
    if (Donor < 0 || Donor == Lim) {
      Stable = true;
      return {};
    }
    --C.DoP[static_cast<unsigned>(Donor)];
    ++C.DoP[static_cast<unsigned>(Lim)];
  }
  ProbedTask = Lim;
  Probing = true;
  return C;
}

std::optional<RegionConfig> TpcMechanism::decide(const PipeMechView &V) {
  bool OverBudget =
      V.PowerTargetWatts > 0 && V.PowerWatts > V.PowerTargetWatts;

  if (OverBudget) {
    // Back off: drop one thread from the most slack task; remember the
    // best in-budget configuration seen so far.
    Stable = false;
    Probing = false;
    RegionConfig C = *V.Config;
    int Donor = slackestTask(V);
    if (Donor >= 0 && C.DoP[static_cast<unsigned>(Donor)] > 1) {
      --C.DoP[static_cast<unsigned>(Donor)];
      return C;
    }
    if (BestThroughput > 0 && !(BestWithinBudget == *V.Config))
      return BestWithinBudget;
    return {};
  }

  // Within budget: record, then keep growing the LIMITER while both the
  // throughput improves and the budget holds (closed loop on both).
  if (V.Throughput > BestThroughput) {
    BestThroughput = V.Throughput;
    BestWithinBudget = *V.Config;
  }
  if (Stable) {
    // The controller monitors continuously (Section 6.3.3): while power
    // headroom remains, periodically re-open the search — workload
    // changes or earlier noisy probes may have left throughput on the
    // table.
    if (++StableWindows >= 6 &&
        (V.PowerTargetWatts <= 0 || V.PowerWatts < V.PowerTargetWatts)) {
      Stable = false;
      StableWindows = 0;
      Exhausted.clear();
    }
    return {};
  }
  if (Probing) {
    Probing = false;
    if (V.Throughput > LastThroughput * 1.01) {
      LastThroughput = V.Throughput;
      LastConfig = *V.Config;
      Exhausted.clear();
    } else {
      if (ProbedTask >= 0)
        Exhausted.push_back(static_cast<unsigned>(ProbedTask));
      if (!(LastConfig == *V.Config))
        return LastConfig;
    }
  } else {
    LastThroughput = V.Throughput;
    LastConfig = *V.Config;
  }
  int Lim = limiterTask(V, Exhausted);
  if (Lim < 0) {
    Stable = true;
    return {};
  }
  RegionConfig C = *V.Config;
  if (C.totalThreads() >= V.MaxThreads) {
    Stable = true;
    return {};
  }
  ++C.DoP[static_cast<unsigned>(Lim)];
  ProbedTask = Lim;
  Probing = true;
  return C;
}

MechanismDriver::MechanismDriver(RegionRunner &Runner, PipeMechanism &Mech,
                                 unsigned MaxThreads, sim::SimTime Period,
                                 std::uint64_t MinWindowIters)
    : Runner(Runner), Mech(Mech), MaxThreads(MaxThreads), Period(Period),
      MinWindowIters(MinWindowIters) {}

void MechanismDriver::start(RegionConfig Initial) {
  Runner.start(std::move(Initial));
  Window.mark(Runner.totalRetired(), Runner.machine().sim().now());
  if (RegionExec *E = Runner.exec()) {
    TaskWindows.assign(E->numTasks(), TaskWindow());
    for (unsigned T = 0; T < E->numTasks(); ++T)
      TaskWindows[T].mark(*E, T, Runner.machine().sim().now());
  }
  Runner.machine().sim().schedule(Period, [this] { tick(); });
}

void MechanismDriver::tick() {
  sim::Simulator &Sim = Runner.machine().sim();
  if (Runner.completed())
    return;
  RegionExec *E = Runner.exec();
  if (!E || Runner.transitioning()) {
    Sim.schedule(Period, [this] { tick(); });
    return;
  }
  // Decision quality needs a statistically meaningful window: wait until
  // enough iterations retired (low-throughput regions get longer windows).
  if (Window.progress(Runner.totalRetired()) < MinWindowIters) {
    Sim.schedule(Period, [this] { tick(); });
    return;
  }

  PipeMechView V;
  V.Now = Sim.now();
  V.MaxThreads = MaxThreads;
  V.Throughput = Window.rate(Runner.totalRetired(), Sim.now());
  V.Config = &Runner.config();
  V.Desc = &Runner.region().variant(Runner.config().S);
  if (TaskWindows.size() != E->numTasks())
    TaskWindows.assign(E->numTasks(), TaskWindow());
  V.ExecTime.resize(E->numTasks());
  V.Load.resize(E->numTasks());
  for (unsigned T = 0; T < E->numTasks(); ++T) {
    V.ExecTime[T] = TaskWindows[T].execTime(*E, T);
    if (V.ExecTime[T] <= 0)
      V.ExecTime[T] = Decima::getExecTime(*E, T);
    V.Load[T] = E->loadOf(T);
  }
  V.PowerWatts = Pdu ? Pdu->lastSample() : 0;
  V.PowerTargetWatts = PowerTarget;

  Timeline.push_back({Sim.now(), V.Throughput, V.PowerWatts, *V.Config});

  if (SettleSkip) {
    // The window right after a reconfiguration still carries the old
    // configuration's in-flight iterations; discard it and re-anchor.
    SettleSkip = false;
  } else if (auto C = Mech.decide(V)) {
    ++Decisions;
    Runner.reconfigure(std::move(*C));
    SettleSkip = true;
  }

  // Re-anchor the windows for the next period.
  Window.mark(Runner.totalRetired(), Sim.now());
  if (RegionExec *E2 = Runner.exec())
    if (TaskWindows.size() == E2->numTasks())
      for (unsigned T = 0; T < E2->numTasks(); ++T)
        TaskWindows[T].mark(*E2, T, Sim.now());
  Sim.schedule(Period, [this] { tick(); });
}
