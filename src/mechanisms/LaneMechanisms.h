//===- LaneMechanisms.h - Mechanisms for two-level apps ---------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Minimize Response Time with N threads" mechanisms of Section
/// 6.3.1, targeting the two-level lane applications:
///
///  * Static  — a fixed <(K,DOALL),(L,...)> configuration.
///  * WQT-H   — Work Queue Threshold with Hysteresis: a two-state machine
///              toggling between a throughput-mode config (outer-only)
///              and a latency-mode config (inner DoP = dPmax) based on
///              work-queue occupancy, with Non/Noff hysteresis counted in
///              consecutive dispatched tasks.
///  * WQ-Linear — varies the inner DoP continuously:
///              dP = max(dPmin, dPmax - k*WQo), k = (dPmax-dPmin)/Qmax,
///              and gives the outer loop the remaining threads.
///
/// Each mechanism is invoked on every request dispatch with the current
/// queue occupancy, matching how the paper's mechanisms observe "N
/// consecutive tasks".
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MECHANISMS_LANEMECHANISMS_H
#define PARCAE_MECHANISMS_LANEMECHANISMS_H

#include "apps/LaneApps.h"

#include <optional>

namespace parcae::rt {

/// Decides lane configurations from work-queue observations.
class LaneMechanism {
public:
  virtual ~LaneMechanism();
  virtual const char *name() const = 0;
  /// Called at each request dispatch; returns a config change, if any.
  virtual std::optional<LaneConfig> onDispatch(double QueueLen) = 0;
  /// The configuration to start with.
  virtual LaneConfig initialConfig() const = 0;
};

/// Fixed configuration (the paper's static baselines).
class StaticLane : public LaneMechanism {
public:
  explicit StaticLane(LaneConfig C) : C(C) {}
  const char *name() const override { return "Static"; }
  std::optional<LaneConfig> onDispatch(double) override { return {}; }
  LaneConfig initialConfig() const override { return C; }

private:
  LaneConfig C;
};

/// Work Queue Threshold with Hysteresis (28 LoC in the paper).
class WqtH : public LaneMechanism {
public:
  /// \p Threshold is T; \p Non / \p Noff the hysteresis lengths;
  /// \p SeqMode / \p ParMode the two configurations toggled between.
  WqtH(double Threshold, unsigned Non, unsigned Noff, LaneConfig SeqMode,
       LaneConfig ParMode)
      : Threshold(Threshold), Non(Non), Noff(Noff), SeqMode(SeqMode),
        ParMode(ParMode) {}

  const char *name() const override { return "WQT-H"; }
  std::optional<LaneConfig> onDispatch(double QueueLen) override;
  LaneConfig initialConfig() const override { return SeqMode; }

private:
  double Threshold;
  unsigned Non, Noff;
  LaneConfig SeqMode, ParMode;
  bool InPar = false;
  unsigned Consecutive = 0;
};

/// Work Queue Linear (9 LoC in the paper).
class WqLinear : public LaneMechanism {
public:
  /// \p N total threads; \p DPmax / \p DPmin the inner DoP range; \p Qmax
  /// the queue occupancy at which the DoP bottoms out (derived from the
  /// acceptable response-time degradation).
  WqLinear(unsigned N, unsigned DPmax, unsigned DPmin, double Qmax)
      : N(N), DPmax(DPmax), DPmin(DPmin), Qmax(Qmax) {
    assert(DPmax >= DPmin && DPmin >= 1 && Qmax > 0);
  }

  const char *name() const override { return "WQ-Linear"; }
  std::optional<LaneConfig> onDispatch(double QueueLen) override;
  LaneConfig initialConfig() const override { return configFor(0.0); }

private:
  LaneConfig configFor(double QueueLen) const;

  unsigned N, DPmax, DPmin;
  double Qmax;
  LaneConfig Last;
  bool Seeded = false;
};

/// Drives a LaneServerApp with a mechanism: subscribes to dispatch events
/// and applies configuration changes.
class LaneMechanismDriver {
public:
  LaneMechanismDriver(LaneServerApp &App, LaneMechanism &Mech);
  void start();
  unsigned reconfigurations() const { return Reconfigs; }

private:
  LaneServerApp &App;
  LaneMechanism &Mech;
  unsigned Reconfigs = 0;
};

} // namespace parcae::rt

#endif // PARCAE_MECHANISMS_LANEMECHANISMS_H
