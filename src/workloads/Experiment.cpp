//===- Experiment.cpp - Reusable experiment harnesses ----------------------===//

#include "workloads/Experiment.h"

using namespace parcae::rt;
namespace sim = parcae::sim;

double parcae::rt::laneMaxThroughput(const LaneAppParams &P, unsigned Cores) {
  return static_cast<double>(Cores) / sim::toSeconds(P.MeanWork);
}

ServerRunResult parcae::rt::runLaneExperiment(const LaneAppParams &P,
                                              LaneMechanism &Mech,
                                              unsigned Cores,
                                              double LoadFactor,
                                              std::uint64_t Requests,
                                              std::uint64_t Seed) {
  sim::Simulator Sim;
  sim::Machine M(Sim, Cores);
  RuntimeCosts Costs;
  QueueWorkSource Queue;
  LaneServerApp App(M, Costs, P, Queue);
  LaneMechanismDriver Driver(App, Mech);

  double Arrivals = LoadFactor * laneMaxThroughput(P, Cores);
  double Jitter = P.WorkJitter;
  sim::SimTime MeanWork = P.MeanWork;
  PoissonLoadGen Gen(Sim, Queue, Arrivals, Requests, Seed,
                     [MeanWork, Jitter](Request &R, Rng &Rand) {
                       R.Work = static_cast<sim::SimTime>(Rand.nextNormal(
                           static_cast<double>(MeanWork),
                           Jitter * static_cast<double>(MeanWork)));
                       R.UnitsRemaining = 1;
                     });

  Driver.start();
  Gen.start();
  Sim.run();

  ServerRunResult Out;
  Out.Resp = ResponseStats::collect(Gen.requests());
  Out.MeanResponseSec = Out.Resp.meanResponseSec();
  Out.Makespan = Sim.now();
  Out.ThroughputPerSec =
      static_cast<double>(Out.Resp.Completed) / sim::toSeconds(Out.Makespan);
  Out.Reconfigurations = Driver.reconfigurations();
  return Out;
}

PipelineRunResult parcae::rt::runPipelineExperiment(
    const std::function<PipelineApp()> &Make, const PipelineRunSpec &Spec) {
  sim::Simulator Sim;
  sim::Machine M(Sim, Spec.Cores, Spec.MC);
  RuntimeCosts Costs;
  sim::EnergyMeter Meter(M, Spec.Power);
  QueueWorkSource Queue;
  PipelineApp App = Make();
  RegionRunner Runner(M, Costs, App.Region, Queue);

  PoissonLoadGen Gen(Sim, Queue, Spec.ArrivalsPerSec, Spec.Requests,
                     Spec.Seed, [](Request &R, Rng &) {
                       R.Work = 0;
                       R.UnitsRemaining = 1;
                     });

  std::unique_ptr<MechanismDriver> Driver;
  std::unique_ptr<sim::PduSampler> Pdu;
  if (Spec.Mech) {
    Driver = std::make_unique<MechanismDriver>(Runner, *Spec.Mech,
                                               Spec.Cores, Spec.MechPeriod);
    if (Spec.PowerTargetWatts > 0) {
      Pdu = std::make_unique<sim::PduSampler>(Sim, Meter);
      Driver->setPowerSource(Pdu.get(), Spec.PowerTargetWatts);
    }
    Driver->start(Spec.Initial);
  } else {
    Runner.start(Spec.Initial);
  }
  // Stop periodic samplers once the region completes or the event loop
  // would spin on them forever.
  Runner.OnComplete = [&Pdu] {
    if (Pdu)
      Pdu->stop();
  };
  Gen.start();

  if (Spec.HorizonSec > 0)
    Sim.runUntil(Spec.HorizonSec * sim::Sec);
  else
    Sim.run();
  if (Pdu)
    Pdu->stop();

  PipelineRunResult Out;
  Out.Server.Resp = ResponseStats::collect(Gen.requests());
  Out.Server.MeanResponseSec = Out.Server.Resp.meanResponseSec();
  Out.Server.Makespan = Sim.now();
  Out.Server.ThroughputPerSec = static_cast<double>(Out.Server.Resp.Completed) /
                                sim::toSeconds(Out.Server.Makespan);
  Out.Server.Reconfigurations = Driver ? Driver->decisions() : 0;
  if (Driver)
    Out.Timeline = Driver->timeline();
  Out.EnergyJoules = Meter.joules();
  Out.MeanPowerWatts = Out.EnergyJoules / sim::toSeconds(Sim.now());
  return Out;
}
