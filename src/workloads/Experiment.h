//===- Experiment.h - Reusable experiment harnesses -------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end experiment drivers shared by the unit tests and the
/// table/figure benchmarks: the Chapter 8 methodology (Poisson arrivals
/// at a load factor relative to the platform's maximum sustainable
/// throughput, M = 500 requests, mean response time over completed
/// requests) packaged as functions.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_WORKLOADS_EXPERIMENT_H
#define PARCAE_WORKLOADS_EXPERIMENT_H

#include "apps/LaneApps.h"
#include "apps/PipelineApps.h"
#include "mechanisms/LaneMechanisms.h"
#include "mechanisms/PipeMechanisms.h"
#include "sim/Power.h"
#include "workloads/LoadGen.h"

#include <functional>
#include <memory>

namespace parcae::rt {

/// Result of one server run.
struct ServerRunResult {
  ResponseStats Resp;
  double MeanResponseSec = 0;
  double ThroughputPerSec = 0; ///< completed requests / makespan
  sim::SimTime Makespan = 0;
  unsigned Reconfigurations = 0;
};

/// Maximum sustainable throughput of a lane app on \p Cores cores: the
/// paper's M/T with every request processed sequentially, all lanes busy.
double laneMaxThroughput(const LaneAppParams &P, unsigned Cores);

/// Runs a lane app under \p Mech at \p LoadFactor (fraction of the
/// maximum sustainable throughput) with \p Requests Poisson arrivals.
ServerRunResult runLaneExperiment(const LaneAppParams &P, LaneMechanism &Mech,
                                  unsigned Cores, double LoadFactor,
                                  std::uint64_t Requests = 500,
                                  std::uint64_t Seed = 1);

/// Configuration for a pipeline-app run.
struct PipelineRunSpec {
  unsigned Cores = 24;
  double ArrivalsPerSec = 1e9; ///< effectively saturated by default
  std::uint64_t Requests = 2000;
  std::uint64_t Seed = 1;
  /// Optional mechanism; when null the run is static under Initial.
  PipeMechanism *Mech = nullptr;
  RegionConfig Initial;
  sim::SimTime MechPeriod = 200 * sim::MSec;
  /// Optional power budget for TPC (watts); 0 disables power modelling.
  double PowerTargetWatts = 0;
  sim::PowerModel Power;
  /// Scheduler/cache costs of the machine (per-app cache-refill cost).
  sim::MachineConfig MC;
  sim::SimTime HorizonSec = 0; ///< 0: run to completion
};

/// Result of a pipeline-app run.
struct PipelineRunResult {
  ServerRunResult Server;
  std::vector<MechanismDriver::Sample> Timeline;
  double MeanPowerWatts = 0;
  double EnergyJoules = 0;
};

/// Runs a pipeline app (builds a fresh region via \p Make each call).
PipelineRunResult
runPipelineExperiment(const std::function<PipelineApp()> &Make,
                      const PipelineRunSpec &Spec);

} // namespace parcae::rt

#endif // PARCAE_WORKLOADS_EXPERIMENT_H
