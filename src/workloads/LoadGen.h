//===- LoadGen.h - Open-loop load generation and response stats -*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The load generator of Chapter 8: "the arrival of tasks was simulated
/// using a task queuing thread that enqueues tasks to a work queue
/// according to a Poisson distribution. The average arrival rate
/// determines the load factor on the system. A load factor of 1.0
/// corresponds to an average arrival rate equal to the maximum throughput
/// sustainable by the system." This file provides that Poisson generator,
/// the per-request record response times are measured from, and the
/// response-time aggregation the Figures 8.1-8.5 harnesses print.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_WORKLOADS_LOADGEN_H
#define PARCAE_WORKLOADS_LOADGEN_H

#include "core/Types.h"
#include "core/WorkSource.h"
#include "sim/Simulator.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace parcae::rt {

/// One user request (a video to transcode, a query to answer, ...).
struct Request {
  std::uint64_t Id = 0;
  sim::SimTime EnqueueTime = 0;
  sim::SimTime CompleteTime = 0;
  /// Application-specific work size (e.g. total transcode cycles).
  sim::SimTime Work = 0;
  /// Inner iterations (frames / blocks / tiles) left to finish; the tail
  /// stage decrements it and stamps CompleteTime at zero.
  std::uint64_t UnitsRemaining = 0;

  bool completed() const { return CompleteTime != 0; }
  sim::SimTime responseTime() const {
    assert(completed() && "request not finished");
    return CompleteTime - EnqueueTime;
  }
};

/// Pushes \p Count requests into a QueueWorkSource with exponentially
/// distributed inter-arrival times (a Poisson arrival process), then
/// closes the queue.
class PoissonLoadGen {
public:
  /// \p MakeWork assigns per-request work (may randomize); receives the
  /// request being created.
  PoissonLoadGen(sim::Simulator &Sim, QueueWorkSource &Queue,
                 double ArrivalsPerSec, std::uint64_t Count,
                 std::uint64_t Seed,
                 std::function<void(Request &, Rng &)> MakeWork);

  /// Starts the arrival process.
  void start();

  const std::vector<std::shared_ptr<Request>> &requests() const {
    return Requests;
  }
  std::uint64_t generated() const { return Generated; }
  std::uint64_t dropped() const { return Dropped; }

private:
  void arrive();

  sim::Simulator &Sim;
  QueueWorkSource &Queue;
  double MeanInterArrivalSec;
  std::uint64_t Count;
  Rng R;
  std::function<void(Request &, Rng &)> MakeWork;
  std::vector<std::shared_ptr<Request>> Requests;
  std::uint64_t Generated = 0;
  std::uint64_t Dropped = 0;
};

/// Aggregates response times over a set of requests.
struct ResponseStats {
  std::uint64_t Completed = 0;
  std::uint64_t Pending = 0;
  SampleSet ResponseSec;

  static ResponseStats
  collect(const std::vector<std::shared_ptr<Request>> &Requests);

  double meanResponseSec() const { return ResponseSec.mean(); }
  double p95ResponseSec() const { return ResponseSec.percentile(95); }
};

} // namespace parcae::rt

#endif // PARCAE_WORKLOADS_LOADGEN_H
