//===- LoadGen.cpp - Open-loop load generation and response stats ----------===//

#include "workloads/LoadGen.h"

using namespace parcae::rt;
namespace sim = parcae::sim;

PoissonLoadGen::PoissonLoadGen(sim::Simulator &Sim, QueueWorkSource &Queue,
                               double ArrivalsPerSec, std::uint64_t Count,
                               std::uint64_t Seed,
                               std::function<void(Request &, Rng &)> MakeWork)
    : Sim(Sim), Queue(Queue), MeanInterArrivalSec(1.0 / ArrivalsPerSec),
      Count(Count), R(Seed), MakeWork(std::move(MakeWork)) {
  assert(ArrivalsPerSec > 0 && "arrival rate must be positive");
  assert(Count > 0 && "need at least one request");
  Requests.reserve(Count);
}

void PoissonLoadGen::start() {
  Sim.schedule(sim::fromSeconds(R.nextExponential(MeanInterArrivalSec)),
               [this] { arrive(); });
}

void PoissonLoadGen::arrive() {
  auto Req = std::make_shared<Request>();
  Req->Id = Generated;
  Req->EnqueueTime = Sim.now();
  if (MakeWork)
    MakeWork(*Req, R);
  Requests.push_back(Req);

  Token T;
  T.Value = static_cast<std::int64_t>(Req->Id);
  T.Work = Req->Work;
  T.Ref = Req;
  if (!Queue.push(std::move(T)))
    ++Dropped;

  if (++Generated >= Count) {
    Queue.close();
    return;
  }
  Sim.schedule(sim::fromSeconds(R.nextExponential(MeanInterArrivalSec)),
               [this] { arrive(); });
}

ResponseStats ResponseStats::collect(
    const std::vector<std::shared_ptr<Request>> &Requests) {
  ResponseStats S;
  for (const auto &R : Requests) {
    if (!R->completed()) {
      ++S.Pending;
      continue;
    }
    ++S.Completed;
    S.ResponseSec.add(sim::toSeconds(R->responseTime()));
  }
  return S;
}
