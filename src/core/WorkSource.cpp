//===- WorkSource.cpp - Where a region's iterations come from --------------===//

#include "core/WorkSource.h"

#include <algorithm>

using namespace parcae::rt;

WorkSource::~WorkSource() = default;

WorkSource::Pull WorkSource::tryPullChunk(std::uint64_t Max,
                                          std::vector<Token> &Out) {
  assert(Max > 0 && "chunk claims must request at least one item");
  Token T;
  Pull First = tryPull(T);
  if (First != Pull::Got)
    return First;
  Out.push_back(T);
  for (std::uint64_t I = 1; I < Max; ++I) {
    // A partial chunk is fine: stopping at the first Wait/End keeps the
    // claim non-blocking, and End is re-derived on the next claim.
    if (tryPull(T) != Pull::Got)
      break;
    Out.push_back(T);
  }
  return Pull::Got;
}

void QueueWorkSource::evictHistory() {
  while (History.size() > HistoryCap) {
    History.pop_front();
    ++HistoryEvictions;
#if PARCAE_TELEMETRY_ENABLED
    if (telemetry::TraceRecorder *Tel = telemetry::recorder())
      Tel->metrics().counter("work_source.history_evictions").add();
#endif
  }
}

WorkSource::Pull QueueWorkSource::tryPull(Token &Out) {
  if (!Items.empty()) {
    Out = Items.front();
    Items.pop_front();
    History.push_back(Out);
    evictHistory();
    return Pull::Got;
  }
  return Closed ? Pull::End : Pull::Wait;
}

WorkSource::Pull QueueWorkSource::tryPullChunk(std::uint64_t Max,
                                               std::vector<Token> &Out) {
  assert(Max > 0 && "chunk claims must request at least one item");
  if (Items.empty())
    return Closed ? Pull::End : Pull::Wait;
  std::uint64_t N = std::min<std::uint64_t>(Max, Items.size());
  for (std::uint64_t I = 0; I < N; ++I) {
    Out.push_back(Items.front());
    History.push_back(Items.front());
    Items.pop_front();
  }
  evictHistory();
  return Pull::Got;
}

bool QueueWorkSource::rewind(std::uint64_t Count) {
  if (Count > History.size())
    return false;
  for (std::uint64_t I = 0; I < Count; ++I) {
    Items.push_front(History.back());
    History.pop_back();
  }
  if (Count > 0)
    Ready.notifyAll();
  return true;
}

bool QueueWorkSource::push(Token Item) {
  // Closed queues reject instead of asserting: in release builds the old
  // assert vanished and a late producer could slip items past the
  // end-of-stream consumers had already observed.
  if (Closed || Items.size() >= Capacity)
    return false;
  Items.push_back(std::move(Item));
  ++Accepted;
  // One item satisfies one head-worker claim; waking the whole herd only
  // makes the losers re-poll and re-block.
  Ready.notifyOne();
  return true;
}

void QueueWorkSource::close() {
  Closed = true;
  Ready.notifyAll();
}

bool QueueWorkSource::saveState(WorkSourceState &Out) const {
  Out = WorkSourceState{};
  Out.K = WorkSourceState::Kind::Queue;
  Out.Total = Accepted;
  Out.Cursor = Accepted - Items.size(); // items already pulled
  Out.Pending.assign(Items.begin(), Items.end());
  Out.Closed = Closed;
  return true;
}

bool QueueWorkSource::restoreState(const WorkSourceState &S) {
  if (S.K != WorkSourceState::Kind::Queue || Accepted != 0)
    return false;
  Items.assign(S.Pending.begin(), S.Pending.end());
  Accepted = S.Total;
  Closed = S.Closed;
  History.clear();
  if (!Items.empty() || Closed)
    Ready.notifyAll();
  return true;
}

WorkSource::Pull CountedWorkSource::tryPull(Token &Out) {
  if (Next >= N)
    return Pull::End;
  Out = Token{};
  Out.Value = static_cast<std::int64_t>(Next);
  ++Next;
  return Pull::Got;
}

WorkSource::Pull CountedWorkSource::tryPullChunk(std::uint64_t Max,
                                                 std::vector<Token> &Out) {
  assert(Max > 0 && "chunk claims must request at least one item");
  if (Next >= N)
    return Pull::End;
  std::uint64_t Take = std::min<std::uint64_t>(Max, N - Next);
  for (std::uint64_t I = 0; I < Take; ++I) {
    Token T{};
    T.Value = static_cast<std::int64_t>(Next + I);
    Out.push_back(T);
  }
  Next += Take;
  return Pull::Got;
}
