//===- WorkSource.cpp - Where a region's iterations come from --------------===//

#include "core/WorkSource.h"

using namespace parcae::rt;

WorkSource::~WorkSource() = default;

WorkSource::Pull QueueWorkSource::tryPull(Token &Out) {
  if (!Items.empty()) {
    Out = std::move(Items.front());
    Items.pop_front();
    return Pull::Got;
  }
  return Closed ? Pull::End : Pull::Wait;
}

bool QueueWorkSource::push(Token Item) {
  assert(!Closed && "pushing into a closed work queue");
  if (Items.size() >= Capacity)
    return false;
  Items.push_back(std::move(Item));
  ++Accepted;
  Ready.notifyAll();
  return true;
}

void QueueWorkSource::close() {
  Closed = true;
  Ready.notifyAll();
}

WorkSource::Pull CountedWorkSource::tryPull(Token &Out) {
  if (Next >= N)
    return Pull::End;
  Out = Token{};
  Out.Value = static_cast<std::int64_t>(Next);
  ++Next;
  return Pull::Got;
}
