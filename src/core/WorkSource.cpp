//===- WorkSource.cpp - Where a region's iterations come from --------------===//

#include "core/WorkSource.h"

using namespace parcae::rt;

WorkSource::~WorkSource() = default;

WorkSource::Pull QueueWorkSource::tryPull(Token &Out) {
  if (!Items.empty()) {
    Out = Items.front();
    Items.pop_front();
    History.push_back(Out);
    if (History.size() > HistoryCap)
      History.pop_front();
    return Pull::Got;
  }
  return Closed ? Pull::End : Pull::Wait;
}

bool QueueWorkSource::rewind(std::uint64_t Count) {
  if (Count > History.size())
    return false;
  for (std::uint64_t I = 0; I < Count; ++I) {
    Items.push_front(History.back());
    History.pop_back();
  }
  if (Count > 0)
    Ready.notifyAll();
  return true;
}

bool QueueWorkSource::push(Token Item) {
  assert(!Closed && "pushing into a closed work queue");
  if (Items.size() >= Capacity)
    return false;
  Items.push_back(std::move(Item));
  ++Accepted;
  Ready.notifyAll();
  return true;
}

void QueueWorkSource::close() {
  Closed = true;
  Ready.notifyAll();
}

WorkSource::Pull CountedWorkSource::tryPull(Token &Out) {
  if (Next >= N)
    return Pull::End;
  Out = Token{};
  Out.Value = static_cast<std::int64_t>(Next);
  ++Next;
  return Pull::Got;
}
