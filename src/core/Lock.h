//===- Lock.h - Simulated mutual exclusion ----------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock for DOANY critical sections (Section 4.3.1) and unprivatized
/// reductions. Poll-style like everything else in the simulator: a failed
/// tryAcquire() blocks the thread on released() and re-tries on wakeup.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_LOCK_H
#define PARCAE_CORE_LOCK_H

#include "sim/Machine.h"

namespace parcae::rt {

/// A simulated mutex.
class SimLock {
public:
  bool tryAcquire() {
    if (Held)
      return false;
    Held = true;
    return true;
  }

  void release() {
    assert(Held && "releasing an unheld lock");
    Held = false;
    Released.notifyAll();
  }

  bool held() const { return Held; }

  /// Signalled on every release.
  sim::Waitable &released() { return Released; }

private:
  bool Held = false;
  sim::Waitable Released;
};

} // namespace parcae::rt

#endif // PARCAE_CORE_LOCK_H
