//===- Chunking.h - Adaptive iteration-chunk sizing -------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chunk-size policy behind chunked claiming: instead of paying the
/// claim + Decima hook + get_status() + channel-send tax on every
/// iteration, workers claim K iterations per interaction and pay the
/// fixed costs once per chunk, making per-iteration overhead O(1/K).
/// Section 8.3.6 argues these overheads are small relative to iteration
/// work; chunking is how the runtime makes that hold even for
/// fine-grained loops.
///
/// K is tuned online, DCAFE-style: grow K while the measured fixed
/// overhead is a large fraction of per-iteration work, shrink it when
/// channel queues deepen (load imbalance: big chunks route long runs of
/// iterations to one consumer slot). Around a pause/drain K degrades to
/// the minimum so a reconfiguration never waits on a worker draining a
/// deep chunk — reconfigure latency (Fig. 8.6) and the commit-frontier
/// exactly-once guarantees are preserved at chunk size 1 semantics.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_CHUNKING_H
#define PARCAE_CORE_CHUNKING_H

#include "sim/Time.h"

#include <algorithm>
#include <cstdint>

namespace parcae::rt {

/// Online chunk-size controller. One instance per region, owned by the
/// RegionRunner so the learned K survives reconfigurations.
class ChunkPolicy {
public:
  struct Params {
    std::uint64_t MinK = 1;
    /// Cap keeps rewind windows and per-chunk drain obligations small.
    std::uint64_t MaxK = 32;
    /// Target: fixed overhead at most this fraction of chunk work.
    double TargetOverheadFrac = 0.05;
    /// Shrink K when any channel's occupancy exceeds this fraction of
    /// its admission window (queue-delay growth = imbalance signal).
    double PressureShrinkAbove = 0.5;
  };

  ChunkPolicy() = default;
  explicit ChunkPolicy(Params P) : P(P) {}

  /// Chunk size workers should claim right now.
  std::uint64_t current() const { return Pinned ? PinnedK : K; }

  /// Fixes K (benchmark A/B runs); retune/degrade become no-ops.
  void pin(std::uint64_t Fixed) {
    Pinned = true;
    PinnedK = std::max<std::uint64_t>(Fixed, 1);
  }
  void unpin() { Pinned = false; }
  bool pinned() const { return Pinned; }

  /// Pause/drain entry point: collapse to the minimum so the drain
  /// obligation is one iteration deep per worker. The pre-collapse K is
  /// remembered (lastLearned) so recovery and checkpoint/restore can
  /// re-seed the policy instead of re-learning from 1.
  void degradeForPause() {
    if (Pinned)
      return;
    if (K != P.MinK)
      LastLearned = K;
    K = P.MinK;
  }

  /// Re-seeds K (clamped to [MinK, MaxK]); a no-op while pinned. Used
  /// after recovery and on checkpoint restore so a region resumes with
  /// the chunk size it had already learned.
  void seed(std::uint64_t NewK) {
    if (Pinned)
      return;
    K = std::clamp(NewK, P.MinK, P.MaxK);
    if (K != P.MinK)
      LastLearned = K;
  }

  /// Last K the policy learned before a degradeForPause collapsed it
  /// (MinK until anything beyond the minimum was ever learned).
  std::uint64_t lastLearned() const { return LastLearned; }

  /// Forgets the learned K. The runner calls this when a new execution
  /// starts under a scheme with no recorded K, so a value learned under
  /// a *different* scheme is never misattributed to this one.
  void forgetLearned() { LastLearned = P.MinK; }

  /// One tuning step from fresh measurements:
  ///  \p FixedOverhead  cycles of per-claim fixed cost (hooks, status
  ///                    query, channel send setup);
  ///  \p ExecPerIter    cycles of useful work per iteration (the
  ///                    bottleneck task's mean);
  ///  \p Pressure       max channel occupancy / admission window in [0,1].
  void retune(sim::SimTime FixedOverhead, sim::SimTime ExecPerIter,
              double Pressure) {
    if (Pinned)
      return;
    if (Pressure > P.PressureShrinkAbove) {
      K = std::max(P.MinK, K / 2);
      return;
    }
    if (ExecPerIter <= 0)
      return;
    // Overhead fraction at chunk size k is Fixed / (k * ExecPerIter);
    // the smallest power of two meeting the target is ideal — powers of
    // two keep chunk boundaries stable as K drifts.
    double Ideal = static_cast<double>(FixedOverhead) /
                   (P.TargetOverheadFrac * static_cast<double>(ExecPerIter));
    std::uint64_t Want = 1;
    while (static_cast<double>(Want) < Ideal && Want < P.MaxK)
      Want <<= 1;
    K = std::clamp(Want, P.MinK, P.MaxK);
  }

  const Params &params() const { return P; }

private:
  Params P;
  std::uint64_t K = 1;
  std::uint64_t LastLearned = 1;
  bool Pinned = false;
  std::uint64_t PinnedK = 1;
};

} // namespace parcae::rt

#endif // PARCAE_CORE_CHUNKING_H
