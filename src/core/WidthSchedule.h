//===- WidthSchedule.h - Epoch-based DoP history of a task ------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A task's degree-of-parallelism history as a list of epochs. MTCG routes
/// the value of iteration i to channel (i mod p) where p is the consumer
/// task's DoP (Section 4.5.3). When Morta changes p from m to n at master
/// iteration I, correctness demands that iterations before I keep routing
/// mod m and iterations from I on route mod n — this is exactly the
/// iteration-count handoff of the optimized barrier protocol (Section
/// 7.2.2, Figure 7.5). The WidthSchedule records those (start, width)
/// epochs and answers the routing queries both producers (slotOf) and
/// consumers (firstSeqFor / nextSeqFor) need.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_WIDTHSCHEDULE_H
#define PARCAE_CORE_WIDTHSCHEDULE_H

#include "core/Types.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace parcae::rt {

/// Piecewise-constant map from iteration index to task width (DoP).
class WidthSchedule {
public:
  explicit WidthSchedule(unsigned InitialWidth = 1) {
    assert(InitialWidth > 0 && "width must be positive");
    Epochs.push_back({0, InitialWidth});
  }

  /// The width in effect for iteration \p Seq.
  unsigned widthAt(std::uint64_t Seq) const {
    return epochFor(Seq).Width;
  }

  /// The thread slot that owns iteration \p Seq: (Seq mod width).
  unsigned slotOf(std::uint64_t Seq) const {
    return static_cast<unsigned>(Seq % widthAt(Seq));
  }

  /// Appends an epoch: iterations >= \p Start execute with \p Width slots.
  /// \p Start must be at least the last epoch's start.
  void append(std::uint64_t Start, unsigned Width);

  /// Smallest iteration >= \p From owned by \p Slot, or NoSeq if the slot
  /// never runs again (e.g. the slot index exceeds all future widths).
  std::uint64_t firstSeqFor(unsigned Slot, std::uint64_t From) const;

  /// Smallest iteration > \p After owned by \p Slot.
  std::uint64_t nextSeqFor(unsigned Slot, std::uint64_t After) const {
    assert(After != NoSeq && "no iteration after NoSeq");
    return firstSeqFor(Slot, After + 1);
  }

  /// Width of the most recent epoch.
  unsigned currentWidth() const { return Epochs.back().Width; }

  /// Start of the most recent epoch.
  std::uint64_t currentEpochStart() const { return Epochs.back().Start; }

  std::size_t numEpochs() const { return Epochs.size(); }

private:
  struct Epoch {
    std::uint64_t Start;
    unsigned Width;
  };

  const Epoch &epochFor(std::uint64_t Seq) const;

  std::vector<Epoch> Epochs;
};

} // namespace parcae::rt

#endif // PARCAE_CORE_WIDTHSCHEDULE_H
