//===- Region.h - Parallel regions and their configurations -----*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A RegionDesc is one parallelization of a loop: an ordered list of tasks
/// plus the links between them (the ParDescriptor of Section 5.1.1, or the
/// output of one Nona parallelizer). A FlexibleRegion groups the variants
/// Nona exposes for one loop — SEQ, DOANY, PS-DSWP (Section 3.2) — among
/// which Morta chooses at run time. A RegionConfig names a variant and a
/// DoP vector: exactly the paper's parallelism configuration C = (S, D).
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_REGION_H
#define PARCAE_CORE_REGION_H

#include "core/Task.h"
#include "core/Types.h"

#include <cassert>
#include <string>
#include <vector>

namespace parcae::rt {

/// A directed dependence between two tasks of a region, realized as a
/// point-to-point channel set at run time.
struct LinkDesc {
  unsigned From = 0;
  unsigned To = 0;
};

/// One parallelization scheme of a region.
struct RegionDesc {
  std::string Name;
  Scheme S = Scheme::Seq;
  /// Tasks in pipeline (topological) order; Tasks[0] is the head/master.
  std::vector<Task> Tasks;
  /// Links; for every link From < To must hold (stages form a pipeline).
  std::vector<LinkDesc> Links;

  unsigned numTasks() const { return static_cast<unsigned>(Tasks.size()); }

  /// Verifies structural sanity (asserts on violation).
  void verify() const {
    assert(!Tasks.empty() && "region needs at least one task");
    for (const LinkDesc &L : Links) {
      (void)L; // asserts compile out in the release-flavor tests
      assert(L.From < Tasks.size() && L.To < Tasks.size() &&
             "link endpoint out of range");
      assert(L.From < L.To && "links must go forward in the pipeline");
    }
    if (S == Scheme::Seq)
      assert(Tasks.size() == 1 && Tasks[0].type() == TaskType::Seq &&
             "SEQ scheme is a single sequential task");
    // Pipeline well-formedness: every non-head stage consumes from
    // upstream and every non-tail stage produces downstream; a functor
    // writing Out[0] on an unlinked task would be out of bounds.
    if (Tasks.size() > 1) {
      std::vector<bool> HasIn(Tasks.size(), false), HasOut(Tasks.size(),
                                                           false);
      for (const LinkDesc &L : Links) {
        HasOut[L.From] = true;
        HasIn[L.To] = true;
      }
      for (std::size_t I = 0; I < Tasks.size(); ++I) {
        assert((I == 0 || HasIn[I]) && "non-head stage without an in-link");
        assert((I + 1 == Tasks.size() || HasOut[I]) &&
               "non-tail stage without an out-link");
      }
    }
  }
};

/// A parallelism configuration C = (S, D): a scheme and a DoP per task.
struct RegionConfig {
  Scheme S = Scheme::Seq;
  std::vector<unsigned> DoP;

  unsigned totalThreads() const {
    unsigned N = 0;
    for (unsigned D : DoP)
      N += D;
    return N;
  }

  bool operator==(const RegionConfig &O) const = default;

  /// "PS-DSWP<1,8,1>" style rendering for logs and tables.
  std::string str() const;
};

/// The variants of one loop among which Morta chooses.
class FlexibleRegion {
public:
  explicit FlexibleRegion(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Registers the RegionDesc for a scheme (at most one per scheme).
  void addVariant(RegionDesc Desc) {
    Desc.verify();
    assert(!hasVariant(Desc.S) && "variant already registered");
    Variants.push_back(std::move(Desc));
  }

  bool hasVariant(Scheme S) const {
    for (const RegionDesc &D : Variants)
      if (D.S == S)
        return true;
    return false;
  }

  const RegionDesc &variant(Scheme S) const {
    for (const RegionDesc &D : Variants)
      if (D.S == S)
        return D;
    assert(false && "variant not registered");
    return Variants.front();
  }

  const std::vector<RegionDesc> &variants() const { return Variants; }

  /// A config with every task at DoP 1 for scheme \p S.
  RegionConfig unitConfig(Scheme S) const {
    RegionConfig C;
    C.S = S;
    C.DoP.assign(variant(S).numTasks(), 1);
    return C;
  }

private:
  std::string Name;
  std::vector<RegionDesc> Variants;
};

} // namespace parcae::rt

#endif // PARCAE_CORE_REGION_H
