//===- Api.h - The Chapter 5 application-developer API ----------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The programmer-facing Parcae API of Chapter 5, with the paper's names
/// (Figure 5.1 and Table 5.1): Task built from a Functor plus LoadCB /
/// InitCB / FiniCB callbacks, TaskDescriptor (SEQ | PAR, optionally with
/// nested ParDescriptors), ParDescriptor as an ordered array of
/// interacting tasks, and the Parcae facade with create / launch /
/// destroy plus the mechanism-developer queries getExecTime / getLoad /
/// registerCB / getValue (Figure 5.8).
///
/// A ParDescriptor's task array is lowered to a pipeline region (its
/// tasks interact through MTCG-style channels in array order, like the
/// ferret and transcode pipelines of the paper); Morta's controller then
/// owns the configuration for the region's lifetime. The functor returns
/// task_iterating / task_complete per instance, exactly Algorithm 2's
/// contract; task_paused is produced by the runtime, never by user code.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_API_H
#define PARCAE_CORE_API_H

#include "decima/Monitor.h"
#include "morta/Controller.h"
#include "morta/RegionRunner.h"
#include "morta/Watchdog.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace parcae::api {

/// The paper's TaskStatus values (Figure 5.1).
using rt::TaskStatus;
constexpr TaskStatus task_iterating = TaskStatus::Iterating;
constexpr TaskStatus task_paused = TaskStatus::Paused;
constexpr TaskStatus task_complete = TaskStatus::Complete;

class Parcae;
class Task;
struct ParDescriptor;

/// TaskType: SEQ tasks run on one thread; PAR tasks on a varying team.
enum class TaskType { SEQ, PAR };

/// What one dynamic task instance sees (the functor's argument). Wraps
/// the runtime iteration context and exposes the paper's begin()/end()
/// monitoring hooks.
class Instance {
public:
  explicit Instance(rt::IterationContext &Ctx) : Ctx(Ctx) {}

  /// Iteration index of this instance.
  std::uint64_t index() const { return Ctx.Seq; }
  /// Team slot executing it.
  unsigned slot() const { return Ctx.Slot; }
  /// Input value from the previous task in the ParDescriptor (or the
  /// work-item id for the first task).
  std::int64_t input() const {
    return Ctx.In.empty() ? 0 : Ctx.In[0].Value;
  }
  /// Output value forwarded to the next task.
  void output(std::int64_t V) {
    for (rt::Token &T : Ctx.Out)
      T.Value = V;
  }

  /// Marks the start/end of the CPU-intensive part (Table 5.1's
  /// Task::begin / Task::end). Everything between contributes \p Cycles
  /// of compute, measured by Decima's hooks.
  void begin() { InBlock = true; }
  void compute(sim::SimTime Cycles) { Ctx.Cost += Cycles; }
  void end() { InBlock = false; }

  /// Declares a critical section (commutative update).
  void critical(int LockId, sim::SimTime Cycles) {
    Ctx.Criticals.push_back({LockId, Cycles});
  }

  /// The raw runtime context, for advanced uses.
  rt::IterationContext &raw() { return Ctx; }

private:
  rt::IterationContext &Ctx;
  bool InBlock = false;
};

/// The task functor: the task's functionality, invoked per instance;
/// returns task_iterating or task_complete (Figure 5.2).
using Functor = std::function<TaskStatus(Instance &)>;
/// Current workload on the task (queue occupancy).
using LoadCB = std::function<double()>;
/// Run when the task is (re)activated / paused (Section 5.1.1).
using InitCB = std::function<void()>;
using FiniCB = std::function<void()>;

/// Describes a task's type and (optionally) the nested parallelism
/// choices of an inner loop (Figure 5.1's TaskDescriptor).
struct TaskDescriptor {
  TaskType Type = TaskType::SEQ;
  /// Nested descriptors: alternative parallelizations of the task's
  /// inner loop the run-time may choose among.
  std::vector<const ParDescriptor *> Pd;

  explicit TaskDescriptor(TaskType T) : Type(T) {}
  TaskDescriptor(TaskType T, const ParDescriptor *Inner) : Type(T) {
    if (Inner)
      Pd.push_back(Inner);
  }
};

/// A task: control (supplied by Morta's TaskExecutor) is separated from
/// functionality (the functor) — Figure 5.2.
class Task {
public:
  Task(std::string Name, Functor Fn, LoadCB Load, TaskDescriptor Desc,
       InitCB Init = nullptr, FiniCB Fini = nullptr)
      : Name(std::move(Name)), Fn(std::move(Fn)), Load(std::move(Load)),
        Desc(std::move(Desc)), Init(std::move(Init)), Fini(std::move(Fini)) {
    assert(this->Fn && "task requires a functor");
  }

  const std::string &name() const { return Name; }
  const TaskDescriptor &descriptor() const { return Desc; }

private:
  friend class Parcae;
  std::string Name;
  Functor Fn;
  LoadCB Load;
  TaskDescriptor Desc;
  InitCB Init;
  FiniCB Fini;
};

/// An ordered array of interacting tasks (Figure 5.1): adjacent tasks
/// communicate over point-to-point channels.
struct ParDescriptor {
  std::vector<Task *> Tasks;

  explicit ParDescriptor(std::vector<Task *> Tasks)
      : Tasks(std::move(Tasks)) {
    assert(!this->Tasks.empty() && "ParDescriptor needs at least one task");
  }
};

/// The run-time facade of Table 5.1 plus the Figure 5.8 mechanism API.
class Parcae {
public:
  /// Creates the run-time system on a machine.
  static std::unique_ptr<Parcae> create(sim::Machine &M,
                                        const rt::RuntimeCosts &Costs);
  static void destroy(std::unique_ptr<Parcae> System) { System.reset(); }

  ~Parcae();

  /// Registers the region described by \p Pd, feeds it from \p Work, and
  /// runs it under the Morta controller until the simulator drains (the
  /// paper's blocking Parcae::launch). Returns the controller used.
  /// Passing \p Watchdog arms Morta's liveness watchdog over the run —
  /// required when the machine has a fault plan installed (a dead core
  /// otherwise stalls the region forever).
  rt::RegionController &launch(const ParDescriptor &Pd,
                               rt::WorkSource &Work,
                               unsigned ThreadBudget = 0,
                               const rt::WatchdogParams *Watchdog = nullptr);

  /// The watchdog of the current launch, if one was armed.
  rt::Watchdog *watchdog() { return Dog.get(); }

  // --- Fault counters (Decima-facing) ----------------------------------
  /// Transient fault attempts observed across the launched region.
  std::uint64_t faultsObserved() const {
    return Runner ? Runner->totalFaults() : 0;
  }
  /// Abortive recoveries the region went through.
  unsigned recoveries() const { return Runner ? Runner->recoveries() : 0; }

  // --- Figure 5.8: application features --------------------------------
  /// Average compute cycles per instance of \p T in the running region.
  double getExecTime(const Task *T) const;
  /// Current workload on \p T (its LoadCB, or its input-queue occupancy).
  double getLoad(const Task *T) const;

  // --- Figure 5.8: platform features ------------------------------------
  void registerCB(const std::string &Feature, std::function<double()> CB) {
    Monitor.registerFeature(Feature, std::move(CB));
  }
  double getValue(const std::string &Feature) const {
    return Monitor.getValue(Feature);
  }
  /// Probes a feature that may not be registered on this platform.
  std::optional<double> tryGetValue(const std::string &Feature) const {
    return Monitor.tryGetValue(Feature);
  }

  /// The lowered flexible region (inspection/testing).
  rt::FlexibleRegion &region() {
    assert(Region && "launch() first");
    return *Region;
  }
  rt::RegionRunner &runner() {
    assert(Runner && "launch() first");
    return *Runner;
  }

private:
  Parcae(sim::Machine &M, const rt::RuntimeCosts &Costs)
      : M(M), Costs(Costs) {}

  sim::Machine &M;
  const rt::RuntimeCosts &Costs;
  rt::Decima Monitor;
  std::unique_ptr<rt::FlexibleRegion> Region;
  std::unique_ptr<rt::RegionRunner> Runner;
  std::unique_ptr<rt::RegionController> Controller;
  std::unique_ptr<rt::Watchdog> Dog;
  std::vector<const Task *> LoweredTasks; ///< index-aligned with region
};

} // namespace parcae::api

#endif // PARCAE_CORE_API_H
