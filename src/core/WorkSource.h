//===- WorkSource.h - Where a region's iterations come from -----*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The head task of a region pulls its work from a WorkSource: a bounded
/// work queue fed by a load generator for the server applications
/// (Chapter 2's video transcoding work queue), or a plain iteration count
/// for batch loops. The source survives reconfigurations and scheme
/// switches, so no work is lost when Morta pauses a region.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_WORKSOURCE_H
#define PARCAE_CORE_WORKSOURCE_H

#include "core/Types.h"
#include "sim/Machine.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

namespace parcae::rt {

/// Portable snapshot of a work source, captured at a quiesced point and
/// replayed by restoreState() on a fresh source of the same kind —
/// possibly on a different simulated machine. Pull history is *not*
/// carried across a restore: a restored region starts replay exactly at
/// the cursor, so there is nothing behind it to rewind into.
struct WorkSourceState {
  enum class Kind { Counted, Queue };
  Kind K = Kind::Counted;
  std::uint64_t Total = 0;  ///< Counted: N. Queue: items ever accepted.
  std::uint64_t Cursor = 0; ///< Counted: next index. Queue: items pulled.
  std::vector<Token> Pending; ///< Queue only: the unpulled tail, in order.
  bool Closed = false;        ///< Queue only.
};

/// Abstract source of work items for a region's head task.
class WorkSource {
public:
  enum class Pull {
    Got,  ///< an item was returned
    Wait, ///< nothing available now; block on readyEvent()
    End   ///< the source is exhausted; the region completes
  };

  virtual ~WorkSource();

  /// Captures the source's replayable state into \p Out. Returns false
  /// when this source kind cannot be snapshotted (the default).
  virtual bool saveState(WorkSourceState &Out) const {
    (void)Out;
    return false;
  }

  /// Re-seeds this source from a state captured by saveState() on a
  /// source of the same kind. Returns false on a kind mismatch or when
  /// this source has already been pulled from.
  virtual bool restoreState(const WorkSourceState &S) {
    (void)S;
    return false;
  }

  /// Attempts to pull the next item.
  virtual Pull tryPull(Token &Out) = 0;

  /// Attempts to pull up to \p Max items in one claim, appending them to
  /// \p Out. Returns Got when at least one item was appended (possibly
  /// fewer than \p Max — a partial chunk, not an error), otherwise Wait
  /// or End exactly as tryPull would. One claim pays the fixed claiming
  /// cost once however many items it returns; this is what makes chunked
  /// execution O(1/K) in overhead. The base implementation loops
  /// tryPull; sources override it when a batched grab is cheaper.
  virtual Pull tryPullChunk(std::uint64_t Max, std::vector<Token> &Out);

  /// Signalled when a Wait result may have turned into Got or End.
  virtual sim::Waitable &readyEvent() = 0;

  /// Instantaneous load (queue occupancy); what the head task's default
  /// LoadCB reports to the mechanisms.
  virtual double load() const = 0;

  /// Un-pulls the last \p Count items so they are delivered again, in the
  /// original order. The abortive recovery path rewinds the source to the
  /// commit frontier before restarting a region. Returns false when the
  /// source cannot replay that far (recovery then falls back to a drain).
  virtual bool rewind(std::uint64_t Count) { return Count == 0; }
};

/// A bounded work queue: the server-application source. The load generator
/// pushes items; closing the queue ends the region once drained.
class QueueWorkSource : public WorkSource {
public:
  explicit QueueWorkSource(std::size_t Capacity = 1u << 20)
      : Capacity(Capacity) {}

  Pull tryPull(Token &Out) override;
  Pull tryPullChunk(std::uint64_t Max, std::vector<Token> &Out) override;
  sim::Waitable &readyEvent() override { return Ready; }
  double load() const override { return static_cast<double>(Items.size()); }
  bool rewind(std::uint64_t Count) override;
  bool saveState(WorkSourceState &Out) const override;
  bool restoreState(const WorkSourceState &S) override;

  /// Enqueues a work item. Returns false when the queue is full or
  /// closed (the item is dropped; the caller may count it as a rejected
  /// request). A closed queue rejecting instead of asserting matters in
  /// release builds, where a racing producer must not smuggle items past
  /// the end-of-stream the consumers already observed.
  bool push(Token Item);

  /// No more items will arrive; the region ends when the queue drains.
  void close();

  std::size_t size() const { return Items.size(); }
  bool closed() const { return Closed; }
  /// Total items ever accepted.
  std::uint64_t accepted() const { return Accepted; }

  /// Items dropped from the rewind history because HistoryCap forced a
  /// pop_front. Non-zero means a rewind (or a checkpoint replay) deeper
  /// than the cap would silently fail — the observability hook for that.
  std::uint64_t historyEvictions() const { return HistoryEvictions; }

  /// Deepest rewind the history can ever serve.
  static constexpr std::size_t historyCap() { return HistoryCap; }

private:
  void evictHistory();

  std::size_t Capacity;
  std::deque<Token> Items;
  bool Closed = false;
  std::uint64_t Accepted = 0;
  std::uint64_t HistoryEvictions = 0;
  sim::Waitable Ready;
  /// Recently pulled items, newest last, kept for rewind(). Bounded: a
  /// rewind deeper than the history fails (recovery drains instead).
  std::deque<Token> History;
  static constexpr std::size_t HistoryCap = 4096;
};

/// A fixed number of iterations: the batch-loop source used by
/// Nona-compiled programs. Pulls are free; ends after N items.
class CountedWorkSource : public WorkSource {
public:
  explicit CountedWorkSource(std::uint64_t N) : N(N) {}

  Pull tryPull(Token &Out) override;
  Pull tryPullChunk(std::uint64_t Max, std::vector<Token> &Out) override;
  sim::Waitable &readyEvent() override { return Ready; }
  double load() const override {
    return static_cast<double>(N - Next);
  }
  bool saveState(WorkSourceState &Out) const override {
    Out = WorkSourceState{};
    Out.K = WorkSourceState::Kind::Counted;
    Out.Total = N;
    Out.Cursor = Next;
    return true;
  }
  bool restoreState(const WorkSourceState &S) override {
    if (S.K != WorkSourceState::Kind::Counted || Next != 0)
      return false;
    N = S.Total;
    Next = S.Cursor;
    Ready.notifyAll();
    return true;
  }

  std::uint64_t remaining() const { return N - Next; }

  /// Extends the iteration count (used by open-ended controller runs).
  void extend(std::uint64_t More) { N += More; }

  /// Counted pulls carry no payload, so rewinding is just moving the
  /// cursor back. A rewind deeper than the pull history is refused
  /// instead of asserted: in release builds the assert would vanish and
  /// Next would wrap; returning false lets recovery fall back to a drain
  /// (the same hardening as QueueWorkSource::push).
  bool rewind(std::uint64_t Count) override {
    if (Count > Next)
      return false;
    Next -= Count;
    if (Count > 0)
      Ready.notifyAll();
    return true;
  }

private:
  std::uint64_t N;
  std::uint64_t Next = 0;
  sim::Waitable Ready;
};

} // namespace parcae::rt

#endif // PARCAE_CORE_WORKSOURCE_H
