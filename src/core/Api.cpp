//===- Api.cpp - The Chapter 5 application-developer API --------------------===//

#include "core/Api.h"

using namespace parcae::api;
namespace rt = parcae::rt;
namespace sim = parcae::sim;

std::unique_ptr<Parcae> Parcae::create(sim::Machine &M,
                                       const rt::RuntimeCosts &Costs) {
  return std::unique_ptr<Parcae>(new Parcae(M, Costs));
}

Parcae::~Parcae() = default;

rt::RegionController &Parcae::launch(const ParDescriptor &Pd,
                                     rt::WorkSource &Work,
                                     unsigned ThreadBudget,
                                     const rt::WatchdogParams *Watchdog) {
  assert(!Region && "one launch per Parcae instance");
  Region = std::make_unique<rt::FlexibleRegion>("api-region");
  // Platform sensors of the fault model are always available to
  // mechanisms, fault plan or not (they read 0 faults then).
  rt::registerFaultFeatures(Monitor, M);

  // Lower the descriptor to the pipeline region: tasks in array order,
  // channels between adjacent tasks. The functor is wrapped so that
  // task_complete from the head ends the work stream (Algorithm 2's
  // loop-exit contract).
  rt::RegionDesc D;
  D.Name = "api-pipe";
  D.S = Pd.Tasks.size() == 1 ? rt::Scheme::DoAny : rt::Scheme::PsDswp;
  for (std::size_t I = 0; I < Pd.Tasks.size(); ++I) {
    Task *T = Pd.Tasks[I];
    LoweredTasks.push_back(T);
    bool IsHead = I == 0;
    rt::Task RT(
        T->name(),
        T->Desc.Type == TaskType::PAR ? rt::TaskType::Par
                                      : rt::TaskType::Seq,
        [T, IsHead](rt::IterationContext &Ctx) {
          Instance Inst(Ctx);
          TaskStatus S = T->Fn(Inst);
          assert(S != task_paused &&
                 "functors must not fabricate task_paused");
          if (S == task_complete && IsHead)
            Ctx.EndOfStream = true;
        });
    if (T->Load)
      RT.LoadCB = T->Load;
    // InitCB/FiniCB run host-side at lowering; their cost is the
    // standard Tinit/fini cost of the runtime model.
    if (T->Init)
      T->Init();
    D.Tasks.push_back(std::move(RT));
    if (I > 0)
      D.Links.push_back({static_cast<unsigned>(I - 1),
                         static_cast<unsigned>(I)});
  }
  // The paper's single-task regions are DOANY-able (the outer transcode
  // loop); multi-task arrays form a pipeline. A sequential fallback is
  // always derivable by pinning every DoP to 1, which the controller's
  // SEQ baseline uses.
  {
    rt::RegionDesc Seq;
    Seq.Name = "api-seq";
    Seq.S = rt::Scheme::Seq;
    std::vector<Task *> Tasks = Pd.Tasks;
    Seq.Tasks.emplace_back(
        "seq-all", rt::TaskType::Seq, [Tasks](rt::IterationContext &Ctx) {
          // Run every functor back to back on one thread.
          for (Task *T : Tasks) {
            Instance Inst(Ctx);
            TaskStatus S = T->Fn(Inst);
            if (S == task_complete)
              Ctx.EndOfStream = true;
          }
        });
    Region->addVariant(std::move(Seq));
  }
  // A single SEQ task exposes no parallel variant at all.
  bool AnyParallel = false;
  for (const rt::Task &RT : D.Tasks)
    AnyParallel |= RT.isParallel();
  if (AnyParallel)
    Region->addVariant(std::move(D));

  Runner = std::make_unique<rt::RegionRunner>(M, Costs, *Region, Work);
  Controller = std::make_unique<rt::RegionController>(*Runner);
  unsigned Budget = ThreadBudget ? ThreadBudget : M.numCores();
  Controller->start(Budget);
  if (Watchdog) {
    Dog = std::make_unique<rt::Watchdog>(*Controller, *Watchdog);
    Dog->start();
  }
  // The paper's launch() blocks until the parallel region ends.
  M.sim().run();
  for (const Task *T : LoweredTasks)
    if (T->Fini)
      T->Fini();
  return *Controller;
}

double Parcae::getExecTime(const Task *T) const {
  assert(Runner && "launch() first");
  const rt::RegionExec *E = Runner->exec();
  if (!E)
    return 0;
  for (unsigned I = 0; I < LoweredTasks.size(); ++I)
    if (LoweredTasks[I] == T && I < E->numTasks())
      return rt::Decima::getExecTime(*E, I);
  return 0;
}

double Parcae::getLoad(const Task *T) const {
  assert(Runner && "launch() first");
  const rt::RegionExec *E = Runner->exec();
  if (!E)
    return 0;
  for (unsigned I = 0; I < LoweredTasks.size(); ++I)
    if (LoweredTasks[I] == T && I < E->numTasks())
      return rt::Decima::getLoad(*E, I);
  return 0;
}
