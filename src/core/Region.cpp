//===- Region.cpp - Parallel regions and their configurations --------------===//

#include "core/Region.h"

using namespace parcae::rt;

std::string RegionConfig::str() const {
  std::string Out = schemeName(S);
  Out += '<';
  for (std::size_t I = 0; I < DoP.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(DoP[I]);
  }
  Out += '>';
  return Out;
}
