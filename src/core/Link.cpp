//===- Link.cpp - Point-to-point inter-task communication ------------------===//

#include "core/Link.h"

using namespace parcae::rt;

Link::Link(std::string Name, const WidthSchedule &Consumer, unsigned MaxWidth,
           std::uint64_t Window)
    : Name(std::move(Name)), Consumer(Consumer), Window(Window),
      Buffers(MaxWidth) {
  assert(MaxWidth > 0 && "link needs at least one slot");
  assert(Window >= 2 && "admission window too small to pipeline");
  DataAvail.reserve(MaxWidth);
  for (unsigned I = 0; I < MaxWidth; ++I)
    DataAvail.push_back(std::make_unique<sim::Waitable>());
}

bool Link::trySend(const Token &T) {
  // The effective window scales with the consumer's team size so that a
  // wide consumer can keep all slots busy, while a narrow consumer keeps
  // queues shallow (deep queues would turn into reconfiguration lag:
  // tokens already routed to a slot must drain there).
  std::uint64_t W = std::max<std::uint64_t>(
      Window, 2 * static_cast<std::uint64_t>(Consumer.currentWidth()));
  if (T.Seq >= LowWater + W)
    return false; // too far ahead of the slowest consumer
  unsigned Slot = Consumer.slotOf(T.Seq);
  assert(Slot < Buffers.size() && "consumer DoP exceeds link MaxWidth");
  [[maybe_unused]] auto Ins = Buffers[Slot].emplace(T.Seq, T);
  assert(Ins.second && "duplicate token for an iteration");
  ++TotalBuffered;
  DataAvail[Slot]->notifyAll();
  return true;
}

std::size_t Link::trySendBatch(const Token *Toks, std::size_t N) {
  std::size_t Sent = 0;
  // Tokens arrive in ascending Seq, so admission fails at a prefix
  // boundary: once one token is outside the window, the rest are too.
  while (Sent < N && trySend(Toks[Sent]))
    ++Sent;
  return Sent;
}

bool Link::tryRecv(unsigned Slot, std::uint64_t Seq, Token &Out) {
  assert(Slot < Buffers.size() && "slot out of range");
  assert(Consumer.slotOf(Seq) == Slot &&
         "consumer asked for an iteration routed to another slot");
  auto &B = Buffers[Slot];
  auto It = B.find(Seq);
  if (It == B.end())
    return false;
  assert(It == B.begin() && "skipped an earlier buffered iteration");
  Out = std::move(It->second);
  B.erase(It);
  assert(TotalBuffered > 0);
  --TotalBuffered;
  return true;
}

parcae::sim::Waitable &Link::dataAvail(unsigned Slot) {
  assert(Slot < DataAvail.size() && "slot out of range");
  return *DataAvail[Slot];
}

void Link::setLowWater(std::uint64_t Seq) {
  if (Seq <= LowWater)
    return;
  LowWater = Seq;
  SpaceAvail.notifyAll();
}

std::size_t Link::bufferedFor(unsigned Slot) const {
  assert(Slot < Buffers.size() && "slot out of range");
  return Buffers[Slot].size();
}

void Link::clear() {
  for (auto &B : Buffers)
    B.clear();
  TotalBuffered = 0;
  SpaceAvail.notifyAll();
}
