//===- Costs.h - Run-time overhead model ------------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All run-time overheads of flexible execution, in cycles (1 GHz ns).
/// Chapter 7 of the paper names these overheads and presents optimizations
/// that almost completely eliminate each; the boolean switches below select
/// the unoptimized or optimized implementation and drive the Chapter 7
/// ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_COSTS_H
#define PARCAE_CORE_COSTS_H

#include "sim/Time.h"

namespace parcae::rt {

/// Overheads of the Morta/Decima machinery and their Chapter 7 switches.
struct RuntimeCosts {
  /// Sending / receiving one token over a point-to-point channel: the
  /// fixed per-transfer cost (synchronization, wakeup, cache handoff).
  sim::SimTime CommSend = 120;
  sim::SimTime CommRecv = 120;
  /// Marginal cost of each additional token in a batched transfer. A
  /// chunked worker moves K tokens per channel interaction and pays
  /// CommSend/CommRecv once plus CommPerToken for the K-1 extras, so
  /// per-iteration communication overhead is O(1/K) + CommPerToken.
  sim::SimTime CommPerToken = 20;
  /// One Decima begin/end hook pair (two rdtsc reads, Section 8.3.6).
  sim::SimTime HookCost = 40;
  /// One Task::getStatus() query against Morta.
  sim::SimTime StatusQuery = 30;
  /// Per-iteration save+reload of cross-iteration register/stack state
  /// through the heap (Section 4.5.2) when the Section 7.1 hoisting
  /// optimization is off. With hoisting on, it is paid once per
  /// activation instead of once per iteration.
  sim::SimTime HeapSpill = 220;
  /// Per-iteration yield to the task-activation loop (Algorithm 2) when
  /// Section 7.1 control-flow optimization is off.
  sim::SimTime TaskActivation = 150;
  /// Executing a task's Tinit (reload loop-invariant live-ins) at every
  /// launch or resumption.
  sim::SimTime InitCost = 3 * sim::USec;
  /// Thread launch cost when (re)spawning a worker.
  sim::SimTime ThreadSpawn = 12 * sim::USec;
  /// Core optimization routine that picks the next configuration.
  sim::SimTime ReconfigCompute = 60 * sim::USec;
  /// Synchronizing one task at the region barrier.
  sim::SimTime BarrierCost = 1 * sim::USec;
  /// Entering/leaving a critical section (uncontended lock cost).
  sim::SimTime LockCost = 80;
  /// Merging one thread's privatized reduction state (Section 7.4).
  sim::SimTime ReduceMergeCost = 400;

  // --- Fault handling (sim/Faults.h, the Morta recovery path) ----------
  /// Cycles burned by an execution attempt that raises a transient fault
  /// before the fault surfaces (detection is cheap; the work is wasted).
  sim::SimTime FaultAttemptCost = 500;
  /// First retry backoff after a transient fault; doubles per attempt.
  sim::SimTime FaultRetryBackoff = 20 * sim::USec;
  /// Backoff ceiling for the exponential schedule.
  sim::SimTime FaultRetryBackoffMax = 320 * sim::USec;
  /// Retries before a transient fault escalates to the watchdog, which
  /// degrades the region (typically to SEQ) rather than spinning forever.
  unsigned MaxFaultRetries = 5;

  /// Section 7.1: hoist cross-iteration load/save out of the loop.
  bool OptimizedDataManagement = true;
  /// Section 7.2: drain-free DoP changes via iteration-count handoff
  /// instead of a full pipeline-drain barrier.
  bool OptimizedBarrier = true;
  /// Section 7.3: overlap the optimization routine with the drain.
  bool OverlapReconfig = true;
  /// Section 7.4: privatize-and-merge reductions instead of a critical
  /// section per iteration.
  bool PrivatizedReductions = true;
};

} // namespace parcae::rt

#endif // PARCAE_CORE_COSTS_H
