//===- Link.h - Point-to-point inter-task communication ---------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inter-task communication channel set MTCG inserts between pipeline
/// stages (Section 4.5.3). A Link connects a producer task to a consumer
/// task; it holds one buffer per consumer thread slot, and iteration i's
/// token is routed to slot (i mod p) where p is the consumer's DoP *for
/// that iteration* as recorded in the consumer's WidthSchedule — the
/// iteration-count handoff of Section 7.2 that keeps routing consistent
/// across DoP changes.
///
/// Buffers are ordered by iteration index, and a consumer asks for exactly
/// its next expected iteration, so FIFO order per slot holds even when
/// several producer threads feed one slot. Producers are admission-limited
/// to a window above the consumer's slowest outstanding iteration, which
/// models bounded queues and guarantees deadlock freedom: the token the
/// lowest outstanding iteration needs is always admissible.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_LINK_H
#define PARCAE_CORE_LINK_H

#include "core/Types.h"
#include "core/WidthSchedule.h"
#include "sim/Machine.h"

#include <cstdint>
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace parcae::rt {

/// A set of point-to-point channels from one task to its consumer.
class Link {
public:
  /// \p Consumer is the consumer task's DoP schedule, which routes tokens.
  /// \p MaxWidth bounds the consumer's DoP; \p Window is the admission
  /// window (how far production may run ahead of the slowest consumer).
  Link(std::string Name, const WidthSchedule &Consumer, unsigned MaxWidth,
       std::uint64_t Window);

  /// Attempts to enqueue \p T. Fails (returns false) when T.Seq is beyond
  /// the admission window; block on spaceAvail() and retry.
  bool trySend(const Token &T);

  /// Batched transfer: enqueues a prefix of \p Toks (ascending Seq) and
  /// returns how many were accepted. Zero means even the first token is
  /// beyond the admission window — block on spaceAvail() and retry with
  /// the remainder. One batched call models one channel interaction, so
  /// chunked producers pay the fixed send cost once per chunk.
  std::size_t trySendBatch(const Token *Toks, std::size_t N);

  /// Attempts to dequeue the token of iteration \p Seq for consumer slot
  /// \p Slot. Fails when it has not arrived yet; block on dataAvail(Slot).
  bool tryRecv(unsigned Slot, std::uint64_t Seq, Token &Out);

  /// Signalled when the admission window may have advanced.
  sim::Waitable &spaceAvail() { return SpaceAvail; }
  /// Signalled when a token arrives for \p Slot.
  sim::Waitable &dataAvail(unsigned Slot);

  /// Raises the low-water mark: the smallest iteration any active consumer
  /// slot still expects. Monotone; wakes blocked producers.
  void setLowWater(std::uint64_t Seq);
  std::uint64_t lowWater() const { return LowWater; }

  /// Total buffered tokens (the consumer task's queue occupancy, which is
  /// what its default LoadCB reports).
  std::size_t buffered() const { return TotalBuffered; }
  std::size_t bufferedFor(unsigned Slot) const;

  const std::string &name() const { return Name; }
  std::uint64_t window() const { return Window; }

  /// Drops everything (region teardown).
  void clear();

private:
  std::string Name;
  const WidthSchedule &Consumer;
  std::uint64_t Window;
  std::uint64_t LowWater = 0;
  std::size_t TotalBuffered = 0;
  std::vector<std::map<std::uint64_t, Token>> Buffers;
  std::vector<std::unique_ptr<sim::Waitable>> DataAvail;
  sim::Waitable SpaceAvail;
};

} // namespace parcae::rt

#endif // PARCAE_CORE_LINK_H
