//===- Task.h - The Parcae task abstraction ---------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Task type of the Parcae API (Section 5.1.1). A task separates
/// control (the Morta worker loop drives instances) from functionality
/// (the iteration functor). The functor is invoked once per dynamic
/// instance with the instance's input tokens; it fills in the instance's
/// compute cost, critical sections, and output tokens. Costs are virtual
/// cycles consumed on the simulated machine; the functor itself models the
/// *work*, exactly the split between control and functionality that
/// Figure 5.2 of the paper shows.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_TASK_H
#define PARCAE_CORE_TASK_H

#include "core/Types.h"
#include "sim/Time.h"

#include <cassert>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace parcae::rt {

/// A mutual-exclusion region executed inside an instance (DOANY
/// synchronization of commutative operations, Section 4.3.1).
struct CriticalSection {
  int LockId = 0;
  sim::SimTime Cycles = 0;
};

/// Everything one dynamic task instance sees and produces.
///
/// The worker fills Seq/Slot/In before calling the functor; the functor
/// fills Cost/Criticals and the payloads of Out (whose Seq fields are
/// pre-set); the worker then charges the cost, runs the critical sections,
/// and sends the outputs.
struct IterationContext {
  /// Region-global iteration index of this instance.
  std::uint64_t Seq = 0;
  /// Consumer thread slot executing the instance.
  unsigned Slot = 0;
  /// Input tokens, one per incoming link. For the head task, In[0] is the
  /// work item pulled from the region's WorkSource (if any).
  std::vector<Token> In;
  /// Output tokens, one per outgoing link, Seq pre-filled.
  std::vector<Token> Out;
  /// Virtual time at which the functor runs (for response-time stamps).
  sim::SimTime Now = 0;
  /// Compute cycles this instance costs.
  sim::SimTime Cost = 0;
  /// Cores the compute occupies (an inner thread team of Gang cores, as
  /// in the two-level loop nests of Chapter 2). 1 = a plain instance.
  unsigned Gang = 1;
  /// Critical sections to execute after the main compute.
  std::vector<CriticalSection> Criticals;
  /// Head-task functors set this when the loop's own exit condition turns
  /// false (uncounted loops): this iteration is the last one.
  bool EndOfStream = false;
};

/// The task's functionality: invoked once per instance.
using IterFn = std::function<void(IterationContext &)>;

/// A task: functionality plus the descriptor data of Figure 5.1.
class Task {
public:
  Task(std::string Name, TaskType Type, IterFn Fn)
      : Fn(std::move(Fn)), Name(std::move(Name)), Type(Type) {
    assert(this->Fn && "task requires an iteration functor");
  }

  const std::string &name() const { return Name; }
  TaskType type() const { return Type; }
  bool isParallel() const { return Type == TaskType::Par; }

  /// The iteration functor.
  IterFn Fn;

  /// Optional workload callback (Section 5.1.1, LoadCB). When absent, the
  /// region reports the task's input-queue occupancy, which is what every
  /// LoadCB in the paper's Figure 5.7 returns.
  std::function<double()> LoadCB;

  /// Extra cycles for this task's InitCB / FiniCB beyond the global Tinit
  /// cost (most tasks need none; compare Figure 5.7's FiniCBs, which just
  /// enqueue a sentinel).
  sim::SimTime InitCost = 0;
  sim::SimTime FiniCost = 0;

  /// Present when the task carries a reduction (min/max/sum). Under
  /// privatize-and-merge (Section 7.4) each slot accumulates locally and
  /// pays a merge on pause; otherwise every iteration runs this critical
  /// section.
  std::optional<CriticalSection> Reduction;

private:
  std::string Name;
  TaskType Type;
};

} // namespace parcae::rt

#endif // PARCAE_CORE_TASK_H
