//===- Types.h - Parcae API core types --------------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core datatypes of the Parcae API (Figure 5.1 of the paper):
/// TaskStatus, TaskType, and the Token that models one loop iteration's
/// worth of data flowing over an inter-task communication channel
/// ("we use the word token to denote a single iteration", Section 7.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CORE_TYPES_H
#define PARCAE_CORE_TYPES_H

#include "sim/Time.h"

#include <cstdint>
#include <memory>

namespace parcae::rt {

/// Status a task instance reports back to the Morta worker loop
/// (Algorithm 2): keep iterating, paused for reconfiguration, or loop done.
enum class TaskStatus { Iterating, Paused, Complete };

/// SEQ tasks have an inherent degree of parallelism of 1; PAR tasks may be
/// executed by a team of threads (Section 5.1.1).
enum class TaskType { Seq, Par };

/// Parallelization scheme of a region, as exposed by the Nona compiler or
/// the application developer (Section 6.1). Fused is the collapsed
/// pipeline of Figure 6.2(b), produced by TBF's task fusion.
enum class Scheme { Seq, DoAny, PsDswp, Fused };

const char *schemeName(Scheme S);

/// One iteration's worth of data on a channel.
struct Token {
  /// Region-global iteration index that produced this token. Round-robin
  /// channel routing and all ordering checks are in terms of this.
  std::uint64_t Seq = 0;
  /// Scalar payload (a communicated register value, a work-item id, ...).
  std::int64_t Value = 0;
  /// Work-size hint for downstream cost models.
  sim::SimTime Work = 0;
  /// Optional reference to a request record (for response-time tracking).
  std::shared_ptr<void> Ref;
};

/// Sentinel meaning "no such iteration" from WidthSchedule queries.
constexpr std::uint64_t NoSeq = ~std::uint64_t(0);

} // namespace parcae::rt

#endif // PARCAE_CORE_TYPES_H
