//===- WidthSchedule.cpp - Epoch-based DoP history of a task ---------------===//

#include "core/WidthSchedule.h"

using namespace parcae::rt;

const char *parcae::rt::schemeName(Scheme S) {
  switch (S) {
  case Scheme::Seq:
    return "SEQ";
  case Scheme::DoAny:
    return "DOANY";
  case Scheme::PsDswp:
    return "PS-DSWP";
  case Scheme::Fused:
    return "FUSED";
  }
  return "?";
}

void WidthSchedule::append(std::uint64_t Start, unsigned Width) {
  assert(Width > 0 && "width must be positive");
  assert(Start >= Epochs.back().Start &&
         "epoch starts must be non-decreasing");
  if (Epochs.back().Start == Start) {
    // Replacing the width of an epoch that has not begun is allowed; this
    // happens when two reconfigurations land on the same iteration.
    Epochs.back().Width = Width;
    return;
  }
  if (Epochs.back().Width == Width)
    return; // no change
  Epochs.push_back({Start, Width});
}

const WidthSchedule::Epoch &
WidthSchedule::epochFor(std::uint64_t Seq) const {
  // Epochs are few (one per reconfiguration); linear scan from the back is
  // both simple and fast since queries cluster near the latest epoch.
  for (std::size_t I = Epochs.size(); I-- > 0;)
    if (Epochs[I].Start <= Seq)
      return Epochs[I];
  assert(false && "first epoch must start at 0");
  return Epochs.front();
}

std::uint64_t WidthSchedule::firstSeqFor(unsigned Slot,
                                         std::uint64_t From) const {
  for (std::size_t I = 0; I < Epochs.size(); ++I) {
    const Epoch &E = Epochs[I];
    std::uint64_t End = I + 1 < Epochs.size() ? Epochs[I + 1].Start : NoSeq;
    if (End != NoSeq && End <= From)
      continue; // epoch entirely before From
    if (Slot >= E.Width)
      continue; // slot does not exist in this epoch
    std::uint64_t Lo = From > E.Start ? From : E.Start;
    // Smallest Seq >= Lo with Seq % Width == Slot.
    std::uint64_t Rem = Lo % E.Width;
    std::uint64_t Cand =
        Rem <= Slot ? Lo + (Slot - Rem) : Lo + (E.Width - Rem) + Slot;
    if (End == NoSeq || Cand < End)
      return Cand;
  }
  return NoSeq;
}
