//===- Monitor.h - The Decima monitor ---------------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decima measures resource availability and system performance to detect
/// change in the environment (Chapter 6). Two halves:
///
///  * Application features: per-task execution time and workload, fed by
///    the begin/end hooks Nona inserts (Section 4.7) — in this
///    reproduction, the TaskStats counters RegionExec accumulates.
///  * Platform features: a registry of named callbacks ("SystemPower",
///    "Temperature", ...) that mechanism developers register
///    (Figure 5.8's registerCB/getValue API).
///
/// ThroughputWindow/TaskWindow turn the monotone counters into windowed
/// rates, tolerating the counter resets that scheme switches cause.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_DECIMA_MONITOR_H
#define PARCAE_DECIMA_MONITOR_H

#include "morta/RegionExec.h"
#include "sim/Simulator.h"
#include "sim/Time.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace parcae::rt {

/// Platform-feature registry (the mechanism developer API of Figure 5.8).
class Decima {
public:
  /// Registers a platform feature; replaces any previous callback.
  void registerFeature(const std::string &Feature,
                       std::function<double()> GetValue) {
    assert(GetValue && "feature callback required");
    Features[Feature] = std::move(GetValue);
  }

  bool hasFeature(const std::string &Feature) const {
    return Features.count(Feature) != 0;
  }

  /// Reads the current value of a registered feature.
  double getValue(const std::string &Feature) const {
    auto It = Features.find(Feature);
    assert(It != Features.end() && "unregistered platform feature");
    return It->second();
  }

  /// Reads a feature that may not be registered on this platform —
  /// mechanisms probe optional sensors ("Temperature", "SystemPower")
  /// whose presence is workload- and machine-dependent.
  std::optional<double> tryGetValue(const std::string &Feature) const {
    auto It = Features.find(Feature);
    if (It == Features.end())
      return std::nullopt;
    return It->second();
  }

  /// Average execution (compute) time per iteration of a task, in cycles —
  /// the paper's Parcae::getExecTime.
  static double getExecTime(const RegionExec &R, unsigned TaskIdx) {
    const TaskStats &S = R.stats(TaskIdx);
    if (S.Iterations == 0)
      return 0.0;
    return static_cast<double>(S.ComputeTime) /
           static_cast<double>(S.Iterations);
  }

  /// Average Morta/Decima machinery time per iteration of a task, in
  /// cycles (hooks, status polls, activation loop). The chunking policy
  /// and the overheads bench read this to see what amortization buys.
  static double getOverheadTime(const RegionExec &R, unsigned TaskIdx) {
    const TaskStats &S = R.stats(TaskIdx);
    if (S.Iterations == 0)
      return 0.0;
    return static_cast<double>(S.OverheadTime) /
           static_cast<double>(S.Iterations);
  }

  /// Current workload on a task — the paper's Parcae::getLoad.
  static double getLoad(const RegionExec &R, unsigned TaskIdx) {
    return R.loadOf(TaskIdx);
  }

  /// Virtual time since task \p TaskIdx last showed liveness (retired an
  /// iteration, fetched, or attempted a faulting iteration). The
  /// watchdog's stall detector and the fault sensors read this.
  static double getHeartbeatAge(const RegionExec &R, unsigned TaskIdx,
                                sim::SimTime Now) {
    sim::SimTime Beat = R.lastHeartbeat(TaskIdx);
    return Now >= Beat ? sim::toSeconds(Now - Beat) : 0.0;
  }

  /// Worst (oldest) heartbeat age across all tasks of \p R, in seconds —
  /// the region-level silence signal the watchdog's blame scan refines
  /// into a per-task verdict. Zero while every task is beating.
  static double getBlameAge(const RegionExec &R, sim::SimTime Now) {
    double Worst = 0.0;
    for (unsigned T = 0; T < R.numTasks(); ++T)
      Worst = std::max(Worst, getHeartbeatAge(R, T, Now));
    return Worst;
  }

private:
  std::map<std::string, std::function<double()>> Features;
};

/// Registers the fault-model platform features against \p M:
/// "OnlineCores" (cores currently operational — drops on failures and
/// grows back on repairs, so its sampled series is the full capacity
/// timeline), "StrandedThreads" (threads held hostage by failed cores),
/// and "RepairedCores" (cores re-onlined by repair events so far).
/// Mechanisms and the resilience bench sample these like any other
/// platform sensor.
inline void registerFaultFeatures(Decima &D, sim::Machine &M) {
  D.registerFeature("OnlineCores",
                    [&M] { return static_cast<double>(M.onlineCores()); });
  D.registerFeature("StrandedThreads",
                    [&M] { return static_cast<double>(M.strandedThreads()); });
  D.registerFeature("RepairedCores",
                    [&M] { return static_cast<double>(M.repairsApplied()); });
}

/// Registers the slow-core platform features against \p M:
/// "MinCoreRate" (the lowest observed effective service rate across
/// online cores, 1.0 = every core nominal, 0.25 = the worst core runs
/// 4x dilated) and "PenalizedCores" (online cores currently below the
/// placement threshold — always 0 with slow-core avoidance off).
/// Mechanisms read these to tell "the platform shrank" (OnlineCores)
/// apart from "the platform slowed" (MinCoreRate).
inline void registerCoreRateFeatures(Decima &D, sim::Machine &M) {
  D.registerFeature("MinCoreRate", [&M] { return M.minCoreRate(); });
  D.registerFeature("PenalizedCores",
                    [&M] { return static_cast<double>(M.penalizedCores()); });
}

/// Registers the "BlameAge" platform feature: the oldest heartbeat age of
/// the current execution, in seconds (0 while everything beats, and
/// between executions). \p Current resolves the live RegionExec on every
/// read, so the feature survives reconfigurations and recoveries.
inline void registerBlameFeature(Decima &D, sim::Machine &M,
                                 std::function<const RegionExec *()> Current) {
  assert(Current && "execution resolver required");
  D.registerFeature("BlameAge", [&M, Current = std::move(Current)] {
    const RegionExec *E = Current();
    return E ? Decima::getBlameAge(*E, M.sim().now()) : 0.0;
  });
}

/// Periodically samples a set of named platform features into the trace
/// (as counter tracks) and the metrics registry (as gauges). Features not
/// registered on this platform are skipped — their presence is workload-
/// and machine-dependent, so the sampler probes with tryGetValue.
class FeatureSampler {
public:
  FeatureSampler(sim::Simulator &Sim, const Decima &D,
                 std::vector<std::string> Features,
                 sim::SimTime Period = 100 * sim::USec)
      : Sim(Sim), D(D), Features(std::move(Features)), Period(Period) {
#if PARCAE_TELEMETRY_ENABLED
    Tel = telemetry::recorder();
    if (Tel) {
      Tel->bindClock(Sim);
      TelPid = Tel->processFor("decima");
      Tel->nameThread(TelPid, 0, "features");
    }
#endif
  }

  /// Takes the first sample now and re-arms every period until stop().
  void start() {
    assert(!Running && "sampler already running");
    Running = true;
    sampleOnce();
    arm();
  }

  void stop() { Running = false; }

  /// Samples every present feature immediately (also usable standalone).
  void sampleOnce() {
    for (const std::string &F : Features) {
      std::optional<double> V = D.tryGetValue(F);
      if (!V)
        continue;
      ++Samples;
      if (Tel) {
        Tel->counter(TelPid, 0, "decima", F, *V);
        Tel->metrics().gauge("decima." + F).set(*V);
        Tel->metrics().histogram("decima." + F + ".dist").add(*V);
      }
    }
  }

  std::uint64_t samplesTaken() const { return Samples; }

private:
  void arm() {
    Sim.schedule(Period, [this] {
      if (!Running)
        return;
      sampleOnce();
      arm();
    });
  }

  sim::Simulator &Sim;
  const Decima &D;
  std::vector<std::string> Features;
  sim::SimTime Period;
  bool Running = false;
  std::uint64_t Samples = 0;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
};

/// Windowed rate from a monotone counter: iterations per second between
/// mark() and sample(). Handles counter resets (value decreases) by
/// restarting the window.
class ThroughputWindow {
public:
  void mark(std::uint64_t Count, sim::SimTime Now) {
    StartCount = Count;
    StartTime = Now;
  }

  /// Iterations elapsed since the mark (0 after a counter reset).
  std::uint64_t progress(std::uint64_t Count) const {
    return Count >= StartCount ? Count - StartCount : 0;
  }

  /// Iterations per second since the mark.
  double rate(std::uint64_t Count, sim::SimTime Now) const {
    if (Now <= StartTime || Count <= StartCount)
      return 0.0;
    return static_cast<double>(Count - StartCount) /
           sim::toSeconds(Now - StartTime);
  }

  sim::SimTime startTime() const { return StartTime; }

private:
  std::uint64_t StartCount = 0;
  sim::SimTime StartTime = 0;
};

/// Per-task throughput sampling used by mechanisms that rank tasks
/// (TBF, FDP, and the controller's Algorithm 4 ordering).
class TaskWindow {
public:
  /// Re-anchors the window at the task's current counters.
  void mark(const RegionExec &R, unsigned TaskIdx, sim::SimTime Now) {
    Iters = R.stats(TaskIdx).Iterations;
    Compute = R.stats(TaskIdx).ComputeTime;
    Time = Now;
  }

  /// Task iterations per second since the mark, or 0 if none.
  double throughput(const RegionExec &R, unsigned TaskIdx,
                    sim::SimTime Now) const {
    const TaskStats &S = R.stats(TaskIdx);
    if (S.Iterations <= Iters || Now <= Time)
      return 0.0;
    return static_cast<double>(S.Iterations - Iters) /
           sim::toSeconds(Now - Time);
  }

  /// Average compute cycles per iteration since the mark.
  double execTime(const RegionExec &R, unsigned TaskIdx) const {
    const TaskStats &S = R.stats(TaskIdx);
    if (S.Iterations <= Iters || S.ComputeTime < Compute)
      return 0.0;
    return static_cast<double>(S.ComputeTime - Compute) /
           static_cast<double>(S.Iterations - Iters);
  }

private:
  std::uint64_t Iters = 0;
  sim::SimTime Compute = 0;
  sim::SimTime Time = 0;
};

} // namespace parcae::rt

#endif // PARCAE_DECIMA_MONITOR_H
