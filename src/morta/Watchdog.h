//===- Watchdog.h - Morta's liveness watchdog -------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure-detection half of Morta's recovery story. The controller's
/// own measurement loop only advances when iterations retire, so a dead
/// core that strands a worker stalls the pipeline *and* the controller —
/// nobody is left to notice. The watchdog is the independent observer: a
/// periodic tick that
///
///  * polls machine capacity and, when cores have gone offline, rescues
///    stranded threads and shrinks the controller's thread budget
///    (graceful degradation to a lower DoP, or SEQ);
///  * detects capacity *growth* (a repair returned cores) and grows the
///    thread budget back, so the controller re-selects — from its
///    per-budget cache when possible — the richer configuration;
///  * watches region progress against per-task heartbeats and, when
///    nothing retires for a stall threshold, runs a blame scan over the
///    per-worker heartbeats: a single confidently wedged task is repaired
///    surgically (rescue + restart of just that task, the rest of the
///    region keeps running), and only an ambiguous or failed blame falls
///    back to the whole-region abortive recovery;
///  * degrades the region (typically to SEQ) when a transient fault
///    exhausts its retry budget, side-stepping the poisoned
///    configuration;
///  * records detection latency and MTTR (fault time -> first iteration
///    retired after recovery) as metrics histograms.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MORTA_WATCHDOG_H
#define PARCAE_MORTA_WATCHDOG_H

#include "morta/Controller.h"
#include "sim/Time.h"
#include "telemetry/Telemetry.h"

#include <cstdint>
#include <deque>
#include <functional>

namespace parcae::rt {

/// Tunables of the liveness watchdog.
struct WatchdogParams {
  /// Polling period. Detection latency is at most one period.
  sim::SimTime Period = 250 * sim::USec;
  /// No retired iteration for this long (with work in flight and no
  /// transition in progress) counts as a stall.
  sim::SimTime StallThreshold = 4 * sim::MSec;
  /// On retry exhaustion, degrade to the SEQ variant (whose distinct task
  /// names dodge a fault bound to a parallel task). When false, recover
  /// into the current configuration instead.
  bool DegradeToSeqOnEscalation = true;
  /// On a stall, try to blame and restart the single wedged task before
  /// reaching for the whole-region abortive recovery.
  bool SurgicalRestart = true;
  /// A task is only blamed when its oldest culprit worker has been silent
  /// at least this long (kept below StallThreshold so a genuine stall
  /// always has a convictable culprit by the time it is detected).
  sim::SimTime BlameThreshold = 2 * sim::MSec;
  /// Blame is ambiguous — fall back to abortive recovery — when a second
  /// task's culprit is within this margin of the oldest one.
  sim::SimTime BlameMargin = 500 * sim::USec;
  /// React to failure-domain *warnings* (sim/Faults.h lead time) by
  /// proactively checkpointing the region and migrating it off the
  /// doomed cores before they die — zero aborted work, versus the
  /// reactive rescue + abort path when the domain fails unannounced.
  bool DrainOnWarning = true;
  /// Speculative re-issue (straggler avoidance, serving mode): when
  /// commit progress has been quiet for SpecStallThreshold and the oldest
  /// in-flight iteration sits mid-compute on a *penalized* core, clone it
  /// onto a backup worker (RegionExec::speculateLaggard) — the clone
  /// lands on a healthy core and the loser is epoch-cancelled. Needs
  /// MachineConfig::SlowCoreAvoidance on, or no core is ever penalized.
  /// Off by default.
  bool Speculate = false;
  /// Progress silence before speculation is considered. Kept well below
  /// StallThreshold so re-issue beats the abortive path to a core that is
  /// merely slow, not dead.
  sim::SimTime SpecStallThreshold = 1 * sim::MSec;
  /// The laggard worker's own silence before its iteration is re-issued.
  sim::SimTime SpecAgeThreshold = 500 * sim::USec;
};

/// Periodic liveness monitor driving Morta's recovery paths.
class Watchdog {
public:
  Watchdog(RegionController &Ctrl, WatchdogParams P = {});

  /// Arms the periodic tick and hooks fault escalations. Call after the
  /// controller has started.
  void start();

  // --- Counters (bench/test-facing) -----------------------------------

  /// Capacity drops detected (one per tick that saw fewer online cores).
  unsigned detections() const { return Detections; }
  /// Capacity growths detected (one per tick that saw more online cores).
  unsigned growthsDetected() const { return Growths; }
  /// Progress stalls detected.
  unsigned stallsDetected() const { return Stalls; }
  /// Retry-budget escalations handled.
  unsigned escalationsHandled() const { return EscalationsHandled; }
  /// Recoveries whose completion (first retire after the fault) was seen.
  /// Each fault opens its own recovery window, so a burst of faults
  /// counts one completion (and one MTTR sample) per fault.
  unsigned recoveriesCompleted() const { return RecoveriesCompleted; }
  /// Recovery windows opened but not yet completed.
  unsigned recoveriesPending() const {
    return static_cast<unsigned>(RecoveryWindows.size());
  }
  /// Stranded threads rescued in total.
  unsigned threadsRescued() const { return Rescued; }
  /// Speculative re-issues driven (laggard cloned off a penalized core).
  unsigned speculationsIssued() const { return SpeculationsIssued; }
  /// Stalls where the blame scan convicted a single task.
  unsigned blamesAssigned() const { return BlamesAssigned; }
  /// Blamed tasks actually repaired surgically (restart or scoped rescue).
  unsigned surgicalRestarts() const { return SurgicalRestarts; }
  /// Stalls that fell back to whole-region abortive recovery (ambiguous
  /// blame, no culprit, a repeat stall, or a restart that did nothing).
  unsigned fallbackAborts() const { return FallbackAborts; }
  /// Surgical recovery windows completed (first retire after the repair).
  unsigned surgicalRecoveriesCompleted() const {
    return SurgicalRecoveriesCompleted;
  }
  /// Task most recently convicted by the blame scan.
  unsigned lastBlamedTask() const { return LastBlamedTask; }
  /// MTTR of the most recent completed *surgical* recovery.
  sim::SimTime lastSurgicalMttr() const { return LastSurgicalMttr; }
  /// Proactive drains started on a failure-domain warning.
  unsigned drainsStarted() const { return DrainsStarted; }
  /// Drains that completed (region resumed on the survivors).
  unsigned drainsCompleted() const { return DrainsCompleted; }
  /// Warning-to-resumed latency of the most recent completed drain.
  sim::SimTime lastDrainLatency() const { return LastDrainLatency; }

  /// Fires when a proactive drain completed (bench/test hook).
  std::function<void()> OnDrainDone;

  /// Fires right after a surgical restart was driven (bench/test hook:
  /// observe what the rest of the region retired during the repair).
  std::function<void(unsigned TaskIdx)> OnSurgicalRestart;
  /// Latency of the most recent capacity-drop detection (fault to tick).
  sim::SimTime lastDetectionLatency() const { return LastDetectionLatency; }
  /// Latency of the most recent capacity-growth detection (repair to tick).
  sim::SimTime lastGrowthLatency() const { return LastGrowthLatency; }
  /// Most recent mean-time-to-recovery (fault to first retire after).
  sim::SimTime lastMttr() const { return LastMttr; }

private:
  void tick();
  void onEscalation(unsigned TaskIdx);
  void onDomainWarning(const sim::FailureDomainEvent &D);
  /// Opens a recovery window clocked from \p FaultAt. Windows stack: a
  /// new fault during a running recovery gets its own window, so bursts
  /// are not folded into one MTTR sample.
  void beginRecoveryClock(sim::SimTime FaultAt, bool Surgical = false);

  RegionController &Ctrl;
  RegionRunner &Runner;
  sim::Machine &M;
  WatchdogParams P;

  bool Started = false;
  unsigned KnownOnline = 0;
  std::uint64_t LastRetired = 0;
  sim::SimTime LastProgressAt = 0;

  /// One open MTTR clock per outstanding fault, oldest first. A window
  /// completes at the first retire after its fault (outside a
  /// transition); overlapping faults complete separately.
  struct RecoveryWindow {
    sim::SimTime StartAt = 0;
    std::uint64_t RetiredAtFault = 0;
    bool Surgical = false; ///< opened by a surgical restart, not an abort
  };
  std::deque<RecoveryWindow> RecoveryWindows;

  unsigned Detections = 0;
  unsigned Growths = 0;
  unsigned Stalls = 0;
  unsigned EscalationsHandled = 0;
  unsigned RecoveriesCompleted = 0;
  unsigned Rescued = 0;
  unsigned SpeculationsIssued = 0;
  unsigned BlamesAssigned = 0;
  unsigned SurgicalRestarts = 0;
  unsigned FallbackAborts = 0;
  unsigned SurgicalRecoveriesCompleted = 0;
  unsigned LastBlamedTask = 0;
  /// One-shot guard: a surgical restart that produced no retire before
  /// the next stall did not fix the problem — escalate to abortive
  /// recovery instead of restarting the same task forever.
  bool SurgicalSinceProgress = false;
  sim::SimTime LastDetectionLatency = 0;
  sim::SimTime LastGrowthLatency = 0;
  sim::SimTime LastMttr = 0;
  sim::SimTime LastSurgicalMttr = 0;
  unsigned DrainsStarted = 0;
  unsigned DrainsCompleted = 0;
  bool DrainActive = false;
  sim::SimTime DrainWarnedAt = 0;
  sim::SimTime LastDrainLatency = 0;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
};

} // namespace parcae::rt

#endif // PARCAE_MORTA_WATCHDOG_H
