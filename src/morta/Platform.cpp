//===- Platform.cpp - Platform-wide Morta daemon ---------------------------===//

#include "morta/Platform.h"

#include <algorithm>

using namespace parcae::rt;

void PlatformDaemon::traceBudgets(const char *Why) {
  if (!Tel)
    return;
  std::vector<telemetry::TraceArg> Args;
  Args.push_back(telemetry::TraceArg::str("why", Why));
  Args.push_back(telemetry::TraceArg::num(
      "programs", static_cast<double>(Programs.size())));
  unsigned Committed = 0;
  for (std::size_t I = 0; I < Programs.size(); ++I) {
    Args.push_back(telemetry::TraceArg::num("P" + std::to_string(I),
                                            Programs[I].Budget));
    Committed += Programs[I].Budget;
    Tel->counter(TelPid, 0, "platform", "budget:P" + std::to_string(I),
                 Programs[I].Budget);
  }
  Args.push_back(telemetry::TraceArg::num("committed", Committed));
  Tel->instant(TelPid, 0, "platform", "repartition", std::move(Args));
  Tel->metrics().counter("platform.repartitions").add();
}

void PlatformDaemon::addProgram(RegionController &C) {
  Programs.push_back({&C, 0, 0});
  C.OnOptimized = [this, Ctrl = &C](unsigned Used) {
    onOptimized(Ctrl, Used);
  };
  partition();
  traceBudgets("add_program");
  // Start the newcomer under its assigned budget; re-budget the others.
  for (Entry &E : Programs) {
    if (E.Ctrl == &C) {
      if (E.Ctrl->state() == CtrlState::Init && E.Ctrl->threadBudget() == 1 &&
          E.Ctrl->trace().empty())
        E.Ctrl->start(E.Budget);
      else
        E.Ctrl->setThreadBudget(E.Budget);
    } else {
      E.Ctrl->setThreadBudget(E.Budget);
    }
  }
}

void PlatformDaemon::removeProgram(RegionController &C) {
  auto It = std::find_if(Programs.begin(), Programs.end(),
                         [&](const Entry &E) { return E.Ctrl == &C; });
  assert(It != Programs.end() && "program not registered");
  Programs.erase(It);
  if (Programs.empty())
    return;
  partition();
  traceBudgets("remove_program");
  for (Entry &E : Programs)
    E.Ctrl->setThreadBudget(E.Budget);
}

unsigned PlatformDaemon::budgetOf(const RegionController &C) const {
  for (const Entry &E : Programs)
    if (E.Ctrl == &C)
      return E.Budget;
  assert(false && "program not registered");
  return 0;
}

void PlatformDaemon::partition() {
  // Even split; remainder goes to the earliest-registered programs.
  unsigned N = static_cast<unsigned>(Programs.size());
  unsigned Share = std::max(1u, TotalThreads / N);
  unsigned Rem = TotalThreads > Share * N ? TotalThreads - Share * N : 0;
  for (Entry &E : Programs) {
    E.Budget = Share + (Rem > 0 ? 1 : 0);
    if (Rem > 0)
      --Rem;
    E.Used = 0;
    E.ShrunkToFit = false;
  }
}

void PlatformDaemon::onOptimized(RegionController *C, unsigned Used) {
  for (Entry &E : Programs) {
    if (E.Ctrl != C)
      continue;
    if (E.Used != Used)
      E.ShrunkToFit = false; // a genuinely new need resets the damping
    E.Used = Used;
  }
  rebalance();
}

void PlatformDaemon::rebalance() {
  // setThreadBudget can synchronously re-enter through OnOptimized (a
  // config-cache hit reports immediately); coalesce nested requests.
  if (InRebalance) {
    RebalancePending = true;
    return;
  }
  InRebalance = true;
  unsigned Rounds = 0;
  do {
    RebalancePending = false;
    rebalanceOnce();
    assert(++Rounds < 1000 && "platform rebalance did not converge");
  } while (RebalancePending);
  InRebalance = false;
}

void PlatformDaemon::rebalanceOnce() {
  // Algorithm 5: shrink each program that reported needing fewer threads
  // than its budget, collect the slack, and hand it to programs that
  // consumed their entire share (they may benefit from more).
  std::vector<Entry *> Hungry;
  unsigned Committed = 0;
  std::vector<unsigned> NewBudget(Programs.size());
  for (std::size_t I = 0; I < Programs.size(); ++I) {
    Entry &E = Programs[I];
    NewBudget[I] = E.Budget;
    if (E.Used > 0 && E.Used < E.Budget) {
      NewBudget[I] = E.Used;
      E.ShrunkToFit = true;
    }
    Committed += NewBudget[I];
    if (E.Used > 0 && E.Used >= E.Budget && E.Ctrl->budgetLimited() &&
        !E.ShrunkToFit)
      Hungry.push_back(&E);
  }
  unsigned Slack = TotalThreads > Committed ? TotalThreads - Committed : 0;
  if (Slack > 0 && !Hungry.empty()) {
    unsigned Each = Slack / static_cast<unsigned>(Hungry.size());
    unsigned Rem = Slack - Each * static_cast<unsigned>(Hungry.size());
    for (Entry *E : Hungry) {
      std::size_t I = static_cast<std::size_t>(E - Programs.data());
      NewBudget[I] += Each + (Rem > 0 ? 1 : 0);
      if (Rem > 0)
        --Rem;
    }
  }
  std::vector<Entry *> Notify;
  for (std::size_t I = 0; I < Programs.size(); ++I) {
    Entry &E = Programs[I];
    if (NewBudget[I] == E.Budget)
      continue;
    bool Grew = NewBudget[I] > E.Budget;
    E.Budget = NewBudget[I];
    if (Grew) {
      E.Used = 0; // will re-report after re-optimizing with more threads
      E.ShrunkToFit = false;
    }
    Notify.push_back(&E);
  }
  if (!Notify.empty())
    traceBudgets("rebalance");
  for (Entry *E : Notify)
    E->Ctrl->setThreadBudget(E->Budget);
}
