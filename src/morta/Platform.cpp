//===- Platform.cpp - Platform-wide Morta daemon ---------------------------===//

#include "morta/Platform.h"

#include <algorithm>

using namespace parcae::rt;

PlatformTenant::~PlatformTenant() = default;

/// Adapts a RegionController to the tenant interface. The adapter owns
/// the controller's OnOptimized hook for the registration's lifetime and
/// caches the last reported thread need, so the daemon's polling path
/// sees exactly what Algorithm 5's event-driven path reported.
class PlatformDaemon::ControllerTenant : public PlatformTenant {
public:
  ControllerTenant(PlatformDaemon &D, RegionController &C)
      : D(D), C(C), Name(C.runner().region().name()) {
    C.OnOptimized = [this](unsigned Used) {
      LastReported = Used;
      this->D.onOptimized(this, Used);
    };
  }
  ~ControllerTenant() override { C.OnOptimized = nullptr; }

  const std::string &tenantName() const override { return Name; }

  void onBudget(unsigned Budget, bool First) override {
    // Start the newcomer under its assigned budget; re-budget on every
    // later grant.
    if (First && C.state() == CtrlState::Init && C.threadBudget() == 1 &&
        C.trace().empty())
      C.start(Budget);
    else
      C.setThreadBudget(Budget);
  }

  unsigned threadsUsed() const override { return LastReported; }
  bool wantsMore() const override { return C.budgetLimited(); }

  RegionController &ctrl() { return C; }

private:
  PlatformDaemon &D;
  RegionController &C;
  std::string Name;
  unsigned LastReported = 0;
};

PlatformDaemon::PlatformDaemon(unsigned TotalThreads, SloParams SP)
    : TotalThreads(TotalThreads), SP(SP) {
  assert(TotalThreads >= 1 && "platform needs at least one thread");
#if PARCAE_TELEMETRY_ENABLED
  Tel = telemetry::recorder();
  if (Tel) {
    TelPid = Tel->processFor("platform");
    Tel->nameThread(TelPid, 0, "daemon");
  }
#endif
}

PlatformDaemon::~PlatformDaemon() = default;

void PlatformDaemon::traceBudgets(const char *Why) {
  if (!Tel)
    return;
  std::vector<telemetry::TraceArg> Args;
  Args.push_back(telemetry::TraceArg::str("why", Why));
  Args.push_back(telemetry::TraceArg::num(
      "tenants", static_cast<double>(Programs.size())));
  unsigned Committed = 0;
  for (std::size_t I = 0; I < Programs.size(); ++I) {
    const std::string &Name = Programs[I].T->tenantName();
    Args.push_back(telemetry::TraceArg::num("budget:" + Name,
                                            Programs[I].Budget));
    Committed += Programs[I].Budget;
    Tel->counter(TelPid, 0, "platform", "budget:" + Name,
                 Programs[I].Budget);
  }
  Args.push_back(telemetry::TraceArg::num("committed", Committed));
  Tel->instant(TelPid, 0, "platform", "repartition", std::move(Args));
  Tel->metrics().counter("platform.repartitions").add();
}

void PlatformDaemon::registerEntry(Entry E, PlatformTenant &Newcomer) {
  Programs.push_back(E);
  partition();
  traceBudgets("add_tenant");
  for (Entry &P : Programs)
    P.T->onBudget(P.Budget, P.T == &Newcomer);
}

void PlatformDaemon::unregisterEntry(std::size_t Idx) {
  Programs.erase(Programs.begin() + static_cast<std::ptrdiff_t>(Idx));
  if (Programs.empty())
    return;
  partition();
  traceBudgets("remove_tenant");
  for (Entry &E : Programs)
    E.T->onBudget(E.Budget, false);
}

void PlatformDaemon::addProgram(RegionController &C) {
  Adapters.push_back(std::make_unique<ControllerTenant>(*this, C));
  registerEntry({Adapters.back().get(), &C, 0, 0}, *Adapters.back());
}

void PlatformDaemon::removeProgram(RegionController &C) {
  auto It = std::find_if(Programs.begin(), Programs.end(),
                         [&](const Entry &E) { return E.Ctrl == &C; });
  assert(It != Programs.end() && "program not registered");
  PlatformTenant *T = It->T;
  unregisterEntry(static_cast<std::size_t>(It - Programs.begin()));
  Adapters.erase(std::find_if(Adapters.begin(), Adapters.end(),
                              [&](const auto &A) { return A.get() == T; }));
}

void PlatformDaemon::addTenant(PlatformTenant &T) {
  registerEntry({&T, nullptr, 0, 0}, T);
}

void PlatformDaemon::removeTenant(PlatformTenant &T) {
  auto It = std::find_if(Programs.begin(), Programs.end(),
                         [&](const Entry &E) { return E.T == &T; });
  assert(It != Programs.end() && "tenant not registered");
  unregisterEntry(static_cast<std::size_t>(It - Programs.begin()));
}

unsigned PlatformDaemon::budgetOf(const RegionController &C) const {
  for (const Entry &E : Programs)
    if (E.Ctrl == &C)
      return E.Budget;
  assert(false && "program not registered");
  return 0;
}

unsigned PlatformDaemon::budgetOf(const PlatformTenant &T) const {
  for (const Entry &E : Programs)
    if (E.T == &T)
      return E.Budget;
  assert(false && "tenant not registered");
  return 0;
}

void PlatformDaemon::partition() {
  // Even split; remainder goes to the earliest-registered tenants.
  unsigned N = static_cast<unsigned>(Programs.size());
  unsigned Share = std::max(1u, TotalThreads / N);
  unsigned Rem = TotalThreads > Share * N ? TotalThreads - Share * N : 0;
  for (Entry &E : Programs) {
    E.Budget = Share + (Rem > 0 ? 1 : 0);
    if (Rem > 0)
      --Rem;
    E.Used = 0;
    E.ShrunkToFit = false;
    E.SloNet = 0;
  }
}

void PlatformDaemon::onOptimized(PlatformTenant *T, unsigned Used) {
  for (Entry &E : Programs) {
    if (E.T != T)
      continue;
    if (E.Used != Used)
      E.ShrunkToFit = false; // a genuinely new need resets the damping
    E.Used = Used;
  }
  rebalance();
}

void PlatformDaemon::rebalance() {
  // onBudget can synchronously re-enter through OnOptimized (a
  // config-cache hit reports immediately); coalesce nested requests.
  if (InRebalance) {
    RebalancePending = true;
    return;
  }
  InRebalance = true;
  unsigned Rounds = 0;
  do {
    RebalancePending = false;
    rebalanceOnce();
    assert(++Rounds < 1000 && "platform rebalance did not converge");
  } while (RebalancePending);
  InRebalance = false;
}

void PlatformDaemon::rebalanceOnce() {
  // Algorithm 5: shrink each tenant that reported needing fewer threads
  // than its budget, collect the slack, and hand it to tenants that
  // consumed their entire share (they may benefit from more).
  std::vector<Entry *> Hungry;
  unsigned Committed = 0;
  std::vector<unsigned> NewBudget(Programs.size());
  for (std::size_t I = 0; I < Programs.size(); ++I) {
    Entry &E = Programs[I];
    NewBudget[I] = E.Budget;
    if (E.Used > 0 && E.Used < E.Budget) {
      NewBudget[I] = E.Used;
      E.ShrunkToFit = true;
    }
    Committed += NewBudget[I];
    if (E.Used > 0 && E.Used >= E.Budget && E.T->wantsMore() &&
        !E.ShrunkToFit)
      Hungry.push_back(&E);
  }
  unsigned Slack = TotalThreads > Committed ? TotalThreads - Committed : 0;
  if (Slack > 0 && !Hungry.empty()) {
    unsigned Each = Slack / static_cast<unsigned>(Hungry.size());
    unsigned Rem = Slack - Each * static_cast<unsigned>(Hungry.size());
    for (Entry *E : Hungry) {
      std::size_t I = static_cast<std::size_t>(E - Programs.data());
      NewBudget[I] += Each + (Rem > 0 ? 1 : 0);
      if (Rem > 0)
        --Rem;
    }
  }
  std::vector<Entry *> Notify;
  for (std::size_t I = 0; I < Programs.size(); ++I) {
    Entry &E = Programs[I];
    if (NewBudget[I] == E.Budget)
      continue;
    bool Grew = NewBudget[I] > E.Budget;
    E.Budget = NewBudget[I];
    if (Grew) {
      E.Used = 0; // will re-report after re-optimizing with more threads
      E.ShrunkToFit = false;
    }
    Notify.push_back(&E);
  }
  if (!Notify.empty())
    traceBudgets("rebalance");
  for (Entry *E : Notify)
    E->T->onBudget(E->Budget, false);
}

void PlatformDaemon::startArbiter(sim::Simulator &Sim, sim::SimTime Period) {
  assert(Period > 0 && "arbiter period must be positive");
  if (ArbiterOn)
    return;
  ArbiterOn = true;
  ArbSim = &Sim;
  Sim.schedule(Period, [this, &Sim, Period] { arbiterTick(Sim, Period); });
}

void PlatformDaemon::arbiterTick(sim::Simulator &Sim, sim::SimTime Period) {
  if (!ArbiterOn)
    return;
  // Pull phase: refresh every tenant's reported need (controller tenants
  // return their last OPTIMIZE report, serving tenants their live
  // demand), mirroring onOptimized's damping reset.
  for (Entry &E : Programs) {
    unsigned U = E.T->threadsUsed();
    if (U != E.Used) {
      E.ShrunkToFit = false;
      E.Used = U;
    }
  }
  rebalance();
  sloRebalanceOnce();
  Sim.schedule(Period, [this, &Sim, Period] { arbiterTick(Sim, Period); });
}

void PlatformDaemon::sloRebalanceOnce() {
  if (Programs.size() < 2)
    return;
  sim::SimTime Now = ArbSim ? ArbSim->now() : 0;
  // Latency-to-target ratio per tenant; negative = no SLO or no data.
  std::vector<double> Ratio(Programs.size(), -1.0);
  for (std::size_t I = 0; I < Programs.size(); ++I) {
    const PlatformTenant *T = Programs[I].T;
    if (!T->hasSlo())
      continue;
    double Target = T->sloTargetSec();
    double Lat = T->sloLatencySec();
    assert(Target > 0 && "SLO tenant must carry a positive target");
    if (Lat >= 0)
      Ratio[I] = Lat / Target;
  }

  std::vector<Entry *> Changed;
  auto moveThread = [&](std::size_t From, std::size_t To, const char *Why) {
    Entry &D = Programs[From], &V = Programs[To];
    --D.Budget;
    ++V.Budget;
    --D.SloNet;
    ++V.SloNet;
    // The donor was shrunk by fiat, not by its own report: damp its
    // hunger so the classic pass does not immediately claw the thread
    // back; the recipient re-plans for the bigger share.
    D.ShrunkToFit = true;
    V.Used = 0;
    V.ShrunkToFit = false;
    Transfers.push_back(
        {Now, D.T->tenantName(), V.T->tenantName(), 1, Why});
    if (Tel) {
      Tel->instant(TelPid, 0, "platform", "slo_transfer",
                   {telemetry::TraceArg::str("from", D.T->tenantName()),
                    telemetry::TraceArg::str("to", V.T->tenantName()),
                    telemetry::TraceArg::str("why", Why),
                    telemetry::TraceArg::num("threads", 1)});
      Tel->metrics().counter("platform.slo_transfers").add();
    }
    if (std::find(Changed.begin(), Changed.end(), &D) == Changed.end())
      Changed.push_back(&D);
    if (std::find(Changed.begin(), Changed.end(), &V) == Changed.end())
      Changed.push_back(&V);
  };

  // Hand-back pass: a tenant that gained SLO budget and now sits
  // comfortably inside its target (load dropped) returns one thread per
  // tick to the most SLO-indebted lender.
  for (std::size_t I = 0; I < Programs.size(); ++I) {
    Entry &E = Programs[I];
    if (E.SloNet <= 0 || E.Budget <= SP.MinBudget)
      continue;
    if (Ratio[I] < 0 || Ratio[I] > SP.ReturnHeadroom)
      continue;
    std::size_t Lender = Programs.size();
    int MostLent = 0;
    for (std::size_t J = 0; J < Programs.size(); ++J)
      if (J != I && Programs[J].SloNet < MostLent) {
        MostLent = Programs[J].SloNet;
        Lender = J;
      }
    if (Lender < Programs.size())
      moveThread(I, Lender, "return");
  }

  // Violation pass: each SLO-violating tenant takes one thread per tick
  // from the best donor — tenants without an SLO first (they promised no
  // latency), then SLO tenants with the most headroom.
  for (std::size_t I = 0; I < Programs.size(); ++I) {
    if (Ratio[I] <= 1.0) // meeting, no data, or no SLO
      continue;
    std::size_t Donor = Programs.size();
    double DonorKey = 0;
    for (std::size_t J = 0; J < Programs.size(); ++J) {
      if (J == I || Programs[J].Budget <= SP.MinBudget)
        continue;
      const PlatformTenant *T = Programs[J].T;
      double Key;
      if (!T->hasSlo())
        Key = -1.0; // best donors: no latency promise
      else if (Ratio[J] >= 0 && Ratio[J] <= SP.DonorHeadroom)
        Key = Ratio[J];
      else
        continue; // violating, near target, or no data: not a donor
      if (Donor == Programs.size() || Key < DonorKey ||
          (Key == DonorKey && Programs[J].Budget > Programs[Donor].Budget))
        Donor = J, DonorKey = Key;
    }
    if (Donor < Programs.size())
      moveThread(Donor, I, "violation");
  }

  if (Changed.empty())
    return;
  traceBudgets("slo_transfer");
  // Notifications may synchronously re-enter rebalance (config-cache
  // hits report immediately); coalesce exactly like rebalance() does.
  bool Reenter = !InRebalance;
  InRebalance = true;
  for (Entry *E : Changed)
    E->T->onBudget(E->Budget, false);
  if (Reenter) {
    InRebalance = false;
    if (RebalancePending)
      rebalance();
  }
}
