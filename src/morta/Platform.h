//===- Platform.h - Platform-wide Morta daemon ------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The platform-wide run-time system of Section 6.4.3 (Algorithm 5): a
/// daemon that partitions the machine's hardware threads across the
/// flexible parallel programs currently executing. Each program's own
/// controller optimizes within its budget and reports back the number of
/// threads its optimal configuration actually uses; the daemon hands the
/// slack to programs that consumed their full share, and re-partitions on
/// program launch and termination.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MORTA_PLATFORM_H
#define PARCAE_MORTA_PLATFORM_H

#include "morta/Controller.h"

#include <cstdint>
#include <vector>

namespace parcae::rt {

/// Platform-wide thread-budget arbiter (Algorithm 5).
class PlatformDaemon {
public:
  explicit PlatformDaemon(unsigned TotalThreads)
      : TotalThreads(TotalThreads) {
    assert(TotalThreads >= 1 && "platform needs at least one thread");
#if PARCAE_TELEMETRY_ENABLED
    Tel = telemetry::recorder();
    if (Tel) {
      TelPid = Tel->processFor("platform");
      Tel->nameThread(TelPid, 0, "daemon");
    }
#endif
  }

  /// Registers a program (its controller). Budgets of all programs are
  /// re-partitioned; the new program's controller is started, the others
  /// are notified of their reduced share.
  void addProgram(RegionController &C);

  /// Unregisters a terminated program and redistributes its threads.
  void removeProgram(RegionController &C);

  unsigned totalThreads() const { return TotalThreads; }
  unsigned numPrograms() const {
    return static_cast<unsigned>(Programs.size());
  }

  /// The current budget assigned to a registered program.
  unsigned budgetOf(const RegionController &C) const;

private:
  struct Entry {
    RegionController *Ctrl;
    unsigned Budget;       ///< threads assigned by the daemon
    unsigned Used;         ///< threads the optimal config uses (0: unknown)
    /// The daemon shrank this program's budget to its reported optimum;
    /// it is not "hungry" again until it reports a different need (this
    /// breaks grow/shrink oscillation through the config cache).
    bool ShrunkToFit = false;
  };

  void partition();
  void onOptimized(RegionController *C, unsigned Used);
  void rebalance();
  void rebalanceOnce();
  /// Telemetry: one repartition instant carrying every program's budget.
  void traceBudgets(const char *Why);

  unsigned TotalThreads;
  std::vector<Entry> Programs;
  bool InRebalance = false;
  bool RebalancePending = false;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
};

} // namespace parcae::rt

#endif // PARCAE_MORTA_PLATFORM_H
