//===- Platform.h - Platform-wide Morta daemon ------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The platform-wide run-time system of Section 6.4.3 (Algorithm 5): a
/// daemon that partitions the machine's hardware threads across the
/// flexible parallel programs currently executing. Each program's own
/// controller optimizes within its budget and reports back the number of
/// threads its optimal configuration actually uses; the daemon hands the
/// slack to programs that consumed their full share, and re-partitions on
/// program launch and termination.
///
/// Extended beyond the paper for serving mode: the daemon arbitrates
/// abstract *tenants* (PlatformTenant), of which a RegionController is one
/// kind and a ServeLoop request class another. A tenant may carry a
/// latency SLO (p-th percentile of response time <= target); a periodic
/// arbiter tick then reallocates budget from SLO-meeting tenants to
/// SLO-violating ones under overload — latency, not just reported thread
/// need, becomes a first-class arbitration goal. Every SLO-driven
/// transfer is recorded in a budget timeline and traced.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MORTA_PLATFORM_H
#define PARCAE_MORTA_PLATFORM_H

#include "morta/Controller.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parcae::rt {

/// What the daemon needs from an arbitrated tenant. A tenant is anything
/// that consumes a thread budget: a RegionController-driven program
/// (adapted internally by addProgram) or a serving-layer request class.
class PlatformTenant {
public:
  virtual ~PlatformTenant();

  /// Stable name, used in telemetry and the SLO-transfer timeline.
  virtual const std::string &tenantName() const = 0;

  /// The daemon granted \p Budget threads. \p First is true for the
  /// grant delivered at registration (a controller tenant starts its
  /// program then).
  virtual void onBudget(unsigned Budget, bool First) = 0;

  /// Threads the tenant currently needs/uses; 0 means "unknown yet"
  /// (the daemon then neither shrinks nor grows it). Polled on every
  /// arbiter tick; controller tenants report the value of their last
  /// OPTIMIZE pass instead, preserving Algorithm 5's event-driven flow.
  virtual unsigned threadsUsed() const = 0;

  /// True when more threads than the current budget would help (the
  /// paper's "consumed its entire share" condition).
  virtual bool wantsMore() const = 0;

  // --- Optional latency SLO -------------------------------------------

  /// True when this tenant carries a latency SLO.
  virtual bool hasSlo() const { return false; }
  /// SLO target in seconds at sloPercentile().
  virtual double sloTargetSec() const { return 0.0; }
  /// Percentile the SLO is stated over (e.g. 95).
  virtual double sloPercentile() const { return 95.0; }
  /// Measured latency at sloPercentile() over a recent window, in
  /// seconds; negative when no data has been observed yet.
  virtual double sloLatencySec() const { return -1.0; }
};

/// Tunables of the daemon's SLO arbitration pass.
struct PlatformSloParams {
  /// A donor with an SLO must sit at or below this fraction of its
  /// target to give a thread away (headroom so the transfer does not
  /// immediately create a second violator).
  double DonorHeadroom = 0.75;
  /// A tenant that gained SLO budget returns it once its latency falls
  /// to or below this fraction of its target (load dropped).
  double ReturnHeadroom = 0.5;
  /// Minimum budget any tenant is left with after donating.
  unsigned MinBudget = 1;
};

/// Platform-wide thread-budget arbiter (Algorithm 5 + SLO arbitration).
class PlatformDaemon {
public:
  using SloParams = PlatformSloParams;

  explicit PlatformDaemon(unsigned TotalThreads, SloParams SP = {});
  ~PlatformDaemon(); // out-of-line: adapters are incomplete here

  /// Registers a program (its controller). Budgets of all tenants are
  /// re-partitioned; the new program's controller is started, the others
  /// are notified of their reduced share.
  void addProgram(RegionController &C);

  /// Unregisters a terminated program and redistributes its threads.
  void removeProgram(RegionController &C);

  /// Registers a tenant directly (the serving layer's path). The tenant
  /// must outlive its registration.
  void addTenant(PlatformTenant &T);

  /// Unregisters a tenant and redistributes its threads.
  void removeTenant(PlatformTenant &T);

  /// Starts the periodic arbiter: every \p Period the daemon polls each
  /// tenant's thread need, runs the Algorithm 5 rebalance, and then the
  /// SLO pass (transfers from SLO-meeting to SLO-violating tenants and
  /// the reverse hand-back when load drops). The daemon must outlive the
  /// simulator run; stopArbiter() halts rescheduling.
  void startArbiter(sim::Simulator &Sim, sim::SimTime Period = sim::MSec);
  void stopArbiter() { ArbiterOn = false; }

  unsigned totalThreads() const { return TotalThreads; }
  unsigned numPrograms() const {
    return static_cast<unsigned>(Programs.size());
  }

  /// The current budget assigned to a registered program.
  unsigned budgetOf(const RegionController &C) const;
  /// The current budget assigned to a registered tenant.
  unsigned budgetOf(const PlatformTenant &T) const;

  /// One SLO-driven budget move (the budget-timeline telemetry record).
  struct SloTransfer {
    sim::SimTime At;
    std::string From, To;
    unsigned Threads;
    /// "violation" (meeting -> violating) or "return" (hand-back).
    const char *Why;
  };
  /// Every SLO-driven transfer so far, in time order.
  const std::vector<SloTransfer> &sloTransfers() const { return Transfers; }

private:
  /// Adapts a RegionController to the tenant interface (Algorithm 5's
  /// original clients). Owned by the daemon for the registration's life.
  class ControllerTenant;

  struct Entry {
    PlatformTenant *T;
    /// Non-null for controller tenants (addProgram bookkeeping).
    RegionController *Ctrl;
    unsigned Budget;       ///< threads assigned by the daemon
    unsigned Used;         ///< threads the optimal config uses (0: unknown)
    /// The daemon shrank this tenant's budget to its reported optimum;
    /// it is not "hungry" again until it reports a different need (this
    /// breaks grow/shrink oscillation through the config cache).
    bool ShrunkToFit = false;
    /// Net threads gained (+) or lent (-) through SLO transfers; drives
    /// the hand-back when load drops.
    int SloNet = 0;
  };

  void registerEntry(Entry E, PlatformTenant &Newcomer);
  void unregisterEntry(std::size_t Idx);
  void partition();
  void onOptimized(PlatformTenant *T, unsigned Used);
  void rebalance();
  void rebalanceOnce();
  void arbiterTick(sim::Simulator &Sim, sim::SimTime Period);
  /// One SLO pass: hand-backs first, then meeting->violating transfers.
  void sloRebalanceOnce();
  /// Telemetry: one repartition instant carrying every tenant's budget.
  void traceBudgets(const char *Why);

  unsigned TotalThreads;
  SloParams SP;
  std::vector<Entry> Programs;
  std::vector<std::unique_ptr<ControllerTenant>> Adapters;
  std::vector<SloTransfer> Transfers;
  bool InRebalance = false;
  bool RebalancePending = false;
  bool ArbiterOn = false;
  /// The arbiter's clock (null until startArbiter); stamps the transfer
  /// timeline.
  sim::Simulator *ArbSim = nullptr;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
};

} // namespace parcae::rt

#endif // PARCAE_MORTA_PLATFORM_H
