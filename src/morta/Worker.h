//===- Worker.h - The Morta worker loop (Algorithm 2) -----------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One worker thread executing instances of one task slot. The control
/// logic is the paper's Algorithm 2, expressed as the explicit state
/// machine the simulated Machine requires: fetch the next instance (claim
/// an iteration from the work source for the head task, or compute the
/// next owned iteration from the task's WidthSchedule otherwise), receive
/// inputs, run the functor, charge compute, run critical sections, send
/// outputs, and loop — until the instance space is bounded by a pause or
/// the end of work, at which point the worker flushes, pays its FiniCB
/// and barrier costs, and exits with task_paused or task_complete.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MORTA_WORKER_H
#define PARCAE_MORTA_WORKER_H

#include "core/Task.h"
#include "core/Types.h"
#include "morta/RegionExec.h"
#include "sim/Machine.h"

#include <cstdint>

namespace parcae::rt {

/// The worker's reusable iteration context.
using WorkerContext = IterationContext;

/// ThreadBody for one (task, slot) pair.
class Worker : public sim::ThreadBody {
public:
  Worker(RegionExec &R, unsigned TaskIdx, unsigned Slot,
         std::uint64_t CursorFrom);

  sim::Action resume(sim::Machine &M, sim::SimThread &T) override;

  unsigned taskIdx() const { return TaskIdx; }
  unsigned slot() const { return Slot; }

  /// Smallest iteration this worker may still need tokens for; feeds the
  /// links' low-water marks.
  std::uint64_t lowBound() const { return InIteration ? Cursor : CursorFrom; }

private:
  friend class RegionExec;

  enum class State {
    Init,        ///< pay Tinit and spawn costs
    Fetch,       ///< find/claim the next instance or detect pause/end
    Recv,        ///< receive one input token per in-link
    Backoff,     ///< transient fault: wait out the retry backoff
    Compute,     ///< charge the functor's compute cost
    Critical,    ///< acquire/run/release critical sections
    Send,        ///< send one output token per out-link
    IterDone,    ///< bookkeeping, then loop to Fetch
    Finish,      ///< pay FiniCB/merge/barrier costs
    Exit         ///< leave the machine
  };

  sim::Action stepFetch();
  sim::Action runFunctor(sim::Machine &M);
  sim::Action finishWith(TaskStatus S);

  RegionExec &R;
  unsigned TaskIdx;
  unsigned Slot;
  const Task &T;
  bool IsHead;
  bool IsTail;

  State St = State::Init;
  std::uint64_t CursorFrom; ///< first iteration index not yet owned
  std::uint64_t Cursor = 0; ///< iteration currently in flight
  bool InIteration = false;

  WorkerContext Ctx;
  std::size_t NextIn = 0;   ///< next in-link to receive from
  std::size_t NextOut = 0;  ///< next out-link to send to
  std::size_t NextCrit = 0; ///< next critical section to run
  bool CritHeld = false;
  bool UsedReduction = false; ///< privatized reduction state to merge
  sim::SimTime PendingCost = 0; ///< extra cost injected by reconfigurations
  TaskStatus ExitStatus = TaskStatus::Complete;

  /// The worker's simulated thread; RegionExec::abort() terminates it.
  sim::SimThread *Thread = nullptr;

  // Transient-fault retry state. Attempt counts tries of the current
  // iteration; it resets when a new iteration is claimed, so the functor
  // runs exactly once per iteration — on the first non-faulting attempt.
  unsigned Attempt = 0;
  bool BackoffArmed = false;
  sim::SimTime RetryAt = 0;
  sim::Waitable RetryEvent;
};

} // namespace parcae::rt

#endif // PARCAE_MORTA_WORKER_H
