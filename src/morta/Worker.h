//===- Worker.h - The Morta worker loop (Algorithm 2) -----------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One worker thread executing instances of one task slot. The control
/// logic is the paper's Algorithm 2, expressed as the explicit state
/// machine the simulated Machine requires: fetch the next instance (claim
/// an iteration from the work source for the head task, or compute the
/// next owned iteration from the task's WidthSchedule otherwise), receive
/// inputs, run the functor, charge compute, run critical sections, send
/// outputs, and loop — until the instance space is bounded by a pause or
/// the end of work, at which point the worker flushes, pays its FiniCB
/// and barrier costs, and exits with task_paused or task_complete.
///
/// Iterations are processed in chunks of K (core/Chunking.h): the head
/// claims K items per source interaction, and all workers pay the Decima
/// hook, get_status() poll, and per-channel transfer costs once per chunk
/// instead of once per iteration. Output tokens are batched per out-link
/// and flushed at chunk boundaries. K degrades to 1 around pause/drain,
/// and a pausing head gives unstarted chunk items back to the source when
/// they are the contiguous tail of the claim space — so reconfigure
/// latency and the exactly-once guarantees match chunk-size-1 semantics.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MORTA_WORKER_H
#define PARCAE_MORTA_WORKER_H

#include "core/Task.h"
#include "core/Types.h"
#include "morta/RegionExec.h"
#include "sim/Machine.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace parcae::rt {

/// The worker's reusable iteration context.
using WorkerContext = IterationContext;

/// ThreadBody for one (task, slot) pair.
class Worker : public sim::ThreadBody {
public:
  Worker(RegionExec &R, unsigned TaskIdx, unsigned Slot,
         std::uint64_t CursorFrom);

  sim::Action resume(sim::Machine &M, sim::SimThread &T) override;

  unsigned taskIdx() const { return TaskIdx; }
  unsigned slot() const { return Slot; }

  /// Smallest iteration this worker may still need tokens for; feeds the
  /// links' low-water marks.
  std::uint64_t lowBound() const { return InIteration ? Cursor : CursorFrom; }

private:
  friend class RegionExec;

  /// Which runtime wait the worker last blocked in. The watchdog's blame
  /// scan reads this: a Blocked thread whose last wait is a runtime wait
  /// (channel, source, retry, lock) is a *victim* of someone else's
  /// stall, while a Blocked thread with WaitKind::None is blocked outside
  /// every runtime wait — wedged in user code — and a *culprit*.
  enum class WaitKind { None, Channel, Source, Retry, Lock };

  enum class State {
    Init,        ///< pay Tinit and spawn costs
    Fetch,       ///< find/claim the next instance or detect pause/end
    Recv,        ///< receive one input token per in-link
    Backoff,     ///< transient fault: wait out the retry backoff
    Compute,     ///< charge the functor's compute cost
    Critical,    ///< acquire/run/release critical sections
    Send,        ///< flush batched output tokens per out-link
    IterDone,    ///< bookkeeping, then loop to Fetch
    Finish,      ///< pay FiniCB/merge/barrier costs
    Exit         ///< leave the machine
  };

  sim::Action stepFetch();
  sim::Action stepSend();
  sim::Action beginIteration(Token Item);
  sim::Action runFunctor(sim::Machine &M);
  /// Exits with status \p S, flushing buffered sends first if any.
  sim::Action finishWith(TaskStatus S);
  /// The actual exit costs, once buffers are clean.
  sim::Action doFinish(TaskStatus S);
  bool anyBuffered() const;

  RegionExec &R;
  unsigned TaskIdx;
  unsigned Slot;
  const Task &T;
  bool IsHead;
  bool IsTail;

  State St = State::Init;
  std::uint64_t CursorFrom; ///< first iteration index not yet owned
  std::uint64_t Cursor = 0; ///< iteration currently in flight
  bool InIteration = false;

  WorkerContext Ctx;
  std::size_t NextIn = 0;   ///< next in-link to receive from
  std::size_t NextOut = 0;  ///< next out-link to flush
  std::size_t NextCrit = 0; ///< next critical section to run
  bool CritHeld = false;
  bool UsedReduction = false; ///< privatized reduction state to merge
  sim::SimTime PendingCost = 0; ///< extra cost injected by reconfigurations
  TaskStatus ExitStatus = TaskStatus::Complete;

  // --- Chunked claiming / batched communication ------------------------
  std::vector<Token> Chunk;     ///< head: claimed items not yet started
  std::size_t ChunkNext = 0;    ///< head: next unstarted index in Chunk
  std::uint64_t ChunkStart = 0; ///< head: seq of Chunk[0]
  /// Iterations left in the current chunk, including the one in flight.
  std::uint64_t ChunkIters = 0;
  /// Current iteration is its chunk's first: it pays the per-chunk fixed
  /// costs (Decima hooks, status query, full per-transfer channel cost).
  bool ChunkHead = true;
  std::vector<std::vector<Token>> SendBufs; ///< per out-link, ascending Seq
  bool FlushAll = false;       ///< this Send pass flushes every buffer
  /// Set for a flush pass not tied to an iteration (emptying buffers
  /// before blocking idle); Send returns to this state instead of
  /// IterDone.
  std::optional<State> FlushResume;
  std::optional<TaskStatus> PendingFinish; ///< exit after buffers flush
  /// One opportunistic pre-idle flush per blocking episode (prevents a
  /// zero-cost Fetch/Send spin when the window is also full).
  bool IdleFlushDone = false;

  /// Speculative clone (RegionExec::speculateLaggard): the first resume
  /// continues the terminated laggard's in-flight iteration at the main
  /// compute charge instead of starting from Fetch. The laggard already
  /// ran the functor — its side effects are durable, and a sequential
  /// tail's commit already advanced the frontier — so the clone must NOT
  /// re-run it; it re-pays SpecCost (the functor's declared cost) on its
  /// own, healthy core and proceeds to Critical/Send/IterDone, retiring
  /// the iteration exactly once.
  bool SpecResume = false;
  sim::SimTime SpecCost = 0;

  /// The worker's simulated thread; RegionExec::abort() terminates it.
  sim::SimThread *Thread = nullptr;

  /// Blame state. Per-task heartbeats are the wrong granularity for blame
  /// — one wedged lane of a parallel task leaves the task beat fresh
  /// because its healthy siblings keep beating — so each worker records
  /// its own last beat too.
  sim::SimTime LastBeatAt = 0;
  WaitKind LastWait = WaitKind::None;
  /// Wedge injection (Machine::takeWedge): the worker hangs in user code,
  /// blocked forever on a waitable nothing ever notifies.
  bool Wedged = false;
  sim::Waitable WedgeHang;
  /// Beats the task heartbeat and this worker's own.
  void beat();

  // Transient-fault retry state. Attempt counts tries of the current
  // iteration; it resets when a new iteration is claimed, so the functor
  // runs exactly once per iteration — on the first non-faulting attempt.
  unsigned Attempt = 0;
  bool BackoffArmed = false;
  sim::SimTime RetryAt = 0;
  sim::Waitable RetryEvent;
};

} // namespace parcae::rt

#endif // PARCAE_MORTA_WORKER_H
