//===- RegionRunner.h - Lifetime management of a flexible region -*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the execution of one FlexibleRegion across arbitrarily many
/// reconfigurations. The runner picks, per reconfiguration request, the
/// cheapest legal path:
///
///  * DoP-only change, optimized barrier on  -> in-place iteration-count
///    handoff (Section 7.2), no drain;
///  * otherwise -> the full pause / drain / barrier / resume protocol of
///    Section 4.6, with the optimization routine optionally overlapped
///    with the drain (Section 7.3).
///
/// Iteration indices are continuous across every switch, so downstream
/// consumers never observe reordering, loss, or duplication.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MORTA_REGIONRUNNER_H
#define PARCAE_MORTA_REGIONRUNNER_H

#include "core/Chunking.h"
#include "core/Costs.h"
#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/RegionExec.h"
#include "sim/Machine.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

namespace parcae::rt {

/// The runner's transferable slice of a region checkpoint, captured at a
/// quiesced point: the exactly-once cursor, the cumulative retire count,
/// the configuration in force, and the learned chunk size.
struct RunnerCheckpoint {
  std::uint64_t Cursor = 0;  ///< next sequence number to execute
  std::uint64_t Retired = 0; ///< totalRetired() (== Cursor when quiesced)
  RegionConfig Config;
  std::uint64_t ChunkK = 1;
};

/// Runs a FlexibleRegion, switching configurations on request.
class RegionRunner {
public:
  RegionRunner(sim::Machine &M, const RuntimeCosts &Costs,
               const FlexibleRegion &Region, WorkSource &Source);
  ~RegionRunner();
  RegionRunner(const RegionRunner &) = delete;
  RegionRunner &operator=(const RegionRunner &) = delete;

  /// Launches execution under \p Initial. A non-zero \p StartSeq resumes
  /// a checkpointed region on a fresh runner (typically on a different
  /// machine): iteration numbering and totalRetired() continue from the
  /// checkpoint cursor, so downstream output stays exactly-once.
  void start(RegionConfig Initial, std::uint64_t StartSeq = 0);

  // --- Checkpoint / restore (src/checkpoint) ---------------------------

  /// Requests a cooperative quiesce-and-suspend. The region drains under
  /// the pause/give-back discipline (in-flight retired work is kept);
  /// once quiescent the execution is torn down, the runner enters the
  /// *suspended* state, and \p Done fires one event later with the
  /// captured checkpoint. If the region completes before reaching the
  /// pause bound, \p Done fires with nullptr instead (nothing left to
  /// migrate). Piggybacks on an in-flight transition when one is already
  /// draining. Returns false when the runner has completed, not started,
  /// is already suspended, or a checkpoint is already pending.
  bool requestCheckpoint(std::function<void(const RunnerCheckpoint *)> Done);

  /// Resumes a suspended runner under \p C from \p StartSeq (normally the
  /// checkpoint cursor) — possibly after the caller offlined cores or
  /// otherwise reshaped the machine while the region held no thread.
  void resume(RegionConfig C, std::uint64_t StartSeq);

  /// True between a completed checkpoint and resume(): the region holds
  /// no execution and consumes no cores.
  bool suspended() const { return Suspended; }

  /// Checkpoints captured over the runner's lifetime.
  unsigned checkpoints() const { return Checkpoints; }

  /// Chunk-policy re-seeds from a previously learned K (fresh executions
  /// that skipped re-learning from K = MinK).
  unsigned chunkReseeds() const { return ChunkReseeds; }

  /// Switches to \p Target. Asynchronous: in-flight iterations finish
  /// under the old configuration. Ignored if the region completed or a
  /// switch is already in progress (the request is coalesced into the
  /// pending one). Returns true if the request was accepted.
  bool reconfigure(RegionConfig Target);

  /// Abortive recovery (the Morta watchdog's fast path): kills in-flight
  /// iterations instead of draining them, rewinds the work source to the
  /// commit frontier, and resumes under \p Target from there. Requires a
  /// sequential tail (RegionExec::canAbort) and a rewindable source;
  /// otherwise falls back to the ordinary pause-drain reconfigure. Exactly
  /// once: everything below the frontier was emitted in order, everything
  /// above it re-executes. Returns true if a switch was accepted.
  bool recover(RegionConfig Target);

  /// Surgical restart (the watchdog's blame path): repairs one task of
  /// the current execution in place — no pause, no drain, no frontier
  /// rewind, no configuration change. Deliberately allowed while a
  /// transition is draining (the wedged task may be exactly what is
  /// blocking the drain); only the resume window, where no execution
  /// exists, rejects it. Returns what the execution actually did.
  RegionExec::RestartResult restartTask(unsigned TaskIdx);

  /// Workers terminated and respawned by surgical restarts.
  unsigned taskRestarts() const { return TaskRestarts; }

  /// True while a pause-drain-resume transition is in flight.
  bool transitioning() const { return Transitioning; }

  bool completed() const { return Completed; }
  const RegionConfig &config() const { return Config; }
  const FlexibleRegion &region() const { return Region; }
  sim::Machine &machine() { return M; }
  WorkSource &source() { return Source; }

  /// The current execution, if any (may be null mid-transition).
  RegionExec *exec() { return Exec.get(); }
  const RegionExec *exec() const { return Exec.get(); }

  /// The region's chunk-size policy. Owned here so the learned K
  /// survives reconfigurations; each execution tunes it online and
  /// degrades it to 1 around pause/drain. Benchmarks pin() it for
  /// fixed-K A/B runs.
  ChunkPolicy &chunkPolicy() { return Chunking; }
  const ChunkPolicy &chunkPolicy() const { return Chunking; }

  /// Iterations retired across all executions of this region.
  std::uint64_t totalRetired() const {
    return RetiredBase + (Exec ? Exec->iterationsRetired() : 0);
  }

  /// Number of reconfigurations applied (in-place + full).
  unsigned reconfigurations() const { return Reconfigurations; }
  /// Number that took the full pause-drain-resume path.
  unsigned fullPauses() const { return FullPauses; }
  /// Number that took the abortive recovery path.
  unsigned recoveries() const { return Recoveries; }

  /// Transient fault attempts across all executions of this region.
  std::uint64_t totalFaults() const {
    return FaultsBase + (Exec ? Exec->faultsInjected() : 0);
  }
  /// Retry-budget exhaustions across all executions.
  std::uint64_t totalEscalations() const {
    return EscalationsBase + (Exec ? Exec->escalations() : 0);
  }

  std::function<void()> OnComplete;
  /// Commit-frontier watermark hook: fires after each retirement with
  /// totalRetired() — continuous across reconfigurations, recoveries,
  /// and checkpoint/resume, so the value only moves forward except
  /// across an abortive recovery, where re-executed iterations repeat
  /// watermarks (callers must treat crossings idempotently). Set before
  /// start(); left null (the default) it costs the hot path nothing.
  /// The serve broker uses it to attribute per-request completions
  /// inside a batched region.
  std::function<void(std::uint64_t TotalRetired)> OnProgress;
  /// Fires when a requested reconfiguration has fully taken effect.
  std::function<void()> OnReconfigured;
  /// Forwarded from the current execution: a transient fault exhausted
  /// its retry budget. The watchdog reacts by degrading the region.
  std::function<void(unsigned TaskIdx)> OnFaultEscalation;

private:
  void beginExec(RegionConfig C, std::uint64_t StartSeq);
  void onQuiescent();
  /// Arms the delayed resume. Pending is read when the delay fires, so a
  /// reconfigure/recover landing inside the window still takes effect.
  void scheduleResume(std::uint64_t StartSeq, sim::SimTime Delay);
  /// Records the outgoing execution's learned chunk K for its scheme.
  void noteLearnedK();
  /// The quiesced endpoint of requestCheckpoint(): captures the
  /// checkpoint, suspends the runner, and defers Done one event.
  void completeCheckpoint(std::uint64_t StartSeq);
  /// Defers the pending checkpoint callback to a fresh simulator event
  /// (the quiesce fires from inside worker code; the callback may tear
  /// down or restart executions, which must not happen re-entrantly).
  void dispatchCheckpointDone(bool Captured);

  sim::Machine &M;
  const RuntimeCosts &Costs;
  const FlexibleRegion &Region;
  WorkSource &Source;

  RegionConfig Config;
  ChunkPolicy Chunking;
  std::unique_ptr<RegionExec> Exec;
  std::unique_ptr<RegionExec> Retiring; ///< kept alive until replaced
  RegionConfig Pending;
  bool Transitioning = false;
  bool Completed = false;
  bool Started = false;
  bool Suspended = false;
  std::uint64_t RetiredBase = 0;
  unsigned Reconfigurations = 0;
  unsigned FullPauses = 0;
  unsigned Recoveries = 0;
  unsigned TaskRestarts = 0;
  unsigned Checkpoints = 0;
  unsigned ChunkReseeds = 0;
  /// Pending checkpoint completion; non-null between requestCheckpoint()
  /// and the deferred Done dispatch.
  std::function<void(const RunnerCheckpoint *)> CheckpointDone;
  RunnerCheckpoint LastCheckpoint;
  sim::SimTime CheckpointAt = 0; ///< when the quiesce was requested
  std::uint64_t CheckpointK = 1; ///< learned K captured pre-degrade
  /// Last learned chunk K per scheme; beginExec re-seeds the policy from
  /// this instead of re-learning from MinK (chunk-aware recovery).
  std::map<Scheme, std::uint64_t> LearnedK;
  std::uint64_t FaultsBase = 0;
  std::uint64_t EscalationsBase = 0;
  sim::SimTime PauseRequestedAt = 0;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
  /// Name of the open runner-lane span ("transition" or "recover"),
  /// closed when the resume fires; null when none is open.
  const char *TelOpenSpan = nullptr;
};

} // namespace parcae::rt

#endif // PARCAE_MORTA_REGIONRUNNER_H
