//===- RegionRunner.h - Lifetime management of a flexible region -*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the execution of one FlexibleRegion across arbitrarily many
/// reconfigurations. The runner picks, per reconfiguration request, the
/// cheapest legal path:
///
///  * DoP-only change, optimized barrier on  -> in-place iteration-count
///    handoff (Section 7.2), no drain;
///  * otherwise -> the full pause / drain / barrier / resume protocol of
///    Section 4.6, with the optimization routine optionally overlapped
///    with the drain (Section 7.3).
///
/// Iteration indices are continuous across every switch, so downstream
/// consumers never observe reordering, loss, or duplication.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MORTA_REGIONRUNNER_H
#define PARCAE_MORTA_REGIONRUNNER_H

#include "core/Chunking.h"
#include "core/Costs.h"
#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/RegionExec.h"
#include "sim/Machine.h"

#include <cstdint>
#include <functional>
#include <memory>

namespace parcae::rt {

/// Runs a FlexibleRegion, switching configurations on request.
class RegionRunner {
public:
  RegionRunner(sim::Machine &M, const RuntimeCosts &Costs,
               const FlexibleRegion &Region, WorkSource &Source);
  ~RegionRunner();
  RegionRunner(const RegionRunner &) = delete;
  RegionRunner &operator=(const RegionRunner &) = delete;

  /// Launches execution under \p Initial.
  void start(RegionConfig Initial);

  /// Switches to \p Target. Asynchronous: in-flight iterations finish
  /// under the old configuration. Ignored if the region completed or a
  /// switch is already in progress (the request is coalesced into the
  /// pending one). Returns true if the request was accepted.
  bool reconfigure(RegionConfig Target);

  /// Abortive recovery (the Morta watchdog's fast path): kills in-flight
  /// iterations instead of draining them, rewinds the work source to the
  /// commit frontier, and resumes under \p Target from there. Requires a
  /// sequential tail (RegionExec::canAbort) and a rewindable source;
  /// otherwise falls back to the ordinary pause-drain reconfigure. Exactly
  /// once: everything below the frontier was emitted in order, everything
  /// above it re-executes. Returns true if a switch was accepted.
  bool recover(RegionConfig Target);

  /// Surgical restart (the watchdog's blame path): repairs one task of
  /// the current execution in place — no pause, no drain, no frontier
  /// rewind, no configuration change. Deliberately allowed while a
  /// transition is draining (the wedged task may be exactly what is
  /// blocking the drain); only the resume window, where no execution
  /// exists, rejects it. Returns what the execution actually did.
  RegionExec::RestartResult restartTask(unsigned TaskIdx);

  /// Workers terminated and respawned by surgical restarts.
  unsigned taskRestarts() const { return TaskRestarts; }

  /// True while a pause-drain-resume transition is in flight.
  bool transitioning() const { return Transitioning; }

  bool completed() const { return Completed; }
  const RegionConfig &config() const { return Config; }
  const FlexibleRegion &region() const { return Region; }
  sim::Machine &machine() { return M; }
  WorkSource &source() { return Source; }

  /// The current execution, if any (may be null mid-transition).
  RegionExec *exec() { return Exec.get(); }
  const RegionExec *exec() const { return Exec.get(); }

  /// The region's chunk-size policy. Owned here so the learned K
  /// survives reconfigurations; each execution tunes it online and
  /// degrades it to 1 around pause/drain. Benchmarks pin() it for
  /// fixed-K A/B runs.
  ChunkPolicy &chunkPolicy() { return Chunking; }
  const ChunkPolicy &chunkPolicy() const { return Chunking; }

  /// Iterations retired across all executions of this region.
  std::uint64_t totalRetired() const {
    return RetiredBase + (Exec ? Exec->iterationsRetired() : 0);
  }

  /// Number of reconfigurations applied (in-place + full).
  unsigned reconfigurations() const { return Reconfigurations; }
  /// Number that took the full pause-drain-resume path.
  unsigned fullPauses() const { return FullPauses; }
  /// Number that took the abortive recovery path.
  unsigned recoveries() const { return Recoveries; }

  /// Transient fault attempts across all executions of this region.
  std::uint64_t totalFaults() const {
    return FaultsBase + (Exec ? Exec->faultsInjected() : 0);
  }
  /// Retry-budget exhaustions across all executions.
  std::uint64_t totalEscalations() const {
    return EscalationsBase + (Exec ? Exec->escalations() : 0);
  }

  std::function<void()> OnComplete;
  /// Fires when a requested reconfiguration has fully taken effect.
  std::function<void()> OnReconfigured;
  /// Forwarded from the current execution: a transient fault exhausted
  /// its retry budget. The watchdog reacts by degrading the region.
  std::function<void(unsigned TaskIdx)> OnFaultEscalation;

private:
  void beginExec(RegionConfig C, std::uint64_t StartSeq);
  void onQuiescent();
  /// Arms the delayed resume. Pending is read when the delay fires, so a
  /// reconfigure/recover landing inside the window still takes effect.
  void scheduleResume(std::uint64_t StartSeq, sim::SimTime Delay);

  sim::Machine &M;
  const RuntimeCosts &Costs;
  const FlexibleRegion &Region;
  WorkSource &Source;

  RegionConfig Config;
  ChunkPolicy Chunking;
  std::unique_ptr<RegionExec> Exec;
  std::unique_ptr<RegionExec> Retiring; ///< kept alive until replaced
  RegionConfig Pending;
  bool Transitioning = false;
  bool Completed = false;
  bool Started = false;
  std::uint64_t RetiredBase = 0;
  unsigned Reconfigurations = 0;
  unsigned FullPauses = 0;
  unsigned Recoveries = 0;
  unsigned TaskRestarts = 0;
  std::uint64_t FaultsBase = 0;
  std::uint64_t EscalationsBase = 0;
  sim::SimTime PauseRequestedAt = 0;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
  /// Name of the open runner-lane span ("transition" or "recover"),
  /// closed when the resume fires; null when none is open.
  const char *TelOpenSpan = nullptr;
};

} // namespace parcae::rt

#endif // PARCAE_MORTA_REGIONRUNNER_H
