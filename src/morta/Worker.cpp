//===- Worker.cpp - The Morta worker loop (Algorithm 2) --------------------===//

#include "morta/Worker.h"

#include <algorithm>

using namespace parcae::rt;
using parcae::sim::Action;

Worker::Worker(RegionExec &R, unsigned TaskIdx, unsigned Slot,
               std::uint64_t CursorFrom)
    : R(R), TaskIdx(TaskIdx), Slot(Slot), T(R.Desc.Tasks[TaskIdx]),
      IsHead(TaskIdx == 0), IsTail(TaskIdx + 1 == R.Desc.numTasks()),
      CursorFrom(CursorFrom) {
  SendBufs.resize(R.outLinks(TaskIdx).size());
  // A worker counts as freshly beaten at spawn, so a replacement worker
  // is not immediately re-blamed for its predecessor's silence.
  LastBeatAt = R.machine().sim().now();
}

void Worker::beat() {
  LastBeatAt = R.machine().sim().now();
  R.beat(TaskIdx);
}

bool Worker::anyBuffered() const {
  for (const auto &Buf : SendBufs)
    if (!Buf.empty())
      return true;
  return false;
}

Action Worker::resume(sim::Machine &M, sim::SimThread &) {
  const RuntimeCosts &C = R.Costs;
  switch (St) {
  case State::Init:
    if (SpecResume) {
      // Speculative clone: re-pay the laggard's interrupted compute (the
      // functor itself must not re-run; see Worker.h). The cost lands in
      // ComputeTime a second time on purpose — the machine really does
      // execute the work twice.
      SpecResume = false;
      R.Stats[TaskIdx].ComputeTime += SpecCost;
      St = State::Compute;
      return Action::compute(C.ThreadSpawn + SpecCost);
    }
    St = State::Fetch;
    return Action::compute(C.ThreadSpawn + C.InitCost + T.InitCost);

  case State::Fetch:
    return stepFetch();

  case State::Recv: {
    auto &In = R.inLinks(TaskIdx);
    if (NextIn < In.size()) {
      // Nothing received yet: the iteration may have been invalidated by
      // a newly set bound (its tokens will never be produced) or
      // reassigned to another slot by an in-place reconfiguration (stale
      // cursor). Re-derive from Fetch in either case. Once the first
      // token has arrived, the iteration is committed to this slot and
      // all remaining tokens are guaranteed to come.
      if (NextIn == 0) {
        std::uint64_t B = std::min(R.PauseBound, R.EndBound);
        bool OutOfBounds = B != NoSeq && Cursor >= B;
        bool Stale =
            R.Schedules[TaskIdx].firstSeqFor(Slot, CursorFrom) != Cursor;
        if (OutOfBounds || Stale) {
          InIteration = false;
          St = State::Fetch;
          return Action::compute(0);
        }
      }
      Token Tok;
      if (!In[NextIn]->tryRecv(Slot, Cursor, Tok)) {
        // Before going idle, push out any batched output tokens once —
        // downstream should not wait on tokens this worker is merely
        // sitting on. Best effort: the pass never blocks on a full
        // window, and runs at most once per blocking episode.
        if (NextIn == 0 && !IdleFlushDone && anyBuffered()) {
          IdleFlushDone = true;
          FlushResume = State::Recv;
          FlushAll = true;
          St = State::Send;
          NextOut = 0;
          return Action::compute(0);
        }
        IdleFlushDone = false;
        LastWait = WaitKind::Channel;
        return Action::blockAny(In[NextIn]->dataAvail(Slot), R.BoundEvent);
      }
      Ctx.In.push_back(std::move(Tok));
      ++NextIn;
      // The chunk's first iteration pays the full per-transfer cost; the
      // rest ride the batched transfer at the marginal per-token rate.
      sim::SimTime RC = ChunkHead ? C.CommRecv : C.CommPerToken;
      R.Stats[TaskIdx].CommTime += RC;
      return Action::compute(RC);
    }
    // All inputs in hand: run the functor and charge its cost.
    return runFunctor(M);
  }

  case State::Backoff: {
    // A transient fault was injected; wait out the exponential backoff,
    // then retry the attempt. The functor has NOT run (faults fire before
    // it), so retrying cannot duplicate side effects.
    sim::SimTime Now = M.sim().now();
    if (!BackoffArmed) {
      BackoffArmed = true;
      M.sim().schedule(RetryAt > Now ? RetryAt - Now : 0,
                       [this] { RetryEvent.notifyAll(); });
    }
    if (Now < RetryAt) {
      LastWait = WaitKind::Retry;
      return Action::block(RetryEvent);
    }
    BackoffArmed = false;
    return runFunctor(M);
  }

  case State::Compute:
    // Main compute already charged when entering; proceed to criticals.
    St = State::Critical;
    return Action::compute(0);

  case State::Critical: {
    if (NextCrit < Ctx.Criticals.size()) {
      const CriticalSection &CS = Ctx.Criticals[NextCrit];
      SimLock &L = R.lockFor(CS.LockId);
      if (!CritHeld) {
        if (!L.tryAcquire()) {
          LastWait = WaitKind::Lock;
          return Action::block(L.released());
        }
        CritHeld = true;
        R.Stats[TaskIdx].ComputeTime += CS.Cycles;
        return Action::compute(C.LockCost + CS.Cycles);
      }
      L.release();
      CritHeld = false;
      ++NextCrit;
      return Action::compute(0);
    }
    // Stage this iteration's outputs into the per-link batch buffers;
    // the Send pass decides which buffers are ripe for a flush.
    {
      auto &Out = R.outLinks(TaskIdx);
      for (std::size_t I = 0; I < Out.size(); ++I)
        SendBufs[I].push_back(std::move(Ctx.Out[I]));
    }
    FlushAll = ChunkIters <= 1; // chunk ends with this iteration
    St = State::Send;
    NextOut = 0;
    return Action::compute(0);
  }

  case State::Send:
    return stepSend();

  case State::IterDone:
    ++R.Stats[TaskIdx].Iterations;
    R.noteIteration(TaskIdx);
    beat();
    if (IsTail)
      R.retireIteration(TaskIdx);
    InIteration = false;
    CursorFrom = Cursor + 1;
    R.updateLowWater(TaskIdx);
    if (ChunkIters > 0)
      --ChunkIters;
    IdleFlushDone = false;
    St = State::Fetch;
    return Action::compute(0);

  case State::Finish:
    St = State::Exit;
    R.onWorkerExit(this, ExitStatus);
    return Action::finish();

  case State::Exit:
    break;
  }
  assert(false && "worker resumed in a terminal state");
  return Action::finish();
}

Action Worker::stepFetch() {
  if (IsHead) {
    // Unstarted items of the current chunk come first.
    if (ChunkNext < Chunk.size()) {
      std::uint64_t Bound = std::min(R.PauseBound, R.EndBound);
      std::uint64_t SeqNext = ChunkStart + ChunkNext;
      std::uint64_t Remaining = Chunk.size() - ChunkNext;
      // Give-back is only history-consistent when the unstarted items
      // are the contiguous tail of the claim space: then this worker's
      // pulls were the source's last pulls and rewind() returns exactly
      // these items.
      bool ContigTail = ChunkStart + Chunk.size() == R.NextSeq;
      // Items at/beyond the bound must not run. Only the end of the
      // stream can cut a chunk — a pause bound is set at the claim
      // frontier, above every claimed seq.
      bool Cut = Bound != NoSeq && SeqNext >= Bound;
      // Shedding: a pausing or retiring worker hands its unstarted tail
      // back so the drain is as short as with chunk size 1 (this is what
      // keeps reconfigure latency flat as K grows).
      bool Shed = R.PauseBound != NoSeq ||
                  Slot >= R.Schedules[TaskIdx].currentWidth();
      if (((Cut || Shed) && ContigTail && R.giveBackChunk(Remaining)) ||
          Cut) {
        // Given back — or beyond end-of-stream with later claims in the
        // way, in which case the items describe iterations that do not
        // exist and are dropped.
        Chunk.clear();
        ChunkNext = 0;
        ChunkIters = 0;
      }
      if (ChunkNext < Chunk.size()) {
        // Wedge injection fires strictly before the iteration starts: no
        // token has been consumed, no functor has run, and the unstarted
        // chunk tail (including this item) is intact for give-back when
        // the watchdog restarts the task.
        if (!Wedged && R.machine().takeWedge(T.name(), ChunkStart + ChunkNext))
          Wedged = true;
        if (Wedged) {
          LastWait = WaitKind::None;
          return Action::block(WedgeHang);
        }
        Cursor = ChunkStart + ChunkNext;
        ChunkHead = false;
        Token Item = std::move(Chunk[ChunkNext]);
        ++ChunkNext;
        return beginIteration(std::move(Item));
      }
    }

    // Recompute: a give-back above may have just clamped the bounds.
    std::uint64_t Bound = std::min(R.PauseBound, R.EndBound);
    // A head slot whose slot index fell out of the current DoP retires.
    if (Slot >= R.Schedules[TaskIdx].currentWidth())
      return finishWith(TaskStatus::Paused);
    if (Bound != NoSeq && R.NextSeq >= Bound)
      return finishWith(R.EndBound <= R.PauseBound ? TaskStatus::Complete
                                                   : TaskStatus::Paused);
    std::uint64_t K = R.chunkKFor(TaskIdx);
    if (Bound != NoSeq)
      K = std::min(K, Bound - R.NextSeq);
    Chunk.clear();
    ChunkNext = 0;
    switch (R.Source.tryPullChunk(std::max<std::uint64_t>(K, 1), Chunk)) {
    case WorkSource::Pull::Wait:
      // Going idle: opportunistically push out batched tokens first so
      // downstream is not starved by a quiet source (at most one pass
      // per idle episode; the pass never blocks on a full window).
      if (!IdleFlushDone && anyBuffered()) {
        IdleFlushDone = true;
        FlushResume = State::Fetch;
        FlushAll = true;
        St = State::Send;
        NextOut = 0;
        return Action::compute(0);
      }
      IdleFlushDone = false;
      LastWait = WaitKind::Source;
      return Action::blockAny(R.Source.readyEvent(), R.BoundEvent);
    case WorkSource::Pull::End:
      if (R.EndBound == NoSeq) {
        R.EndBound = R.NextSeq;
        R.BoundEvent.notifyAll();
      }
      return finishWith(TaskStatus::Complete);
    case WorkSource::Pull::Got:
      break;
    }
    ChunkStart = R.NextSeq;
    R.NextSeq += Chunk.size();
    ChunkIters = Chunk.size();
    ChunkHead = true;
    Cursor = ChunkStart;
    // Wedge check on the fresh claim, with ChunkNext still 0: the whole
    // chunk is unstarted and contiguous with the claim frontier, so a
    // restart gives every item back to the source.
    if (!Wedged && R.machine().takeWedge(T.name(), ChunkStart))
      Wedged = true;
    if (Wedged) {
      LastWait = WaitKind::None;
      return Action::block(WedgeHang);
    }
    Token Item = std::move(Chunk.front());
    ChunkNext = 1;
    return beginIteration(std::move(Item));
  }

  std::uint64_t Bound = std::min(R.PauseBound, R.EndBound);
  Cursor = R.Schedules[TaskIdx].firstSeqFor(Slot, CursorFrom);
  if (Cursor == NoSeq)
    return finishWith(TaskStatus::Paused); // slot retired by DoP decrease
  if (Bound != NoSeq && Cursor >= Bound)
    return finishWith(R.EndBound <= R.PauseBound ? TaskStatus::Complete
                                                 : TaskStatus::Paused);
  // Wedge check before any token is received: the iteration is still
  // re-derivable by a replacement worker from the same cursor.
  if (!Wedged && R.machine().takeWedge(T.name(), Cursor))
    Wedged = true;
  if (Wedged) {
    LastWait = WaitKind::None;
    return Action::block(WedgeHang);
  }
  // Non-head tasks chunk purely for cost grouping: every K-th owned
  // iteration opens a new cost group and pays the per-chunk fixed costs.
  if (ChunkIters == 0) {
    ChunkIters = R.chunkKFor(TaskIdx);
    ChunkHead = true;
  } else {
    ChunkHead = false;
  }
  InIteration = true;
  Ctx.In.clear();
  NextIn = 0;
  St = State::Recv;
  return Action::compute(0);
}

Action Worker::beginIteration(Token Item) {
  InIteration = true;
  Ctx.In.clear();
  Ctx.In.push_back(std::move(Item));
  NextIn = 0;
  assert(R.inLinks(TaskIdx).empty() && "head task cannot have in-links");
  return runFunctor(R.machine());
}

Action Worker::stepSend() {
  const RuntimeCosts &C = R.Costs;
  auto &Out = R.outLinks(TaskIdx);
  // An opportunistic pre-idle pass must not trade one block for another;
  // a finish-flush must drain and may block.
  bool BestEffort = FlushResume.has_value() && !PendingFinish;
  while (NextOut < Out.size()) {
    auto &Buf = SendBufs[NextOut];
    // Tokens at/beyond the end of the stream will never be claimed —
    // consumers drain strictly below the bound. Ascending Seq makes the
    // dead tokens a droppable suffix.
    if (R.EndBound != NoSeq)
      while (!Buf.empty() && Buf.back().Seq >= R.EndBound)
        Buf.pop_back();
    std::uint64_t FlushAt =
        std::max<std::uint64_t>(1, Out[NextOut]->window() / 2);
    bool Ripe = !Buf.empty() &&
                (FlushAll || PendingFinish || Buf.size() >= FlushAt);
    if (!Ripe) {
      ++NextOut;
      continue;
    }
    std::size_t Sent = Out[NextOut]->trySendBatch(Buf.data(), Buf.size());
    if (Sent == 0) {
      if (BestEffort) {
        ++NextOut; // window full; leave the buffer for a later pass
        continue;
      }
      LastWait = WaitKind::Channel;
      return Action::block(Out[NextOut]->spaceAvail());
    }
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<std::ptrdiff_t>(Sent));
    // One batched transfer: fixed cost once, marginal cost per extra.
    sim::SimTime Cost =
        C.CommSend + static_cast<sim::SimTime>(Sent - 1) * C.CommPerToken;
    R.Stats[TaskIdx].CommTime += Cost;
    if (Buf.empty())
      ++NextOut;
    return Action::compute(Cost); // pay the transfer, continue the pass
  }
  FlushAll = false;
  if (PendingFinish) {
    TaskStatus S = *PendingFinish;
    PendingFinish.reset();
    FlushResume.reset();
    return doFinish(S);
  }
  if (FlushResume) {
    St = *FlushResume;
    FlushResume.reset();
    return Action::compute(0);
  }
  St = State::IterDone;
  return Action::compute(0);
}

Action Worker::runFunctor(sim::Machine &M) {
  const RuntimeCosts &C = R.Costs;
  beat();
  // Transient fault injection: the plan says the first FailCount attempts
  // of this (task, seq) fault before the functor runs. Burn the attempt
  // cost, back off exponentially, retry. The functor only ever executes
  // on the first non-faulting attempt — exactly once per iteration.
  if (Attempt < M.transientFailCount(T.name(), Cursor)) {
    ++Attempt;
    R.noteFault(TaskIdx, Cursor, Attempt);
    unsigned Shift = std::min(Attempt - 1, 16u);
    sim::SimTime Backoff =
        std::min(C.FaultRetryBackoff << Shift, C.FaultRetryBackoffMax);
    RetryAt = M.sim().now() + C.FaultAttemptCost + Backoff;
    BackoffArmed = false;
    St = State::Backoff;
    return Action::compute(C.FaultAttemptCost);
  }
  Attempt = 0;
  Ctx.Seq = Cursor;
  Ctx.Slot = Slot;
  Ctx.Now = M.sim().now();
  Ctx.Cost = 0;
  Ctx.Gang = 1;
  Ctx.EndOfStream = false;
  Ctx.Criticals.clear();
  Ctx.Out.assign(R.outLinks(TaskIdx).size(), Token{});
  for (Token &O : Ctx.Out)
    O.Seq = Cursor;

  T.Fn(Ctx);
  // The functor's side effects are now durable. For a sequential tail
  // they happened in iteration order, so the commit frontier advances
  // HERE — an abort landing between the functor and IterDone must not
  // re-execute this iteration (that would duplicate the side effects).
  if (IsTail && !T.isParallel())
    R.noteTailCommit(Cursor);

  if (Ctx.EndOfStream) {
    // The loop's own exit condition fired: no iteration beyond this one.
    assert(IsHead && "only the head task can end the stream");
    if (Cursor + 1 < R.EndBound) {
      R.EndBound = Cursor + 1;
      R.BoundEvent.notifyAll();
    }
  }

  if (T.Reduction) {
    if (C.PrivatizedReductions)
      UsedReduction = true; // local accumulation, merged at exit
    else
      Ctx.Criticals.push_back(*T.Reduction);
  }
  NextCrit = 0;
  CritHeld = false;

  // Fixed Morta/Decima machinery costs are paid once per chunk, by its
  // first iteration; at chunk size 1 every iteration is a chunk head and
  // this degenerates to the classic per-iteration accounting.
  sim::SimTime Overhead = 0;
  if (ChunkHead) {
    Overhead += C.HookCost;
    if (IsHead)
      Overhead += C.StatusQuery; // master's per-chunk get_status()
  }
  if (!C.OptimizedDataManagement) {
    Overhead += C.TaskActivation; // yield to the task-activation loop
    if (T.type() == TaskType::Seq)
      Overhead += C.HeapSpill; // save/reload cross-iteration state
  }
  sim::SimTime Total = Ctx.Cost + Overhead + PendingCost;
  PendingCost = 0;
  R.Stats[TaskIdx].ComputeTime += Ctx.Cost;
  R.Stats[TaskIdx].OverheadTime += Overhead;
  St = State::Compute;
  if (Ctx.Gang > 1)
    return Action::gangCompute(Ctx.Gang, Total);
  return Action::compute(Total);
}

Action Worker::finishWith(TaskStatus S) {
  if (anyBuffered()) {
    // Flush batched tokens first: every buffered token below the bound
    // has a consumer draining toward it.
    PendingFinish = S;
    FlushAll = true;
    St = State::Send;
    NextOut = 0;
    return Action::compute(0);
  }
  return doFinish(S);
}

Action Worker::doFinish(TaskStatus S) {
  const RuntimeCosts &C = R.Costs;
  ExitStatus = S;
  St = State::Finish;
  sim::SimTime Cost = T.FiniCost + C.BarrierCost;
  if (UsedReduction)
    Cost += C.ReduceMergeCost;
  return Action::compute(Cost);
}
