//===- Worker.cpp - The Morta worker loop (Algorithm 2) --------------------===//

#include "morta/Worker.h"

#include <algorithm>

using namespace parcae::rt;
using parcae::sim::Action;

Worker::Worker(RegionExec &R, unsigned TaskIdx, unsigned Slot,
               std::uint64_t CursorFrom)
    : R(R), TaskIdx(TaskIdx), Slot(Slot), T(R.Desc.Tasks[TaskIdx]),
      IsHead(TaskIdx == 0), IsTail(TaskIdx + 1 == R.Desc.numTasks()),
      CursorFrom(CursorFrom) {}

Action Worker::resume(sim::Machine &M, sim::SimThread &) {
  const RuntimeCosts &C = R.Costs;
  switch (St) {
  case State::Init:
    St = State::Fetch;
    return Action::compute(C.ThreadSpawn + C.InitCost + T.InitCost);

  case State::Fetch:
    return stepFetch();

  case State::Recv: {
    auto &In = R.inLinks(TaskIdx);
    if (NextIn < In.size()) {
      // Nothing received yet: the iteration may have been invalidated by
      // a newly set bound (its tokens will never be produced) or
      // reassigned to another slot by an in-place reconfiguration (stale
      // cursor). Re-derive from Fetch in either case. Once the first
      // token has arrived, the iteration is committed to this slot and
      // all remaining tokens are guaranteed to come.
      if (NextIn == 0) {
        std::uint64_t B = std::min(R.PauseBound, R.EndBound);
        bool OutOfBounds = B != NoSeq && Cursor >= B;
        bool Stale =
            R.Schedules[TaskIdx].firstSeqFor(Slot, CursorFrom) != Cursor;
        if (OutOfBounds || Stale) {
          InIteration = false;
          St = State::Fetch;
          return Action::compute(0);
        }
      }
      Token Tok;
      if (!In[NextIn]->tryRecv(Slot, Cursor, Tok))
        return Action::blockAny(In[NextIn]->dataAvail(Slot), R.BoundEvent);
      Ctx.In.push_back(std::move(Tok));
      ++NextIn;
      R.Stats[TaskIdx].CommTime += C.CommRecv;
      return Action::compute(C.CommRecv);
    }
    // All inputs in hand: run the functor and charge its cost.
    return runFunctor(M);
  }

  case State::Backoff: {
    // A transient fault was injected; wait out the exponential backoff,
    // then retry the attempt. The functor has NOT run (faults fire before
    // it), so retrying cannot duplicate side effects.
    sim::SimTime Now = M.sim().now();
    if (!BackoffArmed) {
      BackoffArmed = true;
      M.sim().schedule(RetryAt > Now ? RetryAt - Now : 0,
                       [this] { RetryEvent.notifyAll(); });
    }
    if (Now < RetryAt)
      return Action::block(RetryEvent);
    BackoffArmed = false;
    return runFunctor(M);
  }

  case State::Compute:
    // Main compute already charged when entering; proceed to criticals.
    St = State::Critical;
    return Action::compute(0);

  case State::Critical: {
    if (NextCrit < Ctx.Criticals.size()) {
      const CriticalSection &CS = Ctx.Criticals[NextCrit];
      SimLock &L = R.lockFor(CS.LockId);
      if (!CritHeld) {
        if (!L.tryAcquire())
          return Action::block(L.released());
        CritHeld = true;
        R.Stats[TaskIdx].ComputeTime += CS.Cycles;
        return Action::compute(C.LockCost + CS.Cycles);
      }
      L.release();
      CritHeld = false;
      ++NextCrit;
      return Action::compute(0);
    }
    St = State::Send;
    NextOut = 0;
    return Action::compute(0);
  }

  case State::Send: {
    auto &Out = R.outLinks(TaskIdx);
    if (NextOut < Out.size()) {
      if (!Out[NextOut]->trySend(Ctx.Out[NextOut]))
        return Action::block(Out[NextOut]->spaceAvail());
      ++NextOut;
      R.Stats[TaskIdx].CommTime += C.CommSend;
      return Action::compute(C.CommSend);
    }
    St = State::IterDone;
    return Action::compute(0);
  }

  case State::IterDone:
    ++R.Stats[TaskIdx].Iterations;
    R.noteIteration(TaskIdx);
    R.beat(TaskIdx);
    if (IsTail)
      R.retireIteration(TaskIdx);
    InIteration = false;
    CursorFrom = Cursor + 1;
    R.updateLowWater(TaskIdx);
    St = State::Fetch;
    return Action::compute(0);

  case State::Finish:
    St = State::Exit;
    R.onWorkerExit(this, ExitStatus);
    return Action::finish();

  case State::Exit:
    break;
  }
  assert(false && "worker resumed in a terminal state");
  return Action::finish();
}

Action Worker::stepFetch() {
  std::uint64_t Bound = std::min(R.PauseBound, R.EndBound);

  if (IsHead) {
    // A head slot whose slot index fell out of the current DoP retires.
    if (Slot >= R.Schedules[TaskIdx].currentWidth())
      return finishWith(TaskStatus::Paused);
    if (Bound != NoSeq && R.NextSeq >= Bound)
      return finishWith(R.EndBound <= R.PauseBound ? TaskStatus::Complete
                                                   : TaskStatus::Paused);
    Token Item;
    switch (R.Source.tryPull(Item)) {
    case WorkSource::Pull::Wait:
      return Action::blockAny(R.Source.readyEvent(), R.BoundEvent);
    case WorkSource::Pull::End:
      if (R.EndBound == NoSeq) {
        R.EndBound = R.NextSeq;
        R.BoundEvent.notifyAll();
      }
      return finishWith(TaskStatus::Complete);
    case WorkSource::Pull::Got:
      break;
    }
    Cursor = R.NextSeq++;
    InIteration = true;
    Ctx.In.clear();
    Ctx.In.push_back(std::move(Item));
    NextIn = 0;
    assert(R.inLinks(TaskIdx).empty() && "head task cannot have in-links");
    return runFunctor(R.machine());
  }

  Cursor = R.Schedules[TaskIdx].firstSeqFor(Slot, CursorFrom);
  if (Cursor == NoSeq)
    return finishWith(TaskStatus::Paused); // slot retired by DoP decrease
  if (Bound != NoSeq && Cursor >= Bound)
    return finishWith(R.EndBound <= R.PauseBound ? TaskStatus::Complete
                                                 : TaskStatus::Paused);
  InIteration = true;
  Ctx.In.clear();
  NextIn = 0;
  St = State::Recv;
  return Action::compute(0);
}

Action Worker::runFunctor(sim::Machine &M) {
  const RuntimeCosts &C = R.Costs;
  R.beat(TaskIdx);
  // Transient fault injection: the plan says the first FailCount attempts
  // of this (task, seq) fault before the functor runs. Burn the attempt
  // cost, back off exponentially, retry. The functor only ever executes
  // on the first non-faulting attempt — exactly once per iteration.
  if (Attempt < M.transientFailCount(T.name(), Cursor)) {
    ++Attempt;
    R.noteFault(TaskIdx, Cursor, Attempt);
    unsigned Shift = std::min(Attempt - 1, 16u);
    sim::SimTime Backoff =
        std::min(C.FaultRetryBackoff << Shift, C.FaultRetryBackoffMax);
    RetryAt = M.sim().now() + C.FaultAttemptCost + Backoff;
    BackoffArmed = false;
    St = State::Backoff;
    return Action::compute(C.FaultAttemptCost);
  }
  Attempt = 0;
  Ctx.Seq = Cursor;
  Ctx.Slot = Slot;
  Ctx.Now = M.sim().now();
  Ctx.Cost = 0;
  Ctx.Gang = 1;
  Ctx.EndOfStream = false;
  Ctx.Criticals.clear();
  Ctx.Out.assign(R.outLinks(TaskIdx).size(), Token{});
  for (Token &O : Ctx.Out)
    O.Seq = Cursor;

  T.Fn(Ctx);
  // The functor's side effects are now durable. For a sequential tail
  // they happened in iteration order, so the commit frontier advances
  // HERE — an abort landing between the functor and IterDone must not
  // re-execute this iteration (that would duplicate the side effects).
  if (IsTail && !T.isParallel())
    R.noteTailCommit(Cursor);

  if (Ctx.EndOfStream) {
    // The loop's own exit condition fired: no iteration beyond this one.
    assert(IsHead && "only the head task can end the stream");
    if (Cursor + 1 < R.EndBound) {
      R.EndBound = Cursor + 1;
      R.BoundEvent.notifyAll();
    }
  }

  if (T.Reduction) {
    if (C.PrivatizedReductions)
      UsedReduction = true; // local accumulation, merged at exit
    else
      Ctx.Criticals.push_back(*T.Reduction);
  }
  NextCrit = 0;
  CritHeld = false;

  sim::SimTime Total = Ctx.Cost + C.HookCost + PendingCost;
  PendingCost = 0;
  if (IsHead)
    Total += C.StatusQuery; // master's per-iteration get_status()
  if (!C.OptimizedDataManagement) {
    Total += C.TaskActivation; // yield to the task-activation loop
    if (T.type() == TaskType::Seq)
      Total += C.HeapSpill; // save/reload cross-iteration state
  }
  R.Stats[TaskIdx].ComputeTime += Ctx.Cost;
  St = State::Compute;
  if (Ctx.Gang > 1)
    return Action::gangCompute(Ctx.Gang, Total);
  return Action::compute(Total);
}

Action Worker::finishWith(TaskStatus S) {
  const RuntimeCosts &C = R.Costs;
  ExitStatus = S;
  St = State::Finish;
  sim::SimTime Cost = T.FiniCost + C.BarrierCost;
  if (UsedReduction)
    Cost += C.ReduceMergeCost;
  return Action::compute(Cost);
}
