//===- RegionExec.h - Flexible execution of one parallel region -*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes one parallelization (RegionDesc) of a region on the simulated
/// machine under a parallelism configuration, with the full flexible
/// execution protocol of the paper:
///
///  * Workers implement Algorithm 2: fetch an instance, run one iteration,
///    return task_iterating / task_paused / task_complete, and synchronize
///    at the region barrier when pausing or completing.
///  * The head (master) task claims iterations from the region's
///    WorkSource; pause signals bound the claimed iteration space exactly
///    like the master's get_status() check at the top of each iteration
///    (Section 4.6), and every other task drains all iterations below the
///    bound before pausing — the channel-flush of the pause protocol.
///  * DoP-only reconfigurations can be applied in place via the
///    iteration-count handoff of Section 7.2 (optimized barrier): the
///    consumer-side channel width switches from m to n exactly at the
///    master iteration count I, preserving round-robin order (Figure 7.5).
///  * Scheme switches and unoptimized mode use the full pause-drain-resume
///    path, whose cost the Chapter 7 ablation measures.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MORTA_REGIONEXEC_H
#define PARCAE_MORTA_REGIONEXEC_H

#include "core/Chunking.h"
#include "core/Costs.h"
#include "core/Link.h"
#include "core/Lock.h"
#include "core/Region.h"
#include "core/Task.h"
#include "core/WidthSchedule.h"
#include "core/WorkSource.h"
#include "sim/Machine.h"
#include "telemetry/Telemetry.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace parcae::rt {

class Worker;

/// Per-task counters Decima reads (Section 4.7's hooks feed these).
struct TaskStats {
  std::uint64_t Iterations = 0;
  sim::SimTime ComputeTime = 0;
  sim::SimTime CommTime = 0;
  /// Morta/Decima machinery cycles (hooks, status queries, activation
  /// loop): the overhead Section 8.3.6 argues is small — and chunking
  /// amortizes. Distinct from CommTime, which channel batching shrinks.
  sim::SimTime OverheadTime = 0;
};

/// Runs one RegionDesc under one configuration until the work source ends
/// or a pause drains it.
class RegionExec {
public:
  /// \p StartSeq is the first iteration index this execution will claim
  /// (nonzero when resuming after a reconfiguration or scheme switch).
  RegionExec(sim::Machine &M, const RuntimeCosts &Costs,
             const RegionDesc &Desc, WorkSource &Source, RegionConfig Config,
             std::uint64_t StartSeq = 0);
  ~RegionExec();
  RegionExec(const RegionExec &) = delete;
  RegionExec &operator=(const RegionExec &) = delete;

  /// Spawns the initial workers.
  void start();

  // --- Morta-facing control -------------------------------------------

  /// Signals the master to pause; all tasks drain iterations below the
  /// bound and exit. OnQuiescent fires when the last worker leaves.
  void requestPause();

  /// Applies a DoP-only change in place (optimized barrier, Section 7.2).
  /// Requires the optimized-barrier cost switch and the same scheme.
  void reconfigureInPlace(const std::vector<unsigned> &NewDoP);

  /// True when a DoP-only switch to \p NewDoP can avoid the full barrier.
  bool canReconfigureInPlace() const;

  bool running() const { return ActiveWorkers > 0; }
  bool completed() const { return Completed; }
  bool pauseRequested() const { return PauseBound != NoSeq; }

  /// Master iteration count: the next iteration index the head will claim.
  std::uint64_t nextSeq() const { return NextSeq; }

  /// First iteration this execution claimed.
  std::uint64_t startSeq() const { return StartSeq; }

  // --- Fault recovery (Morta watchdog) --------------------------------

  /// Iterations whose side effects are durable: every iteration below the
  /// frontier has been emitted by the sequential tail in order. Work in
  /// [frontier, nextSeq()) is in flight and safe to re-execute after an
  /// abort — the basis of the exactly-once guarantee.
  std::uint64_t commitFrontier() const { return CommitFrontier; }

  /// Abortive recovery applies only when the tail is sequential: a
  /// parallel tail commits out of order, so in-flight iterations may have
  /// already emitted and re-running them would duplicate side effects.
  bool canAbort() const {
    return Started && !Completed && !Desc.Tasks.back().isParallel();
  }

  /// Kills every worker immediately (no drain). In-flight iterations are
  /// discarded; the caller rewinds the work source to commitFrontier()
  /// and starts a fresh execution there. Neither OnQuiescent nor
  /// OnComplete fires.
  void abort();

  /// Last virtual time task \p TaskIdx showed liveness (an iteration
  /// retired, a fetch, or a fault attempt).
  sim::SimTime lastHeartbeat(unsigned TaskIdx) const {
    assert(TaskIdx < LastBeat.size());
    return LastBeat[TaskIdx];
  }

  // --- Surgical restart (heartbeat blame) -----------------------------

  /// Verdict of a blame scan over the per-worker heartbeats.
  struct BlameVerdict {
    bool Blamed = false;  ///< one task is confidently at fault
    unsigned TaskIdx = 0; ///< the task to restart (valid when Blamed)
    sim::SimTime OldestBeat = 0; ///< oldest culprit beat (when any culprit)
    unsigned CulpritTasks = 0;   ///< tasks with >= 1 culprit worker
    unsigned CulpritWorkers = 0; ///< culprit workers across all tasks
  };

  /// Scans every live worker for culprits — threads stranded on a dead
  /// core, or blocked outside every runtime wait (wedged in user code) —
  /// and blames the task whose oldest culprit beat is past \p Threshold.
  /// The verdict is ambiguous (Blamed = false) when a second task's
  /// culprit is within \p Margin of the oldest: restarting one task on
  /// thin evidence while another is equally silent risks restarting the
  /// victim, so the caller falls back to abortive recovery.
  BlameVerdict blameScan(sim::SimTime Now, sim::SimTime Threshold,
                         sim::SimTime Margin) const;

  /// Outcome of a surgical task restart.
  struct RestartResult {
    unsigned Restarted = 0; ///< wedged workers terminated and respawned
    unsigned Rescued = 0;   ///< stranded threads re-queued in place
  };

  /// Repairs one task without disturbing the rest of the region: rescues
  /// its stranded threads, and terminates + respawns its wedged workers at
  /// their current position. A wedged worker is pre-consumption by
  /// construction (blocked before receiving any token or running the
  /// functor), so its iteration is re-derivable: buffered output tokens
  /// are salvaged into the replacement, and a wedged head's unstarted
  /// chunk tail is given back to the source (a worker whose claim cannot
  /// be returned is skipped — the caller's fallback handles it). No
  /// drain, no frontier rewind, no quiescence callbacks.
  RestartResult restartTask(unsigned TaskIdx);

  // --- Speculative re-issue (straggler avoidance) ---------------------

  /// Outcome of a speculative re-issue attempt.
  struct SpeculateResult {
    bool Issued = false;
    unsigned TaskIdx = 0;  ///< task of the re-issued iteration (when Issued)
    std::uint64_t Seq = 0; ///< iteration cloned onto a backup (when Issued)
  };

  /// Serving-mode straggler speculation: when commit progress stalls, the
  /// watchdog calls this to re-issue the laggard — the in-flight worker
  /// holding the oldest iteration — onto a backup worker, provided the
  /// laggard is mid main-compute on a *penalized* core and has been silent
  /// for at least \p AgeThreshold. The loser is cancelled first via the
  /// existing epoch-cancel machinery (Machine::terminate bumps its core's
  /// slice epoch), so it can never reach IterDone: the clone's retirement
  /// past the frontier is the only one — first past the frontier wins,
  /// exactly-once retirement preserved. The clone inherits the iteration's
  /// full state (inputs, functor outputs, chunk claim, unsent send
  /// buffers) and re-pays only the compute charge; slow-core-aware
  /// placement then lands it on a healthy core.
  SpeculateResult speculateLaggard(sim::SimTime Now, sim::SimTime AgeThreshold);

  /// Speculative re-issues performed in this execution.
  std::uint64_t speculations() const { return Speculations; }

  /// Transient fault attempts observed in this execution.
  std::uint64_t faultsInjected() const { return FaultsInjected; }
  /// Faults whose retries exhausted Costs.MaxFaultRetries.
  std::uint64_t escalations() const { return Escalations; }

  /// Fires (once) when a transient fault exhausts its retry budget; the
  /// watchdog degrades the region (typically to SEQ, whose distinct task
  /// names dodge the planned fault).
  std::function<void(unsigned TaskIdx)> OnFaultEscalation;

  const RegionConfig &config() const { return Config; }
  const RegionDesc &desc() const { return Desc; }

  /// Fires when all workers have exited after a pause (drained state).
  std::function<void()> OnQuiescent;
  /// Fires when the region completes (work source exhausted and drained).
  std::function<void()> OnComplete;
  /// Fires after each retirement with the execution's cumulative retired
  /// count (the tail's commit progress). Left null on the hot path by
  /// default; the serve broker uses it for per-request completion
  /// attribution inside a batched region.
  std::function<void(std::uint64_t Retired)> OnProgress;

  // --- Decima-facing monitoring ---------------------------------------

  const TaskStats &stats(unsigned TaskIdx) const {
    assert(TaskIdx < Stats.size());
    return Stats[TaskIdx];
  }

  /// Iterations fully retired (seen by the tail task).
  std::uint64_t iterationsRetired() const { return IterationsRetired; }

  /// Workload on a task: its LoadCB if registered, the work-queue
  /// occupancy for the head, or the input-channel occupancy otherwise.
  double loadOf(unsigned TaskIdx) const;

  unsigned numTasks() const { return Desc.numTasks(); }
  sim::Machine &machine() { return M; }
  const RuntimeCosts &costs() const { return Costs; }

  // --- Chunked claiming -----------------------------------------------

  /// Installs the chunk-size policy (owned by the RegionRunner so the
  /// learned K survives reconfigurations). Null — the default for
  /// directly constructed executions — means chunk size 1, i.e. the
  /// classic one-claim-per-iteration protocol.
  void setChunkPolicy(ChunkPolicy *P) { Chunking = P; }

  /// Deepest channel occupancy as a fraction of its admission window;
  /// the policy's load-imbalance shrink signal.
  double maxLinkPressure() const;

private:
  /// Chunk size task \p TaskIdx should use for its next chunk: the
  /// policy's K clamped so a chunk never overfills a downstream channel
  /// window, degraded to 1 while a pause is draining.
  std::uint64_t chunkKFor(unsigned TaskIdx) const;

  /// Returns the head's last \p Count claimed-but-unstarted iterations
  /// to the source and lowers NextSeq (and a pending PauseBound) to
  /// match. Only legal when those iterations are the contiguous tail of
  /// the claim space — the caller checks. Returns false when the source
  /// cannot replay them (the worker drains the chunk instead).
  bool giveBackChunk(std::uint64_t Count);

private:
  friend class Worker;

  /// Worker callbacks.
  void onWorkerExit(Worker *W, TaskStatus Status);
  void updateLowWater(unsigned TaskIdx);
  void retireIteration(unsigned TaskIdx);
  /// One DCAFE-style tuning step of the chunk policy from live stats.
  void retuneChunking();
  /// Liveness heartbeat: the watchdog's stall detector reads these.
  void beat(unsigned TaskIdx) { LastBeat[TaskIdx] = M.sim().now(); }
  /// Records a transient fault attempt; escalates past the retry budget.
  void noteFault(unsigned TaskIdx, std::uint64_t Seq, unsigned Attempt);
  /// Advances the commit frontier after the sequential tail emits \p Seq.
  void noteTailCommit(std::uint64_t Seq) {
    if (Seq + 1 > CommitFrontier)
      CommitFrontier = Seq + 1;
  }
  /// Telemetry hook after a task finishes one iteration: samples the
  /// per-task iteration counter (every 64th to bound trace size).
  void noteIteration(unsigned TaskIdx) {
    if (Tel && (Stats[TaskIdx].Iterations & 63) == 0)
      Tel->counter(TelPid, 1 + TaskIdx, "task",
                   "iters:" + Desc.Tasks[TaskIdx].name(),
                   static_cast<double>(Stats[TaskIdx].Iterations));
  }
  SimLock &lockFor(int LockId);

  /// Spawns a worker for (\p TaskIdx, \p Slot). \p Salvage, when non-null,
  /// is installed as the new worker's send buffers *before* its thread can
  /// run — tokens a restarted predecessor produced but had not flushed.
  /// \p CloneOf, when non-null, additionally copies the (terminated)
  /// predecessor's in-flight iteration state so the new worker resumes it
  /// at the compute charge (speculative re-issue; see speculateLaggard).
  Worker *spawnWorker(unsigned TaskIdx, unsigned Slot, std::uint64_t CursorFrom,
                      std::vector<std::vector<Token>> *Salvage = nullptr,
                      const Worker *CloneOf = nullptr);

  std::vector<Link *> &inLinks(unsigned TaskIdx) { return InLinks[TaskIdx]; }
  std::vector<Link *> &outLinks(unsigned TaskIdx) { return OutLinks[TaskIdx]; }

  sim::Machine &M;
  const RuntimeCosts &Costs;
  const RegionDesc &Desc;
  WorkSource &Source;
  RegionConfig Config;

  /// Next iteration the head claims; bounds below refer to this space.
  std::uint64_t NextSeq;
  /// Iterations >= PauseBound are not executed in this exec (NoSeq: none).
  std::uint64_t PauseBound = NoSeq;
  /// Set when the source ends: iterations >= EndBound do not exist.
  std::uint64_t EndBound = NoSeq;
  /// Signalled whenever PauseBound or EndBound changes.
  sim::Waitable BoundEvent;

  std::vector<WidthSchedule> Schedules;           // one per task
  std::vector<std::unique_ptr<Link>> Links;       // storage
  std::vector<std::vector<Link *>> InLinks;       // per task
  std::vector<std::vector<Link *>> OutLinks;      // per task
  std::map<int, std::unique_ptr<SimLock>> Locks;  // DOANY critical sections
  std::vector<TaskStats> Stats;

  std::vector<std::vector<Worker *>> ActiveByTask; // live workers per task
  std::vector<std::vector<bool>> HasWorker;        // per task per slot
  unsigned ActiveWorkers = 0;
  bool Started = false;
  bool Completed = false;
  bool Aborted = false;
  std::uint64_t IterationsRetired = 0;
  std::uint64_t StartSeq = 0;
  std::uint64_t CommitFrontier = 0;
  /// Chunk-size policy (null = chunk size 1). Retuned every
  /// RetunePeriod retirements, piggybacked on retireIteration so tuning
  /// needs no timer and dies with the workers.
  ChunkPolicy *Chunking = nullptr;
  static constexpr std::uint64_t RetunePeriod = 256;
  std::vector<sim::SimTime> LastBeat; // per task
  std::uint64_t Speculations = 0;
  std::uint64_t FaultsInjected = 0;
  std::uint64_t Escalations = 0;
  bool EscalationFired = false;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
  telemetry::Counter *RetiredMetric = nullptr;
};

} // namespace parcae::rt

#endif // PARCAE_MORTA_REGIONEXEC_H
