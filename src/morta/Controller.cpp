//===- Controller.cpp - Morta's closed-loop run-time controller ------------===//

#include "morta/Controller.h"

#include <algorithm>
#include <cmath>

using namespace parcae::rt;

const char *parcae::rt::ctrlStateName(CtrlState S) {
  switch (S) {
  case CtrlState::Init:
    return "INIT";
  case CtrlState::Calibrate:
    return "CALIBRATE";
  case CtrlState::Optimize:
    return "OPTIMIZE";
  case CtrlState::Monitor:
    return "MONITOR";
  case CtrlState::Done:
    return "DONE";
  }
  return "?";
}

RegionController::RegionController(RegionRunner &Runner, ControllerParams P)
    : Runner(Runner), P(P), Sim(Runner.machine().sim()),
      OnlineCap(Runner.machine().onlineCores()) {
#if PARCAE_TELEMETRY_ENABLED
  Tel = telemetry::recorder();
  if (Tel) {
    TelPid = Tel->processFor(Runner.region().name());
    Tel->nameThread(TelPid, telemetry::TidController, "controller");
    ThrMetric = &Tel->metrics().histogram("ctrl." + Runner.region().name() +
                                          ".throughput");
  }
#endif
}

void RegionController::transitionTo(CtrlState NewSt) {
  if (Tel) {
    if (TelSpanOpen)
      Tel->end(TelPid, telemetry::TidController, "ctrl", ctrlStateName(St));
    Tel->begin(TelPid, telemetry::TidController, "ctrl",
               ctrlStateName(NewSt),
               {telemetry::TraceArg::str("config", Runner.config().str()),
                telemetry::TraceArg::num("budget", Budget)});
    TelSpanOpen = true;
  }
  St = NewSt;
}

void RegionController::start(unsigned ThreadBudget) {
  assert(!Started && "controller already started");
  assert(ThreadBudget >= 1 && "need at least one thread");
  Started = true;
  Granted = ThreadBudget;
  Budget = std::max(1u, std::min(ThreadBudget, OnlineCap));
  enterInit();
  scheduleTick();
}

unsigned RegionController::threadsUsed() const {
  return Runner.config().totalThreads();
}

void RegionController::scheduleTick() {
  if (TickScheduled || St == CtrlState::Done)
    return;
  TickScheduled = true;
  Sim.schedule(P.TickPeriod, [this] {
    TickScheduled = false;
    tick();
  });
}

void RegionController::recordTrace(double Thr) {
  Trace.push_back({Sim.now(), St, Runner.config(), Thr});
  if (Tel && Thr > 0)
    ThrMetric->add(Thr);
}

void RegionController::applyConfig(RegionConfig C) {
  // Pre-degrade the chunk size before the switch lands: if the runner
  // takes the full pause-drain path, workers should not claim multi-item
  // chunks whose drain would stretch the reconfigure latency. (The
  // execution degrades again on requestPause; this just closes the gap
  // between the controller's decision and the pause reaching workers.)
  Runner.chunkPolicy().degradeForPause();
  Runner.reconfigure(std::move(C));
}

void RegionController::beginMeasure(std::uint64_t Iters) {
  WindowIters = Iters;
  Measuring = true;
  MarkPending = true;
}

std::uint64_t RegionController::measureWindowIters() const {
  // Parallel workers retire in waves of ~D iterations; measuring a
  // non-integral number of waves distorts the rate by up to one wave per
  // window. Use several waves and round up to a whole number of them.
  std::uint64_t D = Runner.config().totalThreads();
  std::uint64_t W = std::max<std::uint64_t>(P.Nseq, 8 * D);
  return (W + D - 1) / D * D;
}

bool RegionController::measureReady() const {
  if (!Measuring || MarkPending)
    return false;
  if (Window.progress(Runner.totalRetired()) < WindowIters)
    return false;
  // In MONITOR, additionally require a minimum wall-clock window so that
  // passive sampling is not dominated by burst noise.
  if (St == CtrlState::Monitor &&
      Sim.now() < Window.startTime() + P.MonitorWindow)
    return false;
  return true;
}

double RegionController::measuredRate() const {
  return Window.rate(Runner.totalRetired(), Sim.now());
}

void RegionController::tick() {
  if (Runner.completed()) {
    transitionTo(CtrlState::Done);
    return;
  }
  if (!Runner.transitioning()) {
    if (MarkPending) {
      // Let the reconfigured region reach steady state (freshly spawned
      // workers pay thread-spawn and Tinit costs) before measuring.
      if (WarmupAnchor == NoSeq)
        WarmupAnchor = Runner.totalRetired();
      std::uint64_t Warmup = std::max<std::uint64_t>(
          8, 2 * Runner.config().totalThreads());
      if (Runner.totalRetired() < WarmupAnchor + Warmup) {
        scheduleTick();
        return;
      }
      WarmupAnchor = NoSeq;
      // The window size was chosen when the measurement was requested,
      // possibly before an asynchronous scheme switch applied; re-derive
      // it from the configuration actually running now.
      WindowIters = std::max(WindowIters, measureWindowIters());
      Window.mark(Runner.totalRetired(), Sim.now());
      TaskWindows.assign(Runner.config().DoP.size(), TaskWindow());
      if (const RegionExec *E = Runner.exec())
        for (unsigned T = 0; T < E->numTasks(); ++T)
          TaskWindows[T].mark(*E, T, Sim.now());
      MarkPending = false;
    }
    if (measureReady()) {
      Measuring = false;
      double Thr = measuredRate();
#ifdef PARCAE_CTRL_DEBUG
      std::fprintf(stderr, "[ctrl] t=%.3fms win: start=%llu now=%llu prog=%llu thr=%.0f cfg=%s st=%s\n",
                   sim::toSeconds(Sim.now())*1e3,
                   (unsigned long long)Window.startTime(),
                   (unsigned long long)Sim.now(),
                   (unsigned long long)Window.progress(Runner.totalRetired()),
                   Thr, Runner.config().str().c_str(), ctrlStateName(St));
#endif
      switch (St) {
      case CtrlState::Init: {
        Tseq = Thr;
        Best = {Runner.config(), Tseq};
        recordTrace(Thr);
        // Explore every parallel scheme the region exposes.
        SchemesToTry.clear();
        for (const RegionDesc &V : Runner.region().variants())
          if (V.S != Scheme::Seq)
            SchemesToTry.push_back(V.S);
        SchemeIdx = 0;
        if (SchemesToTry.empty()) {
          enterMonitor();
          break;
        }
        enterCalibrate(defaultConfigFor(SchemesToTry[0]));
        break;
      }
      case CtrlState::Calibrate:
        recordTrace(Thr);
        PARCAE_TRACE(
            Tel, instant(TelPid, telemetry::TidController, "ctrl",
                         "calibrated",
                         {telemetry::TraceArg::str("config",
                                                   Runner.config().str()),
                          telemetry::TraceArg::num("thr", Thr),
                          telemetry::TraceArg::num("thr_seq", Tseq)}));
        enterOptimize(Thr);
        break;
      case CtrlState::Optimize:
        stepOptimize(Thr);
        break;
      case CtrlState::Monitor: {
        recordTrace(Thr);
        if (MonitorBaseThr <= 0) {
          MonitorBaseThr = Thr;
        } else {
          double Rel = std::abs(Thr - MonitorBaseThr) / MonitorBaseThr;
          if (Rel > P.MonitorThreshold) {
            PARCAE_TRACE(
                Tel, instant(TelPid, telemetry::TidController, "ctrl",
                             "monitor_drift",
                             {telemetry::TraceArg::num("thr_base",
                                                       MonitorBaseThr),
                              telemetry::TraceArg::num("thr", Thr),
                              telemetry::TraceArg::num("rel", Rel)}));
            // Workload changed (T4->2): re-calibrate the current scheme,
            // resetting the DoP if throughput dropped.
            Scheme S = Runner.config().S;
            SchemesToTry = {S};
            SchemeIdx = 0;
            RegionConfig C = Thr < MonitorBaseThr && S != Scheme::Seq
                                 ? defaultConfigFor(S)
                                 : Runner.config();
            if (S == Scheme::Seq && !Runner.region().variants().empty()) {
              // A sequential region that slowed down may now benefit from
              // parallelism again: re-run the full exploration.
              SchemesToTry.clear();
              for (const RegionDesc &V : Runner.region().variants())
                if (V.S != Scheme::Seq)
                  SchemesToTry.push_back(V.S);
              if (!SchemesToTry.empty())
                C = defaultConfigFor(SchemesToTry[0]);
            }
            if (SchemesToTry.empty()) {
              beginMeasure(measureWindowIters() * 4);
            } else {
              Best = {Runner.region().unitConfig(Scheme::Seq), Tseq};
              enterCalibrate(std::move(C));
            }
            break;
          }
        }
        beginMeasure(measureWindowIters() * 4);
        break;
      }
      case CtrlState::Done:
        return;
      }
    }
  }
  scheduleTick();
}

void RegionController::enterInit() {
  transitionTo(CtrlState::Init);
  RegionConfig SeqC = Runner.region().unitConfig(Scheme::Seq);
  Runner.start(SeqC);
  recordTrace(0);
  beginMeasure(P.Nseq);
}

void RegionController::enterCalibrate(RegionConfig C) {
  transitionTo(CtrlState::Calibrate);
  if (SchemeIdx == 0)
    BudgetLimited = false;
  applyConfig(std::move(C));
  recordTrace(0);
  beginMeasure(measureWindowIters());
}

void RegionController::enterOptimize(double BaseThr) {
  transitionTo(CtrlState::Optimize);
  const RegionDesc &V = Runner.region().variant(Runner.config().S);
  Opt = OptState();
  Opt.Opt.assign(V.numTasks(), false);
  for (unsigned T = 0; T < V.numTasks(); ++T)
    if (!V.Tasks[T].isParallel())
      Opt.Opt[T] = true; // sequential tasks are pinned at DoP 1
  Opt.Order = parallelTasksByAscendingThroughput();
  Opt.OrderIdx = 0;
  Opt.PrevThr = BaseThr;
  recordTrace(BaseThr);
  if (Opt.Order.empty()) {
    finishSchemeSearch(BaseThr);
    return;
  }
  Opt.TaskIdx = Opt.Order[0];
  Opt.PrevDoP = Runner.config().DoP[Opt.TaskIdx];
  Opt.Dir = +1;
  Opt.TriedDown = false;
  // First probe: one step up if the budget allows, else one step down.
  unsigned Bar = dopUpperBound(Opt.TaskIdx);
  RegionConfig C = Runner.config();
  if (Opt.PrevDoP + 1 <= Bar) {
    C.DoP[Opt.TaskIdx] = Opt.PrevDoP + 1;
  } else if (Opt.PrevDoP > 1) {
    // The budget forbids even one upward probe.
    BudgetLimited = true;
    Opt.Dir = -1;
    Opt.TriedDown = true;
    C.DoP[Opt.TaskIdx] = Opt.PrevDoP - 1;
  } else {
    // Neither direction available: this task is done.
    BudgetLimited = true;
    Opt.Opt[Opt.TaskIdx] = true;
    stepOptimizeNextTask(BaseThr);
    return;
  }
  applyConfig(std::move(C));
  beginMeasure(measureWindowIters());
}

void RegionController::stepOptimize(double Thr) {
  recordTrace(Thr);
  unsigned Cur = Runner.config().DoP[Opt.TaskIdx];
  // Telemetry: every DoP move of the gradient ascent, with the throughput
  // measured before (at the previous DoP) and after (at the current one).
  double ThrBefore = Opt.PrevThr;
  auto dopMove = [&](const char *Kind, unsigned From, unsigned To) {
    PARCAE_TRACE(
        Tel, instant(TelPid, telemetry::TidController, "ctrl", Kind,
                     {telemetry::TraceArg::num("task", Opt.TaskIdx),
                      telemetry::TraceArg::num("dop_from", From),
                      telemetry::TraceArg::num("dop_to", To),
                      telemetry::TraceArg::num("thr_before", ThrBefore),
                      telemetry::TraceArg::num("thr_after", Thr)}));
  };
  // Relative finite difference; tiny changes count as zero.
  double Delta = Opt.PrevThr > 0 ? (Thr - Opt.PrevThr) / Opt.PrevThr
                                 : (Thr > 0 ? 1.0 : 0.0);
  const double Eps = 0.02;
  bool Better = Opt.Dir > 0 ? Delta > Eps : Delta > -Eps;
  // Decreasing search treats "no worse" as better: fewer threads for the
  // same throughput saves energy (Section 6.4.2's delta = 0 rule).

  // One transient-tolerant retry: a single noisy window must not end an
  // ascent that is genuinely still climbing.
  if (!Better && !Opt.Retried) {
    Opt.Retried = true;
    beginMeasure(measureWindowIters());
    return;
  }
  Opt.Retried = false;

  if (Better) {
    Opt.PrevThr = Thr;
    Opt.PrevDoP = Cur;
    Opt.AnyImproved = true;
    unsigned Next;
    bool Feasible;
    if (Opt.Dir > 0) {
      Next = Cur + 1;
      Feasible = Next <= dopUpperBound(Opt.TaskIdx);
    } else {
      Next = Cur - 1;
      Feasible = Cur > 1;
    }
    if (Feasible) {
      RegionConfig C = Runner.config();
      C.DoP[Opt.TaskIdx] = Next;
      dopMove("dop_move", Cur, Next);
      applyConfig(std::move(C));
      beginMeasure(measureWindowIters());
      return;
    }
    // Hit a bound: this task is done at the current DoP. An increasing
    // search stopped by the budget means more threads would help.
    if (Opt.Dir > 0)
      BudgetLimited = true;
  } else if (Opt.Dir > 0 && !Opt.TriedDown && Opt.PrevDoP > 1) {
    // The increasing probe failed; try the decreasing side once.
    Opt.Dir = -1;
    Opt.TriedDown = true;
    RegionConfig C = Runner.config();
    C.DoP[Opt.TaskIdx] = Opt.PrevDoP - 1;
    dopMove("dop_move", Cur, Opt.PrevDoP - 1);
    applyConfig(std::move(C));
    beginMeasure(measureWindowIters());
    return;
  } else {
    // Passed the optimum: revert to the best DoP seen.
    RegionConfig C = Runner.config();
    if (C.DoP[Opt.TaskIdx] != Opt.PrevDoP) {
      C.DoP[Opt.TaskIdx] = Opt.PrevDoP;
      dopMove("dop_revert", Cur, Opt.PrevDoP);
      applyConfig(std::move(C));
    }
  }
  Opt.Opt[Opt.TaskIdx] = true;
  stepOptimizeNextTask(Opt.PrevThr);
}

void RegionController::stepOptimizeNextTask(double BaseThr) {
  // Re-rank and pick the next unoptimized parallel task (Algorithm 4
  // updates the order after optimizing each task).
  std::vector<unsigned> Order = parallelTasksByAscendingThroughput();
  for (unsigned T : Order) {
    if (Opt.Opt[T])
      continue;
    Opt.TaskIdx = T;
    Opt.PrevDoP = Runner.config().DoP[T];
    Opt.PrevThr = BaseThr;
    Opt.Dir = +1;
    Opt.TriedDown = false;
    unsigned Bar = dopUpperBound(T);
    RegionConfig C = Runner.config();
    if (Opt.PrevDoP + 1 <= Bar) {
      C.DoP[T] = Opt.PrevDoP + 1;
    } else if (Opt.PrevDoP > 1) {
      BudgetLimited = true;
      Opt.Dir = -1;
      Opt.TriedDown = true;
      C.DoP[T] = Opt.PrevDoP - 1;
    } else {
      BudgetLimited = true;
      Opt.Opt[T] = true;
      continue;
    }
    applyConfig(std::move(C));
    beginMeasure(measureWindowIters());
    return;
  }
  finishSchemeSearch(BaseThr);
}

void RegionController::finishSchemeSearch(double Thr) {
  SchemeBest = {Runner.config(), Thr};
  // Profitability: a parallel scheme must beat the sequential baseline by
  // a margin; and among profitable candidates, small throughput slack is
  // traded for fewer threads (energy).
  bool Profitable = Thr > Tseq * P.ProfitabilityGain;
  if (Profitable) {
    bool BetterThr = Thr > Best.Thr * (1 + P.ThreadSavingSlack);
    bool SameThrFewerThreads =
        Thr > Best.Thr * (1 - P.ThreadSavingSlack) &&
        SchemeBest.C.totalThreads() < Best.C.totalThreads();
    if (BetterThr || SameThrFewerThreads)
      Best = SchemeBest;
  }
  if (nextScheme())
    return;
  // All schemes explored: enforce the best configuration and monitor.
  Cache.push_back({Budget, Best.C, Best.Thr, BudgetLimited});
  PARCAE_TRACE(
      Tel, instant(TelPid, telemetry::TidController, "ctrl", "enforce",
                   {telemetry::TraceArg::str("config", Best.C.str()),
                    telemetry::TraceArg::num("thr", Best.Thr),
                    telemetry::TraceArg::num("thr_seq", Tseq),
                    telemetry::TraceArg::num("budget_limited",
                                             BudgetLimited ? 1 : 0)}));
  applyConfig(Best.C);
  enterMonitor();
  if (OnOptimized)
    OnOptimized(Best.C.totalThreads());
}

bool RegionController::nextScheme() {
  ++SchemeIdx;
  if (SchemeIdx >= SchemesToTry.size())
    return false;
  enterCalibrate(defaultConfigFor(SchemesToTry[SchemeIdx]));
  return true;
}

void RegionController::enterMonitor() {
  transitionTo(CtrlState::Monitor);
  MonitorBaseThr = 0.0;
  recordTrace(0);
  beginMeasure(measureWindowIters() * 4);
}

RegionConfig RegionController::defaultConfigFor(Scheme S) const {
  const RegionDesc &V = Runner.region().variant(S);
  RegionConfig C;
  C.S = S;
  C.DoP.assign(V.numTasks(), 1);
  unsigned NumPar = 0, NumSeq = 0;
  for (const Task &T : V.Tasks)
    (T.isParallel() ? NumPar : NumSeq)++;
  if (NumPar == 0)
    return C;
  // Algorithm 4's starting point: every parallel task begins at half of
  // the midpoint of its available range.
  unsigned Avail = Budget > NumSeq ? Budget - NumSeq : 1;
  unsigned Bar = (NumPar + 1) * Avail / (2 * NumPar);
  unsigned D0 = std::max(1u, Bar / 2);
  // Never exceed the budget in total.
  while (D0 > 1 && NumSeq + NumPar * D0 > Budget)
    --D0;
  for (unsigned T = 0; T < V.numTasks(); ++T)
    if (V.Tasks[T].isParallel())
      C.DoP[T] = D0;
  return C;
}

std::vector<unsigned>
RegionController::parallelTasksByAscendingThroughput() const {
  const RegionDesc &V = Runner.region().variant(Runner.config().S);
  std::vector<unsigned> Par;
  for (unsigned T = 0; T < V.numTasks(); ++T)
    if (V.Tasks[T].isParallel())
      Par.push_back(T);
  const RegionExec *E = Runner.exec();
  if (!E)
    return Par;
  // Rank by per-thread service rate: slower tasks (bigger per-iteration
  // compute divided by team size) first.
  std::vector<double> Rate(V.numTasks(), 0.0);
  for (unsigned T : Par) {
    double Exec = Decima::getExecTime(*E, T);
    double DoP = static_cast<double>(Runner.config().DoP[T]);
    Rate[T] = Exec > 0 ? DoP / Exec : 1e30; // iterations/cycle capacity
  }
  std::stable_sort(Par.begin(), Par.end(),
                   [&](unsigned A, unsigned B) { return Rate[A] < Rate[B]; });
  return Par;
}

unsigned RegionController::dopUpperBound(unsigned TaskIdx) const {
  // Algorithm 4: dPi_bar = N - totalDoP + dPi.
  unsigned Total = Runner.config().totalThreads();
  unsigned Mine = Runner.config().DoP[TaskIdx];
  if (Budget + Mine <= Total)
    return Mine; // overloaded budget: no growth
  return Budget - (Total - Mine);
}

void RegionController::onCapacityChange(unsigned Online) {
  OnlineCap = std::max(1u, Online);
  unsigned N = std::max(1u, std::min(Granted, OnlineCap));
  if (!Started || St == CtrlState::Done)
    return;
  if (N == Budget)
    return; // the effective budget already matches the capacity
  PARCAE_TRACE(Tel,
               instant(TelPid, telemetry::TidController, "ctrl",
                       N < Budget ? "capacity_drop" : "capacity_grow",
                       {telemetry::TraceArg::num("online", Online),
                        telemetry::TraceArg::num("budget", Budget)}));
  applyBudget(N);
}

void RegionController::forceRecover(RegionConfig C) {
  if (!Started || St == CtrlState::Done || Runner.completed())
    return;
  PARCAE_TRACE(Tel,
               instant(TelPid, telemetry::TidController, "ctrl",
                       "force_recover",
                       {telemetry::TraceArg::str("config", C.str())}));
  recordTrace(0);
  Runner.recover(std::move(C));
  // Whatever measurement was in flight is meaningless across an abort;
  // settle into MONITOR around the recovered configuration.
  Measuring = false;
  MarkPending = false;
  WarmupAnchor = NoSeq;
  enterMonitor();
  scheduleTick();
}

RegionExec::RestartResult RegionController::surgicalRestart(unsigned TaskIdx) {
  if (!Started || St == CtrlState::Done || Runner.completed())
    return {};
  RegionExec::RestartResult R = Runner.restartTask(TaskIdx);
  if (R.Restarted == 0 && R.Rescued == 0)
    return R;
  PARCAE_TRACE(Tel, instant(TelPid, telemetry::TidController, "ctrl",
                            "surgical_restart",
                            {telemetry::TraceArg::num("task", TaskIdx),
                             telemetry::TraceArg::num("restarted", R.Restarted),
                             telemetry::TraceArg::num("rescued", R.Rescued)}));
  // Re-anchor, do not re-select: the stalled window would dominate any
  // in-flight measurement, but the configuration itself is not suspect.
  if (St == CtrlState::Monitor) {
    // Forget the pre-stall baseline too — a drift verdict against it
    // would trigger exactly the recalibration this path exists to avoid.
    MonitorBaseThr = 0.0;
    beginMeasure(measureWindowIters() * 4);
  } else if (Measuring) {
    MarkPending = true;
    WarmupAnchor = NoSeq;
  }
  scheduleTick();
  return R;
}

parcae::ckpt::ControllerMemory RegionController::exportMemory() const {
  ckpt::ControllerMemory M;
  M.SeqThroughput = Tseq;
  M.Best = Best.C;
  M.BestThr = Best.Thr;
  M.Cache.reserve(Cache.size());
  for (const CacheEntry &E : Cache)
    M.Cache.push_back({E.Budget, E.C, E.Thr, E.Limited});
  return M;
}

void RegionController::importMemory(const ckpt::ControllerMemory &M) {
  Tseq = M.SeqThroughput;
  Best = {M.Best, M.BestThr};
  Cache.clear();
  Cache.reserve(M.Cache.size());
  for (const ckpt::ControllerMemory::CacheEntry &E : M.Cache)
    Cache.push_back({E.Budget, E.C, E.Thr, E.Limited});
}

RegionConfig RegionController::resumeConfigFor(RegionConfig Preferred) {
  for (const CacheEntry &E : Cache) {
    if (E.Budget == Budget) {
      Best = {E.C, E.Thr};
      BudgetLimited = E.Limited;
      return E.C;
    }
  }
  // No cache entry for this budget: keep the scheme, shrink the widest
  // tasks until the width schedule fits.
  while (Preferred.totalThreads() > Budget) {
    auto Widest = std::max_element(Preferred.DoP.begin(), Preferred.DoP.end());
    if (*Widest <= 1)
      break;
    --*Widest;
  }
  if (Preferred.totalThreads() > Budget)
    return Runner.region().unitConfig(Scheme::Seq);
  return Preferred;
}

bool RegionController::checkpointTo(std::function<void(ckpt::RegionSnapshot)> Cb) {
  if (!Started || St == CtrlState::Done || Runner.completed())
    return false;
  // Whatever measurement was in flight is meaningless across a
  // migration; cancel it so no window straddles the suspension.
  Measuring = false;
  MarkPending = false;
  WarmupAnchor = NoSeq;
  return Runner.requestCheckpoint(
      [this, Cb = std::move(Cb)](const RunnerCheckpoint *CP) {
        if (!CP)
          return; // completed during the drain: nothing to hand off
        ckpt::RegionSnapshot S;
        S.Region = Runner.region().name();
        S.Cursor = CP->Cursor;
        S.Retired = CP->Retired;
        S.ChunkK = CP->ChunkK;
        S.Config = CP->Config;
        Runner.source().saveState(S.Source);
        S.Ctrl = exportMemory();
        PARCAE_TRACE(
            Tel, instant(TelPid, telemetry::TidController, "ctrl",
                         "checkpoint",
                         {telemetry::TraceArg::num("cursor", CP->Cursor),
                          telemetry::TraceArg::str("config",
                                                   CP->Config.str())}));
        // The region now lives in the snapshot; this controller is done
        // and its machine may be torn down.
        recordTrace(0);
        transitionTo(CtrlState::Done);
        Cb(std::move(S));
      });
}

void RegionController::startFromSnapshot(unsigned ThreadBudget,
                                         const ckpt::RegionSnapshot &S) {
  assert(!Started && "controller already started");
  assert(ThreadBudget >= 1 && "need at least one thread");
  assert(S.Region == Runner.region().name() && "snapshot for another region");
  Started = true;
  Granted = ThreadBudget;
  Budget = std::max(1u, std::min(ThreadBudget, OnlineCap));
  importMemory(S.Ctrl);
  // A fresh source rewinds to the snapshot cursor; a source the caller
  // already positioned refuses, which is fine — the cursor governs
  // replay either way.
  (void)Runner.source().restoreState(S.Source);
  Runner.chunkPolicy().seed(S.ChunkK);
  RegionConfig C = resumeConfigFor(S.Config);
  PARCAE_TRACE(Tel,
               instant(TelPid, telemetry::TidController, "ctrl", "restore",
                       {telemetry::TraceArg::num("cursor", S.Cursor),
                        telemetry::TraceArg::str("config", C.str()),
                        telemetry::TraceArg::num("budget", Budget)}));
  Runner.start(C, S.Cursor);
  // The snapshot carries the learned memory; skip INIT/CALIBRATE/OPTIMIZE
  // and settle straight into passive monitoring.
  enterMonitor();
  scheduleTick();
}

bool RegionController::drainRestart(std::vector<unsigned> Cores,
                                    std::function<void()> Done) {
  if (!Started || St == CtrlState::Done || Runner.completed())
    return false;
  Measuring = false;
  MarkPending = false;
  WarmupAnchor = NoSeq;
  PARCAE_TRACE(Tel, instant(TelPid, telemetry::TidController, "ctrl",
                            "drain_restart",
                            {telemetry::TraceArg::num("cores", Cores.size())}));
  return Runner.requestCheckpoint(
      [this, Cores = std::move(Cores),
       Done = std::move(Done)](const RunnerCheckpoint *CP) {
        if (!CP) {
          // Completed during the drain: nothing left to migrate.
          if (Done)
            Done();
          return;
        }
        // Quiescent: the region holds no thread, so the doomed cores can
        // be retired with nothing to strand.
        sim::Machine &Mach = Runner.machine();
        for (unsigned Core : Cores)
          Mach.offlineCore(Core);
        OnlineCap = std::max(1u, Mach.onlineCores());
        Budget = std::max(1u, std::min(Granted, OnlineCap));
        Runner.chunkPolicy().seed(CP->ChunkK);
        RegionConfig C = resumeConfigFor(CP->Config);
        PARCAE_TRACE(
            Tel, instant(TelPid, telemetry::TidController, "ctrl", "migrate",
                         {telemetry::TraceArg::num("cursor", CP->Cursor),
                          telemetry::TraceArg::str("config", C.str()),
                          telemetry::TraceArg::num("budget", Budget)}));
        recordTrace(0);
        Runner.resume(std::move(C), CP->Cursor);
        enterMonitor();
        scheduleTick();
        if (Done)
          Done();
      });
}

void RegionController::setThreadBudget(unsigned N) {
  assert(N >= 1 && "need at least one thread");
  Granted = N;
  // The grant is aspirational: a degraded machine caps what the
  // controller may actually schedule until repairs return capacity.
  applyBudget(std::max(1u, std::min(N, OnlineCap)));
}

void RegionController::applyBudget(unsigned N) {
  if (!Started || N == Budget || St == CtrlState::Done) {
    Budget = std::max(1u, N);
    return;
  }
  unsigned Old = Budget;
  Budget = N;
  PARCAE_TRACE(Tel,
               instant(TelPid, telemetry::TidController, "ctrl", "budget",
                       {telemetry::TraceArg::num("from", Old),
                        telemetry::TraceArg::num("to", N)}));
  if (St == CtrlState::Init)
    return; // the baseline phase proceeds; the new budget applies after it
  recordTrace(0);
  // Cached configuration for this exact budget? Reuse it (Section 6.4.2).
  for (const CacheEntry &E : Cache) {
    if (E.Budget == N) {
      Best = {E.C, E.Thr};
      BudgetLimited = E.Limited;
      applyConfig(E.C);
      enterMonitor();
      if (OnOptimized)
        OnOptimized(E.C.totalThreads());
      return;
    }
  }
  Scheme S = Runner.config().S;
  if (S == Scheme::Seq) {
    // Running sequentially: a budget change may make parallelism viable,
    // so re-run the full exploration.
    SchemesToTry.clear();
    for (const RegionDesc &V : Runner.region().variants())
      if (V.S != Scheme::Seq)
        SchemesToTry.push_back(V.S);
    if (SchemesToTry.empty())
      return;
    S = SchemesToTry[0];
    SchemeIdx = 0;
    Best = {Runner.region().unitConfig(Scheme::Seq), Tseq};
    enterCalibrate(defaultConfigFor(S));
    return;
  }
  SchemesToTry = {S};
  SchemeIdx = 0;
  Best = {Runner.region().unitConfig(Scheme::Seq), Tseq};
  if (N > Old && Runner.config().totalThreads() <= N) {
    // More resources: keep the current DoP as the starting point.
    enterCalibrate(Runner.config());
  } else {
    // Fewer resources: reset to the default under the new budget.
    enterCalibrate(defaultConfigFor(S));
  }
}
