//===- RegionExec.cpp - Flexible execution of one parallel region ----------===//

#include "morta/RegionExec.h"

#include "morta/Worker.h"

#include <algorithm>

using namespace parcae::rt;

namespace {
/// Upper bound on any task's DoP (sized for oversubscription experiments
/// that run 24 threads per stage on a 24-core machine).
constexpr unsigned MaxWidth = 64;
/// Base channel admission window: how many iterations production may run
/// ahead of the slowest consumer (the bounded-queue depth). The effective
/// window grows with the consumer's DoP; see Link::trySend.
constexpr std::uint64_t LinkWindow = 16;
} // namespace

RegionExec::RegionExec(sim::Machine &M, const RuntimeCosts &Costs,
                       const RegionDesc &Desc, WorkSource &Source,
                       RegionConfig Config, std::uint64_t StartSeq)
    : M(M), Costs(Costs), Desc(Desc), Source(Source),
      Config(std::move(Config)), NextSeq(StartSeq), StartSeq(StartSeq),
      CommitFrontier(StartSeq) {
  Desc.verify();
  assert(this->Config.S == Desc.S && "config scheme must match the variant");
  assert(this->Config.DoP.size() == Desc.Tasks.size() &&
         "config needs one DoP per task");

  Schedules.reserve(Desc.Tasks.size());
  for (unsigned I = 0; I < Desc.numTasks(); ++I) {
    unsigned D = this->Config.DoP[I];
    assert(D >= 1 && D <= MaxWidth && "DoP out of range");
    assert((Desc.Tasks[I].isParallel() || D == 1) &&
           "sequential tasks have DoP 1");
    Schedules.emplace_back(D);
  }

  InLinks.resize(Desc.numTasks());
  OutLinks.resize(Desc.numTasks());
  for (const LinkDesc &L : Desc.Links) {
    auto Ch = std::make_unique<Link>(
        Desc.Tasks[L.From].name() + "->" + Desc.Tasks[L.To].name(),
        Schedules[L.To], MaxWidth, LinkWindow);
    Ch->setLowWater(StartSeq);
    OutLinks[L.From].push_back(Ch.get());
    InLinks[L.To].push_back(Ch.get());
    Links.push_back(std::move(Ch));
  }

  Stats.resize(Desc.numTasks());
  ActiveByTask.resize(Desc.numTasks());
  HasWorker.assign(Desc.numTasks(), std::vector<bool>(MaxWidth, false));
  LastBeat.assign(Desc.numTasks(), M.sim().now());

#if PARCAE_TELEMETRY_ENABLED
  Tel = telemetry::recorder();
  if (Tel) {
    TelPid = Tel->processFor(Desc.Name);
    Tel->nameThread(TelPid, telemetry::TidExec, "exec");
    for (unsigned T = 0; T < Desc.numTasks(); ++T)
      Tel->nameThread(TelPid, 1 + T, "task " + Desc.Tasks[T].name());
    RetiredMetric = &Tel->metrics().counter("exec." + Desc.Name + ".retired");
  }
#endif
}

RegionExec::~RegionExec() = default;

void RegionExec::start() {
  assert(!Started && "region already started");
  Started = true;
  PARCAE_TRACE(Tel, begin(TelPid, telemetry::TidExec, "exec", Config.str(),
                          {telemetry::TraceArg::num(
                              "start_seq", static_cast<double>(NextSeq))}));
  for (unsigned T = 0; T < Desc.numTasks(); ++T)
    for (unsigned S = 0; S < Config.DoP[T]; ++S)
      spawnWorker(T, S, NextSeq);
}

Worker *RegionExec::spawnWorker(unsigned TaskIdx, unsigned Slot,
                                std::uint64_t CursorFrom,
                                std::vector<std::vector<Token>> *Salvage,
                                const Worker *CloneOf) {
  assert(!HasWorker[TaskIdx][Slot] && "slot already has a worker");
  auto Body = std::make_unique<Worker>(*this, TaskIdx, Slot, CursorFrom);
  Worker *W = Body.get();
  if (Salvage) {
    assert(Salvage->size() == W->SendBufs.size());
    W->SendBufs = std::move(*Salvage);
  }
  if (CloneOf) {
    // Speculative clone: inherit the in-flight iteration wholesale —
    // received inputs, the functor's staged outputs, the chunk claim —
    // and arm the resume-at-compute path. Installed before M.spawn, which
    // dispatches synchronously.
    W->SpecResume = true;
    W->SpecCost = CloneOf->Ctx.Cost;
    W->Ctx = CloneOf->Ctx;
    W->Cursor = CloneOf->Cursor;
    W->InIteration = true;
    W->UsedReduction = CloneOf->UsedReduction;
    W->Chunk = CloneOf->Chunk;
    W->ChunkNext = CloneOf->ChunkNext;
    W->ChunkStart = CloneOf->ChunkStart;
    W->ChunkIters = CloneOf->ChunkIters;
    W->ChunkHead = CloneOf->ChunkHead;
  }
  ActiveByTask[TaskIdx].push_back(W);
  HasWorker[TaskIdx][Slot] = true;
  ++ActiveWorkers;
  W->Thread = M.spawn(Desc.Name + "/" + Desc.Tasks[TaskIdx].name() + "#" +
                          std::to_string(Slot),
                      std::move(Body));
  return W;
}

void RegionExec::noteFault(unsigned TaskIdx, std::uint64_t Seq,
                           unsigned Attempt) {
  ++FaultsInjected;
  beat(TaskIdx); // a faulting task is still live, just unlucky
  if (Tel) {
    Tel->metrics().counter("exec." + Desc.Name + ".faults").add();
    Tel->instant(TelPid, 1 + TaskIdx, "fault", "task_fault",
                 {telemetry::TraceArg::num("seq", static_cast<double>(Seq)),
                  telemetry::TraceArg::num("attempt", Attempt)});
  }
  if (Attempt > Costs.MaxFaultRetries) {
    ++Escalations;
    if (!EscalationFired) {
      EscalationFired = true;
      PARCAE_TRACE(Tel, instant(TelPid, 1 + TaskIdx, "fault",
                                "fault_escalation",
                                {telemetry::TraceArg::num(
                                    "seq", static_cast<double>(Seq))}));
      if (OnFaultEscalation)
        OnFaultEscalation(TaskIdx);
    }
  }
}

void RegionExec::abort() {
  assert(canAbort() && "abort requires a sequential tail");
  Aborted = true;
  if (Chunking)
    Chunking->degradeForPause(); // resume cautiously after recovery
  PARCAE_TRACE(Tel, instant(TelPid, telemetry::TidExec, "exec", "abort",
                            {telemetry::TraceArg::num(
                                 "frontier",
                                 static_cast<double>(CommitFrontier)),
                             telemetry::TraceArg::num(
                                 "next_seq", static_cast<double>(NextSeq))}));
  PARCAE_TRACE(Tel, end(TelPid, telemetry::TidExec, "exec", Config.str(),
                        {telemetry::TraceArg::str("exit", "aborted")}));
  // Kill without onWorkerExit: no respawns, no quiescence callbacks. The
  // SimThreads outlive this exec (the Machine owns them), but terminated
  // threads never resume, so the dead Worker bodies are never re-entered.
  for (auto &List : ActiveByTask) {
    for (Worker *W : List)
      M.terminate(W->Thread);
    List.clear();
  }
  for (auto &Row : HasWorker)
    Row.assign(Row.size(), false);
  ActiveWorkers = 0;
}

RegionExec::BlameVerdict RegionExec::blameScan(sim::SimTime Now,
                                               sim::SimTime Threshold,
                                               sim::SimTime Margin) const {
  BlameVerdict V;
  // A culprit worker is one that cannot make progress on its own: its
  // thread is stranded on a dead core, or blocked outside every runtime
  // wait — the signature of code wedged between fetch and functor.
  // Threads blocked in a channel/source/retry/lock wait are *victims* of
  // someone else's stall and must not be blamed.
  struct TaskCulprit {
    bool Any = false;
    sim::SimTime OldestBeat = 0;
  };
  std::vector<TaskCulprit> Per(Desc.numTasks());
  for (unsigned T = 0; T < Desc.numTasks(); ++T)
    for (const Worker *W : ActiveByTask[T]) {
      if (!W->Thread)
        continue;
      sim::ThreadState S = W->Thread->state();
      bool Culprit = S == sim::ThreadState::Stranded ||
                     (S == sim::ThreadState::Blocked &&
                      W->LastWait == Worker::WaitKind::None);
      if (!Culprit)
        continue;
      ++V.CulpritWorkers;
      TaskCulprit &C = Per[T];
      if (!C.Any || W->LastBeatAt < C.OldestBeat)
        C.OldestBeat = W->LastBeatAt;
      C.Any = true;
    }

  // Oldest culprit task wins the blame; the runner-up decides ambiguity.
  // Several culprit workers of the *same* task are not ambiguous — one
  // restart covers them all.
  bool HaveBest = false, HaveSecond = false;
  unsigned BestT = 0;
  sim::SimTime BestBeat = 0, SecondBeat = 0;
  for (unsigned T = 0; T < Desc.numTasks(); ++T) {
    if (!Per[T].Any)
      continue;
    ++V.CulpritTasks;
    if (!HaveBest || Per[T].OldestBeat < BestBeat) {
      if (HaveBest) {
        SecondBeat = HaveSecond ? std::min(SecondBeat, BestBeat) : BestBeat;
        HaveSecond = true;
      }
      BestT = T;
      BestBeat = Per[T].OldestBeat;
      HaveBest = true;
    } else if (!HaveSecond || Per[T].OldestBeat < SecondBeat) {
      SecondBeat = Per[T].OldestBeat;
      HaveSecond = true;
    }
  }
  if (!HaveBest)
    return V;
  V.TaskIdx = BestT;
  V.OldestBeat = BestBeat;
  if (Now - BestBeat < Threshold)
    return V; // not silent long enough to convict
  if (HaveSecond && SecondBeat - BestBeat < Margin)
    return V; // a second task is almost as silent: ambiguous
  V.Blamed = true;
  return V;
}

RegionExec::RestartResult RegionExec::restartTask(unsigned TaskIdx) {
  assert(TaskIdx < Desc.numTasks());
  RestartResult Res;
  if (!Started || Completed)
    return Res;

  // Stranded threads of this task resume their interrupted burst in
  // place: rescue is the whole repair for them.
  std::vector<sim::SimThread *> Stranded;
  for (Worker *W : ActiveByTask[TaskIdx])
    if (W->Thread && W->Thread->state() == sim::ThreadState::Stranded)
      Stranded.push_back(W->Thread);
  Res.Rescued = M.rescueStranded(Stranded);

  // Wedged workers (blocked outside every runtime wait) are terminated
  // and respawned at their current position. Snapshot first: give-back,
  // terminate, and spawn all dispatch, which can synchronously resume
  // other workers and mutate the active lists.
  std::vector<Worker *> Wedged;
  for (Worker *W : ActiveByTask[TaskIdx])
    if (W->Thread && W->Thread->state() == sim::ThreadState::Blocked &&
        W->LastWait == Worker::WaitKind::None)
      Wedged.push_back(W);

  for (Worker *W : Wedged) {
    // Wedges fire strictly before the iteration starts, so the worker
    // has consumed nothing its replacement cannot re-derive. (NextIn may
    // be a nonzero residue of the previous, fully completed iteration —
    // it is only reset when the next Recv begins.)
    assert(!W->InIteration &&
           "wedged worker consumed state it cannot give back");
    // A wedged head holding unstarted chunk items must return them to
    // the source, or terminating it would orphan those iterations. That
    // is only history-consistent for the contiguous tail of the claim
    // space; otherwise skip this worker and let the caller fall back.
    if (W->taskIdx() == 0 && W->ChunkNext < W->Chunk.size()) {
      std::uint64_t Remaining = W->Chunk.size() - W->ChunkNext;
      bool ContigTail = W->ChunkStart + W->Chunk.size() == NextSeq;
      if (!ContigTail || !giveBackChunk(Remaining))
        continue;
      W->Chunk.clear();
      W->ChunkNext = 0;
    }
    // Delist before anything that can dispatch: reentrant callbacks must
    // never observe the half-dead worker.
    auto &List = ActiveByTask[TaskIdx];
    auto It = std::find(List.begin(), List.end(), W);
    assert(It != List.end());
    List.erase(It);
    assert(HasWorker[TaskIdx][W->slot()]);
    HasWorker[TaskIdx][W->slot()] = false;
    assert(ActiveWorkers > 0);
    --ActiveWorkers;
    // Salvage produced-but-unsent output tokens; they are below the
    // frontier of what downstream has seen and must not be lost. The
    // Worker body outlives its thread (the Machine owns both), so the
    // move is safe after terminate too — but take it first for clarity.
    std::vector<std::vector<Token>> Salvage = std::move(W->SendBufs);
    unsigned Slot = W->slot();
    std::uint64_t CursorFrom = W->CursorFrom;
    M.terminate(W->Thread);
    spawnWorker(TaskIdx, Slot, CursorFrom, &Salvage);
    ++Res.Restarted;
  }

  if (Res.Restarted > 0 || Res.Rescued > 0) {
    updateLowWater(TaskIdx);
    // Refresh the task heartbeat: the replacement starts its silence
    // clock now, not at its predecessor's last sign of life.
    beat(TaskIdx);
    PARCAE_TRACE(
        Tel, instant(TelPid, telemetry::TidExec, "exec", "task_restart",
                     {telemetry::TraceArg::str("task",
                                               Desc.Tasks[TaskIdx].name()),
                      telemetry::TraceArg::num("restarted", Res.Restarted),
                      telemetry::TraceArg::num("rescued", Res.Rescued)}));
  }
  return Res;
}

RegionExec::SpeculateResult
RegionExec::speculateLaggard(sim::SimTime Now, sim::SimTime AgeThreshold) {
  SpeculateResult Res;
  if (!Started || Completed)
    return Res;
  // The laggard is the in-flight worker holding the oldest iteration —
  // the one every retirement past the commit frontier ultimately waits on.
  Worker *Lag = nullptr;
  for (auto &List : ActiveByTask)
    for (Worker *W : List)
      if (W->InIteration && (!Lag || W->Cursor < Lag->Cursor))
        Lag = W;
  if (!Lag)
    return Res;
  // Re-issue only a laggard that is (a) mid main-compute — the functor has
  // already run, so the clone can re-pay the charge without re-running it,
  // and no lock or channel interaction is in flight — (b) actually running
  // on a penalized core (a healthy-core laggard is just slow work; cloning
  // it buys nothing), (c) silent past the age threshold, and (d) not a
  // gang compute (helper reservations are not clonable).
  if (Lag->St != Worker::State::Compute || Lag->CritHeld)
    return Res;
  if (Lag->Ctx.Gang > 1)
    return Res;
  if (!Lag->Thread || Lag->Thread->state() != sim::ThreadState::Running)
    return Res;
  int CoreIdx = Lag->Thread->coreIdx();
  if (CoreIdx < 0 || !M.corePenalized(static_cast<unsigned>(CoreIdx)))
    return Res;
  if (Now - Lag->LastBeatAt < AgeThreshold)
    return Res;

  unsigned TaskIdx = Lag->taskIdx();
  unsigned Slot = Lag->slot();
  std::uint64_t Seq = Lag->Cursor;

  // From here this mirrors restartTask: delist the loser before anything
  // that can dispatch, salvage its unsent outputs, cancel its in-flight
  // slice (terminate bumps the core's slice epoch, so the queued endSlice
  // no-ops), and install the clone's state before its thread can run. A
  // terminated thread never resumes, so the loser can never reach
  // IterDone: the clone's retirement is the only one.
  auto &List = ActiveByTask[TaskIdx];
  auto It = std::find(List.begin(), List.end(), Lag);
  assert(It != List.end());
  List.erase(It);
  assert(HasWorker[TaskIdx][Slot]);
  HasWorker[TaskIdx][Slot] = false;
  assert(ActiveWorkers > 0);
  --ActiveWorkers;
  std::vector<std::vector<Token>> Salvage = std::move(Lag->SendBufs);
  std::uint64_t CursorFrom = Lag->CursorFrom;
  M.terminate(Lag->Thread);
  spawnWorker(TaskIdx, Slot, CursorFrom, &Salvage, Lag);
  ++Speculations;
  updateLowWater(TaskIdx);
  beat(TaskIdx);
  if (Tel) {
    Tel->metrics().counter("exec." + Desc.Name + ".speculations").add();
    Tel->instant(TelPid, telemetry::TidExec, "exec", "speculate",
                 {telemetry::TraceArg::str("task", Desc.Tasks[TaskIdx].name()),
                  telemetry::TraceArg::num("seq", static_cast<double>(Seq)),
                  telemetry::TraceArg::num("core", CoreIdx)});
  }
  Res.Issued = true;
  Res.TaskIdx = TaskIdx;
  Res.Seq = Seq;
  return Res;
}

void RegionExec::requestPause() {
  if (PauseBound != NoSeq || Completed)
    return;
  // Collapse chunking first: the drain obligation must not include
  // deep chunks claimed after this point, and workers holding chunks
  // give the unstarted tail back (Worker::stepFetch).
  if (Chunking)
    Chunking->degradeForPause();
  PauseBound = NextSeq;
  PARCAE_TRACE(Tel, instant(TelPid, telemetry::TidExec, "exec", "pause",
                            {telemetry::TraceArg::num(
                                "bound", static_cast<double>(PauseBound))}));
  BoundEvent.notifyAll();
}

bool RegionExec::canReconfigureInPlace() const {
  return Costs.OptimizedBarrier && !pauseRequested() && !Completed && Started;
}

void RegionExec::reconfigureInPlace(const std::vector<unsigned> &NewDoP) {
  assert(canReconfigureInPlace() && "in-place reconfiguration not possible");
  assert(NewDoP.size() == Desc.Tasks.size() && "one DoP per task");

  // The iteration-count handoff of Section 7.2: iterations before B keep
  // the old routing; iterations from B on use the new widths.
  std::uint64_t B = NextSeq;
  for (unsigned T = 0; T < Desc.numTasks(); ++T) {
    unsigned D = NewDoP[T];
    assert(D >= 1 && D <= MaxWidth && "DoP out of range");
    assert((Desc.Tasks[T].isParallel() || D == 1) &&
           "sequential tasks have DoP 1");
    Schedules[T].append(B, D);
    // Sequential tasks briefly synchronize to update their channel-width
    // view (Section 7.2.2); model this as one barrier cost on their next
    // iteration.
    if (!Desc.Tasks[T].isParallel())
      for (Worker *W : ActiveByTask[T])
        W->PendingCost += Costs.BarrierCost;
    for (unsigned S = 0; S < D; ++S)
      if (!HasWorker[T][S])
        spawnWorker(T, S, B);
    // Slots with S >= D retire on their own when they drain their pre-B
    // iterations (their next owned iteration becomes NoSeq).
  }
  Config.DoP = NewDoP;
  PARCAE_TRACE(Tel,
               instant(TelPid, telemetry::TidExec, "exec",
                       "reconfigure_in_place",
                       {telemetry::TraceArg::str("config", Config.str()),
                        telemetry::TraceArg::num("handoff_seq",
                                                 static_cast<double>(B))}));
  // Wake workers blocked on iterations the new routing reassigned; they
  // re-derive their cursor from the updated schedule.
  BoundEvent.notifyAll();
}

void RegionExec::onWorkerExit(Worker *W, TaskStatus Status) {
  unsigned T = W->taskIdx();
  auto &List = ActiveByTask[T];
  auto It = std::find(List.begin(), List.end(), W);
  assert(It != List.end() && "worker exited twice");
  List.erase(It);
  assert(HasWorker[T][W->slot()]);
  HasWorker[T][W->slot()] = false;
  assert(ActiveWorkers > 0);
  --ActiveWorkers;
  updateLowWater(T);

  // A reconfiguration may have made this slot live again between the
  // worker's retirement decision and its exit; respawn so no iteration is
  // orphaned.
  std::uint64_t Next = W->taskIdx() == 0
                           ? NoSeq
                           : Schedules[T].firstSeqFor(W->slot(), W->CursorFrom);
  std::uint64_t Bound = std::min(PauseBound, EndBound);
  if (Next != NoSeq && (Bound == NoSeq || Next < Bound)) {
    spawnWorker(T, W->slot(), W->CursorFrom);
    return;
  }
  (void)Status;

  if (ActiveWorkers == 0) {
    if (EndBound != NoSeq && EndBound <= PauseBound) {
      Completed = true;
      PARCAE_TRACE(Tel, end(TelPid, telemetry::TidExec, "exec", Config.str(),
                            {telemetry::TraceArg::str("exit", "complete")}));
      if (OnComplete)
        OnComplete();
    } else {
      PARCAE_TRACE(Tel, end(TelPid, telemetry::TidExec, "exec", Config.str(),
                            {telemetry::TraceArg::str("exit", "quiescent")}));
      if (OnQuiescent)
        OnQuiescent();
    }
  }
}

void RegionExec::updateLowWater(unsigned TaskIdx) {
  if (InLinks[TaskIdx].empty())
    return;
  const auto &List = ActiveByTask[TaskIdx];
  if (List.empty())
    return;
  std::uint64_t Min = NoSeq;
  for (const Worker *W : List)
    Min = std::min(Min, W->lowBound());
  for (Link *L : InLinks[TaskIdx])
    L->setLowWater(Min);
}

void RegionExec::retireIteration(unsigned TaskIdx) {
  (void)TaskIdx;
  ++IterationsRetired;
  if (Tel) {
    RetiredMetric->add();
    if ((IterationsRetired & 63) == 0)
      Tel->counter(TelPid, telemetry::TidExec, "exec", "retired",
                   static_cast<double>(IterationsRetired));
  }
  if (Chunking && (IterationsRetired % RetunePeriod) == 0 &&
      PauseBound == NoSeq)
    retuneChunking();
  if (OnProgress)
    OnProgress(IterationsRetired);
}

void RegionExec::retuneChunking() {
  // Per-iteration work estimate: the slowest task dominates chunk
  // latency, but the *cheapest* task has the worst overhead ratio, so
  // tune against it — that is where amortization buys the most.
  sim::SimTime ExecPerIter = 0;
  for (const TaskStats &S : Stats) {
    if (S.Iterations == 0)
      continue;
    sim::SimTime Mean = S.ComputeTime / S.Iterations;
    if (ExecPerIter == 0 || Mean < ExecPerIter)
      ExecPerIter = Mean;
  }
  sim::SimTime Fixed = Costs.HookCost + Costs.StatusQuery +
                       (Links.empty() ? 0 : Costs.CommSend);
  Chunking->retune(Fixed, ExecPerIter, maxLinkPressure());
}

double RegionExec::maxLinkPressure() const {
  double Max = 0;
  for (const auto &L : Links) {
    double P = static_cast<double>(L->buffered()) /
               static_cast<double>(L->window());
    Max = std::max(Max, P);
  }
  return Max;
}

std::uint64_t RegionExec::chunkKFor(unsigned TaskIdx) const {
  std::uint64_t K = Chunking ? Chunking->current() : 1;
  if (K <= 1)
    return 1;
  // Degrade to classic per-iteration claiming while a drain is pending:
  // the pause protocol's latency bound assumes one-deep obligations.
  if (PauseBound != NoSeq)
    return 1;
  // A chunk buffered for one downstream channel must fit comfortably
  // inside the admission window, or the flush itself would stall.
  for (const Link *L : OutLinks[TaskIdx])
    K = std::min(K, std::max<std::uint64_t>(1, L->window() / 2));
  return K;
}

bool RegionExec::giveBackChunk(std::uint64_t Count) {
  assert(Count > 0 && Count <= NextSeq - StartSeq);
  if (!Source.rewind(Count))
    return false;
  NextSeq -= Count;
  // A pause bound above the shrunk claim space would leave consumers
  // waiting for iterations that no longer exist in this execution.
  if (PauseBound != NoSeq && PauseBound > NextSeq)
    PauseBound = NextSeq;
  BoundEvent.notifyAll();
  PARCAE_TRACE(Tel, instant(TelPid, telemetry::TidExec, "exec",
                            "chunk_give_back",
                            {telemetry::TraceArg::num(
                                 "count", static_cast<double>(Count)),
                             telemetry::TraceArg::num(
                                 "next_seq", static_cast<double>(NextSeq))}));
  return true;
}

SimLock &RegionExec::lockFor(int LockId) {
  auto &Slot = Locks[LockId];
  if (!Slot)
    Slot = std::make_unique<SimLock>();
  return *Slot;
}

double RegionExec::loadOf(unsigned TaskIdx) const {
  assert(TaskIdx < Desc.numTasks());
  const Task &T = Desc.Tasks[TaskIdx];
  if (T.LoadCB)
    return T.LoadCB();
  if (TaskIdx == 0)
    return Source.load();
  double Sum = 0;
  for (const Link *L : InLinks[TaskIdx])
    Sum += static_cast<double>(L->buffered());
  return Sum;
}
