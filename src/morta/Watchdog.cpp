//===- Watchdog.cpp - Morta's liveness watchdog ----------------------------===//

#include "morta/Watchdog.h"

#include <algorithm>
#include <cassert>

using namespace parcae::rt;

Watchdog::Watchdog(RegionController &Ctrl, WatchdogParams P)
    : Ctrl(Ctrl), Runner(Ctrl.runner()), M(Runner.machine()), P(P) {
#if PARCAE_TELEMETRY_ENABLED
  Tel = telemetry::recorder();
  if (Tel) {
    TelPid = Tel->processFor(Runner.region().name());
    Tel->nameThread(TelPid, telemetry::TidWatchdog, "watchdog");
  }
#endif
}

void Watchdog::start() {
  assert(!Started && "watchdog already started");
  Started = true;
  KnownOnline = M.onlineCores();
  LastRetired = Runner.totalRetired();
  LastProgressAt = M.sim().now();
  Runner.OnFaultEscalation = [this](unsigned TaskIdx) {
    onEscalation(TaskIdx);
  };
  if (P.DrainOnWarning)
    M.addDomainWarningListener(
        [this](const sim::FailureDomainEvent &D) { onDomainWarning(D); });
  M.sim().schedule(P.Period, [this] { tick(); });
}

void Watchdog::onDomainWarning(const sim::FailureDomainEvent &D) {
  if (Runner.completed() || Runner.suspended() || DrainActive)
    return;
  ++DrainsStarted;
  DrainActive = true;
  DrainWarnedAt = M.sim().now();
  if (Tel) {
    Tel->metrics().counter("watchdog.drains").add();
    Tel->instant(TelPid, telemetry::TidWatchdog, "watchdog", "watchdog_drain",
                 {telemetry::TraceArg::str("domain", D.Name),
                  telemetry::TraceArg::num("cores", D.Cores.size()),
                  telemetry::TraceArg::num("lead_us",
                                           sim::toSeconds(D.Warning) * 1e6)});
  }
  bool Accepted = Ctrl.drainRestart(D.Cores, [this] {
    DrainActive = false;
    ++DrainsCompleted;
    LastDrainLatency = M.sim().now() - DrainWarnedAt;
    // The proactive offline is our own doing, not a failure to detect;
    // and the drain window must not read as a progress stall.
    KnownOnline = M.onlineCores();
    LastRetired = Runner.totalRetired();
    LastProgressAt = M.sim().now();
    if (Tel) {
      Tel->metrics()
          .histogram("watchdog.drain_latency_us")
          .add(sim::toSeconds(LastDrainLatency) * 1e6);
      Tel->instant(
          TelPid, telemetry::TidWatchdog, "watchdog", "watchdog_drain_done",
          {telemetry::TraceArg::num("online", M.onlineCores()),
           telemetry::TraceArg::num("latency_us",
                                    sim::toSeconds(LastDrainLatency) * 1e6)});
    }
    if (OnDrainDone)
      OnDrainDone();
  });
  if (!Accepted)
    DrainActive = false;
}

void Watchdog::beginRecoveryClock(sim::SimTime FaultAt, bool Surgical) {
  // Every fault gets its own window. Folding overlapping faults into one
  // clock (the old behaviour) under-counted recoveriesCompleted() and
  // produced a single stretched MTTR sample — exactly what a correlated
  // burst of failures produces.
  RecoveryWindows.push_back({FaultAt, Runner.totalRetired(), Surgical});
}

void Watchdog::onEscalation(unsigned TaskIdx) {
  ++EscalationsHandled;
  if (Tel) {
    Tel->metrics().counter("watchdog.escalations").add();
    Tel->instant(TelPid, telemetry::TidWatchdog, "watchdog",
                 "watchdog_escalation",
                 {telemetry::TraceArg::num("task", TaskIdx)});
  }
  beginRecoveryClock(M.sim().now());
  RegionConfig C = P.DegradeToSeqOnEscalation &&
                           Runner.region().hasVariant(Scheme::Seq)
                       ? Runner.region().unitConfig(Scheme::Seq)
                       : Runner.config();
  // The escalation fires from inside a worker's resume(); aborting that
  // worker's own thread mid-resume would corrupt the slice bookkeeping.
  // Defer the recovery to a fresh simulator event.
  M.sim().schedule(0, [this, C = std::move(C)] {
    if (!Runner.completed())
      Ctrl.forceRecover(C);
  });
}

void Watchdog::tick() {
  if (Runner.completed())
    return; // disarm: the region is done

  sim::SimTime Now = M.sim().now();

  // 1. Capacity: cores went offline since the last tick. Rescue stranded
  // threads onto the survivors, then shrink the controller's budget so it
  // re-optimizes (degradation ladder: lower DoP, ultimately SEQ).
  unsigned Online = M.onlineCores();
  if (Online < KnownOnline) {
    ++Detections;
    LastDetectionLatency = Now - M.lastOfflineAt();
    unsigned R = M.rescueStranded();
    Rescued += R;
    if (Tel) {
      Tel->metrics().counter("watchdog.detections").add();
      Tel->metrics()
          .histogram("watchdog.detect_latency_us")
          .add(sim::toSeconds(LastDetectionLatency) * 1e6);
      Tel->instant(TelPid, telemetry::TidWatchdog, "watchdog",
                   "watchdog_detect",
                   {telemetry::TraceArg::num("online", Online),
                    telemetry::TraceArg::num("was", KnownOnline),
                    telemetry::TraceArg::num("rescued", R)});
    }
    beginRecoveryClock(M.lastOfflineAt());
    KnownOnline = Online;
    Ctrl.onCapacityChange(Online);
  } else if (Online > KnownOnline) {
    // Capacity grew: a repair returned cores. Grow the thread budget back
    // so the controller re-selects (from its per-budget cache when it has
    // one) the configuration for the richer machine.
    ++Growths;
    LastGrowthLatency = Now - M.lastOnlineAt();
    if (Tel) {
      Tel->metrics().counter("watchdog.growths").add();
      Tel->metrics()
          .histogram("watchdog.grow_latency_us")
          .add(sim::toSeconds(LastGrowthLatency) * 1e6);
      Tel->instant(TelPid, telemetry::TidWatchdog, "watchdog",
                   "watchdog_grow",
                   {telemetry::TraceArg::num("online", Online),
                    telemetry::TraceArg::num("was", KnownOnline)});
    }
    KnownOnline = Online;
    Ctrl.onCapacityChange(Online);
  }

  // 2. Progress stall: work is in flight, yet nothing has retired for the
  // stall threshold. The blame scan over the per-worker heartbeats names
  // the wedged task; a confident verdict drives a surgical restart of
  // just that task, anything less falls back to the whole-region abortive
  // recovery. The *resume window* of a transition (execution torn down,
  // restart timer armed) is automatic progress — nothing can retire and
  // nothing can be repaired, and charging it to the stall clock would
  // make the first iteration after a long reconfiguration inherit the
  // whole transition window. A *draining* transition is not: a wedged
  // worker never sees the pause bound, so the drain itself can wedge —
  // the stall clock must keep running or the watchdog never notices.
  std::uint64_t Retired = Runner.totalRetired();
  if (Runner.transitioning() && !Runner.exec()) {
    LastProgressAt = Now;
    LastRetired = Retired;
  } else if (Retired != LastRetired) {
    LastRetired = Retired;
    LastProgressAt = Now;
    SurgicalSinceProgress = false; // the repair took: re-arm surgical
  } else if (Runner.exec() &&
             Now - LastProgressAt >= P.StallThreshold) {
    const RegionExec *E = Runner.exec();
    bool InFlight = E->nextSeq() > E->startSeq() + E->iterationsRetired();
    if (InFlight) {
      ++Stalls;
      RegionExec::BlameVerdict V =
          E->blameScan(Now, P.BlameThreshold, P.BlameMargin);
      if (Tel) {
        Tel->metrics().counter("watchdog.stalls").add();
        sim::SimTime OldestBeat = Now;
        for (unsigned T = 0; T < E->numTasks(); ++T)
          OldestBeat = std::min(OldestBeat, E->lastHeartbeat(T));
        Tel->instant(
            TelPid, telemetry::TidWatchdog, "watchdog", "watchdog_stall",
            {telemetry::TraceArg::num("stalled_us",
                                      sim::toSeconds(Now - LastProgressAt) *
                                          1e6),
             telemetry::TraceArg::num("oldest_beat_age_us",
                                      sim::toSeconds(Now - OldestBeat) *
                                          1e6),
             telemetry::TraceArg::num("culprit_tasks", V.CulpritTasks),
             telemetry::TraceArg::num("culprit_workers", V.CulpritWorkers)});
      }
      bool Handled = false;
      if (P.SurgicalRestart && !SurgicalSinceProgress && V.Blamed) {
        ++BlamesAssigned;
        LastBlamedTask = V.TaskIdx;
        if (Tel) {
          Tel->metrics().counter("watchdog.blames").add();
          Tel->instant(TelPid, telemetry::TidWatchdog, "watchdog",
                       "watchdog_blame",
                       {telemetry::TraceArg::num("task", V.TaskIdx),
                        telemetry::TraceArg::num(
                            "beat_age_us",
                            sim::toSeconds(Now - V.OldestBeat) * 1e6)});
        }
        RegionExec::RestartResult R = Ctrl.surgicalRestart(V.TaskIdx);
        if (R.Restarted > 0 || R.Rescued > 0) {
          ++SurgicalRestarts;
          Rescued += R.Rescued;
          SurgicalSinceProgress = true;
          beginRecoveryClock(LastProgressAt, /*Surgical=*/true);
          LastProgressAt = Now; // re-arm: do not refire every tick
          if (Tel)
            Tel->metrics().counter("watchdog.surgical_restarts").add();
          if (OnSurgicalRestart)
            OnSurgicalRestart(V.TaskIdx);
          Handled = true;
        }
      }
      if (!Handled) {
        // Ambiguous or absent blame, a restart that achieved nothing, or
        // a repeat stall with no progress since the last surgical repair:
        // the conservative whole-region recovery.
        if (P.SurgicalRestart) {
          ++FallbackAborts;
          if (Tel)
            Tel->metrics().counter("watchdog.fallback_aborts").add();
        }
        unsigned R = M.rescueStranded();
        Rescued += R;
        beginRecoveryClock(LastProgressAt);
        LastProgressAt = Now; // re-arm: do not refire every tick
        Ctrl.forceRecover(Runner.config());
      }
    }
  }

  // 2b. Speculative re-issue: progress has been quiet past the (low)
  // speculation threshold but not yet long enough for the stall machinery
  // — the signature of a chunk crawling on a dilated core rather than a
  // wedge or a dead core. Re-issue the laggard onto a backup worker;
  // speculateLaggard itself verifies the laggard really is mid-compute on
  // a penalized core, so this is a no-op on a healthy machine. The clone
  // starts freshly beaten on a healthy core, which keeps one quiet window
  // from being re-speculated every tick.
  if (P.Speculate && Runner.exec() && Retired == LastRetired &&
      Now - LastProgressAt >= P.SpecStallThreshold &&
      Now - LastProgressAt < P.StallThreshold) {
    RegionExec::SpeculateResult S =
        Runner.exec()->speculateLaggard(Now, P.SpecAgeThreshold);
    if (S.Issued) {
      ++SpeculationsIssued;
      if (Tel) {
        Tel->metrics().counter("watchdog.speculations").add();
        Tel->instant(TelPid, telemetry::TidWatchdog, "watchdog",
                     "watchdog_speculate",
                     {telemetry::TraceArg::num("task", S.TaskIdx),
                      telemetry::TraceArg::num("seq",
                                               static_cast<double>(S.Seq)),
                      telemetry::TraceArg::num(
                          "quiet_us",
                          sim::toSeconds(Now - LastProgressAt) * 1e6)});
      }
    }
  }

  // 3. MTTR: a recovery window completes when the first iteration retires
  // after the fault that opened it. Windows are ordered by fault time, so
  // completions pop from the front; a burst that opened several windows
  // yields one completion and one MTTR sample per fault.
  while (!RecoveryWindows.empty() && !Runner.transitioning() &&
         Runner.totalRetired() > RecoveryWindows.front().RetiredAtFault) {
    const RecoveryWindow &W = RecoveryWindows.front();
    ++RecoveriesCompleted;
    LastMttr = Now - W.StartAt;
    bool Surgical = W.Surgical;
    RecoveryWindows.pop_front();
    if (Surgical) {
      ++SurgicalRecoveriesCompleted;
      LastSurgicalMttr = LastMttr;
    }
    if (Tel) {
      Tel->metrics().counter("watchdog.recoveries").add();
      Tel->metrics()
          .histogram("watchdog.mttr_us")
          .add(sim::toSeconds(LastMttr) * 1e6);
      if (Surgical)
        Tel->metrics()
            .histogram("watchdog.surgical_mttr_us")
            .add(sim::toSeconds(LastMttr) * 1e6);
      Tel->instant(TelPid, telemetry::TidWatchdog, "watchdog",
                   "watchdog_recovered",
                   {telemetry::TraceArg::num(
                        "mttr_us", sim::toSeconds(LastMttr) * 1e6),
                    telemetry::TraceArg::num("surgical", Surgical ? 1 : 0)});
    }
  }

  M.sim().schedule(P.Period, [this] { tick(); });
}
