//===- Controller.h - Morta's closed-loop run-time controller ---*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-program run-time controller of Chapter 6: a finite-state
/// machine (Figure 6.3) that
///
///   State 1 (INIT)      measures a sequential baseline over Nseq
///                       iterations,
///   State 2 (CALIBRATE) measures a freshly configured parallel scheme,
///   State 3 (OPTIMIZE)  runs the finite-difference gradient-ascent search
///                       of Algorithm 4 over the DoP of every parallel
///                       task, prioritizing the slowest task,
///   State 4 (MONITOR)   passively watches throughput and triggers
///                       re-calibration on workload or resource change.
///
/// All parallel schemes the region exposes are explored; the best
/// configuration (possibly SEQ, if no parallel scheme is profitable) is
/// enforced. Optimized configurations are cached per thread budget and
/// reused on re-entry, as Section 6.4.2 describes.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_MORTA_CONTROLLER_H
#define PARCAE_MORTA_CONTROLLER_H

#include "checkpoint/Snapshot.h"
#include "decima/Monitor.h"
#include "morta/RegionRunner.h"
#include "sim/Simulator.h"
#include "telemetry/Telemetry.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace parcae::rt {

/// Controller states (Figure 6.3).
enum class CtrlState { Init, Calibrate, Optimize, Monitor, Done };

const char *ctrlStateName(CtrlState S);

/// Tunables of the run-time controller.
struct ControllerParams {
  /// Baseline iterations in INIT (the paper sets 10).
  unsigned Nseq = 10;
  /// Minimum relative throughput gain for a parallel scheme to be kept
  /// over SEQ (the profitability check at the end of Algorithm 4).
  double ProfitabilityGain = 1.05;
  /// Relative throughput drift in MONITOR that triggers re-calibration.
  double MonitorThreshold = 0.25;
  /// Polling period of the controller.
  sim::SimTime TickPeriod = 20 * sim::USec;
  /// Throughput sampling window in MONITOR.
  sim::SimTime MonitorWindow = 2 * sim::MSec;
  /// When two configurations are within this factor in throughput, prefer
  /// the one using fewer threads (saves energy, Section 6.4).
  double ThreadSavingSlack = 0.03;
};

/// Per-program run-time controller.
class RegionController {
public:
  RegionController(RegionRunner &Runner, ControllerParams P = {});

  /// Starts controlling with \p ThreadBudget hardware threads. The runner
  /// must not have been started; the controller launches it in SEQ.
  void start(unsigned ThreadBudget);

  /// Platform-wide daemon adjusts this program's share (Algorithm 5). The
  /// grant is remembered; the effective budget is the grant clamped to
  /// the last known machine capacity.
  void setThreadBudget(unsigned N);

  /// The runner under control (the watchdog drives recovery through it).
  RegionRunner &runner() { return Runner; }

  // --- Watchdog entry points (morta/Watchdog.h) ------------------------

  /// Machine capacity changed to \p Online cores. A shrink (a core
  /// failed) caps the thread budget so the controller re-optimizes for
  /// the survivors; a growth (a repair returned cores) re-expands the
  /// budget toward the granted share, re-selecting the cached
  /// configuration for that budget when one exists. A no-op when the
  /// effective budget is unchanged.
  void onCapacityChange(unsigned Online);

  /// Forces an immediate recovery switch to \p C, bypassing measurement:
  /// the in-flight execution is aborted (or drained, when aborting is
  /// impossible), the work source rewound to the commit frontier, and
  /// execution resumed. The controller re-enters MONITOR around the new
  /// configuration.
  void forceRecover(RegionConfig C);

  /// Surgical restart of one task, bypassing every transition: no pause,
  /// no drain, no config re-selection. When the execution actually did
  /// something, any in-flight measurement is re-anchored so the repaired
  /// region is not judged by the stalled window. Returns the execution's
  /// restart result.
  RegionExec::RestartResult surgicalRestart(unsigned TaskIdx);

  // --- Checkpoint / restore / drain (src/checkpoint) -------------------

  /// The controller's learned memory (sequential baseline, best config,
  /// per-budget cache) in transferable form.
  ckpt::ControllerMemory exportMemory() const;
  void importMemory(const ckpt::ControllerMemory &M);

  /// Quiesces the region, assembles a full RegionSnapshot (runner cursor
  /// + work-source state + learned memory), transitions this controller
  /// to Done (ticks stop; the region now lives in the snapshot) and fires
  /// \p Cb. Any in-flight measurement is cancelled. If the region
  /// completes before quiescing, the controller reaches Done through its
  /// normal completion path and \p Cb never fires. Returns false when not
  /// started, already done, or a checkpoint is already pending.
  bool checkpointTo(std::function<void(ckpt::RegionSnapshot)> Cb);

  /// Starts controlling a region restored from \p S: the work source is
  /// rewound to the snapshot state, the chunk policy re-seeded, the
  /// learned memory imported, and execution resumed at the snapshot
  /// cursor under the cached configuration for the effective budget (the
  /// snapshot config, fitted, when no cache entry matches). The
  /// controller enters MONITOR directly — no INIT/CALIBRATE/OPTIMIZE
  /// re-measurement. Requires a never-started controller and runner.
  void startFromSnapshot(unsigned ThreadBudget, const ckpt::RegionSnapshot &S);

  /// Proactive migration off \p Cores (a failure-domain warning):
  /// checkpoints the region in place, offlines the doomed cores while
  /// the region holds no thread, recomputes the effective budget, and
  /// resumes on the survivors — zero aborted iterations, no
  /// re-measurement. \p Done fires when the region is running again (or
  /// when it completed during the drain). Returns false when the runner
  /// refuses the checkpoint (completed / suspended / pending).
  bool drainRestart(std::vector<unsigned> Cores, std::function<void()> Done);

  CtrlState state() const { return St; }
  unsigned threadBudget() const { return Budget; }
  /// The share last granted by start()/setThreadBudget(), before the
  /// capacity clamp.
  unsigned grantedBudget() const { return Granted; }
  /// Best configuration found so far and its measured throughput.
  const RegionConfig &bestConfig() const { return Best.C; }
  double bestThroughput() const { return Best.Thr; }
  double seqThroughput() const { return Tseq; }
  /// Threads the enforced configuration actually uses.
  unsigned threadsUsed() const;
  /// True when the last optimization wanted to grow some task's DoP but
  /// was capped by the thread budget — i.e. more threads would help.
  bool budgetLimited() const { return BudgetLimited; }

  /// Fires on the OPTIMIZE -> MONITOR transition, reporting the number of
  /// threads the optimal configuration uses (the daemon reclaims slack).
  std::function<void(unsigned Used)> OnOptimized;

  /// One line per state transition / measurement, for the Figure 8.8
  /// timelines.
  struct TraceEntry {
    sim::SimTime At;
    CtrlState St;
    RegionConfig C;
    double Thr; ///< iterations per second measured (0 if none)
  };
  const std::vector<TraceEntry> &trace() const { return Trace; }

private:
  struct Candidate {
    RegionConfig C;
    double Thr = 0.0;
  };

  void tick();
  void scheduleTick();
  /// Installs \p N as the effective budget and re-plans (cache reuse or
  /// re-calibration) — the shared tail of setThreadBudget and
  /// onCapacityChange.
  void applyBudget(unsigned N);
  /// Sets the FSM state, closing/opening the telemetry state span (each
  /// logical phase entry gets its own span, even INIT -> CALIBRATE ->
  /// CALIBRATE across schemes).
  void transitionTo(CtrlState NewSt);
  void applyConfig(RegionConfig C);
  void beginMeasure(std::uint64_t Iters);
  bool measureReady() const;
  double measuredRate() const;
  std::uint64_t measureWindowIters() const;

  void enterInit();
  void enterCalibrate(RegionConfig C);
  void enterOptimize(double BaseThr);
  void enterMonitor();
  void stepOptimize(double Thr);
  void stepOptimizeNextTask(double BaseThr);
  bool nextScheme();
  RegionConfig defaultConfigFor(Scheme S) const;
  /// Picks the configuration to resume a restored/migrated region under:
  /// the cache entry for the effective budget if one exists (updating
  /// Best/BudgetLimited), else \p Preferred with its widest tasks shrunk
  /// until it fits the budget.
  RegionConfig resumeConfigFor(RegionConfig Preferred);
  std::vector<unsigned> parallelTasksByAscendingThroughput() const;
  unsigned dopUpperBound(unsigned TaskIdx) const;
  void recordTrace(double Thr);
  void finishSchemeSearch(double Thr);

  RegionRunner &Runner;
  ControllerParams P;
  sim::Simulator &Sim;

  CtrlState St = CtrlState::Init;
  unsigned Budget = 1;  ///< effective budget: Granted clamped to OnlineCap
  unsigned Granted = 1; ///< share granted by start()/setThreadBudget()
  unsigned OnlineCap;   ///< last known machine capacity (online cores)
  double Tseq = 0.0;
  Candidate Best;          ///< best across schemes (seeded with SEQ)
  Candidate SchemeBest;    ///< best within the scheme being optimized
  std::vector<Scheme> SchemesToTry;
  std::size_t SchemeIdx = 0;

  // Measurement window.
  ThroughputWindow Window;
  std::uint64_t WindowIters = 0;
  bool Measuring = false;
  bool MarkPending = false;
  std::uint64_t WarmupAnchor = NoSeq;
  std::vector<TaskWindow> TaskWindows;

  // Algorithm 4 search state.
  struct OptState {
    std::vector<unsigned> Order; ///< parallel tasks, slowest first
    std::size_t OrderIdx = 0;
    unsigned TaskIdx = 0;
    int Dir = +1;            ///< +1 increasing search, -1 decreasing
    bool TriedDown = false;  ///< already probed the decreasing side
    double PrevThr = 0.0;
    unsigned PrevDoP = 0;
    bool Retried = false; ///< one re-measure before declaring a probe bad
    std::vector<bool> Opt;   ///< per task: optimized this round
    bool AnyImproved = false;
  } Opt;

  bool BudgetLimited = false;

  // Config cache per thread budget (Section 6.4.2).
  struct CacheEntry {
    unsigned Budget;
    RegionConfig C;
    double Thr;
    bool Limited;
  };
  std::vector<CacheEntry> Cache;

  // MONITOR bookkeeping.
  double MonitorBaseThr = 0.0;

  std::vector<TraceEntry> Trace;
  bool TickScheduled = false;
  bool Started = false;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
  bool TelSpanOpen = false;
  Histogram *ThrMetric = nullptr;
};

} // namespace parcae::rt

#endif // PARCAE_MORTA_CONTROLLER_H
