//===- RegionRunner.cpp - Lifetime management of a flexible region ---------===//

#include "morta/RegionRunner.h"

#include <algorithm>

using namespace parcae::rt;

RegionRunner::RegionRunner(sim::Machine &M, const RuntimeCosts &Costs,
                           const FlexibleRegion &Region, WorkSource &Source)
    : M(M), Costs(Costs), Region(Region), Source(Source) {
#if PARCAE_TELEMETRY_ENABLED
  Tel = telemetry::recorder();
  if (Tel) {
    TelPid = Tel->processFor(Region.name());
    Tel->nameThread(TelPid, telemetry::TidRunner, "runner");
  }
#endif
}

RegionRunner::~RegionRunner() = default;

void RegionRunner::start(RegionConfig Initial) {
  assert(!Started && "runner already started");
  Started = true;
  Config = Initial;
  beginExec(std::move(Initial), 0);
}

void RegionRunner::beginExec(RegionConfig C, std::uint64_t StartSeq) {
  Exec = std::make_unique<RegionExec>(M, Costs, Region.variant(C.S), Source,
                                      C, StartSeq);
  Exec->setChunkPolicy(&Chunking);
  Config = std::move(C);
  Exec->OnComplete = [this] {
    Completed = true;
    if (OnComplete)
      OnComplete();
  };
  Exec->OnQuiescent = [this] { onQuiescent(); };
  Exec->OnFaultEscalation = [this](unsigned TaskIdx) {
    if (OnFaultEscalation)
      OnFaultEscalation(TaskIdx);
  };
  Exec->start();
}

bool RegionRunner::reconfigure(RegionConfig Target) {
  if (Completed || !Started)
    return false;
  assert(Region.hasVariant(Target.S) && "unknown scheme for this region");
  assert(Target.DoP.size() == Region.variant(Target.S).numTasks() &&
         "one DoP per task of the target variant");

  if (Transitioning) {
    // Coalesce: the pending transition resumes into the newest target.
    Pending = std::move(Target);
    return true;
  }
  if (Target == Config)
    return false;

  ++Reconfigurations;
  if (Tel)
    Tel->metrics().counter("runner." + Region.name() + ".reconfigs").add();
  if (Target.S == Config.S && Exec && Exec->canReconfigureInPlace()) {
    Exec->reconfigureInPlace(Target.DoP);
    Config = std::move(Target);
    if (OnReconfigured)
      OnReconfigured();
    return true;
  }

  // Full path: pause, drain, then resume under the new configuration.
  ++FullPauses;
  if (Tel) {
    Tel->metrics().counter("runner." + Region.name() + ".full_pauses").add();
    Tel->begin(TelPid, telemetry::TidRunner, "runner", "transition",
               {telemetry::TraceArg::str("from", Config.str()),
                telemetry::TraceArg::str("to", Target.str())});
    TelOpenSpan = "transition";
  }
  Transitioning = true;
  Pending = std::move(Target);
  PauseRequestedAt = M.sim().now();
  Exec->requestPause();
  return true;
}

void RegionRunner::onQuiescent() {
  assert(Transitioning && "quiescent without a pending transition");
  std::uint64_t StartSeq = Exec->nextSeq();
  RetiredBase += Exec->iterationsRetired();
  FaultsBase += Exec->faultsInjected();
  EscalationsBase += Exec->escalations();
  // Keep the drained exec alive until the new one is constructed: workers
  // have fully exited, but the object owns the channel storage.
  Retiring = std::move(Exec);

  // Section 7.3: with overlap, the optimization routine ran during the
  // drain, so only its remainder (if the drain was shorter) delays the
  // resume; without it, the full routine runs after the barrier.
  sim::SimTime Delay = Costs.ReconfigCompute;
  if (Costs.OverlapReconfig) {
    sim::SimTime Drained = M.sim().now() - PauseRequestedAt;
    Delay = Drained >= Delay ? 0 : Delay - Drained;
  }
  scheduleResume(StartSeq, Delay);
}

void RegionRunner::scheduleResume(std::uint64_t StartSeq, sim::SimTime Delay) {
  M.sim().schedule(Delay, [this, StartSeq] {
    Transitioning = false;
    Retiring.reset();
    if (Tel && TelOpenSpan) {
      Tel->end(TelPid, telemetry::TidRunner, "runner", TelOpenSpan);
      TelOpenSpan = nullptr;
    }
    // Pending is read here, not at scheduling time, so a target coalesced
    // during the delay window is honoured.
    beginExec(std::move(Pending), StartSeq);
    if (OnReconfigured)
      OnReconfigured();
  });
}

RegionExec::RestartResult RegionRunner::restartTask(unsigned TaskIdx) {
  if (Completed || !Started || !Exec)
    return {};
  RegionExec::RestartResult R = Exec->restartTask(TaskIdx);
  if (R.Restarted > 0) {
    TaskRestarts += R.Restarted;
    if (Tel)
      Tel->metrics()
          .counter("runner." + Region.name() + ".task_restarts")
          .add(R.Restarted);
  }
  return R;
}

bool RegionRunner::recover(RegionConfig Target) {
  if (Completed || !Started)
    return false;
  assert(Region.hasVariant(Target.S) && "unknown scheme for this region");
  assert(Target.DoP.size() == Region.variant(Target.S).numTasks() &&
         "one DoP per task of the target variant");

  if (!Exec) {
    // Mid-resume window: a resume is already armed and reads Pending when
    // it fires, so retargeting it is all that is needed.
    assert(Transitioning && "no execution outside a transition");
    Pending = std::move(Target);
    return true;
  }
  if (!Exec->canAbort())
    return reconfigure(std::move(Target)); // parallel tail: must drain

  std::uint64_t Frontier = Exec->commitFrontier();
  std::uint64_t InFlight = Exec->nextSeq() - Frontier;
  if (!Source.rewind(InFlight))
    return reconfigure(std::move(Target)); // cannot replay: must drain

  ++Recoveries;
  ++Reconfigurations;
  if (Tel) {
    Tel->metrics().counter("runner." + Region.name() + ".recoveries").add();
    if (TelOpenSpan) {
      // A drain was in flight; the abort supersedes it.
      Tel->end(TelPid, telemetry::TidRunner, "runner", TelOpenSpan);
      TelOpenSpan = nullptr;
    }
    Tel->begin(TelPid, telemetry::TidRunner, "runner", "recover",
               {telemetry::TraceArg::str("to", Target.str()),
                telemetry::TraceArg::num("frontier",
                                         static_cast<double>(Frontier)),
                telemetry::TraceArg::num("in_flight",
                                         static_cast<double>(InFlight))});
    TelOpenSpan = "recover";
  }
  // Absolute, not cumulative: the frontier may be one ahead of the retire
  // counter when the abort lands between the tail's functor (side effect
  // durable, frontier advanced) and its IterDone (retire counted). The
  // new execution starts at the frontier, so counting from it keeps
  // totalRetired() continuous and duplicate-free.
  RetiredBase = Frontier;
  FaultsBase += Exec->faultsInjected();
  EscalationsBase += Exec->escalations();
  Transitioning = true;
  Pending = std::move(Target);
  Exec->abort();
  // As in onQuiescent: the dead exec owns channel storage live workers may
  // still be named in; free it only after the new exec exists.
  Retiring = std::move(Exec);
  scheduleResume(Frontier, Costs.ReconfigCompute);
  return true;
}
