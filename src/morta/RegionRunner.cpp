//===- RegionRunner.cpp - Lifetime management of a flexible region ---------===//

#include "morta/RegionRunner.h"

#include <algorithm>

using namespace parcae::rt;

RegionRunner::RegionRunner(sim::Machine &M, const RuntimeCosts &Costs,
                           const FlexibleRegion &Region, WorkSource &Source)
    : M(M), Costs(Costs), Region(Region), Source(Source) {
#if PARCAE_TELEMETRY_ENABLED
  Tel = telemetry::recorder();
  if (Tel) {
    TelPid = Tel->processFor(Region.name());
    Tel->nameThread(TelPid, telemetry::TidRunner, "runner");
  }
#endif
}

RegionRunner::~RegionRunner() = default;

void RegionRunner::start(RegionConfig Initial, std::uint64_t StartSeq) {
  assert(!Started && "runner already started");
  Started = true;
  Config = Initial;
  if (StartSeq > 0) {
    // Restoring a checkpoint on a fresh runner: the cursor is also the
    // retire base, so totalRetired() continues from the migrated run.
    RetiredBase = StartSeq;
    PARCAE_TRACE(Tel, instant(TelPid, telemetry::TidRunner, "runner",
                              "restore",
                              {telemetry::TraceArg::num(
                                   "cursor", static_cast<double>(StartSeq)),
                               telemetry::TraceArg::str("config",
                                                        Initial.str())}));
  }
  beginExec(std::move(Initial), StartSeq);
}

void RegionRunner::noteLearnedK() {
  std::uint64_t K = std::max(Chunking.current(), Chunking.lastLearned());
  if (!Chunking.pinned() && K > Chunking.params().MinK)
    LearnedK[Config.S] = K;
}

void RegionRunner::beginExec(RegionConfig C, std::uint64_t StartSeq) {
  // Chunk-aware resume: re-seed the learned K for the scheme about to
  // run instead of re-learning from MinK after every pause or abort.
  if (!Chunking.pinned()) {
    auto It = LearnedK.find(C.S);
    if (It != LearnedK.end()) {
      Chunking.seed(It->second);
      ++ChunkReseeds;
      if (Tel)
        Tel->metrics().counter("chunk.reseed").add();
    } else {
      Chunking.forgetLearned();
    }
  }
  Exec = std::make_unique<RegionExec>(M, Costs, Region.variant(C.S), Source,
                                      C, StartSeq);
  Exec->setChunkPolicy(&Chunking);
  Config = std::move(C);
  Exec->OnComplete = [this] {
    Completed = true;
    // A checkpoint drain can race completion: the pause bound lies past
    // the end of the source, so the region finishes instead of
    // quiescing. Nothing is left to migrate — report the capture failed.
    if (CheckpointDone)
      dispatchCheckpointDone(/*Captured=*/false);
    if (OnComplete)
      OnComplete();
  };
  Exec->OnQuiescent = [this] { onQuiescent(); };
  // Re-wired on every execution so the watermark stream survives
  // reconfigurations and resumes; RetiredBase keeps it continuous.
  if (OnProgress)
    Exec->OnProgress = [this](std::uint64_t Retired) {
      OnProgress(RetiredBase + Retired);
    };
  Exec->OnFaultEscalation = [this](unsigned TaskIdx) {
    if (OnFaultEscalation)
      OnFaultEscalation(TaskIdx);
  };
  Exec->start();
}

bool RegionRunner::reconfigure(RegionConfig Target) {
  // A suspended or checkpointing runner is owned by the checkpoint path:
  // reshaping happens through resume()'s target configuration instead.
  if (Completed || !Started || Suspended || CheckpointDone)
    return false;
  assert(Region.hasVariant(Target.S) && "unknown scheme for this region");
  assert(Target.DoP.size() == Region.variant(Target.S).numTasks() &&
         "one DoP per task of the target variant");

  if (Transitioning) {
    // Coalesce: the pending transition resumes into the newest target.
    Pending = std::move(Target);
    return true;
  }
  if (Target == Config)
    return false;

  ++Reconfigurations;
  if (Tel)
    Tel->metrics().counter("runner." + Region.name() + ".reconfigs").add();
  if (Target.S == Config.S && Exec && Exec->canReconfigureInPlace()) {
    Exec->reconfigureInPlace(Target.DoP);
    Config = std::move(Target);
    if (OnReconfigured)
      OnReconfigured();
    return true;
  }

  // Full path: pause, drain, then resume under the new configuration.
  ++FullPauses;
  if (Tel) {
    Tel->metrics().counter("runner." + Region.name() + ".full_pauses").add();
    Tel->begin(TelPid, telemetry::TidRunner, "runner", "transition",
               {telemetry::TraceArg::str("from", Config.str()),
                telemetry::TraceArg::str("to", Target.str())});
    TelOpenSpan = "transition";
  }
  Transitioning = true;
  Pending = std::move(Target);
  PauseRequestedAt = M.sim().now();
  Exec->requestPause();
  return true;
}

void RegionRunner::onQuiescent() {
  assert(Transitioning && "quiescent without a pending transition");
  noteLearnedK();
  std::uint64_t StartSeq = Exec->nextSeq();
  RetiredBase += Exec->iterationsRetired();
  FaultsBase += Exec->faultsInjected();
  EscalationsBase += Exec->escalations();
  // Keep the drained exec alive until the new one is constructed: workers
  // have fully exited, but the object owns the channel storage.
  Retiring = std::move(Exec);

  if (CheckpointDone) {
    // The drain was (or became) a checkpoint quiesce: suspend here
    // instead of arming a resume.
    completeCheckpoint(StartSeq);
    return;
  }

  // Section 7.3: with overlap, the optimization routine ran during the
  // drain, so only its remainder (if the drain was shorter) delays the
  // resume; without it, the full routine runs after the barrier.
  sim::SimTime Delay = Costs.ReconfigCompute;
  if (Costs.OverlapReconfig) {
    sim::SimTime Drained = M.sim().now() - PauseRequestedAt;
    Delay = Drained >= Delay ? 0 : Delay - Drained;
  }
  scheduleResume(StartSeq, Delay);
}

void RegionRunner::scheduleResume(std::uint64_t StartSeq, sim::SimTime Delay) {
  M.sim().schedule(Delay, [this, StartSeq] {
    if (CheckpointDone) {
      // A checkpoint request landed inside the resume window: the region
      // is already quiesced, so capture here instead of restarting.
      completeCheckpoint(StartSeq);
      return;
    }
    Transitioning = false;
    Retiring.reset();
    if (Tel && TelOpenSpan) {
      Tel->end(TelPid, telemetry::TidRunner, "runner", TelOpenSpan);
      TelOpenSpan = nullptr;
    }
    // Pending is read here, not at scheduling time, so a target coalesced
    // during the delay window is honoured.
    beginExec(std::move(Pending), StartSeq);
    if (OnReconfigured)
      OnReconfigured();
  });
}

bool RegionRunner::requestCheckpoint(
    std::function<void(const RunnerCheckpoint *)> Done) {
  assert(Done && "a checkpoint needs a completion callback");
  if (Completed || !Started || Suspended || CheckpointDone)
    return false;
  // Capture the learned chunk size before the pause discipline collapses
  // it to MinK (degradeForPause records it, but only transitions through
  // a non-minimal K do; the live value is authoritative here).
  CheckpointK = std::max(Chunking.current(), Chunking.lastLearned());
  CheckpointAt = M.sim().now();
  CheckpointDone = std::move(Done);
  if (!Transitioning) {
    assert(Exec && "a started, non-transitioning runner holds an execution");
    Transitioning = true;
    Pending = Config;
    PauseRequestedAt = M.sim().now();
    if (Tel) {
      Tel->begin(TelPid, telemetry::TidRunner, "runner", "checkpoint_drain",
                 {telemetry::TraceArg::str("config", Config.str())});
      TelOpenSpan = "checkpoint_drain";
    }
    Exec->requestPause();
  }
  // Otherwise a pause/drain or resume window is already in flight; its
  // quiesce (or armed resume) funnels into the checkpoint intercepts.
  return true;
}

void RegionRunner::completeCheckpoint(std::uint64_t StartSeq) {
  Transitioning = false;
  Suspended = true;
  ++Checkpoints;
  LastCheckpoint.Cursor = StartSeq;
  LastCheckpoint.Retired = RetiredBase;
  LastCheckpoint.Config = Config;
  LastCheckpoint.ChunkK = CheckpointK;
  if (Tel) {
    if (TelOpenSpan) {
      Tel->end(TelPid, telemetry::TidRunner, "runner", TelOpenSpan);
      TelOpenSpan = nullptr;
    }
    Tel->metrics().counter("runner." + Region.name() + ".checkpoints").add();
    Tel->metrics()
        .histogram("checkpoint.quiesce_latency_us")
        .add(sim::toSeconds(M.sim().now() - CheckpointAt) * 1e6);
    Tel->instant(TelPid, telemetry::TidRunner, "runner", "checkpoint",
                 {telemetry::TraceArg::num("cursor",
                                           static_cast<double>(StartSeq)),
                  telemetry::TraceArg::num(
                      "retired", static_cast<double>(RetiredBase)),
                  telemetry::TraceArg::num(
                      "chunk_k", static_cast<double>(CheckpointK)),
                  telemetry::TraceArg::str("config", Config.str())});
  }
  dispatchCheckpointDone(/*Captured=*/true);
}

void RegionRunner::dispatchCheckpointDone(bool Captured) {
  M.sim().schedule(0, [this, Captured] {
    // The drained exec is only owed to live worker frames for the event
    // that quiesced it; a suspended runner frees it now.
    if (Suspended)
      Retiring.reset();
    if (!CheckpointDone)
      return;
    auto Done = std::move(CheckpointDone);
    CheckpointDone = nullptr;
    Done(Captured ? &LastCheckpoint : nullptr);
  });
}

void RegionRunner::resume(RegionConfig C, std::uint64_t StartSeq) {
  assert(Started && Suspended && "resume() needs a suspended runner");
  assert(!Exec && "a suspended runner holds no execution");
  Suspended = false;
  Retiring.reset();
  if (Tel) {
    Tel->metrics()
        .histogram("checkpoint.restore_latency_us")
        .add(sim::toSeconds(M.sim().now() - CheckpointAt) * 1e6);
    Tel->instant(TelPid, telemetry::TidRunner, "runner", "restore",
                 {telemetry::TraceArg::num("cursor",
                                           static_cast<double>(StartSeq)),
                  telemetry::TraceArg::str("config", C.str())});
  }
  beginExec(std::move(C), StartSeq);
}

RegionExec::RestartResult RegionRunner::restartTask(unsigned TaskIdx) {
  if (Completed || !Started || !Exec)
    return {};
  RegionExec::RestartResult R = Exec->restartTask(TaskIdx);
  if (R.Restarted > 0) {
    TaskRestarts += R.Restarted;
    if (Tel)
      Tel->metrics()
          .counter("runner." + Region.name() + ".task_restarts")
          .add(R.Restarted);
  }
  return R;
}

bool RegionRunner::recover(RegionConfig Target) {
  if (Completed || !Started || Suspended || CheckpointDone)
    return false;
  assert(Region.hasVariant(Target.S) && "unknown scheme for this region");
  assert(Target.DoP.size() == Region.variant(Target.S).numTasks() &&
         "one DoP per task of the target variant");

  if (!Exec) {
    // Mid-resume window: a resume is already armed and reads Pending when
    // it fires, so retargeting it is all that is needed.
    assert(Transitioning && "no execution outside a transition");
    Pending = std::move(Target);
    return true;
  }
  if (!Exec->canAbort())
    return reconfigure(std::move(Target)); // parallel tail: must drain

  std::uint64_t Frontier = Exec->commitFrontier();
  std::uint64_t InFlight = Exec->nextSeq() - Frontier;
  if (!Source.rewind(InFlight))
    return reconfigure(std::move(Target)); // cannot replay: must drain

  ++Recoveries;
  ++Reconfigurations;
  if (Tel) {
    Tel->metrics().counter("runner." + Region.name() + ".recoveries").add();
    if (TelOpenSpan) {
      // A drain was in flight; the abort supersedes it.
      Tel->end(TelPid, telemetry::TidRunner, "runner", TelOpenSpan);
      TelOpenSpan = nullptr;
    }
    Tel->begin(TelPid, telemetry::TidRunner, "runner", "recover",
               {telemetry::TraceArg::str("to", Target.str()),
                telemetry::TraceArg::num("frontier",
                                         static_cast<double>(Frontier)),
                telemetry::TraceArg::num("in_flight",
                                         static_cast<double>(InFlight))});
    TelOpenSpan = "recover";
  }
  noteLearnedK();
  // Absolute, not cumulative: the frontier may be one ahead of the retire
  // counter when the abort lands between the tail's functor (side effect
  // durable, frontier advanced) and its IterDone (retire counted). The
  // new execution starts at the frontier, so counting from it keeps
  // totalRetired() continuous and duplicate-free.
  RetiredBase = Frontier;
  FaultsBase += Exec->faultsInjected();
  EscalationsBase += Exec->escalations();
  Transitioning = true;
  Pending = std::move(Target);
  Exec->abort();
  // As in onQuiescent: the dead exec owns channel storage live workers may
  // still be named in; free it only after the new exec exists.
  Retiring = std::move(Exec);
  scheduleResume(Frontier, Costs.ReconfigCompute);
  return true;
}
