//===- RegionRunner.cpp - Lifetime management of a flexible region ---------===//

#include "morta/RegionRunner.h"

#include <algorithm>

using namespace parcae::rt;

RegionRunner::RegionRunner(sim::Machine &M, const RuntimeCosts &Costs,
                           const FlexibleRegion &Region, WorkSource &Source)
    : M(M), Costs(Costs), Region(Region), Source(Source) {
#if PARCAE_TELEMETRY_ENABLED
  Tel = telemetry::recorder();
  if (Tel) {
    TelPid = Tel->processFor(Region.name());
    Tel->nameThread(TelPid, telemetry::TidRunner, "runner");
  }
#endif
}

RegionRunner::~RegionRunner() = default;

void RegionRunner::start(RegionConfig Initial) {
  assert(!Started && "runner already started");
  Started = true;
  Config = Initial;
  beginExec(std::move(Initial), 0);
}

void RegionRunner::beginExec(RegionConfig C, std::uint64_t StartSeq) {
  Exec = std::make_unique<RegionExec>(M, Costs, Region.variant(C.S), Source,
                                      C, StartSeq);
  Config = std::move(C);
  Exec->OnComplete = [this] {
    Completed = true;
    if (OnComplete)
      OnComplete();
  };
  Exec->OnQuiescent = [this] { onQuiescent(); };
  Exec->start();
}

bool RegionRunner::reconfigure(RegionConfig Target) {
  if (Completed || !Started)
    return false;
  assert(Region.hasVariant(Target.S) && "unknown scheme for this region");
  assert(Target.DoP.size() == Region.variant(Target.S).numTasks() &&
         "one DoP per task of the target variant");

  if (Transitioning) {
    // Coalesce: the pending transition resumes into the newest target.
    Pending = std::move(Target);
    return true;
  }
  if (Target == Config)
    return false;

  ++Reconfigurations;
  if (Tel)
    Tel->metrics().counter("runner." + Region.name() + ".reconfigs").add();
  if (Target.S == Config.S && Exec && Exec->canReconfigureInPlace()) {
    Exec->reconfigureInPlace(Target.DoP);
    Config = std::move(Target);
    if (OnReconfigured)
      OnReconfigured();
    return true;
  }

  // Full path: pause, drain, then resume under the new configuration.
  ++FullPauses;
  if (Tel) {
    Tel->metrics().counter("runner." + Region.name() + ".full_pauses").add();
    Tel->begin(TelPid, telemetry::TidRunner, "runner", "transition",
               {telemetry::TraceArg::str("from", Config.str()),
                telemetry::TraceArg::str("to", Target.str())});
  }
  Transitioning = true;
  Pending = std::move(Target);
  PauseRequestedAt = M.sim().now();
  Exec->requestPause();
  return true;
}

void RegionRunner::onQuiescent() {
  assert(Transitioning && "quiescent without a pending transition");
  std::uint64_t StartSeq = Exec->nextSeq();
  RetiredBase += Exec->iterationsRetired();
  // Keep the drained exec alive until the new one is constructed: workers
  // have fully exited, but the object owns the channel storage.
  Retiring = std::move(Exec);

  // Section 7.3: with overlap, the optimization routine ran during the
  // drain, so only its remainder (if the drain was shorter) delays the
  // resume; without it, the full routine runs after the barrier.
  sim::SimTime Delay = Costs.ReconfigCompute;
  if (Costs.OverlapReconfig) {
    sim::SimTime Drained = M.sim().now() - PauseRequestedAt;
    Delay = Drained >= Delay ? 0 : Delay - Drained;
  }

  RegionConfig Next = std::move(Pending);
  M.sim().schedule(Delay, [this, Next = std::move(Next), StartSeq]() mutable {
    Transitioning = false;
    Retiring.reset();
    PARCAE_TRACE(Tel, end(TelPid, telemetry::TidRunner, "runner",
                          "transition"));
    beginExec(std::move(Next), StartSeq);
    if (OnReconfigured)
      OnReconfigured();
  });
}
