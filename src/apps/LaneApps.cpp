//===- LaneApps.cpp - Two-level loop-nest server applications --------------===//

#include "apps/LaneApps.h"

#include <cmath>

using namespace parcae::rt;
namespace sim = parcae::sim;

double InnerScalability::speedup(unsigned L) const {
  if (L <= 1)
    return 1.0;
  double X = static_cast<double>(L - 1);
  double Denom = 1.0 + FixedTax + Linear * X + Quad * X * X;
  double S = static_cast<double>(L) / Denom;
  if (Knee > 0 && L > Knee) {
    // Beyond the knee (frame-parallelism limit, cache capacity, ...) the
    // speedup decays instead of growing.
    double AtKnee = speedup(Knee);
    double Decay = 1.0 - KneeDecay * static_cast<double>(L - Knee);
    S = std::max(AtKnee * std::max(Decay, 0.3), 1.0);
  }
  return S;
}

unsigned InnerScalability::dPmax(unsigned Limit) const {
  // The paper's dPmax: the largest useful team size — the smallest DoP
  // that maximizes the speedup curve (growing past it wastes threads or
  // loses performance).
  unsigned BestL = 1;
  double BestS = 1.0;
  for (unsigned L = 2; L <= Limit; ++L) {
    double S = speedup(L);
    if (S > BestS) {
      BestS = S;
      BestL = L;
    }
  }
  return BestL;
}

unsigned InnerScalability::dPmin(unsigned Limit) const {
  for (unsigned L = 2; L <= Limit; ++L)
    if (speedup(L) > 1.0)
      return L;
  return 1;
}

LaneAppParams parcae::rt::x264Params() {
  LaneAppParams P;
  P.Name = "x264";
  P.MeanWork = 25 * sim::Sec; // ~25 s to transcode one video sequentially
  P.WorkJitter = 0.15;
  P.InnerKind = "PIPE";
  P.Scal = {0.01, 0.015, 0.003, 8, 0.08}; // S(8) ~ 6.3 (Section 2.3)
  return P;
}

LaneAppParams parcae::rt::swaptionsParams() {
  LaneAppParams P;
  P.Name = "swaptions";
  P.MeanWork = 8 * sim::Sec;
  P.WorkJitter = 0.10;
  P.InnerKind = "DOALL";
  P.Scal = {0.005, 0.010, 0.0008, 8, 0.05};
  return P;
}

LaneAppParams parcae::rt::bzipParams() {
  LaneAppParams P;
  P.Name = "bzip";
  P.MeanWork = 9 * sim::Sec;
  P.WorkJitter = 0.12;
  P.InnerKind = "PIPE";
  // Heavy fixed parallelization tax: speedup only from DoP 4 on
  // (Section 8.2.1 notes bzip's dPmin is four).
  P.Scal = {2.0, 0.010, 0.001, 6, 0.06};
  return P;
}

LaneAppParams parcae::rt::oilifyParams() {
  LaneAppParams P;
  P.Name = "oilify";
  P.MeanWork = 20 * sim::Sec;
  P.WorkJitter = 0.10;
  P.InnerKind = "DOALL";
  P.Scal = {0.01, 0.008, 0.0015, 8, 0.05};
  return P;
}

std::string LaneConfig::str(const char *InnerKind) const {
  std::string Out = "<(" + std::to_string(K) + ",DOALL),(";
  if (InnerParallel)
    Out += std::to_string(L) + "," + InnerKind;
  else
    Out += "1,SEQ";
  Out += ")>";
  return Out;
}

LaneServerApp::LaneServerApp(sim::Machine &M, const RuntimeCosts &Costs,
                             LaneAppParams Params, QueueWorkSource &Queue)
    : Params(std::move(Params)), Queue(Queue),
      K(std::make_shared<Knobs>()), Region(this->Params.Name) {
  InnerScalability Scal = this->Params.Scal;
  auto Kn = K;
  QueueWorkSource *Q = &Queue;
  LaneServerApp *Self = this;
  RegionDesc D;
  D.Name = this->Params.Name + "-lanes";
  D.S = Scheme::DoAny;
  D.Tasks.emplace_back("lane", TaskType::Par,
                       [Kn, Scal, Q, Self](IterationContext &Ctx) {
                         auto Req = std::static_pointer_cast<Request>(
                             Ctx.In[0].Ref);
                         assert(Req && "lane iteration without a request");
                         double S =
                             Kn->InnerParallel ? Scal.speedup(Kn->L) : 1.0;
                         auto Cost = static_cast<sim::SimTime>(
                             static_cast<double>(Req->Work) / S);
                         Ctx.Cost = Cost;
                         Ctx.Gang = Kn->InnerParallel ? Kn->L : 1;
                         Req->CompleteTime = Ctx.Now + Cost;
                         if (Self->OnDispatch)
                           Self->OnDispatch(static_cast<double>(Q->size()));
                       });
  Region.addVariant(std::move(D));
  Runner = std::make_unique<RegionRunner>(M, Costs, Region, Queue);
}

void LaneServerApp::start(LaneConfig C) {
  Config = C;
  K->InnerParallel = C.InnerParallel;
  K->L = C.L;
  RegionConfig RC;
  RC.S = Scheme::DoAny;
  RC.DoP = {C.K};
  Runner->start(RC);
}

void LaneServerApp::reconfigure(LaneConfig C) {
  K->InnerParallel = C.InnerParallel;
  K->L = C.L;
  if (C.K != Config.K) {
    RegionConfig RC;
    RC.S = Scheme::DoAny;
    RC.DoP = {C.K};
    Runner->reconfigure(std::move(RC));
  }
  Config = C;
}

parcae::sim::SimTime LaneServerApp::execTime(unsigned L) const {
  return static_cast<sim::SimTime>(static_cast<double>(Params.MeanWork) /
                                   Params.Scal.speedup(L));
}
