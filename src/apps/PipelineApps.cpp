//===- PipelineApps.cpp - Pipeline server applications ---------------------===//

#include "apps/PipelineApps.h"

using namespace parcae::rt;
namespace sim = parcae::sim;

namespace {

/// Deterministic per-(request, stage) cost jitter in [0.75, 1.25).
double jitterFor(std::uint64_t Id, unsigned Stage) {
  std::uint64_t H = (Id + 1) * 0x9e3779b97f4a7c15ull;
  H ^= (Stage + 1) * 0xbf58476d1ce4e5b9ull;
  H = (H ^ (H >> 30)) * 0x94d049bb133111ebull;
  H ^= H >> 31;
  return 0.75 + static_cast<double>(H % 1000) / 2000.0;
}

/// Builds the Task for one stage. \p StageIdx keys the jitter so fused
/// variants reproduce the same per-request work as the split pipeline.
Task makeStageTask(const StageParams &SP, unsigned StageIdx, bool IsTail) {
  sim::SimTime Mean = SP.MeanCost;
  sim::SimTime Crit = SP.CritCost;
  int Lock = SP.CritLock;
  return Task(SP.Name, SP.Type,
              [Mean, Crit, Lock, StageIdx, IsTail](IterationContext &Ctx) {
                const Token &In = Ctx.In[0];
                auto Req = std::static_pointer_cast<Request>(In.Ref);
                assert(Req && "pipeline iteration without a request");
                double J = jitterFor(Req->Id, StageIdx);
                Ctx.Cost = static_cast<sim::SimTime>(
                    static_cast<double>(Mean) * J);
                if (Crit > 0)
                  Ctx.Criticals.push_back({Lock, Crit});
                for (Token &O : Ctx.Out) {
                  O.Ref = In.Ref;
                  O.Value = In.Value;
                  O.Work = In.Work;
                }
                if (IsTail)
                  Req->CompleteTime = Ctx.Now + Ctx.Cost;
              });
}

/// A fused middle task running the work of stages [From, To].
Task makeFusedTask(const std::vector<StageParams> &Stages, unsigned From,
                   unsigned To) {
  std::vector<StageParams> Mid(Stages.begin() + From,
                               Stages.begin() + To + 1);
  unsigned Base = From;
  return Task("fused", TaskType::Par,
              [Mid, Base](IterationContext &Ctx) {
                const Token &In = Ctx.In[0];
                auto Req = std::static_pointer_cast<Request>(In.Ref);
                assert(Req && "pipeline iteration without a request");
                sim::SimTime Total = 0;
                for (unsigned I = 0; I < Mid.size(); ++I) {
                  double J = jitterFor(Req->Id, Base + I);
                  Total += static_cast<sim::SimTime>(
                      static_cast<double>(Mid[I].MeanCost) * J);
                  if (Mid[I].CritCost > 0)
                    Ctx.Criticals.push_back(
                        {Mid[I].CritLock, Mid[I].CritCost});
                }
                Ctx.Cost = Total;
                for (Token &O : Ctx.Out) {
                  O.Ref = In.Ref;
                  O.Value = In.Value;
                  O.Work = In.Work;
                }
              });
}

/// Adds the PS-DSWP (one task per stage) and Fused (head, fused middle,
/// tail) variants derived from the stage list.
void buildVariants(PipelineApp &App) {
  assert(App.Stages.size() >= 3 && "pipeline needs head, middle, tail");
  assert(App.Stages.front().Type == TaskType::Seq &&
         App.Stages.back().Type == TaskType::Seq &&
         "pipeline ends must be sequential");
  {
    RegionDesc D;
    D.Name = App.Name + "-pipe";
    D.S = Scheme::PsDswp;
    for (unsigned I = 0; I < App.Stages.size(); ++I)
      D.Tasks.push_back(makeStageTask(App.Stages[I], I,
                                      I + 1 == App.Stages.size()));
    for (unsigned I = 0; I + 1 < App.Stages.size(); ++I)
      D.Links.push_back({I, I + 1});
    App.Region.addVariant(std::move(D));
  }
  {
    RegionDesc D;
    D.Name = App.Name + "-fused";
    D.S = Scheme::Fused;
    unsigned Last = App.numStages() - 1;
    D.Tasks.push_back(makeStageTask(App.Stages[0], 0, false));
    D.Tasks.push_back(makeFusedTask(App.Stages, 1, Last - 1));
    D.Tasks.push_back(makeStageTask(App.Stages[Last], Last, true));
    D.Links.push_back({0, 1});
    D.Links.push_back({1, 2});
    App.Region.addVariant(std::move(D));
  }
}

} // namespace

PipelineApp parcae::rt::makeFerret() {
  PipelineApp App("ferret");
  App.Stages = {
      {"load", TaskType::Seq, 8 * sim::MSec, 0, 0},
      {"seg", TaskType::Par, 60 * sim::MSec, 0, 0},
      {"extract", TaskType::Par, 80 * sim::MSec, 0, 0},
      {"vec", TaskType::Par, 70 * sim::MSec, 0, 0},
      {"rank", TaskType::Par, 150 * sim::MSec, 0, 0},
      {"out", TaskType::Seq, 5 * sim::MSec, 0, 0},
  };
  buildVariants(App);
  return App;
}

PipelineApp parcae::rt::makeDedup() {
  PipelineApp App("dedup");
  App.Stages = {
      {"fragment", TaskType::Seq, 2 * sim::MSec, 0, 0},
      {"refine", TaskType::Par, 25 * sim::MSec, 0, 0},
      {"dedup", TaskType::Par, 18 * sim::MSec, 2 * sim::MSec, 7},
      {"compress", TaskType::Par, 60 * sim::MSec, 0, 0},
      {"write", TaskType::Seq, 2500 * sim::USec, 0, 0},
  };
  buildVariants(App);
  return App;
}

RegionConfig parcae::rt::evenConfig(const PipelineApp &App, Scheme S,
                                    unsigned Even) {
  const RegionDesc &V = App.Region.variant(S);
  RegionConfig C;
  C.S = S;
  for (const Task &T : V.Tasks)
    C.DoP.push_back(T.isParallel() ? Even : 1);
  return C;
}
