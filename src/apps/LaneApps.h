//===- LaneApps.h - Two-level loop-nest server applications -----*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-level loop-nest applications of Chapter 2 and Sections
/// 8.2.1/8.2.2: an outer loop over user requests (videos to transcode,
/// portfolios to price, files to compress, images to edit) parallelized
/// DOALL with K lanes, and an inner loop per request that may run
/// sequentially or on a team of L threads. The parallelism configuration
/// is the paper's <(K, DOALL), (L, PIPE|DOALL|SEQ)>.
///
/// The inner team is modelled as a gang: processing one request occupies
/// L cores for Work/S(L) cycles, where S is the application's measured
/// inner-scalability curve (e.g. x264's 6.3x at L = 8). This preserves
/// exactly the latency/throughput tradeoff Figure 2.4 demonstrates: lower
/// per-request time at large L, but lower system throughput under heavy
/// load because S(L) < L.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_APPS_LANEAPPS_H
#define PARCAE_APPS_LANEAPPS_H

#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/RegionRunner.h"
#include "workloads/LoadGen.h"

#include <memory>
#include <string>

namespace parcae::rt {

/// Inner-loop speedup curve S(L) = L / (1 + F + f*(L-1) + q*(L-1)^2),
/// with the fixed tax F applied only for L >= 2.
struct InnerScalability {
  double FixedTax = 0.0;   ///< one-time parallelization overhead
  double Linear = 0.02;    ///< per-extra-thread overhead
  double Quad = 0.002;     ///< contention growth
  unsigned Knee = 0;       ///< team size beyond which speedup decays (0: none)
  double KneeDecay = 0.05; ///< relative decay per thread beyond the knee

  double speedup(unsigned L) const;
  /// Largest L with parallel efficiency S(L)/L >= 0.5 (the paper's dPmax).
  unsigned dPmax(unsigned Limit = 64) const;
  /// Smallest L with S(L) > 1 (the paper notes bzip needs 4).
  unsigned dPmin(unsigned Limit = 64) const;
};

/// Static description of one two-level application.
struct LaneAppParams {
  std::string Name;
  /// Mean sequential work per request, cycles.
  sim::SimTime MeanWork = 0;
  /// Relative stddev of per-request work.
  double WorkJitter = 0.1;
  /// What the inner parallelism is called in the tables (PIPE or DOALL).
  const char *InnerKind = "PIPE";
  InnerScalability Scal;
};

/// Ready-made parameter sets matching the paper's applications on the
/// 24-core Xeon X7460 platform.
LaneAppParams x264Params();      ///< video transcoding (PARSEC x264)
LaneAppParams swaptionsParams(); ///< option pricing (PARSEC swaptions)
LaneAppParams bzipParams();      ///< data compression (SPEC bzip2)
LaneAppParams oilifyParams();    ///< image editing (GIMP oilify)

/// The paper's <(K, DOALL), (L, ...)> configuration of a lane app.
struct LaneConfig {
  unsigned K = 1;            ///< outer DoP: concurrent requests
  bool InnerParallel = false;
  unsigned L = 1;            ///< inner DoP (1 when sequential)

  unsigned threads() const { return K * (InnerParallel ? L : 1); }
  std::string str(const char *InnerKind) const;
};

/// Runs a lane application on the simulated machine.
class LaneServerApp {
public:
  LaneServerApp(sim::Machine &M, const RuntimeCosts &Costs,
                LaneAppParams Params, QueueWorkSource &Queue);

  void start(LaneConfig C);
  /// Applies a new configuration; K changes ride the in-place DoP path,
  /// inner changes take effect from the next request.
  void reconfigure(LaneConfig C);

  const LaneConfig &config() const { return Config; }
  const LaneAppParams &params() const { return Params; }
  RegionRunner &runner() { return *Runner; }
  std::uint64_t completedRequests() const { return Runner->totalRetired(); }

  /// Per-request execution time under inner DoP \p L (Figure 2.4(a)).
  sim::SimTime execTime(unsigned L) const;

  /// Called at each request dispatch with the work-queue occupancy; this
  /// is where WQT-H counts its "consecutive tasks" (Section 6.3.1).
  std::function<void(double QueueOccupancy)> OnDispatch;

private:
  LaneAppParams Params;
  QueueWorkSource &Queue;
  LaneConfig Config;
  /// Shared with the task functor so reconfigurations apply immediately.
  struct Knobs {
    bool InnerParallel = false;
    unsigned L = 1;
  };
  std::shared_ptr<Knobs> K;
  FlexibleRegion Region;
  std::unique_ptr<RegionRunner> Runner;
};

} // namespace parcae::rt

#endif // PARCAE_APPS_LANEAPPS_H
