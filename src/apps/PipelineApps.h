//===- PipelineApps.h - Pipeline server applications ------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-level pipeline applications of Sections 6.3.2 and 8.2.2:
///
///  * ferret, the image search engine (Figure 6.2): a six-stage pipeline
///    load(SEQ) -> seg(PAR) -> extract(PAR) -> vec(PAR) -> rank(PAR) ->
///    out(SEQ), plus the collapsed variant with the four parallel stages
///    fused into one (Figure 6.2(b)) that TBF's task fusion switches to.
///  * dedup, the deduplication pipeline: fragment(SEQ) -> refine(PAR) ->
///    dedup(PAR, hash-table critical section) -> compress(PAR) ->
///    write(SEQ), with the fused middle variant as well.
///
/// Stage costs carry deterministic per-request jitter so stages are
/// imbalanced the way the real benchmarks are; the imbalance is what the
/// TBF / FDP / SEDA comparison of Table 8.5 is about.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_APPS_PIPELINEAPPS_H
#define PARCAE_APPS_PIPELINEAPPS_H

#include "core/Region.h"
#include "sim/Time.h"
#include "workloads/LoadGen.h"

#include <string>
#include <vector>

namespace parcae::rt {

/// One pipeline stage's static description.
struct StageParams {
  std::string Name;
  TaskType Type = TaskType::Par;
  sim::SimTime MeanCost = 0;
  /// Optional critical section (lock id, cycles) per iteration.
  sim::SimTime CritCost = 0;
  int CritLock = 0;
};

/// A pipeline application: stages plus derived region variants.
struct PipelineApp {
  std::string Name;
  std::vector<StageParams> Stages;
  FlexibleRegion Region;

  explicit PipelineApp(std::string Name) : Name(Name), Region(Name) {}

  unsigned numStages() const { return static_cast<unsigned>(Stages.size()); }
};

/// Builds ferret. The region exposes a PS-DSWP variant (one task per
/// stage) and a Fused variant (load, fused-middle, out).
PipelineApp makeFerret();

/// Builds dedup, same structure.
PipelineApp makeDedup();

/// The DoP vector "one thread per sequential stage, Even per parallel
/// stage" used as the Pthreads baseline in Table 8.5.
RegionConfig evenConfig(const PipelineApp &App, Scheme S, unsigned Even);

} // namespace parcae::rt

#endif // PARCAE_APPS_PIPELINEAPPS_H
