//===- Simulator.cpp - Discrete-event simulation core ----------------------===//

#include "sim/Simulator.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace parcae::sim;

void Simulator::reserve(std::size_t Events) {
  Heap.reserve(Events);
  Ring.reserve(Events);
  Drain.reserve(Events);
  std::size_t Chunks = (Events + ChunkMask) >> ChunkShift;
  Pool.reserve(Chunks);
  while (Pool.size() < Chunks)
    Pool.push_back(std::make_unique<EventFn[]>(ChunkMask + 1));
  Wheel.reserveNodes(Chunks << ChunkShift);
}

bool Simulator::popDueNow(std::uint32_t &OutSlot) {
  // Merge the three tier fronts at the current instant by seq. The ring
  // front is checked last so a tie (impossible: seqs are unique) or an
  // empty tier costs one predictable branch each.
  int Src = -1;
  std::uint32_t Best = 0;
  if (DrainHead < Drain.size()) {
    Src = 0;
    Best = Drain[DrainHead].Seq;
  }
  if (!Heap.empty() && Heap.front().At == Now &&
      (Src < 0 || seqAfter(Best, Heap.front().Seq))) {
    Src = 1;
    Best = Heap.front().Seq;
  }
  if (RingHead < Ring.size() &&
      (Src < 0 || seqAfter(Best, Ring[RingHead].Seq))) {
    Src = 2;
  }
  switch (Src) {
  case 0: // drained wheel bucket
    OutSlot = Drain[DrainHead].Slot;
    if (++DrainHead == Drain.size()) {
      Drain.clear();
      DrainHead = 0;
    }
    ++WheelHits;
    return true;
  case 1: // equal-time heap entry
    std::pop_heap(Heap.begin(), Heap.end(), Later{});
    OutSlot = Heap.back().Slot;
    Heap.pop_back();
    ++HeapHits;
    return true;
  case 2: // due-now ring
    OutSlot = Ring[RingHead].Slot;
    if (++RingHead == Ring.size()) {
      Ring.clear();
      RingHead = 0;
    }
    ++RingHits;
    return true;
  default:
    return false;
  }
}

bool Simulator::advanceClock() {
  assert(RingHead == Ring.size() && DrainHead == Drain.size() &&
         "clock advanced with due-now work pending");
  bool HaveWheel = WheelOn && !Wheel.empty();
  SimTime Tw = HaveWheel ? Wheel.nextTime(Now) : 0;
  if (Heap.empty() && !HaveWheel)
    return false;
  SimTime T =
      HaveWheel && (Heap.empty() || Tw <= Heap.front().At) ? Tw
                                                           : Heap.front().At;
  assert(T > Now && "event queue went backwards");
  Now = T;
  if (HaveWheel && Tw == T)
    Wheel.popBucket(T, Drain); // seq-sorted; DrainHead is already 0
  // Far-horizon events whose epoch the wheel window now covers migrate
  // out of the heap; entries due exactly at Now stay put and merge with
  // the drained bucket in popDueNow, preserving (time, seq) order.
  if (WheelOn)
    while (!Heap.empty() && Wheel.accepts(Heap.front().At, Now)) {
      std::pop_heap(Heap.begin(), Heap.end(), Later{});
      Scheduled E = Heap.back();
      Heap.pop_back();
      Wheel.insert(E.At, E.Seq, E.Slot);
      ++SpillMigrations;
    }
  return true;
}

bool Simulator::nextPendingTime(SimTime &T) const {
  if (RingHead < Ring.size() || DrainHead < Drain.size()) {
    T = Now;
    return true;
  }
  bool Any = false;
  if (!Heap.empty()) {
    T = Heap.front().At;
    Any = true;
  }
  if (WheelOn && !Wheel.empty()) {
    SimTime Tw = Wheel.nextTime(Now);
    if (!Any || Tw < T)
      T = Tw;
    Any = true;
  }
  return Any;
}

bool Simulator::runOne() {
  std::uint32_t Slot;
  if (popDueNow(Slot)) {
    // Guard against model bugs that spin forever at one virtual instant.
    // Always on: in release builds an assert would vanish and the run
    // would hang without a diagnostic.
    if (++SameTimeCount >= SameTimeLimit)
      diagnoseLivelock();
  } else {
    if (!advanceClock())
      return false;
    SameTimeCount = 0;
    bool Due = popDueNow(Slot);
    (void)Due;
    assert(Due && "advanceClock produced no due event");
  }
  ++EventsProcessed;
  // Invoked in place: chunk addresses are stable, so the handler may
  // schedule (growing the slab or recycling other slots) while running.
  // This slot is only recycled after the callback is destroyed.
  EventFn &Fn = slot(Slot);
  Fn();
  Fn.reset();
  freeSlot(Slot);
  return true;
}

void Simulator::diagnoseLivelock() const {
  std::fprintf(stderr,
               "parcae sim: event livelock: %" PRIu64
               " consecutive events at t=%" PRIu64
               " ns without the clock advancing (%" PRIu64
               " events processed in total); a thread body or timer is "
               "re-scheduling itself with zero delay\n",
               SameTimeCount, static_cast<std::uint64_t>(Now),
               EventsProcessed);
  std::fprintf(stderr,
               "  queue: ring=%zu drain=%zu wheel=%zu heap=%zu pending "
               "(span %zu, mode %s)\n",
               Ring.size() - RingHead, Drain.size() - DrainHead, Wheel.size(),
               Heap.size(), Wheel.span(),
               WheelOn ? "wheel" : "heap-only");
  // The next few (time, seq) pairs across every tier, globally ordered:
  // a same-time spin shows up as a run of equal timestamps with climbing
  // seqs, naming exactly which schedules keep the clock pinned.
  struct P {
    SimTime At;
    std::uint32_t Seq;
  };
  std::vector<P> Pend;
  for (std::size_t I = RingHead; I < Ring.size() && Pend.size() < 8; ++I)
    Pend.push_back(P{Now, Ring[I].Seq});
  for (std::size_t I = DrainHead; I < Drain.size() && Pend.size() < 16; ++I)
    Pend.push_back(P{Now, Drain[I].Seq});
  std::vector<Scheduled> H = Heap;
  for (int I = 0; I < 8 && !H.empty(); ++I) {
    std::pop_heap(H.begin(), H.end(), Later{});
    Pend.push_back(P{H.back().At, H.back().Seq});
    H.pop_back();
  }
  if (WheelOn && !Wheel.empty()) {
    std::vector<TimingWheel::Entry> Bucket;
    SimTime Tw = Wheel.nextTime(Now);
    Wheel.collectBucket(Tw, Bucket);
    for (const TimingWheel::Entry &E : Bucket)
      Pend.push_back(P{Tw, E.Seq});
  }
  std::sort(Pend.begin(), Pend.end(), [](const P &A, const P &B) {
    if (A.At != B.At)
      return A.At < B.At;
    return static_cast<std::int32_t>(A.Seq - B.Seq) < 0;
  });
  std::fprintf(stderr, "  next pending:");
  std::size_t Shown = Pend.size() < 6 ? Pend.size() : 6;
  for (std::size_t I = 0; I < Shown; ++I)
    std::fprintf(stderr, " (t=%" PRIu64 ", seq=%" PRIu32 ")",
                 static_cast<std::uint64_t>(Pend[I].At), Pend[I].Seq);
  std::fprintf(stderr, "%s\n", Pend.empty() ? " <none>" : "");
  std::abort();
}

void Simulator::run() {
  Stopped = false;
  while (!Stopped && runOne())
    ;
}

void Simulator::runUntil(SimTime Deadline) {
  Stopped = false;
  SimTime T = 0;
  while (!Stopped && nextPendingTime(T) && T <= Deadline)
    runOne();
  if (Now < Deadline)
    Now = Deadline;
}
