//===- Simulator.cpp - Discrete-event simulation core ----------------------===//

#include "sim/Simulator.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace parcae::sim;

void Simulator::reserve(std::size_t Events) {
  Heap.reserve(Events);
  Ring.reserve(Events);
  std::size_t Chunks = (Events + ChunkMask) >> ChunkShift;
  Pool.reserve(Chunks);
  while (Pool.size() < Chunks)
    Pool.push_back(std::make_unique<EventFn[]>(ChunkMask + 1));
}

bool Simulator::runOne() {
  std::uint32_t Slot;
  bool AtNow;
  if (RingHead < Ring.size() &&
      (Heap.empty() || Heap.front().At > Now ||
       seqAfter(Heap.front().Seq, Ring[RingHead].Seq))) {
    // Due-now ring front is the globally earliest (time, seq) event.
    Slot = Ring[RingHead].Slot;
    ++RingHead;
    if (RingHead == Ring.size()) {
      Ring.clear();
      RingHead = 0;
    }
    AtNow = true;
  } else {
    if (Heap.empty())
      return false;
    std::pop_heap(Heap.begin(), Heap.end(), Later{});
    Scheduled E = Heap.back();
    Heap.pop_back();
    assert(E.At >= Now && "event queue went backwards");
    AtNow = E.At == Now;
    Now = E.At;
    Slot = E.Slot;
  }
  if (AtNow) {
    // Guard against model bugs that spin forever at one virtual instant.
    // Always on: in release builds an assert would vanish and the run
    // would hang without a diagnostic.
    if (++SameTimeCount >= SameTimeLimit)
      diagnoseLivelock();
  } else {
    SameTimeCount = 0;
  }
  ++EventsProcessed;
  // Invoked in place: chunk addresses are stable, so the handler may
  // schedule (growing the slab or recycling other slots) while running.
  // This slot is only recycled after the callback is destroyed.
  EventFn &Fn = slot(Slot);
  Fn();
  Fn.reset();
  freeSlot(Slot);
  return true;
}

void Simulator::diagnoseLivelock() const {
  std::fprintf(stderr,
               "parcae sim: event livelock: %" PRIu64
               " consecutive events at t=%" PRIu64
               " ns without the clock advancing (%" PRIu64
               " events processed in total); a thread body or timer is "
               "re-scheduling itself with zero delay\n",
               SameTimeCount, static_cast<std::uint64_t>(Now),
               EventsProcessed);
  std::abort();
}

void Simulator::run() {
  Stopped = false;
  while (!Stopped && runOne())
    ;
}

void Simulator::runUntil(SimTime Deadline) {
  Stopped = false;
  // Ring events are due at Now (<= Deadline by construction).
  while (!Stopped && !empty() &&
         (RingHead < Ring.size() || Heap.front().At <= Deadline))
    runOne();
  if (Now < Deadline)
    Now = Deadline;
}
