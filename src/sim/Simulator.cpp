//===- Simulator.cpp - Discrete-event simulation core ----------------------===//

#include "sim/Simulator.h"

#include <cassert>

using namespace parcae::sim;

void Simulator::scheduleAt(SimTime At, std::function<void()> Fn) {
  assert(At >= Now && "cannot schedule an event in the past");
  Queue.push(Event{At, NextSeq++, std::move(Fn)});
}

bool Simulator::runOne() {
  if (Queue.empty())
    return false;
  // priority_queue::top() is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately afterwards.
  Event E = std::move(const_cast<Event &>(Queue.top()));
  Queue.pop();
  assert(E.At >= Now && "event queue went backwards");
  if (E.At == Now) {
    // Guard against model bugs that spin forever at one virtual instant.
    assert(++SameTimeCount < 20000000 &&
           "event livelock: unbounded events at a single timestamp");
  } else {
    SameTimeCount = 0;
  }
  Now = E.At;
  ++EventsProcessed;
  E.Fn();
  return true;
}

void Simulator::run() {
  Stopped = false;
  while (!Stopped && runOne())
    ;
}

void Simulator::runUntil(SimTime Deadline) {
  Stopped = false;
  while (!Stopped && !Queue.empty() && Queue.top().At <= Deadline)
    runOne();
  if (Now < Deadline)
    Now = Deadline;
}
