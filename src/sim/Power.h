//===- Power.h - Platform power model and PDU sampling ----------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Power modelling for the TPC (Throughput Power Controller) experiments.
/// The model is static platform power plus per-busy-core dynamic power,
/// calibrated so that, as in Section 8.2.3, 90% of peak total power equals
/// 60% of the dynamic range: Static = 72 x PerCore (600 W + 24 x 8.33 W
/// gives the paper's ~800 W peak on the 24-core platform).
///
/// The PduSampler reproduces the AP7892 power distribution unit the paper
/// measured with: 13 samples per minute, which rate-limits how fast the
/// TPC control loop can react (Section 8.2.3 discusses exactly this).
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_POWER_H
#define PARCAE_SIM_POWER_H

#include "sim/Machine.h"
#include "sim/Simulator.h"
#include "sim/Time.h"

#include <functional>

namespace parcae::sim {

/// Static-plus-dynamic platform power model.
struct PowerModel {
  double StaticWatts = 600.0;
  double PerCoreActiveWatts = 8.33;

  double watts(unsigned BusyCores) const {
    return StaticWatts + PerCoreActiveWatts * static_cast<double>(BusyCores);
  }
  /// Power with every core of \p Machine busy.
  double peakWatts(unsigned NumCores) const { return watts(NumCores); }
};

/// Integrates machine power over time and reports instantaneous draw.
class EnergyMeter {
public:
  /// Attaches to \p M's busy-count callback. At most one meter per machine.
  EnergyMeter(Machine &M, PowerModel Model);

  /// Instantaneous draw right now.
  double currentWatts() const { return Model.watts(BusyCores); }
  /// Total energy consumed since attachment, in joules.
  double joules() const;
  const PowerModel &model() const { return Model; }

private:
  void onBusyChange(unsigned NewBusy);

  Machine &M;
  PowerModel Model;
  unsigned BusyCores = 0;
  mutable double Joules = 0.0;
  mutable SimTime LastChange = 0;
};

/// Periodic power sampler with the AP7892's 13-samples-per-minute rate.
class PduSampler {
public:
  /// Starts sampling \p Meter. \p OnSample (optional) fires per sample.
  PduSampler(Simulator &Sim, const EnergyMeter &Meter,
             std::function<void(double Watts)> OnSample = nullptr,
             SimTime Period = 60 * Sec / 13);

  double lastSample() const { return LastWatts; }
  SimTime period() const { return Period; }
  /// Stops future samples (the object must outlive in-flight events).
  void stop() { Stopped = true; }

private:
  void tick();

  Simulator &Sim;
  const EnergyMeter &Meter;
  std::function<void(double)> OnSample;
  SimTime Period;
  double LastWatts = 0.0;
  bool Stopped = false;
};

} // namespace parcae::sim

#endif // PARCAE_SIM_POWER_H
