//===- BoundedQueue.h - Blocking bounded FIFO queues ------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded FIFO with Waitables for "not empty" and "not full". This is
/// the primitive under both the applications' work queues and the
/// point-to-point communication channels MTCG inserts between pipeline
/// stages (Section 4.5.3). Push/pop are non-blocking; thread bodies block
/// on the waitables and re-try, which matches the poll-style Machine
/// contract.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_BOUNDEDQUEUE_H
#define PARCAE_SIM_BOUNDEDQUEUE_H

#include "sim/Machine.h"

#include <cassert>
#include <cstddef>
#include <deque>
#include <utility>

namespace parcae::sim {

/// Bounded FIFO queue of T with wakeup conditions.
template <typename T> class BoundedQueue {
public:
  explicit BoundedQueue(std::size_t Capacity = 32) : Capacity(Capacity) {
    assert(Capacity > 0 && "queue capacity must be positive");
  }

  /// Appends \p Item if there is room; wakes blocked consumers.
  bool tryPush(T Item) {
    if (Items.size() >= Capacity)
      return false;
    Items.push_back(std::move(Item));
    NotEmpty.notifyAll();
    return true;
  }

  /// Pops the oldest item into \p Out; wakes blocked producers.
  bool tryPop(T &Out) {
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    NotFull.notifyAll();
    return true;
  }

  /// Reads the oldest item without removing it.
  const T &front() const {
    assert(!Items.empty() && "front() on empty queue");
    return Items.front();
  }

  std::size_t size() const { return Items.size(); }
  std::size_t capacity() const { return Capacity; }
  bool empty() const { return Items.empty(); }
  bool full() const { return Items.size() >= Capacity; }

  /// Signalled whenever an item is pushed.
  Waitable &notEmpty() { return NotEmpty; }
  /// Signalled whenever an item is popped.
  Waitable &notFull() { return NotFull; }

  /// Drops all queued items (used when a region is torn down).
  void clear() {
    Items.clear();
    NotFull.notifyAll();
  }

private:
  std::size_t Capacity;
  std::deque<T> Items;
  Waitable NotEmpty;
  Waitable NotFull;
};

} // namespace parcae::sim

#endif // PARCAE_SIM_BOUNDEDQUEUE_H
