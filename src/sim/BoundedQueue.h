//===- BoundedQueue.h - Blocking bounded FIFO queues ------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded FIFO with Waitables for "not empty" and "not full". This is
/// the primitive under both the applications' work queues and the
/// point-to-point communication channels MTCG inserts between pipeline
/// stages (Section 4.5.3). Push/pop are non-blocking; thread bodies block
/// on the waitables and re-try, which matches the poll-style Machine
/// contract.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_BOUNDEDQUEUE_H
#define PARCAE_SIM_BOUNDEDQUEUE_H

#include "sim/Machine.h"

#include <cassert>
#include <cstddef>
#include <deque>
#include <utility>

namespace parcae::sim {

/// Bounded FIFO queue of T with wakeup conditions.
template <typename T> class BoundedQueue {
public:
  /// Three-way pop outcome, distinguishing "try again later" from "the
  /// producer is gone" so shutdown does not strand blocked consumers.
  enum class PopResult { Got, Empty, Closed };

  explicit BoundedQueue(std::size_t Capacity = 32) : Capacity(Capacity) {
    assert(Capacity > 0 && "queue capacity must be positive");
  }

  /// Appends \p Item if there is room; wakes one blocked consumer (a
  /// single push can satisfy only a single pop, so waking the whole herd
  /// would just have the rest re-check and re-block). Rejects the item
  /// once the queue is closed.
  bool tryPush(T Item) {
    if (Shut || Items.size() >= Capacity)
      return false;
    Items.push_back(std::move(Item));
    NotEmpty.notifyOne();
    return true;
  }

  /// Pops the oldest item into \p Out; wakes one blocked producer (one
  /// freed slot admits one push).
  bool tryPop(T &Out) {
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    NotFull.notifyOne();
    return true;
  }

  /// Shutdown-aware pop: Got with an item, Empty while the producer may
  /// still push (block on notEmpty() and re-try), Closed when the queue
  /// was closed and has drained — the consumer's signal to exit.
  PopResult pop(T &Out) {
    if (tryPop(Out))
      return PopResult::Got;
    return Shut ? PopResult::Closed : PopResult::Empty;
  }

  /// Closes the queue: no further pushes are accepted, and both waitables
  /// fire so consumers blocked on notEmpty() (and producers on notFull())
  /// wake up and observe the shutdown instead of sleeping forever.
  void close() {
    if (Shut)
      return;
    Shut = true;
    NotEmpty.notifyAll();
    NotFull.notifyAll();
  }

  bool closed() const { return Shut; }

  /// Reads the oldest item without removing it.
  const T &front() const {
    assert(!Items.empty() && "front() on empty queue");
    return Items.front();
  }

  std::size_t size() const { return Items.size(); }
  std::size_t capacity() const { return Capacity; }
  bool empty() const { return Items.empty(); }
  bool full() const { return Items.size() >= Capacity; }

  /// Signalled whenever an item is pushed.
  Waitable &notEmpty() { return NotEmpty; }
  /// Signalled whenever an item is popped.
  Waitable &notFull() { return NotFull; }

  /// Drops all queued items (used when a region is torn down).
  void clear() {
    Items.clear();
    NotFull.notifyAll();
  }

private:
  std::size_t Capacity;
  std::deque<T> Items;
  bool Shut = false;
  Waitable NotEmpty;
  Waitable NotFull;
};

} // namespace parcae::sim

#endif // PARCAE_SIM_BOUNDEDQUEUE_H
