//===- Machine.h - Simulated multicore machine ------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated shared-memory multicore: N cores, cooperative threads, an
/// OS-style ready queue with quantum-based time slicing and context-switch
/// costs. This substitutes for the paper's 8-core Xeon E5310 and 24-core
/// Xeon X7460 evaluation machines (the host container has a single CPU, so
/// real threads cannot express parallelism).
///
/// Threads are written as explicit state machines: a ThreadBody's resume()
/// is called whenever the thread holds a core and has finished its previous
/// action, and returns the next action — compute for some cycles, block on
/// a Waitable, or finish. Blocking is poll-style: a woken thread must
/// re-check its condition, so spurious wakeups are harmless.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_MACHINE_H
#define PARCAE_SIM_MACHINE_H

#include "sim/Faults.h"
#include "sim/Simulator.h"
#include "sim/Time.h"
#include "telemetry/Telemetry.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace parcae::sim {

class Machine;
class SimThread;

/// A condition threads can block on. Wakeups are level-triggered from the
/// thread's point of view: the woken body re-checks its condition and may
/// block again.
///
/// Waiter entries carry the block epoch they were registered under
/// (SimThread::BlockSeq), so an entry left behind by a blockAny that was
/// satisfied through the *other* waitable is recognizably stale. That
/// makes notifyOne() lost-wakeup-safe: it skips stale entries until it
/// finds a thread that is still blocked on this registration, so a
/// single-consumer notification is never swallowed by a ghost.
class Waitable {
public:
  Waitable() = default;
  Waitable(const Waitable &) = delete;
  Waitable &operator=(const Waitable &) = delete;

  /// Wakes every validly waiting thread.
  void notifyAll();
  /// Wakes the longest-waiting valid thread, if any. Use when at most one
  /// waiter can make progress (e.g. one queue slot freed); waking the
  /// whole herd only to have all but one re-block inflates event counts.
  void notifyOne();
  bool hasWaiters() const { return !Waiters.empty(); }

private:
  friend class Machine;
  struct Waiter {
    SimThread *T;
    std::uint64_t Seq; ///< T->BlockSeq at registration time
  };
  static bool valid(const Waiter &W);
  std::vector<Waiter> Waiters;
};

/// What a thread does next, as reported by ThreadBody::resume().
struct Action {
  enum class Kind { Compute, Block, Finish };
  Kind K;
  SimTime Cycles = 0;
  Waitable *W = nullptr;
  /// Optional second wakeup source (e.g. "new work OR pause signal").
  Waitable *W2 = nullptr;
  /// Cores this compute occupies (a gang: the thread's own core plus
  /// Gang-1 reserved helpers, modelling an inner thread team).
  unsigned Gang = 1;

  static Action compute(SimTime Cycles) {
    return Action{Kind::Compute, Cycles, nullptr, nullptr, 1};
  }
  /// Occupies \p Cores cores for \p Cycles; blocks until that many cores
  /// are simultaneously available.
  static Action gangCompute(unsigned Cores, SimTime Cycles) {
    return Action{Kind::Compute, Cycles, nullptr, nullptr, Cores};
  }
  static Action block(Waitable &W) {
    return Action{Kind::Block, 0, &W, nullptr, 1};
  }
  static Action blockAny(Waitable &W, Waitable &W2) {
    return Action{Kind::Block, 0, &W, &W2, 1};
  }
  static Action finish() {
    return Action{Kind::Finish, 0, nullptr, nullptr, 1};
  }
};

/// The behaviour of a simulated thread.
class ThreadBody {
public:
  virtual ~ThreadBody();
  /// Called when the thread holds a core and its previous action completed.
  /// Returns the next action.
  virtual Action resume(Machine &M, SimThread &T) = 0;
};

/// Stranded: the thread's core went offline mid-slice; it holds no core
/// and cannot run again until Machine::rescueStranded() re-queues it —
/// the genuine stall a dead core causes, which the Morta watchdog must
/// detect and repair.
enum class ThreadState { Ready, Running, Blocked, Stranded, Finished };

/// One simulated software thread.
class SimThread {
public:
  const std::string &name() const { return Name; }
  std::uint64_t id() const { return Id; }
  ThreadState state() const { return State; }
  /// Core the thread currently runs on, or -1 when it holds no core.
  int coreIdx() const { return CoreIdx; }
  Machine &machine() const { return *M; }
  /// Signalled (notifyAll) when the thread finishes.
  Waitable &exitEvent() { return ExitEvent; }
  /// Total compute time the thread has accumulated (excludes switch costs).
  SimTime busyTime() const { return BusyTime; }

private:
  friend class Machine;
  friend class Waitable;
  SimThread(Machine &M, std::uint64_t Id, std::string Name,
            std::unique_ptr<ThreadBody> Body)
      : M(&M), Id(Id), Name(std::move(Name)), Body(std::move(Body)) {}

  Machine *M;
  std::uint64_t Id;
  std::string Name;
  std::unique_ptr<ThreadBody> Body;
  Waitable ExitEvent;
  ThreadState State = ThreadState::Ready;
  /// Incremented each time the thread blocks; waiter entries older than
  /// the current value are stale (see Waitable).
  std::uint64_t BlockSeq = 0;
  SimTime RemainingBurst = 0;
  SimTime BusyTime = 0;
  int CoreIdx = -1;
  unsigned GangHold = 0; ///< helper cores reserved for the current burst
  // A gang compute that could not reserve its helpers yet; retried when
  // the thread next gets a core (resume() must not be re-invoked).
  unsigned PendingGang = 0;
  SimTime PendingGangCycles = 0;
};

/// Costs of the simulated OS scheduler.
struct MachineConfig {
  /// Scheduling quantum; slices never exceed this.
  SimTime Quantum = 4 * MSec;
  /// Core-occupancy cost paid when a core switches to a different thread.
  SimTime CtxSwitchCost = 5 * USec;
  /// Additional core-occupancy cost on a switch, modelling the incoming
  /// thread's cold-cache refill. Application-dependent: near zero for
  /// compute-bound code, multiple milliseconds for memory-bound code
  /// whose working set exceeds its cache share under oversubscription
  /// (how dedup loses throughput under OS load balancing, Table 8.5).
  SimTime CacheRefillCost = 0;

  // --- Slow-core avoidance (straggler-aware placement) -----------------

  /// When on, dispatch prefers cores whose observed service rate is within
  /// SlowCoreThreshold of nominal; a penalized core becomes last-resort
  /// rather than an equal peer. Off by default: legacy scenarios keep
  /// byte-identical schedules.
  bool SlowCoreAvoidance = false;
  /// A core whose effective rate (1.0 = nominal) falls below this fraction
  /// is penalized in placement.
  double SlowCoreThreshold = 0.75;
  /// EWMA time constant for per-core rate samples: one slice's weight is
  /// proportional to its wall time, saturating at RateTau.
  SimTime RateTau = 1 * MSec;
  /// A rate estimate older than this reads as nominal again, so a slow
  /// core that went idle (nothing scheduled on it to re-measure) is
  /// re-probed instead of shunned forever.
  SimTime RateSampleTtl = 15 * MSec;
};

/// The simulated multicore machine.
class Machine {
public:
  Machine(Simulator &Sim, unsigned NumCores, MachineConfig Cfg = {});
  ~Machine();
  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  Simulator &sim() { return Sim; }
  unsigned numCores() const { return static_cast<unsigned>(Cores.size()); }

  /// Creates a thread; it becomes ready immediately. The machine owns it.
  SimThread *spawn(std::string Name, std::unique_ptr<ThreadBody> Body);

  /// Number of cores currently occupied (running a slice or reserved as
  /// gang helpers).
  unsigned busyCores() const { return BusyCount; }

  /// Integral over time of the number of busy cores (core-nanoseconds).
  SimTime busyCoreTime() const;

  /// Number of spawned threads that have not finished.
  unsigned threadsAlive() const { return AliveCount; }

  /// Invoked whenever the number of busy cores changes; used by the power
  /// meter. Receives the *previous* count's end time implicitly via now().
  std::function<void(unsigned NewBusyCount)> OnBusyCountChange;

  // --- Fault model (sim/Faults.h) --------------------------------------

  /// Installs a fault plan: offline, domain, and repair events are
  /// scheduled on the simulator, straggler windows dilate slices, and
  /// workers query transient faults via transientFailCount(). Call before
  /// the run starts.
  void installFaultPlan(FaultPlan Plan);
  const FaultPlan *faultPlan() const { return Plan ? &*Plan : nullptr; }

  /// Cores still operational (numCores() minus offlined ones).
  unsigned onlineCores() const { return OnlineCount; }

  /// Permanently fails a core. A thread running on it is stranded (state
  /// ThreadState::Stranded) with its slice's completed work credited; it
  /// stays stranded until rescueStranded().
  void offlineCore(unsigned CoreIdx);

  /// Fails every core of a domain atomically at the current time (one
  /// burst, one topology notification after the last member).
  void offlineDomain(const FailureDomainEvent &D);

  /// Registers a listener fired when a failure domain with a Warning
  /// lead time announces itself (at D.At - D.Warning): the runtime's
  /// window to checkpoint and migrate regions off the doomed cores.
  /// Listeners are multicast in registration order.
  void addDomainWarningListener(
      std::function<void(const FailureDomainEvent &)> L) {
    DomainWarningListeners.push_back(std::move(L));
  }

  /// Repairs a failed core: re-admits it into slice scheduling and the
  /// capacity counts. A no-op on a core that is already online.
  void onlineCore(unsigned CoreIdx);

  /// Repairs applied so far (onlineCore calls that re-admitted a core).
  unsigned repairsApplied() const { return RepairedCount; }

  /// Virtual time of the most recent onlineCore() (watchdog growth
  /// detection latency is measured against this).
  SimTime lastOnlineAt() const { return LastOnlineAt; }

  /// Threads currently stranded on failed cores.
  unsigned strandedThreads() const { return StrandedCount; }

  /// Re-queues every stranded thread on the surviving cores, resuming the
  /// interrupted burst where it stopped. Returns how many were rescued.
  unsigned rescueStranded();

  /// Scoped rescue: re-queues only the stranded threads among \p Targets
  /// (non-stranded or null entries are skipped), leaving other stranded
  /// threads — and the StrandedCount they are counted in — untouched.
  /// Surgical restart uses this to repair one task without disturbing the
  /// rest of the region. Returns how many were rescued.
  unsigned rescueStranded(const std::vector<SimThread *> &Targets);

  /// Kills a thread in any state: its core (if running) is freed, gang
  /// reservations are released, and it counts as finished. Used by the
  /// abortive recovery path that cuts short in-flight iterations.
  void terminate(SimThread *T);

  /// Virtual time of the most recent offlineCore() (watchdog detection
  /// latency is measured against this).
  SimTime lastOfflineAt() const { return LastOfflineAt; }

  /// Fires after the online-core count changes in either direction
  /// (offlineCore shrinks it, onlineCore grows it back).
  std::function<void(unsigned OnlineCores)> OnTopologyChange;

  /// Transient-fault query for workers: attempts of (\p Task, \p Seq) that
  /// fault before one succeeds (0 when no plan is installed).
  unsigned transientFailCount(const std::string &Task,
                              std::uint64_t Seq) const {
    return Plan ? Plan->transientFailCount(Task, Seq) : 0;
  }

  /// Consuming wedge query: true the first time it is called for a
  /// (\p Task, \p Seq) the plan wedges, false ever after. Consumption is
  /// what lets the replacement worker (or an abortive-recovery replay)
  /// re-execute the iteration without wedging again.
  bool takeWedge(const std::string &Task, std::uint64_t Seq);

  // --- Slow-core avoidance (per-core effective service rate) -----------

  /// Observed effective service rate of \p CoreIdx: an EWMA over finished
  /// slices of work-cycles-per-wall-cycle, so 1.0 means nominal and 0.25
  /// means the core runs 4x dilated. An estimate older than
  /// MachineConfig::RateSampleTtl reads as 1.0 (the core is re-probed).
  double coreRate(unsigned CoreIdx) const;

  /// True when slow-core avoidance is on and \p CoreIdx's effective rate
  /// is below MachineConfig::SlowCoreThreshold.
  bool corePenalized(unsigned CoreIdx) const;

  /// Online cores currently penalized (always 0 with avoidance off).
  unsigned penalizedCores() const;

  /// Minimum effective rate across online cores (1.0 on an idle or
  /// healthy machine) — the Decima MinCoreRate sensor.
  double minCoreRate() const;

  /// Telemetry sink (null = tracing off). Picked up from the process-wide
  /// recorder at construction; the machine binds the recorder's virtual
  /// clock to its simulator, rebasing time across successive runs.
  telemetry::TraceRecorder *traceRecorder() { return Tel; }

private:
  friend class Waitable;

  struct Core {
    SimThread *Running = nullptr;
    SimThread *LastThread = nullptr;
    bool Offline = false;
    /// Slice epoch: incremented whenever the in-flight end-of-slice event
    /// must be cancelled (offline strands the runner, terminate kills it).
    /// The scheduled endSlice carries the epoch it was armed under and
    /// no-ops on mismatch — scheduled events cannot be unscheduled.
    std::uint64_t Epoch = 0;
    // Metadata of the in-flight slice, for crediting partial work when a
    // fault interrupts it.
    SimTime SliceAt = 0;       ///< absolute start time
    SimTime SliceOverhead = 0; ///< switch overhead before work begins
    SimTime SliceWork = 0;     ///< work cycles this slice covers
    double SliceDilation = 1.0;
    /// EWMA of observed service rate (work/wall, 1.0 = nominal), updated
    /// at each slice end; stale past RateSampleTtl (see coreRate()).
    double Rate = 1.0;
    SimTime RateSampledAt = 0;
    /// Placement-penalty state as of the last rate sample, kept only to
    /// emit core_penalized / core_recovered transitions exactly once.
    bool PenalizedMark = false;
  };

  void wake(SimThread *T);
  void dispatch();
  void tryAssign();
  /// Folds one finished slice's observed rate into the core's EWMA and
  /// emits penalty-transition telemetry.
  void noteSliceRate(unsigned CoreIdx);
  void startSlice(unsigned CoreIdx, SimThread *T);
  bool tryReserveGang(SimThread *T, unsigned Gang, SimTime Cycles);
  void endSlice(unsigned CoreIdx, SimThread *T, SimTime SliceLen,
                std::uint64_t Epoch);
  void releaseGangHold(SimThread *T);
  void setBusyCount(unsigned N);
  void emitBusySample();
  /// Records the capacity timeline: an online_cores counter sample at
  /// every topology change (both directions).
  void emitCapacitySample();

  Simulator &Sim;
  MachineConfig Cfg;
  std::vector<Core> Cores;
  std::deque<SimThread *> ReadyQueue;
  std::vector<std::unique_ptr<SimThread>> Threads;
  unsigned BusyCount = 0;    ///< occupied cores: running + gang-reserved
  unsigned Reserved = 0;     ///< gang helper cores currently reserved
  Waitable GangAvail;        ///< signalled when occupied cores decrease
  unsigned AliveCount = 0;
  unsigned OnlineCount = 0;  ///< cores not offlined by a fault
  unsigned StrandedCount = 0;
  unsigned RepairedCount = 0; ///< cores re-onlined by repair events
  SimTime LastOfflineAt = 0;
  SimTime LastOnlineAt = 0;
  std::optional<FaultPlan> Plan;
  std::vector<std::function<void(const FailureDomainEvent &)>>
      DomainWarningListeners;
  /// Wedges already consumed by takeWedge (each fires at most once).
  std::set<std::pair<std::string, std::uint64_t>> FiredWedges;
  bool InDispatch = false;
  bool DispatchPending = false;
  // Busy-core-time integral bookkeeping.
  mutable SimTime BusyIntegral = 0;
  mutable SimTime BusyIntegralLast = 0;
  // Telemetry (null when tracing is off; every emission is one pointer
  // test on the hot path then).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
  telemetry::Counter *CtxSwitchMetric = nullptr;
  telemetry::Counter *SliceMetric = nullptr;
  telemetry::Gauge *CoreRateMetric = nullptr;
  /// Open core-occupancy span per core: consecutive slices of one thread
  /// coalesce into a single span (a trace event per quantum would flood).
  std::vector<SimThread *> TelCoreSpan;
  /// Last busy_cores value emitted; sampled at settled dispatch points
  /// and rate-limited to one sample per gate interval of virtual time.
  unsigned TelBusyEmitted = ~0u;
  SimTime TelBusyLastTs = 0;
  bool TelBusyFlushArmed = false;
};

} // namespace parcae::sim

#endif // PARCAE_SIM_MACHINE_H
