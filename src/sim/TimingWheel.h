//===- TimingWheel.h - Calendar-wheel tier of the event queue ---*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The near-future tier of the simulator's event queue: a power-of-2
/// calendar wheel covering the horizon (Now, Now + span). Most machine
/// slices land in the 1–64-cycle band, so absorbing that band here turns
/// the dominant O(log n) heap sift into an O(1) amortized bucket append.
///
/// Layout. Bucket index is `At & (span - 1)`. Because only times with
/// `At - Now < span` are accepted, the live times form one window of at
/// most span consecutive instants, so *each bucket holds exactly one
/// timestamp at a time* — a residue collision inside the horizon is
/// impossible (asserted). Bucket membership is an intrusive singly linked
/// list threaded through a side array indexed by the owning Simulator's
/// slab slot id: insertion is a push-front, and no per-entry allocation
/// ever happens once the node array has reached its high-water size.
/// Occupancy is a bitmap of 64-bucket words, so finding the next due
/// bucket is a ctz scan starting at the bucket of Now + 1 (circular
/// order from there equals time order, precisely because every live time
/// is within the horizon).
///
/// Determinism. Within a bucket all entries share one timestamp, so
/// cross-tier (time, seq) order reduces to seq order: popBucket() sorts
/// the bucket by wrap-safe 32-bit seq before the Simulator drains it and
/// merges it against equal-time ring and heap entries. The sort is what
/// lets heap spills migrate in (lower seq than direct inserts that
/// arrived earlier in wall order) without perturbing replay.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_TIMINGWHEEL_H
#define PARCAE_SIM_TIMINGWHEEL_H

#include "sim/Time.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace parcae::sim {

/// Single-level calendar wheel over a power-of-2 near-future horizon.
/// Stores (seq, slot) entries; the timestamp is implied by the bucket.
class TimingWheel {
public:
  /// One queued event: its schedule-order tiebreak and its slab slot.
  struct Entry {
    std::uint32_t Seq;
    std::uint32_t Slot;
  };

  /// Default horizon: wide enough that machine slices, context-switch
  /// quanta, and channel hops (tens to hundreds of cycles) all land in
  /// the wheel, small enough that the bucket array stays cache-resident.
  static constexpr std::size_t DefaultBuckets = 1024;

  TimingWheel() { configure(DefaultBuckets); }

  /// Re-sizes the horizon to \p Buckets (power of two in [16, 2^20]).
  /// Only legal while the wheel is empty.
  void configure(std::size_t Buckets) {
    assert(Count == 0 && "cannot re-size a non-empty wheel");
    assert(Buckets >= 16 && Buckets <= (std::size_t{1} << 20) &&
           (Buckets & (Buckets - 1)) == 0 &&
           "wheel span must be a power of two in [16, 2^20]");
    Mask = Buckets - 1;
    Heads.assign(Buckets, NoNode);
    BucketAt.assign(Buckets, 0);
    Occupied.assign(Buckets / 64, 0);
  }

  /// Number of buckets == horizon width in cycles.
  std::size_t span() const { return Mask + 1; }
  bool empty() const { return Count == 0; }
  std::size_t size() const { return Count; }
  /// Deepest bucket ever drained (instrumentation).
  std::uint64_t maxDepth() const { return MaxDepth; }

  /// True when an event at \p At belongs in the wheel given the current
  /// clock: strictly future, strictly inside the horizon. Times at
  /// exactly Now + span are excluded so an insert can never target the
  /// bucket the Simulator is currently draining.
  bool accepts(SimTime At, SimTime Now) const {
    return At > Now && At - Now < span();
  }

  /// Pre-sizes the slot-indexed node array (steady state then never
  /// allocates as long as the owning slab stays within \p Slots).
  void reserveNodes(std::size_t Slots) {
    if (Slots > Nodes.size())
      Nodes.resize(Slots);
  }

  /// Inserts an event; \p At must satisfy accepts(At, Now). O(1).
  void insert(SimTime At, std::uint32_t Seq, std::uint32_t Slot) {
    std::size_t B = At & Mask;
    if (Slot >= Nodes.size()) // grows in slab-chunk-sized steps
      Nodes.resize(((static_cast<std::size_t>(Slot) >> 8) + 1) << 8);
    if (!testBit(B)) {
      setBit(B);
      BucketAt[B] = At;
      Heads[B] = NoNode;
    }
    assert(BucketAt[B] == At &&
           "bucket residue collision inside the wheel horizon");
    Nodes[Slot] = Node{Seq, Heads[B]};
    Heads[B] = Slot;
    ++Count;
  }

  /// Earliest queued timestamp, given the clock. Requires !empty().
  /// O(span / 64) worst case; short-band traffic resolves in the first
  /// word or two.
  SimTime nextTime(SimTime Now) const {
    assert(Count > 0 && "nextTime on an empty wheel");
    std::size_t Start = (static_cast<std::size_t>(Now) + 1) & Mask;
    std::size_t WI = Start >> 6;
    std::uint64_t Word = Occupied[WI] & (~std::uint64_t{0} << (Start & 63));
    // Circular scan from the bucket of Now + 1. On wrapping back into the
    // first word, its low bits (buckets before Start: the latest times)
    // are taken whole — the high bits were already seen empty.
    while (!Word) {
      WI = WI + 1 == Occupied.size() ? 0 : WI + 1;
      Word = Occupied[WI];
    }
    std::size_t B =
        (WI << 6) + static_cast<std::size_t>(__builtin_ctzll(Word));
    return BucketAt[B];
  }

  /// Moves the whole bucket due at \p At into \p Out (cleared first),
  /// sorted ascending by wrap-safe seq — i.e. in deterministic schedule
  /// order. Amortized O(1) per event plus the sort of one bucket.
  void popBucket(SimTime At, std::vector<Entry> &Out) {
    Out.clear();
    std::size_t B = At & Mask;
    assert(testBit(B) && BucketAt[B] == At && "popping a bucket not due");
    for (std::uint32_t N = Heads[B]; N != NoNode; N = Nodes[N].Next)
      Out.push_back(Entry{Nodes[N].Seq, N});
    clearBit(B);
    Heads[B] = NoNode;
    Count -= Out.size();
    if (Out.size() > MaxDepth)
      MaxDepth = Out.size();
    // Push-front insertion reversed direct schedules, and heap spills
    // migrated in with older seqs: restore (time, seq) order. Entries in
    // one bucket are always far fewer than 2^31 schedules apart, so the
    // signed-difference compare is a total order despite seq wrap.
    std::sort(Out.begin(), Out.end(), [](const Entry &A, const Entry &B2) {
      return static_cast<std::int32_t>(A.Seq - B2.Seq) < 0;
    });
  }

  /// Appends (without removing) the entries of the bucket due at \p At —
  /// diagnostics only (livelock abort message).
  void collectBucket(SimTime At, std::vector<Entry> &Out) const {
    std::size_t B = At & Mask;
    if (!testBit(B) || BucketAt[B] != At)
      return;
    for (std::uint32_t N = Heads[B]; N != NoNode; N = Nodes[N].Next)
      Out.push_back(Entry{Nodes[N].Seq, N});
  }

private:
  static constexpr std::uint32_t NoNode = ~std::uint32_t{0};
  /// Intrusive list node, indexed by slab slot id.
  struct Node {
    std::uint32_t Seq;
    std::uint32_t Next;
  };

  bool testBit(std::size_t B) const {
    return (Occupied[B >> 6] >> (B & 63)) & 1;
  }
  void setBit(std::size_t B) { Occupied[B >> 6] |= std::uint64_t{1} << (B & 63); }
  void clearBit(std::size_t B) {
    Occupied[B >> 6] &= ~(std::uint64_t{1} << (B & 63));
  }

  std::size_t Mask = 0;
  std::size_t Count = 0;
  std::uint64_t MaxDepth = 0;
  std::vector<std::uint32_t> Heads; ///< per-bucket list head (slot id)
  std::vector<SimTime> BucketAt;    ///< timestamp occupying each bucket
  std::vector<std::uint64_t> Occupied; ///< bucket-occupancy bitmap
  std::vector<Node> Nodes;             ///< slot-indexed links
};

} // namespace parcae::sim

#endif // PARCAE_SIM_TIMINGWHEEL_H
