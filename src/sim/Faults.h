//===- Faults.h - Deterministic fault injection for the machine -*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded fault plan the simulated Machine consults. The
/// paper's central claim — Morta can "cut short running tasks and replace
/// them with functionally equivalent tasks better suited to the current
/// execution environment" — is only exercised when the environment
/// degrades, so the plan models the three failure classes a shared
/// production platform exhibits:
///
///  * Stragglers: a core runs dilated (e.g. 4x cycle time) over a window
///    of virtual time — thermal throttling, a noisy co-tenant.
///  * Core offlining: a core fails permanently at a point in time. The
///    thread running on it is *stranded* (held hostage) until Morta's
///    watchdog rescues it — exactly the stall a dead core causes.
///  * Transient task faults: a specific dynamic task instance raises a
///    fault instead of completing for its first FailCount attempts; Morta
///    retries with bounded exponential backoff.
///  * Failure domains: a named set of cores (a socket, a rack slot) fails
///    together at one virtual time — the correlated burst real platforms
///    exhibit — optionally coming back after a downtime window.
///  * Repairs: a previously failed core re-onlines at a point in time,
///    returning capacity the watchdog grows the thread budget back into.
///
/// Everything is declared up front (or scattered from a seed), so an
/// identical plan reproduces a byte-identical event sequence.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_FAULTS_H
#define PARCAE_SIM_FAULTS_H

#include "sim/Time.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace parcae::sim {

/// A core that runs slow over [At, At + Duration): every compute cycle
/// takes Dilation wall cycles.
struct StragglerFault {
  unsigned Core = 0;
  SimTime At = 0;
  SimTime Duration = 0;
  double Dilation = 1.0;
};

/// A core that fails permanently at time At.
struct OfflineFault {
  unsigned Core = 0;
  SimTime At = 0;
};

/// A correlated burst: every core of a named domain fails atomically at
/// time At. Downtime == 0 models a permanent loss; otherwise the whole
/// domain is repaired (cores re-onlined) at At + Downtime. Warning > 0
/// models an advance notice (a thermal alarm, a maintenance drain): the
/// machine announces the doomed domain at At - Warning, giving the
/// runtime a window to checkpoint and migrate regions off it instead of
/// absorbing the abort.
struct FailureDomainEvent {
  std::string Name;
  std::vector<unsigned> Cores;
  SimTime At = 0;
  SimTime Downtime = 0;
  SimTime Warning = 0;
};

/// A single core re-onlining at time At (repairing an earlier offline).
struct RepairEvent {
  unsigned Core = 0;
  SimTime At = 0;
};

/// A task instance (identified by task name and region-global iteration
/// index) whose first FailCount execution attempts fault.
struct TransientFault {
  std::string Task;
  std::uint64_t Seq = 0;
  unsigned FailCount = 1;
};

/// A task instance that wedges: the worker about to run it hangs forever
/// (stuck in user code, never returning to the runtime) instead of
/// executing. Unlike a transient fault there is no retry path — only the
/// watchdog's blame-and-restart (or abortive recovery) can clear it. A
/// wedge fires at most once: the restarted worker re-executes the
/// iteration normally.
struct WedgeFault {
  std::string Task;
  std::uint64_t Seq = 0;
};

/// The full fault schedule of one run. Value-semantic: the Machine takes a
/// copy at installFaultPlan(), so one plan can drive many runs.
class FaultPlan {
public:
  FaultPlan() = default;

  /// Dilates \p Core by \p Dilation (>= 1) over [At, At + Duration).
  void addStraggler(unsigned Core, SimTime At, SimTime Duration,
                    double Dilation);

  /// Permanently offlines \p Core at time \p At.
  void addOffline(unsigned Core, SimTime At);

  /// Fails every core of \p Cores atomically at time \p At (a socket or
  /// rack event). With \p Downtime > 0 the domain is repaired — all its
  /// cores re-onlined — at At + Downtime. With \p Warning > 0 the machine
  /// announces the event at At - Warning (clamped to time 0) via its
  /// domain-warning listeners.
  void addDomain(std::string Name, std::vector<unsigned> Cores, SimTime At,
                 SimTime Downtime = 0, SimTime Warning = 0);

  /// Re-onlines \p Core at time \p At (repairs an earlier offline).
  void addRepair(unsigned Core, SimTime At);

  /// Adds a failure domain of \p Size distinct cores drawn deterministically
  /// from [0, NumCores) using \p Seed — the seeded counterpart of
  /// addDomain, mirroring scatterTransients.
  void scatterDomain(std::uint64_t Seed, std::string Name, unsigned NumCores,
                     unsigned Size, SimTime At, SimTime Downtime = 0,
                     SimTime Warning = 0);

  /// Makes the first \p FailCount attempts of (\p Task, \p Seq) fault.
  void addTransient(std::string Task, std::uint64_t Seq,
                    unsigned FailCount = 1);

  /// Wedges the worker that fetches iteration \p Seq of \p Task: it hangs
  /// in user code until terminated (fires once; see Machine::takeWedge).
  void addWedge(std::string Task, std::uint64_t Seq);

  /// Scatters \p Count transient faults over iterations [SeqBegin, SeqEnd)
  /// of \p Task, deterministically from \p Seed. Each fault's FailCount is
  /// uniform in [1, MaxFailCount].
  void scatterTransients(std::uint64_t Seed, const std::string &Task,
                         std::uint64_t SeqBegin, std::uint64_t SeqEnd,
                         unsigned Count, unsigned MaxFailCount = 1);

  /// Scatters \p Count straggler windows over cores [0, NumCores) and start
  /// times [From, To), deterministically from \p Seed. Each window lasts
  /// \p Duration and dilates by a factor uniform in
  /// [MinDilation, MaxDilation].
  void scatterStragglers(std::uint64_t Seed, unsigned NumCores, unsigned Count,
                         SimTime From, SimTime To, SimTime Duration,
                         double MinDilation, double MaxDilation);

  /// Dilation factor of \p Core at time \p Now (1.0 = nominal). Overlapping
  /// windows combine with max — a throttled core runs at the worst active
  /// dilation, it does not compound — so the result is always >= 1 and never
  /// exceeds the largest declared window.
  double dilation(unsigned Core, SimTime Now) const;

  /// Next time strictly after \p Now at which \p Core's dilation factor can
  /// change (a straggler window opening or closing). Returns 0 when no
  /// boundary lies ahead. The Machine clamps compute slices to this so each
  /// slice runs under one constant dilation (piecewise-exact stragglers).
  SimTime nextDilationBoundary(unsigned Core, SimTime Now) const;

  /// Attempts of (\p Task, \p Seq) that fault before one succeeds.
  unsigned transientFailCount(const std::string &Task,
                              std::uint64_t Seq) const;

  /// True when the plan wedges iteration \p Seq of \p Task.
  bool wedgeAt(const std::string &Task, std::uint64_t Seq) const;

  const std::vector<StragglerFault> &stragglers() const { return Stragglers; }
  const std::vector<OfflineFault> &offlines() const { return Offlines; }
  const std::vector<FailureDomainEvent> &domains() const { return Domains; }
  const std::vector<RepairEvent> &repairs() const { return Repairs; }
  const std::vector<WedgeFault> &wedges() const { return Wedges; }
  std::size_t numTransients() const { return Transients.size(); }

  /// Cores the plan ever offlines, counting each domain member (a core may
  /// be counted twice if named by both an OfflineFault and a domain).
  std::size_t numOfflineEvents() const;

  bool empty() const {
    return Stragglers.empty() && Offlines.empty() && Transients.empty() &&
           Domains.empty() && Repairs.empty() && Wedges.empty();
  }

private:
  std::vector<StragglerFault> Stragglers;
  std::vector<OfflineFault> Offlines;
  std::vector<FailureDomainEvent> Domains;
  std::vector<RepairEvent> Repairs;
  std::vector<WedgeFault> Wedges;
  std::map<std::pair<std::string, std::uint64_t>, unsigned> Transients;
};

} // namespace parcae::sim

#endif // PARCAE_SIM_FAULTS_H
