//===- Simulator.h - Discrete-event simulation core -------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-event core: a virtual clock and an ordered event queue.
/// Everything above it (cores, threads, channels, Morta's controller
/// timers) is driven by events scheduled here. Events at the same virtual
/// time fire in schedule order, so whole-system runs are deterministic.
///
/// The core is allocation-free in steady state: callbacks are held in
/// small-buffer EventFn cells inside a chunked slab whose addresses are
/// stable (so a handler runs in place while scheduling more events), and
/// the time-ordered queue is a binary heap of trivially copyable
/// {time, seq, slot} entries over a reused vector. Whole-system runs
/// execute millions of events, so this is the hottest host-side path.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_SIMULATOR_H
#define PARCAE_SIM_SIMULATOR_H

#include "sim/EventFn.h"
#include "sim/Time.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace parcae::sim {

/// Discrete-event simulator: a clock plus a priority queue of callbacks.
class Simulator {
public:
  /// Current virtual time.
  SimTime now() const { return Now; }

  /// Schedules \p Fn to run \p Delay after the current time. The callable
  /// is constructed directly in its slab slot — no intermediate EventFn
  /// relocation on the hot path.
  template <typename F> void schedule(SimTime Delay, F &&Fn) {
    scheduleAt(Now + Delay, std::forward<F>(Fn));
  }

  /// Schedules \p Fn at absolute time \p At (>= now()).
  template <typename F> void scheduleAt(SimTime At, F &&Fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F> &>,
                  "event callback must be callable as void()");
    assert(At >= Now && "cannot schedule an event in the past");
    std::uint32_t S = grabSlot();
    slot(S).assign(std::forward<F>(Fn));
    if (At == Now) {
      // Due-now fast path: wakeups, wheel kicks, and overlapped resumes
      // fire at the current instant; they go through a FIFO ring instead
      // of the heap. FIFO equals (time, seq) order here because every
      // ring entry has At == Now, and the clock cannot advance while the
      // ring is non-empty (runOne drains due-now work first).
      Ring.push_back(DueNow{NextSeq++, S});
      return;
    }
    Heap.push_back(Scheduled{At, NextSeq++, S});
    std::push_heap(Heap.begin(), Heap.end(), Later{});
  }

  /// Runs the next event, if any. Returns false when the queue is empty.
  bool runOne();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs events with timestamps <= \p Deadline; leaves later events queued
  /// and advances the clock to \p Deadline.
  void runUntil(SimTime Deadline);

  /// Makes run() return after the current event.
  void stop() { Stopped = true; }

  /// Total number of events executed (sanity metric for tests).
  std::uint64_t eventsProcessed() const { return EventsProcessed; }

  bool empty() const { return Heap.empty() && RingHead == Ring.size(); }

  /// Pre-sizes the heap and callback slab (steady state then never
  /// allocates as long as at most \p Events are outstanding at once).
  void reserve(std::size_t Events);

  /// Livelock guard: aborting after this many consecutive events at one
  /// virtual instant. Unlike the seed's assert, this check is always on —
  /// a model bug that spins at a single timestamp would otherwise hang
  /// release builds silently. Tests lower it to exercise the diagnostic.
  void setSameTimeLimit(std::uint64_t Limit) { SameTimeLimit = Limit; }
  std::uint64_t sameTimeLimit() const { return SameTimeLimit; }

private:
  /// Heap entry: trivially copyable, 16 bytes, so sift operations are
  /// plain moves with no callback relocation. Seq is a wrapping 32-bit
  /// schedule counter: it only breaks ties between events at the same
  /// virtual instant, and two same-instant events coexisting in the
  /// queue are always far fewer than 2^31 schedules apart, so the
  /// wrap-safe signed-difference compare below orders them correctly.
  struct Scheduled {
    SimTime At;
    std::uint32_t Seq;
    std::uint32_t Slot;
  };
  /// Ring entry for events due at the current instant (At implied = Now).
  struct DueNow {
    std::uint32_t Seq;
    std::uint32_t Slot;
  };
  /// True when A was scheduled after B (wrap-safe; see Scheduled::Seq).
  static bool seqAfter(std::uint32_t A, std::uint32_t B) {
    return static_cast<std::int32_t>(A - B) > 0;
  }
  /// Earliest time first; FIFO within a timestamp. A functor (not a
  /// function pointer) so the heap sift loops inline the comparison.
  struct Later {
    bool operator()(const Scheduled &A, const Scheduled &B) const {
      if (A.At != B.At)
        return A.At > B.At;
      return seqAfter(A.Seq, B.Seq);
    }
  };

  // Callback slab: fixed-size chunks, so slot addresses stay stable while
  // the slab grows — a running handler may schedule (and thus grow the
  // slab) without relocating itself. Freed slots recycle via FreeSlots.
  static constexpr std::size_t ChunkShift = 8; // 256 events per chunk
  static constexpr std::size_t ChunkMask = (std::size_t{1} << ChunkShift) - 1;
  EventFn &slot(std::uint32_t S) {
    return Pool[S >> ChunkShift][S & ChunkMask];
  }
  static constexpr std::uint32_t NoSlot = ~std::uint32_t{0};
  std::uint32_t grabSlot() {
    if (FreeHead != NoSlot) {
      std::uint32_t S = FreeHead;
      FreeHead = slot(S).scratch();
      return S;
    }
    if ((PoolSize >> ChunkShift) == Pool.size())
      Pool.push_back(std::make_unique<EventFn[]>(ChunkMask + 1));
    return static_cast<std::uint32_t>(PoolSize++);
  }
  /// Returns an (empty) slot to the free list, threaded through the dead
  /// callback's storage.
  void freeSlot(std::uint32_t S) {
    slot(S).scratch() = FreeHead;
    FreeHead = S;
  }

  [[noreturn]] void diagnoseLivelock() const;

  SimTime Now = 0;
  std::uint64_t SameTimeCount = 0;
  std::uint64_t SameTimeLimit = 20'000'000;
  std::uint32_t NextSeq = 0;
  std::uint64_t EventsProcessed = 0;
  bool Stopped = false;
  std::vector<Scheduled> Heap;
  /// FIFO of events due at the current instant; drained before the clock
  /// may advance (interleaved with equal-time heap events by Seq).
  std::vector<DueNow> Ring;
  std::size_t RingHead = 0;
  std::vector<std::unique_ptr<EventFn[]>> Pool;
  std::size_t PoolSize = 0;
  std::uint32_t FreeHead = NoSlot;
};

} // namespace parcae::sim

#endif // PARCAE_SIM_SIMULATOR_H
