//===- Simulator.h - Discrete-event simulation core -------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-event core: a virtual clock and an ordered event queue.
/// Everything above it (cores, threads, channels, Morta's controller
/// timers) is driven by events scheduled here. Events at the same virtual
/// time fire in schedule order, so whole-system runs are deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_SIMULATOR_H
#define PARCAE_SIM_SIMULATOR_H

#include "sim/Time.h"

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace parcae::sim {

/// Discrete-event simulator: a clock plus a priority queue of callbacks.
class Simulator {
public:
  /// Current virtual time.
  SimTime now() const { return Now; }

  /// Schedules \p Fn to run \p Delay after the current time.
  void schedule(SimTime Delay, std::function<void()> Fn) {
    scheduleAt(Now + Delay, std::move(Fn));
  }

  /// Schedules \p Fn at absolute time \p At (>= now()).
  void scheduleAt(SimTime At, std::function<void()> Fn);

  /// Runs the next event, if any. Returns false when the queue is empty.
  bool runOne();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs events with timestamps <= \p Deadline; leaves later events queued
  /// and advances the clock to \p Deadline.
  void runUntil(SimTime Deadline);

  /// Makes run() return after the current event.
  void stop() { Stopped = true; }

  /// Total number of events executed (sanity metric for tests).
  std::uint64_t eventsProcessed() const { return EventsProcessed; }

  bool empty() const { return Queue.empty(); }

private:
  struct Event {
    SimTime At;
    std::uint64_t Seq;
    std::function<void()> Fn;
  };
  struct EventLater {
    bool operator()(const Event &A, const Event &B) const {
      if (A.At != B.At)
        return A.At > B.At;
      return A.Seq > B.Seq;
    }
  };

  SimTime Now = 0;
  std::uint64_t SameTimeCount = 0;
  std::uint64_t NextSeq = 0;
  std::uint64_t EventsProcessed = 0;
  bool Stopped = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> Queue;
};

} // namespace parcae::sim

#endif // PARCAE_SIM_SIMULATOR_H
