//===- Simulator.h - Discrete-event simulation core -------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-event core: a virtual clock and an ordered event queue.
/// Everything above it (cores, threads, channels, Morta's controller
/// timers) is driven by events scheduled here. Events at the same virtual
/// time fire in schedule order, so whole-system runs are deterministic.
///
/// The queue is three-tiered, earliest tier first:
///
///  * a due-now FIFO **ring** for zero-delay events (wakeups, overlapped
///    resumes) — FIFO equals (time, seq) order because every ring entry
///    is due at Now and the clock cannot advance while the ring is
///    non-empty;
///  * a calendar **wheel** (TimingWheel.h) for the near-future horizon,
///    where most machine slices land: O(1) amortized insert and pop
///    instead of an O(log n) heap sift;
///  * a binary **heap** of trivially copyable {time, seq, slot} entries
///    for the far horizon. As the clock advances into their epoch, heap
///    entries migrate into the wheel.
///
/// All three tiers carry the same wrapping 32-bit schedule seq, and every
/// pop merges the tier fronts by (time, seq), so the tier an event landed
/// in is invisible to replay: runs are bit-for-bit identical whether the
/// wheel is enabled (QueueMode::Wheel, the default) or not
/// (QueueMode::HeapOnly, kept for A/B measurement).
///
/// The core is allocation-free in steady state: callbacks are held in
/// small-buffer EventFn cells inside a chunked slab whose addresses are
/// stable (so a handler runs in place while scheduling more events), the
/// heap is a reused vector, and wheel buckets are intrusive lists through
/// a slot-indexed side array. Whole-system runs execute millions of
/// events, so this is the hottest host-side path.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_SIMULATOR_H
#define PARCAE_SIM_SIMULATOR_H

#include "sim/EventFn.h"
#include "sim/Time.h"
#include "sim/TimingWheel.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace parcae::sim {

/// Discrete-event simulator: a clock plus a three-tier ordered queue.
class Simulator {
public:
  /// Which time-ordered tiers back the queue. Event *order* is identical
  /// in both modes (the acceptance gate for the wheel); the mode only
  /// selects the data structure, so benches can A/B them.
  enum class QueueMode { HeapOnly, Wheel };

  /// Cheap per-tier counters plus current occupancy, for perf analysis
  /// and the telemetry metrics registry (sim.queue.* gauges).
  struct QueueStats {
    std::uint64_t RingHits = 0;   ///< events dispatched from the ring
    std::uint64_t WheelHits = 0;  ///< events dispatched from the wheel
    std::uint64_t HeapHits = 0;   ///< events dispatched from the heap
    std::uint64_t SpillMigrations = 0; ///< heap -> wheel epoch migrations
    std::uint64_t MaxBucketDepth = 0;  ///< deepest wheel bucket drained
    std::size_t RingPending = 0;
    std::size_t WheelPending = 0;
    std::size_t HeapPending = 0;
    std::size_t WheelSpan = 0; ///< horizon width in cycles (0: heap-only)
  };

  /// Current virtual time.
  SimTime now() const { return Now; }

  /// Schedules \p Fn to run \p Delay after the current time. The callable
  /// is constructed directly in its slab slot — no intermediate EventFn
  /// relocation on the hot path.
  template <typename F> void schedule(SimTime Delay, F &&Fn) {
    scheduleAt(Now + Delay, std::forward<F>(Fn));
  }

  /// Schedules \p Fn at absolute time \p At (>= now()).
  template <typename F> void scheduleAt(SimTime At, F &&Fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F> &>,
                  "event callback must be callable as void()");
    assert(At >= Now && "cannot schedule an event in the past");
    std::uint32_t S = grabSlot();
    slot(S).assign(std::forward<F>(Fn));
    std::uint32_t Seq = NextSeq++;
    if (At == Now) {
      // Due-now fast path: wakeups, wheel kicks, and overlapped resumes
      // fire at the current instant; they go through a FIFO ring instead
      // of the heap. FIFO equals (time, seq) order here because every
      // ring entry has At == Now, and the clock cannot advance while the
      // ring is non-empty (runOne drains due-now work first).
      Ring.push_back(DueNow{Seq, S});
      return;
    }
    if (WheelOn && Wheel.accepts(At, Now)) {
      Wheel.insert(At, Seq, S);
      return;
    }
    Heap.push_back(Scheduled{At, Seq, S});
    std::push_heap(Heap.begin(), Heap.end(), Later{});
  }

  /// Runs the next event, if any. Returns false when the queue is empty.
  bool runOne();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs events with timestamps <= \p Deadline; leaves later events queued
  /// and advances the clock to \p Deadline.
  void runUntil(SimTime Deadline);

  /// Makes run() return after the current event.
  void stop() { Stopped = true; }

  /// Total number of events executed (sanity metric for tests).
  std::uint64_t eventsProcessed() const { return EventsProcessed; }

  bool empty() const {
    return Heap.empty() && RingHead == Ring.size() &&
           DrainHead == Drain.size() && Wheel.empty();
  }

  /// Pre-sizes every tier — heap, due-now ring, wheel drain buffer and
  /// node array — and the callback slab (steady state then never
  /// allocates as long as at most \p Events are outstanding at once).
  void reserve(std::size_t Events);

  /// Selects the queue backing (wheel by default). Only legal while the
  /// queue is empty; the event order is mode-invariant either way.
  void setQueueMode(QueueMode M) {
    assert(empty() && "cannot switch queue mode with events pending");
    Mode = M;
    WheelOn = M == QueueMode::Wheel;
  }
  QueueMode queueMode() const { return Mode; }

  /// Re-sizes the wheel horizon (power of two in [16, 2^20] cycles).
  /// Only legal while the queue is empty.
  void setWheelSpan(std::size_t Buckets) {
    assert(empty() && "cannot re-size the wheel with events pending");
    Wheel.configure(Buckets);
  }
  std::size_t wheelSpan() const { return Wheel.span(); }

  /// Tier counters and occupancy (see QueueStats).
  QueueStats queueStats() const {
    QueueStats S;
    S.RingHits = RingHits;
    S.WheelHits = WheelHits;
    S.HeapHits = HeapHits;
    S.SpillMigrations = SpillMigrations;
    S.MaxBucketDepth = Wheel.maxDepth();
    S.RingPending = Ring.size() - RingHead;
    S.WheelPending = Wheel.size() + (Drain.size() - DrainHead);
    S.HeapPending = Heap.size();
    S.WheelSpan = WheelOn ? Wheel.span() : 0;
    return S;
  }

  /// Livelock guard: aborting after this many consecutive events at one
  /// virtual instant. Unlike the seed's assert, this check is always on —
  /// a model bug that spins at a single timestamp would otherwise hang
  /// release builds silently. Tests lower it to exercise the diagnostic.
  void setSameTimeLimit(std::uint64_t Limit) { SameTimeLimit = Limit; }
  std::uint64_t sameTimeLimit() const { return SameTimeLimit; }

  /// Test-only: pre-positions the wrapping schedule counter so the seq
  /// wrap tie-break is exercisable without 2^32 schedules. Requires an
  /// empty queue (a wrap with events pending would reorder them).
  void primeSeqCounterForTest(std::uint32_t Seq) {
    assert(empty() && "cannot re-seed the seq counter with events pending");
    NextSeq = Seq;
  }

private:
  /// Heap entry: trivially copyable, 16 bytes, so sift operations are
  /// plain moves with no callback relocation. Seq is a wrapping 32-bit
  /// schedule counter: it only breaks ties between events at the same
  /// virtual instant, and two same-instant events coexisting in the
  /// queue are always far fewer than 2^31 schedules apart, so the
  /// wrap-safe signed-difference compare below orders them correctly.
  struct Scheduled {
    SimTime At;
    std::uint32_t Seq;
    std::uint32_t Slot;
  };
  /// Ring entry for events due at the current instant (At implied = Now).
  struct DueNow {
    std::uint32_t Seq;
    std::uint32_t Slot;
  };
  /// True when A was scheduled after B (wrap-safe; see Scheduled::Seq).
  static bool seqAfter(std::uint32_t A, std::uint32_t B) {
    return static_cast<std::int32_t>(A - B) > 0;
  }
  /// Earliest time first; FIFO within a timestamp. A functor (not a
  /// function pointer) so the heap sift loops inline the comparison.
  struct Later {
    bool operator()(const Scheduled &A, const Scheduled &B) const {
      if (A.At != B.At)
        return A.At > B.At;
      return seqAfter(A.Seq, B.Seq);
    }
  };

  /// Pops the earliest event due exactly at Now across the three tier
  /// fronts (drained wheel bucket / equal-time heap top / ring), merged
  /// by seq. Returns false when nothing is due at the current instant.
  bool popDueNow(std::uint32_t &OutSlot);
  /// Advances the clock to the earliest pending timestamp, drains that
  /// wheel bucket into the merge buffer, and migrates heap entries whose
  /// epoch the horizon now covers. False when the queue is empty.
  bool advanceClock();
  /// Earliest pending timestamp across all tiers (false: queue empty).
  bool nextPendingTime(SimTime &T) const;

  // Callback slab: fixed-size chunks, so slot addresses stay stable while
  // the slab grows — a running handler may schedule (and thus grow the
  // slab) without relocating itself. Freed slots recycle via FreeSlots.
  static constexpr std::size_t ChunkShift = 8; // 256 events per chunk
  static constexpr std::size_t ChunkMask = (std::size_t{1} << ChunkShift) - 1;
  EventFn &slot(std::uint32_t S) {
    return Pool[S >> ChunkShift][S & ChunkMask];
  }
  static constexpr std::uint32_t NoSlot = ~std::uint32_t{0};
  std::uint32_t grabSlot() {
    if (FreeHead != NoSlot) {
      std::uint32_t S = FreeHead;
      FreeHead = slot(S).scratch();
      return S;
    }
    if ((PoolSize >> ChunkShift) == Pool.size())
      Pool.push_back(std::make_unique<EventFn[]>(ChunkMask + 1));
    return static_cast<std::uint32_t>(PoolSize++);
  }
  /// Returns an (empty) slot to the free list, threaded through the dead
  /// callback's storage.
  void freeSlot(std::uint32_t S) {
    slot(S).scratch() = FreeHead;
    FreeHead = S;
  }

  [[noreturn]] void diagnoseLivelock() const;

  SimTime Now = 0;
  std::uint64_t SameTimeCount = 0;
  std::uint64_t SameTimeLimit = 20'000'000;
  std::uint32_t NextSeq = 0;
  std::uint64_t EventsProcessed = 0;
  bool Stopped = false;
  QueueMode Mode = QueueMode::Wheel;
  bool WheelOn = true;
  std::vector<Scheduled> Heap;
  /// FIFO of events due at the current instant; drained before the clock
  /// may advance (interleaved with equal-time wheel/heap events by Seq).
  std::vector<DueNow> Ring;
  std::size_t RingHead = 0;
  /// Near-future calendar tier; see TimingWheel.h.
  TimingWheel Wheel;
  /// The bucket due at Now, already seq-sorted, being merged out. Reused
  /// storage, same head-cursor discipline as the ring.
  std::vector<TimingWheel::Entry> Drain;
  std::size_t DrainHead = 0;
  // Tier dispatch counters (see queueStats()).
  std::uint64_t RingHits = 0;
  std::uint64_t WheelHits = 0;
  std::uint64_t HeapHits = 0;
  std::uint64_t SpillMigrations = 0;
  std::vector<std::unique_ptr<EventFn[]>> Pool;
  std::size_t PoolSize = 0;
  std::uint32_t FreeHead = NoSlot;
};

} // namespace parcae::sim

#endif // PARCAE_SIM_SIMULATOR_H
